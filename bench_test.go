// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation section (Sec 7) plus the
// ablation studies listed in DESIGN.md. Each benchmark runs the corresponding
// experiment and reports the headline quantities (jobs completed, ratios,
// overhead percentages) as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports. cmd/etbench renders the same
// data as human-readable tables.
package repro_test

import (
	"flag"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/aes"
	"repro/internal/analytic"
	"repro/internal/app"
	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/routing"
	"repro/internal/topology"
)

// benchMeshSizes are the paper's mesh sizes; the heavier ablation benchmarks
// use a subset to keep a full -bench=. run in the tens of seconds.
var benchMeshSizes = []int{4, 5, 6, 7, 8}

// benchWorkers is the worker count every experiment sweep in this harness
// runs with: 0 (the default) means one worker per CPU. Override with
//
//	go test -bench=. -args -workers=1
//
// to benchmark the serial path.
var benchWorkers = flag.Int("workers", 0, "worker goroutines per experiment sweep (0 = one per CPU)")

// benchParallelism is the option threaded through every sweep call below.
func benchParallelism() experiments.Option { return experiments.WithWorkers(*benchWorkers) }

// BenchmarkFig2_DischargeCurve regenerates the thin-film battery discharge
// curve of Fig 2 and reports the plateau and knee voltages.
func BenchmarkFig2_DischargeCurve(b *testing.B) {
	var points []experiments.Fig2Point
	for i := 0; i < b.N; i++ {
		points = experiments.Fig2(20)
	}
	var plateau, knee float64
	for _, p := range points {
		if p.DepthOfDischarge <= 0.5 {
			plateau = p.Voltage
		}
		if p.DepthOfDischarge <= 0.95 {
			knee = p.Voltage
		}
	}
	b.ReportMetric(plateau, "V@50%DoD")
	b.ReportMetric(knee, "V@95%DoD")
	b.ReportMetric(float64(len(points)), "points")
}

// BenchmarkFig7_EARvsSDR regenerates Fig 7: the number of completed jobs
// under EAR and SDR for every mesh size, and the EAR/SDR gain.
func BenchmarkFig7_EARvsSDR(b *testing.B) {
	for _, n := range benchMeshSizes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			var rows []experiments.Fig7Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.Fig7([]int{n}, benchParallelism())
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(float64(r.EARJobs), "EAR-jobs")
			b.ReportMetric(float64(r.SDRJobs), "SDR-jobs")
			b.ReportMetric(r.Gain, "EAR/SDR")
		})
	}
}

// BenchmarkFig7_ControlOverhead reports the control-information overhead
// percentages quoted in the Sec 7.1 text (2.8 % .. 11.6 % for 4x4 .. 8x8).
func BenchmarkFig7_ControlOverhead(b *testing.B) {
	for _, n := range benchMeshSizes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				strategy, err := core.EAR(n)
				if err != nil {
					b.Fatal(err)
				}
				res, err := strategy.Simulate()
				if err != nil {
					b.Fatal(err)
				}
				overhead = res.Energy.ControlOverheadFraction()
			}
			b.ReportMetric(100*overhead, "overhead-%")
		})
	}
}

// BenchmarkTable2_EARvsUpperBound regenerates Table 2: EAR with the ideal
// battery model against the Theorem-1 upper bound.
func BenchmarkTable2_EARvsUpperBound(b *testing.B) {
	for _, n := range benchMeshSizes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			var rows []experiments.Table2Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.Table2([]int{n}, benchParallelism())
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(float64(r.EARJobs), "EAR-jobs")
			b.ReportMetric(r.UpperBound, "J*")
			b.ReportMetric(100*r.Achieved, "achieved-%")
		})
	}
}

// BenchmarkFig8_ControllerFailures regenerates Fig 8: jobs completed versus
// the number of battery-powered controllers for every mesh size.
func BenchmarkFig8_ControllerFailures(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		for _, c := range experiments.PaperControllerCounts() {
			b.Run(fmt.Sprintf("%dx%d/%dctrl", n, n, c), func(b *testing.B) {
				var jobs int
				for i := 0; i < b.N; i++ {
					rows, err := experiments.Fig8([]int{n}, []int{c}, benchParallelism())
					if err != nil {
						b.Fatal(err)
					}
					jobs = rows[0].Jobs
				}
				b.ReportMetric(float64(jobs), "jobs")
			})
		}
	}
}

// BenchmarkFig8_GridScaling runs the full Fig 8 (mesh size × controller
// count) grid — the heaviest sweep of the evaluation — under increasing
// worker counts. Comparing the workers=1 and workers=GOMAXPROCS lines
// measures the wall-clock speedup of the runner.Pool fan-out; on a 4-core
// machine the parallel grid should finish at least ~2x faster than the
// serial one.
func BenchmarkFig8_GridScaling(b *testing.B) {
	sizes := []int{4, 5, 6}
	counts := experiments.PaperControllerCounts()
	workerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig8(sizes, counts, experiments.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != len(sizes)*len(counts) {
					b.Fatalf("got %d rows", len(rows))
				}
			}
			b.ReportMetric(float64(len(sizes)*len(counts)), "cells")
		})
	}
}

// BenchmarkTheorem1_UpperBound evaluates Eq 2 / Eq 3 for every mesh size (the
// J* column of Table 2) and reports the bound.
func BenchmarkTheorem1_UpperBound(b *testing.B) {
	application := app.AES128()
	line := energy.PaperTransmissionLine()
	for _, n := range benchMeshSizes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			var bound analytic.Bound
			for i := 0; i < b.N; i++ {
				var err error
				bound, err = analytic.MeshUpperBound(application, line, topology.DefaultSpacingCM,
					battery.DefaultNominalPJ, n*n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(bound.Jobs, "J*")
		})
	}
}

// BenchmarkAblation_EARWeightQ sweeps the EAR weighting base Q (ablation A1).
func BenchmarkAblation_EARWeightQ(b *testing.B) {
	for _, q := range []float64{1, 2, 4} {
		b.Run(fmt.Sprintf("Q=%g", q), func(b *testing.B) {
			var jobs int
			for i := 0; i < b.N; i++ {
				rows, err := experiments.AblationEARWeight([]int{5}, []float64{q}, benchParallelism())
				if err != nil {
					b.Fatal(err)
				}
				jobs = rows[0].Jobs
			}
			b.ReportMetric(float64(jobs), "jobs")
		})
	}
}

// BenchmarkAblation_Mapping compares mapping strategies (ablation A2).
func BenchmarkAblation_Mapping(b *testing.B) {
	var rows []experiments.AblationMappingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationMapping([]int{5}, benchParallelism())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Jobs), r.Strategy+"-jobs")
	}
}

// BenchmarkAblation_BatteryModel quantifies the battery model's contribution
// to the EAR/SDR gap (ablation A3).
func BenchmarkAblation_BatteryModel(b *testing.B) {
	var rows []experiments.AblationBatteryRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationBattery([]int{5}, benchParallelism())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Jobs), r.Battery+"/"+r.Algorithm)
	}
}

// BenchmarkAblation_Concurrency exercises the deadlock-recovery mechanism
// with multiple jobs in flight (ablation A4).
func BenchmarkAblation_Concurrency(b *testing.B) {
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%djobs", jobs), func(b *testing.B) {
			var completed, deadlocks int
			for i := 0; i < b.N; i++ {
				rows, err := experiments.AblationConcurrency([]int{5}, []int{jobs}, benchParallelism())
				if err != nil {
					b.Fatal(err)
				}
				completed = rows[0].JobsCompleted
				deadlocks = rows[0].DeadlockReports
			}
			b.ReportMetric(float64(completed), "jobs")
			b.ReportMetric(float64(deadlocks), "deadlocks")
		})
	}
}

// BenchmarkAblation_LinkFailures measures how gracefully EAR degrades when a
// fraction of the woven interconnects has failed (ablation A5).
func BenchmarkAblation_LinkFailures(b *testing.B) {
	for _, fraction := range []float64{0, 0.2} {
		b.Run(fmt.Sprintf("failed=%.0f%%", 100*fraction), func(b *testing.B) {
			var ear, sdr int
			for i := 0; i < b.N; i++ {
				rows, err := experiments.AblationLinkFailures([]int{5}, []float64{fraction}, benchParallelism())
				if err != nil {
					b.Fatal(err)
				}
				ear, sdr = rows[0].EARJobs, rows[0].SDRJobs
			}
			b.ReportMetric(float64(ear), "EAR-jobs")
			b.ReportMetric(float64(sdr), "SDR-jobs")
		})
	}
}

// --- micro-benchmarks of the main substrates ---

// BenchmarkMicro_AESEncryptBlock measures the reference cipher on the
// zero-allocation Encrypt path the engine's payload verification uses.
func BenchmarkMicro_AESEncryptBlock(b *testing.B) {
	c, err := aes.NewCipher(make([]byte, 16))
	if err != nil {
		b.Fatal(err)
	}
	block := make([]byte, aes.BlockSize)
	out := make([]byte, aes.BlockSize)
	b.SetBytes(aes.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encrypt(out, block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_FloydWarshall measures one controller routing computation
// (phases 1-3) on the largest mesh of the paper.
func BenchmarkMicro_FloydWarshall8x8(b *testing.B) {
	mesh := topology.MustMesh(8, 8, 1)
	state := &routing.SystemState{Graph: mesh.Graph, Levels: 8, Status: make([]routing.NodeStatus, mesh.Size())}
	for _, n := range mesh.Nodes() {
		state.Status[n.ID] = routing.NodeStatus{Alive: true, BatteryLevel: int(n.ID) % 8}
	}
	application := app.AES128()
	dests := map[app.ModuleID][]topology.NodeID{}
	for _, m := range application.Modules {
		for _, node := range mesh.Nodes() {
			if int(node.ID)%3 == int(m.ID)-1 {
				dests[m.ID] = append(dests[m.ID], node.ID)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.Compute(routing.NewEAR(), state, dests, nil)
	}
}

// BenchmarkMicro_ComputeInto8x8 is the same controller computation as
// BenchmarkMicro_FloydWarshall8x8 but through a reused routing.Workspace —
// the steady-state path the simulator drives every TDMA frame. It must
// report 0 allocs/op.
func BenchmarkMicro_ComputeInto8x8(b *testing.B) {
	mesh := topology.MustMesh(8, 8, 1)
	state := &routing.SystemState{Graph: mesh.Graph, Levels: 8, Status: make([]routing.NodeStatus, mesh.Size())}
	for _, n := range mesh.Nodes() {
		state.Status[n.ID] = routing.NodeStatus{Alive: true, BatteryLevel: int(n.ID) % 8}
	}
	application := app.AES128()
	dests := map[app.ModuleID][]topology.NodeID{}
	for _, m := range application.Modules {
		for _, node := range mesh.Nodes() {
			if int(node.ID)%3 == int(m.ID)-1 {
				dests[m.ID] = append(dests[m.ID], node.ID)
			}
		}
	}
	ws := routing.NewWorkspace()
	var alg routing.Algorithm = routing.NewEAR()
	var prev *routing.Tables
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev = routing.ComputeInto(ws, alg, state, dests, prev).Tables
	}
}

// BenchmarkMicro_ThinFilmBattery measures the discrete-time battery model.
func BenchmarkMicro_ThinFilmBattery(b *testing.B) {
	cell := battery.NewDefaultThinFilm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cell.Draw(10); err != nil {
			cell = battery.NewDefaultThinFilm()
		}
		cell.Rest(1000)
	}
}

// BenchmarkMicro_Simulate4x4 measures one complete et_sim run of the default
// 4x4 scenario.
func BenchmarkMicro_Simulate4x4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		strategy, err := core.EAR(4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := strategy.Simulate(); err != nil {
			b.Fatal(err)
		}
	}
}
