// Custom application: the routing strategy, Theorem-1 bound and simulator are
// application-agnostic. This example builds a health-monitoring pipeline
// (sample filtering, feature extraction, classification, encryption of the
// result) with the application builder, maps it onto a 6x6 mesh with the
// Theorem-1 proportional mapping and compares EAR against SDR — exactly the
// workflow a user would follow for their own e-textile application.
//
// Run with:
//
//	go run ./examples/custom_application
package main

import (
	"fmt"
	"log"

	"repro/internal/analytic"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	// Describe the application: per-job operation counts and the measured
	// energy of one operation of each module (in pJ).
	builder := app.NewBuilder("health-monitor")
	filter := builder.AddModule("sample-filter", 48.5)
	feature := builder.AddModule("feature-extract", 141.0)
	classify := builder.AddModule("classifier", 326.0)
	protect := builder.AddModule("result-encrypt", 176.55)
	application, err := builder.
		PacketBits(192).
		Repeat(12, filter, feature). // 12 windows of filtering + feature extraction
		Repeat(3, classify).         // 3 classifier passes (ensemble voting)
		Step(protect).               // encrypt the final verdict
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Theorem 1 tells us how to allocate the 36 nodes across the modules.
	line := energy.PaperTransmissionLine()
	bound, err := analytic.MeshUpperBound(application, line, topology.DefaultSpacingCM, 60000, 36)
	if err != nil {
		log.Fatal(err)
	}
	alloc := stats.NewTable("Theorem-1 node allocation for the health monitor on a 6x6 mesh",
		"module", "ops/job", "H_i [pJ]", "optimal duplicates")
	for i, m := range application.Modules {
		alloc.AddRow(m.Name, m.OpsPerJob,
			fmt.Sprintf("%.1f", bound.NormalizedEnergies[i]),
			fmt.Sprintf("%.2f", bound.OptimalDuplicates[i]))
	}
	fmt.Print(alloc.Render())
	fmt.Printf("Upper bound on monitoring jobs: %.1f\n\n", bound.Jobs)

	// Simulate EAR and SDR with the proportional mapping derived from H_i.
	results := stats.NewTable("Simulated jobs completed (6x6 mesh, thin-film batteries)",
		"routing algorithm", "jobs completed", "achieved vs bound", "died because")
	for _, alg := range []routing.Algorithm{routing.NewEAR(), routing.SDR{}} {
		strategy, err := core.New(6,
			core.WithApplication(application),
			core.WithAlgorithm(alg),
			core.WithMapping(mapping.Proportional{Weights: bound.NormalizedEnergies}),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := strategy.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		results.AddRow(alg.Name(), res.JobsCompleted,
			fmt.Sprintf("%.0f%%", 100*bound.Achieved(float64(res.JobsCompleted))),
			string(res.Reason))
	}
	fmt.Print(results.Render())
}
