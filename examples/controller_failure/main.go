// Controller failure study: the Sec 7.3 scenario in which the centralized
// TDMA controllers have finite thin-film batteries of their own. The example
// sweeps the number of redundant controllers on a 5x5 mesh and shows how the
// system lifetime saturates once the AES nodes — rather than the controllers
// — become the limiting factor.
//
// Run with:
//
//	go run ./examples/controller_failure
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	const meshSize = 5
	counts := []int{1, 2, 4, 7, 10}

	// Reference: a single controller with an infinite energy source, the
	// Sec 7.1 assumption, gives the node-limited lifetime.
	reference, err := core.EAR(meshSize, core.WithControllers(1, false))
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := reference.Simulate()
	if err != nil {
		log.Fatal(err)
	}

	table := stats.NewTable(
		fmt.Sprintf("Jobs completed on a %dx%d mesh vs number of battery-powered controllers (EAR)", meshSize, meshSize),
		"controllers", "jobs completed", "lifetime [cycles]", "limited by")
	for _, n := range counts {
		strategy, err := core.EAR(meshSize, core.WithControllers(n, true))
		if err != nil {
			log.Fatal(err)
		}
		res, err := strategy.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(n, res.JobsCompleted, res.LifetimeCycles, string(res.Reason))
	}
	fmt.Print(table.Render())
	fmt.Printf("\nNode-limited reference (infinite-energy controller): %d jobs.\n", refRes.JobsCompleted)
	fmt.Println("Adding controllers extends the lifetime until the AES nodes, not the controllers, run out of energy.")
}
