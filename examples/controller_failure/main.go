// Controller failure study: the Sec 7.3 scenario in which the centralized
// TDMA controllers have finite thin-film batteries of their own. The example
// sweeps the number of redundant controllers on a 5x5 mesh — each point is a
// declarative scenario spec, the same representation `etsim -scenario` runs —
// and shows how the system lifetime saturates once the AES nodes, rather
// than the controllers, become the limiting factor.
//
// Run with:
//
//	go run ./examples/controller_failure
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
	"repro/internal/stats"
)

func main() {
	const meshSize = 5
	counts := []int{1, 2, 4, 7, 10}

	// Reference: a single controller with an infinite energy source, the
	// Sec 7.1 assumption, gives the node-limited lifetime.
	refRes, err := scenario.Spec{Mesh: meshSize}.Simulate()
	if err != nil {
		log.Fatal(err)
	}

	table := stats.NewTable(
		fmt.Sprintf("Jobs completed on a %dx%d mesh vs number of battery-powered controllers (EAR)", meshSize, meshSize),
		"controllers", "jobs completed", "lifetime [cycles]", "limited by")
	for _, n := range counts {
		spec := scenario.Spec{Mesh: meshSize, Controllers: n, FiniteControllers: true}
		res, err := spec.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(n, res.JobsCompleted, res.LifetimeCycles, string(res.Reason))
	}
	fmt.Print(table.Render())
	fmt.Printf("\nNode-limited reference (infinite-energy controller): %d jobs.\n", refRes.JobsCompleted)
	fmt.Println("Adding controllers extends the lifetime until the AES nodes, not the controllers, run out of energy.")
}
