// Smartshirt: the scenario sketched in Fig 3(a) of the paper — a shirt with a
// sensor block whose readings are encrypted by AES modules distributed over a
// woven 6x6 mesh before leaving the garment. Every simulated job carries a
// real 128-bit block through the mesh, and each completed job's ciphertext is
// verified against the reference cipher, demonstrating that the distributed
// execution is functionally exact, not just an energy model.
//
// The configuration is the registered "smartshirt-verified" scenario, run
// with two trace observers attached: a job-latency histogram and the
// fleet-wide battery discharge curve, both fed by the simulator's event
// stream (the same data `etsim -scenario smartshirt-verified -trace` writes
// as CSV).
//
// Run with:
//
//	go run ./examples/smartshirt
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	spec, ok := scenario.Lookup("smartshirt-verified")
	if !ok {
		log.Fatal("smartshirt-verified scenario not registered")
	}

	latency := &trace.LatencyHistogram{}
	batteries := &trace.BatterySeries{}
	res, err := spec.Simulate(latency, batteries)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Smart shirt: distributed AES-128 over a 6x6 woven mesh (EAR routing)")
	fmt.Printf("\nSensor blocks encrypted before the garment died: %d\n", res.JobsCompleted)
	fmt.Printf("Ciphertexts verified against the reference cipher: %d (mismatches: %d)\n",
		res.PayloadJobsVerified, res.PayloadMismatches)
	fmt.Printf("Garment lifetime: %d cycles (%d TDMA frames); died because: %s\n",
		res.LifetimeCycles, res.Frames, res.Reason)
	fmt.Printf("Dead nodes at end of life: %d of %d\n\n", res.DeadNodes, res.MeshNodes)

	fmt.Print(latency.Table(8).Render())
	if frames := batteries.Frames(); len(frames) > 0 {
		first, last := frames[0], frames[len(frames)-1]
		fmt.Printf("\nFleet battery: mean %.0f pJ at frame %d, mean %.0f pJ at frame %d (min %.0f pJ)\n\n",
			first.MeanRemainingPJ, first.Frame, last.MeanRemainingPJ, last.Frame, last.MinRemainingPJ)
	}

	table := stats.NewTable("Per-node wear at end of life (module 1 = SubBytes/ShiftRows, 2 = MixColumns, 3 = KeyExpansion/AddRoundKey)",
		"node", "module", "operations", "packets relayed", "energy delivered [pJ]", "dead")
	for _, n := range res.Nodes {
		table.AddRow(int(n.Node), n.Module, n.Operations, n.PacketsRelayed,
			fmt.Sprintf("%.0f", n.DeliveredPJ), n.Dead)
	}
	fmt.Print(table.Render())
}
