// Smartshirt: the scenario sketched in Fig 3(a) of the paper — a shirt with a
// sensor block whose readings are encrypted by AES modules distributed over a
// woven 6x6 mesh before leaving the garment. Every simulated job carries a
// real 128-bit block through the mesh, and each completed job's ciphertext is
// verified against the reference cipher, demonstrating that the distributed
// execution is functionally exact, not just an energy model.
//
// Run with:
//
//	go run ./examples/smartshirt
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	// A fixed session key shared with the off-garment receiver.
	key := []byte{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}

	strategy, err := core.EAR(6,
		core.WithPayloadVerification(key),
		core.WithNodeStats(),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := strategy.Simulate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Smart shirt: distributed AES-128 over a 6x6 woven mesh (EAR routing)")
	fmt.Printf("\nSensor blocks encrypted before the garment died: %d\n", res.JobsCompleted)
	fmt.Printf("Ciphertexts verified against the reference cipher: %d (mismatches: %d)\n",
		res.PayloadJobsVerified, res.PayloadMismatches)
	fmt.Printf("Garment lifetime: %d cycles (%d TDMA frames); died because: %s\n",
		res.LifetimeCycles, res.Frames, res.Reason)
	fmt.Printf("Dead nodes at end of life: %d of %d\n\n", res.DeadNodes, res.MeshNodes)

	table := stats.NewTable("Per-node wear at end of life (module 1 = SubBytes/ShiftRows, 2 = MixColumns, 3 = KeyExpansion/AddRoundKey)",
		"node", "module", "operations", "packets relayed", "energy delivered [pJ]", "dead")
	for _, n := range res.Nodes {
		table.AddRow(int(n.Node), n.Module, n.Operations, n.PacketsRelayed,
			fmt.Sprintf("%.0f", n.DeliveredPJ), n.Dead)
	}
	fmt.Print(table.Render())
}
