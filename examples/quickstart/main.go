// Quickstart: simulate the paper's default scenario — distributed AES-128 on
// a 4x4 e-textile mesh — with the energy-aware routing algorithm (EAR) and
// its shortest-distance counterpart (SDR), and compare both against the
// Theorem-1 upper bound.
//
// The two configurations come straight from the scenario registry: EAR is
// the registered "paper-default" spec, SDR the registered "paper-sdr" spec.
// `etsim -list-scenarios` shows everything else that can be run the same way.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	earSpec, ok := scenario.Lookup("paper-default")
	if !ok {
		log.Fatal("paper-default scenario not registered")
	}
	sdrSpec, ok := scenario.Lookup("paper-sdr")
	if !ok {
		log.Fatal("paper-sdr scenario not registered")
	}

	ear, err := earSpec.Strategy()
	if err != nil {
		log.Fatal(err)
	}
	earResult, err := ear.Simulate()
	if err != nil {
		log.Fatal(err)
	}

	sdrResult, err := sdrSpec.Simulate()
	if err != nil {
		log.Fatal(err)
	}

	bound, err := ear.UpperBound()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Distributed AES-128 on a %dx%d e-textile mesh\n\n", earSpec.Mesh, earSpec.Mesh)
	fmt.Printf("EAR (energy-aware routing):      %3d jobs completed, system died after %d cycles (%s)\n",
		earResult.JobsCompleted, earResult.LifetimeCycles, earResult.Reason)
	fmt.Printf("SDR (shortest-distance routing): %3d jobs completed, system died after %d cycles (%s)\n",
		sdrResult.JobsCompleted, sdrResult.LifetimeCycles, sdrResult.Reason)
	if sdrResult.JobsCompleted > 0 {
		fmt.Printf("\nEAR completes %.1fx more encryption jobs than SDR.\n",
			float64(earResult.JobsCompleted)/float64(sdrResult.JobsCompleted))
	}
	fmt.Printf("Theorem 1 upper bound for any routing strategy: %.1f jobs\n", bound.Jobs)
	fmt.Printf("EAR therefore achieves %.0f%% of the theoretical maximum.\n",
		100*bound.Achieved(float64(earResult.JobsCompleted)))
	fmt.Printf("\nEAR energy breakdown: computation %.0f pJ, communication %.0f pJ, control exchange %.0f pJ (%.1f%% overhead)\n",
		earResult.Energy.ComputationPJ, earResult.Energy.CommunicationPJ,
		earResult.Energy.ControlExchangePJ(), 100*earResult.Energy.ControlOverheadFraction())
}
