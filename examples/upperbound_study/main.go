// Upper-bound study: evaluates Theorem 1 for every mesh size of the paper and
// compares the analytical limit with what EAR actually achieves in simulation
// under both the ideal and the thin-film battery models — a superset of the
// paper's Table 2.
//
// Run with:
//
//	go run ./examples/upperbound_study
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	table := stats.NewTable("Theorem 1 vs simulated EAR",
		"mesh", "J* (Theorem 1)", "EAR, ideal battery", "achieved", "EAR, thin-film battery")
	for _, n := range []int{4, 5, 6, 7, 8} {
		ideal, err := core.EAR(n, core.WithIdealBatteries())
		if err != nil {
			log.Fatal(err)
		}
		idealRes, err := ideal.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		bound, err := ideal.UpperBound()
		if err != nil {
			log.Fatal(err)
		}
		thin, err := core.EAR(n)
		if err != nil {
			log.Fatal(err)
		}
		thinRes, err := thin.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(
			fmt.Sprintf("%dx%d", n, n),
			fmt.Sprintf("%.2f", bound.Jobs),
			idealRes.JobsCompleted,
			fmt.Sprintf("%.0f%%", 100*bound.Achieved(float64(idealRes.JobsCompleted))),
			thinRes.JobsCompleted,
		)
	}
	fmt.Print(table.Render())
	fmt.Println("\nNo routing strategy can exceed J*; the gap is due to multi-hop communication on the")
	fmt.Println("mesh (the bound assumes single-hop), control-information exchange and imperfect balance.")
}
