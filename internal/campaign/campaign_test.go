package campaign

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestSeedStreamIndexAddressable(t *testing.T) {
	s := Stream{Base: 42}
	// The seeds of a replicate are a pure function of (base, index): reading
	// them in any order, repeatedly, gives the same values.
	a0, a1 := s.At(0), s.At(1)
	if s.At(1) != a1 || s.At(0) != a0 {
		t.Error("stream output changed between calls")
	}
	// Distinct indices and distinct channels draw distinct seeds.
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		seeds := s.At(i)
		seen[seeds.Mapping]++
		seen[seeds.Faults]++
	}
	if len(seen) != 2000 {
		t.Errorf("seed stream collided: %d distinct values from 2000 draws", len(seen))
	}
	// Different bases draw unrelated sequences.
	if (Stream{Base: 43}).At(0) == a0 {
		t.Error("different base seeds produced identical replicate seeds")
	}
}

func TestSeedStreamWordsAndChildren(t *testing.T) {
	s := Stream{Base: 42}
	// At is defined in terms of Word: replicate i's seeds are words 2i, 2i+1.
	for i := 0; i < 16; i++ {
		seeds := s.At(i)
		if seeds.Mapping != s.Word(uint64(2*i)) || seeds.Faults != s.Word(uint64(2*i+1)) {
			t.Fatalf("At(%d) disagrees with Word addressing", i)
		}
	}
	// Child streams are index-addressed and collision-free across children,
	// word indices and the parent's own sequence. In particular the diagonal
	// Sub(i).Word(k) vs Sub(i+1).Word(k-1) must not alias, which a naive
	// additive child base would.
	seen := map[uint64]string{}
	record := func(v uint64, label string) {
		if prev, ok := seen[v]; ok {
			t.Fatalf("seed stream collided: %s == %s", label, prev)
		}
		seen[v] = label
	}
	for k := uint64(0); k < 100; k++ {
		record(s.Word(k), "parent")
	}
	for i := uint64(0); i < 20; i++ {
		child := s.Sub(i)
		for k := uint64(0); k < 100; k++ {
			record(child.Word(k), "child")
		}
	}
	// Purity: the same (base, child, word) address always draws the same
	// value.
	if s.Sub(3).Word(7) != s.Sub(3).Word(7) {
		t.Error("child stream draw is not a pure function of its address")
	}
}

// TestTransientChannelNoCollision pins the seed-channel layout: the
// Transient channel lives on Sub(0), so (a) its words never collide with the
// Mapping/Faults words of the parent sequence for any realistic campaign
// size, and (b) adding the channel left the original two-word replicate
// layout untouched — existing campaigns redraw exactly the seeds they drew
// before the channel existed.
func TestTransientChannelNoCollision(t *testing.T) {
	s := Stream{Base: 42}
	seen := map[uint64]string{}
	record := func(v uint64, label string) {
		if prev, ok := seen[v]; ok {
			t.Fatalf("seed channels collided: %s == %s", label, prev)
		}
		seen[v] = label
	}
	for i := 0; i < 2000; i++ {
		seeds := s.At(i)
		record(seeds.Mapping, "mapping")
		record(seeds.Faults, "faults")
		record(seeds.Transient, "transient")
		// The layout contract, word by word.
		if seeds.Mapping != s.Word(uint64(2*i)) || seeds.Faults != s.Word(uint64(2*i+1)) {
			t.Fatalf("At(%d): Mapping/Faults moved off words 2i/2i+1", i)
		}
		if seeds.Transient != s.Sub(transientChannel).Word(uint64(i)) {
			t.Fatalf("At(%d): Transient moved off Sub(%d)", i, transientChannel)
		}
	}
}

// TestReplicateReseedsFaultSchedule pins the chaos-campaign contract: a
// replicate's runtime fault schedule is re-seeded from the Transient channel
// while every other clause survives the round trip, and a malformed clause
// string is passed through untouched to fail in Strategy with its parse
// error.
func TestReplicateReseedsFaultSchedule(t *testing.T) {
	base := scenario.Spec{
		Name:   "chaos-mc-test",
		Mesh:   5,
		Faults: "link=0.05:8,crash=0.02:12,seed=1",
	}
	sp := Spec{Scenario: base, Replications: 10, Seed: 7}
	r3 := sp.Replicate(3)
	want := Stream{Base: 7}.At(3).Transient
	fsp, err := faults.ParseSpec(r3.Faults)
	if err != nil {
		t.Fatalf("replicate fault schedule %q does not parse: %v", r3.Faults, err)
	}
	if fsp.Seed != want {
		t.Errorf("replicate fault seed = %d, want Transient draw %d", fsp.Seed, want)
	}
	if fsp.LinkRate != 0.05 || fsp.LinkRecoveryFrames != 8 || fsp.NodeRate != 0.02 || fsp.NodeRecoveryFrames != 12 {
		t.Errorf("re-seeding perturbed non-seed clauses: %q", r3.Faults)
	}
	if sp.Replicate(3).Faults != r3.Faults {
		t.Error("replicate fault schedule not deterministic")
	}
	if a, b := sp.Replicate(3).Faults, sp.Replicate(4).Faults; a == b {
		t.Error("adjacent replicates share a fault-schedule seed")
	}

	// A scenario without a schedule stays without one.
	noFaults := sp
	noFaults.Scenario.Faults = ""
	if got := noFaults.Replicate(3).Faults; got != "" {
		t.Errorf("empty schedule became %q", got)
	}
	// Malformed schedules pass through for Strategy to reject.
	malformed := sp
	malformed.Scenario.Faults = "link=broken"
	if got := malformed.Replicate(3).Faults; got != "link=broken" {
		t.Errorf("malformed schedule rewritten to %q", got)
	}
	if _, err := malformed.Replicate(3).Strategy(); err == nil {
		t.Error("malformed schedule accepted by Strategy")
	}
}

func TestReplicateDerivesSeedsOnly(t *testing.T) {
	base := scenario.Spec{
		Name:    "mc-test",
		Mesh:    5,
		Mapping: scenario.MappingRandom,
	}
	sp := Spec{Scenario: base, Replications: 10, Seed: 7}
	r3 := sp.Replicate(3)
	want := Stream{Base: 7}.At(3)
	if r3.MappingSeed != want.Mapping || r3.FailedLinkSeed != want.Faults {
		t.Errorf("replicate seeds = %d/%d, want %d/%d",
			r3.MappingSeed, r3.FailedLinkSeed, want.Mapping, want.Faults)
	}
	// Everything but the seeds is the base scenario.
	r3.MappingSeed, r3.FailedLinkSeed = base.MappingSeed, base.FailedLinkSeed
	if r3 != base {
		t.Errorf("Replicate changed non-seed fields: %+v", r3)
	}
	if sp.Replicate(3) != sp.Replicate(3) {
		t.Error("Replicate not deterministic")
	}
	if sp.Replicate(3).MappingSeed == sp.Replicate(4).MappingSeed {
		t.Error("adjacent replicates share a mapping seed")
	}
}

// testWorkerCounts mirrors the determinism suites of internal/experiments:
// serial, a fixed small fan-out, and this machine's default.
func testWorkerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// TestCampaignDeterministicAcrossWorkers is the acceptance-criterion test: a
// 100-replicate paper-default campaign produces byte-identical mean/CI/
// quantile output at every worker count.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	base, ok := scenario.Lookup("paper-default")
	if !ok {
		t.Fatal("paper-default not registered")
	}
	sp := Spec{Scenario: base, Replications: 100, Seed: 1}
	ref, err := Run(sp, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	refOut := ref.Table().Render()
	if ref.Jobs.Count() != 100 {
		t.Fatalf("jobs aggregate folded %d replicates, want 100", ref.Jobs.Count())
	}
	for _, workers := range testWorkerCounts() {
		res, err := Run(sp, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if out := res.Table().Render(); out != refOut {
			t.Errorf("workers=%d: campaign output differs from the serial run:\n%s\nvs\n%s",
				workers, out, refOut)
		}
		if *res != *ref {
			t.Errorf("workers=%d: aggregate state differs from the serial run", workers)
		}
	}
}

// TestCampaignVarianceAcrossSeededDraws runs a campaign over a genuinely
// stochastic scenario (random mapping on a damaged fabric) and checks that
// the seed stream actually produces distinct draws — nonzero variance — while
// staying deterministic across worker counts and for a fixed seed.
func TestCampaignVarianceAcrossSeededDraws(t *testing.T) {
	base := scenario.Spec{
		Name:               "mc-variance",
		Mesh:               4,
		Mapping:            scenario.MappingRandom,
		FailedLinkFraction: 0.1,
	}
	sp := Spec{Scenario: base, Replications: 16, Seed: 3}
	ref, err := Run(sp, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Jobs.StdDev() == 0 {
		t.Error("random-mapping campaign produced zero variance: replicates are not being re-drawn")
	}
	if ref.Jobs.Min() == ref.Jobs.Max() {
		t.Error("every replicate completed the same number of jobs")
	}
	if ref.Jobs.CI95() <= 0 {
		t.Errorf("CI95 = %g, want > 0", ref.Jobs.CI95())
	}
	for _, workers := range testWorkerCounts()[1:] {
		res, err := Run(sp, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if *res != *ref {
			t.Errorf("workers=%d: aggregates differ from the serial run", workers)
		}
	}
	// A different campaign seed draws a different replicate sequence.
	other, err := Run(Spec{Scenario: base, Replications: 16, Seed: 4}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if other.Jobs == ref.Jobs {
		t.Error("different campaign seeds produced identical aggregates")
	}
}

// TestCampaignBatchSizeInvariant pins that the batch size only bounds memory:
// because results are folded in global replicate order, any batch size yields
// identical aggregates.
func TestCampaignBatchSizeInvariant(t *testing.T) {
	base := scenario.Spec{Mesh: 4, Mapping: scenario.MappingRandom}
	ref, err := Run(Spec{Scenario: base, Replications: 7, Seed: 2, BatchSize: 7}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 2, 3, 64} {
		res, err := Run(Spec{Scenario: base, Replications: 7, Seed: 2, BatchSize: batch}, WithWorkers(2))
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if res.Jobs != ref.Jobs || res.Lifetime != ref.Lifetime {
			t.Errorf("batch=%d: aggregates differ from the single-batch run", batch)
		}
		if res.Jobs.Count() != 7 {
			t.Errorf("batch=%d: folded %d replicates, want 7", batch, res.Jobs.Count())
		}
	}
}

func TestCampaignErrors(t *testing.T) {
	if _, err := Run(Spec{Scenario: scenario.Spec{Mesh: 4}}); err == nil {
		t.Error("zero replications accepted")
	}
	if _, err := Run(Spec{Scenario: scenario.Spec{Mesh: -1}, Replications: 2}); err == nil {
		t.Error("invalid mesh accepted")
	}
	if _, err := Run(Spec{
		Scenario:     scenario.Spec{Mesh: 4, Algorithm: "nope"},
		Replications: 2,
	}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCampaignResultRendering(t *testing.T) {
	res, err := Run(Spec{Scenario: scenario.Spec{Mesh: 4}, Replications: 3, Seed: 1}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	metrics := res.Metrics()
	if len(metrics) != 9 {
		t.Fatalf("got %d metrics", len(metrics))
	}
	for _, m := range metrics {
		if m.Summary.Count() != 3 {
			t.Errorf("metric %s folded %d replicates, want 3", m.Name, m.Summary.Count())
		}
	}
	tbl := res.Table()
	if tbl.NumRows() != len(metrics) {
		t.Errorf("table has %d rows, want %d", tbl.NumRows(), len(metrics))
	}
	out := tbl.Render()
	for _, want := range []string{"3 replicates", "seed 1", "jobs completed", "±95% CI", "P99"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(tbl.CSV(), "metric,mean") {
		t.Error("campaign CSV missing header")
	}
}

// TestCampaignPayloadVerification pins that replication preserves the
// payload-verification contract: verified scenarios surface their counters
// as extra metrics and AnyPayloadMismatch reflects the replicates.
func TestCampaignPayloadVerification(t *testing.T) {
	res, err := Run(Spec{
		Scenario:     scenario.Spec{Mesh: 4, VerifyPayload: true},
		Replications: 2,
		Seed:         1,
	}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics()) != 11 {
		t.Fatalf("verified campaign reports %d metrics, want 11 (incl. payload rows)", len(res.Metrics()))
	}
	if res.PayloadVerified.Max() <= 0 {
		t.Error("verified campaign recorded no verified payloads")
	}
	if res.AnyPayloadMismatch() {
		t.Errorf("reference AES produced mismatches: %+v", res.PayloadMismatches)
	}
	if !strings.Contains(res.Table().Render(), "AES payloads verified") {
		t.Error("campaign table missing the payload rows")
	}
	// A mismatch in any replicate must be visible through AnyPayloadMismatch.
	var withMismatch Result
	withMismatch.observe(&sim.Result{PayloadMismatches: 1})
	if !withMismatch.AnyPayloadMismatch() {
		t.Error("AnyPayloadMismatch missed a mismatching replicate")
	}
}

// TestCampaignAggregationAllocFree is the acceptance-criterion alloc guard:
// folding a replicate's sim.Result into a warm campaign Result — the only
// per-replicate work the campaign layer adds on top of the simulation — is
// allocation-free in steady state.
func TestCampaignAggregationAllocFree(t *testing.T) {
	spec := scenario.Spec{Mesh: 4}
	out, err := spec.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	// Warm-up: quantile estimators finish their collection phase after five
	// observations; steady state begins there.
	for i := 0; i < 8; i++ {
		res.observe(&out)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		res.observe(&out)
	}); allocs != 0 {
		t.Errorf("observe allocates %.1f objects per replicate, want 0", allocs)
	}
}

// TestCampaignReplicateReconstruction pins the debugging workflow: the seeds
// of any single replicate can be recomputed and its simulation re-run in
// isolation with the identical outcome.
func TestCampaignReplicateReconstruction(t *testing.T) {
	base := scenario.Spec{Mesh: 4, Mapping: scenario.MappingRandom}
	sp := Spec{Scenario: base, Replications: 6, Seed: 9}
	var direct [6]sim.Result
	for i := range direct {
		out, err := sp.Replicate(i).Simulate()
		if err != nil {
			t.Fatal(err)
		}
		direct[i] = out
	}
	res, err := Run(sp, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	var ref Result
	for i := range direct {
		ref.observe(&direct[i])
	}
	if res.Jobs != ref.Jobs || res.Lifetime != ref.Lifetime || res.EnergyPJ != ref.EnergyPJ {
		t.Error("campaign aggregates differ from individually reconstructed replicates")
	}
}
