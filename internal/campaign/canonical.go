package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"repro/internal/scenario"
)

// campaignDomain versions the campaign canonical encoding, separating its
// fingerprint space from scenario fingerprints: a campaign of one replicate
// never aliases the bare scenario's cache entry (their results have different
// shapes). Bump on any change to canonicalCampaign or to what it includes.
const campaignDomain = "repro/campaign/v1\n"

// canonicalCampaign is the fixed-shape encoding target for campaign specs.
// The embedded scenario is its canonical encoding, so every scenario-level
// normalization rule applies transitively. BatchSize is deliberately absent:
// it only bounds memory and scheduling granularity, and the aggregates are
// proven identical across batch sizes — two campaigns differing only there
// are the same computation and must share a cache entry.
type canonicalCampaign struct {
	Scenario     json.RawMessage
	Replications int
	Seed         uint64
}

// CanonicalJSON returns the campaign's canonical byte encoding.
func (sp Spec) CanonicalJSON() ([]byte, error) {
	scen, err := sp.Scenario.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	return json.Marshal(canonicalCampaign{
		Scenario:     scen,
		Replications: sp.Replications,
		Seed:         sp.Seed,
	})
}

// Fingerprint returns the campaign's content address: SHA-256 over the
// campaign domain string and the canonical encoding — the key under which
// internal/serve memoizes the campaign's aggregate summary.
func (sp Spec) Fingerprint() (scenario.Fingerprint, error) {
	enc, err := sp.CanonicalJSON()
	if err != nil {
		return scenario.Fingerprint{}, err
	}
	h := sha256.New()
	h.Write([]byte(campaignDomain))
	h.Write(enc)
	var f scenario.Fingerprint
	h.Sum(f[:0])
	return f, nil
}

// ParseSpecJSON decodes a campaign spec from client-supplied JSON, strictly:
// unknown fields anywhere (including inside the nested scenario) are
// rejected, field order is irrelevant, trailing data is an error.
func ParseSpecJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("campaign: decoding spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("campaign: trailing data after spec JSON")
	}
	return sp, nil
}
