// Package campaign runs Monte-Carlo replication campaigns over the
// declarative scenarios of internal/scenario: the same scenario is simulated
// many times with per-replicate seeds drawn from a deterministic stream, and
// every sim.Result is folded into streaming stats.Summary aggregates (mean,
// variance, t-based confidence intervals, P50/P90/P99 quantiles). A campaign
// therefore reports *expected* figures of merit with error bars instead of
// the single draw a bare simulation gives — which is what the paper's
// claims about EAR's lifetime and job-count advantage are actually about.
//
// The design invariants, in order of importance:
//
//   - Determinism. Replicate i's seeds are an index-addressed function of
//     the campaign seed (see Stream), and results are folded in replicate
//     order regardless of which worker simulated them, so a campaign's
//     aggregates are byte-identical for every worker count.
//   - O(1) memory. Replicates are simulated in fixed-size batches through
//     runner; only the current batch's results exist at once and every
//     aggregate is streaming, so a 10k-replicate campaign costs no more
//     memory than a batch-sized one.
//   - Zero per-replicate aggregation garbage. Folding a sim.Result into a
//     Result allocates nothing (guarded by a testing.AllocsPerRun test), so
//     aggregation overhead is noise next to the simulation itself.
//
// Campaigns are the layer every stochastic workload plugs into: random
// mapping draws and link-fault patterns today, battery variance and
// transient faults tomorrow — a new stochastic knob is a new seed channel in
// Seeds plus a field in scenario.Spec, with no change to this package's
// execution model.
package campaign

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DefaultBatchSize is the number of replicates simulated per runner batch
// when Spec.BatchSize is 0. It bounds peak memory (one sim.Result per batch
// slot) and is deliberately independent of the worker count so that batch
// boundaries — and therefore everything downstream — never depend on the
// machine.
const DefaultBatchSize = 64

// Spec describes one Monte-Carlo campaign: a base scenario plus how many
// times to re-draw it.
type Spec struct {
	// Scenario is the base scenario. Its stochastic knobs (MappingSeed,
	// FailedLinkSeed) are overridden per replicate by the seed stream; all
	// other fields are shared by every replicate.
	Scenario scenario.Spec
	// Replications is the number of independent replicates (must be >= 1).
	Replications int
	// Seed is the campaign-level base seed of the replicate seed stream.
	// Two campaigns with different seeds draw unrelated replicate sequences;
	// the same seed reproduces the campaign exactly.
	Seed uint64
	// BatchSize overrides DefaultBatchSize (0 = default). It only bounds
	// memory and scheduling granularity: the aggregates are identical for
	// every batch size because folding happens in global replicate order.
	BatchSize int
}

// Replicate returns the scenario spec of replicate i: the base scenario with
// its stochastic seeds replaced by the stream's draws for index i. It is a
// pure function, so any single replicate can be reconstructed and re-run in
// isolation (e.g. to debug an outlier draw).
func (sp Spec) Replicate(i int) scenario.Spec {
	seeds := Stream{Base: sp.Seed}.At(i)
	rep := sp.Scenario
	rep.MappingSeed = seeds.Mapping
	rep.FailedLinkSeed = seeds.Faults
	if rep.Faults != "" {
		// Re-seed the runtime fault schedule from the Transient channel, so a
		// chaos campaign draws an independent schedule per replicate. A
		// malformed clause string is left as-is; it fails in Strategy with the
		// proper parse error.
		if fsp, err := faults.ParseSpec(rep.Faults); err == nil {
			fsp.Seed = seeds.Transient
			rep.Faults = fsp.String()
		}
	}
	return rep
}

// Option configures how a campaign executes.
type Option func(*config)

type config struct {
	workers int
	ctx     context.Context
}

// WithWorkers sets the number of worker goroutines simulating replicates.
// Values below 1 (and the default) select runner.DefaultWorkers();
// WithWorkers(1) forces a serial run. The aggregates are identical for every
// worker count.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithContext ties the campaign to a context: once cancelled, no new
// replicates start and the in-flight ones abort at their next scheduling
// boundary (via sim.Config.Cancel), so an abandoned campaign stops burning
// CPU promptly. Run then returns the context's error. The aggregates of a
// campaign that ran to completion are unaffected by the option.
func WithContext(ctx context.Context) Option {
	return func(c *config) {
		if ctx != nil {
			c.ctx = ctx
		}
	}
}

// Result holds a campaign's streaming aggregates: one stats.Summary per
// reported metric, each folded over every replicate. No per-replicate data
// is retained.
type Result struct {
	// Spec is the campaign that produced this result.
	Spec Spec

	// Jobs aggregates sim.Result.JobsCompleted, the paper's figure of merit.
	Jobs stats.Summary
	// JobsLost aggregates jobs abandoned at node death.
	JobsLost stats.Summary
	// Lifetime aggregates the system lifetime in cycles.
	Lifetime stats.Summary
	// Frames aggregates the TDMA frame count.
	Frames stats.Summary
	// Recomputes aggregates controller routing recomputations.
	Recomputes stats.Summary
	// Deadlocks aggregates deadlock reports.
	Deadlocks stats.Summary
	// DeadNodes aggregates the number of exhausted nodes at death.
	DeadNodes stats.Summary
	// EnergyPJ aggregates the total energy actually consumed.
	EnergyPJ stats.Summary
	// ControlOverhead aggregates the control-exchange overhead fraction.
	ControlOverhead stats.Summary
	// PayloadVerified and PayloadMismatches aggregate the end-to-end AES
	// verification counters of scenarios that carry real payloads. They are
	// all-zero (and omitted from Metrics) when the scenario does not verify.
	PayloadVerified   stats.Summary
	PayloadMismatches stats.Summary
}

// AnyPayloadMismatch reports whether any replicate produced a ciphertext
// mismatch — the campaign form of a single run's hard verification failure.
func (r *Result) AnyPayloadMismatch() bool { return r.PayloadMismatches.Max() > 0 }

// MismatchError returns a descriptive error when any replicate mismatched a
// verified payload, and nil otherwise. The CLIs treat it as a hard failure,
// preserving the single-run verification contract under replication.
func (r *Result) MismatchError() error {
	if !r.AnyPayloadMismatch() {
		return nil
	}
	total := r.PayloadMismatches.Mean() * float64(r.PayloadMismatches.Count())
	return fmt.Errorf("%.0f payload mismatches across %d replicates (max %g in one run)",
		total, r.PayloadMismatches.Count(), r.PayloadMismatches.Max())
}

// observe folds one replicate's outcome into every aggregate. It must not
// allocate: this is the per-replicate hot path on top of the simulation.
func (r *Result) observe(res *sim.Result) {
	r.Jobs.Observe(float64(res.JobsCompleted))
	r.JobsLost.Observe(float64(res.JobsLost))
	r.Lifetime.Observe(float64(res.LifetimeCycles))
	r.Frames.Observe(float64(res.Frames))
	r.Recomputes.Observe(float64(res.RoutingRecomputes))
	r.Deadlocks.Observe(float64(res.DeadlockReports))
	r.DeadNodes.Observe(float64(res.DeadNodes))
	r.EnergyPJ.Observe(res.Energy.TotalConsumedPJ())
	r.ControlOverhead.Observe(res.Energy.ControlOverheadFraction())
	r.PayloadVerified.Observe(float64(res.PayloadJobsVerified))
	r.PayloadMismatches.Observe(float64(res.PayloadMismatches))
}

// Metric pairs a reported metric's display name with its aggregate.
type Metric struct {
	Name    string
	Summary *stats.Summary
}

// Metrics returns the result's aggregates in reporting order. The pointers
// alias the result's own summaries. The payload-verification aggregates
// appear only when some replicate actually verified or mismatched a payload,
// mirroring how a single etsim run reports them.
func (r *Result) Metrics() []Metric {
	metrics := []Metric{
		{"jobs completed", &r.Jobs},
		{"jobs lost", &r.JobsLost},
		{"lifetime [cycles]", &r.Lifetime},
		{"TDMA frames", &r.Frames},
		{"routing recomputations", &r.Recomputes},
		{"deadlock reports", &r.Deadlocks},
		{"dead nodes", &r.DeadNodes},
		{"energy consumed [pJ]", &r.EnergyPJ},
		{"control overhead", &r.ControlOverhead},
	}
	if r.PayloadVerified.Max() > 0 || r.PayloadMismatches.Max() > 0 {
		metrics = append(metrics,
			Metric{"AES payloads verified", &r.PayloadVerified},
			Metric{"AES payload mismatches", &r.PayloadMismatches})
	}
	return metrics
}

// Table renders the campaign as a metric-per-row table with mean ± 95% CI
// and quantile columns — the body of `etcampaign` in both table and CSV
// form.
func (r *Result) Table() *stats.Table {
	title := fmt.Sprintf("Campaign: %s, %d replicates (seed %d)",
		r.Spec.Scenario.Label(), r.Spec.Replications, r.Spec.Seed)
	t := stats.NewTable(title,
		"metric", "mean", "±95% CI", "std dev", "min", "P50", "P90", "P99", "max")
	for _, m := range r.Metrics() {
		s := m.Summary
		t.AddRow(m.Name, s.Mean(), s.CI95(), s.StdDev(),
			s.Min(), s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99), s.Max())
	}
	return t
}

// Run executes the campaign: Replications independent replicates of the base
// scenario, seeded by the campaign's stream, simulated in fixed-size batches
// over a runner pool and folded into a fresh Result in replicate order.
//
// Errors from any replicate abort the campaign with the lowest failing
// replicate's error (runner's schedule-independent error selection).
func Run(sp Spec, opts ...Option) (*Result, error) {
	if sp.Replications < 1 {
		return nil, fmt.Errorf("campaign %s: replications must be >= 1, got %d",
			sp.Scenario.Label(), sp.Replications)
	}
	// Materialise replicate 0 once up front so configuration errors (bad
	// mesh, unknown algorithm) surface immediately instead of from inside
	// a worker.
	if _, err := sp.Replicate(0).Strategy(); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	// runner.WithContext ignores a nil context, so the uncancellable default
	// costs nothing.
	pool := runner.New(runner.WithWorkers(cfg.workers), runner.WithContext(cfg.ctx))

	// simulate runs one replicate, threading the campaign context into the
	// engine's scheduling loop when one is configured.
	simulate := func(rep scenario.Spec) (sim.Result, error) {
		if cfg.ctx == nil {
			return rep.Simulate()
		}
		s, err := rep.Strategy(core.WithContext(cfg.ctx))
		if err != nil {
			return sim.Result{}, err
		}
		return s.Simulate()
	}

	batch := sp.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > sp.Replications {
		batch = sp.Replications
	}

	res := &Result{Spec: sp}
	buf := make([]sim.Result, batch)
	for start := 0; start < sp.Replications; start += batch {
		n := batch
		if rest := sp.Replications - start; rest < n {
			n = rest
		}
		// Simulate the batch in parallel: each cell owns its simulator and
		// writes its result at its batch slot, so the buffer needs no locks.
		err := pool.Run(n, func(j int) error {
			out, err := simulate(sp.Replicate(start + j))
			if err != nil {
				return fmt.Errorf("replicate %d: %w", start+j, err)
			}
			if out.Reason == sim.DeathCancelled {
				// A truncated replicate must never be folded: abort the campaign
				// with the context's error so callers cannot mistake a partial
				// aggregate for a real one.
				if cfg.ctx != nil && cfg.ctx.Err() != nil {
					return cfg.ctx.Err()
				}
				return fmt.Errorf("replicate %d: cancelled", start+j)
			}
			buf[j] = out
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("campaign %s: %w", sp.Scenario.Label(), err)
		}
		// Fold serially in replicate order — this is what makes aggregates
		// (including the order-sensitive P² quantiles) independent of worker
		// scheduling.
		for j := 0; j < n; j++ {
			res.observe(&buf[j])
		}
	}
	return res, nil
}
