package campaign

// The seed stream: a SplitMix64-style generator addressed by output index
// instead of advanced by successive calls. Replicate i of a campaign needs
// its stochastic knobs (random-mapping draw, link-fault pattern) seeded
// independently of every other replicate and independently of which worker
// happens to simulate it, so the stream is a pure function of
// (base seed, replicate index, channel): no state advances, no ordering
// requirement, and any replicate's seeds can be recomputed in isolation
// (which is how a single interesting draw is re-run under `etsim -seed`).

// golden is the SplitMix64 state increment (2^64 / φ, odd).
const golden = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output function: a bijective finalizer that turns
// the weakly distributed state counter into a well-mixed 64-bit value.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Stream derives per-replicate seeds from one base seed. The zero value is a
// valid stream (base seed 0).
type Stream struct {
	// Base is the campaign-level seed; two campaigns with different bases
	// draw unrelated replicate sequences.
	Base uint64
}

// Seeds are the derived sub-seeds of one replicate, one per stochastic knob
// of a scenario.
type Seeds struct {
	// Mapping seeds the random module-to-node placement
	// (scenario.Spec.MappingSeed).
	Mapping uint64
	// Faults seeds the static link-fault pattern (scenario.Spec.FailedLinkSeed).
	Faults uint64
	// Transient seeds the runtime fault schedule (the seed clause of
	// scenario.Spec.Faults). It lives on its own Sub-channel of the stream,
	// so adding it never perturbed the Mapping/Faults words existing
	// campaigns were already drawing.
	Transient uint64
}

// transientChannel is the Sub-stream index reserved for the Transient seed
// channel. New channels take the next index; the parent stream's words stay
// reserved for the original two-word replicate layout.
const transientChannel = 0

// At returns replicate i's seeds: outputs 2i and 2i+1 of the SplitMix64
// sequence seeded at Base, plus one word of the reserved Transient
// sub-channel. The result depends only on (Base, i).
func (s Stream) At(i int) Seeds {
	k := uint64(i) * 2
	return Seeds{
		Mapping:   s.Word(k),
		Faults:    s.Word(k + 1),
		Transient: s.Sub(transientChannel).Word(uint64(i)),
	}
}

// Word returns the i-th raw 64-bit draw of the stream: a pure function of
// (Base, i) with no generator state, so draw k can be recomputed in isolation
// by any consumer. The replicate seeds of At are words 2i and 2i+1; other
// subsystems (the placement optimizer's move streams) address the same
// sequence directly.
func (s Stream) Word(i uint64) uint64 {
	return mix64(s.Base + (i+1)*golden)
}

// Sub derives an independent child stream: child i's draws are unrelated to
// the parent's and to every other child's, yet remain a pure function of
// (Base, i). This is how hierarchical consumers — restart r of an
// optimization run, say — get their own index-addressed randomness without
// coordinating: move k of restart r is Sub(r).Word(k), a function of the one
// base seed.
func (s Stream) Sub(i uint64) Stream {
	// The child base is a fully mixed function of (Base, i): running the
	// counter through mix64 before it becomes a base keeps child i's word
	// sequence from ever aliasing child j's (a plain additive offset would
	// make Sub(i).Word(k) collide with Sub(i+1).Word(k-1)).
	return Stream{Base: mix64(mix64(s.Base^0xA5A5A5A5A5A5A5A5) + (i+1)*golden)}
}
