package campaign

import (
	"testing"

	"repro/internal/scenario"
)

// BenchmarkCampaign measures a small serial campaign end-to-end and its two
// components: the bare simulations ("simulate-only") and the per-replicate
// aggregation fold ("observe"). Comparing run vs simulate-only shows the
// campaign layer adds near-zero overhead per replicate; the observe
// sub-benchmark reports the fold itself (with -benchmem it must show
// 0 allocs/op, the property TestCampaignAggregationAllocFree guards).
func BenchmarkCampaign(b *testing.B) {
	base := scenario.Spec{Mesh: 4, Mapping: scenario.MappingRandom}
	const replicates = 4

	b.Run("run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(Spec{Scenario: base, Replications: replicates, Seed: 1},
				WithWorkers(1)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("simulate-only", func(b *testing.B) {
		sp := Spec{Scenario: base, Replications: replicates, Seed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < replicates; r++ {
				if _, err := sp.Replicate(r).Simulate(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("observe", func(b *testing.B) {
		out, err := base.Simulate()
		if err != nil {
			b.Fatal(err)
		}
		res := &Result{}
		for i := 0; i < 8; i++ {
			res.observe(&out) // warm the quantile estimators
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res.observe(&out)
		}
	})
}
