package campaign

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestCampaignFingerprintIgnoresBatchSize: batch size is a memory knob with
// proven-identical aggregates, so it must not split the cache.
func TestCampaignFingerprintIgnoresBatchSize(t *testing.T) {
	base := Spec{Scenario: scenario.Spec{Mesh: 4}, Replications: 10, Seed: 7}
	batched := base
	batched.BatchSize = 3
	fa, err := base.Fingerprint()
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	fb, err := batched.Fingerprint()
	if err != nil {
		t.Fatalf("batched: %v", err)
	}
	if fa != fb {
		t.Fatalf("batch size split the fingerprint: %s vs %s", fa, fb)
	}
}

// TestCampaignFingerprintDistinguishes: every aggregate-relevant field must
// move the fingerprint, including scenario-level changes through the nested
// canonical encoding.
func TestCampaignFingerprintDistinguishes(t *testing.T) {
	base := Spec{Scenario: scenario.Spec{Mesh: 4}, Replications: 10, Seed: 7}
	variants := []Spec{
		{Scenario: scenario.Spec{Mesh: 4}, Replications: 11, Seed: 7},
		{Scenario: scenario.Spec{Mesh: 4}, Replications: 10, Seed: 8},
		{Scenario: scenario.Spec{Mesh: 5}, Replications: 10, Seed: 7},
		{Scenario: scenario.Spec{Mesh: 4, Algorithm: scenario.AlgorithmSDR}, Replications: 10, Seed: 7},
	}
	bf, err := base.Fingerprint()
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	seen := map[scenario.Fingerprint]int{bf: -1}
	for i, v := range variants {
		f, err := v.Fingerprint()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[f]; dup {
			t.Errorf("variant %d collides with variant %d: %s", i, prev, f)
		}
		seen[f] = i
	}
}

// TestCampaignFingerprintDomainSeparation: a campaign over a scenario must
// never share a cache key with the bare scenario — their cached values have
// different shapes.
func TestCampaignFingerprintDomainSeparation(t *testing.T) {
	scen := scenario.Spec{Mesh: 4}
	camp := Spec{Scenario: scen, Replications: 1, Seed: 0}
	sf, err := scen.Fingerprint()
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	cf, err := camp.Fingerprint()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if sf == cf {
		t.Fatalf("campaign and scenario fingerprints alias: %s", sf)
	}
}

// TestCampaignGoldenFingerprint pins one campaign cache key. Like the scenario
// golden fingerprints, a drift here means existing disk caches went stale and
// campaignDomain must be bumped — do not just update the constant.
func TestCampaignGoldenFingerprint(t *testing.T) {
	sp, ok := scenario.Lookup("paper-default")
	if !ok {
		t.Fatal("paper-default not registered")
	}
	camp := Spec{Scenario: sp, Replications: 32, Seed: 42}
	f, err := camp.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	const want = "9ffee4875e0ff9339f90569f3700ce42e75baaa865bc1046fb42d221d004a2a2"
	if f.String() != want {
		t.Errorf("campaign fingerprint drifted:\n got  %s\n want %s", f, want)
	}
}

// TestCampaignParseSpecJSON checks strict decoding: round trip, unknown fields
// at the top level AND inside the nested scenario, trailing data.
func TestCampaignParseSpecJSON(t *testing.T) {
	good := []byte(`{"Scenario":{"Mesh":4,"Algorithm":"SDR"},"Replications":5,"Seed":9,"BatchSize":2}`)
	sp, err := ParseSpecJSON(good)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if sp.Scenario.Mesh != 4 || sp.Scenario.Algorithm != scenario.AlgorithmSDR ||
		sp.Replications != 5 || sp.Seed != 9 || sp.BatchSize != 2 {
		t.Fatalf("round trip lost fields: %+v", sp)
	}

	if _, err := ParseSpecJSON([]byte(`{"Scenario":{"Mesh":4},"Replicationz":5}`)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	_, err = ParseSpecJSON([]byte(`{"Scenario":{"Mesh":4,"Allgorithm":"SDR"},"Replications":5}`))
	if err == nil {
		t.Fatal("unknown nested scenario field accepted")
	}
	if !strings.Contains(err.Error(), "Allgorithm") {
		t.Fatalf("error does not name the offending nested field: %v", err)
	}
	if _, err := ParseSpecJSON([]byte(`{"Scenario":{"Mesh":4},"Replications":1} junk`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// TestCampaignWithContextCancel: a cancelled campaign aborts with the
// context's error instead of returning a partial aggregate.
func TestCampaignWithContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp := Spec{Scenario: scenario.Spec{Mesh: 6}, Replications: 64, Seed: 1}
	done := make(chan error, 1)
	go func() {
		_, err := Run(sp, WithWorkers(2), WithContext(ctx))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled campaign returned a result")
		}
		if !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("cancelled campaign returned unrelated error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled campaign did not abort promptly")
	}
}
