package serve

import (
	"context"
	"sync"

	"repro/internal/serve/store"
)

// flightGroup deduplicates concurrent computations of the same content
// address: while one computation for a key is in flight, later submissions
// join it instead of starting their own. Combined with the content-addressed
// store this gives the service its headline property — N identical concurrent
// submissions cost exactly one simulation.
//
// Lifetime and cancellation semantics, which differ from the classic
// singleflight in one important way:
//
//   - The computation runs on its own goroutine under a context owned by the
//     flight, NOT any one client's request context. The first client
//     disconnecting must not kill the computation the other N-1 clients are
//     waiting on.
//   - Each waiter holds a reference. A waiter whose own context is cancelled
//     detaches; when the LAST waiter detaches the flight's context is
//     cancelled, aborting the now-unwanted simulation at its next scheduling
//     boundary (sim.Config.Cancel). Results of cancelled flights are errors
//     and are never stored.
type flightGroup struct {
	mu      sync.Mutex
	flights map[store.Key]*flight
}

type flight struct {
	refs   int
	cancel context.CancelFunc
	done   chan struct{}
	val    []byte
	err    error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[store.Key]*flight)}
}

// do returns the computation's bytes for key, joining an in-flight
// computation if one exists and starting one otherwise. compute receives the
// flight's own context; it must return promptly once that context is
// cancelled. shared reports whether the result was joined rather than led.
// ctx is the calling client's context: when it ends before the flight does,
// do returns ctx.Err() (and the flight is aborted iff this was its last
// waiter).
func (g *flightGroup) do(ctx context.Context, key store.Key, compute func(context.Context) ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if ok {
		f.refs++
	} else {
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{refs: 1, cancel: cancel, done: make(chan struct{})}
		g.flights[key] = f
		go func() {
			v, err := compute(fctx)
			g.mu.Lock()
			f.val, f.err = v, err
			delete(g.flights, key)
			g.mu.Unlock()
			cancel()
			close(f.done)
		}()
	}
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.val, ok, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.refs--
		if f.refs == 0 {
			// Last waiter gone: nobody wants this result any more. Abort the
			// computation; its goroutine still runs to completion (recording
			// the cancellation error and removing the map entry), so a
			// re-submission after the abort starts a fresh flight or joins
			// the dying one and sees its error — never a stale value.
			f.cancel()
		}
		g.mu.Unlock()
		return nil, ok, ctx.Err()
	}
}

// inflight returns the number of keys currently being computed.
func (g *flightGroup) inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}

// waiters returns the total number of clients attached to in-flight
// computations (the sum of every flight's reference count) — how many
// responses the current computations will fan out to.
func (g *flightGroup) waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, f := range g.flights {
		n += f.refs
	}
	return n
}
