package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

const smallSpec = `{"Mesh":4,"ConcurrentJobs":2}`

// TestSimulateHitIsByteIdentical is the service's core contract: the second
// identical submission is a cache hit and its body is byte-identical to the
// cold compute.
func TestSimulateHitIsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	r1, cold := post(t, ts.URL+"/simulate", smallSpec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("cold submit: %d %s", r1.StatusCode, cold)
	}
	if got := r1.Header.Get(HeaderCache); got != "miss" {
		t.Fatalf("cold submit X-Cache = %q, want miss", got)
	}
	r2, hot := post(t, ts.URL+"/simulate", smallSpec)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("hot submit: %d %s", r2.StatusCode, hot)
	}
	if got := r2.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("hot submit X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, hot) {
		t.Fatal("cache hit is not byte-identical to the cold compute")
	}
	if r1.Header.Get(HeaderFingerprint) != r2.Header.Get(HeaderFingerprint) {
		t.Fatal("fingerprints differ across identical submissions")
	}
	// A semantically identical spelling (defaults made explicit, different
	// field order) lands on the same cache entry.
	r3, alias := post(t, ts.URL+"/simulate",
		`{"ConcurrentJobs":2,"Algorithm":"EAR","Mesh":4,"Battery":"thinfilm"}`)
	if got := r3.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("aliased spelling X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, alias) {
		t.Fatal("aliased spelling returned different bytes")
	}
}

// TestSimulateMatchesAcrossWorkerCounts: the served bytes are independent of
// the server's admission width — the HTTP layer inherits the repo's
// worker-count determinism.
func TestSimulateMatchesAcrossWorkerCounts(t *testing.T) {
	var bodies [][]byte
	for _, workers := range []int{1, 4} {
		_, ts := newTestServer(t, Config{Workers: workers})
		resp, body := post(t, ts.URL+"/simulate", smallSpec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: %d %s", workers, resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("workers=1 and workers=4 served different bytes")
	}
}

// TestSimulateSingleFlight: N concurrent identical submissions run ONE
// simulation; everyone gets the same bytes.
func TestSimulateSingleFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	const n = 8
	bodies := make([][]byte, n)
	statuses := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/simulate", "application/json",
				strings.NewReader(`{"Mesh":5,"ConcurrentJobs":2}`))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
			statuses[i] = resp.Header.Get(HeaderCache)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("submission %d got different bytes", i)
		}
	}
	st := s.Store().Stats()
	if st.Puts != 1 {
		t.Fatalf("%d identical concurrent submissions ran %d simulations, want 1", n, st.Puts)
	}
	var misses int
	for _, c := range statuses {
		if c == "miss" {
			misses++
		}
	}
	if misses > 1 {
		t.Fatalf("more than one submission led the flight: %v", statuses)
	}
}

// TestSimulateClientDisconnectCancelsRun: when the only client of a running
// simulation disconnects, the run is aborted and nothing is cached.
func TestSimulateClientDisconnectCancelsRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// A mesh large enough to run for a while.
	big := `{"Mesh":16,"ConcurrentJobs":4}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/simulate", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Wait until the run is actually admitted, then hang up.
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled request reported success")
	}
	// The flight must drain (the abort propagated) and nothing may be cached.
	deadline = time.Now().Add(30 * time.Second)
	for s.flights.inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("aborted flight never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Store().Stats(); st.Puts != 0 {
		t.Fatalf("aborted run was cached: %+v", st)
	}
}

// TestSimulateRejectsBadSpecs: malformed JSON, unknown fields and invalid
// configurations fail eagerly with 4xx — never a simulation.
func TestSimulateRejectsBadSpecs(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"Mesh":4,"Allgorithm":"SDR"}`, http.StatusBadRequest},
		{`{"Mesh":4} trailing`, http.StatusBadRequest},
		{`{"Mesh":0}`, http.StatusUnprocessableEntity},
		{`{"Mesh":4,"Algorithm":"wavefront"}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+"/simulate", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.body, resp.StatusCode, body, c.want)
		}
		var e httpErrorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not structured: %s", c.body, body)
		}
	}
	if st := s.Store().Stats(); st.Puts != 0 {
		t.Fatalf("a rejected spec ran anyway: %+v", st)
	}
}

// TestCampaignEndpoint: hit/miss byte identity and a sane summary shape for
// campaigns.
func TestCampaignEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := `{"Scenario":{"Mesh":4},"Replications":5,"Seed":11}`
	r1, cold := post(t, ts.URL+"/campaign", spec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("cold: %d %s", r1.StatusCode, cold)
	}
	var sum CampaignSummary
	if err := json.Unmarshal(cold, &sum); err != nil {
		t.Fatalf("summary does not parse: %v", err)
	}
	if sum.Replications != 5 || sum.Seed != 11 || len(sum.Metrics) == 0 {
		t.Fatalf("summary malformed: %+v", sum)
	}
	for _, m := range sum.Metrics {
		if m.Count != 5 {
			t.Fatalf("metric %s folded %d replicates, want 5", m.Name, m.Count)
		}
	}
	// BatchSize is a memory knob: adding it must still hit the same entry.
	r2, hot := post(t, ts.URL+"/campaign",
		`{"Seed":11,"Replications":5,"BatchSize":2,"Scenario":{"Mesh":4}}`)
	if got := r2.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("hot X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, hot) {
		t.Fatal("campaign cache hit not byte-identical")
	}
}

// TestStreamEndpoint: a cold stream carries progress events and ends with an
// uncached result record; a second stream short-circuits to a cached result
// whose payload is byte-identical.
func TestStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	stream := func() (events []map[string]any, result map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/simulate/stream", "application/json", strings.NewReader(smallSpec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var rec map[string]any
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			if rec["type"] == "result" {
				result = rec
			} else {
				events = append(events, rec)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return events, result
	}

	events, res := stream()
	if res == nil {
		t.Fatal("cold stream had no result record")
	}
	if res["cached"] != false {
		t.Fatal("cold stream claimed to be cached")
	}
	if len(events) == 0 {
		t.Fatal("cold stream emitted no progress events")
	}
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, fmt.Sprint(e["type"]))
	}
	if !strings.Contains(strings.Join(kinds, ","), "finished") {
		t.Fatalf("no finished event in stream: %v", kinds)
	}

	events2, res2 := stream()
	if len(events2) != 0 {
		t.Fatalf("cached stream replayed %d events", len(events2))
	}
	if res2["cached"] != true {
		t.Fatal("second stream was not served from cache")
	}
	a, _ := json.Marshal(res["result"])
	b, _ := json.Marshal(res2["result"])
	if !bytes.Equal(a, b) {
		t.Fatal("streamed result differs between cold run and cache hit")
	}
}

// TestScenariosAndStatsEndpoints sanity-checks the two read-only endpoints.
func TestScenariosAndStatsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var infos []struct {
		Name        string `json:"name"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) == 0 {
		t.Fatal("no scenarios listed")
	}
	seen := map[string]bool{}
	for _, in := range infos {
		if in.Name == "" || len(in.Fingerprint) != 64 {
			t.Fatalf("malformed scenario entry: %+v", in)
		}
		seen[in.Name] = true
	}
	if !seen["paper-default"] {
		t.Fatal("paper-default missing from listing")
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Workers < 1 {
		t.Fatalf("stats report %d workers", st.Workers)
	}
}

// TestDiskCacheAcrossServers: a second server over the same cache directory
// answers from disk without recomputing.
func TestDiskCacheAcrossServers(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	_, cold := post(t, ts1.URL+"/simulate", smallSpec)

	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	resp, warm := post(t, ts2.URL+"/simulate", smallSpec)
	if got := resp.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("restarted server X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("disk-cached bytes differ from original compute")
	}
	st := s2.Store().Stats()
	if st.DiskHits != 1 || st.Puts != 0 {
		t.Fatalf("restart did not serve from disk: %+v", st)
	}
}
