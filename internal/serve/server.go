// Package serve turns the simulator into a long-lived service: an HTTP
// daemon accepting canonical scenario and campaign specs, executing them on
// a bounded admission queue and memoizing every result in a content-addressed
// store (internal/serve/store) keyed by the canonical fingerprints of
// internal/scenario and internal/campaign.
//
// The service leans entirely on the repo's determinism contract: a result is
// a pure function of its canonical spec, so the cache needs no invalidation
// and a cache hit is byte-identical to a cold recompute. Three layers
// compose:
//
//		request → fingerprint → store (hit?) → flight group (join?) → queue → sim
//
//	  - The store answers repeats across time (and across restarts, with a
//	    disk layer).
//	  - The flight group answers repeats in flight: N concurrent identical
//	    submissions cost one simulation, and the computation survives
//	    individual client disconnects until the last waiter is gone.
//	  - The admission queue bounds concurrent simulations so a submission
//	    burst degrades into queueing latency instead of memory exhaustion.
//
// Progress streaming (POST /simulate/stream) bridges the engine's
// synchronous observer stream onto NDJSON via trace.Wire; a disconnecting
// client cancels its run through the engine's scheduling-boundary poll.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/serve/store"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MaxSpecBytes bounds request bodies: specs are small declarative documents;
// anything past this is a client error, not a simulation.
const MaxSpecBytes = 1 << 20

// Config configures a Server.
type Config struct {
	// Workers is the number of simulations admitted concurrently (the
	// admission-queue width). Non-positive selects runner.DefaultWorkers().
	Workers int
	// CacheBudget is the in-memory cache byte budget (non-positive selects
	// store.DefaultBudget).
	CacheBudget int64
	// CacheDir, when non-empty, adds a disk cache layer that survives
	// restarts.
	CacheDir string
}

// Server is the service core, independent of any particular listener: wrap
// Handler() in an http.Server (cmd/etserve) or drive it with httptest.
type Server struct {
	queue   *runner.Queue
	store   *store.Store
	flights *flightGroup
	start   time.Time
}

// New validates the configuration and builds a Server.
func New(cfg Config) (*Server, error) {
	var opts []store.Option
	if cfg.CacheDir != "" {
		opts = append(opts, store.WithDisk(cfg.CacheDir))
	}
	st, err := store.New(cfg.CacheBudget, opts...)
	if err != nil {
		return nil, err
	}
	return &Server{
		queue:   runner.NewQueue(cfg.Workers),
		store:   st,
		flights: newFlightGroup(),
		start:   time.Now(),
	}, nil
}

// Store exposes the underlying cache (read-mostly: tests and the loadtest
// assert on its counters).
func (s *Server) Store() *store.Store { return s.store }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /simulate", s.handleSimulate)
	mux.HandleFunc("POST /campaign", s.handleCampaign)
	mux.HandleFunc("POST /simulate/stream", s.handleStream)
	return instrument(mux)
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, scenario.Infos())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, Stats{
		Cache:         s.store.Stats(),
		InFlightRuns:  s.queue.InFlight(),
		QueueDepth:    s.queue.Depth(),
		QueuedKeys:    s.flights.inflight(),
		FlightWaiters: s.flights.waiters(),
		Workers:       s.queue.Workers(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleSimulate serves POST /simulate: a strict scenario spec in, the
// memoized sim.Result JSON out.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sp, err := scenario.ParseSpecJSON(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Validate eagerly: a bad spec must fail now with a 4xx, not after
	// queueing behind admitted work.
	if _, err := sp.Strategy(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	fp, err := sp.Fingerprint()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.serveCached(w, r, store.Key(fp), fp.String(), func(ctx context.Context) ([]byte, error) {
		res, err := s.runScenario(ctx, sp)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
}

// handleCampaign serves POST /campaign: a strict campaign spec in, the
// memoized aggregate summary out.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sp, err := campaign.ParseSpecJSON(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if sp.Replications < 1 {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("campaign: replications must be >= 1, got %d", sp.Replications))
		return
	}
	if _, err := sp.Replicate(0).Strategy(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	fp, err := sp.Fingerprint()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.serveCached(w, r, store.Key(fp), fp.String(), func(ctx context.Context) ([]byte, error) {
		var res *campaign.Result
		qerr := s.queue.Do(ctx, func(ctx context.Context) error {
			var err error
			// One worker per campaign: the admission queue is the
			// parallelism across requests, so a single campaign must not
			// also fan out and oversubscribe the host.
			res, err = campaign.Run(sp, campaign.WithWorkers(1), campaign.WithContext(ctx))
			return err
		})
		if qerr != nil {
			return nil, qerr
		}
		if err := res.MismatchError(); err != nil {
			return nil, err
		}
		return json.Marshal(summarizeCampaign(fp.String(), res))
	})
}

// serveCached is the shared hit→join→compute path of the two compute
// endpoints. compute runs detached from this request (flight-owned context)
// and its bytes are stored before any waiter is released.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key store.Key, fp string, compute func(context.Context) ([]byte, error)) {
	w.Header().Set(HeaderFingerprint, fp)
	if v, ok := s.store.Get(key); ok {
		cacheHitsTotal.Inc()
		writeCached(w, "hit", v)
		return
	}
	v, shared, err := s.flights.do(r.Context(), key, func(ctx context.Context) ([]byte, error) {
		v, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		if err := s.store.Put(key, v); err != nil {
			// A failed persist degrades to recompute-next-time; the client
			// still gets its result.
			return v, nil
		}
		return v, nil
	})
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The client is gone (or joined a flight that was aborted when its
		// last waiter left); there is nobody meaningful to answer.
		httpError(w, statusClientClosedRequest, err)
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
	case shared:
		cacheJoinsTotal.Inc()
		writeCached(w, "join", v)
	default:
		cacheMissesTotal.Inc()
		writeCached(w, "miss", v)
	}
}

// runScenario executes one scenario through the admission queue under ctx,
// refusing to return a truncated result.
func (s *Server) runScenario(ctx context.Context, sp scenario.Spec, obs ...sim.Observer) (sim.Result, error) {
	var out sim.Result
	// Every served simulation feeds the engine-phase histograms on /metrics.
	// The observer is write-only telemetry, so the cached bytes stay
	// byte-identical to an uninstrumented run.
	obs = append(obs, trace.EngineMetrics{})
	err := s.queue.Do(ctx, func(ctx context.Context) error {
		st, err := sp.Strategy(core.WithContext(ctx), core.WithObservers(obs...))
		if err != nil {
			return err
		}
		res, err := st.Simulate()
		if err != nil {
			return err
		}
		if res.Reason == sim.DeathCancelled {
			// Never hand a truncated prefix to the cache or a client.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return context.Canceled
		}
		out = res
		return nil
	})
	return out, err
}

// handleStream serves POST /simulate/stream: progress events as NDJSON while
// the simulation runs, closed by a "result" record. A cache hit skips
// straight to the result record (no events — the simulation didn't run); a
// cold run executes under the request's context, so a disconnecting client
// aborts its simulation at the next scheduling boundary. Streamed runs
// bypass flight joining (each stream owns its run's events) but still
// populate the store.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sp, err := scenario.ParseSpecJSON(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := sp.Strategy(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	fp, err := sp.Fingerprint()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	key := store.Key(fp)

	w.Header().Set(HeaderFingerprint, fp.String())
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	line := func(v any) {
		enc.Encode(v) // best effort: a broken pipe surfaces as ctx cancellation
		if flusher != nil {
			flusher.Flush()
		}
	}

	type resultLine struct {
		Type        string          `json:"type"`
		Fingerprint string          `json:"fingerprint"`
		Cached      bool            `json:"cached"`
		Result      json.RawMessage `json:"result"`
	}
	if v, ok := s.store.Get(key); ok {
		cacheHitsTotal.Inc()
		line(resultLine{Type: "result", Fingerprint: fp.String(), Cached: true, Result: v})
		return
	}
	cacheMissesTotal.Inc()

	// The Wire sink runs synchronously on this handler's goroutine (the
	// queue executes fn on its caller), so writing to w needs no locking
	// and a slow client backpressures the simulation.
	wire := &trace.Wire{Sink: func(e trace.WireEvent) { line(e) }}
	res, err := s.runScenario(r.Context(), sp, wire)
	if err != nil {
		// Mid-stream errors can only be reported in-band.
		line(map[string]string{"type": "error", "error": err.Error()})
		return
	}
	v, err := json.Marshal(res)
	if err != nil {
		line(map[string]string{"type": "error", "error": err.Error()})
		return
	}
	s.store.Put(key, v)
	line(resultLine{Type: "result", Fingerprint: fp.String(), Cached: false, Result: v})
}

// statusClientClosedRequest is nginx's non-standard 499 ("client closed
// request"): the stock library has no code for "the requester vanished", and
// logging it as a 4xx keeps aborted submissions out of the 5xx error budget.
const statusClientClosedRequest = 499

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeCached writes a stored (or just-computed) response body verbatim —
// the bytes are the cache value, so hits and misses are byte-identical.
func writeCached(w http.ResponseWriter, status string, v []byte) {
	w.Header().Set(HeaderCache, status)
	w.Header().Set("Content-Type", "application/json")
	w.Write(v)
}

type httpErrorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(httpErrorBody{Error: err.Error()})
}
