package store

import "repro/internal/metrics"

// Process-global store telemetry, incremented alongside each Store's own
// Stats counters. Multiple stores in one process (tests, embedded servers)
// sum into the same families, which is the aggregate a scrape wants.
var (
	hitsTotal = metrics.Default().Counter("store_hits_total",
		"Result-cache lookups answered from memory.")
	diskHitsTotal = metrics.Default().Counter("store_disk_hits_total",
		"Result-cache lookups answered from the disk layer.")
	missesTotal = metrics.Default().Counter("store_misses_total",
		"Result-cache lookups that found nothing.")
	putsTotal = metrics.Default().Counter("store_puts_total",
		"Distinct results stored.")
	evictionsTotal = metrics.Default().Counter("store_evictions_total",
		"Entries evicted from memory to hold the byte budget.")
)
