// Package store implements the content-addressed result cache behind
// internal/serve: an in-memory LRU over opaque byte values keyed by 32-byte
// content fingerprints, with an optional write-through disk layer that
// survives process restarts.
//
// The cache exploits the repo's central invariant — a simulation result is a
// pure, deterministic function of its canonical spec — so a value stored
// under a fingerprint is THE answer for that spec, forever. That makes the
// semantics unusually simple:
//
//   - No invalidation. Entries never go stale; eviction exists only to bound
//     memory. Fingerprint domains (scenario vs campaign, version bumps) keep
//     incompatible value shapes in disjoint key spaces.
//   - Byte values, not objects. The store holds the exact wire encoding the
//     server will send, so a cache hit is byte-identical to a cold compute by
//     construction — the determinism contract extends through the cache.
//   - Eviction is memory-only. The disk layer is an append-mostly archive;
//     evicting an entry from memory leaves its file behind, and a later Get
//     re-admits it. Disk reads happen outside the lock (the file is immutable
//     once renamed into place), so a slow disk never blocks the hot path.
//
// All methods are safe for concurrent use.
package store

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// KeySize is the fingerprint width: SHA-256.
const KeySize = 32

// Key is a content fingerprint — in practice scenario.Fingerprint or a
// campaign fingerprint, converted by the caller. The store is deliberately
// ignorant of what the bytes mean.
type Key [KeySize]byte

// String returns the key as lowercase hex (also the disk filename).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// DefaultBudget is the in-memory byte budget used when New is given a
// non-positive one: 64 MiB, roomy for tens of thousands of simulation results
// while staying far from container limits.
const DefaultBudget = 64 << 20

// Stats is a point-in-time snapshot of the store's counters, exported by the
// server's /stats endpoint and asserted on by the CI smoke test.
type Stats struct {
	// Hits counts Gets answered from memory; DiskHits counts Gets that missed
	// memory but were re-admitted from the disk layer. Misses counts Gets
	// answered by neither.
	Hits     uint64 `json:"hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	// Puts counts successful inserts; Evictions counts entries dropped from
	// memory to stay under budget.
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe current memory residency.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Budget echoes the configured in-memory byte budget.
	Budget int64 `json:"budget"`
}

// Store is the cache. The zero value is not usable; call New.
type Store struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	used    int64
	budget  int64
	dir     string // "" = memory only

	hits, diskHits, misses, puts, evictions uint64
}

type entry struct {
	key Key
	val []byte
}

// Option configures a Store.
type Option func(*Store)

// WithDisk adds a write-through disk layer rooted at dir (created if absent).
// Every Put is persisted as dir/<hex>; Gets that miss memory fall back to
// disk. Entries evicted from memory remain on disk, so a restarted server
// with the same dir starts warm.
func WithDisk(dir string) Option { return func(s *Store) { s.dir = dir } }

// New returns a Store holding at most budget bytes of values in memory
// (non-positive = DefaultBudget).
func New(budget int64, opts ...Option) (*Store, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	s := &Store{
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		budget:  budget,
	}
	for _, o := range opts {
		o(s)
	}
	if s.dir != "" {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating disk layer: %w", err)
		}
	}
	return s, nil
}

// Get returns the value stored under k. The returned slice is shared and
// must not be modified. A memory miss consults the disk layer; a disk hit is
// re-admitted into memory so repeated access stays cheap.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		hitsTotal.Inc()
		v := el.Value.(*entry).val
		s.mu.Unlock()
		return v, true
	}
	if s.dir == "" {
		s.misses++
		missesTotal.Inc()
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()

	// Disk read outside the lock: files are immutable once renamed into
	// place, so concurrent readers need no coordination. If two goroutines
	// race here, both read the same bytes and admit twice — harmless.
	v, err := os.ReadFile(s.path(k))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.misses++
		missesTotal.Inc()
		return nil, false
	}
	s.diskHits++
	diskHitsTotal.Inc()
	if el, ok := s.entries[k]; ok {
		// Lost the admit race; serve the resident copy.
		s.lru.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	s.admit(k, v)
	return v, true
}

// Put stores v under k, evicting least-recently-used entries as needed to
// stay under budget, and (when configured) persists it to the disk layer.
// The value is copied; the caller keeps ownership of v. Storing under an
// existing key is a no-op — content addressing means the bytes are already
// equal. Values larger than the whole budget are persisted to disk (if any)
// but not kept in memory.
func (s *Store) Put(k Key, v []byte) error {
	cp := make([]byte, len(v))
	copy(cp, v)

	if s.dir != "" {
		if err := s.persist(k, cp); err != nil {
			return err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		return nil
	}
	s.puts++
	putsTotal.Inc()
	if int64(len(cp)) > s.budget {
		return nil
	}
	s.admit(k, cp)
	return nil
}

// admit inserts into memory and evicts down to budget. Caller holds mu.
func (s *Store) admit(k Key, v []byte) {
	s.entries[k] = s.lru.PushFront(&entry{key: k, val: v})
	s.used += int64(len(v))
	for s.used > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.used -= int64(len(e.val))
		s.evictions++
		evictionsTotal.Inc()
	}
}

// persist writes the value to the disk layer atomically: a temp file in the
// same directory, fsync-free (the cache tolerates losing a crash-window
// entry — it just recomputes), then rename into place. Readers therefore see
// either nothing or the complete value, never a torn write.
func (s *Store) persist(k Key, v []byte) error {
	final := s.path(k)
	if _, err := os.Stat(final); err == nil {
		return nil // content-addressed: already the right bytes
	}
	tmp, err := os.CreateTemp(s.dir, k.String()+".*.tmp")
	if err != nil {
		return fmt.Errorf("store: persisting %s: %w", k, err)
	}
	_, werr := tmp.Write(v)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: persisting %s: write %v, close %v", k, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: persisting %s: %w", k, err)
	}
	return nil
}

func (s *Store) path(k Key) string { return filepath.Join(s.dir, k.String()) }

// Stats returns a consistent snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		DiskHits:  s.diskHits,
		Misses:    s.misses,
		Puts:      s.puts,
		Evictions: s.evictions,
		Entries:   len(s.entries),
		Bytes:     s.used,
		Budget:    s.budget,
	}
}
