package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func keyOf(i int) Key {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return Key(sha256.Sum256(b[:]))
}

func valOf(i, size int) []byte {
	v := make([]byte, size)
	for j := range v {
		v[j] = byte(i + j)
	}
	return v
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf(1)
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store returned a value")
	}
	want := valOf(1, 100)
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("round trip lost the value: ok=%v", ok)
	}
	// Put copies: mutating the caller's slice must not corrupt the cache.
	want[0] ^= 0xff
	got, _ = s.Get(k)
	if got[0] == want[0] {
		t.Fatal("store aliases the caller's slice")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestStoreEvictsLRU(t *testing.T) {
	s, err := New(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Four 300-byte entries exceed the 1000-byte budget by one entry.
	for i := 0; i < 4; i++ {
		if err := s.Put(keyOf(i), valOf(i, 300)); err != nil {
			t.Fatal(err)
		}
		// Touch entry 0 after every insert so it stays hot.
		if i > 0 {
			if _, ok := s.Get(keyOf(0)); !ok {
				t.Fatalf("hot entry evicted after insert %d", i)
			}
		}
	}
	st := s.Stats()
	if st.Entries != 3 || st.Bytes != 900 || st.Evictions != 1 {
		t.Fatalf("unexpected post-eviction stats: %+v", st)
	}
	// The evicted entry must be the coldest one (entry 1: entry 0 was kept
	// hot by the touches).
	if _, ok := s.Get(keyOf(1)); ok {
		t.Fatal("coldest entry survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.Get(keyOf(i)); !ok {
			t.Fatalf("entry %d wrongly evicted", i)
		}
	}
}

func TestStoreOversizeValueNotCached(t *testing.T) {
	s, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyOf(1), valOf(1, 200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyOf(1)); ok {
		t.Fatal("value larger than the whole budget was admitted")
	}
	if st := s.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("oversize value left residue: %+v", st)
	}
}

func TestStoreDiskLayerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(1<<20, WithDisk(dir))
	if err != nil {
		t.Fatal(err)
	}
	k, want := keyOf(7), valOf(7, 500)
	if err := s1.Put(k, want); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory — the "restarted server".
	s2, err := New(1<<20, WithDisk(dir))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(k)
	if !ok || !bytes.Equal(got, want) {
		t.Fatal("disk layer did not survive the restart")
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Hits != 0 {
		t.Fatalf("restart hit not attributed to disk: %+v", st)
	}
	// Second access is served from memory (re-admitted).
	if _, ok := s2.Get(k); !ok {
		t.Fatal("re-admitted entry lost")
	}
	if st := s2.Stats(); st.Hits != 1 {
		t.Fatalf("re-admitted entry not served from memory: %+v", st)
	}
}

func TestStoreEvictionLeavesDiskIntact(t *testing.T) {
	dir := t.TempDir()
	s, err := New(1000, WithDisk(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(keyOf(i), valOf(i, 300)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// Every entry — including evicted ones — must still be readable, via disk.
	for i := 0; i < 4; i++ {
		got, ok := s.Get(keyOf(i))
		if !ok || !bytes.Equal(got, valOf(i, 300)) {
			t.Fatalf("entry %d unreadable after eviction", i)
		}
	}
	// No stray temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func TestStoreDiskCorruptionFallsBackToMiss(t *testing.T) {
	// A missing/unreadable disk file is a miss, not an error: the server just
	// recomputes.
	dir := t.TempDir()
	s, err := New(1<<20, WithDisk(dir))
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf(3)
	if err := s.Put(k, valOf(3, 10)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, k.String())); err != nil {
		t.Fatal(err)
	}
	s2, err := New(1<<20, WithDisk(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k); ok {
		t.Fatal("deleted disk entry reported as hit")
	}
}

// TestStoreConcurrentHammer drives many goroutines through overlapping
// Put/Get traffic under -race: the assertions are (a) no data race, (b) every
// successful Get returns exactly the bytes content addressing promises.
func TestStoreConcurrentHammer(t *testing.T) {
	for _, disk := range []bool{false, true} {
		disk := disk
		t.Run(fmt.Sprintf("disk=%v", disk), func(t *testing.T) {
			t.Parallel()
			var opts []Option
			if disk {
				opts = append(opts, WithDisk(t.TempDir()))
			}
			// Small budget so eviction churns constantly under load.
			s, err := New(4096, opts...)
			if err != nil {
				t.Fatal(err)
			}
			const (
				goroutines = 16
				iters      = 300
				keys       = 32
			)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						id := (g*31 + i) % keys
						k := keyOf(id)
						want := valOf(id, 64+id)
						if i%3 == 0 {
							if err := s.Put(k, want); err != nil {
								t.Errorf("put %d: %v", id, err)
								return
							}
						}
						if got, ok := s.Get(k); ok && !bytes.Equal(got, want) {
							t.Errorf("key %d: wrong bytes", id)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			st := s.Stats()
			if st.Bytes > 4096 {
				t.Fatalf("budget exceeded after hammer: %+v", st)
			}
		})
	}
}
