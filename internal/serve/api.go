package serve

import (
	"repro/internal/campaign"
	"repro/internal/serve/store"
)

// This file pins the service's wire types. The request bodies are the
// canonical spec encodings of internal/scenario and internal/campaign (parsed
// strictly — unknown fields are rejected); the response bodies below are the
// exact bytes memoized in the content-addressed store, so a cache hit is
// byte-identical to a cold compute by construction. Fields are only ever
// added, never renamed or repurposed.

// Response headers set by the compute endpoints.
const (
	// HeaderCache reports how the response was produced: "hit" (served from
	// the store), "join" (deduplicated onto a concurrent identical
	// submission) or "miss" (this request led the computation).
	HeaderCache = "X-Cache"
	// HeaderFingerprint carries the canonical content fingerprint (hex
	// SHA-256) of the submitted spec — the store key of the response body.
	HeaderFingerprint = "X-Fingerprint"
)

// MetricSummary is one campaign aggregate row: the wire form of a
// stats.Summary, mirroring the columns of `etcampaign`'s table output.
type MetricSummary struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	CI95   float64 `json:"ci95"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
}

// CampaignSummary is the response body of POST /campaign — the campaign's
// aggregates, without any per-replicate data.
type CampaignSummary struct {
	Fingerprint  string          `json:"fingerprint"`
	Replications int             `json:"replications"`
	Seed         uint64          `json:"seed"`
	Metrics      []MetricSummary `json:"metrics"`
}

// summarizeCampaign flattens a campaign result into its wire form.
func summarizeCampaign(fp string, res *campaign.Result) CampaignSummary {
	out := CampaignSummary{
		Fingerprint:  fp,
		Replications: res.Spec.Replications,
		Seed:         res.Spec.Seed,
	}
	for _, m := range res.Metrics() {
		s := m.Summary
		out.Metrics = append(out.Metrics, MetricSummary{
			Name:   m.Name,
			Count:  s.Count(),
			Mean:   s.Mean(),
			CI95:   s.CI95(),
			StdDev: s.StdDev(),
			Min:    s.Min(),
			P50:    s.Quantile(0.5),
			P90:    s.Quantile(0.9),
			P99:    s.Quantile(0.99),
			Max:    s.Max(),
		})
	}
	return out
}

// Stats is the response body of GET /stats.
type Stats struct {
	// Cache is the content-addressed store's counter snapshot.
	Cache store.Stats `json:"cache"`
	// InFlightRuns is the number of simulations currently executing;
	// QueueDepth the number of tasks waiting for an admission slot;
	// QueuedKeys the number of distinct fingerprints being computed
	// (in-flight plus admission-queued); FlightWaiters the total clients
	// attached to those computations; Workers the admission width.
	InFlightRuns  int `json:"inflight_runs"`
	QueueDepth    int `json:"queue_depth"`
	QueuedKeys    int `json:"queued_keys"`
	FlightWaiters int `json:"flight_waiters"`
	Workers       int `json:"workers"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
}
