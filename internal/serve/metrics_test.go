package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func decodeStats(t *testing.T, body string) Stats {
	t.Helper()
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decoding /stats: %v\n%s", err, body)
	}
	return st
}

// TestMetricsEndpoint drives a compute request through the service and
// asserts GET /metrics serves Prometheus text exposition covering the
// serve, store, runner and engine-phase metric families — the scrape
// contract the CI smoke also checks against the real binary.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// One miss then one hit, so the counters below have known lower bounds.
	post(t, ts.URL+"/simulate", smallSpec)
	post(t, ts.URL+"/simulate", smallSpec)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition v0.0.4", ct)
	}

	// Every layer's family must be present, with HELP/TYPE headers.
	for _, family := range []string{
		"serve_requests_total", "serve_request_seconds",
		"serve_cache_hits_total", "serve_cache_misses_total", "serve_cache_joins_total",
		"serve_queue_depth", "serve_inflight_runs", "serve_flight_waiters",
		"serve_uptime_seconds", "serve_store_entries", "serve_store_bytes",
		"store_hits_total", "store_misses_total", "store_puts_total", "store_evictions_total",
		"runner_queue_wait_seconds", "runner_queue_tasks_total", "runner_pool_cell_seconds",
		"engine_phase_snapshot_seconds", "engine_phase_control_full_seconds", "engine_phase_schedule_seconds",
		"engine_frames_total",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from /metrics", family)
		}
	}

	// The two /simulate requests above must be visible: the histogram's
	// cumulative +Inf bucket and the request counter are nonzero, and the
	// serve cache saw at least one hit and one miss. (The counters are
	// process-global, so assert "nonzero", not exact values.)
	for _, re := range []string{
		`(?m)^serve_requests_total [1-9]\d*$`,
		`(?m)^serve_request_seconds_bucket\{le="\+Inf"\} [1-9]\d*$`,
		`(?m)^serve_cache_hits_total [1-9]\d*$`,
		`(?m)^serve_cache_misses_total [1-9]\d*$`,
		`(?m)^runner_queue_tasks_total [1-9]\d*$`,
		`(?m)^engine_phase_snapshot_seconds_count [1-9]\d*$`,
		`(?m)^engine_frames_total [1-9]\d*$`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("no line matching %s in /metrics output", re)
		}
	}
}

// TestStatsReportsQueueAndUptime pins the extended /stats document: queue
// depth, in-flight count, single-flight waiters and uptime ride along with
// the store counters.
func TestStatsReportsQueueAndUptime(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	post(t, ts.URL+"/simulate", smallSpec)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	st := decodeStats(t, body)
	if st.Workers != 1 {
		t.Errorf("workers = %d, want 1", st.Workers)
	}
	if st.InFlightRuns != 0 || st.QueueDepth != 0 || st.FlightWaiters != 0 {
		t.Errorf("idle server reports inflight=%d depth=%d waiters=%d, want zeros",
			st.InFlightRuns, st.QueueDepth, st.FlightWaiters)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %g, want >= 0", st.UptimeSeconds)
	}
	if st.Cache.Puts != 1 {
		t.Errorf("cache puts = %d after one compute, want 1", st.Cache.Puts)
	}
	for _, field := range []string{"queue_depth", "flight_waiters", "uptime_seconds", "inflight_runs", "queued_keys"} {
		if !strings.Contains(string(body), `"`+field+`"`) {
			t.Errorf("/stats body missing %q:\n%s", field, body)
		}
	}
}
