package serve

import (
	"net/http"
	"time"

	"repro/internal/metrics"
)

// Process-global service telemetry, rendered by GET /metrics in Prometheus
// text exposition format. Counters and histograms are updated inline on the
// request path (atomic, allocation-free); level gauges are refreshed from
// the live structures at scrape time, because their sources (queue, flight
// group, store) already own the authoritative instantaneous values.
var (
	requestsTotal = metrics.Default().Counter("serve_requests_total",
		"HTTP requests served, across all endpoints.")
	requestSeconds = metrics.Default().Histogram("serve_request_seconds",
		"HTTP request latency, across all endpoints.",
		metrics.DurationBuckets())
	cacheHitsTotal = metrics.Default().Counter("serve_cache_hits_total",
		"Compute requests answered from the content-addressed store.")
	cacheJoinsTotal = metrics.Default().Counter("serve_cache_joins_total",
		"Compute requests deduplicated onto a concurrent identical flight (single-flight saves).")
	cacheMissesTotal = metrics.Default().Counter("serve_cache_misses_total",
		"Compute requests that led a fresh computation.")

	queueDepthGauge = metrics.Default().Gauge("serve_queue_depth",
		"Tasks waiting for an admission-queue slot.")
	inflightRunsGauge = metrics.Default().Gauge("serve_inflight_runs",
		"Simulations currently holding an admission-queue slot.")
	flightWaitersGauge = metrics.Default().Gauge("serve_flight_waiters",
		"Clients attached to in-flight computations (single-flight references).")
	uptimeSecondsGauge = metrics.Default().Gauge("serve_uptime_seconds",
		"Seconds since the server was constructed.")
	storeEntriesGauge = metrics.Default().Gauge("serve_store_entries",
		"Entries resident in the in-memory result cache.")
	storeBytesGauge = metrics.Default().Gauge("serve_store_bytes",
		"Bytes resident in the in-memory result cache.")
)

// refreshGauges samples the live structures into the scrape-time gauges.
func (s *Server) refreshGauges() {
	queueDepthGauge.Set(int64(s.queue.Depth()))
	inflightRunsGauge.Set(int64(s.queue.InFlight()))
	flightWaitersGauge.Set(int64(s.flights.waiters()))
	uptimeSecondsGauge.Set(int64(time.Since(s.start).Seconds()))
	st := s.store.Stats()
	storeEntriesGauge.Set(int64(st.Entries))
	storeBytesGauge.Set(st.Bytes)
}

// handleMetrics serves GET /metrics: the whole process-global registry —
// serve_*, store_*, runner_* and engine_phase_* families — in Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.Default().WritePrometheus(w)
}

// instrument wraps the route mux with request counting and latency timing.
func instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		requestSeconds.Observe(time.Since(start).Seconds())
		requestsTotal.Inc()
	})
}
