package app

import (
	"errors"
	"math"
	"testing"

	"repro/internal/aes"
)

func TestAES128MatchesTable1(t *testing.T) {
	a := AES128()
	if a.Name != "AES-128" {
		t.Errorf("Name = %q, want AES-128", a.Name)
	}
	if a.NumModules() != 3 {
		t.Fatalf("NumModules = %d, want 3", a.NumModules())
	}
	wantOps := map[ModuleID]int{
		ModuleSubBytesShiftRows: 10,
		ModuleMixColumns:        9,
		ModuleAddRoundKey:       11,
	}
	wantEnergy := map[ModuleID]float64{
		ModuleSubBytesShiftRows: 120.1,
		ModuleMixColumns:        73.34,
		ModuleAddRoundKey:       176.55,
	}
	for id, ops := range wantOps {
		m := a.MustModule(id)
		if m.OpsPerJob != ops {
			t.Errorf("module %d OpsPerJob = %d, want %d", id, m.OpsPerJob, ops)
		}
		if m.EnergyPerOpPJ != wantEnergy[id] {
			t.Errorf("module %d energy = %g, want %g", id, m.EnergyPerOpPJ, wantEnergy[id])
		}
	}
	if a.OperationsPerJob() != 30 {
		t.Errorf("OperationsPerJob = %d, want 30", a.OperationsPerJob())
	}
	// Sum f_i * E_i = 10*120.1 + 9*73.34 + 11*176.55 = 3803.11 pJ.
	if got := a.ComputationEnergyPerJobPJ(); math.Abs(got-3803.11) > 1e-6 {
		t.Errorf("ComputationEnergyPerJobPJ = %g, want 3803.11", got)
	}
	if a.PacketBits != DefaultPacketBits {
		t.Errorf("PacketBits = %d, want %d", a.PacketBits, DefaultPacketBits)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAES128FlowStructure(t *testing.T) {
	a := AES128()
	flow := a.Flow
	if flow[0] != ModuleAddRoundKey {
		t.Errorf("first operation = %d, want AddRoundKey (3)", flow[0])
	}
	if flow[len(flow)-1] != ModuleAddRoundKey {
		t.Errorf("last operation = %d, want AddRoundKey (3)", flow[len(flow)-1])
	}
	// Middle rounds repeat the pattern 1, 2, 3.
	for round := 0; round < 9; round++ {
		base := 1 + 3*round
		if flow[base] != ModuleSubBytesShiftRows ||
			flow[base+1] != ModuleMixColumns ||
			flow[base+2] != ModuleAddRoundKey {
			t.Fatalf("round %d flow = %v, want [1 2 3]", round+1, flow[base:base+3])
		}
	}
}

func TestAESOtherKeySizes(t *testing.T) {
	for _, tc := range []struct {
		size       aes.KeySize
		m1, m2, m3 int
	}{
		{aes.Key192, 12, 11, 13},
		{aes.Key256, 14, 13, 15},
	} {
		a, err := AES(tc.size)
		if err != nil {
			t.Fatalf("AES(%v): %v", tc.size, err)
		}
		if a.MustModule(1).OpsPerJob != tc.m1 ||
			a.MustModule(2).OpsPerJob != tc.m2 ||
			a.MustModule(3).OpsPerJob != tc.m3 {
			t.Errorf("%v ops = (%d,%d,%d), want (%d,%d,%d)", tc.size,
				a.MustModule(1).OpsPerJob, a.MustModule(2).OpsPerJob, a.MustModule(3).OpsPerJob,
				tc.m1, tc.m2, tc.m3)
		}
	}
	if _, err := AES(aes.KeySize(99)); err == nil {
		t.Error("AES with invalid key size should fail")
	}
}

func TestModuleForOp(t *testing.T) {
	cases := map[aes.OpKind]ModuleID{
		aes.OpSubBytesShiftRows: ModuleSubBytesShiftRows,
		aes.OpMixColumns:        ModuleMixColumns,
		aes.OpAddRoundKey:       ModuleAddRoundKey,
	}
	for kind, want := range cases {
		got, err := ModuleForOp(kind)
		if err != nil || got != want {
			t.Errorf("ModuleForOp(%v) = %d, %v; want %d", kind, got, err, want)
		}
	}
	if _, err := ModuleForOp(aes.OpKind(77)); err == nil {
		t.Error("unknown op kind accepted")
	}
}

func TestModuleLookup(t *testing.T) {
	a := AES128()
	if _, err := a.Module(0); !errors.Is(err, ErrBadFlow) {
		t.Errorf("Module(0) error = %v, want ErrBadFlow", err)
	}
	if _, err := a.Module(4); !errors.Is(err, ErrBadFlow) {
		t.Errorf("Module(4) error = %v, want ErrBadFlow", err)
	}
	m, err := a.Module(2)
	if err != nil || m.Name != "MixColumns" {
		t.Errorf("Module(2) = %+v, %v", m, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustModule(9) did not panic")
		}
	}()
	a.MustModule(9)
}

func TestValidateCatchesInconsistencies(t *testing.T) {
	valid := AES128()
	cases := []struct {
		name   string
		mutate func(a *Application)
		want   error
	}{
		{"no modules", func(a *Application) { a.Modules = nil }, ErrNoModules},
		{"bad packet bits", func(a *Application) { a.PacketBits = 0 }, ErrBadPacketBits},
		{"empty flow", func(a *Application) { a.Flow = nil }, ErrEmptyFlow},
		{"bad module id", func(a *Application) { a.Modules[1].ID = 7 }, ErrBadModuleID},
		{"zero energy", func(a *Application) { a.Modules[0].EnergyPerOpPJ = 0 }, ErrBadEnergy},
		{"negative energy", func(a *Application) { a.Modules[0].EnergyPerOpPJ = -3 }, ErrBadEnergy},
		{"zero ops", func(a *Application) { a.Modules[2].OpsPerJob = 0 }, ErrBadOpCount},
		{"flow unknown module", func(a *Application) { a.Flow[5] = 9 }, ErrBadFlow},
		{"flow count mismatch", func(a *Application) { a.Flow[1] = ModuleAddRoundKey }, ErrBadOpCount},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := *valid
			a.Modules = append([]Module(nil), valid.Modules...)
			a.Flow = append([]ModuleID(nil), valid.Flow...)
			tc.mutate(&a)
			if err := a.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("Validate = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestBuilderConstructsValidApplication(t *testing.T) {
	b := NewBuilder("health-monitor")
	sample := b.AddModule("sample-filter", 45.0)
	feature := b.AddModule("feature-extract", 150.0)
	classify := b.AddModule("classifier", 310.0)
	appl, err := b.PacketBits(128).
		Repeat(8, sample, feature).
		Step(classify).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if appl.NumModules() != 3 {
		t.Fatalf("NumModules = %d, want 3", appl.NumModules())
	}
	if appl.MustModule(sample).OpsPerJob != 8 ||
		appl.MustModule(feature).OpsPerJob != 8 ||
		appl.MustModule(classify).OpsPerJob != 1 {
		t.Errorf("ops per job = %d/%d/%d, want 8/8/1",
			appl.MustModule(sample).OpsPerJob,
			appl.MustModule(feature).OpsPerJob,
			appl.MustModule(classify).OpsPerJob)
	}
	if appl.OperationsPerJob() != 17 {
		t.Errorf("OperationsPerJob = %d, want 17", appl.OperationsPerJob())
	}
	if appl.PacketBits != 128 {
		t.Errorf("PacketBits = %d, want 128", appl.PacketBits)
	}
	want := 8*45.0 + 8*150.0 + 1*310.0
	if got := appl.ComputationEnergyPerJobPJ(); math.Abs(got-want) > 1e-9 {
		t.Errorf("ComputationEnergyPerJobPJ = %g, want %g", got, want)
	}
}

func TestBuilderRejectsUnusedModule(t *testing.T) {
	b := NewBuilder("broken")
	used := b.AddModule("used", 10)
	b.AddModule("never-used", 20)
	if _, err := b.Step(used).Build(); err == nil {
		t.Fatal("Build should fail when a module never appears in the flow")
	}
}

func TestBuilderRejectsEmptyFlow(t *testing.T) {
	b := NewBuilder("empty")
	b.AddModule("m", 10)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with empty flow should fail")
	}
}

func TestBuilderRejectsBadPacketBits(t *testing.T) {
	b := NewBuilder("bad-packet")
	m := b.AddModule("m", 10)
	if _, err := b.PacketBits(-1).Step(m).Build(); err == nil {
		t.Fatal("Build with negative packet bits should fail")
	}
}
