// Package app describes target applications in the terms of the paper's
// problem formulation (Table 1): an application is partitioned into p
// modules, each performing a unique function; module i must execute f_i
// operations per job, each consuming E_i picojoules of computation energy,
// and modules cooperate by exchanging fixed-length packets.
//
// The package provides the AES cipher application evaluated in the paper
// (the default driver for et_sim) as well as a builder for custom
// applications used by the examples and ablation studies.
package app

import (
	"errors"
	"fmt"

	"repro/internal/aes"
)

// ModuleID identifies an application module. IDs are 1-based to match the
// paper's notation (module i, 1 <= i <= p).
type ModuleID int

// Module is one application module (an IP core mapped onto one or more
// nodes).
type Module struct {
	// ID is the 1-based module index.
	ID ModuleID
	// Name is a human-readable label, e.g. "SubBytes/ShiftRows".
	Name string
	// OpsPerJob is f_i: the number of operations the module performs per job.
	OpsPerJob int
	// EnergyPerOpPJ is E_i: the computation energy per operation in pJ.
	EnergyPerOpPJ float64
}

// Application is the static description of a partitioned target application.
type Application struct {
	// Name labels the application, e.g. "AES-128".
	Name string
	// Modules lists the p distinct modules; Modules[i] has ID i+1.
	Modules []Module
	// Flow is the operation sequence of one job in data-flow order: Flow[k]
	// is the module that performs the k-th operation. The number of
	// occurrences of module i in Flow must equal Modules[i-1].OpsPerJob.
	Flow []ModuleID
	// PacketBits is the fixed packet length (in bits) exchanged between
	// modules, including any header overhead.
	PacketBits int
}

// Validation errors.
var (
	ErrNoModules     = errors.New("app: application has no modules")
	ErrBadModuleID   = errors.New("app: module IDs must be 1..p in order")
	ErrBadOpCount    = errors.New("app: flow operation counts disagree with OpsPerJob")
	ErrBadFlow       = errors.New("app: flow references an unknown module")
	ErrBadEnergy     = errors.New("app: module energy must be positive")
	ErrBadPacketBits = errors.New("app: packet size must be positive")
	ErrEmptyFlow     = errors.New("app: flow must contain at least one operation")
)

// Validate checks internal consistency of the application description.
func (a *Application) Validate() error {
	if len(a.Modules) == 0 {
		return ErrNoModules
	}
	if a.PacketBits <= 0 {
		return fmt.Errorf("%w: %d", ErrBadPacketBits, a.PacketBits)
	}
	if len(a.Flow) == 0 {
		return ErrEmptyFlow
	}
	for i, m := range a.Modules {
		if m.ID != ModuleID(i+1) {
			return fmt.Errorf("%w: Modules[%d].ID = %d", ErrBadModuleID, i, m.ID)
		}
		if m.EnergyPerOpPJ <= 0 {
			return fmt.Errorf("%w: module %d has E = %g", ErrBadEnergy, m.ID, m.EnergyPerOpPJ)
		}
		if m.OpsPerJob <= 0 {
			return fmt.Errorf("%w: module %d has f = %d", ErrBadOpCount, m.ID, m.OpsPerJob)
		}
	}
	counts := make(map[ModuleID]int)
	for k, id := range a.Flow {
		if int(id) < 1 || int(id) > len(a.Modules) {
			return fmt.Errorf("%w: Flow[%d] = %d", ErrBadFlow, k, id)
		}
		counts[id]++
	}
	for _, m := range a.Modules {
		if counts[m.ID] != m.OpsPerJob {
			return fmt.Errorf("%w: module %d appears %d times in flow, OpsPerJob = %d",
				ErrBadOpCount, m.ID, counts[m.ID], m.OpsPerJob)
		}
	}
	return nil
}

// NumModules returns p, the number of distinct modules.
func (a *Application) NumModules() int { return len(a.Modules) }

// Module returns the module with the given 1-based ID.
func (a *Application) Module(id ModuleID) (Module, error) {
	if int(id) < 1 || int(id) > len(a.Modules) {
		return Module{}, fmt.Errorf("%w: %d", ErrBadFlow, id)
	}
	return a.Modules[id-1], nil
}

// MustModule is Module for callers that already validated the ID.
func (a *Application) MustModule(id ModuleID) Module {
	m, err := a.Module(id)
	if err != nil {
		panic(err)
	}
	return m
}

// OperationsPerJob returns the total number of operations per job
// (the length of the flow, i.e. sum of f_i).
func (a *Application) OperationsPerJob() int { return len(a.Flow) }

// ComputationEnergyPerJobPJ returns sum_i f_i * E_i, the pure computation
// energy of one job excluding all communication.
func (a *Application) ComputationEnergyPerJobPJ() float64 {
	var total float64
	for _, m := range a.Modules {
		total += float64(m.OpsPerJob) * m.EnergyPerOpPJ
	}
	return total
}

// PaperAESEnergies are the per-operation computation energies measured by the
// authors for their 0.16 um Verilog implementations at 100 MHz (Sec 5.1.1).
var PaperAESEnergies = [3]float64{120.1, 73.34, 176.55}

// DefaultPacketBits is the fixed packet length used by the reproduction.
// The paper does not state the packet size; 261 bits (a 256-bit payload
// carrying the 128-bit state plus round-key/control fields and a small
// header) is the calibration for which the Theorem-1 upper bound matches the
// paper's Table 2 values (see DESIGN.md).
const DefaultPacketBits = 261

// AES module IDs according to the paper's partitioning (Sec 5.1.1).
const (
	ModuleSubBytesShiftRows ModuleID = 1
	ModuleMixColumns        ModuleID = 2
	ModuleAddRoundKey       ModuleID = 3
)

// ModuleForOp maps an AES operation kind onto the module that executes it.
func ModuleForOp(kind aes.OpKind) (ModuleID, error) {
	switch kind {
	case aes.OpSubBytesShiftRows:
		return ModuleSubBytesShiftRows, nil
	case aes.OpMixColumns:
		return ModuleMixColumns, nil
	case aes.OpAddRoundKey:
		return ModuleAddRoundKey, nil
	default:
		return 0, fmt.Errorf("app: unknown AES operation kind %d", kind)
	}
}

// AES returns the application description for the AES cipher with the given
// key size, using the paper's module partitioning, per-operation energies and
// the default packet size. For AES-128 this reproduces Table 1's
// f = (10, 9, 11).
func AES(size aes.KeySize) (*Application, error) {
	steps, err := aes.EncryptionSteps(size)
	if err != nil {
		return nil, err
	}
	flow := make([]ModuleID, len(steps))
	counts := make(map[ModuleID]int)
	for i, s := range steps {
		id, err := ModuleForOp(s.Kind)
		if err != nil {
			return nil, err
		}
		flow[i] = id
		counts[id]++
	}
	a := &Application{
		Name: size.String(),
		Modules: []Module{
			{ID: ModuleSubBytesShiftRows, Name: "SubBytes/ShiftRows", OpsPerJob: counts[ModuleSubBytesShiftRows], EnergyPerOpPJ: PaperAESEnergies[0]},
			{ID: ModuleMixColumns, Name: "MixColumns", OpsPerJob: counts[ModuleMixColumns], EnergyPerOpPJ: PaperAESEnergies[1]},
			{ID: ModuleAddRoundKey, Name: "KeyExpansion/AddRoundKey", OpsPerJob: counts[ModuleAddRoundKey], EnergyPerOpPJ: PaperAESEnergies[2]},
		},
		Flow:       flow,
		PacketBits: DefaultPacketBits,
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// AES128 returns the 128-bit AES application, the paper's driver application.
func AES128() *Application {
	a, err := AES(aes.Key128)
	if err != nil {
		panic("app: AES-128 application construction failed: " + err.Error())
	}
	return a
}

// Builder incrementally constructs a custom application. It is used by the
// examples (e.g. a health-monitoring pipeline) and by ablation studies that
// vary module counts and energies.
type Builder struct {
	name       string
	modules    []Module
	flow       []ModuleID
	packetBits int
	err        error
}

// NewBuilder starts a new application description.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, packetBits: DefaultPacketBits}
}

// AddModule appends a module with the given name and per-operation energy.
// The operation count f_i is derived from the flow when Build is called.
// It returns the new module's ID.
func (b *Builder) AddModule(name string, energyPerOpPJ float64) ModuleID {
	id := ModuleID(len(b.modules) + 1)
	b.modules = append(b.modules, Module{ID: id, Name: name, EnergyPerOpPJ: energyPerOpPJ})
	return id
}

// PacketBits overrides the packet size.
func (b *Builder) PacketBits(bits int) *Builder {
	b.packetBits = bits
	return b
}

// Step appends one operation of the given module to the job flow.
func (b *Builder) Step(id ModuleID) *Builder {
	b.flow = append(b.flow, id)
	return b
}

// Repeat appends the given sub-flow n times, which is convenient for round-
// structured applications such as ciphers and filters.
func (b *Builder) Repeat(n int, ids ...ModuleID) *Builder {
	for i := 0; i < n; i++ {
		b.flow = append(b.flow, ids...)
	}
	return b
}

// Build finalises and validates the application.
func (b *Builder) Build() (*Application, error) {
	if b.err != nil {
		return nil, b.err
	}
	mods := make([]Module, len(b.modules))
	copy(mods, b.modules)
	counts := make(map[ModuleID]int)
	for _, id := range b.flow {
		counts[id]++
	}
	for i := range mods {
		mods[i].OpsPerJob = counts[mods[i].ID]
	}
	a := &Application{
		Name:       b.name,
		Modules:    mods,
		Flow:       append([]ModuleID(nil), b.flow...),
		PacketBits: b.packetBits,
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
