package experiments

// The Monte-Carlo variants of the paper sweeps: where Fig 7 and Fig 8 report
// one deterministic run per cell, Fig7MC and Fig8MC replicate each cell as a
// campaign over the stochastic knob the paper leaves unexplored — the module
// placement — and report mean ± 95% confidence interval instead of a single
// draw. The EAR and SDR campaigns of a cell share one seed stream, so
// replicate i places modules identically under both algorithms (common
// random numbers): the EAR/SDR gap per replicate is a paired difference,
// which keeps the comparison's variance far below that of independent draws.
//
// Parallelism lives at the replicate level: cells run in sequence and each
// cell's campaign fans its replicates out over the sweep's full worker
// budget — replicates outnumber cells by an order of magnitude, so this is
// where the parallelism is. Campaign aggregates are worker-independent by
// construction, so these sweeps inherit the determinism guarantee of the
// rest of the package.

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Fig7MCRow is one mesh size of the replicated EAR-vs-SDR comparison: the
// campaign aggregates of both algorithms' completed-job counts over the same
// random module placements.
type Fig7MCRow struct {
	Mesh         int
	Replications int
	EARJobs      stats.Summary
	SDRJobs      stats.Summary
}

// MeanGain returns the ratio of mean completed jobs, EAR over SDR.
func (r Fig7MCRow) MeanGain() float64 {
	if r.SDRJobs.Mean() == 0 {
		return 0
	}
	return r.EARJobs.Mean() / r.SDRJobs.Mean()
}

// Fig7MC is the Monte-Carlo Fig 7: for every mesh size it runs paired EAR
// and SDR campaigns over randomly drawn module placements (replications
// draws from the seed stream at the given base seed) and reports the
// aggregate job counts with error bars.
func Fig7MC(sizes []int, replications int, seed uint64, opts ...Option) ([]Fig7MCRow, error) {
	workers := campaign.WithWorkers(workerCount(opts))
	rows := make([]Fig7MCRow, 0, len(sizes))
	for _, n := range sizes {
		ear, err := campaign.Run(campaign.Spec{
			Scenario:     scenario.Spec{Mesh: n, Mapping: scenario.MappingRandom},
			Replications: replications,
			Seed:         seed,
		}, workers)
		if err != nil {
			return nil, err
		}
		sdr, err := campaign.Run(campaign.Spec{
			Scenario: scenario.Spec{
				Mesh: n, Algorithm: scenario.AlgorithmSDR, Mapping: scenario.MappingRandom,
			},
			Replications: replications,
			Seed:         seed, // same stream: paired placements with the EAR campaign
		}, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7MCRow{
			Mesh: n, Replications: replications,
			EARJobs: ear.Jobs, SDRJobs: sdr.Jobs,
		})
	}
	return rows, nil
}

// Fig7MCTable renders the replicated comparison with mean ± CI columns.
func Fig7MCTable(rows []Fig7MCRow) *stats.Table {
	t := stats.NewTable("Fig 7 (Monte-Carlo): completed jobs over random placements, mean ±95% CI",
		"mesh", "replicates", "EAR jobs", "SDR jobs", "EAR/SDR (means)")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.Replications,
			fmt.Sprintf("%.1f ±%.1f", r.EARJobs.Mean(), r.EARJobs.CI95()),
			fmt.Sprintf("%.1f ±%.1f", r.SDRJobs.Mean(), r.SDRJobs.CI95()),
			fmt.Sprintf("%.1fx", r.MeanGain()))
	}
	return t
}

// Fig7MCChart renders the replicated comparison as an ASCII chart whose bars
// carry 95%-CI error bars.
func Fig7MCChart(rows []Fig7MCRow) *stats.Chart {
	c := stats.NewChart("Fig 7 (Monte-Carlo): # of jobs completed over random placements", "mesh", "# of jobs")
	ear := c.AddSeries("EAR")
	sdr := c.AddSeries("SDR")
	for _, r := range rows {
		ear.AddErr(float64(r.Mesh), r.EARJobs.Mean(), r.EARJobs.CI95())
		sdr.AddErr(float64(r.Mesh), r.SDRJobs.Mean(), r.SDRJobs.CI95())
	}
	return c
}

// Fig8MCRow is one (mesh, controller count) cell of the replicated
// controller study.
type Fig8MCRow struct {
	Mesh         int
	Controllers  int
	Replications int
	Jobs         stats.Summary
}

// Fig8MC is the Monte-Carlo Fig 8: every (mesh, controller count) cell is a
// campaign over random module placements with battery-powered controllers,
// reporting completed jobs with error bars. All cells draw from the same
// base seed, so each replicate index places modules identically across the
// whole grid.
func Fig8MC(sizes, controllerCounts []int, replications int, seed uint64, opts ...Option) ([]Fig8MCRow, error) {
	workers := campaign.WithWorkers(workerCount(opts))
	cells := runner.Grid(sizes, controllerCounts)
	rows := make([]Fig8MCRow, 0, len(cells))
	for _, cell := range cells {
		n, ctrl := cell.A, cell.B
		res, err := campaign.Run(campaign.Spec{
			Scenario: scenario.Spec{
				Mesh: n, Controllers: ctrl, FiniteControllers: true,
				Mapping: scenario.MappingRandom,
			},
			Replications: replications,
			Seed:         seed,
		}, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8MCRow{Mesh: n, Controllers: ctrl, Replications: replications, Jobs: res.Jobs})
	}
	return rows, nil
}

// Fig8MCTable renders the replicated controller study, one row per cell.
func Fig8MCTable(rows []Fig8MCRow) *stats.Table {
	t := stats.NewTable("Fig 8 (Monte-Carlo): jobs vs controllers over random placements, mean ±95% CI",
		"mesh", "controllers", "replicates", "jobs (mean ±CI)", "P50", "P90")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.Controllers, r.Replications,
			fmt.Sprintf("%.1f ±%.1f", r.Jobs.Mean(), r.Jobs.CI95()),
			r.Jobs.Quantile(0.5), r.Jobs.Quantile(0.9))
	}
	return t
}

// Fig8MCChart renders the replicated controller sweep with one error-barred
// series per controller count.
func Fig8MCChart(rows []Fig8MCRow, controllerCounts []int) *stats.Chart {
	c := stats.NewChart("Fig 8 (Monte-Carlo): effect of controllers, mean ±95% CI", "mesh", "# of jobs")
	series := map[int]*stats.Series{}
	for _, count := range controllerCounts {
		series[count] = c.AddSeries(fmt.Sprintf("EAR, %d controllers", count))
	}
	for _, r := range rows {
		if s, ok := series[r.Controllers]; ok {
			s.AddErr(float64(r.Mesh), r.Jobs.Mean(), r.Jobs.CI95())
		}
	}
	return c
}
