package experiments

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestOptGapSmallSweep(t *testing.T) {
	rows, err := OptGap([]int{4}, 6, 2, 1, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (EAR and SDR)", len(rows))
	}
	for _, r := range rows {
		if r.Bound <= 0 {
			t.Errorf("%s: non-positive bound %g", r.Algorithm, r.Bound)
		}
		// Restart 0 of the search starts from the checkerboard, so the
		// optimized column can never fall below it.
		if r.OptimizedJobs < r.CheckerboardJobs {
			t.Errorf("%s: optimized %d jobs worse than checkerboard %d", r.Algorithm, r.OptimizedJobs, r.CheckerboardJobs)
		}
		// No simulated placement may beat the Theorem-1 bound.
		for _, jobs := range []int{r.CheckerboardJobs, r.RandomBestJobs, r.OptimizedJobs} {
			if float64(jobs) > r.Bound {
				t.Errorf("%s: %d jobs exceed the bound %g", r.Algorithm, jobs, r.Bound)
			}
		}
		if r.OptimizedAssignment == "" {
			t.Errorf("%s: no winning assignment reported", r.Algorithm)
		}
		// The reported placement replays to the reported job count.
		replay := scenario.Spec{Mesh: r.Mesh, Mapping: scenario.MappingExplicit, Assignment: r.OptimizedAssignment}
		if r.Algorithm != scenario.AlgorithmEAR {
			replay.Algorithm = r.Algorithm
		}
		res, err := replay.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if res.JobsCompleted != r.OptimizedJobs {
			t.Errorf("%s: replayed placement completes %d jobs, row reports %d", r.Algorithm, res.JobsCompleted, r.OptimizedJobs)
		}
	}
	table := OptGapTable(rows).Render()
	if !strings.Contains(table, "EAR") || !strings.Contains(table, "SDR") {
		t.Errorf("table missing algorithm rows:\n%s", table)
	}
	chart := OptGapChart(rows).Render(40)
	if !strings.Contains(chart, "J*") {
		t.Errorf("chart missing the bound series:\n%s", chart)
	}
}

func TestOptGapDeterministicAcrossWorkers(t *testing.T) {
	var ref string
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		rows, err := OptGap([]int{4}, 4, 2, 7, WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		rendered := OptGapTable(rows).Render()
		if ref == "" {
			ref = rendered
			continue
		}
		if rendered != ref {
			t.Errorf("opt-gap table differs at %d workers", w)
		}
	}
}
