package experiments

import (
	"strings"
	"testing"
)

// mcReplicates keeps the Monte-Carlo sweep tests fast while still leaving
// the collection phase of the quantile estimators (5 samples) behind.
const mcReplicates = 8

// TestFig7MCDeterministicAcrossWorkers extends the determinism suite to the
// campaign-backed sweeps: every aggregate (mean, CI, quantile state) must be
// identical whether cells fan out or run serially.
func TestFig7MCDeterministicAcrossWorkers(t *testing.T) {
	ref, err := Fig7MC([]int{4}, mcReplicates, 1, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	refTable := Fig7MCTable(ref).Render()
	for _, workers := range testWorkerCounts() {
		rows, err := Fig7MC([]int{4}, mcReplicates, 1, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rows) != len(ref) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(rows), len(ref))
		}
		for i := range ref {
			if rows[i] != ref[i] {
				t.Errorf("workers=%d: row %d differs from the serial run", workers, i)
			}
		}
		if table := Fig7MCTable(rows).Render(); table != refTable {
			t.Errorf("workers=%d: rendered table differs from the serial run", workers)
		}
	}
}

func TestFig7MCPairedComparison(t *testing.T) {
	rows, err := Fig7MC([]int{4}, mcReplicates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.EARJobs.Count() != mcReplicates || r.SDRJobs.Count() != mcReplicates {
		t.Fatalf("aggregates folded %d/%d replicates, want %d",
			r.EARJobs.Count(), r.SDRJobs.Count(), mcReplicates)
	}
	// The headline claim must survive replication: mean EAR beats mean SDR,
	// and by enough that the CIs cannot overlap.
	if r.EARJobs.Mean() <= r.SDRJobs.Mean() {
		t.Errorf("mean EAR jobs (%.1f) did not beat mean SDR jobs (%.1f)",
			r.EARJobs.Mean(), r.SDRJobs.Mean())
	}
	if lo, hi := r.EARJobs.Mean()-r.EARJobs.CI95(), r.SDRJobs.Mean()+r.SDRJobs.CI95(); lo <= hi {
		t.Errorf("EAR and SDR confidence intervals overlap: EAR lower %.1f vs SDR upper %.1f", lo, hi)
	}
	// Random placements genuinely vary.
	if r.EARJobs.StdDev() == 0 {
		t.Error("EAR campaign produced zero variance: placements are not being re-drawn")
	}
	if r.MeanGain() < 2 {
		t.Errorf("mean EAR/SDR gain %.1fx, want >= 2", r.MeanGain())
	}
	out := Fig7MCTable(rows).Render()
	if !strings.Contains(out, "±") {
		t.Errorf("table missing error bars:\n%s", out)
	}
	chart := Fig7MCChart(rows).Render(50)
	if !strings.Contains(chart, "±") || !strings.Contains(chart, "-") {
		t.Errorf("chart missing error bars:\n%s", chart)
	}
}

func TestFig8MCAggregates(t *testing.T) {
	counts := []int{1, 2}
	rows, err := Fig8MC([]int{4}, counts, mcReplicates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	byCount := map[int]float64{}
	for _, r := range rows {
		if r.Jobs.Count() != mcReplicates {
			t.Errorf("cell (%d,%d) folded %d replicates", r.Mesh, r.Controllers, r.Jobs.Count())
		}
		byCount[r.Controllers] = r.Jobs.Mean()
	}
	// More controllers must not hurt the expected lifetime.
	if byCount[2] < byCount[1] {
		t.Errorf("mean jobs fell with more controllers: %v", byCount)
	}
	if out := Fig8MCTable(rows).Render(); !strings.Contains(out, "±") {
		t.Errorf("Fig8MC table missing error bars:\n%s", out)
	}
	if out := Fig8MCChart(rows, counts).Render(40); !strings.Contains(out, "2 controllers") {
		t.Errorf("Fig8MC chart incomplete:\n%s", out)
	}
}

func TestMCSweepsPropagateErrors(t *testing.T) {
	if _, err := Fig7MC([]int{-1}, 2, 1); err == nil {
		t.Error("Fig7MC accepted a negative mesh size")
	}
	if _, err := Fig7MC([]int{4}, 0, 1); err == nil {
		t.Error("Fig7MC accepted zero replications")
	}
	if _, err := Fig8MC([]int{4}, []int{-3}, 2, 1); err == nil {
		t.Error("Fig8MC accepted a negative controller count")
	}
}
