package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// The experiment tests use the two smallest mesh sizes to keep the suite
// fast; the full five-size sweeps are exercised by cmd/etbench and the
// root-level benchmarks.
var testSizes = []int{4, 5}

func TestPaperConstants(t *testing.T) {
	if len(PaperMeshSizes()) != 5 || PaperMeshSizes()[0] != 4 || PaperMeshSizes()[4] != 8 {
		t.Errorf("PaperMeshSizes = %v", PaperMeshSizes())
	}
	if len(PaperControllerCounts()) != 5 || PaperControllerCounts()[0] != 1 || PaperControllerCounts()[4] != 10 {
		t.Errorf("PaperControllerCounts = %v", PaperControllerCounts())
	}
}

func TestFig2CurveShape(t *testing.T) {
	points := Fig2(20)
	if len(points) < 10 {
		t.Fatalf("only %d points sampled", len(points))
	}
	if points[0].Voltage < 4.0 || points[0].Voltage > 4.3 {
		t.Errorf("initial voltage = %.2f, want near 4.18", points[0].Voltage)
	}
	last := points[len(points)-1]
	if last.Voltage > 3.3 {
		t.Errorf("final voltage = %.2f, want to approach the 3.0 V cutoff", last.Voltage)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Voltage > points[i-1].Voltage+1e-9 {
			t.Fatalf("discharge curve not monotone at point %d", i)
		}
		if points[i].DepthOfDischarge <= points[i-1].DepthOfDischarge {
			t.Fatalf("depth of discharge not increasing at point %d", i)
		}
	}
	// The thin-film plateau: at half discharge the voltage should still be
	// close to 3.8-3.9 V.
	for _, p := range points {
		if p.DepthOfDischarge > 0.45 && p.DepthOfDischarge < 0.55 {
			if p.Voltage < 3.6 || p.Voltage > 4.0 {
				t.Errorf("voltage at 50%% DoD = %.2f, want the ~3.85 V plateau", p.Voltage)
			}
		}
	}
	if tbl := Fig2Table(points); tbl.NumRows() != len(points) {
		t.Error("Fig2Table row count mismatch")
	}
	if Fig2(0) == nil {
		t.Error("Fig2 with too few samples should still return points")
	}
}

// TestFig2SampleCounts is the regression test for the threshold-skip bug:
// when one Draw step crosses several 1/samples depth-of-discharge thresholds,
// the sampler must catch next up past the current depth instead of advancing
// it once (which made later samples fire early and bunch up).
func TestFig2SampleCounts(t *testing.T) {
	cases := []struct {
		samples   int
		effective int // Fig2 clamps samples < 2 to 2
	}{
		{samples: 0, effective: 2},
		{samples: 1, effective: 2},
		{samples: 2, effective: 2},
		{samples: 100, effective: 100},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("samples=%d", tc.samples), func(t *testing.T) {
			points := Fig2(tc.samples)
			if len(points) < 3 {
				t.Fatalf("only %d points", len(points))
			}
			// At most one point per threshold, plus the initial point and the
			// closing cutoff point.
			if max := tc.effective + 2; len(points) > max {
				t.Errorf("%d points for %d thresholds; threshold catch-up is not de-duplicating", len(points), tc.effective)
			}
			// Interior points must land on distinct thresholds: consecutive
			// samples are at least one threshold spacing apart (step-quantized,
			// hence the small tolerance).
			spacing := 1.0 / float64(tc.effective)
			interior := points[1 : len(points)-1]
			for i := 1; i < len(interior); i++ {
				if gap := interior[i].DepthOfDischarge - interior[i-1].DepthOfDischarge; gap < spacing*0.5 {
					t.Errorf("points %d and %d only %.4f apart, want >= %.4f: thresholds bunched up",
						i-1, i, gap, spacing*0.5)
				}
			}
			for i := 1; i < len(points); i++ {
				if points[i].DepthOfDischarge <= points[i-1].DepthOfDischarge {
					t.Errorf("depth of discharge not increasing at point %d", i)
				}
				if points[i].Voltage > points[i-1].Voltage+1e-9 {
					t.Errorf("voltage not monotone at point %d", i)
				}
			}
		})
	}
}

// testWorkerCounts are the pool sizes the determinism tests compare: serial,
// a fixed small fan-out, and whatever this machine defaults to.
func testWorkerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// TestFig7DeterministicAcrossWorkers asserts the parallel sweep is
// element-for-element identical to a serial reference run.
func TestFig7DeterministicAcrossWorkers(t *testing.T) {
	ref, err := Fig7(testSizes, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range testWorkerCounts() {
		rows, err := Fig7(testSizes, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rows) != len(ref) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(rows), len(ref))
		}
		for i := range ref {
			if rows[i] != ref[i] {
				t.Errorf("workers=%d: row %d = %+v, want %+v", workers, i, rows[i], ref[i])
			}
		}
	}
}

// TestFig8DeterministicAcrossWorkers covers the two-dimensional grid: every
// (mesh, controllers) cell must land at its input-order position with the
// same value regardless of fan-out, and the rendered table must be
// byte-identical to the serial path.
func TestFig8DeterministicAcrossWorkers(t *testing.T) {
	counts := []int{1, 4}
	ref, err := Fig8(testSizes, counts, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	refTable := Fig8Table(ref, counts).Render()
	for _, workers := range testWorkerCounts() {
		rows, err := Fig8(testSizes, counts, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rows) != len(ref) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(rows), len(ref))
		}
		for i := range ref {
			if rows[i] != ref[i] {
				t.Errorf("workers=%d: row %d = %+v, want %+v", workers, i, rows[i], ref[i])
			}
		}
		if table := Fig8Table(rows, counts).Render(); table != refTable {
			t.Errorf("workers=%d: rendered table differs from the serial run", workers)
		}
	}
}

// TestSweepsPropagateCellErrors asserts a failing cell surfaces its error
// through the pool instead of being lost in a worker.
func TestSweepsPropagateCellErrors(t *testing.T) {
	if _, err := Fig7([]int{4, -1}, WithWorkers(4)); err == nil {
		t.Error("Fig7 accepted a negative mesh size")
	}
	if _, err := Fig8([]int{4}, []int{0, -2}, WithWorkers(4)); err == nil {
		t.Error("Fig8 accepted a negative controller count")
	}
}

func TestFig7ReproducesHeadlineClaim(t *testing.T) {
	rows, err := Fig7(testSizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(testSizes) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.EARJobs <= r.SDRJobs {
			t.Errorf("%dx%d: EAR (%d) did not beat SDR (%d)", r.Mesh, r.Mesh, r.EARJobs, r.SDRJobs)
		}
		if r.Gain < 3 {
			t.Errorf("%dx%d: EAR/SDR gain %.1f, want >= 3", r.Mesh, r.Mesh, r.Gain)
		}
		if r.EAROverhead <= 0 || r.EAROverhead > 0.2 {
			t.Errorf("%dx%d: control overhead %.1f%% out of range", r.Mesh, r.Mesh, 100*r.EAROverhead)
		}
		if i > 0 && r.EARJobs <= rows[i-1].EARJobs {
			t.Errorf("EAR jobs did not grow with mesh size: %v", rows)
		}
	}
	tbl := Fig7Table(rows)
	if !strings.Contains(tbl.Render(), "EAR/SDR") {
		t.Error("Fig7Table missing gain column")
	}
	chart := Fig7Chart(rows)
	if out := chart.Render(60); !strings.Contains(out, "EAR") || !strings.Contains(out, "SDR") {
		t.Error("Fig7Chart output incomplete")
	}
}

func TestTable2ReproducesBoundColumn(t *testing.T) {
	rows, err := Table2(testSizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The J* column must match the paper to within 0.2 %.
		if r.PaperUpperBound > 0 {
			diff := (r.UpperBound - r.PaperUpperBound) / r.PaperUpperBound
			if diff < -0.002 || diff > 0.002 {
				t.Errorf("%dx%d: J* = %.2f, paper %.2f", r.Mesh, r.Mesh, r.UpperBound, r.PaperUpperBound)
			}
		}
		if float64(r.EARJobs) > r.UpperBound {
			t.Errorf("%dx%d: simulated EAR (%d) exceeds the bound (%.2f)", r.Mesh, r.Mesh, r.EARJobs, r.UpperBound)
		}
		if r.Achieved < 0.40 {
			t.Errorf("%dx%d: EAR achieved only %.1f%% of the bound", r.Mesh, r.Mesh, 100*r.Achieved)
		}
	}
	tbl := Table2Table(rows)
	if !strings.Contains(tbl.Render(), "paper J*") {
		t.Error("Table2Table missing paper columns")
	}
}

func TestFig8ControllerTrends(t *testing.T) {
	counts := []int{1, 4, 10}
	rows, err := Fig8([]int{4}, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byCount := map[int]int{}
	for _, r := range rows {
		byCount[r.Controllers] = r.Jobs
	}
	if !(byCount[1] < byCount[4] && byCount[4] <= byCount[10]) {
		t.Errorf("jobs did not increase with controller count: %v", byCount)
	}
	tbl := Fig8Table(rows, counts)
	if !strings.Contains(tbl.Render(), "10 controllers") {
		t.Error("Fig8Table missing controller column")
	}
	chart := Fig8Chart(rows, counts)
	if out := chart.Render(50); !strings.Contains(out, "EAR, 1 controllers") {
		t.Error("Fig8Chart output incomplete")
	}
}

func TestFig8LargerMeshSuffersMoreFromFewControllers(t *testing.T) {
	rows, err := Fig8([]int{4, 6}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].Jobs >= rows[0].Jobs {
		t.Errorf("with one controller the 6x6 mesh (%d jobs) should complete fewer jobs than the 4x4 (%d): a bigger controller consumes more power",
			rows[1].Jobs, rows[0].Jobs)
	}
}

func TestAblationEARWeight(t *testing.T) {
	rows, err := AblationEARWeight([]int{4}, []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	byQ := map[float64]int{}
	for _, r := range rows {
		byQ[r.Q] = r.Jobs
	}
	// Q = 1 disables the battery weighting entirely; it must do clearly worse
	// than the default Q = 2.
	if byQ[1] >= byQ[2] {
		t.Errorf("Q=1 (%d jobs) should underperform Q=2 (%d jobs)", byQ[1], byQ[2])
	}
	if tbl := AblationQTable(rows); tbl.NumRows() != len(rows) {
		t.Error("AblationQTable row count mismatch")
	}
}

func TestAblationMapping(t *testing.T) {
	rows, err := AblationMapping([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 mapping strategies, got %d", len(rows))
	}
	byName := map[string]int{}
	for _, r := range rows {
		if r.Jobs <= 0 {
			t.Errorf("mapping %s completed no jobs", r.Strategy)
		}
		byName[r.Strategy] = r.Jobs
	}
	if byName["checkerboard"] < byName["row-major-blocks"]/2 {
		t.Errorf("checkerboard (%d) unexpectedly collapsed relative to row-major (%d)",
			byName["checkerboard"], byName["row-major-blocks"])
	}
	if tbl := AblationMappingTable(rows); tbl.NumRows() != 4 {
		t.Error("AblationMappingTable row count mismatch")
	}
}

func TestAblationBattery(t *testing.T) {
	rows, err := AblationBattery([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	jobs := map[string]int{}
	for _, r := range rows {
		jobs[r.Battery+"/"+r.Algorithm] = r.Jobs
	}
	// The thin-film model must not beat the ideal model for the same
	// algorithm, and EAR must beat SDR under both models.
	if jobs["thin-film/EAR"] > jobs["ideal/EAR"] {
		t.Errorf("thin-film EAR (%d) beat ideal EAR (%d)", jobs["thin-film/EAR"], jobs["ideal/EAR"])
	}
	if jobs["thin-film/SDR"] > jobs["ideal/SDR"] {
		t.Errorf("thin-film SDR (%d) beat ideal SDR (%d)", jobs["thin-film/SDR"], jobs["ideal/SDR"])
	}
	if jobs["thin-film/EAR"] <= jobs["thin-film/SDR"] || jobs["ideal/EAR"] <= jobs["ideal/SDR"] {
		t.Errorf("EAR did not beat SDR under both battery models: %v", jobs)
	}
	// The EAR/SDR gap must be wider with the realistic battery, which is the
	// paper's motivation for modelling it.
	thinGap := float64(jobs["thin-film/EAR"]) / float64(jobs["thin-film/SDR"])
	idealGap := float64(jobs["ideal/EAR"]) / float64(jobs["ideal/SDR"])
	if thinGap <= idealGap {
		t.Errorf("thin-film gap %.1fx not wider than ideal gap %.1fx", thinGap, idealGap)
	}
	if tbl := AblationBatteryTable(rows); tbl.NumRows() != 4 {
		t.Error("AblationBatteryTable row count mismatch")
	}
}

func TestAblationLinkFailures(t *testing.T) {
	rows, err := AblationLinkFailures([]int{5}, []float64{0, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.EARJobs <= 0 {
			t.Errorf("EAR completed no jobs with %.0f%% failed links", 100*r.Fraction)
		}
		if r.EARJobs <= r.SDRJobs {
			t.Errorf("EAR (%d) did not beat SDR (%d) with %.0f%% failed links",
				r.EARJobs, r.SDRJobs, 100*r.Fraction)
		}
	}
	// Damaging the fabric must not help: the healthy mesh completes at least
	// as many jobs as the damaged one (allowing a small tolerance because the
	// routing detours change which node dies last).
	if rows[1].EARJobs > rows[0].EARJobs+rows[0].EARJobs/10 {
		t.Errorf("damaged mesh (%d jobs) substantially outperformed the healthy mesh (%d jobs)",
			rows[1].EARJobs, rows[0].EARJobs)
	}
	if tbl := AblationLinkTable(rows); tbl.NumRows() != 2 {
		t.Error("AblationLinkTable row count mismatch")
	}
	if _, err := AblationLinkFailures([]int{4}, []float64{1.5}); err == nil {
		t.Error("invalid failure fraction accepted")
	}
}

func TestAblationConcurrency(t *testing.T) {
	rows, err := AblationConcurrency([]int{4}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.JobsCompleted <= 0 {
			t.Errorf("%d concurrent jobs completed nothing", r.ConcurrentJobs)
		}
	}
	if rows[0].DeadlockReports != 0 {
		t.Errorf("single-job run reported %d deadlocks", rows[0].DeadlockReports)
	}
	if tbl := AblationConcurrencyTable(rows); tbl.NumRows() != 3 {
		t.Error("AblationConcurrencyTable row count mismatch")
	}
}
