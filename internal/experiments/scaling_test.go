package experiments

import (
	"strings"
	"testing"
)

// TestScalingDeterministicColumns checks everything about the scaling rows
// except the wall-clock columns: both strategies must produce byte-identical
// plans on every crossing, the incremental path must actually repair, and
// the dirty-set fractions must stay sane.
func TestScalingDeterministicColumns(t *testing.T) {
	rows, err := Scaling([]int{4, 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Nodes != r.Mesh*r.Mesh || r.Crossings != 8 {
			t.Errorf("row %+v has inconsistent geometry", r)
		}
		if !r.FullRan {
			t.Errorf("%dx%d is under the full-baseline cap but FullRan is false", r.Mesh, r.Mesh)
		}
		if !r.Identical {
			t.Errorf("%dx%d: incremental and full plans diverged", r.Mesh, r.Mesh)
		}
		if r.Repairs+r.Fallbacks != r.Crossings {
			t.Errorf("%dx%d: repairs %d + fallbacks %d != crossings %d", r.Mesh, r.Mesh, r.Repairs, r.Fallbacks, r.Crossings)
		}
		if r.Repairs > 0 && (r.DirtyFrac <= 0 || r.DirtyFrac > 1 || r.AffectedFrac <= 0 || r.AffectedFrac > 1) {
			t.Errorf("%dx%d: implausible dirty/affected fractions %+v", r.Mesh, r.Mesh, r)
		}
	}
	// Single-node crossings on the 8x8 mesh must stay under the default
	// crossover; a fallback there would mean the policy regressed.
	if rows[1].Repairs == 0 {
		t.Error("8x8 crossings never took the incremental path")
	}
	tbl := ScalingTable(rows)
	if tbl.NumRows() != len(rows) {
		t.Errorf("table has %d rows, want %d", tbl.NumRows(), len(rows))
	}
	if !strings.Contains(tbl.Render(), "8x8") {
		t.Error("rendered table is missing the 8x8 row")
	}
}

// TestScalingRejectsBadInputs: the argument errors must be eager.
func TestScalingRejectsBadInputs(t *testing.T) {
	if _, err := Scaling([]int{4}, 0); err == nil {
		t.Error("Scaling accepted zero crossings")
	}
	if _, err := Scaling([]int{1}, 4); err == nil {
		t.Error("Scaling accepted a 1x1 mesh")
	}
}
