package experiments

import (
	"fmt"
	"testing"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// traceNames are the registry scenarios the determinism suite traces: the
// Fig 7 pair, a damaged fabric and a finite-controller configuration — small
// meshes so the suite stays fast, but covering link faults, controller
// batteries and both algorithms.
var traceNames = []string{"paper-default", "paper-sdr", "degraded-fabric", "dual-controller-finite"}

// traceAll runs every named scenario with a Timeline observer attached, one
// runner cell per scenario, and returns the rendered CSVs in input order.
func traceAll(workers int) ([]string, error) {
	pool := runner.New(runner.WithWorkers(workers))
	return runner.Map(pool, traceNames, func(_ int, name string) (string, error) {
		spec, ok := scenario.Lookup(name)
		if !ok {
			return "", fmt.Errorf("scenario %q not registered", name)
		}
		timeline := &trace.Timeline{}
		if _, err := spec.Simulate(timeline); err != nil {
			return "", err
		}
		return timeline.CSV(), nil
	})
}

// TestTraceDeterministicAcrossWorkers extends the PR-1 determinism suite to
// the observer pipeline: the trace CSV a scenario produces must be
// byte-identical whether the sweep ran serially or fanned out over a worker
// pool. Each cell owns its simulator and its observers, so the event stream
// never crosses goroutines — this pins that property.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	ref, err := traceAll(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, csv := range ref {
		if len(csv) == 0 {
			t.Fatalf("serial trace of %s is empty", traceNames[i])
		}
	}
	for _, workers := range testWorkerCounts()[1:] {
		got, err := traceAll(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d: trace of %s is not byte-identical to the serial trace",
					workers, traceNames[i])
			}
		}
	}
}
