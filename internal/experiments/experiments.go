// Package experiments contains the harnesses that regenerate every table and
// figure of the paper's evaluation (Sec 7) plus the additional ablation
// studies listed in DESIGN.md. Each experiment returns plain row structs so
// the callers (cmd/etbench, the root-level benchmarks and the tests) can
// render, assert on or export them as needed.
//
// Every sweep enumerates declarative scenario.Spec values — the same
// representation behind `etsim -scenario` — and fans them out through
// runner.Grid/runner.Map, so a paper figure is nothing more than a list of
// specs plus a renderer.
package experiments

import (
	"fmt"

	"repro/internal/battery"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PaperMeshSizes are the square mesh sizes evaluated in the paper.
func PaperMeshSizes() []int { return []int{4, 5, 6, 7, 8} }

// PaperControllerCounts are the controller counts evaluated in Fig 8.
func PaperControllerCounts() []int { return []int{1, 2, 4, 7, 10} }

// ---------------------------------------------------------------------------
// Sweep execution options
// ---------------------------------------------------------------------------

// Option configures how a sweep executes. Every sweep fans its independent
// (mesh size, scenario) cells out over a runner.Pool; each cell constructs
// its own simulator, so results are element-for-element identical for every
// worker count.
type Option func(*config)

type config struct {
	workers int
	spans   *trace.Spans
}

// WithWorkers sets the number of worker goroutines a sweep may use. Values
// below 1 (and the default) select runner.DefaultWorkers(), i.e. one worker
// per CPU. WithWorkers(1) forces a serial run.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithSpans attaches a flight recorder to the sweep's worker pool: every
// executed cell lands in s as one span, laid out per worker, exportable as
// Chrome trace-event JSON (etbench -spans). Recording is observational
// only — cell results and their order are unaffected. A nil s is ignored.
func WithSpans(s *trace.Spans) Option {
	return func(c *config) { c.spans = s }
}

// Options combines several options into one, so callers can thread a single
// value through every sweep invocation.
func Options(opts ...Option) Option {
	return func(c *config) {
		for _, o := range opts {
			if o != nil {
				o(c)
			}
		}
	}
}

// newPool builds the worker pool for one sweep invocation.
func newPool(opts []Option) *runner.Pool {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	ropts := []runner.Option{runner.WithWorkers(cfg.workers)}
	if cfg.spans != nil {
		ropts = append(ropts, runner.WithCellObserver(cfg.spans.CellObserver()))
	}
	return runner.New(ropts...)
}

// workerCount resolves the configured worker budget of a sweep invocation
// (0 = the runner default), for sweeps that hand their parallelism to an
// inner layer instead of a pool of their own.
func workerCount(opts []Option) int {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.workers
}

// ---------------------------------------------------------------------------
// Fig 2: thin-film battery discharge curve
// ---------------------------------------------------------------------------

// Fig2Point is one sample of the regenerated discharge curve.
type Fig2Point struct {
	DepthOfDischarge float64
	Voltage          float64
}

// Fig2 regenerates the discharge voltage curve of the thin-film battery model
// by discharging a fresh battery with small, well-rested draws (the
// quasi-static condition under which the published curve was measured) and
// sampling the terminal voltage.
func Fig2(samples int) []Fig2Point {
	if samples < 2 {
		samples = 2
	}
	b := battery.NewDefaultThinFilm()
	step := b.NominalPJ() / float64(samples*50)
	points := []Fig2Point{{DepthOfDischarge: 0, Voltage: b.Voltage()}}
	next := 1.0 / float64(samples)
	for !b.Dead() {
		if err := b.Draw(step); err != nil {
			break
		}
		b.Rest(5_000_000)
		dod := b.DeliveredPJ() / b.NominalPJ()
		if dod >= next {
			points = append(points, Fig2Point{DepthOfDischarge: dod, Voltage: b.Voltage()})
			// One Draw step can cross several 1/samples thresholds at once
			// (always when samples exceeds the step resolution); catch next up
			// past the current depth so the skipped thresholds don't make
			// later samples fire early and bunch up.
			for next <= dod {
				next += 1.0 / float64(samples)
			}
		}
	}
	// Close the curve with the cutoff point at which the cell is declared
	// dead, as in the published figure.
	points = append(points, Fig2Point{
		DepthOfDischarge: b.DeliveredPJ() / b.NominalPJ(),
		Voltage:          battery.DefaultCutoffVoltage,
	})
	return points
}

// Fig2Table renders the curve as a table.
func Fig2Table(points []Fig2Point) *stats.Table {
	t := stats.NewTable("Fig 2: thin-film battery discharge curve (regenerated)",
		"depth of discharge", "voltage [V]")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.2f", p.DepthOfDischarge), fmt.Sprintf("%.3f", p.Voltage))
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig 7: EAR vs SDR jobs completed, plus control-overhead percentages
// ---------------------------------------------------------------------------

// Fig7Row is one mesh size of the Fig 7 comparison.
type Fig7Row struct {
	Mesh        int
	EARJobs     int
	SDRJobs     int
	Gain        float64
	EAROverhead float64 // control-information overhead fraction under EAR
}

// Fig7 runs the EAR-vs-SDR comparison of Sec 7.1 on the given mesh sizes:
// thin-film batteries, a single infinite-energy controller and one job in
// flight. The mesh sizes are evaluated in parallel; each cell runs its own
// pair of scenario specs.
func Fig7(sizes []int, opts ...Option) ([]Fig7Row, error) {
	return runner.Map(newPool(opts), sizes, func(_ int, n int) (Fig7Row, error) {
		earRes, err := scenario.Spec{Mesh: n}.Simulate()
		if err != nil {
			return Fig7Row{}, err
		}
		sdrRes, err := scenario.Spec{Mesh: n, Algorithm: scenario.AlgorithmSDR}.Simulate()
		if err != nil {
			return Fig7Row{}, err
		}
		row := Fig7Row{
			Mesh:        n,
			EARJobs:     earRes.JobsCompleted,
			SDRJobs:     sdrRes.JobsCompleted,
			EAROverhead: earRes.Energy.ControlOverheadFraction(),
		}
		if sdrRes.JobsCompleted > 0 {
			row.Gain = float64(earRes.JobsCompleted) / float64(sdrRes.JobsCompleted)
		}
		return row, nil
	})
}

// Fig7Table renders the Fig 7 data as a table including the control-overhead
// percentages quoted in the Sec 7.1 text.
func Fig7Table(rows []Fig7Row) *stats.Table {
	t := stats.NewTable("Fig 7: number of completed jobs, EAR vs SDR (2-bit control medium)",
		"mesh", "EAR jobs", "SDR jobs", "EAR/SDR", "control overhead")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.EARJobs, r.SDRJobs,
			fmt.Sprintf("%.1fx", r.Gain), fmt.Sprintf("%.1f%%", 100*r.EAROverhead))
	}
	return t
}

// Fig7Chart renders the comparison as an ASCII bar chart.
func Fig7Chart(rows []Fig7Row) *stats.Chart {
	c := stats.NewChart("Fig 7: # of jobs completed (EAR vs SDR)", "mesh", "# of jobs")
	ear := c.AddSeries("EAR")
	sdr := c.AddSeries("SDR")
	for _, r := range rows {
		ear.Add(float64(r.Mesh), float64(r.EARJobs))
		sdr.Add(float64(r.Mesh), float64(r.SDRJobs))
	}
	return c
}

// ---------------------------------------------------------------------------
// Table 2: EAR (ideal battery) vs the Theorem-1 upper bound
// ---------------------------------------------------------------------------

// Table2Row is one mesh size of Table 2.
type Table2Row struct {
	Mesh       int
	EARJobs    int
	UpperBound float64
	Achieved   float64
	// PaperEARJobs and PaperUpperBound echo the values printed in the paper
	// for side-by-side comparison.
	PaperEARJobs    float64
	PaperUpperBound float64
}

// paperTable2 holds the published Table 2 values.
var paperTable2 = map[int][2]float64{
	4: {62.8, 131.42},
	5: {92, 205.25},
	6: {132.7, 295.70},
	7: {194, 402.48},
	8: {234, 525.69},
}

// Table2 reproduces Table 2: EAR with the ideal battery model against the
// analytical upper bound of Theorem 1. The mesh sizes are evaluated in
// parallel.
func Table2(sizes []int, opts ...Option) ([]Table2Row, error) {
	return runner.Map(newPool(opts), sizes, func(_ int, n int) (Table2Row, error) {
		strategy, err := scenario.Spec{Mesh: n, Battery: scenario.BatteryIdeal}.Strategy()
		if err != nil {
			return Table2Row{}, err
		}
		res, err := strategy.Simulate()
		if err != nil {
			return Table2Row{}, err
		}
		bound, err := strategy.UpperBound()
		if err != nil {
			return Table2Row{}, err
		}
		row := Table2Row{
			Mesh:       n,
			EARJobs:    res.JobsCompleted,
			UpperBound: bound.Jobs,
			Achieved:   bound.Achieved(float64(res.JobsCompleted)),
		}
		if paper, ok := paperTable2[n]; ok {
			row.PaperEARJobs = paper[0]
			row.PaperUpperBound = paper[1]
		}
		return row, nil
	})
}

// Table2Table renders the reproduction next to the published numbers.
func Table2Table(rows []Table2Row) *stats.Table {
	t := stats.NewTable("Table 2: EAR (ideal battery) vs the Theorem-1 upper bound",
		"mesh", "J(EAR)", "J* (ours)", "J(EAR)/J*", "paper J(EAR)", "paper J*", "paper ratio")
	for _, r := range rows {
		paperRatio := ""
		if r.PaperUpperBound > 0 {
			paperRatio = fmt.Sprintf("%.1f%%", 100*r.PaperEARJobs/r.PaperUpperBound)
		}
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.EARJobs,
			fmt.Sprintf("%.2f", r.UpperBound), fmt.Sprintf("%.1f%%", 100*r.Achieved),
			r.PaperEARJobs, r.PaperUpperBound, paperRatio)
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig 8: effect of the number of controllers on system lifetime
// ---------------------------------------------------------------------------

// Fig8Row is one (mesh size, controller count) point of Fig 8.
type Fig8Row struct {
	Mesh        int
	Controllers int
	Jobs        int
	Reason      string
}

// Fig8 reproduces the controller-failure study of Sec 7.3: EAR with
// thin-film batteries on both nodes and controllers, sweeping the number of
// controllers for every mesh size.
// The full (mesh size × controller count) grid is evaluated in parallel,
// one cell per simulation, in the row-major order of the former nested loops.
func Fig8(sizes, controllerCounts []int, opts ...Option) ([]Fig8Row, error) {
	cells := runner.Grid(sizes, controllerCounts)
	return runner.Map(newPool(opts), cells, func(_ int, cell runner.Cell2[int, int]) (Fig8Row, error) {
		n, c := cell.A, cell.B
		res, err := scenario.Spec{Mesh: n, Controllers: c, FiniteControllers: true}.Simulate()
		if err != nil {
			return Fig8Row{}, err
		}
		return Fig8Row{Mesh: n, Controllers: c, Jobs: res.JobsCompleted, Reason: string(res.Reason)}, nil
	})
}

// Fig8Table renders the Fig 8 data with one row per mesh size and one column
// per controller count.
func Fig8Table(rows []Fig8Row, controllerCounts []int) *stats.Table {
	cols := []string{"mesh"}
	for _, c := range controllerCounts {
		cols = append(cols, fmt.Sprintf("%d controllers", c))
	}
	t := stats.NewTable("Fig 8: jobs completed vs number of controllers (EAR, finite controller batteries)", cols...)
	byMesh := map[int]map[int]int{}
	var meshes []int
	for _, r := range rows {
		if _, ok := byMesh[r.Mesh]; !ok {
			byMesh[r.Mesh] = map[int]int{}
			meshes = append(meshes, r.Mesh)
		}
		byMesh[r.Mesh][r.Controllers] = r.Jobs
	}
	for _, m := range meshes {
		row := []interface{}{fmt.Sprintf("%dx%d", m, m)}
		for _, c := range controllerCounts {
			row = append(row, byMesh[m][c])
		}
		t.AddRow(row...)
	}
	return t
}

// Fig8Chart renders the controller sweep as an ASCII chart with one series
// per controller count.
func Fig8Chart(rows []Fig8Row, controllerCounts []int) *stats.Chart {
	c := stats.NewChart("Fig 8: effect of the number of controllers on system lifetime", "mesh", "# of jobs")
	series := map[int]*stats.Series{}
	for _, count := range controllerCounts {
		series[count] = c.AddSeries(fmt.Sprintf("EAR, %d controllers", count))
	}
	for _, r := range rows {
		if s, ok := series[r.Controllers]; ok {
			s.Add(float64(r.Mesh), float64(r.Jobs))
		}
	}
	return c
}

// ---------------------------------------------------------------------------
// Ablation A1: sensitivity to the EAR weighting exponent Q
// ---------------------------------------------------------------------------

// AblationQRow is one (mesh, Q) sample.
type AblationQRow struct {
	Mesh int
	Q    float64
	Jobs int
}

// AblationEARWeight sweeps the base Q of the EAR weighting function
// f(n) = Q^(levels-1-n). Q = 1 disables the battery information entirely
// (every penalty becomes 1), so the sweep shows how strongly EAR relies on it.
func AblationEARWeight(sizes []int, qs []float64, opts ...Option) ([]AblationQRow, error) {
	cells := runner.Grid(sizes, qs)
	return runner.Map(newPool(opts), cells, func(_ int, cell runner.Cell2[int, float64]) (AblationQRow, error) {
		n, q := cell.A, cell.B
		res, err := scenario.Spec{Mesh: n, EARQ: q}.Simulate()
		if err != nil {
			return AblationQRow{}, err
		}
		return AblationQRow{Mesh: n, Q: q, Jobs: res.JobsCompleted}, nil
	})
}

// AblationQTable renders the Q sweep.
func AblationQTable(rows []AblationQRow) *stats.Table {
	t := stats.NewTable("Ablation A1: EAR weighting base Q", "mesh", "Q", "jobs completed")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.Q, r.Jobs)
	}
	return t
}

// ---------------------------------------------------------------------------
// Ablation A2: mapping strategy
// ---------------------------------------------------------------------------

// AblationMappingRow is one (mesh, mapping strategy) sample.
type AblationMappingRow struct {
	Mesh     int
	Strategy string
	Jobs     int
}

// AblationMapping compares the paper's checkerboard mapping against the
// Theorem-1 proportional mapping, row-major clustering and a random mapping,
// all under EAR.
// The (mesh size × mapping) grid is evaluated in parallel. The proportional
// spec derives its weights from the analytical bound inside Spec.Strategy,
// which is cheap, so the cell that needs them recomputes them instead of
// sharing a probe across cells.
func AblationMapping(sizes []int, opts ...Option) ([]AblationMappingRow, error) {
	mappings := []string{
		scenario.MappingCheckerboard,
		scenario.MappingProportional,
		scenario.MappingRowMajor,
		scenario.MappingRandom,
	}
	cells := runner.Grid(sizes, mappings)
	return runner.Map(newPool(opts), cells, func(_ int, cell runner.Cell2[int, string]) (AblationMappingRow, error) {
		n := cell.A
		strategy, err := scenario.Spec{Mesh: n, Mapping: cell.B, MappingSeed: 1}.Strategy()
		if err != nil {
			return AblationMappingRow{}, err
		}
		res, err := strategy.Simulate()
		if err != nil {
			return AblationMappingRow{}, err
		}
		return AblationMappingRow{Mesh: n, Strategy: strategy.Mapper.Name(), Jobs: res.JobsCompleted}, nil
	})
}

// AblationMappingTable renders the mapping comparison.
func AblationMappingTable(rows []AblationMappingRow) *stats.Table {
	t := stats.NewTable("Ablation A2: module-to-node mapping strategy (EAR)", "mesh", "mapping", "jobs completed")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.Strategy, r.Jobs)
	}
	return t
}

// ---------------------------------------------------------------------------
// Ablation A3: battery model
// ---------------------------------------------------------------------------

// AblationBatteryRow is one (mesh, algorithm, battery model) sample.
type AblationBatteryRow struct {
	Mesh      int
	Algorithm string
	Battery   string
	Jobs      int
}

// AblationBattery quantifies how much of the EAR/SDR gap is contributed by
// the thin-film battery's rate-capacity effect by re-running both algorithms
// with the ideal battery model.
// The (mesh size × battery model × algorithm) grid is evaluated in parallel,
// flattened in the row-major order of the former nested loops. The cells
// share nothing but immutable spec values.
func AblationBattery(sizes []int, opts ...Option) ([]AblationBatteryRow, error) {
	type combo struct {
		label   string // display name used in the rendered table
		battery string // scenario.Spec battery value
		alg     string
	}
	combos := []combo{
		{"thin-film", scenario.BatteryThinFilm, scenario.AlgorithmEAR},
		{"thin-film", scenario.BatteryThinFilm, scenario.AlgorithmSDR},
		{"ideal", scenario.BatteryIdeal, scenario.AlgorithmEAR},
		{"ideal", scenario.BatteryIdeal, scenario.AlgorithmSDR},
	}
	cells := runner.Grid(sizes, combos)
	return runner.Map(newPool(opts), cells, func(_ int, cell runner.Cell2[int, combo]) (AblationBatteryRow, error) {
		n := cell.A
		res, err := scenario.Spec{Mesh: n, Algorithm: cell.B.alg, Battery: cell.B.battery}.Simulate()
		if err != nil {
			return AblationBatteryRow{}, err
		}
		return AblationBatteryRow{
			Mesh: n, Algorithm: cell.B.alg, Battery: cell.B.label, Jobs: res.JobsCompleted,
		}, nil
	})
}

// AblationBatteryTable renders the battery-model comparison.
func AblationBatteryTable(rows []AblationBatteryRow) *stats.Table {
	t := stats.NewTable("Ablation A3: battery model vs routing algorithm", "mesh", "battery", "algorithm", "jobs completed")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.Battery, r.Algorithm, r.Jobs)
	}
	return t
}

// ---------------------------------------------------------------------------
// Ablation A4: concurrent jobs and deadlock recovery
// ---------------------------------------------------------------------------

// AblationConcurrencyRow is one (mesh, jobs-in-flight) sample.
type AblationConcurrencyRow struct {
	Mesh            int
	ConcurrentJobs  int
	JobsCompleted   int
	DeadlockReports int
}

// AblationConcurrency feeds multiple concurrent jobs into the system (Sec 7's
// closing remark) to exercise the deadlock recovery mechanism of the TDMA
// scheme.
// The (mesh size × jobs-in-flight) grid is evaluated in parallel. The jobs
// are concurrent inside one simulated TDMA frame, not across goroutines; each
// cell still owns a private simulator.
func AblationConcurrency(sizes []int, concurrency []int, opts ...Option) ([]AblationConcurrencyRow, error) {
	cells := runner.Grid(sizes, concurrency)
	return runner.Map(newPool(opts), cells, func(_ int, cell runner.Cell2[int, int]) (AblationConcurrencyRow, error) {
		n, jobs := cell.A, cell.B
		res, err := scenario.Spec{Mesh: n, ConcurrentJobs: jobs}.Simulate()
		if err != nil {
			return AblationConcurrencyRow{}, err
		}
		return AblationConcurrencyRow{
			Mesh: n, ConcurrentJobs: jobs,
			JobsCompleted: res.JobsCompleted, DeadlockReports: res.DeadlockReports,
		}, nil
	})
}

// ---------------------------------------------------------------------------
// Ablation A5: link failures (wear-and-tear)
// ---------------------------------------------------------------------------

// AblationLinkRow is one (mesh, failed-link fraction) sample.
type AblationLinkRow struct {
	Mesh     int
	Fraction float64
	EARJobs  int
	SDRJobs  int
}

// AblationLinkFailures removes a growing fraction of the woven interconnects
// before the simulation starts — the wear-and-tear scenario that motivates
// the paper's network-based architecture — and measures how gracefully EAR
// and SDR degrade on the damaged fabric.
// The (mesh size × failure fraction) grid is evaluated in parallel; link
// removal is seeded deterministically per cell, so fan-out cannot change
// which links fail.
func AblationLinkFailures(sizes []int, fractions []float64, opts ...Option) ([]AblationLinkRow, error) {
	cells := runner.Grid(sizes, fractions)
	return runner.Map(newPool(opts), cells, func(_ int, cell runner.Cell2[int, float64]) (AblationLinkRow, error) {
		n, f := cell.A, cell.B
		earRes, err := scenario.Spec{Mesh: n, FailedLinkFraction: f, FailedLinkSeed: 1}.Simulate()
		if err != nil {
			return AblationLinkRow{}, err
		}
		sdrRes, err := scenario.Spec{
			Mesh: n, Algorithm: scenario.AlgorithmSDR, FailedLinkFraction: f, FailedLinkSeed: 1,
		}.Simulate()
		if err != nil {
			return AblationLinkRow{}, err
		}
		return AblationLinkRow{
			Mesh: n, Fraction: f, EARJobs: earRes.JobsCompleted, SDRJobs: sdrRes.JobsCompleted,
		}, nil
	})
}

// AblationLinkTable renders the link-failure sweep.
func AblationLinkTable(rows []AblationLinkRow) *stats.Table {
	t := stats.NewTable("Ablation A5: link failures (wear-and-tear)",
		"mesh", "failed links", "EAR jobs", "SDR jobs")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), fmt.Sprintf("%.0f%%", 100*r.Fraction), r.EARJobs, r.SDRJobs)
	}
	return t
}

// AblationConcurrencyTable renders the concurrency sweep.
func AblationConcurrencyTable(rows []AblationConcurrencyRow) *stats.Table {
	t := stats.NewTable("Ablation A4: concurrent jobs and deadlock recovery (EAR)",
		"mesh", "jobs in flight", "jobs completed", "deadlock reports")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.ConcurrentJobs, r.JobsCompleted, r.DeadlockReports)
	}
	return t
}
