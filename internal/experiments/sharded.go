package experiments

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// Fig 8 extension: sharded regional control
// ---------------------------------------------------------------------------

// DefaultShardedControllerCounts is the controller axis of the fig8-sharded
// grid: 0 selects the infinite-energy controller of Sec 7.1/7.2 (the
// equal-lifetime baseline for the recompute comparison), positive counts
// attach finite thin-film batteries per controller as in Fig 8.
func DefaultShardedControllerCounts() []int { return []int{0, 2} }

// DefaultShardCounts is the shard axis of the fig8-sharded grid. 1 selects
// the centralized control plane, giving every sweep its own in-grid baseline.
func DefaultShardCounts() []int { return []int{1, 2, 4} }

// DefaultStalenessBounds is the summary-exchange-period axis of the
// fig8-sharded grid, in TDMA frames.
func DefaultStalenessBounds() []int { return []int{1, 8, 32} }

// Fig8ShardedRow is one (mesh, controllers, shards, staleness) point of the
// sharded-control study.
type Fig8ShardedRow struct {
	Mesh int
	// Controllers is the redundant-controller count per pool with finite
	// batteries, or 0 for a single infinite-energy controller per pool.
	Controllers int
	// Shards is the regional-controller count; 1 means the centralized plane.
	Shards int
	// Staleness is the summary-exchange period in frames (1 for centralized).
	Staleness int
	Jobs      int
	Reason    string
	// RecomputeFrames counts frames in which at least one controller re-ran
	// the routing algorithm (the full-mesh recompute count for centralized).
	RecomputeFrames int
	// ShardRecomputes is each region's own recompute count (nil for
	// centralized rows); MaxShardRecomputes is its maximum.
	ShardRecomputes    []int
	MaxShardRecomputes int
}

// fig8ShardedCell is one cell of the flattened sweep grid.
type fig8ShardedCell struct {
	mesh, controllers, shards, staleness int
}

// Fig8Sharded extends the Fig 8 controller-failure study to the sharded
// control plane: EAR with thin-film node batteries, sweeping the
// redundant-controller count (per pool; 0 = one infinite-energy controller),
// the regional shard count and the summary-exchange staleness bound. Shard
// count 1 runs the centralized plane (its staleness axis collapses to a
// single row), so every grid carries its own centralized baseline for the
// recompute comparison — the controllers=0 rows are the equal-lifetime
// comparison (both planes run until the nodes kill the system), while the
// finite rows show how regional pools stretch the Fig 8 lifetime.
// The full grid is evaluated in parallel, one cell per simulation, in the
// row-major order of the nested axes; results are byte-identical at every
// worker count.
func Fig8Sharded(sizes, controllerCounts, shardCounts, stalenessBounds []int, opts ...Option) ([]Fig8ShardedRow, error) {
	var cells []fig8ShardedCell
	for _, n := range sizes {
		for _, c := range controllerCounts {
			for _, s := range shardCounts {
				if s <= 1 {
					// Centralized baseline: staleness is meaningless, keep one row.
					cells = append(cells, fig8ShardedCell{mesh: n, controllers: c, shards: 1, staleness: 1})
					continue
				}
				for _, st := range stalenessBounds {
					cells = append(cells, fig8ShardedCell{mesh: n, controllers: c, shards: s, staleness: st})
				}
			}
		}
	}
	return runner.Map(newPool(opts), cells, func(_ int, cell fig8ShardedCell) (Fig8ShardedRow, error) {
		sp := scenario.Spec{
			Mesh:              cell.mesh,
			Controllers:       cell.controllers, // 0 defaults to 1
			FiniteControllers: cell.controllers > 0,
		}
		if cell.shards > 1 {
			sp.ControlPlane = "sharded"
			sp.Shards = cell.shards
			sp.StalenessFrames = cell.staleness
		}
		res, err := sp.Simulate()
		if err != nil {
			return Fig8ShardedRow{}, err
		}
		row := Fig8ShardedRow{
			Mesh:            cell.mesh,
			Controllers:     cell.controllers,
			Shards:          cell.shards,
			Staleness:       cell.staleness,
			Jobs:            res.JobsCompleted,
			Reason:          string(res.Reason),
			RecomputeFrames: res.RoutingRecomputes,
			ShardRecomputes: res.ShardRecomputes,
		}
		for _, r := range res.ShardRecomputes {
			if r > row.MaxShardRecomputes {
				row.MaxShardRecomputes = r
			}
		}
		return row, nil
	})
}

// Fig8ShardedTable renders the sharded-control sweep, one row per grid cell.
func Fig8ShardedTable(rows []Fig8ShardedRow) *stats.Table {
	t := stats.NewTable("Fig 8 extension: sharded regional control (EAR; ctrl/pool \"inf\" = one infinite-energy controller)",
		"mesh", "ctrl/pool", "shards", "staleness", "jobs", "recompute frames", "max shard recomputes", "death")
	for _, r := range rows {
		maxShard := "-"
		if r.Shards > 1 {
			maxShard = fmt.Sprintf("%d", r.MaxShardRecomputes)
		}
		ctrl := "inf"
		if r.Controllers > 0 {
			ctrl = fmt.Sprintf("%d", r.Controllers)
		}
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), ctrl, r.Shards, r.Staleness,
			r.Jobs, r.RecomputeFrames, maxShard, r.Reason)
	}
	return t
}

// Fig8ShardedChart renders jobs completed against the shard count, one series
// per staleness bound.
func Fig8ShardedChart(rows []Fig8ShardedRow) *stats.Chart {
	c := stats.NewChart("Fig 8 extension: jobs completed vs shard count", "shards", "# of jobs")
	series := map[int]*stats.Series{}
	for _, r := range rows {
		s, ok := series[r.Staleness]
		if !ok {
			s = c.AddSeries(fmt.Sprintf("staleness %d", r.Staleness))
			series[r.Staleness] = s
		}
		s.Add(float64(r.Shards), float64(r.Jobs))
	}
	return c
}
