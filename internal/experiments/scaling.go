package experiments

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ---------------------------------------------------------------------------
// Big-mesh scaling: incremental dirty-set repair vs full Floyd–Warshall
// ---------------------------------------------------------------------------

// DefaultScalingSizes is the mesh-size axis of the scaling study. The largest
// points are far beyond the paper's 8x8 ceiling; they are tractable at all
// because the steady-state recompute is an incremental repair.
func DefaultScalingSizes() []int { return []int{8, 16, 32, 64} }

// DefaultScalingCrossings is the number of battery-level crossings measured
// per mesh size.
const DefaultScalingCrossings = 16

// scalingFullCapNodes bounds the always-full baseline: above this node count
// one full Floyd–Warshall pass per crossing is exactly the cost this study
// exists to avoid, so only the incremental path is timed (the repair's
// byte-identity is pinned separately, by the equivalence suite on meshes the
// baseline can afford).
const scalingFullCapNodes = 1024

// ScalingRow is one mesh size of the scaling study.
type ScalingRow struct {
	Mesh  int
	Nodes int
	// Crossings is the number of measured single-node battery-level
	// crossings (each changes one reported level, the dominant steady-state
	// recompute trigger).
	Crossings int
	// FullRan is true when the always-full baseline was measured; above
	// scalingFullCapNodes it is skipped and FullMS/Speedup/Identical are
	// meaningless.
	FullRan bool
	// FullMS and IncrementalMS are the mean wall-clock milliseconds per
	// crossing for the two strategies (the only non-deterministic columns).
	FullMS        float64
	IncrementalMS float64
	// Speedup is FullMS / IncrementalMS.
	Speedup float64
	// Repairs and Fallbacks split the incremental run's recomputes: crossings
	// repaired from the dirty set vs crossings that fell back to a full pass.
	Repairs   int
	Fallbacks int
	// DirtyFrac and AffectedFrac are the mean dirty-vertex fraction (of K)
	// and recomputed-pair fraction (of K²) across the repairs.
	DirtyFrac    float64
	AffectedFrac float64
	// Identical is true when every crossing's routing plan fingerprint
	// matched between the two strategies (only checked when FullRan).
	Identical bool
}

// Scaling measures the per-crossing recompute cost of the incremental
// dirty-set repair against the always-full Floyd–Warshall baseline, on
// meshes up to far beyond the paper's sizes. For every mesh size it replays
// the same deterministic trajectory of single-node battery-level crossings
// through both strategies in lockstep, times each recompute, and compares
// the resulting routing plans by fingerprint. Both workspaces are warmed
// with one untimed bootstrap computation first (the first computation is
// always a full pass; on the biggest meshes it is also the only full pass).
//
// Everything about the rows except the millisecond columns (and the speedup
// derived from them) is deterministic. The timings run serially, never
// through the worker pool, so one size's measurement cannot perturb
// another's.
func Scaling(sizes []int, crossings int) ([]ScalingRow, error) {
	if crossings < 1 {
		return nil, fmt.Errorf("experiments: scaling needs at least one crossing, got %d", crossings)
	}
	rows := make([]ScalingRow, 0, len(sizes))
	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: scaling mesh size must be at least 2, got %d", n)
		}
		row, err := scalingRow(n, crossings)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func scalingRow(n, crossings int) (ScalingRow, error) {
	mesh, err := topology.NewMesh(n, n, topology.DefaultSpacingCM)
	if err != nil {
		return ScalingRow{}, err
	}
	k := mesh.Graph.NodeCount()
	alg := routing.NewEAR()
	const levels = 8
	dests := map[app.ModuleID][]topology.NodeID{}
	for _, node := range mesh.Nodes() {
		m := app.ModuleID(int(node.ID)%3 + 1)
		dests[m] = append(dests[m], node.ID)
	}
	state := &routing.SystemState{Graph: mesh.Graph, Levels: levels, Status: make([]routing.NodeStatus, k)}
	for i := range state.Status {
		state.Status[i] = routing.NodeStatus{Alive: true, BatteryLevel: levels - 1}
	}

	row := ScalingRow{Mesh: n, Nodes: k, Crossings: crossings, FullRan: k <= scalingFullCapNodes, Identical: true}

	incr := routing.NewDeltaWorkspace()
	full := routing.NewDeltaWorkspace()
	full.SetMode(routing.RecomputeFull)

	// Bootstrap: the first computation is always a full pass for both
	// strategies, so it says nothing about the steady state; warm both
	// workspaces on the initial state, untimed.
	var prevIncr, prevFull *routing.Tables
	prevIncr = incr.ComputeInto(alg, state, dests, nil).Tables
	if row.FullRan {
		prevFull = full.ComputeInto(alg, state, dests, nil).Tables
	}

	var incrNS, fullNS int64
	for c := 0; c < crossings; c++ {
		// One battery-level crossing: the dominant steady-state recompute
		// trigger is a single node's reported level stepping down. The
		// stride keeps successive crossings on well-separated nodes.
		node := (c*7 + 3) % k
		state.Status[node].BatteryLevel = (state.Status[node].BatteryLevel + levels - 1) % levels

		start := time.Now()
		planIncr := incr.ComputeInto(alg, state, dests, prevIncr)
		incrNS += time.Since(start).Nanoseconds()
		prevIncr = planIncr.Tables

		if row.FullRan {
			start = time.Now()
			planFull := full.ComputeInto(alg, state, dests, prevFull)
			fullNS += time.Since(start).Nanoseconds()
			prevFull = planFull.Tables
			if planIncr.Fingerprint() != planFull.Fingerprint() {
				row.Identical = false
			}
		}
	}

	st := incr.Stats()
	// The bootstrap pass is the one guaranteed full computation; everything
	// beyond it inside the measured window is a crossover fallback.
	row.Repairs = st.Incremental
	row.Fallbacks = st.Full - 1
	if st.Incremental > 0 {
		row.DirtyFrac = float64(st.DirtyVertices) / float64(st.Incremental) / float64(k)
		row.AffectedFrac = float64(st.AffectedPairs) / float64(st.Incremental) / float64(k) / float64(k)
	}
	row.IncrementalMS = float64(incrNS) / 1e6 / float64(crossings)
	if row.FullRan {
		row.FullMS = float64(fullNS) / 1e6 / float64(crossings)
		if row.IncrementalMS > 0 {
			row.Speedup = row.FullMS / row.IncrementalMS
		}
	}
	return row, nil
}

// ScalingTable renders the scaling study, one row per mesh size.
func ScalingTable(rows []ScalingRow) *stats.Table {
	t := stats.NewTable("Big-mesh scaling: incremental dirty-set repair vs full Floyd-Warshall (per battery-level crossing)",
		"mesh", "nodes", "full [ms]", "incremental [ms]", "speedup", "repairs", "fallbacks", "dirty/K", "affected/K^2", "identical")
	for _, r := range rows {
		fullMS, speedup, identical := "-", "-", "-"
		if r.FullRan {
			fullMS = fmt.Sprintf("%.3f", r.FullMS)
			speedup = fmt.Sprintf("%.1fx", r.Speedup)
			identical = fmt.Sprintf("%v", r.Identical)
		}
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.Nodes, fullMS,
			fmt.Sprintf("%.3f", r.IncrementalMS), speedup, r.Repairs, r.Fallbacks,
			fmt.Sprintf("%.3f", r.DirtyFrac), fmt.Sprintf("%.3f", r.AffectedFrac), identical)
	}
	return t
}
