package experiments

import (
	"testing"
)

// degradationTestGrid keeps the sweep cheap: one small mesh, one non-zero
// fault rate plus the baseline, one recovery window — 4 cells total.
func degradationTestGrid() ([]int, []float64, []int) {
	return []int{5}, []float64{0, 0.05}, []int{6}
}

// TestDegradationDeterministicAcrossWorkers is the fault-sweep entry in the
// determinism suite: the fault schedule is a pure function of (spec, seed),
// so the rows — including the observer-derived retention and recovery
// figures — and the rendered table must be byte-identical whether cells run
// serially or fan out.
func TestDegradationDeterministicAcrossWorkers(t *testing.T) {
	sizes, rates, recs := degradationTestGrid()
	ref, err := Degradation(sizes, rates, recs, 7, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	refTable := DegradationTable(ref).Render()
	for _, workers := range testWorkerCounts() {
		rows, err := Degradation(sizes, rates, recs, 7, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rows) != len(ref) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(rows), len(ref))
		}
		for i := range ref {
			if rows[i] != ref[i] {
				t.Errorf("workers=%d: row %d = %+v, want %+v", workers, i, rows[i], ref[i])
			}
		}
		if table := DegradationTable(rows).Render(); table != refTable {
			t.Errorf("workers=%d: rendered table differs from the serial run", workers)
		}
	}
}

// TestDegradationGridShape checks the baseline collapse: rate 0 contributes
// one cell per (mesh, algorithm) with the recovery axis folded away, and the
// faulted cells actually enter the degraded state.
func TestDegradationGridShape(t *testing.T) {
	sizes, rates, recs := degradationTestGrid()
	rows, err := Degradation(sizes, rates, recs, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms x (1 baseline + 1 rate x 1 recovery) = 4 rows.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.FaultRate == 0 {
			if r.RecoveryFrames != 0 || r.FramesDegraded != 0 || r.Retention != 0 {
				t.Errorf("baseline row carries fault state: %+v", r)
			}
			continue
		}
		if r.FramesDegraded == 0 {
			t.Errorf("faulted row never entered the degraded state: %+v", r)
		}
		if r.MeanRecovery <= 0 {
			t.Errorf("faulted row observed no recoveries: %+v", r)
		}
	}
}
