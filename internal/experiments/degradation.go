package experiments

import (
	"fmt"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// Degradation study: EAR vs SDR under runtime fault injection
// ---------------------------------------------------------------------------

// DefaultDegradationSizes is the mesh axis of the degradation grid: one
// moderate fabric, so the fault-rate and recovery axes dominate the row count.
func DefaultDegradationSizes() []int { return []int{6} }

// DefaultFaultRates is the per-frame fault-probability axis of the
// degradation grid. Rate 0 is the fault-free baseline every sweep carries.
func DefaultFaultRates() []float64 { return []float64{0, 0.02, 0.05, 0.1} }

// DefaultRecoveryFrames is the fault-duration axis of the degradation grid,
// in TDMA frames.
func DefaultRecoveryFrames() []int { return []int{4, 16} }

// DegradationRow is one (mesh, algorithm, fault rate, recovery) point of the
// degradation study.
type DegradationRow struct {
	Mesh      int
	Algorithm string
	// FaultRate is the per-frame probability of drawing a transient link
	// fault, and equally of drawing a node crash (the two channels run at the
	// same rate). 0 is the fault-free baseline.
	FaultRate float64
	// RecoveryFrames is how long each injected fault stays open.
	RecoveryFrames int
	Jobs           int
	JobsLost       int
	// JobsDegraded is the subset of Jobs completed while at least one fault
	// window was open; FramesDegraded counts the frames spent in that state.
	JobsDegraded   int
	FramesDegraded int64
	// Retention is degraded throughput over healthy throughput (jobs/frame),
	// the headline graceful-degradation figure (0 for the baseline rows,
	// which never enter the degraded state).
	Retention float64
	// MeanRecovery is the observed mean time-to-recover in frames.
	MeanRecovery float64
	Lifetime     int64
	Reason       string
}

// degradationCell is one cell of the flattened sweep grid.
type degradationCell struct {
	mesh           int
	alg            string
	rate           float64
	recoveryFrames int
}

// Degradation sweeps EAR and SDR across the fault-rate and recovery-time
// axes of the runtime fault injector: every non-baseline cell draws
// transient link faults and node crashes at the given per-frame rate, each
// healing after the given recovery window, from the deterministic schedule
// seeded by seed. A trace.Degradation collector rides along in every cell,
// so the rows carry throughput-retention and time-to-recover figures next
// to the raw job counts. Rate 0 collapses the recovery axis and runs the
// fault-free baseline. The grid is evaluated in parallel, one cell per
// simulation; rows are byte-identical at every worker count.
func Degradation(sizes []int, rates []float64, recoveries []int, seed uint64, opts ...Option) ([]DegradationRow, error) {
	var cells []degradationCell
	for _, n := range sizes {
		for _, alg := range []string{scenario.AlgorithmEAR, scenario.AlgorithmSDR} {
			for _, rate := range rates {
				if rate == 0 {
					// Fault-free baseline: the recovery axis is meaningless.
					cells = append(cells, degradationCell{mesh: n, alg: alg})
					continue
				}
				for _, rec := range recoveries {
					cells = append(cells, degradationCell{mesh: n, alg: alg, rate: rate, recoveryFrames: rec})
				}
			}
		}
	}
	return runner.Map(newPool(opts), cells, func(_ int, cell degradationCell) (DegradationRow, error) {
		sp := scenario.Spec{Mesh: cell.mesh, Algorithm: cell.alg}
		if cell.rate > 0 {
			sp.Faults = fmt.Sprintf("link=%v:%d,crash=%v:%d,seed=%d",
				cell.rate, cell.recoveryFrames, cell.rate, cell.recoveryFrames, seed)
		}
		deg := &trace.Degradation{}
		res, err := sp.Simulate(deg)
		if err != nil {
			return DegradationRow{}, err
		}
		return DegradationRow{
			Mesh:           cell.mesh,
			Algorithm:      cell.alg,
			FaultRate:      cell.rate,
			RecoveryFrames: cell.recoveryFrames,
			Jobs:           res.JobsCompleted,
			JobsLost:       res.JobsLost,
			JobsDegraded:   deg.JobsDegraded(),
			FramesDegraded: deg.FramesDegraded(),
			Retention:      deg.Retention(),
			MeanRecovery:   deg.Recovery().Mean(),
			Lifetime:       res.LifetimeCycles,
			Reason:         string(res.Reason),
		}, nil
	})
}

// DegradationTable renders the degradation sweep, one row per grid cell.
func DegradationTable(rows []DegradationRow) *stats.Table {
	t := stats.NewTable("Degradation under runtime faults (transient links + node crashes, per-frame rate)",
		"mesh", "alg", "fault rate", "recovery [frames]", "jobs", "lost", "jobs degraded", "frames degraded", "retention", "mean recover [frames]", "lifetime", "death")
	for _, r := range rows {
		rec, ret, mrec := "-", "-", "-"
		if r.FaultRate > 0 {
			rec = fmt.Sprintf("%d", r.RecoveryFrames)
			ret = fmt.Sprintf("%.3f", r.Retention)
			mrec = fmt.Sprintf("%.1f", r.MeanRecovery)
		}
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.Algorithm,
			fmt.Sprintf("%.2f", r.FaultRate), rec, r.Jobs, r.JobsLost,
			r.JobsDegraded, r.FramesDegraded, ret, mrec, r.Lifetime, r.Reason)
	}
	return t
}

// DegradationChart renders jobs completed against the fault rate, one series
// per (algorithm, recovery window).
func DegradationChart(rows []DegradationRow) *stats.Chart {
	c := stats.NewChart("Degradation: jobs completed vs fault rate", "per-frame fault rate", "# of jobs")
	series := map[string]*stats.Series{}
	for _, r := range rows {
		key := r.Algorithm
		if r.FaultRate > 0 {
			key = fmt.Sprintf("%s rec=%d", r.Algorithm, r.RecoveryFrames)
		}
		s, ok := series[key]
		if !ok {
			s = c.AddSeries(key)
			series[key] = s
		}
		s.Add(r.FaultRate, float64(r.Jobs))
	}
	return c
}
