package experiments

// The placement-search experiment: how much of the gap between the paper's
// fixed checkerboard mapping and the Theorem-1 bound J* can a searched
// placement close? The paper uses J* purely as an analytical yardstick
// (Table 2); OptGap treats the placement as a decision variable and compares
// three placements per (mesh, algorithm) cell — the checkerboard, the best
// of N random placements, and a multi-restart hill-climb — all scored by the
// deterministic simulation, against J*.
//
// Like the Monte-Carlo sweeps, cells run in sequence and each cell's search
// fans its restarts out over the sweep's worker budget: restarts outnumber
// cells and each restart costs Budget simulations, so that is where the
// parallelism is. The optimizer folds restart results in input order, so the
// sweep inherits the package's determinism guarantee.

import (
	"fmt"

	"repro/internal/optimize"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// OptGapRow is one (mesh, algorithm) cell of the placement comparison. The
// *Frac columns express completed jobs as a fraction of J* (Table 2's last
// column, extended to searched placements).
type OptGapRow struct {
	Mesh      int
	Algorithm string
	// Bound is J*, the Theorem-1 upper bound for the cell's platform.
	Bound float64
	// CheckerboardJobs is the paper's fixed mapping (the scenario default).
	CheckerboardJobs int
	// RandomBestJobs is the best of the search's restart count of random
	// placements — what placement luck alone buys.
	RandomBestJobs int
	// OptimizedJobs is the multi-restart hill-climb winner.
	OptimizedJobs int
	// OptimizedAssignment is the winning placement in the explicit-mapping
	// form, so any row can be replayed with `etsim -mapping explicit:...`.
	OptimizedAssignment string
	// Evals counts the simulations the search spent (cache hits excluded).
	Evals int
}

// CheckerboardFrac is the checkerboard placement's achieved fraction of J*.
func (r OptGapRow) CheckerboardFrac() float64 { return float64(r.CheckerboardJobs) / r.Bound }

// RandomBestFrac is the random-best placement's achieved fraction of J*.
func (r OptGapRow) RandomBestFrac() float64 { return float64(r.RandomBestJobs) / r.Bound }

// OptimizedFrac is the optimized placement's achieved fraction of J*.
func (r OptGapRow) OptimizedFrac() float64 { return float64(r.OptimizedJobs) / r.Bound }

// OptGap runs the placement comparison for every mesh size under both EAR
// and SDR. budget is the simulation budget per restart, restarts the number
// of independent searches per cell (restart 0 starts from the checkerboard,
// so the optimized column can never fall below it), and seed drives every
// random draw. Both algorithms share the seed, so their random-best and
// restart placements are paired (common random numbers), exactly as in the
// Monte-Carlo sweeps.
func OptGap(sizes []int, budget, restarts int, seed uint64, opts ...Option) ([]OptGapRow, error) {
	workers := workerCount(opts)
	rows := make([]OptGapRow, 0, 2*len(sizes))
	for _, n := range sizes {
		for _, alg := range []string{scenario.AlgorithmEAR, scenario.AlgorithmSDR} {
			sp := scenario.Spec{Mesh: n}
			if alg != scenario.AlgorithmEAR {
				sp.Algorithm = alg
			}
			strategy, err := sp.Strategy()
			if err != nil {
				return nil, err
			}
			bound, err := strategy.UpperBound()
			if err != nil {
				return nil, err
			}
			problem := optimize.Problem{
				Spec:      sp,
				Objective: optimize.Sim{Base: sp},
				Budget:    budget,
				Seed:      seed,
			}
			// Random-best: evaluate `restarts` random placements (budget 1 =
			// score the start only) — the placement-luck baseline the
			// random-mapping-sweep campaigns sample.
			randomProblem := problem
			randomProblem.Budget = 1
			randomBest, err := optimize.MultiRestart{
				Restarts: restarts, Workers: workers, RandomStarts: true,
			}.Optimize(randomProblem)
			if err != nil {
				return nil, fmt.Errorf("opt-gap %s %dx%d random-best: %w", alg, n, n, err)
			}
			optimized, err := optimize.MultiRestart{
				Restarts: restarts, Workers: workers,
			}.Optimize(problem)
			if err != nil {
				return nil, fmt.Errorf("opt-gap %s %dx%d search: %w", alg, n, n, err)
			}
			// Restart 0 of the search starts from the scenario's own
			// (checkerboard) mapping and scores it with the same sim
			// objective, so its start score IS the baseline — no separate
			// simulation needed.
			rows = append(rows, OptGapRow{
				Mesh:                n,
				Algorithm:           alg,
				Bound:               bound.Jobs,
				CheckerboardJobs:    int(optimized.PerRestart[0].StartScore),
				RandomBestJobs:      int(randomBest.BestScore),
				OptimizedJobs:       int(optimized.BestScore),
				OptimizedAssignment: optimized.BestAssignment(),
				Evals:               randomBest.Evals + optimized.Evals,
			})
		}
	}
	return rows, nil
}

// OptGapTable renders the comparison with achieved-fraction columns.
func OptGapTable(rows []OptGapRow) *stats.Table {
	t := stats.NewTable("Placement search: checkerboard vs random-best vs optimized, against the Theorem-1 bound J*",
		"mesh", "algorithm", "J*", "checkerboard", "random best", "optimized", "checker/J*", "rand/J*", "opt/J*", "sims")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.Algorithm,
			fmt.Sprintf("%.2f", r.Bound),
			r.CheckerboardJobs, r.RandomBestJobs, r.OptimizedJobs,
			fmt.Sprintf("%.1f%%", 100*r.CheckerboardFrac()),
			fmt.Sprintf("%.1f%%", 100*r.RandomBestFrac()),
			fmt.Sprintf("%.1f%%", 100*r.OptimizedFrac()),
			r.Evals)
	}
	return t
}

// OptGapChart renders the comparison as grouped bars per mesh size: three
// placements per algorithm plus the (algorithm-independent) J* ceiling.
func OptGapChart(rows []OptGapRow) *stats.Chart {
	c := stats.NewChart("Placement search: jobs completed vs the Theorem-1 bound", "mesh", "# of jobs")
	series := map[string]*stats.Series{}
	add := func(label string, x, y float64) {
		if series[label] == nil {
			series[label] = c.AddSeries(label)
		}
		series[label].Add(x, y)
	}
	for _, r := range rows {
		x := float64(r.Mesh)
		add(r.Algorithm+" checkerboard", x, float64(r.CheckerboardJobs))
		add(r.Algorithm+" random best", x, float64(r.RandomBestJobs))
		add(r.Algorithm+" optimized", x, float64(r.OptimizedJobs))
		if r.Algorithm == scenario.AlgorithmEAR {
			add("J*", x, r.Bound)
		}
	}
	return c
}
