package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestFig8ShardedGridShapeAndDefaults(t *testing.T) {
	if got := DefaultShardCounts(); len(got) == 0 || got[0] != 1 {
		t.Errorf("DefaultShardCounts = %v, want the centralized baseline first", got)
	}
	if got := DefaultShardedControllerCounts(); len(got) == 0 || got[0] != 0 {
		t.Errorf("DefaultShardedControllerCounts = %v, want the infinite-energy row first", got)
	}
	rows, err := Fig8Sharded([]int{4}, []int{0}, []int{1, 2}, []int{1, 4}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	// shards=1 collapses the staleness axis to a single centralized row.
	if len(rows) != 3 {
		t.Fatalf("grid has %d rows, want 3 (1 centralized + 2 staleness)", len(rows))
	}
	if rows[0].Shards != 1 || rows[0].Staleness != 1 || rows[0].ShardRecomputes != nil {
		t.Errorf("centralized row = %+v, want shards=1, staleness=1, nil per-shard counts", rows[0])
	}
	for _, r := range rows[1:] {
		if r.Shards != 2 || len(r.ShardRecomputes) != 2 {
			t.Errorf("sharded row = %+v, want 2 shards with per-shard counts", r)
		}
		max := 0
		for _, n := range r.ShardRecomputes {
			if n > max {
				max = n
			}
		}
		if r.MaxShardRecomputes != max {
			t.Errorf("MaxShardRecomputes = %d, want %d", r.MaxShardRecomputes, max)
		}
	}
	tbl := Fig8ShardedTable(rows)
	if tbl.NumRows() != len(rows) {
		t.Error("Fig8ShardedTable row count mismatch")
	}
	if rendered := tbl.Render(); !strings.Contains(rendered, "inf") {
		t.Error("table does not render the infinite-energy controller rows as inf")
	}
	if Fig8ShardedChart(rows) == nil {
		t.Error("Fig8ShardedChart returned nil")
	}
}

// TestFig8ShardedDeterministicAcrossWorkers: the sweep must be byte-identical
// at any worker count (the CI fig8-sharded guard diffs full etbench output the
// same way).
func TestFig8ShardedDeterministicAcrossWorkers(t *testing.T) {
	grid := func(workers int) []Fig8ShardedRow {
		rows, err := Fig8Sharded([]int{5}, []int{0, 2}, []int{1, 3}, []int{1, 4}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial, parallel := grid(1), grid(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fig8-sharded rows differ between 1 and 4 workers:\n%+v\n%+v", serial, parallel)
	}
}

// TestFig8ShardedRegionalRecomputesBelowCentralized is the PR's acceptance
// criterion: on the 8x8 mesh with 4 shards and a bounded-staleness exchange,
// every region's own recompute count must be strictly below the centralized
// plane's full-mesh recompute count in the equal-lifetime (infinite-energy
// controller) comparison.
func TestFig8ShardedRegionalRecomputesBelowCentralized(t *testing.T) {
	if testing.Short() {
		t.Skip("two full 8x8 runs; skipped with -short")
	}
	rows, err := Fig8Sharded([]int{8}, []int{0}, []int{1, 4}, []int{8}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want centralized + sharded", len(rows))
	}
	central, regional := rows[0], rows[1]
	if central.Shards != 1 || regional.Shards != 4 {
		t.Fatalf("unexpected row order: %+v, %+v", central, regional)
	}
	if central.RecomputeFrames == 0 {
		t.Fatal("centralized baseline never recomputed")
	}
	for shard, n := range regional.ShardRecomputes {
		if n >= central.RecomputeFrames {
			t.Errorf("shard %d recomputed %d times, not strictly below the centralized %d",
				shard, n, central.RecomputeFrames)
		}
	}
	if regional.MaxShardRecomputes >= central.RecomputeFrames {
		t.Errorf("max per-shard recomputes %d, want < centralized %d",
			regional.MaxShardRecomputes, central.RecomputeFrames)
	}
}
