package tdma

import (
	"fmt"

	"repro/internal/battery"
	"repro/internal/energy"
)

// Regions is the controller-side energy bookkeeping for a sharded control
// plane: one redundant-controller Pool per mesh region, each with its own
// batteries, so a region can exhaust its controllers and die while the other
// regions keep serving frames. Per-region consumed energy stays separable for
// the experiment tables.
type Regions struct {
	pools []*Pool
}

// NewRegions creates `shards` independent pools of controllersPerShard
// controllers each. If factory is non-nil every controller receives its own
// battery; otherwise all controllers have infinite energy.
func NewRegions(shards, controllersPerShard int, power energy.Controller, factory battery.Factory) (*Regions, error) {
	if shards < 1 {
		return nil, fmt.Errorf("tdma: regions need at least one shard, got %d", shards)
	}
	r := &Regions{pools: make([]*Pool, shards)}
	for i := range r.pools {
		pool, err := NewPool(controllersPerShard, power, factory)
		if err != nil {
			return nil, err
		}
		r.pools[i] = pool
	}
	return r, nil
}

// Shards returns the number of regions.
func (r *Regions) Shards() int { return len(r.pools) }

// Pool returns region shard's controller pool.
func (r *Regions) Pool(shard int) *Pool { return r.pools[shard] }

// ConsumedPJ returns the energy drained by region shard's pool so far.
func (r *Regions) ConsumedPJ(shard int) float64 { return r.pools[shard].ConsumedPJ() }

// TotalConsumedPJ returns the energy drained across all regions.
func (r *Regions) TotalConsumedPJ() float64 {
	total := 0.0
	for _, p := range r.pools {
		total += p.ConsumedPJ()
	}
	return total
}

// AliveShards returns the number of regions with at least one living
// controller.
func (r *Regions) AliveShards() int {
	alive := 0
	for _, p := range r.pools {
		if !p.AllDead() {
			alive++
		}
	}
	return alive
}

// AllDead reports whether every region's pool is exhausted.
func (r *Regions) AllDead() bool { return r.AliveShards() == 0 }

// RestAll lets every living controller in every region recover for the given
// number of cycles.
func (r *Regions) RestAll(cycles int64) {
	for _, p := range r.pools {
		p.RestAll(cycles)
	}
}
