package tdma

import (
	"errors"
	"testing"

	"repro/internal/battery"
	"repro/internal/energy"
)

func TestNewRegionsValidation(t *testing.T) {
	if _, err := NewRegions(0, 1, energy.PaperController4x4(), nil); err == nil {
		t.Fatal("NewRegions accepted zero shards")
	}
	if _, err := NewRegions(2, 0, energy.PaperController4x4(), nil); !errors.Is(err, ErrNoControllers) {
		t.Fatalf("NewRegions with empty pools: err = %v, want ErrNoControllers", err)
	}
	r, err := NewRegions(3, 2, energy.PaperController4x4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 3 || r.AliveShards() != 3 || r.AllDead() {
		t.Fatalf("fresh regions state wrong: shards=%d alive=%d", r.Shards(), r.AliveShards())
	}
	for i := 0; i < 3; i++ {
		if r.Pool(i).Size() != 2 {
			t.Fatalf("region %d pool size = %d, want 2", i, r.Pool(i).Size())
		}
	}
	r.RestAll(1000) // must not panic with nil batteries
}

// TestRegionsEnergySeparability: per-region consumption must stay separable
// (the fig8-sharded table reports it per shard) and sum to the total.
func TestRegionsEnergySeparability(t *testing.T) {
	r, err := NewRegions(3, 1, energy.PaperController4x4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Charge each region a distinct amount.
	for shard, pj := range []float64{100, 250, 400} {
		if err := r.Pool(shard).ServeFrame(pj, 0); err != nil {
			t.Fatal(err)
		}
	}
	for shard, want := range []float64{100, 250, 400} {
		if got := r.ConsumedPJ(shard); got != want {
			t.Errorf("ConsumedPJ(%d) = %g, want %g", shard, got, want)
		}
	}
	if got := r.TotalConsumedPJ(); got != 750 {
		t.Errorf("TotalConsumedPJ = %g, want 750", got)
	}
}

// TestRegionsDieIndividually: one region's pool exhausting its batteries must
// not affect the others' ability to serve, and AllDead flips only when the
// last region dies.
func TestRegionsDieIndividually(t *testing.T) {
	r, err := NewRegions(2, 1, energy.PaperController4x4(), battery.IdealFactory(100))
	if err != nil {
		t.Fatal(err)
	}
	// Region 0 overdraws and dies; region 1 keeps serving within budget.
	if err := r.Pool(0).ServeFrame(500, 0); !errors.Is(err, ErrAllControllersDead) {
		t.Fatalf("overdrawn single-controller pool: err = %v, want ErrAllControllersDead", err)
	}
	if r.AliveShards() != 1 || r.AllDead() {
		t.Fatalf("after one region died: alive=%d allDead=%v, want 1,false", r.AliveShards(), r.AllDead())
	}
	if err := r.Pool(1).ServeFrame(50, 0); err != nil {
		t.Fatalf("surviving region failed to serve: %v", err)
	}
	// A dead pool must keep propagating ErrAllControllersDead on every
	// subsequent frame, not just the one it died on.
	if err := r.Pool(0).ServeFrame(1, 0); !errors.Is(err, ErrAllControllersDead) {
		t.Fatalf("dead pool ServeFrame: err = %v, want ErrAllControllersDead", err)
	}
	if err := r.Pool(1).ServeFrame(500, 0); !errors.Is(err, ErrAllControllersDead) {
		t.Fatalf("second region overdraw: err = %v, want ErrAllControllersDead", err)
	}
	if r.AliveShards() != 0 || !r.AllDead() {
		t.Fatalf("after both regions died: alive=%d allDead=%v, want 0,true", r.AliveShards(), r.AllDead())
	}
}

// TestPoolPartialDeathOrdering pins the failover order of a partially dead
// pool: controllers die lowest-budget-first under round-robin rotation, the
// active role skips the dead, and ErrAllControllersDead surfaces exactly on
// the frame the last controller browns out.
func TestPoolPartialDeathOrdering(t *testing.T) {
	// Three controllers, 250 pJ each, 100 pJ per active frame, no idle cost:
	// each controller serves 2 full frames and browns out on its 3rd.
	pool, err := NewPool(3, energy.PaperController4x4(), battery.IdealFactory(250))
	if err != nil {
		t.Fatal(err)
	}
	var aliveAfter []int
	var fatalFrame int
	for frame := 1; frame <= 30; frame++ {
		err := pool.ServeFrame(100, 0)
		aliveAfter = append(aliveAfter, pool.AliveCount())
		if err != nil {
			if !errors.Is(err, ErrAllControllersDead) {
				t.Fatalf("frame %d: err = %v, want ErrAllControllersDead", frame, err)
			}
			fatalFrame = frame
			break
		}
	}
	// Frames 1-6: two full rounds, all alive. Frames 7-9: the third 100 pJ
	// draw browns out controllers 0, 1, 2 in rotation order; the death of the
	// last one is the frame that returns the error.
	want := []int{3, 3, 3, 3, 3, 3, 2, 1, 0}
	if len(aliveAfter) != len(want) {
		t.Fatalf("pool served %d frames (alive trace %v), want %d", len(aliveAfter), aliveAfter, len(want))
	}
	for i := range want {
		if aliveAfter[i] != want[i] {
			t.Fatalf("alive trace = %v, want %v", aliveAfter, want)
		}
	}
	if fatalFrame != 9 {
		t.Fatalf("ErrAllControllersDead on frame %d, want 9", fatalFrame)
	}
	// Mid-death, the survivors must have kept the rotation going: frames 7-8
	// were served by living controllers even though the pool was partial.
	if pool.ConsumedPJ() != 9*100 {
		t.Errorf("ConsumedPJ = %g, want %g", pool.ConsumedPJ(), 9*100.0)
	}
}
