package tdma

import (
	"errors"
	"math"
	"testing"

	"repro/internal/battery"
	"repro/internal/energy"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if p.Medium.WidthBits != 2 {
		t.Errorf("shared medium width = %d bits, want 2 as in the paper", p.Medium.WidthBits)
	}
}

func TestParamsValidation(t *testing.T) {
	base := DefaultParams()
	mutations := []func(*Params){
		func(p *Params) { p.StatusBits = 0 },
		func(p *Params) { p.RouteBits = -1 },
		func(p *Params) { p.Medium.WidthBits = 0 },
		func(p *Params) { p.Medium.PJPerBit = -1 },
		func(p *Params) { p.FramePeriodCycles = 0 },
		func(p *Params) { p.ControllerActiveCyclesPerFrame = -1 },
		func(p *Params) { p.ControllerComputeCyclesPerNode = -2 },
		func(p *Params) { p.DeadlockThresholdFrames = 0 },
	}
	for i, mutate := range mutations {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted invalid params", i)
		}
	}
}

func TestSlotEnergyAccounting(t *testing.T) {
	p := DefaultParams()
	wantUp := float64(p.StatusBits) * p.Medium.PJPerBit
	if got := p.UploadEnergyPerNodePJ(); math.Abs(got-wantUp) > 1e-9 {
		t.Errorf("UploadEnergyPerNodePJ = %g, want %g", got, wantUp)
	}
	wantDown := float64(p.RouteBits) * p.Medium.PJPerBit
	if got := p.DownloadEnergyPerNodePJ(); math.Abs(got-wantDown) > 1e-9 {
		t.Errorf("DownloadEnergyPerNodePJ = %g, want %g", got, wantDown)
	}
}

func TestFrameLengthScalesWithNodesAndFitsPeriod(t *testing.T) {
	p := DefaultParams()
	l16 := p.FrameLengthCycles(16)
	l64 := p.FrameLengthCycles(64)
	if l64 != 4*l16 {
		t.Errorf("frame length did not scale linearly: 16 nodes -> %d, 64 nodes -> %d", l16, l64)
	}
	if l64 > p.FramePeriodCycles {
		t.Errorf("frame of an 8x8 mesh (%d cycles) does not fit in the frame period (%d cycles)",
			l64, p.FramePeriodCycles)
	}
}

func TestControllerFrameEnergy(t *testing.T) {
	p := DefaultParams()
	ctrl := energy.PaperController4x4()
	idle := p.ControllerFrameEnergyPJ(ctrl, 16, false)
	busy := p.ControllerFrameEnergyPJ(ctrl, 16, true)
	if idle <= 0 {
		t.Fatalf("bookkeeping frame energy = %g, want > 0", idle)
	}
	if busy <= idle {
		t.Fatalf("recompute frame energy (%g) must exceed bookkeeping energy (%g)", busy, idle)
	}
	wantBusy := ctrl.ActiveEnergyPJ(p.ControllerActiveCyclesPerFrame + p.ControllerComputeCyclesPerNode*16)
	if math.Abs(busy-wantBusy) > 1e-9 {
		t.Errorf("recompute frame energy = %g, want %g", busy, wantBusy)
	}
}

func TestControllerDrainInfiniteEnergy(t *testing.T) {
	c := &Controller{ID: 0, Power: energy.PaperController4x4()}
	for i := 0; i < 1000; i++ {
		if err := c.Drain(1e6); err != nil {
			t.Fatalf("infinite-energy controller died: %v", err)
		}
	}
	if c.Dead() {
		t.Fatal("infinite-energy controller reported dead")
	}
}

func TestControllerDrainFiniteBattery(t *testing.T) {
	c := &Controller{ID: 0, Battery: battery.MustIdeal(1000)}
	if err := c.Drain(600); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(600); err == nil {
		t.Fatal("overdraw should kill the controller")
	}
	if !c.Dead() {
		t.Fatal("controller should be dead")
	}
	if err := c.Drain(1); err == nil {
		t.Fatal("dead controller accepted a drain")
	}
	// Rest on a dead controller must be a no-op and not panic.
	c.Rest(1000)
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, energy.PaperController4x4(), nil); !errors.Is(err, ErrNoControllers) {
		t.Fatalf("NewPool(0) error = %v, want ErrNoControllers", err)
	}
}

func TestPoolRotatesActiveController(t *testing.T) {
	pool, err := NewPool(3, energy.PaperController4x4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 6; i++ {
		active, err := pool.Active()
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, active.ID)
		if err := pool.ServeFrame(100, 10); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rotation order = %v, want %v", order, want)
		}
	}
	if pool.ConsumedPJ() != 6*(100+2*10) {
		t.Errorf("ConsumedPJ = %g, want %g", pool.ConsumedPJ(), 6.0*(100+2*10))
	}
}

func TestPoolFailover(t *testing.T) {
	// Three controllers with tiny batteries: as they die one by one the
	// active role must fail over to a living controller, and once all are
	// dead ServeFrame must report it.
	pool, err := NewPool(3, energy.PaperController4x4(), battery.IdealFactory(250))
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for {
		if err := pool.ServeFrame(100, 0); err != nil {
			if !errors.Is(err, ErrAllControllersDead) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		frames++
		if frames > 100 {
			t.Fatal("pool never died")
		}
	}
	if !pool.AllDead() {
		t.Fatal("pool should be all dead")
	}
	// Each controller serves 2 full frames of 100 pJ (250 pJ battery);
	// with 3 controllers the pool must survive at least 6 frames.
	if frames < 6 {
		t.Fatalf("pool survived only %d frames, want at least 6", frames)
	}
	if _, err := pool.Active(); !errors.Is(err, ErrAllControllersDead) {
		t.Fatalf("Active on dead pool = %v, want ErrAllControllersDead", err)
	}
}

func TestPoolLifetimeScalesWithControllerCount(t *testing.T) {
	lifetime := func(n int) int {
		pool, err := NewPool(n, energy.PaperController4x4(), battery.IdealFactory(1000))
		if err != nil {
			t.Fatal(err)
		}
		frames := 0
		for pool.ServeFrame(100, 1) == nil {
			frames++
			if frames > 10000 {
				break
			}
		}
		return frames
	}
	l1, l4, l10 := lifetime(1), lifetime(4), lifetime(10)
	if !(l1 < l4 && l4 < l10) {
		t.Fatalf("pool lifetime not increasing with controller count: %d, %d, %d", l1, l4, l10)
	}
}

func TestPoolIdleLeakageAffectsAllControllers(t *testing.T) {
	pool, err := NewPool(2, energy.PaperController4x4(), battery.IdealFactory(100))
	if err != nil {
		t.Fatal(err)
	}
	// Idle leakage alone (active energy 0) should eventually kill both
	// controllers even though only one is "active" per frame.
	frames := 0
	for pool.ServeFrame(0, 10) == nil {
		frames++
		if frames > 1000 {
			t.Fatal("pool never died from leakage")
		}
	}
	if pool.AliveCount() != 0 {
		t.Fatalf("AliveCount = %d after leakage death, want 0", pool.AliveCount())
	}
}

func TestPoolAccessors(t *testing.T) {
	pool, err := NewPool(5, energy.ControllerForMesh(25), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 5 || pool.AliveCount() != 5 || pool.AllDead() {
		t.Fatalf("fresh pool state wrong: size=%d alive=%d", pool.Size(), pool.AliveCount())
	}
	if len(pool.Controllers()) != 5 {
		t.Fatalf("Controllers() returned %d entries", len(pool.Controllers()))
	}
	pool.RestAll(1000) // must not panic with nil batteries
}
