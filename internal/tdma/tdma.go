// Package tdma implements the centralized control mechanism of Sec 5.3: a
// time-division multiple-access scheme on a narrow shared medium over which
// every node periodically uploads its status (battery level, deadlock flag)
// and the active central controller downloads next-hop routing updates.
//
// The package models the energy cost of the scheme — upload/download slots on
// the shared medium and the controller's own dynamic/leakage consumption —
// and the pool of redundant controllers whose finite batteries limit system
// lifetime in the Fig 8 experiment. The actual routing computation lives in
// the routing package; the cycle-accurate orchestration lives in sim.
package tdma

import (
	"errors"
	"fmt"

	"repro/internal/battery"
	"repro/internal/energy"
)

// Params configures the TDMA control mechanism.
type Params struct {
	// StatusBits is the payload of one upload slot: the quantised battery
	// level plus a deadlock flag.
	StatusBits int
	// RouteBits is the payload of one download slot carrying a routing-table
	// update for one node.
	RouteBits int
	// Medium is the shared control bus (2 bits wide in the paper).
	Medium energy.SharedMedium
	// FramePeriodCycles is the number of clock cycles between the starts of
	// consecutive TDMA frames.
	FramePeriodCycles int64
	// ControllerActiveCyclesPerFrame is the number of cycles the active
	// controller spends awake per frame for slot bookkeeping, independent of
	// whether the routing algorithm is re-run.
	ControllerActiveCyclesPerFrame int
	// ControllerComputeCyclesPerNode is the number of additional active
	// cycles per network node spent when the controller re-runs the routing
	// algorithm because the reported system state changed.
	ControllerComputeCyclesPerNode int
	// DeadlockThresholdFrames is the number of consecutive frames a job may
	// sit at the same node before the node reports a deadlock in its next
	// upload slot.
	DeadlockThresholdFrames int
}

// DefaultParams returns the calibration used by the paper reproduction (see
// DESIGN.md): 4-bit status uploads on a 2-bit shared medium, one frame every
// 1024 cycles, and a deadlock threshold of two frames.
func DefaultParams() Params {
	return Params{
		StatusBits:                     4,
		RouteBits:                      16,
		Medium:                         energy.DefaultSharedMedium(),
		FramePeriodCycles:              1024,
		ControllerActiveCyclesPerFrame: 16,
		ControllerComputeCyclesPerNode: 1,
		DeadlockThresholdFrames:        2,
	}
}

// Validate checks the parameters for consistency.
func (p Params) Validate() error {
	if p.StatusBits <= 0 || p.RouteBits <= 0 {
		return fmt.Errorf("tdma: slot payloads must be positive (status %d, route %d)", p.StatusBits, p.RouteBits)
	}
	if p.Medium.WidthBits <= 0 || p.Medium.PJPerBit < 0 {
		return fmt.Errorf("tdma: invalid shared medium %+v", p.Medium)
	}
	if p.FramePeriodCycles <= 0 {
		return fmt.Errorf("tdma: frame period must be positive, got %d", p.FramePeriodCycles)
	}
	if p.ControllerActiveCyclesPerFrame < 0 || p.ControllerComputeCyclesPerNode < 0 {
		return fmt.Errorf("tdma: controller cycle counts must be non-negative")
	}
	if p.DeadlockThresholdFrames < 1 {
		return fmt.Errorf("tdma: deadlock threshold must be at least one frame, got %d", p.DeadlockThresholdFrames)
	}
	return nil
}

// UploadEnergyPerNodePJ returns the shared-medium energy charged to one node
// for its upload slot in one frame.
func (p Params) UploadEnergyPerNodePJ() float64 { return p.Medium.SlotEnergyPJ(p.StatusBits) }

// DownloadEnergyPerNodePJ returns the shared-medium energy spent to download
// one node's routing update.
func (p Params) DownloadEnergyPerNodePJ() float64 { return p.Medium.SlotEnergyPJ(p.RouteBits) }

// FrameLengthCycles returns the number of cycles the upload and download
// phases of one frame occupy on the shared medium for a network of k nodes.
// It must not exceed the frame period for the schedule to be feasible.
func (p Params) FrameLengthCycles(k int) int64 {
	up := int64(p.Medium.SlotCycles(p.StatusBits)) * int64(k)
	down := int64(p.Medium.SlotCycles(p.RouteBits)) * int64(k)
	return up + down
}

// ControllerFrameEnergyPJ returns the energy the active controller consumes
// during one frame: its bookkeeping activity plus, when recompute is true,
// the routing-algorithm execution for a k-node network.
func (p Params) ControllerFrameEnergyPJ(ctrl energy.Controller, k int, recompute bool) float64 {
	cycles := p.ControllerActiveCyclesPerFrame
	if recompute {
		cycles += p.ControllerComputeCyclesPerNode * k
	}
	return ctrl.ActiveEnergyPJ(cycles)
}

// Errors returned by the controller pool.
var (
	ErrNoControllers      = errors.New("tdma: controller pool needs at least one controller")
	ErrAllControllersDead = errors.New("tdma: all controllers are dead")
)

// Controller is one centralized controller with an optional finite battery.
// A nil battery models the infinite-energy controller of Sec 7.1/7.2.
type Controller struct {
	// ID is the controller's index in the pool.
	ID int
	// Power characterises the controller's dynamic and leakage power.
	Power energy.Controller
	// Battery is the attached battery, or nil for an infinite energy source.
	Battery battery.Battery

	dead bool
}

// Dead reports whether the controller has exhausted its battery.
func (c *Controller) Dead() bool { return c.dead }

// Drain removes energy from the controller's battery. Infinite-energy
// controllers always succeed.
func (c *Controller) Drain(amountPJ float64) error {
	if c.dead {
		return fmt.Errorf("tdma: controller %d is dead", c.ID)
	}
	if c.Battery == nil {
		return nil
	}
	if err := c.Battery.Draw(amountPJ); err != nil {
		c.dead = true
		return err
	}
	return nil
}

// Rest lets the controller's battery recover for the given number of cycles.
func (c *Controller) Rest(cycles int64) {
	if c.Battery != nil && !c.dead {
		c.Battery.Rest(cycles)
	}
}

// Pool manages the redundant controllers of Sec 7.3. Exactly one controller
// is active per frame; the active role rotates round-robin over the living
// controllers so their batteries drain evenly, and a dead controller's duties
// fail over to the next living one.
type Pool struct {
	controllers []*Controller
	nextActive  int

	// energy bookkeeping
	consumedPJ float64
}

// NewPool creates a pool of n controllers with the given power
// characterisation. If factory is non-nil every controller receives its own
// battery from it; otherwise the controllers have infinite energy.
func NewPool(n int, power energy.Controller, factory battery.Factory) (*Pool, error) {
	if n < 1 {
		return nil, ErrNoControllers
	}
	p := &Pool{controllers: make([]*Controller, n)}
	for i := 0; i < n; i++ {
		c := &Controller{ID: i, Power: power}
		if factory != nil {
			c.Battery = factory()
		}
		p.controllers[i] = c
	}
	return p, nil
}

// Size returns the total number of controllers in the pool.
func (p *Pool) Size() int { return len(p.controllers) }

// AliveCount returns the number of controllers that are still alive.
func (p *Pool) AliveCount() int {
	alive := 0
	for _, c := range p.controllers {
		if !c.Dead() {
			alive++
		}
	}
	return alive
}

// AllDead reports whether every controller in the pool is dead.
func (p *Pool) AllDead() bool { return p.AliveCount() == 0 }

// ConsumedPJ returns the total energy drained from controller batteries (and
// notionally from infinite-energy controllers) so far.
func (p *Pool) ConsumedPJ() float64 { return p.consumedPJ }

// Controllers returns the pool's controllers (shared, not copied) for
// inspection by statistics code.
func (p *Pool) Controllers() []*Controller { return p.controllers }

// Active returns the controller that will serve the next frame without
// advancing the rotation.
func (p *Pool) Active() (*Controller, error) {
	if p.AllDead() {
		return nil, ErrAllControllersDead
	}
	idx := p.nextActive % len(p.controllers)
	for i := 0; i < len(p.controllers); i++ {
		c := p.controllers[(idx+i)%len(p.controllers)]
		if !c.Dead() {
			return c, nil
		}
	}
	return nil, ErrAllControllersDead
}

// ServeFrame charges the energy of one frame to the pool: the active
// controller pays activePJ while every other living controller pays idlePJ
// (leakage); afterwards the active role rotates to the next living
// controller. It returns ErrAllControllersDead once no controller can serve.
func (p *Pool) ServeFrame(activePJ, idlePJ float64) error {
	active, err := p.Active()
	if err != nil {
		return err
	}
	for _, c := range p.controllers {
		if c.Dead() {
			continue
		}
		charge := idlePJ
		if c == active {
			charge = activePJ
		}
		p.consumedPJ += charge
		// A controller that browns out mid-frame simply drops out; its
		// remaining duties fail over to the next living controller at the
		// next frame.
		_ = c.Drain(charge)
	}
	p.nextActive = (active.ID + 1) % len(p.controllers)
	if p.AllDead() {
		return ErrAllControllersDead
	}
	return nil
}

// RestAll lets every living controller's battery recover for the given
// number of cycles.
func (p *Pool) RestAll(cycles int64) {
	for _, c := range p.controllers {
		c.Rest(cycles)
	}
}
