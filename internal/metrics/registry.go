package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// kind discriminates the three metric shapes in a registry entry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics and renders them. Registration takes a
// mutex; updates to the returned metric values are lock-free. Names must be
// unique per registry and follow the Prometheus identifier grammar
// ([a-zA-Z_][a-zA-Z0-9_]*); violations panic, because registration happens
// in package var blocks where a bad name is a programming error.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]struct{}
	entries []*entry
}

// NewRegistry returns an empty registry. Most code should use Default.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry, the one etserve's
// GET /metrics renders.
func Default() *Registry { return defaultRegistry }

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(e *entry) {
	if !validName(e.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", e.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[e.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", e.name))
	}
	r.byName[e.name] = struct{}{}
	r.entries = append(r.entries, e)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&entry{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&entry{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// Histogram registers and returns a new histogram with the given upper
// bounds (strictly increasing; a +Inf bucket is implicit). It panics on an
// invalid layout.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h, err := newHistogram(bounds)
	if err != nil {
		panic(err)
	}
	r.register(&entry{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// sorted returns the entries ordered by name. Rendering is rare (scrapes),
// so sorting per call keeps registration O(1).
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	out := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
