package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs completed.")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Queue depth.")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %d, want 7", got)
	}
	g.Set(-5)
	if got := g.Value(); got != -5 {
		t.Fatalf("Value() = %d, want -5 (gauges are signed)", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	counts, sum, total := h.snapshot()
	// 0.05 and 0.1 land in le=0.1 (bounds are inclusive); 0.5 in le=1;
	// 5 in le=10; 50 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, counts[i], w)
		}
	}
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
	if math.Abs(sum-55.65) > 1e-9 {
		t.Errorf("sum = %g, want 55.65", sum)
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", DurationBuckets())
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count() = %d, want %d", got, goroutines*per)
	}
	if got, want := h.Sum(), float64(goroutines*per)*0.001; math.Abs(got-want) > 1e-6 {
		t.Fatalf("Sum() = %g, want %g", got, want)
	}
}

// TestUpdatesAllocFree pins the acceptance criterion: Counter, Gauge, and
// Histogram updates are allocation-free, so always-on instrumentation in
// the engine's frame loop and the runner's cell loop costs no garbage.
func TestUpdatesAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", DurationBuckets())
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Errorf("Counter updates: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-2); g.Inc(); g.Dec() }); n != 0 {
		t.Errorf("Gauge updates: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); n != 0 {
		t.Errorf("Histogram.Observe: %v allocs/op, want 0", n)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("dup", "")
	mustPanic("duplicate name", func() { r.Gauge("dup", "") })
	mustPanic("empty name", func() { r.Counter("", "") })
	mustPanic("invalid char", func() { r.Counter("a-b", "") })
	mustPanic("leading digit", func() { r.Counter("9lives", "") })
	mustPanic("non-increasing bounds", func() { r.Histogram("h", "", []float64{1, 1}) })
	mustPanic("bad ExponentialBuckets", func() { ExponentialBuckets(0, 2, 4) })
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_requests_total", "Requests served.")
	g := r.Gauge("aa_depth", "Queue depth.")
	h := r.Histogram("mm_latency_seconds", "Request latency.", []float64{0.5, 2})
	c.Add(3)
	g.Set(-1)
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_depth Queue depth.
# TYPE aa_depth gauge
aa_depth -1
# HELP mm_latency_seconds Request latency.
# TYPE mm_latency_seconds histogram
mm_latency_seconds_bucket{le="0.5"} 1
mm_latency_seconds_bucket{le="2"} 2
mm_latency_seconds_bucket{le="+Inf"} 3
mm_latency_seconds_sum 100.25
mm_latency_seconds_count 3
# HELP zz_requests_total Requests served.
# TYPE zz_requests_total counter
zz_requests_total 3
`
	if got := buf.String(); got != want {
		t.Errorf("WritePrometheus mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "Cache hits.")
	h := r.Histogram("lat_seconds", "", []float64{1})
	c.Add(7)
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var docs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if len(docs) != 2 {
		t.Fatalf("got %d metrics, want 2", len(docs))
	}
	if docs[0]["name"] != "hits_total" || docs[0]["count"] != float64(7) {
		t.Errorf("counter doc = %v", docs[0])
	}
	if docs[1]["name"] != "lat_seconds" || docs[1]["sum"] != float64(3.5) {
		t.Errorf("histogram doc = %v", docs[1])
	}
	buckets := docs[1]["buckets"].([]any)
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2 (le=1, +Inf)", len(buckets))
	}
	inf := buckets[1].(map[string]any)
	if inf["le"] != "+Inf" || inf["count"] != float64(2) {
		t.Errorf("+Inf bucket = %v (cumulative count should be 2)", inf)
	}
	if !strings.Contains(buf.String(), "  ") {
		t.Error("WriteJSON output is not indented")
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", b, want)
		}
	}
	d := DurationBuckets()
	if len(d) != 24 || d[0] != 1e-6 {
		t.Fatalf("DurationBuckets() = len %d first %g, want 24 buckets from 1e-6", len(d), d[0])
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() must return the same registry")
	}
}
