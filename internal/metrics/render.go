package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by name. Histograms render the
// conventional cumulative _bucket{le="..."} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.sorted() {
		bw.WriteString("# HELP ")
		bw.WriteString(e.name)
		bw.WriteByte(' ')
		bw.WriteString(e.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(e.name)
		bw.WriteByte(' ')
		bw.WriteString(e.kind.String())
		bw.WriteByte('\n')
		switch e.kind {
		case kindCounter:
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(e.counter.Value(), 10))
			bw.WriteByte('\n')
		case kindGauge:
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(e.gauge.Value(), 10))
			bw.WriteByte('\n')
		case kindHistogram:
			counts, sum, total := e.hist.snapshot()
			var cum uint64
			for i, c := range counts {
				cum += c
				bw.WriteString(e.name)
				bw.WriteString(`_bucket{le="`)
				if i < len(e.hist.bounds) {
					bw.WriteString(formatFloat(e.hist.bounds[i]))
				} else {
					bw.WriteString("+Inf")
				}
				bw.WriteString(`"} `)
				bw.WriteString(strconv.FormatUint(cum, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(e.name)
			bw.WriteString("_sum ")
			bw.WriteString(formatFloat(sum))
			bw.WriteByte('\n')
			bw.WriteString(e.name)
			bw.WriteString("_count ")
			bw.WriteString(strconv.FormatUint(total, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonMetric is the WriteJSON document shape for one metric.
type jsonMetric struct {
	Name    string       `json:"name"`
	Type    string       `json:"type"`
	Help    string       `json:"help,omitempty"`
	Value   *int64       `json:"value,omitempty"`   // gauge
	Count   *uint64      `json:"count,omitempty"`   // counter, histogram
	Sum     *float64     `json:"sum,omitempty"`     // histogram
	Buckets []jsonBucket `json:"buckets,omitempty"` // histogram
}

type jsonBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"` // cumulative, Prometheus-style
}

// WriteJSON renders every registered metric as an indented JSON array in
// the same style as etserve's /stats document, sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	entries := r.sorted()
	out := make([]jsonMetric, 0, len(entries))
	for _, e := range entries {
		m := jsonMetric{Name: e.name, Type: e.kind.String(), Help: e.help}
		switch e.kind {
		case kindCounter:
			v := e.counter.Value()
			m.Count = &v
		case kindGauge:
			v := e.gauge.Value()
			m.Value = &v
		case kindHistogram:
			counts, sum, total := e.hist.snapshot()
			m.Sum = &sum
			m.Count = &total
			var cum uint64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(e.hist.bounds) {
					le = formatFloat(e.hist.bounds[i])
				}
				m.Buckets = append(m.Buckets, jsonBucket{LE: le, Count: cum})
			}
		}
		out = append(out, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
