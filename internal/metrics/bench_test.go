package metrics_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkMetrics pins the instrumentation costs (BENCH_metrics.json in CI):
//
//   - counter/gauge/histogram: the per-update cost of the three value types
//     (must report 0 allocs/op — guarded by TestUpdatesAllocFree);
//   - sim4x4/disabled: the 4×4 full-run benchmark with the metrics subsystem
//     linked in but no phase observer attached. Compare against the committed
//     BenchmarkMicro_Simulate4x4 baseline (BENCH_routing.json): the engine's
//     disabled path is one slice-length check per frame, so the delta must
//     stay within noise (≤1%);
//   - sim4x4/instrumented: the same run with trace.EngineMetrics attached
//     (the span clock live and every phase feeding histograms) — the cost
//     etserve pays per served simulation.
func BenchmarkMetrics(b *testing.B) {
	reg := metrics.NewRegistry()
	c := reg.Counter("bench_counter_total", "")
	g := reg.Gauge("bench_gauge", "")
	h := reg.Histogram("bench_histogram_seconds", "", metrics.DurationBuckets())

	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i&1023) * 1e-5)
		}
	})

	sim4x4 := func(b *testing.B, obs ...sim.Observer) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := core.EAR(4, core.WithObservers(obs...))
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Simulate()
			if err != nil {
				b.Fatal(err)
			}
			if res.JobsCompleted == 0 {
				b.Fatal("benchmark run completed no jobs")
			}
		}
	}
	b.Run("sim4x4/disabled", func(b *testing.B) { sim4x4(b) })
	b.Run("sim4x4/instrumented", func(b *testing.B) { sim4x4(b, trace.EngineMetrics{}) })
}
