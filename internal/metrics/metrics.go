// Package metrics is a dependency-free, allocation-free-in-steady-state
// instrumentation registry for the simulator's serving and engine layers.
//
// Three value types cover the usual telemetry shapes:
//
//   - Counter: a monotonically increasing uint64 (requests served, cache
//     hits). Updates are single atomic adds.
//   - Gauge: a signed instantaneous level (queue depth, bytes resident).
//     Updates are atomic stores/adds.
//   - Histogram: a fixed-bucket distribution (latencies, phase durations).
//     Observe is a linear bucket scan plus two atomic operations and never
//     allocates; bucket bounds are frozen at registration.
//
// Metrics are registered once — typically in package var blocks — against a
// Registry keyed by name, and rendered on demand in either Prometheus text
// exposition format (WritePrometheus) or the repo's indented JSON style
// (WriteJSON). The process-global registry (Default) is what etserve's
// GET /metrics serves.
//
// Determinism contract: metrics are write-only from the simulation's point
// of view. Nothing in this package is ever read back into scheduling,
// routing, or result computation, so instrumented and uninstrumented runs
// produce byte-identical outputs (guarded in CI by the -spans byte-diff
// step and the worker-count determinism sweeps).
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use, but counters should normally be created through Registry.Counter so
// they render on scrapes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed level.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. An observation lands in
// the first bucket whose upper bound is >= the value; values above the last
// bound land in the implicit +Inf bucket. Bounds are set at registration and
// never change, so Observe is lock-free and allocation-free.
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) (*Histogram, error) {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("metrics: histogram bounds must be strictly increasing (bounds[%d]=%g, bounds[%d]=%g)",
				i-1, bounds[i-1], i, bounds[i])
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns the per-bucket (non-cumulative) counts, the sum, and the
// total count, read bucket by bucket (scrapes tolerate torn reads across
// buckets; each individual bucket is atomic).
func (h *Histogram) snapshot() (counts []uint64, sum float64, total uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, h.Sum(), total
}

// ExponentialBuckets returns count upper bounds starting at start and
// multiplying by factor: start, start*factor, start*factor^2, ...
// It panics on invalid arguments; bucket layouts are compile-time decisions.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count < 1 || start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("metrics: invalid ExponentialBuckets(%g, %g, %d)", start, factor, count))
	}
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DurationBuckets is the standard latency layout used across the repo:
// 24 exponential buckets from 1µs to ~8.4s (factor 2), in seconds. It
// covers everything from a sub-microsecond engine phase (first bucket) to
// a 64x64 full recompute.
func DurationBuckets() []float64 { return ExponentialBuckets(1e-6, 2, 24) }
