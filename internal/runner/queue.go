package runner

import (
	"context"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Queue is the long-lived, context-aware admission front of a worker budget:
// a fixed number of execution slots shared by many independent, concurrently
// submitted tasks. It is what a daemon puts between its request handlers and
// the CPU — every accepted request Does its work through the queue, so the
// total simulation concurrency is bounded no matter how many clients are
// connected, and a client that gives up while still queued never occupies a
// slot at all.
//
// Unlike Pool.Run, which executes one finite batch and returns, a Queue has
// no batch boundary: tasks arrive forever and each one carries its own
// context. Do runs the task on the caller's goroutine (so the caller's stack,
// request tracing and response writer are all naturally available) after
// acquiring a slot; slots are released when the task returns.
type Queue struct {
	slots chan struct{}
	// waiting counts callers blocked in Do between admission and slot
	// acquisition — the queue depth a dashboard wants next to InFlight.
	waiting atomic.Int64
}

// NewQueue builds a queue with the given number of execution slots. Values
// below 1 select DefaultWorkers().
func NewQueue(workers int) *Queue {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	return &Queue{slots: make(chan struct{}, workers)}
}

// Workers reports the queue's slot count.
func (q *Queue) Workers() int { return cap(q.slots) }

// InFlight reports how many tasks currently hold a slot. It is a point-in-time
// snapshot for metrics, not a synchronisation primitive.
func (q *Queue) InFlight() int { return len(q.slots) }

// Depth reports how many tasks are waiting for a slot (admitted to Do but
// not yet running). Like InFlight it is a point-in-time snapshot.
func (q *Queue) Depth() int { return int(q.waiting.Load()) }

// Do runs fn once a slot is free, passing the caller's context through. If
// the context is cancelled while the task is still waiting for a slot, Do
// returns the context's error without ever starting fn — a departed client
// costs nothing. A cancellation after fn starts is fn's own business: the
// context is handed to it precisely so it can stop early (the simulator
// does, via core.WithContext).
//
// Panics inside fn are recovered and returned as a *PanicError (index -1, as
// queue tasks have no batch position), so one bad request cannot take down
// the daemon's worker budget.
func (q *Queue) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Check for cancellation first so a dead request never wins a free slot.
	if err := ctx.Err(); err != nil {
		return err
	}
	q.waiting.Add(1)
	start := time.Now()
	select {
	case q.slots <- struct{}{}:
	case <-ctx.Done():
		q.waiting.Add(-1)
		return ctx.Err()
	}
	q.waiting.Add(-1)
	queueWaitSeconds.Observe(time.Since(start).Seconds())
	queueTasksTotal.Inc()
	defer func() { <-q.slots }()
	return runTask(ctx, fn)
}

// runTask invokes fn with panic recovery.
func runTask(ctx context.Context, fn func(ctx context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}

// RunContext is Pool.Run with a per-call context: the run aborts (between
// cells) once either the pool's context or ctx is cancelled, and every cell
// receives the merged context so long-running cells can stop early too. It is
// the submission path for request-scoped batches — a campaign whose client
// may disconnect — onto a pool that is itself shared and long-lived.
func (p *Pool) RunContext(ctx context.Context, n int, cell func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Merge the pool's context with the call's: cancelling either cancels the
	// run. context.WithCancel only links the chain through its parent, so the
	// second source is watched via AfterFunc — but AfterFunc fires on its own
	// goroutine, which would let a worker dispatch one more queued cell in the
	// window before the merge propagates. The synchronous ctx.Err() check in
	// the cell wrapper closes that window: a cancelled call never starts
	// another cell, it fails the cell slot instead (which cancels the run with
	// the usual lowest-index-wins selection).
	runCtx, cancel := context.WithCancel(p.ctx)
	defer cancel()
	stop := context.AfterFunc(ctx, cancel)
	defer stop()
	view := &Pool{workers: p.workers, ctx: runCtx, obs: p.obs}
	return view.Run(n, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return cell(runCtx, i)
	})
}
