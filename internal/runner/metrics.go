package runner

import "repro/internal/metrics"

// Process-global runner telemetry. Cells and queue tasks from every pool
// and queue in the process aggregate here; sums across instances are what a
// scrape wants (total CPU-seconds in cells, total slot-wait). Updates are
// atomic and allocation-free, so they are safe in the sweep hot path.
var (
	poolCellSeconds = metrics.Default().Histogram("runner_pool_cell_seconds",
		"Wall-clock duration of executed pool cells; sum/count give worker utilization.",
		metrics.DurationBuckets())
	queueWaitSeconds = metrics.Default().Histogram("runner_queue_wait_seconds",
		"Time admitted queue tasks spent waiting for an execution slot.",
		metrics.DurationBuckets())
	queueTasksTotal = metrics.Default().Counter("runner_queue_tasks_total",
		"Queue tasks that acquired an execution slot and ran.")
)
