package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCancelledGridStartsNoNewCells is the dispatch-promptness contract: once
// the run's context is cancelled, no queued cell may start. Two workers are
// parked inside the only two running cells, the context is cancelled, and the
// remaining 62 cells of the grid must never begin.
func TestCancelledGridStartsNoNewCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := New(WithWorkers(2), WithContext(ctx))

	const n = 64
	var started atomic.Int32
	running := make(chan struct{}, n)
	release := make(chan struct{})

	errRun := make(chan error, 1)
	go func() {
		errRun <- p.Run(n, func(i int) error {
			started.Add(1)
			running <- struct{}{}
			<-release
			return nil
		})
	}()

	// Wait until both workers are parked inside a cell.
	for range 2 {
		select {
		case <-running:
		case <-time.After(5 * time.Second):
			t.Fatal("workers never started their first cells")
		}
	}
	cancel()
	close(release)

	err := <-errRun
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if got := started.Load(); got != 2 {
		t.Fatalf("%d cells started, want exactly the 2 that were in flight at cancellation", got)
	}
}

// TestRunContextMergesCancellation checks the per-call context path: a
// cancellation of the call context (not the pool's) stops dispatch, and cells
// receive a context that reports it.
func TestRunContextMergesCancellation(t *testing.T) {
	p := New(WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var started atomic.Int32
	running := make(chan struct{}, 16)
	release := make(chan struct{})
	var sawDone atomic.Bool

	errRun := make(chan error, 1)
	go func() {
		errRun <- p.RunContext(ctx, 16, func(cellCtx context.Context, i int) error {
			started.Add(1)
			running <- struct{}{}
			<-release
			// Propagation into the merged context is asynchronous; the
			// contract is that an in-flight cell can block on Done and will
			// be woken, not that Err flips in the same instant.
			select {
			case <-cellCtx.Done():
				sawDone.Store(true)
			case <-time.After(5 * time.Second):
			}
			return nil
		})
	}()
	for range 2 {
		select {
		case <-running:
		case <-time.After(5 * time.Second):
			t.Fatal("workers never started their first cells")
		}
	}
	cancel()
	close(release)

	err := <-errRun
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	if got := started.Load(); got != 2 {
		t.Fatalf("%d cells started after cancellation, want 2", got)
	}
	if !sawDone.Load() {
		t.Fatal("in-flight cells did not observe the cancellation through their context")
	}
}

// TestQueueBoundsConcurrency parks more tasks than the queue has slots and
// checks admission never exceeds the budget.
func TestQueueBoundsConcurrency(t *testing.T) {
	q := NewQueue(3)
	var inFlight, peak atomic.Int32
	var wg sync.WaitGroup
	for range 24 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = q.Do(context.Background(), func(context.Context) error {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inFlight.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak in-flight %d exceeds the 3-slot budget", p)
	}
}

// TestQueueAbandonsWaitingTask checks that a task whose context dies while it
// is still queued is never started.
func TestQueueAbandonsWaitingTask(t *testing.T) {
	q := NewQueue(1)
	block := make(chan struct{})
	occupied := make(chan struct{})
	go func() {
		_ = q.Do(context.Background(), func(context.Context) error {
			close(occupied)
			<-block
			return nil
		})
	}()
	<-occupied

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := q.Do(ctx, func(context.Context) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do returned %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("cancelled task ran anyway")
	}
	close(block)
}

// TestQueueRecoversPanics checks a panicking task surfaces as *PanicError and
// releases its slot.
func TestQueueRecoversPanics(t *testing.T) {
	q := NewQueue(1)
	err := q.Do(context.Background(), func(context.Context) error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Do returned %v, want *PanicError", err)
	}
	// The slot must be free again.
	if err := q.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatalf("queue unusable after panic: %v", err)
	}
}
