// Package runner provides a deterministic worker pool for fanning
// embarrassingly parallel experiment grids out over multiple goroutines.
//
// The experiment sweeps in internal/experiments evaluate independent
// (mesh size, scenario) cells: every cell constructs its own simulator, so
// no state is shared between cells and the only ordering requirement is that
// the collected results appear in input order. runner.Map guarantees exactly
// that: the result slice is indexed by input position, so a run with 8
// workers is element-for-element identical to a serial run. Fault seeding and
// the mapping PRNGs are deterministic per cell (seeded by cell parameters,
// never by wall clock), which is what makes this fan-out safe.
//
// Semantics:
//
//   - Results preserve input order regardless of completion order.
//   - On failure the error for the lowest-numbered failing cell wins — the
//     lowest index among the cells that actually ran and failed, which keeps
//     error selection as schedule-independent as cancellation allows (a cell
//     skipped because a later-indexed failure cancelled first never gets to
//     report). Cells never started because of cancellation are simply skipped.
//   - A panic inside a cell is recovered and converted into a *PanicError
//     carrying the cell index, the panic value and the stack trace, then
//     treated like any other cell error. A panicking cell therefore cancels
//     the sweep instead of killing the process.
//   - An external context can cancel a run between cells via WithContext.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is the error a cell produces when its function panics. It keeps
// the recovered value and the goroutine stack so the failure is debuggable
// even though the panic happened off the caller's goroutine.
type PanicError struct {
	// Index is the input position of the cell that panicked.
	Index int
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the stack trace captured at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: cell %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Pool executes batches of independent cells over a fixed number of worker
// goroutines. The zero value is not useful; construct pools with New. A Pool
// carries no per-run state and may be reused for any number of Run/Map calls,
// including concurrently.
type Pool struct {
	workers int
	ctx     context.Context
	// obs, when set, receives one callback per executed cell (see
	// WithCellObserver). Independent of obs, every cell's wall-clock
	// duration feeds the process-global runner_pool_cell_seconds histogram.
	obs CellObserver
}

// CellObserver receives one callback per executed cell: the cell's input
// index, the worker that ran it (0 on the serial path), and its wall-clock
// start and duration. Callbacks may arrive concurrently from different
// workers; observers must be safe for concurrent use. Timing is
// observational only — it never influences cell order or results (which are
// deterministic by input index regardless of schedule).
type CellObserver func(index, worker int, start time.Time, d time.Duration)

// Option configures a Pool.
type Option func(*Pool)

// WithWorkers sets the number of worker goroutines. Values below 1 select
// DefaultWorkers().
func WithWorkers(n int) Option {
	return func(p *Pool) {
		if n >= 1 {
			p.workers = n
		}
	}
}

// WithContext attaches a context to the pool. A run aborts (between cells)
// once the context is cancelled, returning the context's error if no cell
// failed first.
func WithContext(ctx context.Context) Option {
	return func(p *Pool) {
		if ctx != nil {
			p.ctx = ctx
		}
	}
}

// WithCellObserver attaches a per-cell timing callback to the pool — the
// hook the flight recorder (trace.Spans.CellObserver) uses to lay a sweep's
// cells out per worker in a Chrome trace.
func WithCellObserver(obs CellObserver) Option {
	return func(p *Pool) { p.obs = obs }
}

// DefaultWorkers is the worker count used when none is configured: the
// scheduler's GOMAXPROCS, i.e. one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// New builds a pool. With no options it uses DefaultWorkers() workers and the
// background context.
func New(opts ...Option) *Pool {
	p := &Pool{workers: DefaultWorkers(), ctx: context.Background()}
	for _, o := range opts {
		if o != nil {
			o(p)
		}
	}
	return p
}

// Workers reports the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes cell(i) for every i in [0, n), fanning the indices out over
// the pool's workers. It blocks until every started cell has finished.
//
// The first failure — "first" meaning the lowest cell index among the cells
// that actually ran and failed, so the result is independent of goroutine
// scheduling — cancels the run: no new cells are started, in-flight cells run
// to completion, and that error is returned. Panics are converted to
// *PanicError and handled the same way.
func (p *Pool) Run(n int, cell func(i int) error) error {
	if n <= 0 {
		return p.ctx.Err()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, no cancellation latency. The
		// semantics are identical because lowest-index-error-wins degenerates
		// to first-error-wins when cells run in index order.
		for i := 0; i < n; i++ {
			if err := p.ctx.Err(); err != nil {
				return err
			}
			if err := p.execCell(i, 0, cell); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(p.ctx)
	defer cancel()

	var (
		next     atomic.Int64
		done     atomic.Int64
		mu       sync.Mutex
		firstIdx = n // lowest failing index seen so far; n means "none"
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := p.execCell(i, worker, cell); err != nil {
					fail(i, err)
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	if int(done.Load()) == n {
		// Every cell completed: a cancellation that landed after the last
		// cell is irrelevant, exactly as on the serial path.
		return nil
	}
	return p.ctx.Err()
}

// execCell runs one cell with wall-clock timing: the duration always feeds
// the process-global cell histogram (worker utilization = sum over count on
// a scrape), and the pool's observer, when attached, gets the full
// (index, worker, start, duration) tuple.
func (p *Pool) execCell(i, worker int, cell func(i int) error) error {
	start := time.Now()
	err := runCell(i, cell)
	d := time.Since(start)
	poolCellSeconds.Observe(d.Seconds())
	if p.obs != nil {
		p.obs(i, worker, start, d)
	}
	return err
}

// runCell invokes cell(i) with panic recovery.
func runCell(i int, cell func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return cell(i)
}

// Map evaluates fn over every item and collects the results in input order.
// Each fn(i, items[i]) runs as one pool cell; see Pool.Run for the error,
// panic and cancellation semantics. On error the returned slice holds the
// results of the cells that completed successfully (zero values elsewhere) so
// callers that want partial progress can inspect it; most should discard it.
//
// A nil pool runs with New()'s defaults, so package-level helpers can accept
// an optional pool without special-casing.
func Map[T, R any](p *Pool, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	if p == nil {
		p = New()
	}
	results := make([]R, len(items))
	err := p.Run(len(items), func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return results, err
	}
	return results, nil
}

// Grid returns the row-major cross product of two parameter slices: every
// (a, b) pair with a varying slowest. It is the canonical way to flatten a
// two-dimensional sweep (mesh sizes × controller counts, mesh sizes × Q
// values, ...) into the one-dimensional cell list Map consumes while keeping
// the exact iteration order of the nested loops it replaces.
func Grid[A, B any](as []A, bs []B) []Cell2[A, B] {
	cells := make([]Cell2[A, B], 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			cells = append(cells, Cell2[A, B]{A: a, B: b})
		}
	}
	return cells
}

// Cell2 is one point of a two-dimensional parameter grid.
type Cell2[A, B any] struct {
	A A
	B B
}
