package runner

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestCellObserverSeesEveryCell(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var (
			mu      sync.Mutex
			indices []int
		)
		p := New(WithWorkers(workers), WithCellObserver(func(index, worker int, start time.Time, d time.Duration) {
			if worker < 0 || worker >= workers {
				t.Errorf("worker %d out of range [0,%d)", worker, workers)
			}
			if d < 0 || start.IsZero() {
				t.Errorf("bad timing for cell %d: start=%v d=%v", index, start, d)
			}
			mu.Lock()
			indices = append(indices, index)
			mu.Unlock()
		}))
		const n = 16
		if err := p.Run(n, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		sort.Ints(indices)
		if len(indices) != n {
			t.Fatalf("workers=%d: observer saw %d cells, want %d", workers, len(indices), n)
		}
		for i, idx := range indices {
			if idx != i {
				t.Fatalf("workers=%d: observed indices %v, want 0..%d each once", workers, indices, n-1)
			}
		}
	}
}

func TestCellObserverSurvivesRunContext(t *testing.T) {
	var calls int
	var mu sync.Mutex
	p := New(WithWorkers(2), WithCellObserver(func(index, worker int, start time.Time, d time.Duration) {
		mu.Lock()
		calls++
		mu.Unlock()
	}))
	err := p.RunContext(context.Background(), 4, func(ctx context.Context, i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("observer saw %d cells through RunContext, want 4", calls)
	}
}

func TestQueueDepth(t *testing.T) {
	q := NewQueue(1)
	if q.Depth() != 0 {
		t.Fatalf("idle queue Depth = %d, want 0", q.Depth())
	}

	block := make(chan struct{})
	running := make(chan struct{})
	go q.Do(context.Background(), func(ctx context.Context) error {
		close(running)
		<-block
		return nil
	})
	<-running

	// A second task now has to wait for the single slot.
	waiting := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		q.Do(context.Background(), func(ctx context.Context) error { return nil })
	}()
	go func() {
		for q.Depth() == 0 {
			time.Sleep(time.Millisecond)
		}
		close(waiting)
	}()
	select {
	case <-waiting:
	case <-time.After(5 * time.Second):
		t.Fatal("Depth never reported the waiting task")
	}
	close(block)
	<-done
	if q.Depth() != 0 {
		t.Fatalf("drained queue Depth = %d, want 0", q.Depth())
	}
}

func TestQueueDepthDropsOnCancelledWait(t *testing.T) {
	q := NewQueue(1)
	block := make(chan struct{})
	running := make(chan struct{})
	go q.Do(context.Background(), func(ctx context.Context) error {
		close(running)
		<-block
		return nil
	})
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.Do(ctx, func(ctx context.Context) error { return nil }) }()
	for q.Depth() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	if q.Depth() != 0 {
		t.Fatalf("Depth = %d after the waiter gave up, want 0", q.Depth())
	}
	close(block)
}
