package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDefaults(t *testing.T) {
	p := New()
	if p.Workers() != DefaultWorkers() {
		t.Errorf("Workers() = %d, want %d", p.Workers(), DefaultWorkers())
	}
	if DefaultWorkers() != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultWorkers() = %d, want GOMAXPROCS = %d", DefaultWorkers(), runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{0, -3} {
		if got := New(WithWorkers(n)).Workers(); got != DefaultWorkers() {
			t.Errorf("WithWorkers(%d) gave %d workers, want default %d", n, got, DefaultWorkers())
		}
	}
	if got := New(WithWorkers(7)).Workers(); got != 7 {
		t.Errorf("WithWorkers(7) gave %d workers", got)
	}
	if got := New(nil, WithContext(nil)).Workers(); got != DefaultWorkers() {
		t.Errorf("nil option / nil context mishandled: %d workers", got)
	}
}

func TestMapPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			items := make([]int, 100)
			for i := range items {
				items[i] = i * 3
			}
			p := New(WithWorkers(workers))
			got, err := Map(p, items, func(i, item int) (string, error) {
				return fmt.Sprintf("%d:%d", i, item), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(items) {
				t.Fatalf("got %d results", len(got))
			}
			for i, s := range got {
				if want := fmt.Sprintf("%d:%d", i, i*3); s != want {
					t.Fatalf("result %d = %q, want %q", i, s, want)
				}
			}
		})
	}
}

func TestMapIsDeterministicAcrossWorkerCounts(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	square := func(_, item int) (int, error) { return item * item, nil }
	ref, err := Map(New(WithWorkers(1)), items, square)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, DefaultWorkers()} {
		got, err := Map(New(WithWorkers(workers)), items, square)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestRunRespectsWorkerLimit(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	p := New(WithWorkers(workers))
	err := p.Run(50, func(int) error {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent cells, limit is %d", got, workers)
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	// Cell 3 fails fast, cell 1 fails slowly: the slower, lower-numbered
	// error must still win so the returned error is schedule-independent.
	errs := map[int]error{1: errors.New("slow low"), 3: errors.New("fast high")}
	for _, workers := range []int{4, 8} {
		var started sync.WaitGroup
		started.Add(4)
		p := New(WithWorkers(workers))
		err := p.Run(4, func(i int) error {
			started.Done()
			started.Wait() // hold until every cell is in flight
			if i == 1 {
				time.Sleep(20 * time.Millisecond)
			}
			return errs[i]
		})
		if !errors.Is(err, errs[1]) {
			t.Errorf("workers=%d: got error %v, want %v", workers, err, errs[1])
		}
	}
}

func TestErrorCancelsRemainingCells(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	p := New(WithWorkers(2))
	err := p.Run(10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("%d cells ran after the first error; cancellation is not kicking in", n)
	}
}

func TestMapReturnsPartialResultsOnError(t *testing.T) {
	boom := errors.New("boom")
	items := []int{10, 20, 30}
	got, err := Map(New(WithWorkers(1)), items, func(i, item int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return item + 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if got[0] != 11 || got[1] != 21 || got[2] != 0 {
		t.Errorf("partial results = %v, want [11 21 0]", got)
	}
}

func TestPanicIsRecoveredAsError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(WithWorkers(workers))
		_, err := Map(p, []int{0, 1, 2, 3}, func(i, item int) (int, error) {
			if i == 2 {
				panic("cell exploded")
			}
			return item, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v (%T), want *PanicError", workers, err, err)
		}
		if pe.Index != 2 {
			t.Errorf("panic index = %d, want 2", pe.Index)
		}
		if pe.Value != "cell exploded" {
			t.Errorf("panic value = %v", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Error("panic stack not captured")
		}
		if msg := pe.Error(); !strings.Contains(msg, "cell 2") || !strings.Contains(msg, "cell exploded") {
			t.Errorf("unhelpful panic message: %s", msg)
		}
	}
}

func TestPanicBeatsHigherIndexError(t *testing.T) {
	p := New(WithWorkers(1))
	err := p.Run(4, func(i int) error {
		if i == 0 {
			panic("early")
		}
		return errors.New("late")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 0 {
		t.Fatalf("got %v, want *PanicError for cell 0", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	p := New(WithWorkers(2), WithContext(ctx))
	err := p.Run(10_000, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("%d cells ran after cancellation", n)
	}

	// An already-cancelled context fails even the empty run.
	if err := New(WithContext(ctx)).Run(0, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("empty run on cancelled context: got %v", err)
	}
	if err := New(WithContext(ctx), WithWorkers(1)).Run(3, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("serial run on cancelled context: got %v", err)
	}
}

func TestCancellationAfterLastCellReturnsNil(t *testing.T) {
	// A cancellation that lands while (or after) the final cell completes
	// must not discard a fully-computed result set, and serial and parallel
	// runs must agree on that.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		p := New(WithWorkers(workers), WithContext(ctx))
		err := p.Run(4, func(int) error {
			if ran.Add(1) == 4 {
				cancel()
			}
			return nil
		})
		if err != nil {
			t.Errorf("workers=%d: Run = %v after all cells completed, want nil", workers, err)
		}
		if ran.Load() != 4 {
			t.Errorf("workers=%d: only %d cells ran", workers, ran.Load())
		}
		cancel()
	}
}

func TestEmptyAndSmallInputs(t *testing.T) {
	p := New(WithWorkers(8))
	if err := p.Run(0, nil); err != nil {
		t.Errorf("Run(0) = %v", err)
	}
	got, err := Map(p, []int(nil), func(i, item int) (int, error) { return item, nil })
	if err != nil || len(got) != 0 {
		t.Errorf("Map(nil) = %v, %v", got, err)
	}
	// More workers than cells must not deadlock or duplicate work.
	var ran atomic.Int64
	if err := p.Run(2, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 2 {
		t.Errorf("ran %d cells, want 2", ran.Load())
	}
}

func TestNilPoolUsesDefaults(t *testing.T) {
	got, err := Map[int, int](nil, []int{1, 2, 3}, func(_, item int) (int, error) { return item * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("got %v", got)
	}
}

func TestPoolIsReusableAndConcurrencySafe(t *testing.T) {
	p := New(WithWorkers(4))
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			items := []int{1, 2, 3, 4, 5}
			got, err := Map(p, items, func(_, item int) (int, error) { return item + 100, nil })
			if err != nil {
				t.Error(err)
				return
			}
			for i, v := range got {
				if v != items[i]+100 {
					t.Errorf("result %d = %d", i, v)
				}
			}
		}()
	}
	wg.Wait()
}

func TestGrid(t *testing.T) {
	cells := Grid([]int{4, 5}, []string{"a", "b", "c"})
	if len(cells) != 6 {
		t.Fatalf("got %d cells", len(cells))
	}
	// Row-major: first axis varies slowest, exactly like the nested loops the
	// grid replaces.
	want := []Cell2[int, string]{
		{4, "a"}, {4, "b"}, {4, "c"},
		{5, "a"}, {5, "b"}, {5, "c"},
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("cell %d = %v, want %v", i, cells[i], want[i])
		}
	}
	if got := Grid([]int{}, []string{"a"}); len(got) != 0 {
		t.Errorf("empty axis gave %d cells", len(got))
	}
}
