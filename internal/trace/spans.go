package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// Spans is the per-run flight recorder: attached as an observer it receives
// the engine's wall-clock phase spans (it implements sim.PhaseObserver, so
// attaching it turns the span clock on), and via CellObserver it can also
// record the runner's per-cell worker spans during a sweep. The collected
// timeline exports as Chrome trace-event JSON (WriteChromeTrace), loadable
// in chrome://tracing or Perfetto.
//
// Spans is observational only: it never feeds anything back into the
// simulation, so a run with a flight recorder attached produces
// byte-identical outputs to one without (guarded in CI by the -spans
// byte-diff step). The zero value is ready to use and safe for concurrent
// recording from multiple workers.
type Spans struct {
	sim.BaseObserver

	mu    sync.Mutex
	epoch time.Time // clock anchor for cell spans; first cell start seen
	spans []Span
}

// Span is one recorded interval on the flight recorder's clock.
type Span struct {
	// Name is the display name ("snapshot", "control-full", "cell 17", ...).
	Name string
	// Cat is the trace-event category: "engine" for phase spans, "runner"
	// for worker cell spans.
	Cat string
	// TID is the virtual thread the span renders on: engine phases share
	// tid 1; runner cells render one row per worker (tid 100+worker).
	TID int
	// Frame is the engine frame the span belongs to, or -1 for cell spans.
	Frame int64
	// StartNS and DurationNS are nanoseconds on the recorder's clock.
	StartNS    int64
	DurationNS int64
}

// engineTID is the virtual thread for engine phase spans; cell spans render
// on cellTIDBase+worker.
const (
	engineTID   = 1
	cellTIDBase = 100
)

// PhaseSpan implements sim.PhaseObserver.
func (s *Spans) PhaseSpan(e sim.PhaseSpanEvent) {
	s.mu.Lock()
	s.spans = append(s.spans, Span{
		Name:       e.Phase.String(),
		Cat:        "engine",
		TID:        engineTID,
		Frame:      e.Frame,
		StartNS:    e.StartNS,
		DurationNS: e.DurationNS,
	})
	s.mu.Unlock()
}

// CellObserver returns a callback with the runner's cell-observer shape
// (runner.WithCellObserver) that records one span per executed cell, one
// virtual thread per worker. The first cell start seen anchors the clock.
func (s *Spans) CellObserver() func(index, worker int, start time.Time, d time.Duration) {
	return func(index, worker int, start time.Time, d time.Duration) {
		s.mu.Lock()
		if s.epoch.IsZero() {
			s.epoch = start
		}
		ts := start.Sub(s.epoch).Nanoseconds()
		if ts < 0 {
			// A cell on another worker started before the anchor cell; clamp
			// rather than emit a negative timestamp (Perfetto rejects them).
			ts = 0
		}
		s.spans = append(s.spans, Span{
			Name:       fmt.Sprintf("cell %d", index),
			Cat:        "runner",
			TID:        cellTIDBase + worker,
			Frame:      -1,
			StartNS:    ts,
			DurationNS: d.Nanoseconds(),
		})
		s.mu.Unlock()
	}
}

// Len returns the number of recorded spans.
func (s *Spans) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

// Spans returns a copy of the recorded spans in recording order.
func (s *Spans) Spans() []Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Span(nil), s.spans...)
}

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array: a complete ("ph":"X") event with microsecond timestamps.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	TS   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the recorded spans as Chrome trace-event JSON.
// Engine phase spans additionally get one synthesized container span per
// frame (named "frame N", spanning that frame's in-frame phases, on its own
// virtual thread) so the frame structure is visible at a glance when zoomed
// out. Timestamps are microseconds, as the format requires.
func (s *Spans) WriteChromeTrace(w io.Writer) error {
	spans := s.Spans()
	const frameTID = 0 // container row above the phase row

	// Synthesize per-frame container spans from the in-frame phases
	// (schedule gaps belong to the space between frames and are excluded).
	type window struct{ start, end int64 }
	frames := map[int64]*window{}
	var order []int64
	for _, sp := range spans {
		if sp.Cat != "engine" || sp.Frame < 0 || sp.Name == sim.PhaseSchedule.String() {
			continue
		}
		wd, ok := frames[sp.Frame]
		if !ok {
			wd = &window{start: sp.StartNS, end: sp.StartNS + sp.DurationNS}
			frames[sp.Frame] = wd
			order = append(order, sp.Frame)
			continue
		}
		if sp.StartNS < wd.start {
			wd.start = sp.StartNS
		}
		if end := sp.StartNS + sp.DurationNS; end > wd.end {
			wd.end = end
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	events := make([]chromeEvent, 0, len(spans)+len(order))
	for _, f := range order {
		wd := frames[f]
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("frame %d", f),
			Cat:  "engine",
			Ph:   "X",
			PID:  1,
			TID:  frameTID,
			TS:   float64(wd.start) / 1e3,
			Dur:  float64(wd.end-wd.start) / 1e3,
			Args: map[string]int64{"frame": f},
		})
	}
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			PID:  1,
			TID:  sp.TID,
			TS:   float64(sp.StartNS) / 1e3,
			Dur:  float64(sp.DurationNS) / 1e3,
		}
		if sp.Frame >= 0 {
			ev.Args = map[string]int64{"frame": sp.Frame}
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the Chrome trace to path.
func (s *Spans) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
