package trace

import (
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// enginePhaseSeconds aggregates wall-clock phase durations across every
// instrumented run in the process, one histogram per engine phase
// (engine_phase_snapshot_seconds, engine_phase_control_full_seconds, ...).
// Registered at package init so the families appear on /metrics scrapes
// even before the first instrumented run.
var enginePhaseSeconds = func() [sim.PhaseCount]*metrics.Histogram {
	var hs [sim.PhaseCount]*metrics.Histogram
	for p := 0; p < sim.PhaseCount; p++ {
		name := "engine_phase_" + strings.ReplaceAll(sim.Phase(p).String(), "-", "_") + "_seconds"
		hs[p] = metrics.Default().Histogram(name,
			"Wall-clock duration of the engine's "+sim.Phase(p).String()+" frame phase.",
			metrics.DurationBuckets())
	}
	return hs
}()

var engineFramesTotal = metrics.Default().Counter("engine_frames_total",
	"TDMA control frames processed by metrics-instrumented simulations.")

// EngineMetrics is a stateless observer that streams the engine's phase
// timings into the process-global metrics registry. Attaching it implements
// sim.PhaseObserver, which turns the engine's span clock on; etserve
// attaches one to every simulation it runs so GET /metrics exposes
// engine-phase latency histograms.
//
// Like all metrics, the aggregation is write-only from the simulation's
// point of view: results are byte-identical with or without it.
type EngineMetrics struct {
	sim.BaseObserver
}

// PhaseSpan implements sim.PhaseObserver.
func (EngineMetrics) PhaseSpan(e sim.PhaseSpanEvent) {
	if int(e.Phase) < len(enginePhaseSeconds) {
		enginePhaseSeconds[e.Phase].Observe(float64(e.DurationNS) / 1e9)
	}
}

// FrameProcessed implements sim.Observer.
func (EngineMetrics) FrameProcessed(sim.FrameEvent) { engineFramesTotal.Inc() }
