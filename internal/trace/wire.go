package trace

import (
	"repro/internal/sim"
)

// WireEvent is the flattened, machine-readable progress record internal/serve
// streams to clients as NDJSON. One struct covers every event kind — the Type
// tag says which of the optional fields are meaningful — so a line-oriented
// client can decode every line into the same shape and switch on "type".
//
// The encoding is part of the service wire contract: fields are only ever
// added, never renamed or repurposed.
type WireEvent struct {
	// Type discriminates the record: "frame", "node_died", "fault_injected",
	// "fault_recovered", "failover" or "finished".
	Type string `json:"type"`
	// Now is the simulated cycle; Frame the TDMA frame index.
	Now   int64 `json:"now"`
	Frame int64 `json:"frame"`

	// Frame-summary fields (Type == "frame").
	AliveNodes   int  `json:"alive_nodes,omitempty"`
	JobsInFlight int  `json:"jobs_in_flight,omitempty"`
	Recomputed   bool `json:"recomputed,omitempty"`

	// Node and fault fields ("node_died", "fault_injected", "fault_recovered").
	Node int    `json:"node,omitempty"`
	Kind string `json:"kind,omitempty"`
	From int    `json:"from,omitempty"`
	To   int    `json:"to,omitempty"`

	// Failover fields (Type == "failover"): From/To above are the regions.
	Nodes int `json:"nodes,omitempty"`

	// Finish fields (Type == "finished").
	Reason string `json:"reason,omitempty"`
}

// Wire is a sim.Observer that forwards a sampled, flattened subset of the
// event stream to a sink — the bridge between the engine's synchronous
// observer hooks and internal/serve's NDJSON progress stream. It forwards
// the low-rate structural events (node deaths, faults, failovers, the finish)
// verbatim and thins the per-frame heartbeat to every FrameEvery-th frame, so
// a long run streams progress without drowning the client in frame records.
//
// The sink is called synchronously from the simulation goroutine; a sink that
// blocks (a slow client) backpressures the simulation rather than buffering
// unboundedly, which is the behaviour a progress stream wants.
type Wire struct {
	sim.BaseObserver
	// Sink receives each flattened event. Must be non-nil.
	Sink func(WireEvent)
	// FrameEvery thins the frame heartbeat: frames where Frame%FrameEvery != 0
	// are dropped (deaths, faults and the finish are never dropped). Values
	// below 1 default to DefaultFrameEvery.
	FrameEvery int64
}

// DefaultFrameEvery is the frame-heartbeat sampling interval when
// Wire.FrameEvery is unset.
const DefaultFrameEvery = 16

func (w *Wire) every() int64 {
	if w.FrameEvery < 1 {
		return DefaultFrameEvery
	}
	return w.FrameEvery
}

// FrameProcessed implements sim.Observer.
func (w *Wire) FrameProcessed(e sim.FrameEvent) {
	if e.Frame%w.every() != 0 {
		return
	}
	w.Sink(WireEvent{
		Type: "frame", Now: e.Now, Frame: e.Frame,
		AliveNodes: e.AliveNodes, JobsInFlight: e.JobsInFlight, Recomputed: e.Recomputed,
	})
}

// NodeDied implements sim.Observer.
func (w *Wire) NodeDied(e sim.NodeEvent) {
	w.Sink(WireEvent{Type: "node_died", Now: e.Now, Node: int(e.Node)})
}

// FaultInjected implements sim.Observer.
func (w *Wire) FaultInjected(e sim.FaultEvent) { w.fault("fault_injected", e) }

// FaultRecovered implements sim.Observer.
func (w *Wire) FaultRecovered(e sim.FaultEvent) { w.fault("fault_recovered", e) }

func (w *Wire) fault(typ string, e sim.FaultEvent) {
	ev := WireEvent{Type: typ, Now: e.Now, Frame: e.Frame, Kind: e.Kind.String()}
	switch {
	case e.To != e.From: // link fault: the undirected pair
		ev.From, ev.To = int(e.From), int(e.To)
	default:
		ev.Node = int(e.Node)
	}
	w.Sink(ev)
}

// RegionFailedOver implements sim.Observer.
func (w *Wire) RegionFailedOver(e sim.FailoverEvent) {
	w.Sink(WireEvent{
		Type: "failover", Now: e.Now, Frame: e.Frame,
		From: e.From, To: e.To, Nodes: e.Nodes,
	})
}

// RunFinished implements sim.Observer.
func (w *Wire) RunFinished(e sim.FinishEvent) {
	w.Sink(WireEvent{
		Type: "finished", Now: e.Now, Frame: e.Frame,
		Reason: string(e.Reason), JobsInFlight: e.JobsInFlight,
	})
}
