package trace_test

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The Degradation collector derives everything from the observer event
// stream alone, so its edge cases can be driven with synthetic events:
// no simulator needed, and each scenario is exact.

func TestDegradationKillWindowAtFrameZero(t *testing.T) {
	d := &trace.Degradation{}
	// The kill window opens before any frame has been processed — the
	// pathological "system starts degraded" case.
	d.FaultInjected(sim.FaultEvent{Frame: 0, Kind: faults.RegionDown, Shard: 1})
	for f := int64(1); f <= 4; f++ {
		d.FrameProcessed(sim.FrameEvent{Frame: f})
	}
	d.FaultRecovered(sim.FaultEvent{Frame: 4, Kind: faults.RegionUp, Shard: 1})
	d.FrameProcessed(sim.FrameEvent{Frame: 5})

	if got := d.FramesDegraded(); got != 4 {
		t.Errorf("FramesDegraded = %d, want 4 (frames 1..4)", got)
	}
	if got := d.FramesHealthy(); got != 1 {
		t.Errorf("FramesHealthy = %d, want 1 (frame 5)", got)
	}
	if got := d.Recovery().Count(); got != 1 {
		t.Fatalf("recovery samples = %d, want 1", got)
	}
	if got := d.Recovery().Max(); got != 4 {
		t.Errorf("recovery time = %g frames, want 4 (injected at 0, recovered at 4)", got)
	}
	// Staleness ages 1,2,3,4 while down, then resets to 0.
	if got := d.Staleness().Max(); got != 4 {
		t.Errorf("staleness max = %g, want 4", got)
	}
	if d.OpenWindows() != 0 {
		t.Errorf("OpenWindows = %d after recovery, want 0", d.OpenWindows())
	}
}

func TestDegradationOverlappingWindows(t *testing.T) {
	d := &trace.Degradation{}
	// Link (1,2) down frames 1..5; link (3,4) down frames 3..8: the overlap
	// (3..5) must count degraded once, not twice, and each window yields its
	// own recovery sample.
	d.FaultInjected(sim.FaultEvent{Frame: 1, Kind: faults.LinkDown, From: 1, To: 2})
	step := func(f int64) { d.FrameProcessed(sim.FrameEvent{Frame: f}) }
	step(1)
	step(2)
	d.FaultInjected(sim.FaultEvent{Frame: 3, Kind: faults.LinkDown, From: 4, To: 3})
	step(3)
	step(4)
	// Recovery events carry the endpoints in either order; the canonical
	// link key must match them up regardless.
	d.FaultRecovered(sim.FaultEvent{Frame: 5, Kind: faults.LinkUp, From: 2, To: 1})
	step(5)
	step(6)
	step(7)
	d.FaultRecovered(sim.FaultEvent{Frame: 8, Kind: faults.LinkUp, From: 3, To: 4})
	step(8)
	step(9)

	if got := d.FramesDegraded(); got != 7 {
		t.Errorf("FramesDegraded = %d, want 7 (frames 1..7; overlap counted once)", got)
	}
	if got := d.FramesHealthy(); got != 2 {
		t.Errorf("FramesHealthy = %d, want 2 (frames 8..9)", got)
	}
	if got := d.Recovery().Count(); got != 2 {
		t.Fatalf("recovery samples = %d, want 2", got)
	}
	if mean := d.Recovery().Mean(); mean != 4.5 {
		t.Errorf("recovery mean = %g, want 4.5 ((4+5)/2)", mean)
	}
	if d.OpenWindows() != 0 {
		t.Errorf("OpenWindows = %d, want 0", d.OpenWindows())
	}
}

func TestDegradationAdjacentWindows(t *testing.T) {
	d := &trace.Degradation{}
	// A node crash recovers at frame 3 and a second fault opens at the same
	// frame boundary: degraded time must be continuous (no healthy frame in
	// between) and both windows must resolve independently.
	d.FaultInjected(sim.FaultEvent{Frame: 1, Kind: faults.NodeCrash, Node: 5})
	d.FrameProcessed(sim.FrameEvent{Frame: 1})
	d.FrameProcessed(sim.FrameEvent{Frame: 2})
	d.FaultRecovered(sim.FaultEvent{Frame: 3, Kind: faults.NodeRestore, Node: 5})
	d.FaultInjected(sim.FaultEvent{Frame: 3, Kind: faults.NodeCrash, Node: 9})
	d.FrameProcessed(sim.FrameEvent{Frame: 3})
	d.FrameProcessed(sim.FrameEvent{Frame: 4})
	d.FaultRecovered(sim.FaultEvent{Frame: 5, Kind: faults.NodeRestore, Node: 9})
	d.FrameProcessed(sim.FrameEvent{Frame: 5})

	if got := d.FramesDegraded(); got != 4 {
		t.Errorf("FramesDegraded = %d, want 4 (frames 1..4, continuous across the handover)", got)
	}
	if got := d.FramesHealthy(); got != 1 {
		t.Errorf("FramesHealthy = %d, want 1", got)
	}
	if got := d.Recovery().Count(); got != 2 {
		t.Fatalf("recovery samples = %d, want 2", got)
	}
	if got := d.Recovery().Max(); got != 2 {
		t.Errorf("recovery max = %g, want 2 frames per window", got)
	}
}

func TestDegradationUnrecoveredWindows(t *testing.T) {
	d := &trace.Degradation{}
	// Three channels open and the run ends before any recovery arrives.
	d.FaultInjected(sim.FaultEvent{Frame: 1, Kind: faults.LinkDown, From: 0, To: 1})
	d.FaultInjected(sim.FaultEvent{Frame: 2, Kind: faults.NodeCrash, Node: 3})
	d.FaultInjected(sim.FaultEvent{Frame: 3, Kind: faults.RegionDown, Shard: 0})
	for f := int64(1); f <= 6; f++ {
		d.FrameProcessed(sim.FrameEvent{Frame: f})
	}

	if got := d.OpenWindows(); got != 3 {
		t.Errorf("OpenWindows = %d, want 3 (nothing recovered)", got)
	}
	if got := d.Recovery().Count(); got != 0 {
		t.Errorf("recovery samples = %d, want 0 (no recovery before run end)", got)
	}
	if got := d.FramesDegraded(); got != 6 {
		t.Errorf("FramesDegraded = %d, want 6", got)
	}
	if got := d.Retention(); got != 0 {
		t.Errorf("Retention = %g, want 0 (no healthy throughput observed)", got)
	}
	table := d.Table().Render()
	if !strings.Contains(table, "windows still open at death") {
		t.Errorf("Table() must surface unrecovered windows:\n%s", table)
	}
}

func TestDegradationRecoveryWithoutInjection(t *testing.T) {
	d := &trace.Degradation{}
	// A recovery event with no matching open window (e.g. the observer was
	// attached mid-run) must not panic or emit a bogus sample.
	d.FaultRecovered(sim.FaultEvent{Frame: 5, Kind: faults.LinkUp, From: 1, To: 2})
	if got := d.Recovery().Count(); got != 0 {
		t.Errorf("recovery samples = %d, want 0 for an unmatched recovery", got)
	}
	if d.OpenWindows() != 0 {
		t.Errorf("OpenWindows = %d, want 0", d.OpenWindows())
	}
}
