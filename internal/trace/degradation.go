package trace

// Degradation: the graceful-degradation metrics collector behind the
// fault-injection experiments. It watches the simulator's fault event
// stream (sim.Observer's FaultInjected / FaultRecovered / RegionFailedOver
// hooks) and attributes job flow to degraded vs healthy time, yielding the
// three figures the robustness story is about:
//
//   - throughput under faults — jobs completed while at least one fault
//     window (transient link outage, node crash, controller-region kill)
//     was open, vs jobs completed in healthy frames;
//   - table staleness — how long the control plane served last-known-good
//     routing tables because a region (or the central controller) was down;
//   - time-to-recover — frames from each fault's injection to its paired
//     recovery event.
//
// Like every collector in this package it is an ordinary observer: attach it
// via sim.Config.Observers and read the aggregates after the run. All state
// is derived from the event stream alone, so the collector works identically
// on both control planes and adds nothing to the engine's hot loop.

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Degradation aggregates graceful-degradation metrics from the fault event
// stream. The zero value is ready to use.
type Degradation struct {
	sim.BaseObserver

	// Open fault windows, keyed by the identity the recovery event carries.
	// Wear breaks are permanent — they are tallied, never opened.
	openLinks   map[[2]topology.NodeID]int64 // canonical (min,max) -> injection frame
	openNodes   map[topology.NodeID]int64
	openRegions map[int]int64

	jobsDegraded int // jobs completed while >=1 fault window open
	jobsHealthy  int
	lostDegraded int // jobs lost while >=1 fault window open
	lostHealthy  int

	framesDegraded int64
	framesHealthy  int64

	// recovery observes frames-from-injection-to-recovery, one sample per
	// recovered fault (transient links, crashed nodes, killed regions).
	recovery stats.Summary
	// staleness observes, per frame, how many consecutive frames the control
	// plane has been serving stale (last-known-good) tables because a region
	// was down. Healthy frames observe 0, so Mean() is the expected staleness
	// age of a served table and Max() the worst case.
	staleness stats.Summary
	staleRun  int64

	failovers    int
	adoptedPeak  int
	linksBroken  int
	faultsSeen   int
	faultsHealed int
}

func (d *Degradation) init() {
	if d.openLinks == nil {
		d.openLinks = make(map[[2]topology.NodeID]int64)
		d.openNodes = make(map[topology.NodeID]int64)
		d.openRegions = make(map[int]int64)
	}
}

// degraded reports whether at least one fault window is currently open.
func (d *Degradation) degraded() bool {
	return len(d.openLinks)+len(d.openNodes)+len(d.openRegions) > 0
}

func linkKey(a, b topology.NodeID) [2]topology.NodeID {
	if b < a {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// FaultInjected implements sim.Observer: it opens the fault's window (or
// tallies a permanent wear break).
func (d *Degradation) FaultInjected(e sim.FaultEvent) {
	d.init()
	d.faultsSeen++
	switch e.Kind {
	case faults.LinkDown:
		d.openLinks[linkKey(e.From, e.To)] = e.Frame
	case faults.LinkBreak:
		d.linksBroken++
	case faults.NodeCrash:
		d.openNodes[e.Node] = e.Frame
	case faults.RegionDown:
		d.openRegions[e.Shard] = e.Frame
	}
}

// FaultRecovered implements sim.Observer: it closes the matching window and
// records the observed time-to-recover.
func (d *Degradation) FaultRecovered(e sim.FaultEvent) {
	d.init()
	d.faultsHealed++
	var start int64
	var ok bool
	switch e.Kind {
	case faults.LinkUp:
		key := linkKey(e.From, e.To)
		start, ok = d.openLinks[key]
		delete(d.openLinks, key)
	case faults.NodeRestore:
		start, ok = d.openNodes[e.Node]
		delete(d.openNodes, e.Node)
	case faults.RegionUp:
		start, ok = d.openRegions[e.Shard]
		delete(d.openRegions, e.Shard)
	}
	if ok {
		d.recovery.Observe(float64(e.Frame - start))
	}
}

// RegionFailedOver implements sim.Observer.
func (d *Degradation) RegionFailedOver(sim.FailoverEvent) {
	d.failovers++
}

// JobCompleted implements sim.Observer: completions are attributed to the
// fault state at completion time.
func (d *Degradation) JobCompleted(sim.JobEvent) {
	if d.degraded() {
		d.jobsDegraded++
	} else {
		d.jobsHealthy++
	}
}

// JobLost implements sim.Observer.
func (d *Degradation) JobLost(sim.JobEvent) {
	if d.degraded() {
		d.lostDegraded++
	} else {
		d.lostHealthy++
	}
}

// FrameProcessed implements sim.Observer: it advances the degraded-time and
// staleness clocks by one frame.
func (d *Degradation) FrameProcessed(e sim.FrameEvent) {
	if d.degraded() {
		d.framesDegraded++
	} else {
		d.framesHealthy++
	}
	if len(d.openRegions) > 0 {
		d.staleRun++
	} else {
		d.staleRun = 0
	}
	d.staleness.Observe(float64(d.staleRun))
	if e.AdoptedNodes > d.adoptedPeak {
		d.adoptedPeak = e.AdoptedNodes
	}
}

// JobsDegraded and JobsHealthy return jobs completed while at least one
// fault window was open, and while none was.
func (d *Degradation) JobsDegraded() int { return d.jobsDegraded }
func (d *Degradation) JobsHealthy() int  { return d.jobsHealthy }

// LostDegraded returns jobs lost while at least one fault window was open.
func (d *Degradation) LostDegraded() int { return d.lostDegraded }

// FramesDegraded and FramesHealthy return the frame counts spent in each
// state.
func (d *Degradation) FramesDegraded() int64 { return d.framesDegraded }
func (d *Degradation) FramesHealthy() int64  { return d.framesHealthy }

// DegradedThroughput and HealthyThroughput return jobs completed per frame
// in each state (0 when the state never occurred). Their ratio is the
// headline graceful-degradation figure: how much of its healthy delivery
// rate the system keeps while faults are open.
func (d *Degradation) DegradedThroughput() float64 {
	if d.framesDegraded == 0 {
		return 0
	}
	return float64(d.jobsDegraded) / float64(d.framesDegraded)
}

// HealthyThroughput returns jobs completed per healthy frame.
func (d *Degradation) HealthyThroughput() float64 {
	if d.framesHealthy == 0 {
		return 0
	}
	return float64(d.jobsHealthy) / float64(d.framesHealthy)
}

// Retention returns DegradedThroughput / HealthyThroughput — the fraction of
// healthy delivery rate retained under faults (0 when either state is
// unobserved).
func (d *Degradation) Retention() float64 {
	h := d.HealthyThroughput()
	if h == 0 {
		return 0
	}
	return d.DegradedThroughput() / h
}

// Recovery returns the time-to-recover aggregate (frames from injection to
// the paired recovery event; one sample per recovered fault).
func (d *Degradation) Recovery() *stats.Summary { return &d.recovery }

// Staleness returns the per-frame table-staleness aggregate: each frame
// observes how many consecutive frames the control plane has been serving
// last-known-good tables (0 in healthy frames).
func (d *Degradation) Staleness() *stats.Summary { return &d.staleness }

// Failovers returns the number of region-failover adoptions observed.
func (d *Degradation) Failovers() int { return d.failovers }

// LinksBroken returns the number of permanent wear breaks observed.
func (d *Degradation) LinksBroken() int { return d.linksBroken }

// PeakAdoptedNodes returns the largest per-frame adopted-node gauge seen.
func (d *Degradation) PeakAdoptedNodes() int { return d.adoptedPeak }

// OpenWindows returns the number of fault windows still open (faults whose
// recovery never arrived before the run ended).
func (d *Degradation) OpenWindows() int {
	return len(d.openLinks) + len(d.openNodes) + len(d.openRegions)
}

// Table renders the collected degradation metrics.
func (d *Degradation) Table() *stats.Table {
	t := stats.NewTable("Graceful degradation", "metric", "value")
	t.AddRow("faults injected / recovered", fmt.Sprintf("%d/%d", d.faultsSeen, d.faultsHealed))
	t.AddRow("links broken by wear", d.linksBroken)
	t.AddRow("frames degraded / healthy", fmt.Sprintf("%d/%d", d.framesDegraded, d.framesHealthy))
	t.AddRow("jobs during faults", d.jobsDegraded)
	t.AddRow("jobs while healthy", d.jobsHealthy)
	t.AddRow("jobs lost during faults", d.lostDegraded)
	t.AddRow("degraded throughput [jobs/frame]", fmt.Sprintf("%.4f", d.DegradedThroughput()))
	t.AddRow("healthy throughput [jobs/frame]", fmt.Sprintf("%.4f", d.HealthyThroughput()))
	t.AddRow("throughput retention", fmt.Sprintf("%.3f", d.Retention()))
	if d.recovery.Count() > 0 {
		t.AddRow("time to recover [frames]", fmt.Sprintf("mean %.1f max %.0f", d.recovery.Mean(), d.recovery.Max()))
	}
	if d.staleness.Max() > 0 {
		t.AddRow("table staleness [frames]", fmt.Sprintf("mean %.2f max %.0f", d.staleness.Mean(), d.staleness.Max()))
	}
	if d.failovers > 0 {
		t.AddRow("region failovers", d.failovers)
		t.AddRow("peak adopted nodes", d.adoptedPeak)
	}
	if open := d.OpenWindows(); open > 0 {
		t.AddRow("windows still open at death", open)
	}
	return t
}
