package trace_test

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// runTraced runs the default scenario on a 4x4 mesh with the given observers
// attached.
func runTraced(t *testing.T, obs ...sim.Observer) sim.Result {
	t.Helper()
	cfg, err := sim.Default(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CollectNodeStats = true
	cfg.Observers = obs
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestObserversDoNotPerturbTheSimulation(t *testing.T) {
	bare := runTraced(t)
	traced := runTraced(t, &trace.BatterySeries{}, &trace.Throughput{}, &trace.LatencyHistogram{}, &trace.Timeline{})
	if bare.JobsCompleted != traced.JobsCompleted || bare.LifetimeCycles != traced.LifetimeCycles ||
		bare.Energy != traced.Energy || bare.Reason != traced.Reason || bare.Frames != traced.Frames {
		t.Errorf("attaching observers changed the result:\nbare:   %+v\ntraced: %+v", bare, traced)
	}
}

func TestThroughputMatchesResult(t *testing.T) {
	tp := &trace.Throughput{}
	res := runTraced(t, tp)
	if tp.Completed() != res.JobsCompleted {
		t.Errorf("throughput counted %d completions, result says %d", tp.Completed(), res.JobsCompleted)
	}
	frames := tp.Frames()
	if int64(len(frames)) != res.Frames+1 { // one per frame plus the end-of-run sample
		t.Errorf("throughput recorded %d samples, result says %d frames", len(frames), res.Frames)
	}
	last := frames[len(frames)-1]
	if last.Completed != res.JobsCompleted || last.Lost != res.JobsLost {
		t.Errorf("final frame (%+v) disagrees with result (%d completed, %d lost)",
			last, res.JobsCompleted, res.JobsLost)
	}
	deltaSum := 0
	for i, f := range frames {
		deltaSum += f.CompletedDelta
		if f.Completed < 0 || f.CompletedDelta < 0 {
			t.Fatalf("negative counts in frame %d: %+v", i, f)
		}
		if i > 0 && i < len(frames)-1 && f.Frame != frames[i-1].Frame+1 {
			t.Fatalf("frame numbering not contiguous at %d", i)
		}
	}
	if deltaSum != res.JobsCompleted {
		t.Errorf("per-frame deltas sum to %d, want %d", deltaSum, res.JobsCompleted)
	}
	if tp.Table().NumRows() != len(frames) {
		t.Error("Table row count mismatch")
	}
}

func TestBatterySeriesDischarges(t *testing.T) {
	bs := &trace.BatterySeries{}
	res := runTraced(t, bs)
	frames := bs.Frames()
	if len(frames) == 0 {
		t.Fatal("no battery samples recorded")
	}
	first, last := frames[0], frames[len(frames)-1]
	if first.Sampled != res.MeshNodes {
		t.Errorf("first frame sampled %d nodes, want %d", first.Sampled, res.MeshNodes)
	}
	if last.MeanRemainingPJ >= first.MeanRemainingPJ {
		t.Errorf("fleet did not discharge: first mean %.1f pJ, last mean %.1f pJ",
			first.MeanRemainingPJ, last.MeanRemainingPJ)
	}
	for i, f := range frames {
		if f.MinRemainingPJ > f.MeanRemainingPJ+1e-9 {
			t.Fatalf("frame %d: min %.1f above mean %.1f", i, f.MinRemainingPJ, f.MeanRemainingPJ)
		}
		if f.MeanFraction < 0 || f.MeanFraction > 1 {
			t.Fatalf("frame %d: fraction %.3f out of range", i, f.MeanFraction)
		}
	}
	if bs.Table().NumRows() != len(frames) {
		t.Error("Table row count mismatch")
	}
	if pts := bs.Series().Points; len(pts) != len(frames) {
		t.Error("Series point count mismatch")
	}
}

func TestLatencyHistogram(t *testing.T) {
	h := &trace.LatencyHistogram{}
	res := runTraced(t, h)
	if len(h.Latencies()) != res.JobsCompleted {
		t.Fatalf("histogram holds %d latencies, want %d", len(h.Latencies()), res.JobsCompleted)
	}
	if h.Min() <= 0 || h.Max() < h.Min() || h.Mean() < float64(h.Min()) || h.Mean() > float64(h.Max()) {
		t.Errorf("implausible latency stats: min %d, mean %.1f, max %d", h.Min(), h.Mean(), h.Max())
	}
	buckets := h.Buckets(8)
	count := 0
	for _, b := range buckets {
		count += b.Count
		if b.ToCycles <= b.FromCycles {
			t.Fatalf("empty-width bucket: %+v", b)
		}
	}
	if count != res.JobsCompleted {
		t.Errorf("buckets hold %d jobs, want %d", count, res.JobsCompleted)
	}
	if h.Table(8).NumRows() == 0 {
		t.Error("histogram table empty")
	}
	var empty trace.LatencyHistogram
	if empty.Buckets(4) != nil || empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestTimelineCSVIsDeterministic(t *testing.T) {
	tl1 := &trace.Timeline{}
	res := runTraced(t, tl1)
	tl2 := &trace.Timeline{}
	runTraced(t, tl2)
	csv1, csv2 := tl1.CSV(), tl2.CSV()
	if csv1 != csv2 {
		t.Fatal("two identical runs produced different timeline CSVs")
	}
	lines := strings.Split(strings.TrimSpace(csv1), "\n")
	if len(lines) != int(res.Frames)+2 { // header + one row per frame + end-of-run row
		t.Errorf("CSV has %d lines, want %d frames + header + final row", len(lines), res.Frames)
	}
	if !strings.HasPrefix(lines[0], "frame,cycle,jobs_completed") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	rows := tl1.Rows()
	last := rows[len(rows)-1]
	if last.JobsCompleted != res.JobsCompleted || last.JobsLost != res.JobsLost {
		t.Errorf("final timeline row %+v disagrees with result", last)
	}
	if last.DeadNodes > res.DeadNodes {
		t.Errorf("timeline counted %d dead nodes, result says %d", last.DeadNodes, res.DeadNodes)
	}
}

func TestNodeWearMatchesCollectedStats(t *testing.T) {
	w := &trace.NodeWear{}
	res := runTraced(t, w)
	for _, n := range res.Nodes {
		if got := w.Operations(n.Node); got != n.Operations {
			t.Errorf("node %d: observer counted %d ops, stats say %d", n.Node, got, n.Operations)
		}
		if got := w.Relays(n.Node); got != n.PacketsRelayed {
			t.Errorf("node %d: observer counted %d relays, stats say %d", n.Node, got, n.PacketsRelayed)
		}
		if _, died := w.DiedAt(n.Node); died != n.Dead {
			t.Errorf("node %d: observer death %v, stats say %v", n.Node, died, n.Dead)
		}
	}
}
