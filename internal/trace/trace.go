// Package trace provides composable sim.Observer implementations that turn
// the simulator's event stream into time-series and distribution data,
// rendered through internal/stats. Nothing here touches the engine's hot
// loop: every collector is an ordinary observer attached via
// sim.Config.Observers (or core.WithObservers / scenario specs), and several
// can be attached to the same run.
//
// All collectors are deterministic: for a given configuration the rendered
// tables and CSV output are byte-for-byte reproducible, which is what lets
// parallel experiment sweeps carry traces without giving up the
// element-for-element determinism guarantees of internal/runner.
package trace

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ---------------------------------------------------------------------------
// Battery time-series
// ---------------------------------------------------------------------------

// BatteryFrame is the aggregate battery state reported during one TDMA frame.
type BatteryFrame struct {
	Frame int64
	Now   int64
	// Sampled is the number of living nodes that reported this frame.
	Sampled int
	// MeanRemainingPJ and MinRemainingPJ aggregate the energy still stored
	// in the reporting nodes' batteries.
	MeanRemainingPJ float64
	MinRemainingPJ  float64
	// MeanFraction is the mean usable-charge estimate in [0,1].
	MeanFraction float64
	// MinLevel is the lowest quantised level any node reported.
	MinLevel int
}

// BatterySeries records one aggregate battery sample per TDMA frame — the
// fleet-wide discharge curve of a run. The zero value is ready to use.
type BatterySeries struct {
	sim.BaseObserver
	frames []BatteryFrame
	cur    BatteryFrame
	sumPJ  float64
	sumFr  float64
}

// BatterySampled implements sim.Observer.
func (b *BatterySeries) BatterySampled(e sim.BatteryEvent) {
	if b.cur.Sampled == 0 {
		b.cur.Frame, b.cur.Now = e.Frame, e.Now
		b.cur.MinRemainingPJ = e.RemainingPJ
		b.cur.MinLevel = e.Level
		b.sumPJ, b.sumFr = 0, 0
	}
	b.cur.Sampled++
	b.sumPJ += e.RemainingPJ
	b.sumFr += e.Fraction
	if e.RemainingPJ < b.cur.MinRemainingPJ {
		b.cur.MinRemainingPJ = e.RemainingPJ
	}
	if e.Level < b.cur.MinLevel {
		b.cur.MinLevel = e.Level
	}
}

// FrameProcessed implements sim.Observer: it closes the frame's aggregate.
// Frames during which no node reported (the system died in the upload phase)
// produce no sample.
func (b *BatterySeries) FrameProcessed(sim.FrameEvent) {
	if b.cur.Sampled == 0 {
		return
	}
	n := float64(b.cur.Sampled)
	b.cur.MeanRemainingPJ = b.sumPJ / n
	b.cur.MeanFraction = b.sumFr / n
	b.frames = append(b.frames, b.cur)
	b.cur = BatteryFrame{}
}

// Frames returns the recorded per-frame aggregates in frame order.
func (b *BatterySeries) Frames() []BatteryFrame { return b.frames }

// Table renders the series as a stats table.
func (b *BatterySeries) Table() *stats.Table {
	t := stats.NewTable("Battery time-series (per TDMA frame)",
		"frame", "cycle", "nodes reporting", "mean remaining [pJ]", "min remaining [pJ]", "mean level fraction", "min level")
	for _, f := range b.frames {
		t.AddRow(f.Frame, f.Now, f.Sampled,
			fmt.Sprintf("%.1f", f.MeanRemainingPJ), fmt.Sprintf("%.1f", f.MinRemainingPJ),
			fmt.Sprintf("%.3f", f.MeanFraction), f.MinLevel)
	}
	return t
}

// Series returns the mean-remaining-energy curve as a stats series (x =
// frame, y = mean remaining pJ), ready for charting.
func (b *BatterySeries) Series() *stats.Series {
	s := &stats.Series{Name: "mean remaining [pJ]"}
	for _, f := range b.frames {
		s.Add(float64(f.Frame), f.MeanRemainingPJ)
	}
	return s
}

// ---------------------------------------------------------------------------
// Per-frame throughput
// ---------------------------------------------------------------------------

// ThroughputFrame is the job-flow state at the end of one TDMA frame.
type ThroughputFrame struct {
	Frame int64
	Now   int64
	// Completed and Lost are cumulative counts at frame end.
	Completed int
	Lost      int
	// CompletedDelta is the number of jobs that finished during this frame.
	CompletedDelta int
	// JobsInFlight is the number of active jobs at frame end.
	JobsInFlight int
}

// Throughput records one job-flow sample per TDMA frame. The zero value is
// ready to use.
type Throughput struct {
	sim.BaseObserver
	completed int
	lost      int
	frames    []ThroughputFrame
}

// JobCompleted implements sim.Observer.
func (t *Throughput) JobCompleted(sim.JobEvent) { t.completed++ }

// JobLost implements sim.Observer.
func (t *Throughput) JobLost(sim.JobEvent) { t.lost++ }

// FrameProcessed implements sim.Observer.
func (t *Throughput) FrameProcessed(e sim.FrameEvent) {
	delta := t.completed
	if n := len(t.frames); n > 0 {
		delta -= t.frames[n-1].Completed
	}
	t.frames = append(t.frames, ThroughputFrame{
		Frame: e.Frame, Now: e.Now,
		Completed: t.completed, Lost: t.lost,
		CompletedDelta: delta, JobsInFlight: e.JobsInFlight,
	})
}

// RunFinished implements sim.Observer: jobs can complete or get lost between
// the last control frame and system death, so the series closes with one
// final sample carrying the true end-of-run counts.
func (t *Throughput) RunFinished(e sim.FinishEvent) {
	delta := t.completed
	if n := len(t.frames); n > 0 {
		delta -= t.frames[n-1].Completed
	}
	t.frames = append(t.frames, ThroughputFrame{
		Frame: e.Frame, Now: e.Now,
		Completed: t.completed, Lost: t.lost, CompletedDelta: delta,
	})
}

// Frames returns the recorded per-frame samples in frame order, closed by
// the end-of-run sample.
func (t *Throughput) Frames() []ThroughputFrame { return t.frames }

// Completed returns the cumulative completed-job count seen so far.
func (t *Throughput) Completed() int { return t.completed }

// Table renders the throughput series as a stats table.
func (t *Throughput) Table() *stats.Table {
	tbl := stats.NewTable("Per-frame throughput",
		"frame", "cycle", "jobs completed", "completed this frame", "jobs lost", "in flight")
	for _, f := range t.frames {
		tbl.AddRow(f.Frame, f.Now, f.Completed, f.CompletedDelta, f.Lost, f.JobsInFlight)
	}
	return tbl
}

// ---------------------------------------------------------------------------
// Job latency histogram
// ---------------------------------------------------------------------------

// LatencyBucket is one bin of the job-latency histogram.
type LatencyBucket struct {
	// FromCycles (inclusive) and ToCycles (exclusive, except the last
	// bucket) delimit the bin.
	FromCycles int64
	ToCycles   int64
	Count      int
}

// LatencyHistogram records the injection-to-completion latency of every
// finished job. The zero value is ready to use.
type LatencyHistogram struct {
	sim.BaseObserver
	injected  map[int]int64
	latencies []int64
}

// JobInjected implements sim.Observer.
func (h *LatencyHistogram) JobInjected(e sim.JobEvent) {
	if h.injected == nil {
		h.injected = make(map[int]int64)
	}
	h.injected[e.Job] = e.Now
}

// JobCompleted implements sim.Observer.
func (h *LatencyHistogram) JobCompleted(e sim.JobEvent) {
	if t0, ok := h.injected[e.Job]; ok {
		h.latencies = append(h.latencies, e.Now-t0)
		delete(h.injected, e.Job)
	}
}

// JobLost implements sim.Observer: a lost job never completes, so its
// injection record is dropped rather than left to accumulate (long degraded
// runs lose thousands of jobs).
func (h *LatencyHistogram) JobLost(e sim.JobEvent) {
	delete(h.injected, e.Job)
}

// Latencies returns every observed latency in completion order.
func (h *LatencyHistogram) Latencies() []int64 { return h.latencies }

// Mean returns the mean latency in cycles (0 with no observations).
func (h *LatencyHistogram) Mean() float64 {
	if len(h.latencies) == 0 {
		return 0
	}
	var sum int64
	for _, l := range h.latencies {
		sum += l
	}
	return float64(sum) / float64(len(h.latencies))
}

// Min and Max return the extreme latencies (0 with no observations).
func (h *LatencyHistogram) Min() int64 {
	if len(h.latencies) == 0 {
		return 0
	}
	min := h.latencies[0]
	for _, l := range h.latencies {
		if l < min {
			min = l
		}
	}
	return min
}

// Max returns the largest observed latency (0 with no observations).
func (h *LatencyHistogram) Max() int64 {
	if len(h.latencies) == 0 {
		return 0
	}
	max := h.latencies[0]
	for _, l := range h.latencies {
		if l > max {
			max = l
		}
	}
	return max
}

// Buckets bins the observations into the given number of equal-width
// buckets spanning [Min, Max].
func (h *LatencyHistogram) Buckets(n int) []LatencyBucket {
	if n < 1 {
		n = 1
	}
	if len(h.latencies) == 0 {
		return nil
	}
	lo, hi := h.Min(), h.Max()
	width := (hi - lo + int64(n)) / int64(n) // ceil so the max lands in the last bucket
	if width < 1 {
		width = 1
	}
	buckets := make([]LatencyBucket, n)
	for i := range buckets {
		buckets[i].FromCycles = lo + int64(i)*width
		buckets[i].ToCycles = lo + int64(i+1)*width
	}
	for _, l := range h.latencies {
		idx := int((l - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		buckets[idx].Count++
	}
	return buckets
}

// Table renders the histogram with the given bucket count.
func (h *LatencyHistogram) Table(buckets int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Job latency histogram (%d jobs, mean %.0f cycles)", len(h.latencies), h.Mean()),
		"latency [cycles]", "jobs")
	for _, b := range h.Buckets(buckets) {
		t.AddRow(fmt.Sprintf("%d..%d", b.FromCycles, b.ToCycles), b.Count)
	}
	return t
}

// ---------------------------------------------------------------------------
// Timeline: the combined per-frame CSV behind `etsim -trace`
// ---------------------------------------------------------------------------

// TimelineRow is one frame of the combined battery/throughput time-series.
type TimelineRow struct {
	Frame           int64
	Now             int64
	JobsCompleted   int
	JobsLost        int
	JobsInFlight    int
	DeadNodes       int
	MeanRemainingPJ float64
	MinRemainingPJ  float64
	MeanFraction    float64
}

// Timeline merges the battery and throughput series into one row per TDMA
// frame — the deterministic CSV written by `etsim -trace <file>`. It is a
// composition of the two collectors above: the events are forwarded to an
// inner BatterySeries and Throughput, and each frame's row is assembled from
// their state. The zero value is ready to use.
type Timeline struct {
	sim.BaseObserver
	battery BatterySeries
	jobs    Throughput
	dead    int

	rows []TimelineRow
}

// JobCompleted implements sim.Observer.
func (t *Timeline) JobCompleted(e sim.JobEvent) { t.jobs.JobCompleted(e) }

// JobLost implements sim.Observer.
func (t *Timeline) JobLost(e sim.JobEvent) { t.jobs.JobLost(e) }

// NodeDied implements sim.Observer.
func (t *Timeline) NodeDied(sim.NodeEvent) { t.dead++ }

// BatterySampled implements sim.Observer.
func (t *Timeline) BatterySampled(e sim.BatteryEvent) { t.battery.BatterySampled(e) }

// batteryColumns fills the row's battery columns from the latest closed
// battery frame, if any. Rows after the fleet's final report (a partial
// death frame, the end-of-run row) carry the last reported values: nodes
// report only during frames, and stored energy cannot recover afterwards.
func (t *Timeline) batteryColumns(row *TimelineRow) {
	frames := t.battery.Frames()
	if len(frames) == 0 {
		return
	}
	last := frames[len(frames)-1]
	row.MeanRemainingPJ = last.MeanRemainingPJ
	row.MinRemainingPJ = last.MinRemainingPJ
	row.MeanFraction = last.MeanFraction
}

// FrameProcessed implements sim.Observer: it closes one timeline row.
func (t *Timeline) FrameProcessed(e sim.FrameEvent) {
	t.battery.FrameProcessed(e)
	t.jobs.FrameProcessed(e)
	row := TimelineRow{
		Frame: e.Frame, Now: e.Now,
		JobsCompleted: t.jobs.completed, JobsLost: t.jobs.lost,
		JobsInFlight: e.JobsInFlight, DeadNodes: t.dead,
	}
	t.batteryColumns(&row)
	t.rows = append(t.rows, row)
}

// RunFinished implements sim.Observer: it closes the timeline with the true
// end-of-run state — jobs can complete or get lost between the last control
// frame and system death, and jobs still in flight at death stay stranded
// rather than vanishing from the series.
func (t *Timeline) RunFinished(e sim.FinishEvent) {
	t.jobs.RunFinished(e)
	row := TimelineRow{
		Frame: e.Frame, Now: e.Now,
		JobsCompleted: t.jobs.completed, JobsLost: t.jobs.lost,
		JobsInFlight: e.JobsInFlight, DeadNodes: t.dead,
	}
	t.batteryColumns(&row)
	t.rows = append(t.rows, row)
}

// Rows returns the recorded timeline in frame order, closed by the
// end-of-run row.
func (t *Timeline) Rows() []TimelineRow { return t.rows }

// Table renders the timeline as a stats table.
func (t *Timeline) Table() *stats.Table {
	tbl := stats.NewTable("",
		"frame", "cycle", "jobs_completed", "jobs_lost", "jobs_in_flight",
		"dead_nodes", "mean_battery_pj", "min_battery_pj", "mean_level_fraction")
	for _, r := range t.rows {
		tbl.AddRow(r.Frame, r.Now, r.JobsCompleted, r.JobsLost, r.JobsInFlight,
			r.DeadNodes, fmt.Sprintf("%.3f", r.MeanRemainingPJ),
			fmt.Sprintf("%.3f", r.MinRemainingPJ), fmt.Sprintf("%.4f", r.MeanFraction))
	}
	return tbl
}

// CSV renders the timeline as a CSV document (header + one row per frame).
func (t *Timeline) CSV() string { return t.Table().CSV() }

// ---------------------------------------------------------------------------
// Per-node wear
// ---------------------------------------------------------------------------

// NodeWear tallies per-node activity (operations, relays, deaths) from the
// event stream alone — the observer-side counterpart of
// Config.CollectNodeStats. The zero value is ready to use.
type NodeWear struct {
	sim.BaseObserver
	ops    map[topology.NodeID]int
	relays map[topology.NodeID]int
	died   map[topology.NodeID]int64 // death cycle
}

func (w *NodeWear) init() {
	if w.ops == nil {
		w.ops = make(map[topology.NodeID]int)
		w.relays = make(map[topology.NodeID]int)
		w.died = make(map[topology.NodeID]int64)
	}
}

// OperationStarted implements sim.Observer.
func (w *NodeWear) OperationStarted(e sim.OperationEvent) {
	w.init()
	w.ops[e.Node]++
}

// HopStarted implements sim.Observer.
func (w *NodeWear) HopStarted(e sim.HopEvent) {
	if e.Relayed {
		w.init()
		w.relays[e.From]++
	}
}

// NodeDied implements sim.Observer.
func (w *NodeWear) NodeDied(e sim.NodeEvent) {
	w.init()
	w.died[e.Node] = e.Now
}

// Operations returns the operation count tallied for a node.
func (w *NodeWear) Operations(id topology.NodeID) int { return w.ops[id] }

// Relays returns the relayed-packet count tallied for a node.
func (w *NodeWear) Relays(id topology.NodeID) int { return w.relays[id] }

// DiedAt returns the cycle at which a node died and whether it died at all.
func (w *NodeWear) DiedAt(id topology.NodeID) (int64, bool) {
	t, ok := w.died[id]
	return t, ok
}
