package trace_test

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// chromeDoc mirrors the Chrome trace-event JSON shape for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string           `json:"name"`
		Cat  string           `json:"cat"`
		Ph   string           `json:"ph"`
		PID  int              `json:"pid"`
		TID  int              `json:"tid"`
		TS   float64          `json:"ts"`
		Dur  float64          `json:"dur"`
		Args map[string]int64 `json:"args"`
	} `json:"traceEvents"`
}

func TestSpansRecordEnginePhases(t *testing.T) {
	rec := &trace.Spans{}
	res := runTraced(t, rec)
	if rec.Len() == 0 {
		t.Fatal("flight recorder captured no spans")
	}
	byName := map[string]int{}
	for _, sp := range rec.Spans() {
		byName[sp.Name]++
		if sp.Cat != "engine" {
			t.Fatalf("unexpected category %q for span %q", sp.Cat, sp.Name)
		}
		if sp.DurationNS < 0 || sp.StartNS < 0 {
			t.Fatalf("negative time in span %+v", sp)
		}
	}
	if byName["snapshot"] == 0 {
		t.Error("no snapshot spans")
	}
	if byName["schedule"] == 0 {
		t.Error("no schedule spans")
	}
	control := byName["control-full"] + byName["control-incremental"] + byName["control-idle"]
	if int64(control) > res.Frames || control == 0 {
		t.Errorf("%d control spans for %d frames", control, res.Frames)
	}
	if byName["control-full"] != res.FullRecomputes {
		t.Errorf("control-full spans = %d, want %d", byName["control-full"], res.FullRecomputes)
	}
}

func TestSpansDoNotPerturbTheSimulation(t *testing.T) {
	bare := runTraced(t)
	recorded := runTraced(t, &trace.Spans{})
	if bare.JobsCompleted != recorded.JobsCompleted || bare.LifetimeCycles != recorded.LifetimeCycles ||
		bare.Energy != recorded.Energy || bare.Frames != recorded.Frames {
		t.Errorf("flight recorder changed the result:\nbare:     %+v\nrecorded: %+v", bare, recorded)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	rec := &trace.Spans{}
	res := runTraced(t, rec)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChromeTrace produced invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	frameRe := regexp.MustCompile(`^frame \d+$`)
	frames := 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete events (X)", e.Name, e.Ph)
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Fatalf("negative timestamp in %+v", e)
		}
		if frameRe.MatchString(e.Name) {
			frames++
			if e.TID != 0 {
				t.Fatalf("frame container %q on tid %d, want 0", e.Name, e.TID)
			}
		}
	}
	// One synthesized container per frame that reached the snapshot phase.
	if frames == 0 || int64(frames) > res.Frames {
		t.Errorf("%d frame containers for %d frames", frames, res.Frames)
	}
}

func TestSpansCellObserver(t *testing.T) {
	rec := &trace.Spans{}
	cell := rec.CellObserver()
	epoch := time.Now()
	cell(0, 1, epoch, 5*time.Millisecond)
	cell(7, 0, epoch.Add(2*time.Millisecond), time.Millisecond)
	cell(3, 0, epoch.Add(-time.Millisecond), time.Millisecond) // earlier than the anchor: clamped
	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "cell 0" || spans[0].Cat != "runner" || spans[0].TID != 101 || spans[0].Frame != -1 {
		t.Errorf("cell span = %+v", spans[0])
	}
	if spans[1].StartNS != (2 * time.Millisecond).Nanoseconds() {
		t.Errorf("second span start = %d, want 2ms after anchor", spans[1].StartNS)
	}
	if spans[2].StartNS != 0 {
		t.Errorf("pre-anchor span start = %d, want clamped to 0", spans[2].StartNS)
	}

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("cell-only trace has %d events, want 3 (no frame containers)", len(doc.TraceEvents))
	}
}

func TestEngineMetricsFeedsRegistry(t *testing.T) {
	var before bytes.Buffer
	if err := metrics.Default().WritePrometheus(&before); err != nil {
		t.Fatal(err)
	}
	countRe := regexp.MustCompile(`(?m)^engine_phase_snapshot_seconds_count (\d+)$`)
	m := countRe.FindSubmatch(before.Bytes())
	if m == nil {
		t.Fatal("engine_phase_snapshot_seconds family missing from the default registry")
	}

	res := runTraced(t, trace.EngineMetrics{})

	var after bytes.Buffer
	if err := metrics.Default().WritePrometheus(&after); err != nil {
		t.Fatal(err)
	}
	m2 := countRe.FindSubmatch(after.Bytes())
	if m2 == nil {
		t.Fatal("engine_phase_snapshot_seconds family disappeared")
	}
	a, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := strconv.ParseInt(string(m2[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The registry is process-global and other tests may run sims too, so
	// assert growth by at least this run's frames, not an exact value.
	if b-a < res.Frames {
		t.Errorf("snapshot histogram grew by %d, want >= %d (frames of this run)", b-a, res.Frames)
	}
}
