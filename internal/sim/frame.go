package sim

import (
	"errors"

	"repro/internal/battery"
	"repro/internal/routing"
	"repro/internal/tdma"
	"repro/internal/topology"
)

// processFrame executes one TDMA control frame at the current cycle: nodes
// upload their status, the active controller re-runs the routing algorithm if
// the reported information changed, and new routing tables are downloaded.
// All accounting flows through the observer event stream: every return path
// emits a FrameProcessed event carrying whatever energy was actually charged
// up to that point, so partial frames (the system dying mid-frame) are
// accounted exactly like the former inline counters did.
func (s *Simulator) processFrame() {
	if s.dead {
		return
	}
	s.frameCount++
	frame := FrameEvent{Now: s.now, Frame: s.frameCount}

	uploadPJ := s.cfg.TDMA.UploadEnergyPerNodePJ()
	for _, n := range s.nodes {
		if n.dead {
			continue
		}
		s.restNode(n)
		if uploadPJ > 0 {
			if !s.drawNode(n, uploadPJ) {
				continue
			}
			n.ctrlPJ += uploadPJ
			frame.UploadPJ += uploadPJ
		}
	}
	if s.dead {
		s.emitFrameProcessed(frame)
		return
	}

	snapshot := s.buildSnapshot()
	for id, st := range snapshot.Status {
		if st.Deadlocked && (s.lastSnapshot == nil || !s.lastSnapshot.Status[id].Deadlocked) {
			frame.NewDeadlockReports++
		}
	}

	changed := s.stateChanged(snapshot)

	// Controller energy: bookkeeping every frame, plus the routing
	// computation and the table download when the state changed.
	k := s.graph.NodeCount()
	frame.ControllerPJ = s.cfg.TDMA.ControllerFrameEnergyPJ(s.cfg.ControllerPower, k, changed)
	aliveCount := 0
	for _, n := range s.nodes {
		if !n.dead {
			aliveCount++
		}
	}
	frame.AliveNodes = aliveCount
	if changed {
		frame.DownloadPJ = s.cfg.TDMA.DownloadEnergyPerNodePJ() * float64(aliveCount)
	}
	if err := s.pool.ServeFrame(frame.ControllerPJ+frame.DownloadPJ, 0); err != nil {
		if errors.Is(err, tdma.ErrAllControllersDead) && s.cfg.ControllerBattery != nil {
			s.emitFrameProcessed(frame)
			s.finish(DeathControllersDead)
			return
		}
	}
	s.pool.RestAll(s.cfg.TDMA.FramePeriodCycles)

	if changed || s.tables == nil {
		prev := s.tables
		plan := routing.Compute(s.cfg.Algorithm, snapshot, s.destinations, prev)
		s.tables = plan.Tables
		s.lastSnapshot = snapshot
		frame.Recomputed = true
		// Give blocked jobs a chance to re-resolve against the new tables.
		for _, j := range s.jobs {
			switch j.phase {
			case phaseWaitingRoute, phaseWaitingBuffer:
				j.phase = phaseRoute
			}
		}
	}
	frame.JobsInFlight = len(s.jobs)
	s.emitFrameProcessed(frame)
	if s.moduleExtinct() {
		s.finish(DeathModuleExtinct)
	}
}

// buildSnapshot collects the per-node status reported during this frame's
// upload phase, emitting one BatterySampled event per living node when
// external observers are attached.
func (s *Simulator) buildSnapshot() *routing.SystemState {
	snapshot := &routing.SystemState{
		Graph:  s.graph,
		Levels: s.cfg.BatteryLevels,
		Status: make(map[topology.NodeID]routing.NodeStatus, len(s.nodes)),
	}
	threshold := int64(s.cfg.TDMA.DeadlockThresholdFrames) * s.cfg.TDMA.FramePeriodCycles
	blocked := make(map[topology.NodeID]bool)
	for _, j := range s.jobs {
		if j.blockedAt >= 0 && s.now-j.blockedAt >= threshold {
			blocked[j.at] = true
		}
	}
	sampling := len(s.observers) > 0
	for _, n := range s.nodes {
		if n.dead {
			snapshot.Status[n.id] = routing.NodeStatus{Alive: false}
			continue
		}
		s.restNode(n)
		level := battery.Level(n.battery, s.cfg.BatteryLevels)
		snapshot.Status[n.id] = routing.NodeStatus{
			Alive:        true,
			BatteryLevel: level,
			Deadlocked:   blocked[n.id],
		}
		if sampling {
			s.emitBatterySampled(BatteryEvent{
				Now:         s.now,
				Frame:       s.frameCount,
				Node:        n.id,
				Level:       level,
				Levels:      s.cfg.BatteryLevels,
				RemainingPJ: n.battery.RemainingPJ(),
				Fraction:    n.battery.LevelFraction(),
			})
		}
	}
	return snapshot
}

// stateChanged reports whether the newly reported snapshot differs from the
// previous one in any way the routing algorithm cares about.
func (s *Simulator) stateChanged(snapshot *routing.SystemState) bool {
	if s.lastSnapshot == nil {
		return true
	}
	needLevels := s.cfg.Algorithm.NeedsBatteryInfo()
	for id, st := range snapshot.Status {
		prev := s.lastSnapshot.Status[id]
		if st.Alive != prev.Alive || st.Deadlocked != prev.Deadlocked {
			return true
		}
		if needLevels && st.BatteryLevel != prev.BatteryLevel {
			return true
		}
	}
	return false
}
