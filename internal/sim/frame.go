package sim

import (
	"repro/internal/battery"
	"repro/internal/routing"
)

// processFrame executes one TDMA control frame at the current cycle: nodes
// upload their status, then the control plane adopts the snapshot, re-runs
// the routing algorithm where the reported information changed, and downloads
// new routing tables.
// All accounting flows through the observer event stream: every return path
// emits a FrameProcessed event carrying whatever energy was actually charged
// up to that point, so partial frames (the system dying mid-frame) are
// accounted exactly like the former inline counters did.
func (s *Simulator) processFrame() {
	if s.dead {
		return
	}
	s.frameCount++
	frame := FrameEvent{Now: s.now, Frame: s.frameCount}

	// The span clock is live only when a PhaseObserver is attached; every
	// timed section below is gated on this one bool, so an uninstrumented
	// frame performs no clock reads. The measurements are observational
	// only — nothing here feeds back into scheduling or accounting.
	timing := s.timing()
	var mark int64
	if timing {
		mark = s.beginFrameSpans()
		defer func() { s.lastFrameEndNS = s.spanNow() }()
	}

	if s.faultRuntime != nil {
		// Fault transitions land at the frame boundary, before the upload
		// phase, so the snapshot below already reflects them (crashed nodes
		// report nothing; link changes bump the topology epoch).
		s.applyFaults()
		if timing {
			end := s.spanNow()
			s.emitPhaseSpan(PhaseFaults, mark, end)
			mark = end
		}
		if s.dead {
			s.emitFrameProcessed(frame)
			return
		}
	}

	uploadPJ := s.cfg.TDMA.UploadEnergyPerNodePJ()
	for _, n := range s.nodes {
		if n.down() {
			continue
		}
		s.restNode(n)
		if uploadPJ > 0 {
			if !s.drawNode(n, uploadPJ) {
				continue
			}
			n.ctrlPJ += uploadPJ
			frame.UploadPJ += uploadPJ
		}
	}
	if s.dead {
		if timing {
			s.emitPhaseSpan(PhaseSnapshot, mark, s.spanNow())
		}
		s.emitFrameProcessed(frame)
		return
	}

	snapshot := s.buildSnapshot()
	aliveCount := 0
	for _, n := range s.nodes {
		if !n.down() {
			aliveCount++
		}
	}
	frame.AliveNodes = aliveCount
	var fullBefore, incrBefore int
	if timing {
		end := s.spanNow()
		s.emitPhaseSpan(PhaseSnapshot, mark, end)
		mark = end
		// RecomputeSplit is a read-only cumulative counter pair; sampling it
		// around the Frame call classifies this frame's control phase as
		// full, incremental, or idle.
		fullBefore, incrBefore = s.plane.RecomputeSplit()
	}

	rep := s.plane.Frame(s.frameCount, aliveCount, snapshot)
	if timing {
		end := s.spanNow()
		fullAfter, incrAfter := s.plane.RecomputeSplit()
		s.emitPhaseSpan(controlPhase(fullBefore, incrBefore, fullAfter, incrAfter), mark, end)
	}
	frame.ControllerPJ = rep.ControllerPJ
	frame.DownloadPJ = rep.DownloadPJ
	frame.NewDeadlockReports = rep.NewDeadlockReports
	frame.Recomputed = rep.Recomputed
	frame.ShardRecomputes = rep.ShardRecomputes
	frame.AdoptedNodes = rep.Adopted
	for _, f := range rep.Failovers {
		s.emitRegionFailedOver(FailoverEvent{
			Now: s.now, Frame: s.frameCount,
			From: f.From, To: f.To, Home: f.Home, Nodes: f.Nodes,
		})
	}
	if rep.RetainedSnapshot {
		// The plane retained the snapshot buffer just handed over as its
		// reference state; the next frame's report goes into the other buffer.
		s.snapFlip ^= 1
	}
	if rep.ControllersDead {
		s.emitFrameProcessed(frame)
		s.finish(DeathControllersDead)
		return
	}

	if rep.Recomputed {
		// Give blocked jobs a chance to re-resolve against the new tables.
		for _, j := range s.jobs {
			switch j.phase {
			case phaseWaitingRoute, phaseWaitingBuffer:
				j.phase = phaseRoute
			}
		}
	}
	frame.JobsInFlight = len(s.jobs)
	s.emitFrameProcessed(frame)
	if s.moduleExtinct() {
		s.finish(DeathModuleExtinct)
	}
}

// buildSnapshot collects the per-node status reported during this frame's
// upload phase, emitting one BatterySampled event per living node when
// external observers are attached. The snapshot is written into the
// simulator-owned buffer the control plane is not currently holding as its
// reference state (processFrame flips the two when the plane reports the
// snapshot adopted), so steady-state frames allocate nothing.
func (s *Simulator) buildSnapshot() *routing.SystemState {
	snapshot := &s.snaps[s.snapFlip]
	snapshot.Graph = s.graph
	snapshot.Levels = s.cfg.BatteryLevels
	snapshot.TopologyEpoch = s.topoEpoch
	k := len(s.nodes)
	if cap(snapshot.Status) < k {
		snapshot.Status = make([]routing.NodeStatus, k)
	}
	snapshot.Status = snapshot.Status[:k]
	if s.blocked == nil {
		s.blocked = make([]bool, k)
	}
	for i := range s.blocked {
		s.blocked[i] = false
	}
	threshold := int64(s.cfg.TDMA.DeadlockThresholdFrames) * s.cfg.TDMA.FramePeriodCycles
	for _, j := range s.jobs {
		if j.blockedAt >= 0 && s.now-j.blockedAt >= threshold {
			s.blocked[j.at] = true
		}
	}
	sampling := len(s.observers) > 0
	for _, n := range s.nodes {
		if n.down() {
			// A crashed node reports nothing, exactly like a dead one; the
			// plane routes around it until the crash window closes.
			snapshot.Status[n.id] = routing.NodeStatus{Alive: false}
			continue
		}
		s.restNode(n)
		level := battery.Level(n.battery, s.cfg.BatteryLevels)
		snapshot.Status[n.id] = routing.NodeStatus{
			Alive:        true,
			BatteryLevel: level,
			Deadlocked:   s.blocked[n.id],
		}
		if sampling {
			s.emitBatterySampled(BatteryEvent{
				Now:         s.now,
				Frame:       s.frameCount,
				Node:        n.id,
				Level:       level,
				Levels:      s.cfg.BatteryLevels,
				RemainingPJ: n.battery.RemainingPJ(),
				Fraction:    n.battery.LevelFraction(),
			})
		}
	}
	return snapshot
}
