package sim

import (
	"errors"

	"repro/internal/battery"
	"repro/internal/routing"
	"repro/internal/tdma"
)

// processFrame executes one TDMA control frame at the current cycle: nodes
// upload their status, the active controller re-runs the routing algorithm if
// the reported information changed, and new routing tables are downloaded.
// All accounting flows through the observer event stream: every return path
// emits a FrameProcessed event carrying whatever energy was actually charged
// up to that point, so partial frames (the system dying mid-frame) are
// accounted exactly like the former inline counters did.
func (s *Simulator) processFrame() {
	if s.dead {
		return
	}
	s.frameCount++
	frame := FrameEvent{Now: s.now, Frame: s.frameCount}

	uploadPJ := s.cfg.TDMA.UploadEnergyPerNodePJ()
	for _, n := range s.nodes {
		if n.dead {
			continue
		}
		s.restNode(n)
		if uploadPJ > 0 {
			if !s.drawNode(n, uploadPJ) {
				continue
			}
			n.ctrlPJ += uploadPJ
			frame.UploadPJ += uploadPJ
		}
	}
	if s.dead {
		s.emitFrameProcessed(frame)
		return
	}

	snapshot := s.buildSnapshot()
	for id, st := range snapshot.Status {
		if st.Deadlocked && (s.lastSnapshot == nil || !s.lastSnapshot.Status[id].Deadlocked) {
			frame.NewDeadlockReports++
		}
	}

	changed := s.stateChanged(snapshot)

	// Controller energy: bookkeeping every frame, plus the routing
	// computation and the table download when the state changed.
	k := s.graph.NodeCount()
	frame.ControllerPJ = s.cfg.TDMA.ControllerFrameEnergyPJ(s.cfg.ControllerPower, k, changed)
	aliveCount := 0
	for _, n := range s.nodes {
		if !n.dead {
			aliveCount++
		}
	}
	frame.AliveNodes = aliveCount
	if changed {
		frame.DownloadPJ = s.cfg.TDMA.DownloadEnergyPerNodePJ() * float64(aliveCount)
	}
	if err := s.pool.ServeFrame(frame.ControllerPJ+frame.DownloadPJ, 0); err != nil {
		if errors.Is(err, tdma.ErrAllControllersDead) && s.cfg.ControllerBattery != nil {
			s.emitFrameProcessed(frame)
			s.finish(DeathControllersDead)
			return
		}
	}
	s.pool.RestAll(s.cfg.TDMA.FramePeriodCycles)

	if changed || s.tables == nil {
		prev := s.tables
		plan := routing.ComputeInto(&s.ws, s.cfg.Algorithm, snapshot, s.destinations, prev)
		s.tables = plan.Tables
		// The snapshot buffer just filled becomes the reference; the next
		// frame's report goes into the other buffer.
		s.lastSnapshot = snapshot
		s.snapFlip ^= 1
		frame.Recomputed = true
		// Give blocked jobs a chance to re-resolve against the new tables.
		for _, j := range s.jobs {
			switch j.phase {
			case phaseWaitingRoute, phaseWaitingBuffer:
				j.phase = phaseRoute
			}
		}
	}
	frame.JobsInFlight = len(s.jobs)
	s.emitFrameProcessed(frame)
	if s.moduleExtinct() {
		s.finish(DeathModuleExtinct)
	}
}

// buildSnapshot collects the per-node status reported during this frame's
// upload phase, emitting one BatterySampled event per living node when
// external observers are attached. The snapshot is written into the
// simulator-owned buffer that is not currently serving as lastSnapshot
// (processFrame flips the two when the controller adopts a snapshot), so
// steady-state frames allocate nothing.
func (s *Simulator) buildSnapshot() *routing.SystemState {
	snapshot := &s.snaps[s.snapFlip]
	snapshot.Graph = s.graph
	snapshot.Levels = s.cfg.BatteryLevels
	k := len(s.nodes)
	if cap(snapshot.Status) < k {
		snapshot.Status = make([]routing.NodeStatus, k)
	}
	snapshot.Status = snapshot.Status[:k]
	if s.blocked == nil {
		s.blocked = make([]bool, k)
	}
	for i := range s.blocked {
		s.blocked[i] = false
	}
	threshold := int64(s.cfg.TDMA.DeadlockThresholdFrames) * s.cfg.TDMA.FramePeriodCycles
	for _, j := range s.jobs {
		if j.blockedAt >= 0 && s.now-j.blockedAt >= threshold {
			s.blocked[j.at] = true
		}
	}
	sampling := len(s.observers) > 0
	for _, n := range s.nodes {
		if n.dead {
			snapshot.Status[n.id] = routing.NodeStatus{Alive: false}
			continue
		}
		s.restNode(n)
		level := battery.Level(n.battery, s.cfg.BatteryLevels)
		snapshot.Status[n.id] = routing.NodeStatus{
			Alive:        true,
			BatteryLevel: level,
			Deadlocked:   s.blocked[n.id],
		}
		if sampling {
			s.emitBatterySampled(BatteryEvent{
				Now:         s.now,
				Frame:       s.frameCount,
				Node:        n.id,
				Level:       level,
				Levels:      s.cfg.BatteryLevels,
				RemainingPJ: n.battery.RemainingPJ(),
				Fraction:    n.battery.LevelFraction(),
			})
		}
	}
	return snapshot
}

// stateChanged reports whether the newly reported snapshot differs from the
// previous one in any way the routing algorithm cares about. Both snapshots
// are dense slices over the same node set, so this is a linear compare.
func (s *Simulator) stateChanged(snapshot *routing.SystemState) bool {
	if s.lastSnapshot == nil || len(s.lastSnapshot.Status) != len(snapshot.Status) {
		return true
	}
	needLevels := s.cfg.Algorithm.NeedsBatteryInfo()
	for id, st := range snapshot.Status {
		prev := s.lastSnapshot.Status[id]
		if st.Alive != prev.Alive || st.Deadlocked != prev.Deadlocked {
			return true
		}
		if needLevels && st.BatteryLevel != prev.BatteryLevel {
			return true
		}
	}
	return false
}
