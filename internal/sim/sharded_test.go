package sim

import (
	"testing"

	"repro/internal/battery"
	"repro/internal/controlplane"
)

// sharded mutates a default config onto the sharded control plane.
func sharded(shards, staleness int) func(*Config) {
	return func(c *Config) {
		c.Control = controlplane.Config{Kind: controlplane.KindSharded, Shards: shards, StalenessFrames: staleness}
	}
}

func TestShardedSimulationRunsAndReportsShards(t *testing.T) {
	res := run(t, 6, sharded(4, 8))
	if res.ControlPlane != "sharded" {
		t.Fatalf("ControlPlane = %q, want sharded", res.ControlPlane)
	}
	if len(res.ShardRecomputes) != 4 {
		t.Fatalf("ShardRecomputes has %d entries, want 4", len(res.ShardRecomputes))
	}
	if res.JobsCompleted == 0 {
		t.Fatal("sharded run completed no jobs")
	}
	total := 0
	for shard, n := range res.ShardRecomputes {
		if n == 0 {
			t.Errorf("shard %d never recomputed", shard)
		}
		total += n
	}
	// RoutingRecomputes counts frames with at least one regional recompute,
	// so it can never exceed the per-region total.
	if res.RoutingRecomputes > total {
		t.Errorf("RoutingRecomputes = %d exceeds the summed per-shard count %d", res.RoutingRecomputes, total)
	}
	// The centralized result shape is pinned elsewhere; here just assert the
	// centralized plane keeps the nil sentinel.
	if c := run(t, 4, nil); c.ControlPlane != "centralized" || c.ShardRecomputes != nil {
		t.Errorf("centralized result = (%q, %v), want (centralized, nil)", c.ControlPlane, c.ShardRecomputes)
	}
}

// TestShardedSimulationIsDeterministic: two identical sharded runs must agree
// exactly, per the control-plane determinism contract.
func TestShardedSimulationIsDeterministic(t *testing.T) {
	a := run(t, 5, sharded(3, 4))
	b := run(t, 5, sharded(3, 4))
	if a.JobsCompleted != b.JobsCompleted || a.LifetimeCycles != b.LifetimeCycles ||
		a.RoutingRecomputes != b.RoutingRecomputes || a.Energy != b.Energy {
		t.Fatalf("sharded runs diverged:\n%+v\n%+v", a, b)
	}
	for i := range a.ShardRecomputes {
		if a.ShardRecomputes[i] != b.ShardRecomputes[i] {
			t.Fatalf("shard %d recompute counts diverged: %d vs %d", i, a.ShardRecomputes[i], b.ShardRecomputes[i])
		}
	}
}

// TestShardedFiniteControllersDie covers the Sec 7.3 death under the sharded
// plane: with one battery-powered controller per region the run must end in
// DeathControllersDead once every region's pool is exhausted.
func TestShardedFiniteControllersDie(t *testing.T) {
	res := run(t, 4, func(c *Config) {
		sharded(2, 1)(c)
		c.Controllers = 1
		c.ControllerBattery = battery.DefaultThinFilmFactory()
	})
	if res.Reason != DeathControllersDead {
		t.Fatalf("reason = %s, want controllers-dead", res.Reason)
	}
	if len(res.ShardRecomputes) != 2 {
		t.Fatalf("ShardRecomputes has %d entries, want 2", len(res.ShardRecomputes))
	}
}

// TestShardedProcessFrameZeroAllocSteadyState extends the control-plane perf
// guard to the sharded plane: once every region's view, workspace and table
// buffers are warm, a full control frame — including regional recomputes —
// must not heap-allocate.
func TestShardedProcessFrameZeroAllocSteadyState(t *testing.T) {
	cfg, err := Default(6)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NodeBattery = battery.IdealFactory(battery.DefaultNominalPJ)
	sharded(3, 2)(&cfg)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	drain := func() {
		n := s.nodes[step%2]
		s.drawNode(n, n.battery.NominalPJ()*0.01)
		step++
	}
	// Warm up until every region has recomputed at least twice (frames with
	// battery drift recompute the draining nodes' regions every frame, the
	// others on exchange frames).
	warm := func() bool {
		for shard := 0; shard < s.plane.Shards(); shard++ {
			if s.plane.RecomputeCount(shard) < 2 {
				return false
			}
		}
		return true
	}
	for i := 0; !warm() && i < 100; i++ {
		drain()
		s.now += cfg.TDMA.FramePeriodCycles
		s.processFrame()
	}
	if s.dead || !warm() {
		t.Fatalf("warm-up did not reach steady state (dead=%v)", s.dead)
	}
	allocs := testing.AllocsPerRun(64, func() {
		drain()
		s.now += cfg.TDMA.FramePeriodCycles
		s.processFrame()
	})
	if allocs != 0 {
		t.Errorf("steady-state sharded processFrame allocated %.1f times per run, want 0", allocs)
	}
	if s.dead {
		t.Fatal("system died during the alloc guard; the guard must measure steady state")
	}
}
