package sim

import (
	"reflect"
	"testing"
)

// phaseRecorder is a Config.Observers entry that also implements
// PhaseObserver, turning the span clock on.
type phaseRecorder struct {
	BaseObserver
	spans []PhaseSpanEvent
}

func (r *phaseRecorder) PhaseSpan(e PhaseSpanEvent) { r.spans = append(r.spans, e) }

func (r *phaseRecorder) count(p Phase) int {
	n := 0
	for _, e := range r.spans {
		if e.Phase == p {
			n++
		}
	}
	return n
}

func TestPhaseSpansEmitted(t *testing.T) {
	rec := &phaseRecorder{}
	res := run(t, 4, func(c *Config) { c.Observers = append(c.Observers, rec) })
	if res.Frames == 0 {
		t.Fatal("run completed zero frames; test scenario too small")
	}
	if len(rec.spans) == 0 {
		t.Fatal("no phase spans emitted with a PhaseObserver attached")
	}

	// Control spans classify by the plane's cumulative recompute split;
	// the totals must agree exactly with the result counters.
	full, incr := rec.count(PhaseControlFull), rec.count(PhaseControlIncremental)
	if full != res.FullRecomputes {
		t.Errorf("control-full spans = %d, want %d (res.FullRecomputes)", full, res.FullRecomputes)
	}
	if incr != res.IncrementalRecomputes {
		t.Errorf("control-incremental spans = %d, want %d (res.IncrementalRecomputes)", incr, res.IncrementalRecomputes)
	}
	control := full + incr + rec.count(PhaseControlIdle)
	snapshots := rec.count(PhaseSnapshot)
	if control > snapshots {
		t.Errorf("%d control spans but %d snapshot spans; every control call follows a snapshot", control, snapshots)
	}
	if got := int64(snapshots); got > res.Frames {
		t.Errorf("%d snapshot spans for %d frames", got, res.Frames)
	}
	if rec.count(PhaseFaults) != 0 {
		t.Error("faults spans emitted without a fault schedule")
	}
	if rec.count(PhaseSchedule) == 0 {
		t.Error("no schedule spans emitted")
	}

	// Spans are well-formed on a single monotone clock starting at zero.
	prevStart := int64(0)
	for i, e := range rec.spans {
		if e.StartNS < 0 || e.DurationNS < 0 {
			t.Fatalf("span %d has negative time: %+v", i, e)
		}
		if e.StartNS < prevStart {
			t.Fatalf("span %d starts before its predecessor: %+v", i, e)
		}
		prevStart = e.StartNS
		if e.Frame < 1 || e.Frame > res.Frames {
			t.Fatalf("span %d has out-of-range frame: %+v", i, e)
		}
	}
}

// TestPhaseTimingDoesNotAffectResult pins the determinism contract: a run
// with the span clock live produces exactly the result of an uninstrumented
// run.
func TestPhaseTimingDoesNotAffectResult(t *testing.T) {
	bare := run(t, 4, nil)
	instrumented := run(t, 4, func(c *Config) { c.Observers = []Observer{&phaseRecorder{}} })
	if !reflect.DeepEqual(bare, instrumented) {
		t.Errorf("result differs with phase timing attached:\nbare:         %+v\ninstrumented: %+v", bare, instrumented)
	}
}

func TestPhaseStrings(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); int(p) < PhaseCount; p++ {
		name := p.String()
		if name == "unknown" || name == "" {
			t.Errorf("phase %d has no name", p)
		}
		if seen[name] {
			t.Errorf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
	if Phase(250).String() != "unknown" {
		t.Error("out-of-range phase should stringify as unknown")
	}
}
