package sim

import "repro/internal/faults"

// applyFaults runs the fault schedule's frame-boundary transitions: the
// Runtime has already applied link mutations to the engine's private graph
// clone when FrameStart returns; node and region transitions are applied here,
// where the batteries and the control plane live. Every transition is emitted
// on the observer stream.
func (s *Simulator) applyFaults() {
	for _, ev := range s.faultRuntime.FrameStart(s.frameCount) {
		switch ev.Kind {
		case faults.LinkDown, faults.LinkBreak, faults.LinkUp:
			// The graph changed shape; the next snapshot carries a new epoch so
			// the control planes recompute even though no node status changed.
			s.topoEpoch++
		case faults.NodeCrash:
			s.crashNode(s.nodes[ev.Node])
		case faults.NodeRestore:
			s.restoreNode(s.nodes[ev.Node])
		case faults.RegionDown:
			s.plane.FaultRegion(ev.Shard, true)
		case faults.RegionUp:
			s.plane.FaultRegion(ev.Shard, false)
		}
		fe := FaultEvent{
			Now: s.now, Frame: s.frameCount,
			Kind: ev.Kind, From: ev.From, To: ev.To, Node: ev.Node,
			Shard: ev.Shard, RecoverAt: ev.RecoverAt,
		}
		if ev.Kind.Recovery() {
			s.emitFaultRecovered(fe)
		} else {
			s.emitFaultInjected(fe)
		}
	}
}

// crashNode takes a running node down for a fault window: it stops computing,
// relaying and reporting, and any jobs it holds are lost exactly as for a
// battery death. Unlike killNode there is no extinction check — a module whose
// duplicates are merely crashed is not extinct, and jobs needing it block
// until the crash window closes (see resolveRoute).
func (s *Simulator) crashNode(n *nodeState) {
	if n.dead || n.crashed {
		return
	}
	n.crashed = true
	s.killScratch = append(s.killScratch[:0], s.jobs...)
	for _, j := range s.killScratch {
		if j.at == n.id || j.pendingNext == n.id {
			s.loseJob(j)
		}
	}
}

// restoreNode closes a node's crash window. Its battery rested through the
// outage (restNode catches up lazily from lastRest), so a restored node comes
// back with whatever charge it recovered while silent.
func (s *Simulator) restoreNode(n *nodeState) {
	if n.dead {
		return // the battery died during the outage; the crash became permanent
	}
	n.crashed = false
}
