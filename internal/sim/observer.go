package sim

import (
	"repro/internal/app"
	"repro/internal/faults"
	"repro/internal/topology"
)

// Observer receives the simulator's event stream. The engine itself keeps no
// metrics: every counter in Result is accumulated by the built-in result
// observer from exactly these events, so external observers (the composable
// ones in internal/trace, or user-supplied ones) see the same ground truth as
// the engine's own accounting, without touching the hot loop.
//
// Hooks are invoked synchronously from the single simulation goroutine, in
// deterministic order; implementations must not retain the event structs'
// backing simulator state and must not call back into the Simulator.
//
// Embed BaseObserver to implement only the hooks you care about.
type Observer interface {
	// JobInjected fires when a new job enters the system.
	JobInjected(e JobEvent)
	// JobCompleted fires when a job finishes its last operation.
	JobCompleted(e JobEvent)
	// JobLost fires when a job is abandoned because its node died.
	JobLost(e JobEvent)
	// HopStarted fires when a packet begins a hop on a data link.
	HopStarted(e HopEvent)
	// HopFinished fires when a packet arrives at the next node.
	HopFinished(e HopEvent)
	// OperationStarted fires when a node begins one act of computation.
	OperationStarted(e OperationEvent)
	// NodeDied fires when a node's battery reaches its cutoff condition.
	NodeDied(e NodeEvent)
	// EnergyAborted fires when a node browns out mid-operation: the energy
	// was drawn but produced no useful work.
	EnergyAborted(e EnergyEvent)
	// BatterySampled fires once per alive node per TDMA frame, when the node
	// reports its quantised battery level during its upload slot.
	BatterySampled(e BatteryEvent)
	// FaultInjected fires when the fault schedule takes a link, node or
	// controller region down at a frame boundary.
	FaultInjected(e FaultEvent)
	// FaultRecovered fires when a previously injected fault heals (the link
	// comes back, the node restores, the kill window closes).
	FaultRecovered(e FaultEvent)
	// RegionFailedOver fires when the sharded control plane hands a block of
	// nodes to a different serving region (in either direction: adoption when
	// a region goes fault-down, hand-back when it returns).
	RegionFailedOver(e FailoverEvent)
	// FrameProcessed fires at the end of every TDMA control frame, including
	// a partial frame the system died in.
	FrameProcessed(e FrameEvent)
	// RunFinished fires exactly once, strictly after every other event, when
	// the simulation terminates.
	RunFinished(e FinishEvent)
}

// PayloadOutcome reports the end-to-end AES verification of one completed
// job.
type PayloadOutcome int

// Possible payload outcomes of a completed job.
const (
	// PayloadNone means the job carried no payload (Config.Key was nil).
	PayloadNone PayloadOutcome = iota
	// PayloadVerified means the distributed ciphertext matched the
	// reference cipher.
	PayloadVerified
	// PayloadMismatch means the distributed ciphertext disagreed with the
	// reference cipher.
	PayloadMismatch
)

// JobEvent describes a job lifecycle transition.
type JobEvent struct {
	// Now is the simulated cycle at which the event fired.
	Now int64
	// Job is the injection-order job identifier.
	Job int
	// Node is where the event happened: the injection point, the node of
	// the final operation, or the node at which the job was stranded.
	Node topology.NodeID
	// Payload is the verification outcome (JobCompleted only).
	Payload PayloadOutcome
}

// HopEvent describes one packet hop on a data link.
type HopEvent struct {
	Now  int64
	Job  int
	From topology.NodeID
	To   topology.NodeID
	// EnergyPJ is the transmission energy drawn at the sender (HopStarted
	// only).
	EnergyPJ float64
	// Relayed is true when the sender forwarded a packet it did not
	// originate on this leg (hops beyond the first).
	Relayed bool
}

// OperationEvent describes one act of computation.
type OperationEvent struct {
	Now    int64
	Job    int
	Node   topology.NodeID
	Module app.ModuleID
	// OpIndex is the job's position in the application flow.
	OpIndex int
	// EnergyPJ is the computation energy drawn from the node's battery.
	EnergyPJ float64
}

// NodeEvent describes a node death.
type NodeEvent struct {
	Now  int64
	Node topology.NodeID
}

// EnergyEvent describes energy that was drawn but wasted (a brown-out).
type EnergyEvent struct {
	Now      int64
	Node     topology.NodeID
	EnergyPJ float64
}

// BatteryEvent is one node's battery report during a TDMA upload slot.
type BatteryEvent struct {
	Now   int64
	Frame int64
	Node  topology.NodeID
	// Level is the quantised level 0..Levels-1 reported to the controller.
	Level int
	// Levels is the quantisation level count.
	Levels int
	// RemainingPJ is the energy still stored in the battery.
	RemainingPJ float64
	// Fraction is the battery's own usable-charge estimate in [0,1].
	Fraction float64
}

// FaultEvent describes one fault transition applied at a frame boundary.
// Link events carry From/To (the undirected pair, From < To), node events
// carry Node, region events carry Shard.
type FaultEvent struct {
	Now   int64
	Frame int64
	// Kind is the transition (faults.LinkDown, faults.NodeCrash, ...).
	Kind faults.Kind
	From topology.NodeID
	To   topology.NodeID
	Node topology.NodeID
	// Shard is the controller region for region events.
	Shard int
	// RecoverAt is the frame the matching recovery is scheduled for
	// (injections only; 0 = permanent).
	RecoverAt int64
}

// FailoverEvent describes one block of nodes changing serving region under
// the sharded control plane.
type FailoverEvent struct {
	Now   int64
	Frame int64
	// From and To are the previous and new serving regions; Home is the
	// block's home region (To == Home when the block is handed back).
	From int
	To   int
	Home int
	// Nodes is the number of nodes in the block.
	Nodes int
}

// FrameEvent summarises one completed TDMA control frame.
type FrameEvent struct {
	Now   int64
	Frame int64
	// UploadPJ is the node energy actually charged for status uploads this
	// frame (nodes that browned out mid-upload are excluded).
	UploadPJ float64
	// DownloadPJ is the shared-medium energy spent downloading new tables.
	DownloadPJ float64
	// ControllerPJ is the energy consumed by the controller itself.
	ControllerPJ float64
	// Recomputed is true when any controller re-ran the routing algorithm.
	Recomputed bool
	// ShardRecomputes is the number of regional recomputations this frame
	// (1 for a centralized recompute, 0..Shards under the sharded plane).
	ShardRecomputes int
	// NewDeadlockReports counts deadlock notifications first uploaded this
	// frame.
	NewDeadlockReports int
	// AliveNodes is the number of living nodes after the upload phase.
	AliveNodes int
	// AdoptedNodes is the number of nodes currently served by a region other
	// than their home region (sharded failover; always 0 otherwise).
	AdoptedNodes int
	// JobsInFlight is the number of active jobs at frame end.
	JobsInFlight int
}

// FinishEvent describes the end of a run.
type FinishEvent struct {
	Now    int64
	Frame  int64
	Reason DeathReason
	// JobsInFlight is the number of jobs still active (stranded) at system
	// death.
	JobsInFlight int
}

// BaseObserver is a no-op Observer intended for embedding, so concrete
// observers only implement the hooks they need.
type BaseObserver struct{}

// JobInjected implements Observer.
func (BaseObserver) JobInjected(JobEvent) {}

// JobCompleted implements Observer.
func (BaseObserver) JobCompleted(JobEvent) {}

// JobLost implements Observer.
func (BaseObserver) JobLost(JobEvent) {}

// HopStarted implements Observer.
func (BaseObserver) HopStarted(HopEvent) {}

// HopFinished implements Observer.
func (BaseObserver) HopFinished(HopEvent) {}

// OperationStarted implements Observer.
func (BaseObserver) OperationStarted(OperationEvent) {}

// NodeDied implements Observer.
func (BaseObserver) NodeDied(NodeEvent) {}

// EnergyAborted implements Observer.
func (BaseObserver) EnergyAborted(EnergyEvent) {}

// BatterySampled implements Observer.
func (BaseObserver) BatterySampled(BatteryEvent) {}

// FaultInjected implements Observer.
func (BaseObserver) FaultInjected(FaultEvent) {}

// FaultRecovered implements Observer.
func (BaseObserver) FaultRecovered(FaultEvent) {}

// RegionFailedOver implements Observer.
func (BaseObserver) RegionFailedOver(FailoverEvent) {}

// FrameProcessed implements Observer.
func (BaseObserver) FrameProcessed(FrameEvent) {}

// RunFinished implements Observer.
func (BaseObserver) RunFinished(FinishEvent) {}

// resultObserver is the built-in default observer: it accumulates the event
// stream into the Result the engine previously mutated inline. It is always
// attached (directly, as a concrete field, so the common no-extra-observers
// case pays no interface dispatch on the hot paths).
type resultObserver struct {
	res *Result
}

var _ Observer = resultObserver{}

func (o resultObserver) JobInjected(JobEvent) {}

func (o resultObserver) JobCompleted(e JobEvent) {
	o.res.JobsCompleted++
	switch e.Payload {
	case PayloadVerified:
		o.res.PayloadJobsVerified++
	case PayloadMismatch:
		o.res.PayloadMismatches++
	}
}

func (o resultObserver) JobLost(JobEvent) { o.res.JobsLost++ }

func (o resultObserver) HopStarted(e HopEvent) { o.res.Energy.CommunicationPJ += e.EnergyPJ }

func (o resultObserver) HopFinished(HopEvent) {}

func (o resultObserver) OperationStarted(e OperationEvent) {
	o.res.Energy.ComputationPJ += e.EnergyPJ
}

func (o resultObserver) NodeDied(NodeEvent) { o.res.DeadNodes++ }

func (o resultObserver) EnergyAborted(e EnergyEvent) { o.res.Energy.AbortedPJ += e.EnergyPJ }

func (o resultObserver) BatterySampled(BatteryEvent) {}

func (o resultObserver) FaultInjected(e FaultEvent) {
	o.res.FaultsInjected++
	if e.Kind == faults.LinkBreak {
		o.res.LinksBroken++
	}
}

func (o resultObserver) FaultRecovered(FaultEvent) { o.res.FaultsRecovered++ }

func (o resultObserver) RegionFailedOver(FailoverEvent) { o.res.RegionFailovers++ }

func (o resultObserver) FrameProcessed(e FrameEvent) {
	o.res.Frames = e.Frame
	o.res.Energy.ControlUploadPJ += e.UploadPJ
	o.res.Energy.ControlDownloadPJ += e.DownloadPJ
	o.res.Energy.ControllerPJ += e.ControllerPJ
	o.res.DeadlockReports += e.NewDeadlockReports
	if e.AdoptedNodes > o.res.PeakAdoptedNodes {
		o.res.PeakAdoptedNodes = e.AdoptedNodes
	}
	if e.Recomputed {
		o.res.RoutingRecomputes++
	}
}

func (o resultObserver) RunFinished(e FinishEvent) {
	o.res.Reason = e.Reason
	o.res.LifetimeCycles = e.Now
	o.res.Frames = e.Frame
}

// --- event emission -------------------------------------------------------
//
// Each emit method forwards one event to the built-in accounting and then to
// the externally attached observers. With no external observers the range
// loops are over nil slices, so the hot loop costs exactly the inlined
// accounting it had before observers existed.

func (s *Simulator) emitJobInjected(e JobEvent) {
	s.acct.JobInjected(e)
	for _, o := range s.observers {
		o.JobInjected(e)
	}
}

func (s *Simulator) emitJobCompleted(e JobEvent) {
	s.acct.JobCompleted(e)
	for _, o := range s.observers {
		o.JobCompleted(e)
	}
}

func (s *Simulator) emitJobLost(e JobEvent) {
	s.acct.JobLost(e)
	for _, o := range s.observers {
		o.JobLost(e)
	}
}

func (s *Simulator) emitHopStarted(e HopEvent) {
	s.acct.HopStarted(e)
	for _, o := range s.observers {
		o.HopStarted(e)
	}
}

func (s *Simulator) emitHopFinished(e HopEvent) {
	s.acct.HopFinished(e)
	for _, o := range s.observers {
		o.HopFinished(e)
	}
}

func (s *Simulator) emitOperationStarted(e OperationEvent) {
	s.acct.OperationStarted(e)
	for _, o := range s.observers {
		o.OperationStarted(e)
	}
}

func (s *Simulator) emitNodeDied(e NodeEvent) {
	s.acct.NodeDied(e)
	for _, o := range s.observers {
		o.NodeDied(e)
	}
}

func (s *Simulator) emitEnergyAborted(e EnergyEvent) {
	s.acct.EnergyAborted(e)
	for _, o := range s.observers {
		o.EnergyAborted(e)
	}
}

func (s *Simulator) emitBatterySampled(e BatteryEvent) {
	for _, o := range s.observers {
		o.BatterySampled(e)
	}
}

func (s *Simulator) emitFaultInjected(e FaultEvent) {
	s.acct.FaultInjected(e)
	for _, o := range s.observers {
		o.FaultInjected(e)
	}
}

func (s *Simulator) emitFaultRecovered(e FaultEvent) {
	s.acct.FaultRecovered(e)
	for _, o := range s.observers {
		o.FaultRecovered(e)
	}
}

func (s *Simulator) emitRegionFailedOver(e FailoverEvent) {
	s.acct.RegionFailedOver(e)
	for _, o := range s.observers {
		o.RegionFailedOver(e)
	}
}

func (s *Simulator) emitFrameProcessed(e FrameEvent) {
	s.acct.FrameProcessed(e)
	for _, o := range s.observers {
		o.FrameProcessed(e)
	}
}

func (s *Simulator) emitRunFinished(e FinishEvent) {
	s.acct.RunFinished(e)
	for _, o := range s.observers {
		o.RunFinished(e)
	}
}
