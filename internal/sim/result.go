package sim

import (
	"fmt"

	"repro/internal/topology"
)

// DeathReason explains why a simulation ended.
type DeathReason string

// Possible termination reasons.
const (
	// DeathModuleExtinct means every duplicate of some module died — the
	// paper's "critical nodes become dead" condition.
	DeathModuleExtinct DeathReason = "module-extinct"
	// DeathControllersDead means every central controller exhausted its
	// battery (Sec 7.3).
	DeathControllersDead DeathReason = "controllers-dead"
	// DeathUnreachable means an in-flight job could no longer reach any
	// living duplicate of its next module (network partition).
	DeathUnreachable DeathReason = "module-unreachable"
	// DeathMaxCycles means the configured cycle budget ran out before the
	// system died.
	DeathMaxCycles DeathReason = "max-cycles"
	// DeathStalled means no job made progress for many consecutive frames,
	// typically because every in-flight job is stuck behind a deadlock the
	// recovery mechanism could not break.
	DeathStalled DeathReason = "stalled"
	// DeathCancelled means the caller cancelled the run (Config.Cancel
	// closed) before the system died on its own. A cancelled result is a
	// truncated prefix of the run and must never be treated — or cached — as
	// the run's outcome.
	DeathCancelled DeathReason = "cancelled"
)

// EnergyBreakdown accounts for every picojoule drawn during a run, split by
// purpose.
type EnergyBreakdown struct {
	// ComputationPJ is energy spent on acts of computation (E_i per op).
	ComputationPJ float64
	// CommunicationPJ is energy spent transmitting packets on data links.
	CommunicationPJ float64
	// ControlUploadPJ is node energy spent on TDMA status upload slots.
	ControlUploadPJ float64
	// ControlDownloadPJ is shared-medium energy spent downloading routing
	// updates to the nodes.
	ControlDownloadPJ float64
	// ControllerPJ is energy consumed by the central controllers themselves
	// (bookkeeping and routing computation).
	ControllerPJ float64
	// AbortedPJ is energy drawn by operations or transmissions that could not
	// complete because the node browned out partway through; it was consumed
	// but produced no useful work.
	AbortedPJ float64
	// WastedPJ is energy stranded in node batteries that reached their
	// cutoff voltage (plus energy left in batteries at system death).
	WastedPJ float64
}

// TotalConsumedPJ returns all energy actually drawn from batteries or the
// shared medium during the run (excluding stranded energy).
func (e EnergyBreakdown) TotalConsumedPJ() float64 {
	return e.ComputationPJ + e.CommunicationPJ + e.ControlUploadPJ + e.ControlDownloadPJ + e.ControllerPJ + e.AbortedPJ
}

// ControlExchangePJ is the energy spent exchanging control information on the
// shared medium, the quantity the paper reports as overhead percentage in
// Sec 7.1.
func (e EnergyBreakdown) ControlExchangePJ() float64 {
	return e.ControlUploadPJ + e.ControlDownloadPJ
}

// ControlOverheadFraction is ControlExchangePJ divided by the total energy
// consumption (excluding controller-internal energy, which Sec 7.1 treats as
// an infinite external source).
func (e EnergyBreakdown) ControlOverheadFraction() float64 {
	total := e.ComputationPJ + e.CommunicationPJ + e.ControlExchangePJ()
	if total == 0 {
		return 0
	}
	return e.ControlExchangePJ() / total
}

// NodeStats captures per-node accounting, enabled by Config.CollectNodeStats.
type NodeStats struct {
	Node            topology.NodeID
	Module          int
	Operations      int
	PacketsRelayed  int
	ComputationPJ   float64
	CommunicationPJ float64
	ControlPJ       float64
	Dead            bool
	DeliveredPJ     float64
	RemainingPJ     float64
}

// Result is the outcome of one simulation run.
type Result struct {
	// Algorithm and MeshNodes identify the scenario.
	Algorithm string
	MeshNodes int
	// ControlPlane names the controller architecture that ran the TDMA frames
	// ("centralized" or "sharded").
	ControlPlane string

	// JobsCompleted is the figure of merit: the number of jobs finished
	// before the system died.
	JobsCompleted int
	// JobsLost counts jobs abandoned because the node holding them died.
	JobsLost int
	// LifetimeCycles is the simulated time at system death.
	LifetimeCycles int64
	// Frames is the number of TDMA frames that elapsed.
	Frames int64
	// RoutingRecomputes counts how often the controller re-ran the routing
	// algorithm because the reported state changed (under the sharded control
	// plane: the number of frames in which at least one region recomputed).
	RoutingRecomputes int
	// ShardRecomputes holds each region's recompute count under the sharded
	// control plane (nil for the centralized one, whose count is
	// RoutingRecomputes).
	ShardRecomputes []int
	// FullRecomputes and IncrementalRecomputes split the recomputations by
	// phase-2 strategy: complete Floyd–Warshall passes vs incremental
	// dirty-set repairs (summed across regions under the sharded plane).
	// Both strategies produce byte-identical tables, so every other result
	// field is independent of the split.
	FullRecomputes        int
	IncrementalRecomputes int
	// DeadlockReports counts deadlock notifications uploaded to the
	// controller.
	DeadlockReports int
	// DeadNodes is the number of nodes whose batteries were exhausted.
	DeadNodes int
	// Reason explains the termination.
	Reason DeathReason

	// FaultsInjected and FaultsRecovered count fault-schedule transitions
	// applied during the run (Config.Faults); both are 0 without a schedule.
	FaultsInjected  int
	FaultsRecovered int
	// LinksBroken counts permanent wear breaks (a subset of FaultsInjected).
	LinksBroken int
	// RegionFailovers counts blocks of nodes changing serving region under
	// the sharded control plane (adoptions and hand-backs).
	RegionFailovers int
	// PeakAdoptedNodes is the largest number of nodes simultaneously served
	// by a non-home region during the run.
	PeakAdoptedNodes int

	// Energy is the full energy breakdown.
	Energy EnergyBreakdown

	// PayloadJobsVerified and PayloadMismatches report end-to-end AES
	// verification when Config.Key is set: every completed job's distributed
	// ciphertext is compared against the reference cipher.
	PayloadJobsVerified int
	PayloadMismatches   int

	// Nodes holds per-node statistics when enabled.
	Nodes []NodeStats
}

// String summarises the result in one line.
func (r Result) String() string {
	return fmt.Sprintf("%s on %d nodes: %d jobs completed (%d lost) in %d cycles, %s",
		r.Algorithm, r.MeshNodes, r.JobsCompleted, r.JobsLost, r.LifetimeCycles, r.Reason)
}
