package sim

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

// TestFaultFreeScheduleIsByteIdentical is the engine-level half of the PR's
// core promise: a schedule that can never fire (only a seed, no channels)
// must leave the simulator on the exact trajectory it had before the fault
// subsystem existed — every Result field identical, not statistically close.
func TestFaultFreeScheduleIsByteIdentical(t *testing.T) {
	cfg, err := Default(4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeded := cfg
	seeded.Faults = faults.Spec{Seed: 5}
	got, err := runOnce(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("seed-only schedule changed the run:\n%+v\nvs\n%+v", got, ref)
	}
	if got.FaultsInjected != 0 || got.FaultsRecovered != 0 || got.LinksBroken != 0 {
		t.Fatalf("fault counters nonzero without active channels: %+v", got)
	}
}

// TestEngineFaultDeterminism runs a chaotic configuration — all three
// stochastic channels live — twice from the same spec and demands identical
// results. The schedule is a pure function of (spec, seed) and the engine
// applies it at frame boundaries only, so there is nowhere for divergence to
// creep in.
func TestEngineFaultDeterminism(t *testing.T) {
	cfg := chaoticConfig(t)
	a, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.FaultsInjected == 0 || a.FaultsRecovered == 0 {
		t.Fatalf("chaotic config injected %d / recovered %d faults; the test exercises nothing",
			a.FaultsInjected, a.FaultsRecovered)
	}

	// A different seed must take a different trajectory (otherwise the seed
	// is not actually feeding the draws).
	other := cfg
	other.Faults.Seed++
	c, err := runOnce(other)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("changing the fault seed left the trajectory untouched")
	}
}

func runOnce(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}

// chaoticConfig is a 6x6 mesh with every stochastic fault channel enabled at
// rates high enough to fire within the run's lifetime.
func chaoticConfig(tb testing.TB) Config {
	cfg, err := Default(6)
	if err != nil {
		tb.Fatal(err)
	}
	cfg.Faults = faults.Spec{
		Seed:               7,
		LinkRate:           0.1,
		LinkRecoveryFrames: 6,
		NodeRate:           0.05,
		NodeRecoveryFrames: 10,
		WearMeanTraversals: 200,
	}
	return cfg
}

// BenchmarkFaultInjection measures the frame-boundary overhead of a live
// fault schedule against the bare simulator on the same mesh (compare with
// BenchmarkSimulatorRun/bare for the no-schedule baseline cost).
func BenchmarkFaultInjection(b *testing.B) {
	cfg := chaoticConfig(b)
	b.ReportAllocs()
	var injected int
	for i := 0; i < b.N; i++ {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		injected = s.Run().FaultsInjected
	}
	b.ReportMetric(float64(injected), "faults")
}
