package sim

import "time"

// Phase identifies one timed section of a TDMA control frame. The engine
// measures phases only when at least one PhaseObserver is attached
// (Config.Observers entries that also implement PhaseObserver); with none
// attached the frame loop performs no clock reads at all, so the disabled
// path costs a nil-slice length check per frame (pinned by
// BenchmarkMetrics/sim4x4 in internal/metrics).
type Phase uint8

const (
	// PhaseFaults is the fault-schedule application at the frame boundary
	// (only emitted when a fault schedule is active).
	PhaseFaults Phase = iota
	// PhaseSnapshot is the upload phase: per-node status collection and
	// snapshot construction.
	PhaseSnapshot
	// PhaseControlIdle is a control-plane Frame call that performed no
	// recompute (the plane retained its routing tables).
	PhaseControlIdle
	// PhaseControlFull is a control-plane Frame call that ran a full
	// recompute pass.
	PhaseControlFull
	// PhaseControlIncremental is a control-plane Frame call that repaired
	// tables through the incremental dirty-set path.
	PhaseControlIncremental
	// PhaseSchedule is the TDMA scheduling gap: everything between the end
	// of one control frame and the start of the next (job movement,
	// computation, timed completions).
	PhaseSchedule

	phaseCount
)

// PhaseCount is the number of distinct phases, for indexable per-phase
// aggregation (see trace.EngineMetrics).
const PhaseCount = int(phaseCount)

// String returns the stable lower-case phase name used in span names and
// metric families.
func (p Phase) String() string {
	switch p {
	case PhaseFaults:
		return "faults"
	case PhaseSnapshot:
		return "snapshot"
	case PhaseControlIdle:
		return "control-idle"
	case PhaseControlFull:
		return "control-full"
	case PhaseControlIncremental:
		return "control-incremental"
	case PhaseSchedule:
		return "schedule"
	}
	return "unknown"
}

// PhaseSpanEvent is one timed phase occurrence. StartNS and DurationNS are
// wall-clock nanoseconds on the run's private monotonic span clock, whose
// epoch is the first measurement of the run — so spans from one run form a
// self-consistent timeline starting near zero.
//
// Phase spans are observational only: they carry wall-clock durations that
// differ between runs, so they are delivered through the separate
// PhaseObserver interface and never feed back into the simulation, whose
// outputs remain byte-identical with or without span collection.
type PhaseSpanEvent struct {
	// Frame is the 1-based frame this span belongs to. PhaseSchedule spans
	// carry the frame they precede.
	Frame int64
	// Phase identifies the timed section.
	Phase Phase
	// StartNS is the span start on the run's span clock.
	StartNS int64
	// DurationNS is the measured wall-clock duration.
	DurationNS int64
}

// PhaseObserver receives wall-clock phase spans from the engine. It is
// deliberately not part of Observer (and not implemented by BaseObserver):
// attaching a plain Observer must not enable the timing instrumentation.
// An observer from Config.Observers that additionally implements
// PhaseObserver — such as trace.Spans or trace.EngineMetrics — turns the
// span clock on.
type PhaseObserver interface {
	PhaseSpan(e PhaseSpanEvent)
}

// timing reports whether the span clock is live for this run.
func (s *Simulator) timing() bool { return len(s.phaseObs) > 0 }

// spanNow returns nanoseconds since the run's span epoch, establishing the
// epoch on first use.
func (s *Simulator) spanNow() int64 {
	if s.spanEpoch.IsZero() {
		s.spanEpoch = time.Now()
		return 0
	}
	return time.Since(s.spanEpoch).Nanoseconds()
}

// emitPhaseSpan fans one span out to the attached phase observers.
func (s *Simulator) emitPhaseSpan(phase Phase, startNS, endNS int64) {
	e := PhaseSpanEvent{Frame: s.frameCount, Phase: phase, StartNS: startNS, DurationNS: endNS - startNS}
	for _, o := range s.phaseObs {
		o.PhaseSpan(e)
	}
}

// beginFrameSpans emits the PhaseSchedule span covering the gap since the
// previous frame ended (nothing before the first frame: the settle phase is
// not schedule time) and returns the current span clock reading, which is
// the start of the first in-frame phase.
func (s *Simulator) beginFrameSpans() int64 {
	now := s.spanNow()
	if s.lastFrameEndNS >= 0 {
		s.emitPhaseSpan(PhaseSchedule, s.lastFrameEndNS, now)
	}
	return now
}

// controlPhase classifies a control-plane Frame call from the cumulative
// recompute split captured before and after it.
func controlPhase(fullBefore, incrBefore, fullAfter, incrAfter int) Phase {
	switch {
	case fullAfter > fullBefore:
		return PhaseControlFull
	case incrAfter > incrBefore:
		return PhaseControlIncremental
	default:
		return PhaseControlIdle
	}
}
