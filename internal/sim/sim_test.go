package sim

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/app"
	"repro/internal/battery"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/routing"
	"repro/internal/topology"
)

// run builds and runs a simulator for a default configuration mutated by fn.
func run(t *testing.T, meshSize int, fn func(*Config)) Result {
	t.Helper()
	cfg, err := Default(meshSize)
	if err != nil {
		t.Fatal(err)
	}
	if fn != nil {
		fn(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestDefaultConfigIsValid(t *testing.T) {
	cfg, err := Default(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Graph.NodeCount() != 16 {
		t.Errorf("default 4x4 config has %d nodes", cfg.Graph.NodeCount())
	}
	if cfg.Algorithm.Name() != "EAR" {
		t.Errorf("default algorithm = %s, want EAR", cfg.Algorithm.Name())
	}
	if _, err := Default(0); err == nil {
		t.Error("Default(0) should fail")
	}
}

func TestConfigValidationCatchesBadFields(t *testing.T) {
	base, err := Default(4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"nil app", func(c *Config) { c.App = nil }},
		{"nil mapping", func(c *Config) { c.Mapping = nil }},
		{"nil algorithm", func(c *Config) { c.Algorithm = nil }},
		{"nil battery", func(c *Config) { c.NodeBattery = nil }},
		{"nil line", func(c *Config) { c.Line = nil }},
		{"zero controllers", func(c *Config) { c.Controllers = 0 }},
		{"one battery level", func(c *Config) { c.BatteryLevels = 1 }},
		{"zero compute cycles", func(c *Config) { c.ComputeCyclesPerOp = 0 }},
		{"zero link width", func(c *Config) { c.LinkWidthBits = 0 }},
		{"zero concurrent jobs", func(c *Config) { c.ConcurrentJobs = 0 }},
		{"zero buffer", func(c *Config) { c.NodeBufferJobs = 0 }},
		{"negative max cycles", func(c *Config) { c.MaxCycles = -1 }},
		{"bad frame period", func(c *Config) { c.TDMA.FramePeriodCycles = 0 }},
		{"bad key length", func(c *Config) { c.Key = []byte("short") }},
		{"missing source", func(c *Config) { c.Source = 999 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Errorf("New accepted config with %s", tc.name)
			}
		})
	}
}

func TestConfigHopCycles(t *testing.T) {
	cfg, err := Default(4)
	if err != nil {
		t.Fatal(err)
	}
	// 261-bit packets over an 8-bit-wide link take ceil(261/8) = 33 cycles.
	if got := cfg.HopCycles(); got != 33 {
		t.Errorf("HopCycles = %d, want 33", got)
	}
	cfg.LinkWidthBits = 1
	if got := cfg.HopCycles(); got != 261 {
		t.Errorf("HopCycles with serial link = %d, want 261", got)
	}
}

func TestSimulationCompletesJobsAndDies(t *testing.T) {
	res := run(t, 4, nil)
	if res.JobsCompleted <= 0 {
		t.Fatalf("no jobs completed: %+v", res)
	}
	if res.LifetimeCycles <= 0 || res.Frames <= 0 {
		t.Errorf("lifetime/frames not recorded: %+v", res)
	}
	if res.Reason == "" || res.Reason == DeathMaxCycles {
		t.Errorf("system did not die naturally: %s", res.Reason)
	}
	if res.DeadNodes == 0 {
		t.Error("system died with no dead nodes")
	}
	if res.Energy.TotalConsumedPJ() <= 0 {
		t.Error("no energy accounted")
	}
	if res.Algorithm != "EAR" || res.MeshNodes != 16 {
		t.Errorf("result metadata wrong: %+v", res)
	}
}

// TestEnergyConservation verifies that the energy charged to the per-purpose
// counters matches what actually left the node batteries (controller energy
// is accounted separately since the default controller has infinite energy).
func TestEnergyConservation(t *testing.T) {
	res := run(t, 4, func(c *Config) { c.CollectNodeStats = true })
	var delivered, perNodeSum float64
	for _, n := range res.Nodes {
		delivered += n.DeliveredPJ
		perNodeSum += n.ComputationPJ + n.CommunicationPJ + n.ControlPJ
	}
	nodeSide := res.Energy.ComputationPJ + res.Energy.CommunicationPJ + res.Energy.ControlUploadPJ + res.Energy.AbortedPJ
	if !closeTo(delivered, nodeSide, 1.0) {
		t.Errorf("battery delivery %.1f pJ != accounted node energy %.1f pJ", delivered, nodeSide)
	}
	if !closeTo(perNodeSum+res.Energy.AbortedPJ, nodeSide, 1.0) {
		t.Errorf("per-node accounting %.1f pJ != global accounting %.1f pJ", perNodeSum, nodeSide)
	}
	// Nothing can exceed the total energy initially stored in the node
	// batteries plus controller-side energy.
	totalBudget := float64(res.MeshNodes) * battery.DefaultNominalPJ
	if nodeSide > totalBudget {
		t.Errorf("nodes consumed %.1f pJ, more than the %d-node budget %.1f pJ",
			nodeSide, res.MeshNodes, totalBudget)
	}
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// TestEARBeatsSDRByLargeFactor reproduces the headline claim of Fig 7: EAR
// completes several times more jobs than SDR on every mesh size.
func TestEARBeatsSDRByLargeFactor(t *testing.T) {
	for _, meshSize := range []int{4, 5, 6} {
		ear := run(t, meshSize, nil)
		sdr := run(t, meshSize, func(c *Config) { c.Algorithm = routing.SDR{} })
		if sdr.JobsCompleted == 0 {
			t.Fatalf("%dx%d: SDR completed no jobs at all", meshSize, meshSize)
		}
		ratio := float64(ear.JobsCompleted) / float64(sdr.JobsCompleted)
		if ratio < 3 {
			t.Errorf("%dx%d: EAR/SDR ratio = %.1f (EAR %d, SDR %d), want >= 3",
				meshSize, meshSize, ratio, ear.JobsCompleted, sdr.JobsCompleted)
		}
	}
}

// TestEARJobsGrowWithMeshSize checks the Fig 7 trend that EAR completes more
// jobs on larger meshes (more nodes bring more total battery energy).
func TestEARJobsGrowWithMeshSize(t *testing.T) {
	prev := 0
	for _, meshSize := range []int{4, 5, 6} {
		res := run(t, meshSize, nil)
		if res.JobsCompleted <= prev {
			t.Errorf("%dx%d completed %d jobs, not more than the previous size's %d",
				meshSize, meshSize, res.JobsCompleted, prev)
		}
		prev = res.JobsCompleted
	}
}

// TestSimulationNeverExceedsTheorem1Bound checks the central theoretical
// claim: no simulated routing strategy completes more jobs than J*.
func TestSimulationNeverExceedsTheorem1Bound(t *testing.T) {
	for _, meshSize := range []int{4, 5} {
		for _, alg := range []routing.Algorithm{routing.NewEAR(), routing.SDR{}} {
			for _, ideal := range []bool{false, true} {
				res := run(t, meshSize, func(c *Config) {
					c.Algorithm = alg
					if ideal {
						c.NodeBattery = battery.IdealFactory(battery.DefaultNominalPJ)
					}
				})
				bound, err := analytic.MeshUpperBound(app.AES128(), energy.PaperTransmissionLine(),
					topology.DefaultSpacingCM, battery.DefaultNominalPJ, meshSize*meshSize)
				if err != nil {
					t.Fatal(err)
				}
				if float64(res.JobsCompleted) > bound.Jobs {
					t.Errorf("%s on %dx%d (ideal=%v) completed %d jobs, exceeding J* = %.2f",
						alg.Name(), meshSize, meshSize, ideal, res.JobsCompleted, bound.Jobs)
				}
			}
		}
	}
}

// TestIdealBatteryAchievesLargeFractionOfBound mirrors Table 2: with ideal
// batteries EAR should reach a substantial fraction of the upper bound
// (the paper reports 44-48 %; our calibration lands somewhat higher, see
// EXPERIMENTS.md).
func TestIdealBatteryAchievesLargeFractionOfBound(t *testing.T) {
	res := run(t, 4, func(c *Config) {
		c.NodeBattery = battery.IdealFactory(battery.DefaultNominalPJ)
	})
	bound, err := analytic.MeshUpperBound(app.AES128(), energy.PaperTransmissionLine(),
		topology.DefaultSpacingCM, battery.DefaultNominalPJ, 16)
	if err != nil {
		t.Fatal(err)
	}
	frac := bound.Achieved(float64(res.JobsCompleted))
	if frac < 0.40 || frac > 1.0 {
		t.Errorf("EAR with ideal batteries achieved %.1f%% of J*, want 40%%..100%%", 100*frac)
	}
	// The thin-film battery must never beat the ideal battery.
	thin := run(t, 4, nil)
	if thin.JobsCompleted > res.JobsCompleted {
		t.Errorf("thin-film run (%d jobs) outperformed the ideal battery run (%d jobs)",
			thin.JobsCompleted, res.JobsCompleted)
	}
}

// TestControlOverheadSmallAndGrowsWithMeshSize mirrors the Sec 7.1
// observation that the control-information overhead is a few percent and
// increases with the network size (2.8 % for 4x4 up to 11.6 % for 8x8).
func TestControlOverheadSmallAndGrowsWithMeshSize(t *testing.T) {
	small := run(t, 4, nil)
	large := run(t, 6, nil)
	oSmall := small.Energy.ControlOverheadFraction()
	oLarge := large.Energy.ControlOverheadFraction()
	if oSmall <= 0 || oSmall > 0.10 {
		t.Errorf("4x4 control overhead = %.1f%%, want a few percent", 100*oSmall)
	}
	if oLarge <= oSmall {
		t.Errorf("control overhead did not grow with mesh size: 4x4 %.2f%%, 6x6 %.2f%%",
			100*oSmall, 100*oLarge)
	}
}

// TestPayloadVerification runs the distributed AES pipeline end to end: every
// completed job's ciphertext must match the reference cipher.
func TestPayloadVerification(t *testing.T) {
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	res := run(t, 4, func(c *Config) { c.Key = key })
	if res.PayloadJobsVerified == 0 {
		t.Fatal("no payloads were verified")
	}
	if res.PayloadJobsVerified != res.JobsCompleted {
		t.Errorf("verified %d payloads but completed %d jobs", res.PayloadJobsVerified, res.JobsCompleted)
	}
	if res.PayloadMismatches != 0 {
		t.Errorf("%d payload mismatches: the distributed pipeline disagrees with the reference cipher",
			res.PayloadMismatches)
	}
}

func TestPayloadRequiresAESApplication(t *testing.T) {
	cfg, err := Default(4)
	if err != nil {
		t.Fatal(err)
	}
	b := app.NewBuilder("custom")
	m1 := b.AddModule("a", 100)
	m2 := b.AddModule("b", 100)
	m3 := b.AddModule("c", 100)
	custom, err := b.Repeat(5, m1, m2, m3).Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.App = custom
	cfg.Mapping, err = mapping.Checkerboard{}.Map(cfg.Graph, custom)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Key = make([]byte, 16)
	if _, err := New(cfg); err == nil {
		t.Fatal("payload verification with a non-AES application should be rejected")
	}
}

func TestMaxCyclesTerminatesEarly(t *testing.T) {
	res := run(t, 4, func(c *Config) { c.MaxCycles = 5000 })
	if res.Reason != DeathMaxCycles {
		t.Fatalf("reason = %s, want max-cycles", res.Reason)
	}
	if res.LifetimeCycles > 6000 {
		t.Errorf("simulation ran %d cycles despite a 5000-cycle budget", res.LifetimeCycles)
	}
}

// TestFiniteControllersLimitLifetime mirrors Fig 8: with finite controller
// batteries, fewer controllers mean fewer completed jobs, and enough
// controllers recover the node-limited job count.
func TestFiniteControllersLimitLifetime(t *testing.T) {
	nodeLimited := run(t, 4, nil)
	prev := -1
	for _, n := range []int{1, 2, 4} {
		res := run(t, 4, func(c *Config) {
			c.Controllers = n
			c.ControllerBattery = battery.DefaultThinFilmFactory()
		})
		if res.JobsCompleted <= prev {
			t.Errorf("%d controllers completed %d jobs, not more than %d with fewer controllers",
				n, res.JobsCompleted, prev)
		}
		if res.JobsCompleted > nodeLimited.JobsCompleted {
			t.Errorf("%d finite controllers completed %d jobs, exceeding the node-limited %d",
				n, res.JobsCompleted, nodeLimited.JobsCompleted)
		}
		prev = res.JobsCompleted
	}
	one := run(t, 4, func(c *Config) {
		c.Controllers = 1
		c.ControllerBattery = battery.DefaultThinFilmFactory()
	})
	if one.Reason != DeathControllersDead {
		t.Errorf("single finite controller death reason = %s, want controllers-dead", one.Reason)
	}
}

// TestSDRConcentratesLoadEARSpreadsIt inspects per-node statistics: under SDR
// the busiest node should do a much larger share of the work than under EAR.
func TestSDRConcentratesLoadEARSpreadsIt(t *testing.T) {
	spread := func(alg routing.Algorithm) (maxOps, totalOps int) {
		res := run(t, 5, func(c *Config) {
			c.Algorithm = alg
			c.CollectNodeStats = true
		})
		for _, n := range res.Nodes {
			totalOps += n.Operations
			if n.Operations > maxOps {
				maxOps = n.Operations
			}
		}
		return maxOps, totalOps
	}
	earMax, earTotal := spread(routing.NewEAR())
	sdrMax, sdrTotal := spread(routing.SDR{})
	earShare := float64(earMax) / float64(earTotal)
	sdrShare := float64(sdrMax) / float64(sdrTotal)
	if sdrShare <= earShare {
		t.Errorf("SDR busiest-node share %.2f not larger than EAR share %.2f", sdrShare, earShare)
	}
}

func TestConcurrentJobsWithDeadlockRecovery(t *testing.T) {
	res := run(t, 5, func(c *Config) {
		c.ConcurrentJobs = 3
		c.NodeBufferJobs = 1
	})
	if res.JobsCompleted == 0 {
		t.Fatal("no jobs completed under concurrent load")
	}
	// With several jobs contending for single-packet buffers the simulation
	// must still terminate with a sensible reason.
	switch res.Reason {
	case DeathModuleExtinct, DeathUnreachable, DeathStalled:
	default:
		t.Errorf("unexpected death reason under concurrent load: %s", res.Reason)
	}
	single := run(t, 5, nil)
	if single.DeadlockReports != 0 {
		t.Errorf("single-job run reported %d deadlocks, want 0", single.DeadlockReports)
	}
}

func TestRowMajorMappingStillWorks(t *testing.T) {
	res := run(t, 4, func(c *Config) {
		m, err := mapping.RowMajor{}.Map(c.Graph, c.App)
		if err != nil {
			t.Fatal(err)
		}
		c.Mapping = m
	})
	if res.JobsCompleted == 0 {
		t.Fatal("row-major mapping completed no jobs")
	}
	// The paper's checkerboard mapping should beat the clustered baseline.
	checker := run(t, 4, nil)
	if res.JobsCompleted > checker.JobsCompleted {
		t.Logf("note: row-major (%d) outperformed checkerboard (%d) on this configuration",
			res.JobsCompleted, checker.JobsCompleted)
	}
}

func TestSimulationIsDeterministic(t *testing.T) {
	a := run(t, 4, nil)
	b := run(t, 4, nil)
	if a.JobsCompleted != b.JobsCompleted || a.LifetimeCycles != b.LifetimeCycles ||
		a.Energy != b.Energy || a.Reason != b.Reason {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestResultString(t *testing.T) {
	res := run(t, 4, nil)
	s := res.String()
	if s == "" || res.Reason == "" {
		t.Errorf("Result.String() = %q", s)
	}
}

func TestEnergyBreakdownHelpers(t *testing.T) {
	e := EnergyBreakdown{
		ComputationPJ:     100,
		CommunicationPJ:   200,
		ControlUploadPJ:   10,
		ControlDownloadPJ: 20,
		ControllerPJ:      50,
	}
	if e.TotalConsumedPJ() != 380 {
		t.Errorf("TotalConsumedPJ = %g, want 380", e.TotalConsumedPJ())
	}
	if e.ControlExchangePJ() != 30 {
		t.Errorf("ControlExchangePJ = %g, want 30", e.ControlExchangePJ())
	}
	want := 30.0 / 330.0
	if got := e.ControlOverheadFraction(); !closeTo(got, want, 1e-12) {
		t.Errorf("ControlOverheadFraction = %g, want %g", got, want)
	}
	var zero EnergyBreakdown
	if zero.ControlOverheadFraction() != 0 {
		t.Error("zero breakdown should report zero overhead")
	}
}

// nopObserver stands in for the cheapest possible external observer.
type nopObserver struct{ BaseObserver }

// countingObserver exercises every hook, as a realistic tracing load.
type countingObserver struct {
	BaseObserver
	events int
}

func (c *countingObserver) JobInjected(JobEvent)            { c.events++ }
func (c *countingObserver) JobCompleted(JobEvent)           { c.events++ }
func (c *countingObserver) HopStarted(HopEvent)             { c.events++ }
func (c *countingObserver) OperationStarted(OperationEvent) { c.events++ }
func (c *countingObserver) BatterySampled(BatteryEvent)     { c.events++ }
func (c *countingObserver) FrameProcessed(FrameEvent)       { c.events++ }

// TestObserverEventStreamMatchesResult cross-checks the event stream against
// the result the built-in accounting produces from the same events.
func TestObserverEventStreamMatchesResult(t *testing.T) {
	counter := &countingObserver{}
	res := run(t, 4, func(c *Config) { c.Observers = []Observer{nil, counter} })
	if counter.events == 0 {
		t.Fatal("observer saw no events")
	}
	bare := run(t, 4, nil)
	if bare.JobsCompleted != res.JobsCompleted || bare.Energy != res.Energy ||
		bare.LifetimeCycles != res.LifetimeCycles || bare.Reason != res.Reason {
		t.Errorf("observers perturbed the simulation:\nbare:     %+v\nobserved: %+v", bare, res)
	}
}

// BenchmarkSimulatorRun guards the observer refactor's zero-overhead claim:
// the default configuration (no external observers — accounting only) must
// run as fast as the engine did when the counters were inline, and a
// steady-state run must not allocate per event. Compare the "bare" and
// "noop-observer" lines to see the cost of attaching an external observer.
func BenchmarkSimulatorRun(b *testing.B) {
	cfg, err := Default(4)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name      string
		observers []Observer
	}{
		{"bare", nil},
		{"noop-observer", []Observer{nopObserver{}}},
		{"counting-observer", []Observer{&countingObserver{}}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			c := cfg
			c.Observers = v.observers
			b.ReportAllocs()
			var jobs int
			for i := 0; i < b.N; i++ {
				s, err := New(c)
				if err != nil {
					b.Fatal(err)
				}
				jobs = s.Run().JobsCompleted
			}
			b.ReportMetric(float64(jobs), "jobs")
		})
	}
}

// TestProcessFrameZeroAllocSteadyState is the control-plane perf regression
// guard: once the simulator's snapshot buffers and routing workspace are
// warm, running TDMA control frames — upload accounting, snapshot build,
// change detection and the full three-phase routing recompute (battery
// levels drift every frame under EAR, so most frames do recompute) — must
// not heap-allocate.
func TestProcessFrameZeroAllocSteadyState(t *testing.T) {
	cfg, err := Default(6)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal batteries report their level linearly in the remaining charge,
	// which makes the forced level drift below deterministic.
	cfg.NodeBattery = battery.IdealFactory(battery.DefaultNominalPJ)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// drain makes two nodes' reported battery levels drift, the way job
	// traffic does in a real run, so the controller keeps recomputing; the
	// draws are far too small to kill either node within this test.
	step := 0
	drain := func() {
		n := s.nodes[step%2]
		s.drawNode(n, n.battery.NominalPJ()*0.01)
		step++
	}
	// Warm up until the controller has recomputed at least three times, so
	// both ping-pong table buffers and every workspace buffer are sized
	// before the measurement starts.
	for i := 0; s.res.RoutingRecomputes < 3 && i < 100; i++ {
		drain()
		s.now += cfg.TDMA.FramePeriodCycles
		s.processFrame()
	}
	if s.dead || s.res.RoutingRecomputes < 3 {
		t.Fatalf("warm-up did not reach steady state (dead=%v, recomputes=%d)", s.dead, s.res.RoutingRecomputes)
	}
	recomputesBefore := s.res.RoutingRecomputes
	allocs := testing.AllocsPerRun(64, func() {
		drain()
		s.now += cfg.TDMA.FramePeriodCycles
		s.processFrame()
	})
	if allocs != 0 {
		t.Errorf("steady-state processFrame allocated %.1f times per run, want 0", allocs)
	}
	if s.dead {
		t.Fatal("system died during the alloc guard; the guard must measure steady state")
	}
	if s.res.RoutingRecomputes <= recomputesBefore {
		t.Fatal("no routing recompute happened during measurement; the guard did not exercise ComputeInto")
	}
}

func BenchmarkSimulate4x4EAR(b *testing.B) {
	cfg, err := Default(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}
