package sim

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/aes"
	"repro/internal/app"
	"repro/internal/battery"
	"repro/internal/controlplane"
	"repro/internal/faults"
	"repro/internal/routing"
	"repro/internal/topology"
)

// stalledFrameLimit is the number of consecutive TDMA frames without any job
// progress after which the simulator declares the system unable to make
// progress. It is a safety net against pathological configurations; the
// paper's scenarios never hit it.
const stalledFrameLimit = 64

// nodeState is the runtime state of one mesh node.
type nodeState struct {
	id       topology.NodeID
	module   app.ModuleID
	battery  battery.Battery
	lastRest int64
	dead     bool
	// crashed marks a runtime fault window (Config.Faults): the node stops
	// computing, relaying and reporting but its battery survives and rests,
	// and it resumes when the window closes. Distinct from dead, which is
	// permanent and counts toward module extinction.
	crashed bool

	resident  int   // jobs currently buffered at this node
	busyUntil int64 // the node's compute resource is occupied until this cycle

	ops     int
	relayed int
	compPJ  float64
	commPJ  float64
	ctrlPJ  float64
}

// down reports whether the node is currently unable to participate in the
// mesh, for any reason (battery death or a runtime crash window).
func (n *nodeState) down() bool { return n.dead || n.crashed }

// jobPhase is the state of a job's miniature state machine.
type jobPhase int

const (
	phaseRoute          jobPhase = iota // needs a destination for its next operation
	phaseMoving                         // packet in flight on a link
	phaseWaitingBuffer                  // next hop has no buffer space
	phaseWaitingCompute                 // waiting for the destination node's compute resource
	phaseWaitingRoute                   // no valid route yet (stale tables or dead duplicates)
	phaseComputing                      // operation executing
)

// jobState is one in-flight job.
type jobState struct {
	id          int
	at          topology.NodeID
	pendingNext topology.NodeID
	dest        topology.NodeID
	opIdx       int
	phase       jobPhase
	readyAt     int64
	hopsThisLeg int
	blockedAt   int64 // cycle at which the job became blocked, -1 if not blocked

	hasPayload bool
	state      aes.State
	plaintext  [aes.BlockSize]byte
}

// Simulator is one instance of et_sim. Construct it with New and execute it
// with Run; a Simulator is single-use.
type Simulator struct {
	cfg   Config
	graph *topology.Graph

	nodes        []*nodeState
	jobs         []*jobState
	destinations map[app.ModuleID][]topology.NodeID

	// plane is the control plane: everything between the upload and download
	// phases of a TDMA frame (snapshot adoption, the recompute decision, table
	// production, controller energy and liveness) lives behind this interface.
	// The two snapshot buffers are alternated by buildSnapshot: when the plane
	// reports FrameReport.RetainedSnapshot it kept the buffer it was just
	// handed as its reference state, so the next frame's report goes into the
	// other one and steady-state frames allocate nothing.
	plane    controlplane.ControlPlane
	snaps    [2]routing.SystemState
	snapFlip int
	blocked  []bool // per-node deadlock scratch for buildSnapshot

	pipeline *aes.Pipeline
	cipher   *aes.Cipher

	// faultRuntime executes Config.Faults against the engine's private graph
	// clone; nil when the schedule is empty, in which case every fault path
	// below is skipped and the engine is byte-identical to one without the
	// subsystem. topoEpoch counts runtime graph mutations and is stamped into
	// each snapshot so the control planes recompute on shape changes.
	faultRuntime *faults.Runtime
	topoEpoch    uint64

	now          int64
	nextFrame    int64
	frameCount   int64
	jobCounter   int
	stalledSince int64 // frame count at the last observed progress
	// lastCompletion is the node at which the most recent job finished; the
	// next job enters the system there ("a new job is launched when the
	// previous one is completed", Sec 7.1).
	lastCompletion topology.NodeID

	res          Result
	dead         bool
	finishReason DeathReason
	cancel       <-chan struct{}

	// acct is the built-in result observer; observers holds the externally
	// attached ones from Config.Observers (nil in the common case).
	acct      resultObserver
	observers []Observer

	// phaseObs holds the Config.Observers entries that also implement
	// PhaseObserver; when empty (the common case) the frame loop never reads
	// the wall clock. spanEpoch anchors the run's span clock (set lazily on
	// the first measurement); lastFrameEndNS is the span-clock reading at the
	// end of the previous frame (-1 before the first), from which the
	// PhaseSchedule gap spans are derived.
	phaseObs       []PhaseObserver
	spanEpoch      time.Time
	lastFrameEndNS int64

	// Reusable scratch buffers for the hot loops, so steady-state simulation
	// does not allocate. iterScratch backs the job snapshots taken by Run and
	// settle (which never overlap); killScratch backs killNode's snapshot,
	// which can be taken while an iterScratch snapshot is live. reachSeen,
	// reachTargets and reachQueue back the BFS in reachableDuplicate.
	iterScratch  []*jobState
	killScratch  []*jobState
	reachSeen    []bool
	reachTargets []bool
	reachQueue   []topology.NodeID
}

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:            cfg,
		graph:          cfg.Graph,
		destinations:   make(map[app.ModuleID][]topology.NodeID),
		lastCompletion: topology.Invalid,
		cancel:         cfg.Cancel,
	}
	if cfg.Faults.Enabled() {
		// Fault injection mutates the topology at frame boundaries; the engine
		// works on a private clone so the caller's graph (often shared across a
		// sweep) is never touched.
		s.graph = cfg.Graph.Clone()
	}
	s.res.Algorithm = cfg.Algorithm.Name()
	s.res.MeshNodes = cfg.Graph.NodeCount()
	s.acct = resultObserver{res: &s.res}
	for _, o := range cfg.Observers {
		if o != nil {
			s.observers = append(s.observers, o)
			if po, ok := o.(PhaseObserver); ok {
				s.phaseObs = append(s.phaseObs, po)
			}
		}
	}
	s.lastFrameEndNS = -1

	k := s.graph.NodeCount()
	s.nodes = make([]*nodeState, k)
	for _, n := range s.graph.Nodes() {
		s.nodes[n.ID] = &nodeState{
			id:      n.ID,
			module:  cfg.Mapping.ModuleAt(n.ID),
			battery: cfg.NodeBattery(),
		}
	}
	for _, m := range cfg.App.Modules {
		s.destinations[m.ID] = cfg.Mapping.NodesFor(m.ID)
	}

	plane, err := controlplane.New(cfg.Control, controlplane.Deps{
		Graph:             s.graph,
		Algorithm:         cfg.Algorithm,
		Destinations:      s.destinations,
		TDMA:              cfg.TDMA,
		Controllers:       cfg.Controllers,
		ControllerPower:   cfg.ControllerPower,
		ControllerBattery: cfg.ControllerBattery,
	})
	if err != nil {
		return nil, err
	}
	s.plane = plane
	s.res.ControlPlane = plane.Name()
	if cfg.Faults.Enabled() {
		s.faultRuntime = faults.New(cfg.Faults, s.graph, plane.Shards())
	}

	if cfg.Key != nil {
		pipeline, err := aes.NewPipeline(cfg.Key)
		if err != nil {
			return nil, err
		}
		if pipeline.NumSteps() != cfg.App.OperationsPerJob() {
			return nil, fmt.Errorf("sim: application flow (%d ops) does not match the AES pipeline (%d steps); payload verification requires an application built by app.AES",
				cfg.App.OperationsPerJob(), pipeline.NumSteps())
		}
		cipher, err := aes.NewCipher(cfg.Key)
		if err != nil {
			return nil, err
		}
		s.pipeline = pipeline
		s.cipher = cipher
	}
	return s, nil
}

// Run executes the simulation until the target system dies (or the cycle
// budget runs out) and returns the result.
func (s *Simulator) Run() Result {
	// Frame 0 establishes the initial routing tables before any job moves.
	s.processFrame()
	s.nextFrame = s.cfg.TDMA.FramePeriodCycles
	for len(s.jobs) < s.cfg.ConcurrentJobs {
		s.injectJob()
	}

	for !s.dead {
		if s.cancelled() {
			s.finish(DeathCancelled)
			break
		}
		s.settle()
		if s.dead {
			break
		}
		next := s.nextFrame
		for _, j := range s.jobs {
			if (j.phase == phaseMoving || j.phase == phaseComputing) && j.readyAt < next {
				next = j.readyAt
			}
		}
		if s.cfg.MaxCycles > 0 && next > s.cfg.MaxCycles {
			s.finish(DeathMaxCycles)
			break
		}
		s.now = next
		s.iterScratch = append(s.iterScratch[:0], s.jobs...)
		for _, j := range s.iterScratch {
			if s.dead {
				break
			}
			if (j.phase == phaseMoving || j.phase == phaseComputing) && j.readyAt <= s.now {
				s.completeTimed(j)
			}
		}
		for !s.dead && s.now >= s.nextFrame {
			s.processFrame()
			s.nextFrame += s.cfg.TDMA.FramePeriodCycles
			if s.frameCount-s.stalledSince > stalledFrameLimit {
				s.finish(DeathStalled)
			}
		}
	}
	if s.timing() && s.lastFrameEndNS >= 0 {
		// Close the trailing scheduling gap: time between the last control
		// frame and the run's end (final job drains, the death cascade).
		s.emitPhaseSpan(PhaseSchedule, s.lastFrameEndNS, s.spanNow())
		s.lastFrameEndNS = -1
	}
	// RunFinished is emitted here, not inside finish: death can strike in
	// the middle of a frame or of a cascade of job losses, and deferring the
	// terminal event until the engine has fully unwound guarantees observers
	// see it strictly after every other event. Neither the clock nor the
	// frame counter advances once s.dead is set, so the values match the
	// moment of death.
	s.emitRunFinished(FinishEvent{
		Now: s.now, Frame: s.frameCount, Reason: s.finishReason, JobsInFlight: len(s.jobs),
	})
	return s.res
}

// cancelled reports whether the caller has asked the run to stop. It is a
// non-blocking poll of Config.Cancel, checked once per scheduling iteration —
// cheap next to a frame's worth of simulation, and prompt enough that an
// abandoned run stops within one event's processing.
func (s *Simulator) cancelled() bool {
	if s.cancel == nil {
		return false
	}
	select {
	case <-s.cancel:
		return true
	default:
		return false
	}
}

// finish marks the run as terminated. The termination reason, lifetime and
// frame count land in the result through the built-in observer's RunFinished
// hook, emitted at the end of Run; only the end-of-life battery autopsy
// (stranded energy, per-node statistics) is computed here, because it needs
// the engine's internal node state.
func (s *Simulator) finish(reason DeathReason) {
	if s.dead {
		return
	}
	s.dead = true
	s.finishReason = reason
	if s.plane != nil && s.plane.Shards() > 1 {
		s.res.ShardRecomputes = make([]int, s.plane.Shards())
		for i := range s.res.ShardRecomputes {
			s.res.ShardRecomputes[i] = s.plane.RecomputeCount(i)
		}
	}
	if s.plane != nil {
		s.res.FullRecomputes, s.res.IncrementalRecomputes = s.plane.RecomputeSplit()
	}
	for _, n := range s.nodes {
		if n.dead {
			s.res.Energy.WastedPJ += n.battery.RemainingPJ()
		}
	}
	if s.cfg.CollectNodeStats {
		s.res.Nodes = make([]NodeStats, 0, len(s.nodes))
		for _, n := range s.nodes {
			s.res.Nodes = append(s.res.Nodes, NodeStats{
				Node:            n.id,
				Module:          int(n.module),
				Operations:      n.ops,
				PacketsRelayed:  n.relayed,
				ComputationPJ:   n.compPJ,
				CommunicationPJ: n.commPJ,
				ControlPJ:       n.ctrlPJ,
				Dead:            n.dead,
				DeliveredPJ:     n.battery.DeliveredPJ(),
				RemainingPJ:     n.battery.RemainingPJ(),
			})
		}
	}
}

// progress marks that some job made forward progress (used by the stall
// detector).
func (s *Simulator) progress() { s.stalledSince = s.frameCount }

// restNode lets a node's battery recover up to the current cycle.
func (s *Simulator) restNode(n *nodeState) {
	if s.now > n.lastRest {
		n.battery.Rest(s.now - n.lastRest)
		n.lastRest = s.now
	}
}

// drawNode draws energy from a node's battery, returning false (and handling
// the node's death) if the battery cannot supply it.
func (s *Simulator) drawNode(n *nodeState, amountPJ float64) bool {
	if n.dead {
		return false
	}
	s.restNode(n)
	before := n.battery.DeliveredPJ()
	if err := n.battery.Draw(amountPJ); err != nil {
		// Whatever the battery delivered before browning out was consumed but
		// produced no useful work.
		s.emitEnergyAborted(EnergyEvent{Now: s.now, Node: n.id, EnergyPJ: n.battery.DeliveredPJ() - before})
		s.killNode(n)
		return false
	}
	return true
}

// killNode marks a node dead, abandons any jobs it holds and checks the
// system-death condition.
func (s *Simulator) killNode(n *nodeState) {
	if n.dead {
		return
	}
	n.dead = true
	s.emitNodeDied(NodeEvent{Now: s.now, Node: n.id})
	s.killScratch = append(s.killScratch[:0], s.jobs...)
	for _, j := range s.killScratch {
		if j.at == n.id || j.pendingNext == n.id {
			s.loseJob(j)
		}
	}
	if s.moduleExtinct() {
		s.finish(DeathModuleExtinct)
	}
}

// moduleExtinct reports whether some module has no living duplicate left —
// the paper's "critical nodes are dead" condition.
func (s *Simulator) moduleExtinct() bool {
	for _, m := range s.cfg.App.Modules {
		alive := false
		for _, id := range s.destinations[m.ID] {
			if !s.nodes[id].dead {
				alive = true
				break
			}
		}
		if !alive {
			return true
		}
	}
	return false
}

// injectionPoint returns the node at which new jobs enter the system. The
// first job enters at the configured source (the sensor/actuator attachment
// point of Fig 3a); each subsequent job enters at the node where the previous
// job completed, matching the paper's "a new job is launched when the
// previous one is completed". If that node has died, the job enters at the
// living node closest to the source instead.
func (s *Simulator) injectionPoint() topology.NodeID {
	if s.lastCompletion != topology.Invalid && !s.nodes[s.lastCompletion].down() {
		return s.lastCompletion
	}
	if !s.nodes[s.cfg.Source].down() {
		return s.cfg.Source
	}
	srcPos := s.graph.Coordinate(s.cfg.Source)
	best := topology.Invalid
	bestDist := int(^uint(0) >> 1)
	for _, n := range s.nodes {
		if n.down() {
			continue
		}
		d := srcPos.Manhattan(s.graph.Coordinate(n.id))
		if d < bestDist || (d == bestDist && n.id < best) {
			best = n.id
			bestDist = d
		}
	}
	return best
}

// injectJob launches a new job at the injection point.
func (s *Simulator) injectJob() {
	at := s.injectionPoint()
	if at == topology.Invalid {
		s.finish(DeathModuleExtinct)
		return
	}
	j := &jobState{
		id:          s.jobCounter,
		at:          at,
		pendingNext: topology.Invalid,
		dest:        topology.Invalid,
		phase:       phaseRoute,
		blockedAt:   -1,
	}
	s.jobCounter++
	if s.pipeline != nil {
		// The plaintext block is a fixed-size array filled in place, so the
		// state conversion cannot fail (the old aes.LoadState error path was
		// unreachable but, when silently swallowed, would have surfaced much
		// later as a misleading PayloadMismatch).
		j.hasPayload = true
		binary.BigEndian.PutUint64(j.plaintext[8:], uint64(j.id))
		j.state = aes.State(j.plaintext)
	}
	s.nodes[j.at].resident++
	s.jobs = append(s.jobs, j)
	s.emitJobInjected(JobEvent{Now: s.now, Job: j.id, Node: j.at})
}

// removeJob drops a job from the active list and releases its buffer slots.
func (s *Simulator) removeJob(j *jobState) {
	s.nodes[j.at].resident--
	if j.pendingNext != topology.Invalid {
		s.nodes[j.pendingNext].resident--
	}
	for i, other := range s.jobs {
		if other == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			break
		}
	}
}

// loseJob abandons a job (its packet was stranded on a dead node) and injects
// a replacement so the offered load stays constant.
func (s *Simulator) loseJob(j *jobState) {
	at := j.at
	s.removeJob(j)
	s.emitJobLost(JobEvent{Now: s.now, Job: j.id, Node: at})
	if !s.dead {
		s.injectJob()
	}
}

// completeJob finishes a job, verifying the distributed payload if enabled.
func (s *Simulator) completeJob(j *jobState) {
	s.lastCompletion = j.at
	s.removeJob(j)
	payload := PayloadNone
	if j.hasPayload && s.cipher != nil {
		var want [aes.BlockSize]byte
		if err := s.cipher.Encrypt(want[:], j.plaintext[:]); err == nil {
			if j.state.Bytes() == want {
				payload = PayloadVerified
			} else {
				payload = PayloadMismatch
			}
		}
	}
	s.emitJobCompleted(JobEvent{Now: s.now, Job: j.id, Node: j.at, Payload: payload})
	s.progress()
	if !s.dead {
		s.injectJob()
	}
}

// settle repeatedly advances every job that can act at the current cycle
// until no more immediate progress is possible.
func (s *Simulator) settle() {
	for moved := true; moved && !s.dead; {
		moved = false
		s.iterScratch = append(s.iterScratch[:0], s.jobs...)
		for _, j := range s.iterScratch {
			if s.dead {
				return
			}
			switch j.phase {
			case phaseRoute, phaseWaitingRoute:
				if s.resolveRoute(j) {
					moved = true
				}
			case phaseWaitingBuffer:
				if s.startHop(j) {
					moved = true
				}
			case phaseWaitingCompute:
				if s.startCompute(j) {
					moved = true
				}
			}
		}
	}
}

// resolveRoute determines the destination for the job's next operation and
// begins moving or computing. It returns true if the job changed state.
func (s *Simulator) resolveRoute(j *jobState) bool {
	module := s.cfg.App.Flow[j.opIdx]
	table, ok := s.plane.Table(j.at)
	if !ok {
		return s.block(j, phaseWaitingRoute)
	}
	route, ok := table.RouteTo(module)
	if !ok || !route.Valid() || s.nodes[route.Dest].down() {
		// The tables may be stale; if no living duplicate is physically
		// reachable any more the system is partitioned and dies.
		if s.moduleExtinct() {
			s.finish(DeathModuleExtinct)
			return false
		}
		if !s.reachableDuplicate(j.at, module) {
			if s.faultRuntime != nil && s.faultRuntime.RecoveryPending() {
				// The partition (or the crashed duplicate) is a fault window
				// with a scheduled recovery: degrade gracefully and let the
				// job wait it out instead of declaring the system dead.
				return s.block(j, phaseWaitingRoute)
			}
			s.finish(DeathUnreachable)
			return false
		}
		return s.block(j, phaseWaitingRoute)
	}
	j.dest = route.Dest
	j.hopsThisLeg = 0
	if j.dest == j.at {
		j.phase = phaseWaitingCompute
		j.blockedAt = -1
		return s.startCompute(j)
	}
	j.phase = phaseWaitingBuffer
	j.blockedAt = -1
	return s.startHop(j)
}

// reachableDuplicate reports whether any living duplicate of the module is
// reachable from the given node across living nodes only. It runs on the
// simulator's reusable scratch buffers, so repeated routing failures do not
// allocate.
func (s *Simulator) reachableDuplicate(from topology.NodeID, module app.ModuleID) bool {
	if s.nodes[from].down() {
		return false
	}
	if s.reachSeen == nil {
		k := s.graph.NodeCount()
		s.reachSeen = make([]bool, k)
		s.reachTargets = make([]bool, k)
	}
	seen, targets := s.reachSeen, s.reachTargets
	for i := range seen {
		seen[i] = false
		targets[i] = false
	}
	anyTarget := false
	for _, id := range s.destinations[module] {
		if !s.nodes[id].down() {
			targets[id] = true
			anyTarget = true
		}
	}
	if !anyTarget {
		return false
	}
	if targets[from] {
		return true
	}
	seen[from] = true
	queue := append(s.reachQueue[:0], from)
	found := false
	for head := 0; head < len(queue) && !found; head++ {
		cur := queue[head]
		for _, nb := range s.graph.Neighbors(cur) {
			if seen[nb] || s.nodes[nb].down() {
				continue
			}
			if targets[nb] {
				found = true
				break
			}
			seen[nb] = true
			queue = append(queue, nb)
		}
	}
	s.reachQueue = queue
	return found
}

// block parks a job in a waiting phase, recording when it became blocked for
// deadlock detection. It always returns false (no forward progress).
func (s *Simulator) block(j *jobState, phase jobPhase) bool {
	if j.blockedAt < 0 {
		j.blockedAt = s.now
	}
	j.phase = phase
	return false
}

// startHop attempts to transmit the job's packet towards its destination. It
// returns true if the hop started.
func (s *Simulator) startHop(j *jobState) bool {
	cur := s.nodes[j.at]
	if cur.dead {
		s.loseJob(j)
		return false
	}
	next := j.dest
	if next != j.at {
		if hop := s.plane.NextHop(j.at, j.dest); hop != topology.Invalid {
			next = hop
		} else if route, ok := s.plane.RouteTo(j.at, s.cfg.App.Flow[j.opIdx]); ok && route.Valid() && route.Dest == j.dest {
			next = route.NextHop
		} else {
			return s.block(j, phaseWaitingRoute)
		}
	}
	nextNode := s.nodes[next]
	if nextNode.down() {
		return s.block(j, phaseWaitingRoute)
	}
	if nextNode.resident >= s.cfg.NodeBufferJobs {
		return s.block(j, phaseWaitingBuffer)
	}
	link, ok := s.graph.Link(j.at, next)
	if !ok {
		if s.faultRuntime != nil {
			// The link was just faulted out from under a still-stale table;
			// wait for the epoch-triggered recompute (or the link's recovery)
			// rather than declaring a partition.
			return s.block(j, phaseWaitingRoute)
		}
		// Routing produced a next hop that is not a physical neighbour; this
		// indicates a corrupted table and is treated as a partition.
		s.finish(DeathUnreachable)
		return false
	}
	cost := s.cfg.Line.PacketEnergyPJ(link.LengthCM, s.cfg.App.PacketBits)
	if !s.drawNode(cur, cost) {
		return false // node died mid-transmission; killNode already handled the job
	}
	cur.commPJ += cost
	if s.faultRuntime != nil {
		s.faultRuntime.RecordHop(j.at, next)
	}
	relayed := j.hopsThisLeg > 0
	s.emitHopStarted(HopEvent{Now: s.now, Job: j.id, From: j.at, To: next, EnergyPJ: cost, Relayed: relayed})
	if relayed {
		cur.relayed++
	}
	j.hopsThisLeg++
	nextNode.resident++
	j.pendingNext = next
	j.phase = phaseMoving
	j.readyAt = s.now + s.cfg.HopCycles()
	j.blockedAt = -1
	return true
}

// startCompute attempts to begin the job's next operation at its destination
// node. It returns true if computation started.
func (s *Simulator) startCompute(j *jobState) bool {
	n := s.nodes[j.at]
	if n.dead {
		s.loseJob(j)
		return false
	}
	if n.busyUntil > s.now {
		return s.block(j, phaseWaitingCompute)
	}
	module, err := s.cfg.App.Module(s.cfg.App.Flow[j.opIdx])
	if err != nil {
		s.finish(DeathUnreachable)
		return false
	}
	if !s.drawNode(n, module.EnergyPerOpPJ) {
		return false
	}
	n.compPJ += module.EnergyPerOpPJ
	n.ops++
	s.emitOperationStarted(OperationEvent{
		Now: s.now, Job: j.id, Node: n.id, Module: module.ID, OpIndex: j.opIdx, EnergyPJ: module.EnergyPerOpPJ,
	})
	j.phase = phaseComputing
	j.readyAt = s.now + int64(s.cfg.ComputeCyclesPerOp)
	n.busyUntil = j.readyAt
	j.blockedAt = -1
	return true
}

// completeTimed finishes a hop or an operation whose latency elapsed.
func (s *Simulator) completeTimed(j *jobState) {
	switch j.phase {
	case phaseMoving:
		s.nodes[j.at].resident--
		from := j.at
		j.at = j.pendingNext
		j.pendingNext = topology.Invalid
		s.emitHopFinished(HopEvent{Now: s.now, Job: j.id, From: from, To: j.at})
		s.progress()
		if s.nodes[j.at].dead {
			s.loseJob(j)
			return
		}
		if j.at == j.dest {
			j.phase = phaseWaitingCompute
			s.startCompute(j)
		} else {
			j.phase = phaseWaitingBuffer
			s.startHop(j)
		}
	case phaseComputing:
		if j.hasPayload && s.pipeline != nil {
			// ApplyInPlace leaves the state untouched on error, matching the
			// old value-returning behaviour.
			_ = s.pipeline.ApplyInPlace(&j.state, j.opIdx)
		}
		j.opIdx++
		s.progress()
		if j.opIdx >= len(s.cfg.App.Flow) {
			s.completeJob(j)
			return
		}
		j.phase = phaseRoute
		s.resolveRoute(j)
	}
}
