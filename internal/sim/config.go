// Package sim is the Go re-implementation of et_sim, the cycle-accurate
// network simulator the paper develops for e-textile platforms (Sec 7). It
// combines all substrates — topology, application model, module mapping,
// battery models, transmission-line energies, the TDMA control mechanism and
// the EAR/SDR routing algorithms — and simulates encryption jobs flowing
// through the mesh until the target system dies, reporting the number of
// completed jobs and a full energy breakdown.
package sim

import (
	"fmt"

	"repro/internal/aes"
	"repro/internal/app"
	"repro/internal/battery"
	"repro/internal/controlplane"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/mapping"
	"repro/internal/routing"
	"repro/internal/tdma"
	"repro/internal/topology"
)

// Config describes one simulation run.
type Config struct {
	// Graph is the network topology (normally a 2D mesh).
	Graph *topology.Graph
	// App is the target application (normally AES-128).
	App *app.Application
	// Mapping assigns application modules to nodes.
	Mapping *mapping.Mapping
	// Algorithm is the online routing algorithm run by the controller.
	Algorithm routing.Algorithm
	// NodeBattery constructs the battery attached to every node.
	NodeBattery battery.Factory
	// Line is the textile transmission-line energy model.
	Line *energy.TransmissionLine
	// TDMA configures the control mechanism.
	TDMA tdma.Params
	// Controllers is the number of redundant controllers (>= 1): the whole
	// central pool for the centralized control plane, or per regional pool for
	// the sharded one.
	Controllers int
	// Control selects the control-plane architecture; the zero value is the
	// paper's centralized controller.
	Control controlplane.Config
	// ControllerBattery constructs controller batteries; nil models the
	// infinite-energy controller of Sec 7.1/7.2.
	ControllerBattery battery.Factory
	// Faults is the deterministic runtime fault schedule (transient link
	// faults, wear breaks, node crashes, controller-region kill windows). The
	// zero value disables fault injection entirely and reproduces the
	// fault-free engine byte for byte.
	Faults faults.Spec
	// ControllerPower characterises controller power draw; the zero value is
	// replaced by the paper's measured 4x4 controller (its per-frame active
	// time, and therefore its energy, grows with the node count).
	ControllerPower energy.Controller
	// BatteryLevels is the number of quantisation levels used when nodes
	// report their remaining capacity.
	BatteryLevels int
	// ComputeCyclesPerOp is the latency of one act of computation.
	ComputeCyclesPerOp int
	// LinkWidthBits is the parallel width of the data interconnects; one hop
	// takes ceil(PacketBits / LinkWidthBits) cycles.
	LinkWidthBits int
	// ConcurrentJobs is the number of jobs kept in flight simultaneously.
	// The paper's Fig 7 / Table 2 experiments use 1 (a new job is launched
	// only when the previous one completes).
	ConcurrentJobs int
	// NodeBufferJobs is the number of jobs that may reside at a node at once
	// (being processed or waiting); additional arrivals block at their
	// current node, which is what makes deadlock possible under concurrent
	// load.
	NodeBufferJobs int
	// Source is the node at which jobs are injected (the attachment point of
	// the sensor/actuator block in Fig 3a). Use topology.Invalid to default
	// to node (1,1).
	Source topology.NodeID
	// MaxCycles stops the simulation even if the system has not died, as a
	// safety net; 0 means no limit.
	MaxCycles int64
	// Key, when non-nil, makes every job carry a real AES state through the
	// mesh: the block is encrypted by the distributed module pipeline and the
	// resulting ciphertext is verified against the reference cipher. Only
	// valid when App is an AES application built by app.AES.
	Key []byte
	// CollectNodeStats enables per-node statistics in the result.
	CollectNodeStats bool
	// Cancel, when non-nil, aborts the run at the next scheduling boundary
	// once the channel is closed: the simulator stops injecting work, finishes
	// with Reason DeathCancelled and returns the partial result. It is how
	// long-lived callers (the etserve daemon) stop a simulation whose client
	// has gone away; nil (the default) runs to system death as before.
	Cancel <-chan struct{}
	// Observers are attached to the simulator's event stream (see Observer).
	// The engine's own result accounting is always active and costs nothing
	// extra; nil entries are ignored. Observers receive events synchronously
	// on the simulation goroutine and must not call back into the Simulator.
	Observers []Observer
}

// Default returns a configuration for the paper's default scenario on the
// given square mesh size: AES-128, checkerboard mapping, EAR routing,
// thin-film batteries on the nodes and a single infinite-energy controller.
func Default(meshSize int) (Config, error) {
	mesh, err := topology.NewSquareMesh(meshSize)
	if err != nil {
		return Config{}, err
	}
	application := app.AES128()
	m, err := mapping.Checkerboard{}.Map(mesh.Graph, application)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Graph:              mesh.Graph,
		App:                application,
		Mapping:            m,
		Algorithm:          routing.NewEAR(),
		NodeBattery:        battery.DefaultThinFilmFactory(),
		Line:               energy.PaperTransmissionLine(),
		TDMA:               tdma.DefaultParams(),
		Controllers:        1,
		ControllerBattery:  nil,
		ControllerPower:    energy.PaperController4x4(),
		BatteryLevels:      routing.DefaultEARParams().Levels,
		ComputeCyclesPerOp: 4,
		LinkWidthBits:      8,
		ConcurrentJobs:     1,
		NodeBufferJobs:     1,
		Source:             mesh.Corner(),
		MaxCycles:          0,
	}, nil
}

// Validate checks the configuration and fills defaulted fields in place.
func (c *Config) Validate() error {
	if c.Graph == nil || c.Graph.NodeCount() == 0 {
		return fmt.Errorf("sim: configuration needs a non-empty graph")
	}
	if c.App == nil {
		return fmt.Errorf("sim: configuration needs an application")
	}
	if err := c.App.Validate(); err != nil {
		return err
	}
	if c.Mapping == nil {
		return fmt.Errorf("sim: configuration needs a module mapping")
	}
	if err := c.Mapping.Validate(c.App, c.Graph.NodeCount()); err != nil {
		return err
	}
	if c.Algorithm == nil {
		return fmt.Errorf("sim: configuration needs a routing algorithm")
	}
	if c.NodeBattery == nil {
		return fmt.Errorf("sim: configuration needs a node battery factory")
	}
	if c.Line == nil {
		return fmt.Errorf("sim: configuration needs a transmission-line model")
	}
	if err := c.TDMA.Validate(); err != nil {
		return err
	}
	if c.Controllers < 1 {
		return fmt.Errorf("sim: at least one controller is required, got %d", c.Controllers)
	}
	if err := c.Control.Validate(c.Graph.NodeCount()); err != nil {
		return err
	}
	if err := c.Faults.Validate(c.Control.ShardCount()); err != nil {
		return err
	}
	if c.BatteryLevels < 2 {
		return fmt.Errorf("sim: battery reporting needs at least 2 levels, got %d", c.BatteryLevels)
	}
	if c.ComputeCyclesPerOp < 1 {
		return fmt.Errorf("sim: computation latency must be at least one cycle")
	}
	if c.LinkWidthBits < 1 {
		return fmt.Errorf("sim: link width must be at least one bit")
	}
	if c.ConcurrentJobs < 1 {
		return fmt.Errorf("sim: at least one concurrent job is required")
	}
	if c.NodeBufferJobs < 1 {
		return fmt.Errorf("sim: node buffers must hold at least one job")
	}
	if c.Source == topology.Invalid {
		if id, ok := c.Graph.NodeAt(topology.Coord{X: 1, Y: 1}); ok {
			c.Source = id
		} else {
			c.Source = c.Graph.Nodes()[0].ID
		}
	}
	if !c.Graph.Has(c.Source) {
		return fmt.Errorf("sim: source node %d does not exist", c.Source)
	}
	if (c.ControllerPower == energy.Controller{}) {
		// The paper characterises the 4x4 controller; the routing workload
		// (and therefore the controller's active time per frame) already
		// grows with the node count, which is how larger meshes end up
		// consuming more controller energy per frame (Sec 7.3).
		c.ControllerPower = energy.PaperController4x4()
	}
	if c.MaxCycles < 0 {
		return fmt.Errorf("sim: MaxCycles must be non-negative")
	}
	if c.Key != nil {
		if _, err := aes.KeySizeForBytes(len(c.Key)); err != nil {
			return err
		}
	}
	return nil
}

// HopCycles returns the latency of one packet hop in cycles.
func (c *Config) HopCycles() int64 {
	bits := c.App.PacketBits
	width := c.LinkWidthBits
	return int64((bits + width - 1) / width)
}
