package sim

import (
	"testing"
)

// TestCancelStopsRun pins the cancellation contract: a run whose Cancel
// channel is already closed stops at its first scheduling boundary with
// Reason DeathCancelled, well before the system would have died on its own.
func TestCancelStopsRun(t *testing.T) {
	done := make(chan struct{})
	close(done)

	cfg, err := Default(4)
	if err != nil {
		t.Fatalf("Default(4): %v", err)
	}
	cfg.Cancel = done
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := s.Run()
	if res.Reason != DeathCancelled {
		t.Fatalf("Reason = %q, want %q", res.Reason, DeathCancelled)
	}

	// The uncancelled baseline runs to module extinction and completes jobs;
	// the cancelled run must have stopped essentially immediately.
	base, err := Default(4)
	if err != nil {
		t.Fatalf("Default(4): %v", err)
	}
	bs, err := New(base)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	full := bs.Run()
	if full.Reason == DeathCancelled {
		t.Fatalf("baseline run reported cancellation")
	}
	if res.LifetimeCycles >= full.LifetimeCycles && full.LifetimeCycles > 0 {
		t.Fatalf("cancelled run lived %d cycles, baseline %d — cancellation did not cut the run short",
			res.LifetimeCycles, full.LifetimeCycles)
	}
}

// TestCancelMidRunIsPrompt cancels from an observer hook a few frames in and
// checks the engine stops at the next boundary instead of running to death.
func TestCancelMidRunIsPrompt(t *testing.T) {
	done := make(chan struct{})
	stopAfter := int64(3)
	obs := &cancelAtFrame{frame: stopAfter, done: done}

	cfg, err := Default(4)
	if err != nil {
		t.Fatalf("Default(4): %v", err)
	}
	cfg.Cancel = done
	cfg.Observers = []Observer{obs}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := s.Run()
	if res.Reason != DeathCancelled {
		t.Fatalf("Reason = %q, want %q", res.Reason, DeathCancelled)
	}
	// The engine checks the channel once per scheduling iteration; the run
	// must end within a frame or two of the trigger, not tens of frames later.
	if res.Frames > stopAfter+2 {
		t.Fatalf("run continued to frame %d after cancellation at frame %d", res.Frames, stopAfter)
	}
}

type cancelAtFrame struct {
	BaseObserver
	frame  int64
	done   chan struct{}
	closed bool
}

func (c *cancelAtFrame) FrameProcessed(e FrameEvent) {
	if !c.closed && e.Frame >= c.frame {
		c.closed = true
		close(c.done)
	}
}
