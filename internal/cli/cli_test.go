package cli

import (
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := ParseInts(" 4,5 , 6,,", "mesh size")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Errorf("got %v", got)
	}

	if _, err := ParseInts("4,x", "mesh size"); err == nil || !strings.Contains(err.Error(), `invalid mesh size "x"`) {
		t.Errorf("bad element: err = %v", err)
	}
	if _, err := ParseInts(" , ", "mesh size"); err == nil || !strings.Contains(err.Error(), "no mesh sizes") {
		t.Errorf("empty list: err = %v", err)
	}
}
