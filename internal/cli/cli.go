// Package cli holds small helpers shared by the command-line front ends
// under cmd/.
package cli

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated list of integers, trimming whitespace
// and skipping empty elements. what names the quantity being parsed ("mesh
// size", "controller count", ...) so both the per-element and the empty-list
// errors read naturally in every front end.
func ParseInts(csv, what string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("invalid %s %q: %w", what, part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no %ss in %q", what, csv)
	}
	return out, nil
}

// ParseFloats is ParseInts for float axes (fault rates, fractions).
func ParseFloats(csv, what string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid %s %q: %w", what, part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no %ss in %q", what, csv)
	}
	return out, nil
}
