// Package battery implements the energy-storage models attached to every
// node (and optionally every controller) of the e-textile platform.
//
// Two models are provided, matching Sec 5.1.3 and Sec 7.2 of the paper:
//
//   - ThinFilm: a Li-free thin-film battery represented by its discharge
//     voltage profile (Fig 2) combined with a discrete-time two-well model in
//     the spirit of Benini et al., which captures the rate-capacity effect
//     (a heavily loaded battery reaches the 3.0 V cutoff early, wasting the
//     remaining stored energy) and charge recovery during idle periods.
//   - Ideal: a battery with constant output voltage and 100 % efficiency
//     until complete depletion, used for the comparison against the
//     analytical upper bound in Table 2.
//
// All energies are picojoules; the paper scales the nominal thin-film
// capacity down to 60000 pJ to keep simulations short, and so do we.
package battery

import (
	"errors"
	"fmt"
	"math"
)

// DefaultNominalPJ is the scaled-down nominal battery capacity used by the
// paper (Sec 5.1.3).
const DefaultNominalPJ = 60000

// DefaultCutoffVoltage is the output voltage below which a node is declared
// dead and the remaining stored energy is wasted (Sec 5.1.3).
const DefaultCutoffVoltage = 3.0

// ErrDead is returned by Draw when the battery can no longer supply energy.
var ErrDead = errors.New("battery: dead")

// Battery is the interface et_sim uses to account for node energy. Draw
// removes energy instantaneously (one act of computation or communication);
// Rest advances time so that models with charge recovery can rebalance.
type Battery interface {
	// Draw removes amountPJ picojoules from the battery. It returns ErrDead
	// if the battery is already dead or becomes unable to deliver the full
	// amount; in that case the battery is dead afterwards and the fraction
	// actually delivered is unspecified (the node browns out mid-operation).
	Draw(amountPJ float64) error
	// Rest advances the battery's internal clock by the given number of
	// cycles during which no energy is drawn.
	Rest(cycles int64)
	// Voltage returns the present output voltage in volts.
	Voltage() float64
	// RemainingPJ returns the total energy still stored in the battery,
	// whether or not it can actually be delivered before cutoff.
	RemainingPJ() float64
	// NominalPJ returns the initial (nominal) capacity.
	NominalPJ() float64
	// DeliveredPJ returns the total energy drawn so far.
	DeliveredPJ() float64
	// LevelFraction is the battery's own estimate of its remaining usable
	// charge in [0,1], as a node would derive it from its terminal voltage.
	// This is the quantity reported to the central controller and used by
	// EAR; for models with a rate-capacity effect it reflects the depressed
	// voltage of a heavily loaded battery, not just the stored charge.
	LevelFraction() float64
	// Dead reports whether the battery has reached its cutoff condition.
	Dead() bool
}

// Level quantizes a battery's reported level fraction into one of levels
// discrete values 0..levels-1, as reported by a node during its TDMA upload
// slot. A dead battery always reports level 0 and a full battery levels-1.
func Level(b Battery, levels int) int {
	if levels <= 1 {
		return 0
	}
	if b.Dead() {
		return 0
	}
	frac := b.LevelFraction()
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return levels - 1
	}
	l := int(frac * float64(levels))
	if l > levels-1 {
		l = levels - 1
	}
	return l
}

// Ideal is the ideal battery model of Sec 7.2: constant voltage and 100 %
// efficiency until the stored energy is exhausted.
type Ideal struct {
	nominal   float64
	remaining float64
	voltage   float64
}

// NewIdeal returns an ideal battery with the given nominal capacity in
// picojoules. The output voltage is reported as 4.1 V (the thin-film plateau)
// while alive and 0 V when depleted.
func NewIdeal(nominalPJ float64) (*Ideal, error) {
	if nominalPJ <= 0 {
		return nil, fmt.Errorf("battery: nominal capacity must be positive, got %g", nominalPJ)
	}
	return &Ideal{nominal: nominalPJ, remaining: nominalPJ, voltage: 4.1}, nil
}

// MustIdeal is NewIdeal with a panic on invalid capacity, for tests and
// statically-correct construction code.
func MustIdeal(nominalPJ float64) *Ideal {
	b, err := NewIdeal(nominalPJ)
	if err != nil {
		panic(err)
	}
	return b
}

// Draw implements Battery.
func (b *Ideal) Draw(amountPJ float64) error {
	if amountPJ < 0 {
		return fmt.Errorf("battery: negative draw %g pJ", amountPJ)
	}
	if b.Dead() {
		return ErrDead
	}
	if amountPJ > b.remaining {
		b.remaining = 0
		return ErrDead
	}
	b.remaining -= amountPJ
	return nil
}

// Rest implements Battery; an ideal battery has no time-dependent behaviour.
func (b *Ideal) Rest(cycles int64) {}

// Voltage implements Battery.
func (b *Ideal) Voltage() float64 {
	if b.Dead() {
		return 0
	}
	return b.voltage
}

// RemainingPJ implements Battery.
func (b *Ideal) RemainingPJ() float64 { return b.remaining }

// NominalPJ implements Battery.
func (b *Ideal) NominalPJ() float64 { return b.nominal }

// DeliveredPJ implements Battery.
func (b *Ideal) DeliveredPJ() float64 { return b.nominal - b.remaining }

// LevelFraction implements Battery: with a constant-voltage ideal source the
// best available estimate is the exact remaining charge fraction.
func (b *Ideal) LevelFraction() float64 { return b.remaining / b.nominal }

// Dead implements Battery. An ideal battery is dead only when (essentially)
// all of its energy has been delivered.
func (b *Ideal) Dead() bool { return b.remaining <= 1e-9 }

// DischargePoint is one (depth-of-discharge, voltage) sample of a discharge
// voltage profile. DepthOfDischarge is in [0,1].
type DischargePoint struct {
	DepthOfDischarge float64
	Voltage          float64
}

// DischargeProfile is a piecewise-linear discharge voltage curve.
type DischargeProfile []DischargePoint

// LiFreeThinFilmProfile is a digitisation of the Li-free thin-film battery
// discharge curve shown in Fig 2 of the paper (after Neudecker et al.): a
// plateau slightly above 4 V for most of the discharge followed by a sharp
// knee towards the 3.0 V cutoff.
func LiFreeThinFilmProfile() DischargeProfile {
	return DischargeProfile{
		{0.00, 4.18},
		{0.05, 4.10},
		{0.10, 4.06},
		{0.20, 4.00},
		{0.30, 3.95},
		{0.40, 3.90},
		{0.50, 3.85},
		{0.60, 3.79},
		{0.70, 3.72},
		{0.80, 3.62},
		{0.90, 3.45},
		{0.95, 3.28},
		{0.98, 3.10},
		{1.00, 2.85},
	}
}

// Validate checks that the profile is non-empty, sorted by depth of
// discharge, covers [0,1] and is monotonically non-increasing in voltage.
func (p DischargeProfile) Validate() error {
	if len(p) < 2 {
		return errors.New("battery: discharge profile needs at least two points")
	}
	if p[0].DepthOfDischarge != 0 || p[len(p)-1].DepthOfDischarge != 1 {
		return errors.New("battery: discharge profile must span depth of discharge 0..1")
	}
	for i := 1; i < len(p); i++ {
		if p[i].DepthOfDischarge <= p[i-1].DepthOfDischarge {
			return fmt.Errorf("battery: profile depths not strictly increasing at index %d", i)
		}
		if p[i].Voltage > p[i-1].Voltage {
			return fmt.Errorf("battery: profile voltage increases at index %d", i)
		}
	}
	return nil
}

// VoltageAt returns the interpolated voltage at the given depth of discharge,
// clamped to [0,1].
func (p DischargeProfile) VoltageAt(depth float64) float64 {
	if len(p) == 0 {
		return 0
	}
	if depth <= p[0].DepthOfDischarge {
		return p[0].Voltage
	}
	if depth >= p[len(p)-1].DepthOfDischarge {
		return p[len(p)-1].Voltage
	}
	for i := 1; i < len(p); i++ {
		if depth <= p[i].DepthOfDischarge {
			a, b := p[i-1], p[i]
			frac := (depth - a.DepthOfDischarge) / (b.DepthOfDischarge - a.DepthOfDischarge)
			return a.Voltage + frac*(b.Voltage-a.Voltage)
		}
	}
	return p[len(p)-1].Voltage
}

// ThinFilmParams configures the discrete-time thin-film battery model.
type ThinFilmParams struct {
	// NominalPJ is the nominal (rated) capacity.
	NominalPJ float64
	// CutoffVoltage is the voltage below which the node is dead.
	CutoffVoltage float64
	// AvailableFraction is the share of the nominal charge held in the
	// "available" well of the two-well discrete-time model. Only the
	// available well can deliver energy instantaneously; the rest diffuses
	// over from the bound well during idle periods.
	AvailableFraction float64
	// RecoveryPerCycle is the fraction of the well-height difference that
	// diffuses from the bound to the available well per clock cycle. Larger
	// values recover faster (weaker rate-capacity effect).
	RecoveryPerCycle float64
	// Profile is the discharge voltage curve.
	Profile DischargeProfile
}

// DefaultThinFilmParams returns the calibration used throughout the paper
// reproduction: 60000 pJ nominal capacity, 3.0 V cutoff, and a rate-capacity
// behaviour strong enough to reproduce the 5-15x EAR/SDR gap of Fig 7
// (a continuously hammered battery delivers only a small fraction of its
// charge before cutoff, while a duty-cycled battery delivers nearly all of
// it).
func DefaultThinFilmParams() ThinFilmParams {
	return ThinFilmParams{
		NominalPJ:         DefaultNominalPJ,
		CutoffVoltage:     DefaultCutoffVoltage,
		AvailableFraction: 0.30,
		RecoveryPerCycle:  8e-5,
		Profile:           LiFreeThinFilmProfile(),
	}
}

// ThinFilm is the discrete-time thin-film battery model.
type ThinFilm struct {
	params    ThinFilmParams
	available float64
	bound     float64
	delivered float64
	dead      bool
}

// NewThinFilm constructs a thin-film battery from the given parameters.
func NewThinFilm(p ThinFilmParams) (*ThinFilm, error) {
	if p.NominalPJ <= 0 {
		return nil, fmt.Errorf("battery: nominal capacity must be positive, got %g", p.NominalPJ)
	}
	if p.AvailableFraction <= 0 || p.AvailableFraction > 1 {
		return nil, fmt.Errorf("battery: available fraction must be in (0,1], got %g", p.AvailableFraction)
	}
	if p.RecoveryPerCycle < 0 {
		return nil, fmt.Errorf("battery: recovery rate must be non-negative, got %g", p.RecoveryPerCycle)
	}
	if p.CutoffVoltage < 0 {
		return nil, fmt.Errorf("battery: cutoff voltage must be non-negative, got %g", p.CutoffVoltage)
	}
	if err := p.Profile.Validate(); err != nil {
		return nil, err
	}
	return &ThinFilm{
		params:    p,
		available: p.AvailableFraction * p.NominalPJ,
		bound:     (1 - p.AvailableFraction) * p.NominalPJ,
	}, nil
}

// NewDefaultThinFilm returns a thin-film battery with the default paper
// calibration.
func NewDefaultThinFilm() *ThinFilm {
	b, err := NewThinFilm(DefaultThinFilmParams())
	if err != nil {
		panic("battery: default thin-film parameters invalid: " + err.Error())
	}
	return b
}

// availableDepth is the depth of discharge of the available well, which
// drives the output voltage: a well drained faster than diffusion can refill
// it shows a depressed voltage, reproducing the rate-capacity effect.
func (b *ThinFilm) availableDepth() float64 {
	capAvail := b.params.AvailableFraction * b.params.NominalPJ
	if capAvail <= 0 {
		return 1
	}
	d := 1 - b.available/capAvail
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// Voltage implements Battery.
func (b *ThinFilm) Voltage() float64 {
	if b.dead {
		return 0
	}
	return b.params.Profile.VoltageAt(b.availableDepth())
}

// Draw implements Battery.
func (b *ThinFilm) Draw(amountPJ float64) error {
	if amountPJ < 0 {
		return fmt.Errorf("battery: negative draw %g pJ", amountPJ)
	}
	if b.dead {
		return ErrDead
	}
	if amountPJ > b.available {
		// Brown-out: the available charge cannot cover the operation.
		b.delivered += b.available
		b.available = 0
		b.dead = true
		return ErrDead
	}
	b.available -= amountPJ
	b.delivered += amountPJ
	if b.Voltage() < b.params.CutoffVoltage {
		b.dead = true
		return ErrDead
	}
	return nil
}

// Rest implements Battery: charge diffuses from the bound well into the
// available well, modelling the recovery effect of the discrete-time model.
func (b *ThinFilm) Rest(cycles int64) {
	if b.dead || cycles <= 0 || b.params.RecoveryPerCycle == 0 {
		return
	}
	capAvail := b.params.AvailableFraction * b.params.NominalPJ
	capBound := (1 - b.params.AvailableFraction) * b.params.NominalPJ
	if capBound <= 0 {
		return
	}
	// Exact solution of the linear two-well diffusion over `cycles` steps.
	h1 := b.available / capAvail
	h2 := b.bound / capBound
	if h2 <= h1 {
		return
	}
	decay := math.Exp(-b.params.RecoveryPerCycle * float64(cycles))
	diff := (h2 - h1) * decay
	// Total charge is conserved; the equilibrium height is the weighted mean.
	heq := (b.available + b.bound) / (capAvail + capBound)
	newH1 := heq - diff*capBound/(capAvail+capBound)
	newH2 := heq + diff*capAvail/(capAvail+capBound)
	b.available = newH1 * capAvail
	b.bound = newH2 * capBound
	if b.available > capAvail {
		b.bound += b.available - capAvail
		b.available = capAvail
	}
}

// RemainingPJ implements Battery.
func (b *ThinFilm) RemainingPJ() float64 { return b.available + b.bound }

// NominalPJ implements Battery.
func (b *ThinFilm) NominalPJ() float64 { return b.params.NominalPJ }

// DeliveredPJ implements Battery.
func (b *ThinFilm) DeliveredPJ() float64 { return b.delivered }

// LevelFraction implements Battery. A thin-film node estimates its remaining
// charge from its terminal voltage: the fraction of the voltage swing between
// the cutoff and the fresh-cell voltage that is still available. Under light,
// duty-cycled load this tracks the overall depth of discharge; under
// sustained heavy load the depressed voltage of the draining available well
// makes the node report a low level early, which is exactly the signal EAR
// needs to steer traffic away before the node browns out.
func (b *ThinFilm) LevelFraction() float64 {
	if b.dead {
		return 0
	}
	full := b.params.Profile.VoltageAt(0)
	if full <= b.params.CutoffVoltage {
		return 0
	}
	frac := (b.Voltage() - b.params.CutoffVoltage) / (full - b.params.CutoffVoltage)
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

// WastedPJ returns the energy that can no longer be delivered because the
// battery hit its cutoff (zero while the battery is alive).
func (b *ThinFilm) WastedPJ() float64 {
	if !b.dead {
		return 0
	}
	return b.RemainingPJ()
}

// Dead implements Battery.
func (b *ThinFilm) Dead() bool { return b.dead }

// Params returns the parameters the battery was built with.
func (b *ThinFilm) Params() ThinFilmParams { return b.params }

// Factory builds fresh batteries of a particular model; the simulator uses it
// to equip every node (and controller) with an identical, independent battery
// as required by the paper's "same initial capacity" assumption.
type Factory func() Battery

// IdealFactory returns a Factory producing ideal batteries of the given
// nominal capacity.
func IdealFactory(nominalPJ float64) Factory {
	return func() Battery { return MustIdeal(nominalPJ) }
}

// ThinFilmFactory returns a Factory producing thin-film batteries with the
// given parameters. It panics immediately if the parameters are invalid so
// that misconfiguration is caught at construction time, not mid-simulation.
func ThinFilmFactory(p ThinFilmParams) Factory {
	if _, err := NewThinFilm(p); err != nil {
		panic(err)
	}
	return func() Battery {
		b, _ := NewThinFilm(p)
		return b
	}
}

// DefaultThinFilmFactory returns a Factory for the default paper calibration.
func DefaultThinFilmFactory() Factory { return ThinFilmFactory(DefaultThinFilmParams()) }
