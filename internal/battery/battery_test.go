package battery

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestIdealBatteryLifecycle(t *testing.T) {
	b := MustIdeal(1000)
	if b.NominalPJ() != 1000 || b.RemainingPJ() != 1000 {
		t.Fatalf("fresh battery: nominal=%g remaining=%g", b.NominalPJ(), b.RemainingPJ())
	}
	if b.Dead() {
		t.Fatal("fresh battery reported dead")
	}
	if b.Voltage() != 4.1 {
		t.Fatalf("ideal voltage = %g, want 4.1", b.Voltage())
	}
	for i := 0; i < 10; i++ {
		if err := b.Draw(100); err != nil && i < 9 {
			t.Fatalf("draw %d: %v", i, err)
		}
	}
	if !b.Dead() {
		t.Fatalf("battery should be dead after drawing its full capacity, remaining=%g", b.RemainingPJ())
	}
	if b.Voltage() != 0 {
		t.Fatalf("dead ideal battery voltage = %g, want 0", b.Voltage())
	}
	if err := b.Draw(1); !errors.Is(err, ErrDead) {
		t.Fatalf("draw on dead battery error = %v, want ErrDead", err)
	}
	if !almost(b.DeliveredPJ(), 1000, 1e-9) {
		t.Fatalf("DeliveredPJ = %g, want 1000", b.DeliveredPJ())
	}
}

func TestIdealBatteryOverdraw(t *testing.T) {
	b := MustIdeal(100)
	if err := b.Draw(150); !errors.Is(err, ErrDead) {
		t.Fatalf("overdraw error = %v, want ErrDead", err)
	}
	if !b.Dead() {
		t.Fatal("overdraw must kill the battery")
	}
}

func TestIdealBatteryRejectsNegativeDraw(t *testing.T) {
	b := MustIdeal(100)
	if err := b.Draw(-1); err == nil {
		t.Fatal("negative draw should be rejected")
	}
}

func TestNewIdealValidation(t *testing.T) {
	if _, err := NewIdeal(0); err == nil {
		t.Error("zero capacity should be rejected")
	}
	if _, err := NewIdeal(-5); err == nil {
		t.Error("negative capacity should be rejected")
	}
}

func TestMustIdealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustIdeal(-1) did not panic")
		}
	}()
	MustIdeal(-1)
}

func TestLevelQuantization(t *testing.T) {
	b := MustIdeal(1000)
	if got := Level(b, 8); got != 7 {
		t.Fatalf("full battery level = %d, want 7", got)
	}
	if err := b.Draw(500); err != nil {
		t.Fatal(err)
	}
	if got := Level(b, 8); got != 4 {
		t.Fatalf("half battery level = %d, want 4", got)
	}
	if err := b.Draw(437.5); err != nil {
		t.Fatal(err)
	}
	if got := Level(b, 8); got != 0 {
		t.Fatalf("nearly-empty battery level = %d, want 0", got)
	}
	if got := Level(b, 1); got != 0 {
		t.Fatalf("single-level quantization = %d, want 0", got)
	}
	if err := b.Draw(100); !errors.Is(err, ErrDead) {
		t.Fatal("expected battery to die")
	}
	if got := Level(b, 8); got != 0 {
		t.Fatalf("dead battery level = %d, want 0", got)
	}
}

func TestLevelMonotoneProperty(t *testing.T) {
	prop := func(drawPermille uint16, levels uint8) bool {
		nLevels := int(levels%15) + 2
		b := MustIdeal(1000)
		amount := float64(drawPermille % 1000) // 0..999 pJ
		if err := b.Draw(amount); err != nil {
			return false
		}
		l := Level(b, nLevels)
		return l >= 0 && l <= nLevels-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDischargeProfileValidate(t *testing.T) {
	if err := LiFreeThinFilmProfile().Validate(); err != nil {
		t.Fatalf("paper profile invalid: %v", err)
	}
	bad := []DischargeProfile{
		{},
		{{0, 4}},
		{{0.1, 4}, {1, 3}},                       // does not start at 0
		{{0, 4}, {0.9, 3}},                       // does not end at 1
		{{0, 4}, {0.5, 3.5}, {0.5, 3}, {1, 2.9}}, // duplicate depth
		{{0, 4}, {0.5, 4.2}, {1, 3}},             // voltage increases
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d passed validation", i)
		}
	}
}

func TestDischargeProfileInterpolation(t *testing.T) {
	p := DischargeProfile{{0, 4.0}, {0.5, 3.5}, {1, 3.0}}
	cases := []struct{ depth, want float64 }{
		{-0.5, 4.0}, {0, 4.0}, {0.25, 3.75}, {0.5, 3.5}, {0.75, 3.25}, {1, 3.0}, {1.5, 3.0},
	}
	for _, tc := range cases {
		if got := p.VoltageAt(tc.depth); !almost(got, tc.want, 1e-9) {
			t.Errorf("VoltageAt(%g) = %g, want %g", tc.depth, got, tc.want)
		}
	}
	var empty DischargeProfile
	if empty.VoltageAt(0.5) != 0 {
		t.Error("empty profile should report 0 V")
	}
}

func TestThinFilmParameterValidation(t *testing.T) {
	base := DefaultThinFilmParams()
	mutations := []func(*ThinFilmParams){
		func(p *ThinFilmParams) { p.NominalPJ = 0 },
		func(p *ThinFilmParams) { p.NominalPJ = -1 },
		func(p *ThinFilmParams) { p.AvailableFraction = 0 },
		func(p *ThinFilmParams) { p.AvailableFraction = 1.5 },
		func(p *ThinFilmParams) { p.RecoveryPerCycle = -1 },
		func(p *ThinFilmParams) { p.CutoffVoltage = -0.1 },
		func(p *ThinFilmParams) { p.Profile = nil },
	}
	for i, mutate := range mutations {
		p := base
		mutate(&p)
		if _, err := NewThinFilm(p); err == nil {
			t.Errorf("mutation %d accepted invalid parameters", i)
		}
	}
	if _, err := NewThinFilm(base); err != nil {
		t.Fatalf("default parameters rejected: %v", err)
	}
}

func TestThinFilmFreshState(t *testing.T) {
	b := NewDefaultThinFilm()
	if b.Dead() {
		t.Fatal("fresh thin-film battery reported dead")
	}
	if !almost(b.RemainingPJ(), DefaultNominalPJ, 1e-9) {
		t.Fatalf("fresh remaining = %g, want %g", b.RemainingPJ(), float64(DefaultNominalPJ))
	}
	if v := b.Voltage(); v < 4.0 || v > 4.3 {
		t.Fatalf("fresh voltage = %g, want near 4.18", v)
	}
	if b.DeliveredPJ() != 0 || b.WastedPJ() != 0 {
		t.Fatal("fresh battery should have delivered and wasted nothing")
	}
}

func TestThinFilmContinuousHammeringDeliversSmallFraction(t *testing.T) {
	// A node that never rests should reach cutoff after delivering roughly its
	// available-well charge — the rate-capacity effect the EAR/SDR gap relies on.
	b := NewDefaultThinFilm()
	var delivered float64
	for i := 0; i < 100000; i++ {
		if err := b.Draw(300); err != nil {
			break
		}
		delivered += 300
	}
	if !b.Dead() {
		t.Fatal("hammered battery never died")
	}
	frac := delivered / b.NominalPJ()
	if frac > 0.30 {
		t.Fatalf("hammered battery delivered %.1f%% of nominal, want < 30%%", 100*frac)
	}
	if frac < 0.05 {
		t.Fatalf("hammered battery delivered only %.1f%% of nominal, model too aggressive", 100*frac)
	}
	if b.WastedPJ() <= 0 {
		t.Fatal("a hammered battery must waste energy at cutoff")
	}
}

func TestThinFilmDutyCycledDeliversMostOfNominal(t *testing.T) {
	// A node that rests between operations (as under EAR's balanced load)
	// should deliver the large majority of its nominal capacity.
	b := NewDefaultThinFilm()
	var delivered float64
	for i := 0; i < 2000; i++ {
		if err := b.Draw(300); err != nil {
			break
		}
		delivered += 300
		b.Rest(60000)
	}
	frac := delivered / b.NominalPJ()
	if frac < 0.80 {
		t.Fatalf("duty-cycled battery delivered %.1f%% of nominal, want >= 80%%", 100*frac)
	}
}

func TestThinFilmRecoveryRaisesVoltage(t *testing.T) {
	b := NewDefaultThinFilm()
	// Drain a good part of the available well.
	for i := 0; i < 12; i++ {
		if err := b.Draw(300); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
	}
	vStressed := b.Voltage()
	b.Rest(5_000_000)
	vRecovered := b.Voltage()
	if vRecovered <= vStressed {
		t.Fatalf("voltage did not recover: stressed %.3f V, rested %.3f V", vStressed, vRecovered)
	}
}

func TestThinFilmRestConservesCharge(t *testing.T) {
	prop := func(draws uint8, restCycles uint32) bool {
		b := NewDefaultThinFilm()
		for i := 0; i < int(draws%40); i++ {
			if err := b.Draw(250); err != nil {
				return true // dying early is fine; nothing to conserve after that
			}
		}
		before := b.RemainingPJ()
		b.Rest(int64(restCycles % 10_000_000))
		after := b.RemainingPJ()
		return math.Abs(before-after) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThinFilmVoltageMonotoneUnderContinuousDraw(t *testing.T) {
	b := NewDefaultThinFilm()
	prev := b.Voltage()
	for {
		if err := b.Draw(100); err != nil {
			break
		}
		v := b.Voltage()
		if v > prev+1e-9 {
			t.Fatalf("voltage increased under continuous draw: %.4f -> %.4f", prev, v)
		}
		prev = v
	}
}

func TestThinFilmDrawAccounting(t *testing.T) {
	b := NewDefaultThinFilm()
	if err := b.Draw(1234); err != nil {
		t.Fatal(err)
	}
	if !almost(b.DeliveredPJ(), 1234, 1e-9) {
		t.Fatalf("DeliveredPJ = %g, want 1234", b.DeliveredPJ())
	}
	if !almost(b.RemainingPJ(), DefaultNominalPJ-1234, 1e-9) {
		t.Fatalf("RemainingPJ = %g, want %g", b.RemainingPJ(), DefaultNominalPJ-1234.0)
	}
	if err := b.Draw(-1); err == nil {
		t.Fatal("negative draw should be rejected")
	}
}

func TestThinFilmDeadBatteryRejectsUse(t *testing.T) {
	p := DefaultThinFilmParams()
	p.NominalPJ = 1000
	b, err := NewThinFilm(p)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if err := b.Draw(50); err != nil {
			break
		}
	}
	if !b.Dead() {
		t.Fatal("battery should be dead")
	}
	if b.Voltage() != 0 {
		t.Fatalf("dead battery voltage = %g, want 0", b.Voltage())
	}
	if err := b.Draw(1); !errors.Is(err, ErrDead) {
		t.Fatalf("draw on dead battery = %v, want ErrDead", err)
	}
	remaining := b.RemainingPJ()
	b.Rest(1_000_000)
	if b.RemainingPJ() != remaining {
		t.Fatal("dead battery must not recover")
	}
	if b.WastedPJ() != remaining {
		t.Fatalf("WastedPJ = %g, want %g", b.WastedPJ(), remaining)
	}
}

func TestThinFilmSlowDischargeFollowsProfile(t *testing.T) {
	// With plenty of rest between small draws the two wells stay balanced and
	// the terminal voltage should track the published discharge curve within
	// a small tolerance.
	b := NewDefaultThinFilm()
	profile := LiFreeThinFilmProfile()
	for {
		if err := b.Draw(60); err != nil {
			break
		}
		b.Rest(2_000_000)
		dod := b.DeliveredPJ() / b.NominalPJ()
		want := profile.VoltageAt(dod)
		if math.Abs(b.Voltage()-want) > 0.15 {
			t.Fatalf("at DoD %.2f voltage %.3f deviates from profile %.3f by more than 0.15 V",
				dod, b.Voltage(), want)
		}
		if dod > 0.9 {
			break
		}
	}
	if b.DeliveredPJ()/b.NominalPJ() < 0.9 {
		t.Fatalf("slow discharge delivered only %.1f%% before dying",
			100*b.DeliveredPJ()/b.NominalPJ())
	}
}

func TestFactoriesProduceIndependentBatteries(t *testing.T) {
	for name, factory := range map[string]Factory{
		"ideal":    IdealFactory(500),
		"thinfilm": DefaultThinFilmFactory(),
	} {
		t.Run(name, func(t *testing.T) {
			a := factory()
			b := factory()
			if err := a.Draw(100); err != nil {
				t.Fatal(err)
			}
			if b.DeliveredPJ() != 0 {
				t.Fatal("drawing from one battery affected another")
			}
			if a.NominalPJ() != b.NominalPJ() {
				t.Fatal("factory produced batteries with different capacities")
			}
		})
	}
}

func TestThinFilmFactoryPanicsOnInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ThinFilmFactory with invalid params did not panic")
		}
	}()
	ThinFilmFactory(ThinFilmParams{NominalPJ: -1})
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
