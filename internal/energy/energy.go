// Package energy provides the electrical energy models used by et_sim: the
// textile transmission-line model (per-bit link energy as a function of wire
// length), the shared 2-bit control medium of the TDMA scheme, and the
// central-controller power model.
//
// All energies are expressed in picojoules (pJ) and all powers in milliwatts
// (mW), matching the units used in the paper. Conversions between the two use
// the 100 MHz system clock the paper's modules were characterised at.
package energy

import (
	"fmt"
	"math"
	"sort"
)

// ClockFrequencyHz is the clock frequency at which all paper measurements
// were taken (Sec 5.1.1 and 7.3).
const ClockFrequencyHz = 100e6

// PicojoulesPerCycle converts a power in milliwatts into the energy in
// picojoules consumed during one clock cycle at ClockFrequencyHz.
func PicojoulesPerCycle(powerMW float64) float64 {
	// mW = 1e-3 J/s = 1e9 pJ/s; divide by cycles per second.
	return powerMW * 1e9 / ClockFrequencyHz
}

// LinePoint is one measured (length, energy-per-bit) anchor of the textile
// transmission-line characterisation.
type LinePoint struct {
	LengthCM float64
	PJPerBit float64
}

// PaperLinePoints are the SPICE-derived per-bit switching energies reported
// in Sec 5.1.2 for textile transmission lines of 1, 10, 20 and 100 cm.
func PaperLinePoints() []LinePoint {
	return []LinePoint{
		{LengthCM: 1, PJPerBit: 0.4472},
		{LengthCM: 10, PJPerBit: 4.4472},
		{LengthCM: 20, PJPerBit: 11.867},
		{LengthCM: 100, PJPerBit: 53.082},
	}
}

// TransmissionLine models the energy cost of driving bits over a textile
// transmission line of arbitrary length. Energies between the measured anchor
// points are interpolated linearly; lengths shorter than the first anchor are
// scaled proportionally towards zero, and lengths beyond the last anchor are
// extrapolated along the final segment (the measured data is close to linear
// in that region).
type TransmissionLine struct {
	points []LinePoint
}

// NewTransmissionLine builds a transmission-line model from measured anchor
// points. At least one point with positive length and non-negative energy is
// required; points are sorted by length internally.
func NewTransmissionLine(points []LinePoint) (*TransmissionLine, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("energy: transmission line needs at least one anchor point")
	}
	ps := make([]LinePoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].LengthCM < ps[j].LengthCM })
	for i, p := range ps {
		if p.LengthCM <= 0 {
			return nil, fmt.Errorf("energy: anchor %d has non-positive length %g", i, p.LengthCM)
		}
		if p.PJPerBit < 0 {
			return nil, fmt.Errorf("energy: anchor %d has negative energy %g", i, p.PJPerBit)
		}
		if i > 0 && ps[i-1].LengthCM == p.LengthCM {
			return nil, fmt.Errorf("energy: duplicate anchor length %g cm", p.LengthCM)
		}
	}
	return &TransmissionLine{points: ps}, nil
}

// PaperTransmissionLine returns the model built from the paper's measured
// anchor points.
func PaperTransmissionLine() *TransmissionLine {
	tl, err := NewTransmissionLine(PaperLinePoints())
	if err != nil {
		panic("energy: paper transmission line points invalid: " + err.Error())
	}
	return tl
}

// PerBitPJ returns the energy in picojoules consumed per bit-switching
// activity on a line of the given length in centimetres.
func (t *TransmissionLine) PerBitPJ(lengthCM float64) float64 {
	if lengthCM <= 0 {
		return 0
	}
	ps := t.points
	if lengthCM <= ps[0].LengthCM {
		// Scale proportionally towards the origin below the first anchor.
		return ps[0].PJPerBit * lengthCM / ps[0].LengthCM
	}
	for i := 1; i < len(ps); i++ {
		if lengthCM <= ps[i].LengthCM {
			return interpolate(ps[i-1], ps[i], lengthCM)
		}
	}
	if len(ps) == 1 {
		return ps[0].PJPerBit * lengthCM / ps[0].LengthCM
	}
	// Extrapolate along the last segment.
	return interpolate(ps[len(ps)-2], ps[len(ps)-1], lengthCM)
}

func interpolate(a, b LinePoint, lengthCM float64) float64 {
	frac := (lengthCM - a.LengthCM) / (b.LengthCM - a.LengthCM)
	return a.PJPerBit + frac*(b.PJPerBit-a.PJPerBit)
}

// PacketEnergyPJ returns the energy, in picojoules, consumed to transmit a
// packet of the given size (in bits) over a line of the given length. The
// paper multiplies the per-bit switching energy by the packet size, which
// corresponds to a worst-case (all bits toggling) activity factor of 1.
func (t *TransmissionLine) PacketEnergyPJ(lengthCM float64, packetBits int) float64 {
	if packetBits <= 0 {
		return 0
	}
	return t.PerBitPJ(lengthCM) * float64(packetBits)
}

// Anchors returns a copy of the model's anchor points ordered by length.
func (t *TransmissionLine) Anchors() []LinePoint {
	out := make([]LinePoint, len(t.points))
	copy(out, t.points)
	return out
}

// SharedMedium models the narrow shared bus used by the TDMA control
// mechanism (Sec 5.3). The medium is WidthBits wide; transferring a control
// word of SlotBits bits therefore occupies ceil(SlotBits/WidthBits) cycles
// and consumes SlotBits * PJPerBit picojoules.
type SharedMedium struct {
	// WidthBits is the width of the shared control bus (2 in the paper).
	WidthBits int
	// PJPerBit is the energy per bit transferred on the shared medium.
	PJPerBit float64
}

// DefaultSharedMedium returns the 2-bit shared medium used by the paper with
// a per-bit energy chosen so that the control-overhead percentages of Sec 7.1
// (2.8 % .. 11.6 % from 4x4 to 8x8) are reproduced together with the default
// TDMA parameters (4-bit status uploads, one frame every 1024 cycles).
func DefaultSharedMedium() SharedMedium {
	return SharedMedium{WidthBits: 2, PJPerBit: 0.7}
}

// SlotCycles returns the number of cycles one upload or download slot of the
// given payload occupies on the medium.
func (m SharedMedium) SlotCycles(slotBits int) int {
	if slotBits <= 0 || m.WidthBits <= 0 {
		return 0
	}
	return int(math.Ceil(float64(slotBits) / float64(m.WidthBits)))
}

// SlotEnergyPJ returns the energy consumed by transferring one slot of the
// given payload size on the medium.
func (m SharedMedium) SlotEnergyPJ(slotBits int) float64 {
	if slotBits <= 0 {
		return 0
	}
	return float64(slotBits) * m.PJPerBit
}

// Controller models the power drawn by one centralized controller. The paper
// reports 6.94 mW dynamic and 0.57 mW leakage power for the 4x4-mesh
// controller at 100 MHz; controllers for larger meshes consume
// proportionally more power (Sec 7.3 observes exactly this trend).
type Controller struct {
	// DynamicMW is the dynamic power drawn while the controller is active
	// (executing the routing algorithm or driving the shared medium).
	DynamicMW float64
	// LeakageMW is the leakage power drawn whenever the controller is
	// powered, active or not.
	LeakageMW float64
}

// PaperController4x4 is the controller characterisation reported in Sec 7.3
// for a 4x4 mesh at 100 MHz.
func PaperController4x4() Controller {
	return Controller{DynamicMW: 6.94, LeakageMW: 0.57}
}

// ControllerForMesh scales the 4x4 controller linearly with the number of
// nodes it has to manage. The paper states that a controller for a bigger
// mesh consumes more power; linear scaling in the node count is the simplest
// model consistent with the reported trend.
func ControllerForMesh(nodes int) Controller {
	base := PaperController4x4()
	if nodes <= 0 {
		return Controller{}
	}
	scale := float64(nodes) / 16.0
	return Controller{
		DynamicMW: base.DynamicMW * scale,
		LeakageMW: base.LeakageMW * scale,
	}
}

// ActiveEnergyPJ returns the energy consumed by the controller while active
// for the given number of clock cycles (dynamic plus leakage power).
func (c Controller) ActiveEnergyPJ(cycles int) float64 {
	if cycles <= 0 {
		return 0
	}
	return PicojoulesPerCycle(c.DynamicMW+c.LeakageMW) * float64(cycles)
}

// IdleEnergyPJ returns the energy consumed by a powered but idle controller
// over the given number of clock cycles (leakage only).
func (c Controller) IdleEnergyPJ(cycles int) float64 {
	if cycles <= 0 {
		return 0
	}
	return PicojoulesPerCycle(c.LeakageMW) * float64(cycles)
}
