package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPicojoulesPerCycle(t *testing.T) {
	// 1 mW at 100 MHz is 10 pJ per cycle.
	if got := PicojoulesPerCycle(1); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("PicojoulesPerCycle(1 mW) = %g, want 10", got)
	}
	if got := PicojoulesPerCycle(6.94); !almostEqual(got, 69.4, 1e-9) {
		t.Fatalf("PicojoulesPerCycle(6.94 mW) = %g, want 69.4", got)
	}
	if got := PicojoulesPerCycle(0); got != 0 {
		t.Fatalf("PicojoulesPerCycle(0) = %g, want 0", got)
	}
}

func TestPaperTransmissionLineAnchorsExact(t *testing.T) {
	tl := PaperTransmissionLine()
	cases := []struct {
		lengthCM float64
		want     float64
	}{
		{1, 0.4472},
		{10, 4.4472},
		{20, 11.867},
		{100, 53.082},
	}
	for _, tc := range cases {
		if got := tl.PerBitPJ(tc.lengthCM); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("PerBitPJ(%g cm) = %g, want %g", tc.lengthCM, got, tc.want)
		}
	}
}

func TestTransmissionLineInterpolation(t *testing.T) {
	tl := PaperTransmissionLine()
	// Midpoint between 10 cm and 20 cm anchors.
	want := (4.4472 + 11.867) / 2
	if got := tl.PerBitPJ(15); !almostEqual(got, want, 1e-9) {
		t.Errorf("PerBitPJ(15 cm) = %g, want %g", got, want)
	}
	// Below the first anchor: proportional to length.
	if got := tl.PerBitPJ(0.5); !almostEqual(got, 0.4472/2, 1e-9) {
		t.Errorf("PerBitPJ(0.5 cm) = %g, want %g", got, 0.4472/2)
	}
	// Beyond the last anchor: extrapolation along the last segment slope.
	slope := (53.082 - 11.867) / 80.0
	want = 53.082 + 20*slope
	if got := tl.PerBitPJ(120); !almostEqual(got, want, 1e-9) {
		t.Errorf("PerBitPJ(120 cm) = %g, want %g", got, want)
	}
	if got := tl.PerBitPJ(0); got != 0 {
		t.Errorf("PerBitPJ(0) = %g, want 0", got)
	}
	if got := tl.PerBitPJ(-3); got != 0 {
		t.Errorf("PerBitPJ(-3) = %g, want 0", got)
	}
}

func TestTransmissionLineMonotonicityProperty(t *testing.T) {
	tl := PaperTransmissionLine()
	prop := func(a, b uint16) bool {
		la := float64(a%20000)/100 + 0.01 // 0.01 .. 200 cm
		lb := float64(b%20000)/100 + 0.01
		ea, eb := tl.PerBitPJ(la), tl.PerBitPJ(lb)
		if la < lb {
			return ea <= eb
		}
		if la > lb {
			return ea >= eb
		}
		return ea == eb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketEnergyScalesWithBits(t *testing.T) {
	tl := PaperTransmissionLine()
	per := tl.PerBitPJ(1)
	if got := tl.PacketEnergyPJ(1, 261); !almostEqual(got, per*261, 1e-9) {
		t.Fatalf("PacketEnergyPJ(1 cm, 261 bits) = %g, want %g", got, per*261)
	}
	if got := tl.PacketEnergyPJ(1, 0); got != 0 {
		t.Fatalf("PacketEnergyPJ with zero bits = %g, want 0", got)
	}
	if got := tl.PacketEnergyPJ(1, -5); got != 0 {
		t.Fatalf("PacketEnergyPJ with negative bits = %g, want 0", got)
	}
}

func TestNewTransmissionLineValidation(t *testing.T) {
	if _, err := NewTransmissionLine(nil); err == nil {
		t.Error("empty anchor list should be rejected")
	}
	if _, err := NewTransmissionLine([]LinePoint{{LengthCM: 0, PJPerBit: 1}}); err == nil {
		t.Error("zero-length anchor should be rejected")
	}
	if _, err := NewTransmissionLine([]LinePoint{{LengthCM: 1, PJPerBit: -1}}); err == nil {
		t.Error("negative-energy anchor should be rejected")
	}
	if _, err := NewTransmissionLine([]LinePoint{
		{LengthCM: 5, PJPerBit: 1}, {LengthCM: 5, PJPerBit: 2},
	}); err == nil {
		t.Error("duplicate anchor lengths should be rejected")
	}
	// A single valid anchor is fine and scales linearly from the origin.
	tl, err := NewTransmissionLine([]LinePoint{{LengthCM: 2, PJPerBit: 4}})
	if err != nil {
		t.Fatalf("single anchor rejected: %v", err)
	}
	if got := tl.PerBitPJ(4); !almostEqual(got, 8, 1e-9) {
		t.Errorf("single-anchor extrapolation = %g, want 8", got)
	}
	if got := tl.PerBitPJ(1); !almostEqual(got, 2, 1e-9) {
		t.Errorf("single-anchor interpolation = %g, want 2", got)
	}
}

func TestAnchorsAreSortedCopies(t *testing.T) {
	tl, err := NewTransmissionLine([]LinePoint{
		{LengthCM: 20, PJPerBit: 11.867},
		{LengthCM: 1, PJPerBit: 0.4472},
	})
	if err != nil {
		t.Fatal(err)
	}
	anchors := tl.Anchors()
	if len(anchors) != 2 || anchors[0].LengthCM != 1 || anchors[1].LengthCM != 20 {
		t.Fatalf("Anchors() = %v, want sorted by length", anchors)
	}
	anchors[0].PJPerBit = 999
	if tl.PerBitPJ(1) == 999 {
		t.Fatal("mutating Anchors() result changed the model")
	}
}

func TestSharedMediumSlotAccounting(t *testing.T) {
	m := DefaultSharedMedium()
	if m.WidthBits != 2 {
		t.Fatalf("default medium width = %d, want 2", m.WidthBits)
	}
	if got := m.SlotCycles(32); got != 16 {
		t.Errorf("SlotCycles(32) = %d, want 16", got)
	}
	if got := m.SlotCycles(33); got != 17 {
		t.Errorf("SlotCycles(33) = %d, want 17 (ceiling)", got)
	}
	if got := m.SlotCycles(0); got != 0 {
		t.Errorf("SlotCycles(0) = %d, want 0", got)
	}
	if got := m.SlotEnergyPJ(10); !almostEqual(got, 10*m.PJPerBit, 1e-9) {
		t.Errorf("SlotEnergyPJ(10) = %g, want %g", got, 10*m.PJPerBit)
	}
	if got := m.SlotEnergyPJ(-1); got != 0 {
		t.Errorf("SlotEnergyPJ(-1) = %g, want 0", got)
	}
}

func TestControllerEnergy(t *testing.T) {
	c := PaperController4x4()
	if c.DynamicMW != 6.94 || c.LeakageMW != 0.57 {
		t.Fatalf("paper controller = %+v, want 6.94/0.57 mW", c)
	}
	// 100 cycles active: (6.94+0.57) mW -> 75.1 pJ/cycle -> 7510 pJ.
	if got := c.ActiveEnergyPJ(100); !almostEqual(got, 7510, 1e-6) {
		t.Errorf("ActiveEnergyPJ(100) = %g, want 7510", got)
	}
	if got := c.IdleEnergyPJ(100); !almostEqual(got, 570, 1e-6) {
		t.Errorf("IdleEnergyPJ(100) = %g, want 570", got)
	}
	if c.ActiveEnergyPJ(0) != 0 || c.IdleEnergyPJ(-5) != 0 {
		t.Error("non-positive cycle counts must consume no energy")
	}
}

func TestControllerForMeshScalesLinearly(t *testing.T) {
	c16 := ControllerForMesh(16)
	base := PaperController4x4()
	if !almostEqual(c16.DynamicMW, base.DynamicMW, 1e-12) {
		t.Fatalf("16-node controller dynamic = %g, want %g", c16.DynamicMW, base.DynamicMW)
	}
	c64 := ControllerForMesh(64)
	if !almostEqual(c64.DynamicMW, base.DynamicMW*4, 1e-9) {
		t.Errorf("64-node controller dynamic = %g, want %g", c64.DynamicMW, base.DynamicMW*4)
	}
	if !almostEqual(c64.LeakageMW, base.LeakageMW*4, 1e-9) {
		t.Errorf("64-node controller leakage = %g, want %g", c64.LeakageMW, base.LeakageMW*4)
	}
	zero := ControllerForMesh(0)
	if zero.DynamicMW != 0 || zero.LeakageMW != 0 {
		t.Errorf("ControllerForMesh(0) = %+v, want zero power", zero)
	}
	larger := ControllerForMesh(49)
	smaller := ControllerForMesh(25)
	if larger.DynamicMW <= smaller.DynamicMW {
		t.Error("controller power must grow with mesh size")
	}
}
