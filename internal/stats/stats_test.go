package stats

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestFormat(t *testing.T) {
	cases := []struct {
		in   interface{}
		want string
	}{
		{42, "42"},
		{3.0, "3"},
		{3.14159, "3.14"},
		{float32(2.5), "2.50"},
		{"hello", "hello"},
		{true, "true"},
	}
	for _, tc := range cases {
		if got := Format(tc.in); got != tc.want {
			t.Errorf("Format(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Table 2", "mesh", "J(EAR)", "J*", "ratio")
	tbl.AddRow("4x4", 62.8, 131.42, "47.8%")
	tbl.AddRow("8x8", 234.0, 525.69, "44.5%")
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	out := tbl.Render()
	for _, want := range []string{"Table 2", "mesh", "J(EAR)", "62.80", "525.69", "44.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("rendered table has %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns must be aligned: every data line at least as long as the header line.
	header := lines[1]
	for _, l := range lines[2:] {
		if len(strings.TrimRight(l, " ")) > len(header)+20 {
			t.Errorf("line much longer than header, alignment broken: %q", l)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("plain", 1)
	tbl.AddRow("has,comma", "has\"quote")
	csv := tbl.CSV()
	wantLines := []string{
		"a,b",
		"plain,1",
		`"has,comma","has""quote"`,
	}
	got := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(got), len(wantLines), csv)
	}
	for i := range wantLines {
		if got[i] != wantLines[i] {
			t.Errorf("CSV line %d = %q, want %q", i, got[i], wantLines[i])
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("Fig 7", "mesh", "jobs")
	tbl.AddRow("4x4", 60)
	md := tbl.Markdown()
	for _, want := range []string{"### Fig 7", "| mesh | jobs |", "|---|---|", "| 4x4 | 60 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "EAR"}
	if s.MinY() != 0 || s.MaxY() != 0 {
		t.Error("empty series extremes should be 0")
	}
	s.Add(4, 60)
	s.Add(5, 92)
	s.Add(8, 234)
	if s.MaxY() != 234 || s.MinY() != 60 {
		t.Errorf("MinY/MaxY = %g/%g, want 60/234", s.MinY(), s.MaxY())
	}
	ys := s.Ys()
	if len(ys) != 3 || ys[0] != 60 || ys[2] != 234 {
		t.Errorf("Ys = %v", ys)
	}
	if p, ok := s.lookupPoint(5); !ok || p.Y != 92 {
		t.Errorf("lookupPoint(5) = %g, %v", p.Y, ok)
	}
	if _, ok := s.lookupPoint(7); ok {
		t.Error("lookup of missing x succeeded")
	}
}

func TestChartRender(t *testing.T) {
	c := NewChart("Fig 7: jobs completed", "mesh", "# of jobs")
	ear := c.AddSeries("EAR")
	sdr := c.AddSeries("SDR")
	ear.Add(4, 60)
	ear.Add(8, 150)
	sdr.Add(4, 8)
	sdr.Add(8, 15)
	out := c.Render(40)
	for _, want := range []string{"Fig 7", "mesh = 4", "mesh = 8", "EAR", "SDR", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q:\n%s", want, out)
		}
	}
	// The EAR bar at mesh=8 must be the longest (full scale).
	lines := strings.Split(out, "\n")
	maxHashes, maxLine := 0, ""
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > maxHashes {
			maxHashes = n
			maxLine = l
		}
	}
	if !strings.Contains(maxLine, "EAR") || !strings.Contains(maxLine, "150") {
		t.Errorf("longest bar is %q, want the EAR/150 bar", maxLine)
	}
	// Tiny widths are clamped rather than panicking.
	if out := c.Render(1); out == "" {
		t.Error("Render with tiny width returned nothing")
	}
}

func TestChartRenderEmpty(t *testing.T) {
	c := NewChart("empty", "x", "y")
	if out := c.Render(20); !strings.Contains(out, "empty") {
		t.Errorf("empty chart render = %q", out)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tbl := NewTable("title is not part of CSV", "col,with,commas", "plain")
	tbl.AddRow("line\nbreak", `quote " inside`)
	tbl.AddRow("", "trailing")
	csv := tbl.CSV()
	if strings.Contains(csv, "title is not part of CSV") {
		t.Error("CSV output leaked the table title")
	}
	if !strings.HasPrefix(csv, `"col,with,commas",plain`) {
		t.Errorf("comma-bearing header not quoted: %q", csv)
	}
	if !strings.Contains(csv, "\"line\nbreak\"") {
		t.Errorf("newline-bearing cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"quote "" inside"`) {
		t.Errorf("quote not doubled: %q", csv)
	}
	// An empty cell stays an empty field, not a quoted empty string.
	if !strings.Contains(csv, ",trailing") {
		t.Errorf("empty cell mangled: %q", csv)
	}
}

func TestTableMarkdownNoTitle(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow(1, 2)
	md := tbl.Markdown()
	if strings.Contains(md, "###") {
		t.Errorf("untitled table emitted a heading: %q", md)
	}
	if !strings.HasPrefix(md, "| a | b |") {
		t.Errorf("markdown table must start at the header row: %q", md)
	}
}

func TestTableMarkdownColumnCount(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.AddRow("x", "y", "z")
	md := tbl.Markdown()
	if !strings.Contains(md, "|---|---|---|") {
		t.Errorf("separator must have one segment per column: %q", md)
	}
}

func TestTableRenderNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("v")
	out := tbl.Render()
	if strings.HasPrefix(out, "\n") {
		t.Errorf("untitled render starts with a blank line: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + separator + row
		t.Errorf("untitled render has %d lines, want 3: %q", len(lines), out)
	}
}

func TestRenderAlignsMultibyteCells(t *testing.T) {
	tbl := NewTable("", "jobs", "next")
	tbl.AddRow("62.1 ±1.9", "x")
	tbl.AddRow("600.0 ±10.0", "y")
	lines := strings.Split(strings.TrimRight(tbl.Render(), "\n"), "\n")
	// The second column must start at the same *rune* offset on every row:
	// "±" is multi-byte, so byte-based padding would shift the shorter cell.
	xCol := len([]rune(lines[2][:strings.IndexByte(lines[2], 'x')]))
	yCol := len([]rune(lines[3][:strings.IndexByte(lines[3], 'y')]))
	if xCol != yCol {
		t.Errorf("second column misaligned across multi-byte cells (%d vs %d):\n%s",
			xCol, yCol, strings.Join(lines, "\n"))
	}
}

func TestSeriesLookupEdgeCases(t *testing.T) {
	s := &Series{Name: "edge"}
	if _, ok := s.lookupPoint(0); ok {
		t.Error("lookup on empty series succeeded")
	}
	s.Add(1, 10)
	s.Add(1, 20) // duplicate x: first point wins
	if p, ok := s.lookupPoint(1); !ok || p.Y != 10 {
		t.Errorf("duplicate-x lookupPoint = %+v, %v; want first point 10", p, ok)
	}
	s.AddErr(2, 30, 5)
	if p, ok := s.lookupPoint(2); !ok || p.Err != 5 {
		t.Errorf("lookupPoint dropped the error bar: %+v", p)
	}
}

func TestChartRenderSinglePoint(t *testing.T) {
	c := NewChart("single", "x", "y")
	c.AddSeries("only").Add(3, 7)
	out := c.Render(20)
	for _, want := range []string{"x = 3", "only", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("single-point chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartRenderSkipsEmptySeries(t *testing.T) {
	c := NewChart("mixed", "x", "y")
	c.AddSeries("empty")
	c.AddSeries("full").Add(1, 5)
	out := c.Render(20)
	if !strings.Contains(out, "full") {
		t.Errorf("chart lost the populated series:\n%s", out)
	}
	// The empty series has no point at x=1, so it must not render a bar row.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "empty") && strings.Contains(line, "#") {
			t.Errorf("empty series rendered a bar: %q", line)
		}
	}
}

func TestChartRenderErrorBars(t *testing.T) {
	c := NewChart("mc", "mesh", "jobs")
	s := c.AddSeries("EAR")
	s.AddErr(4, 50, 10)
	out := c.Render(40)
	if !strings.Contains(out, "±10") {
		t.Errorf("error bar half-width missing from label:\n%s", out)
	}
	// The whisker dashes span the CI beyond the shortened bar.
	var barLine string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "EAR") {
			barLine = l
		}
	}
	if !strings.Contains(barLine, "#") || !strings.Contains(barLine, "-") {
		t.Errorf("bar line missing whiskers: %q", barLine)
	}
	hashes := strings.Count(barLine, "#")
	dashes := strings.Count(barLine, "-")
	// Bar to (y-err)=40/60 of scale, whisker to (y+err)=60/60: the whisker is
	// roughly half the bar length.
	if hashes <= dashes {
		t.Errorf("bar (%d#) should be longer than the whisker (%d-): %q", hashes, dashes, barLine)
	}
	// A zero-error point renders without any whisker or ± label.
	c2 := NewChart("plain", "x", "y")
	c2.AddSeries("S").Add(1, 5)
	if out := c2.Render(20); strings.Contains(out, "±") {
		t.Errorf("zero-error point rendered an error bar:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty series rendered %q", got)
	}
	// A monotone ramp uses the full glyph range, lowest first.
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if ramp != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", ramp)
	}
	// A flat series renders as all-bottom blocks.
	if got := Sparkline([]float64{3, 3, 3}, 3); got != "▁▁▁" {
		t.Errorf("flat = %q", got)
	}
	// Downsampling keeps the bucket maxima, so the peak survives.
	wide := make([]float64, 100)
	wide[57] = 9
	got := Sparkline(wide, 10)
	if utf8.RuneCountInString(got) != 10 {
		t.Fatalf("downsampled width = %d runes (%q)", utf8.RuneCountInString(got), got)
	}
	if !strings.Contains(got, "█") {
		t.Errorf("downsampling lost the peak: %q", got)
	}
	// Width wider than the series falls back to one cell per sample.
	if got := Sparkline([]float64{1, 2}, 50); utf8.RuneCountInString(got) != 2 {
		t.Errorf("short series width = %q", got)
	}
}
