package stats

import (
	"strings"
	"testing"
)

func TestFormat(t *testing.T) {
	cases := []struct {
		in   interface{}
		want string
	}{
		{42, "42"},
		{3.0, "3"},
		{3.14159, "3.14"},
		{float32(2.5), "2.50"},
		{"hello", "hello"},
		{true, "true"},
	}
	for _, tc := range cases {
		if got := Format(tc.in); got != tc.want {
			t.Errorf("Format(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Table 2", "mesh", "J(EAR)", "J*", "ratio")
	tbl.AddRow("4x4", 62.8, 131.42, "47.8%")
	tbl.AddRow("8x8", 234.0, 525.69, "44.5%")
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	out := tbl.Render()
	for _, want := range []string{"Table 2", "mesh", "J(EAR)", "62.80", "525.69", "44.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("rendered table has %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns must be aligned: every data line at least as long as the header line.
	header := lines[1]
	for _, l := range lines[2:] {
		if len(strings.TrimRight(l, " ")) > len(header)+20 {
			t.Errorf("line much longer than header, alignment broken: %q", l)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("plain", 1)
	tbl.AddRow("has,comma", "has\"quote")
	csv := tbl.CSV()
	wantLines := []string{
		"a,b",
		"plain,1",
		`"has,comma","has""quote"`,
	}
	got := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(got), len(wantLines), csv)
	}
	for i := range wantLines {
		if got[i] != wantLines[i] {
			t.Errorf("CSV line %d = %q, want %q", i, got[i], wantLines[i])
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("Fig 7", "mesh", "jobs")
	tbl.AddRow("4x4", 60)
	md := tbl.Markdown()
	for _, want := range []string{"### Fig 7", "| mesh | jobs |", "|---|---|", "| 4x4 | 60 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "EAR"}
	if s.MinY() != 0 || s.MaxY() != 0 {
		t.Error("empty series extremes should be 0")
	}
	s.Add(4, 60)
	s.Add(5, 92)
	s.Add(8, 234)
	if s.MaxY() != 234 || s.MinY() != 60 {
		t.Errorf("MinY/MaxY = %g/%g, want 60/234", s.MinY(), s.MaxY())
	}
	ys := s.Ys()
	if len(ys) != 3 || ys[0] != 60 || ys[2] != 234 {
		t.Errorf("Ys = %v", ys)
	}
	if y, ok := s.lookup(5); !ok || y != 92 {
		t.Errorf("lookup(5) = %g, %v", y, ok)
	}
	if _, ok := s.lookup(7); ok {
		t.Error("lookup of missing x succeeded")
	}
}

func TestChartRender(t *testing.T) {
	c := NewChart("Fig 7: jobs completed", "mesh", "# of jobs")
	ear := c.AddSeries("EAR")
	sdr := c.AddSeries("SDR")
	ear.Add(4, 60)
	ear.Add(8, 150)
	sdr.Add(4, 8)
	sdr.Add(8, 15)
	out := c.Render(40)
	for _, want := range []string{"Fig 7", "mesh = 4", "mesh = 8", "EAR", "SDR", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q:\n%s", want, out)
		}
	}
	// The EAR bar at mesh=8 must be the longest (full scale).
	lines := strings.Split(out, "\n")
	maxHashes, maxLine := 0, ""
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > maxHashes {
			maxHashes = n
			maxLine = l
		}
	}
	if !strings.Contains(maxLine, "EAR") || !strings.Contains(maxLine, "150") {
		t.Errorf("longest bar is %q, want the EAR/150 bar", maxLine)
	}
	// Tiny widths are clamped rather than panicking.
	if out := c.Render(1); out == "" {
		t.Error("Render with tiny width returned nothing")
	}
}

func TestChartRenderEmpty(t *testing.T) {
	c := NewChart("empty", "x", "y")
	if out := c.Render(20); !strings.Contains(out, "empty") {
		t.Errorf("empty chart render = %q", out)
	}
}
