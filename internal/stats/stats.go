// Package stats provides small table/series containers and text renderers
// (aligned tables, CSV, Markdown) used by the experiment harness and the
// command-line tools to print paper-style tables and figure data.
package stats

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-oriented results table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are converted with Format.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = Format(v)
	}
	t.Rows = append(t.Rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// Format renders a single cell value: floats get a compact fixed-point
// representation, everything else uses the default formatting.
func Format(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'f', 2, 64)
}

// Render returns the table as an aligned plain-text table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// pad right-pads s with spaces to the given display width (runes, not bytes,
// so multi-byte cells like "62.1 ±1.9" align).
func pad(s string, width int) string {
	if n := utf8.RuneCountInString(s); n < width {
		return s + strings.Repeat(" ", width-n)
	}
	return s
}

// CSV returns the table as comma-separated values (RFC-4180 style quoting for
// cells containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}

// Markdown returns the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("### ")
		b.WriteString(t.Title)
		b.WriteString("\n\n")
	}
	b.WriteString("| ")
	b.WriteString(strings.Join(t.Columns, " | "))
	b.WriteString(" |\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("| ")
		b.WriteString(strings.Join(row, " | "))
		b.WriteString(" |\n")
	}
	return b.String()
}

// Series is a named sequence of (x, y) points, the unit of data behind each
// curve in the paper's figures.
type Series struct {
	Name   string
	Points []Point
}

// Point is one sample of a series. Err is an optional symmetric error-bar
// half-width (0 = no error bar): a Monte-Carlo campaign sets it to the 95%
// confidence half-width on the replicated mean.
type Point struct {
	X   float64
	Y   float64
	Err float64
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// AddErr appends a point carrying a symmetric error bar of half-width err.
func (s *Series) AddErr(x, y, err float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: err})
}

// Ys returns the series' y values in order.
func (s *Series) Ys() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

// MinY and MaxY return the extreme y values (0 for an empty series).
func (s *Series) MinY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	min := s.Points[0].Y
	for _, p := range s.Points {
		if p.Y < min {
			min = p.Y
		}
	}
	return min
}

// MaxY returns the largest y value (0 for an empty series).
func (s *Series) MaxY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	max := s.Points[0].Y
	for _, p := range s.Points {
		if p.Y > max {
			max = p.Y
		}
	}
	return max
}

// Chart is a collection of series sharing an x axis, with a simple ASCII
// renderer used by the examples and cmd/etbench to visualise figures in the
// terminal.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewChart creates an empty chart.
func NewChart(title, xLabel, yLabel string) *Chart {
	return &Chart{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// AddSeries appends a new named series and returns it for population.
func (c *Chart) AddSeries(name string) *Series {
	s := &Series{Name: name}
	c.Series = append(c.Series, s)
	return s
}

// Render draws a crude horizontal-bar representation of the chart: one block
// of bars per x value, one bar per series, scaled to the chart's maximum.
func (c *Chart) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	max := 0.0
	for _, s := range c.Series {
		for _, p := range s.Points {
			if v := p.Y + p.Err; v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	nameWidth := 0
	for _, s := range c.Series {
		if n := utf8.RuneCountInString(s.Name); n > nameWidth {
			nameWidth = n
		}
	}
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range c.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		fmt.Fprintf(&b, "%s = %s\n", c.XLabel, Format(x))
		for _, s := range c.Series {
			p, ok := s.lookupPoint(x)
			if !ok {
				continue
			}
			bars := int(p.Y / max * float64(width))
			if bars < 0 {
				bars = 0
			}
			label := Format(p.Y)
			whisker := ""
			if p.Err > 0 {
				// Error bar: dashes span the ±Err interval around the bar end,
				// and the label carries the numeric half-width.
				lo := int((p.Y - p.Err) / max * float64(width))
				hi := int((p.Y + p.Err) / max * float64(width))
				if lo < 0 {
					lo = 0
				}
				if lo < bars {
					bars = lo
				}
				if hi > bars {
					whisker = strings.Repeat("-", hi-bars)
				}
				label = fmt.Sprintf("%s ±%s", Format(p.Y), Format(p.Err))
			}
			fmt.Fprintf(&b, "  %s  %s%s %s\n", pad(s.Name, nameWidth), strings.Repeat("#", bars), whisker, label)
		}
	}
	fmt.Fprintf(&b, "(%s; bar length proportional to %s, full scale = %s)\n", c.XLabel, c.YLabel, Format(max))
	return b.String()
}

// sparkLevels are the eight block glyphs of a sparkline, lowest first.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders ys as a one-line unicode block sparkline of at most
// width cells, scaled between the series' minimum and maximum. When the
// series is longer than the width, each cell shows the maximum of its bucket
// (the right choice for the monotone best-so-far curves it renders in
// etopt); shorter series use one cell per sample. A flat or empty series
// renders as all-bottom blocks.
func Sparkline(ys []float64, width int) string {
	if len(ys) == 0 {
		return ""
	}
	if width < 1 || width > len(ys) {
		width = len(ys)
	}
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	out := make([]rune, width)
	for i := range out {
		lo, hi := i*len(ys)/width, (i+1)*len(ys)/width
		cell := ys[lo]
		for _, y := range ys[lo:hi] {
			if y > cell {
				cell = y
			}
		}
		level := 0
		if max > min {
			level = int((cell - min) / (max - min) * float64(len(sparkLevels)-1))
		}
		out[i] = sparkLevels[level]
	}
	return string(out)
}

// lookupPoint returns the first point of the series at the given x.
func (s *Series) lookupPoint(x float64) (Point, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p, true
		}
	}
	return Point{}, false
}
