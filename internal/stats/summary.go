package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a streaming aggregate over a sequence of observations: count,
// Welford mean/variance, extremes, a t-based 95% confidence interval on the
// mean, and P50/P90/P99 quantile estimates. It retains O(1) state regardless
// of how many values are observed — the Monte-Carlo campaigns in
// internal/campaign fold tens of thousands of replicates into one Summary
// without keeping any of them — and it is a pure value type: the zero value
// is an empty summary, copies are independent, and Observe never allocates.
//
// The mean and variance use Welford's online algorithm, which is numerically
// stable for long streams. The quantiles use the P² algorithm (Jain &
// Chlamtac, CACM 1985): five markers per tracked quantile, adjusted with a
// piecewise-parabolic prediction as values stream in. P² estimates are exact
// while the observation count is at most five and approximate beyond that;
// for the tightly clustered integer metrics a campaign aggregates they stay
// within a marker spacing of the exact order statistic. Every operation is
// deterministic in the observation order, which the campaign layer fixes to
// replicate order independent of worker scheduling.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64

	q50 p2Estimator
	q90 p2Estimator
	q99 p2Estimator
}

// Observe folds one value into the summary.
func (s *Summary) Observe(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
		s.q50.init(0.50)
		s.q90.init(0.90)
		s.q99.init(0.99)
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)

	s.q50.observe(x)
	s.q90.observe(x)
	s.q99.observe(x)
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the arithmetic mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Min and Max return the extremes (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n < 1 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the two-sided 95% Student-t confidence
// interval on the mean: mean ± CI95() covers the expected value at the 95%
// level under the usual normality assumption. It is 0 with fewer than two
// observations (no variance estimate exists).
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tCritical95(s.n-1) * s.StdErr()
}

// Quantile returns the streaming estimate of the p-quantile for the tracked
// targets 0.5, 0.9 and 0.99. Other targets are not tracked and report NaN.
func (s *Summary) Quantile(p float64) float64 {
	switch p {
	case 0.5:
		return s.q50.value()
	case 0.9:
		return s.q90.value()
	case 0.99:
		return s.q99.value()
	default:
		return math.NaN()
	}
}

// String renders the summary in one line: mean ±CI95 [min..max] (n=count).
func (s *Summary) String() string {
	return fmt.Sprintf("%s ±%s [%s..%s] (n=%d)",
		Format(s.mean), Format(s.CI95()), Format(s.min), Format(s.max), s.n)
}

// tTable holds the two-sided 95% Student-t critical values for small degrees
// of freedom; beyond the table the normal limit applies.
var tTable = [...]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
	21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
	26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}

// tCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom: exact table values through df = 30, then a monotone
// large-df approximation that converges to the normal 1.9600.
func tCritical95(df int64) float64 {
	if df < 1 {
		return 0
	}
	if df < int64(len(tTable)) {
		return tTable[df]
	}
	// Fitted tail: t(df) ≈ z + (z³+z)/(4·df), the leading term of the
	// Cornish-Fisher expansion, accurate to ~0.001 for df > 30.
	const z = 1.959964
	return z + (z*z*z+z)/(4*float64(df))
}

// p2Estimator is one P² quantile tracker: five markers whose heights bracket
// the target quantile, adjusted per observation. All state is inline arrays
// so the estimator is copyable and Observe is allocation-free.
type p2Estimator struct {
	p       float64
	n       int64
	heights [5]float64
	pos     [5]float64
}

// init resets the estimator for a target quantile.
func (e *p2Estimator) init(p float64) {
	*e = p2Estimator{p: p}
}

// observe folds one value in.
func (e *p2Estimator) observe(x float64) {
	if e.n < 5 {
		// Collection phase: store and keep sorted.
		i := int(e.n)
		e.heights[i] = x
		for i > 0 && e.heights[i-1] > e.heights[i] {
			e.heights[i-1], e.heights[i] = e.heights[i], e.heights[i-1]
			i--
		}
		e.n++
		if e.n == 5 {
			for j := range e.pos {
				e.pos[j] = float64(j + 1)
			}
		}
		return
	}

	// Locate the cell containing x and update the extreme markers.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.heights[k+1] {
				break
			}
		}
	}
	e.n++
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}

	// Desired marker positions for the current count.
	np := float64(e.n-1)*e.p + 1
	desired := [5]float64{
		1,
		1 + float64(e.n-1)*e.p/2,
		np,
		1 + float64(e.n-1)*(1+e.p)/2,
		float64(e.n),
	}

	// Adjust the interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := desired[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving marker
// i one position in direction sign.
func (e *p2Estimator) parabolic(i int, sign float64) float64 {
	num1 := e.pos[i] - e.pos[i-1] + sign
	num2 := e.pos[i+1] - e.pos[i] - sign
	den := e.pos[i+1] - e.pos[i-1]
	return e.heights[i] + sign/den*(num1*(e.heights[i+1]-e.heights[i])/(e.pos[i+1]-e.pos[i])+
		num2*(e.heights[i]-e.heights[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabolic one would
// violate marker ordering.
func (e *p2Estimator) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return e.heights[i] + sign*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

// value returns the current quantile estimate. With five or fewer
// observations it is the exact order statistic (nearest-rank on the sorted
// collection buffer); beyond that, the centre marker's height.
func (e *p2Estimator) value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n <= 5 {
		vals := e.heights[:e.n]
		if !sort.Float64sAreSorted(vals) {
			// Collection buffer is kept sorted by observe; defensive only.
			sort.Float64s(vals)
		}
		rank := int(math.Ceil(e.p * float64(e.n)))
		if rank < 1 {
			rank = 1
		}
		return vals[rank-1]
	}
	return e.heights[2]
}
