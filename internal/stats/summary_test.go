package stats

import (
	"math"
	"sort"
	"testing"
)

func TestSummaryZeroValue(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("zero-value summary not empty: %+v", s)
	}
	if s.Variance() != 0 || s.StdDev() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Error("zero-value summary reports nonzero spread")
	}
	if s.Quantile(0.5) != 0 {
		t.Error("zero-value summary reports nonzero quantile")
	}
	if !math.IsNaN(s.Quantile(0.75)) {
		t.Error("untracked quantile target should be NaN")
	}
}

func TestSummaryMoments(t *testing.T) {
	values := []float64{4, 7, 13, 16}
	var s Summary
	for _, v := range values {
		s.Observe(v)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
	if got := s.Mean(); math.Abs(got-10) > 1e-12 {
		t.Errorf("Mean = %g, want 10", got)
	}
	// Sample variance of {4,7,13,16} is 30.
	if got := s.Variance(); math.Abs(got-30) > 1e-12 {
		t.Errorf("Variance = %g, want 30", got)
	}
	if s.Min() != 4 || s.Max() != 16 {
		t.Errorf("Min/Max = %g/%g, want 4/16", s.Min(), s.Max())
	}
	// CI95 = t(3) * sqrt(30/4) = 3.182 * 2.7386...
	want := 3.182 * math.Sqrt(30.0/4.0)
	if got := s.CI95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %g, want %g", got, want)
	}
	if out := s.String(); out == "" {
		t.Error("String() empty")
	}
}

func TestSummaryConstantStream(t *testing.T) {
	var s Summary
	for i := 0; i < 100; i++ {
		s.Observe(42)
	}
	if s.Mean() != 42 || s.Variance() != 0 || s.CI95() != 0 {
		t.Errorf("constant stream: mean=%g var=%g ci=%g", s.Mean(), s.Variance(), s.CI95())
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		if got := s.Quantile(p); got != 42 {
			t.Errorf("Quantile(%g) = %g, want 42", p, got)
		}
	}
}

func TestSummaryQuantilesExactWhileSmall(t *testing.T) {
	var s Summary
	for _, v := range []float64{30, 10, 50, 20, 40} {
		s.Observe(v)
	}
	if got := s.Quantile(0.5); got != 30 {
		t.Errorf("P50 of 5 values = %g, want the exact median 30", got)
	}
	if got := s.Quantile(0.9); got != 50 {
		t.Errorf("P90 of 5 values = %g, want 50", got)
	}
}

// TestSummaryQuantilesApproximateLarge streams a deterministically shuffled
// ramp 1..1000 and checks the P² estimates land near the exact quantiles.
func TestSummaryQuantilesApproximateLarge(t *testing.T) {
	const n = 1000
	values := make([]float64, n)
	// Fixed full-period LCG permutation of 0..n-1 (no wall-clock randomness).
	x := 7
	for i := range values {
		x = (x*421 + 17) % n
		values[i] = float64(x + 1)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if sorted[0] != 1 || sorted[n-1] != n {
		t.Fatal("LCG did not produce a permutation")
	}
	var s Summary
	for _, v := range values {
		s.Observe(v)
	}
	cases := []struct {
		p, want, tol float64
	}{
		{0.5, 500, 25},
		{0.9, 900, 25},
		{0.99, 990, 15},
	}
	for _, tc := range cases {
		if got := s.Quantile(tc.p); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g ±%g", tc.p, got, tc.want, tc.tol)
		}
	}
	if s.Min() != 1 || s.Max() != n {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	// Mean of 1..1000 is 500.5.
	if math.Abs(s.Mean()-500.5) > 1e-9 {
		t.Errorf("Mean = %g, want 500.5", s.Mean())
	}
}

// TestSummaryObserveDoesNotAllocate pins the streaming property the campaign
// layer relies on: folding a value into a warm Summary is allocation-free.
func TestSummaryObserveDoesNotAllocate(t *testing.T) {
	var s Summary
	for i := 0; i < 10; i++ {
		s.Observe(float64(i))
	}
	i := 0.0
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(i)
		i++
	}); allocs != 0 {
		t.Errorf("Observe allocates %.1f objects per call, want 0", allocs)
	}
}

// TestSummaryIsValueType pins that summaries copy independently, which is what
// lets experiment rows carry them by value.
func TestSummaryIsValueType(t *testing.T) {
	var a Summary
	for i := 0; i < 10; i++ {
		a.Observe(float64(i))
	}
	b := a
	b.Observe(1000)
	if a.Count() != 10 || b.Count() != 11 {
		t.Errorf("copied summary shares state: a.n=%d b.n=%d", a.Count(), b.Count())
	}
	if a.Max() == b.Max() {
		t.Error("copied summary shares extremes")
	}
}

func TestTCritical95(t *testing.T) {
	if got := tCritical95(1); got != 12.706 {
		t.Errorf("t(1) = %g", got)
	}
	if got := tCritical95(30); math.Abs(got-2.042) > 1e-9 {
		t.Errorf("t(30) = %g", got)
	}
	// Approximation region: monotone decreasing toward the normal limit.
	prev := tCritical95(30)
	for _, df := range []int64{31, 40, 60, 120, 1000, 100000} {
		got := tCritical95(df)
		if got >= prev {
			t.Errorf("t(%d) = %g not below t at smaller df %g", df, got, prev)
		}
		prev = got
	}
	if got := tCritical95(1000000); math.Abs(got-1.959964) > 1e-3 {
		t.Errorf("t(1e6) = %g, want ≈1.96", got)
	}
	if tCritical95(0) != 0 {
		t.Error("t(0) should be 0")
	}
	// The table value for df=120 (2.0 in the usual tables) as a sanity check
	// of the approximation: 1.9799 published.
	if got := tCritical95(120); math.Abs(got-1.9799) > 2e-3 {
		t.Errorf("t(120) = %g, want ≈1.9799", got)
	}
}
