package faults

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{LinkRate: 0.05, LinkRecoveryFrames: 8, Seed: 7},
		{NodeRate: 0.02, NodeRecoveryFrames: 12},
		{WearMeanTraversals: 150},
		{WearMeanTraversals: 2000, WearShape: 1.5},
		{Regions: []RegionEvent{{Shard: 1, KillFrame: 40, RestoreFrame: 120}}},
		{Regions: []RegionEvent{{Shard: 0, KillFrame: 30}}},
		{
			LinkRate: 0.05, LinkRecoveryFrames: 8,
			NodeRate: 0.02, NodeRecoveryFrames: 12,
			WearMeanTraversals: 4000,
			Regions:            []RegionEvent{{Shard: 2, KillFrame: 60, RestoreFrame: 140}},
			Seed:               1,
		},
	}
	for _, want := range specs {
		s := want.String()
		got, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip through %q: got %+v, want %+v", s, got, want)
		}
	}
	// The empty schedule renders as "" and parses back to the zero value.
	if s := (Spec{}).String(); s != "" {
		t.Errorf("empty schedule renders as %q, want empty", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"link",                // no =
		"link=0.05",           // missing recovery
		"link=x:8",            // bad rate
		"link=0.05:y",         // bad recovery
		"crash=0.02",          // missing recovery
		"wear=abc",            // bad mean
		"wear=100:abc",        // bad shape
		"kill=1",              // missing @FRAME
		"kill=x@40",           // bad shard
		"kill=1@x",            // bad frame
		"kill=1@40:x",         // bad restore
		"seed=-1",             // negative seed
		"flux=1",              // unknown key
		"link=0.05:8,,wear=x", // bad clause after empties
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted malformed input", s)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		spec   Spec
		shards int
		substr string // "" = valid
	}{
		{"empty", Spec{}, 1, ""},
		{"full valid", Spec{LinkRate: 0.1, LinkRecoveryFrames: 4, NodeRate: 0.1, NodeRecoveryFrames: 4,
			WearMeanTraversals: 100, WearShape: 2, Regions: []RegionEvent{{Shard: 3, KillFrame: 10, RestoreFrame: 20}}}, 4, ""},
		{"negative link rate", Spec{LinkRate: -0.1, LinkRecoveryFrames: 4}, 1, "link fault rate"},
		{"link rate 1", Spec{LinkRate: 1, LinkRecoveryFrames: 4}, 1, "link fault rate"},
		{"link no recovery", Spec{LinkRate: 0.1}, 1, "recovery time"},
		{"crash no recovery", Spec{NodeRate: 0.1}, 1, "recovery time"},
		{"negative wear", Spec{WearMeanTraversals: -1}, 1, "wear mean"},
		{"shape without wear", Spec{WearShape: 2}, 1, "wear model is disabled"},
		{"shard out of range", Spec{Regions: []RegionEvent{{Shard: 4, KillFrame: 10}}}, 4, "outside"},
		{"kill frame 0", Spec{Regions: []RegionEvent{{Shard: 0, KillFrame: 0}}}, 1, "frame >= 1"},
		{"restore before kill", Spec{Regions: []RegionEvent{{Shard: 0, KillFrame: 10, RestoreFrame: 10}}}, 1, "not after"},
	}
	for _, c := range cases {
		err := c.spec.Validate(c.shards)
		if c.substr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.substr)
		}
	}
}

// runSchedule drives a runtime for the given number of frames, feeding every
// surviving link one traversal per frame, and returns the flattened event
// log.
func runSchedule(r *Runtime, g *topology.Graph, frames int64) []Event {
	var log []Event
	for f := int64(1); f <= frames; f++ {
		log = append(log, r.FrameStart(f)...)
		for _, l := range g.Links() {
			if l.From < l.To {
				r.RecordHop(l.From, l.To)
			}
		}
	}
	return log
}

// TestScheduleDeterminism pins the core contract: the event sequence is a
// pure function of (spec, seed, traffic) — two runtimes over identical graph
// clones replay it exactly, and a different seed diverges.
func TestScheduleDeterminism(t *testing.T) {
	spec := Spec{
		LinkRate: 0.1, LinkRecoveryFrames: 5,
		NodeRate: 0.05, NodeRecoveryFrames: 7,
		WearMeanTraversals: 300,
		Regions:            []RegionEvent{{Shard: 1, KillFrame: 20, RestoreFrame: 50}},
		Seed:               42,
	}
	g1 := topology.MustMesh(6, 6, 1).Graph.Clone()
	g2 := topology.MustMesh(6, 6, 1).Graph.Clone()
	log1 := runSchedule(New(spec, g1, 4), g1, 120)
	log2 := runSchedule(New(spec, g2, 4), g2, 120)
	if len(log1) == 0 {
		t.Fatal("schedule produced no events in 120 frames at these rates")
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Fatal("identical (spec, graph, traffic) produced different event sequences")
	}

	other := spec
	other.Seed = 43
	g3 := topology.MustMesh(6, 6, 1).Graph.Clone()
	log3 := runSchedule(New(other, g3, 4), g3, 120)
	if reflect.DeepEqual(log1, log3) {
		t.Fatal("different seeds produced identical event sequences (suspicious)")
	}
}

// TestFrameStartOrdering pins the intra-frame order: recoveries strictly
// before injections, so a healed link is immediately a candidate for a fresh
// fault.
func TestFrameStartOrdering(t *testing.T) {
	spec := Spec{LinkRate: 0.5, LinkRecoveryFrames: 3, NodeRate: 0.3, NodeRecoveryFrames: 4, Seed: 9}
	g := topology.MustMesh(5, 5, 1).Graph.Clone()
	r := New(spec, g, 1)
	sawMixedFrame := false
	for f := int64(1); f <= 200; f++ {
		events := r.FrameStart(f)
		seenInjection := false
		for _, ev := range events {
			if ev.Kind.Recovery() {
				if seenInjection {
					t.Fatalf("frame %d: recovery %v after injection in %v", f, ev.Kind, events)
				}
			} else {
				seenInjection = true
				if ev.RecoverAt != 0 && ev.RecoverAt <= f {
					t.Fatalf("frame %d: injection %v recovers at %d, not in the future", f, ev.Kind, ev.RecoverAt)
				}
			}
		}
		if len(events) > 1 && events[0].Kind.Recovery() && seenInjection {
			sawMixedFrame = true
		}
	}
	if !sawMixedFrame {
		t.Error("200 frames at rate 0.5 never mixed a recovery and an injection in one frame — ordering untested")
	}
}

// TestTransientLinkLifecycle follows one transient fault from injection to
// heal: the link leaves the graph at LinkDown, RecoveryPending holds through
// the window, and the LinkUp at RecoverAt restores the link bidirectionally.
func TestTransientLinkLifecycle(t *testing.T) {
	spec := Spec{LinkRate: 0.9, LinkRecoveryFrames: 4, Seed: 3}
	g := topology.MustMesh(4, 4, 1).Graph.Clone()
	r := New(spec, g, 1)
	var down Event
	var downFrame int64
	for f := int64(1); f <= 50 && down.RecoverAt == 0; f++ {
		for _, ev := range r.FrameStart(f) {
			if ev.Kind == LinkDown {
				down, downFrame = ev, f
				break
			}
		}
	}
	if down.RecoverAt == 0 {
		t.Fatal("rate 0.9 never injected a link fault in 50 frames")
	}
	if down.RecoverAt != downFrame+spec.LinkRecoveryFrames {
		t.Fatalf("fault at frame %d recovers at %d, want %d", downFrame, down.RecoverAt, downFrame+spec.LinkRecoveryFrames)
	}
	if _, ok := g.Link(down.From, down.To); ok {
		t.Fatal("faulted link still present in the graph")
	}
	if !r.RecoveryPending() {
		t.Fatal("RecoveryPending false with a heal outstanding")
	}
	healed := false
	for f := downFrame + 1; f <= down.RecoverAt; f++ {
		for _, ev := range r.FrameStart(f) {
			if ev.Kind == LinkUp && ev.From == down.From && ev.To == down.To {
				if f != down.RecoverAt {
					t.Fatalf("link healed at frame %d, scheduled for %d", f, down.RecoverAt)
				}
				healed = true
			}
		}
	}
	if !healed {
		t.Fatal("scheduled LinkUp never fired")
	}
	if _, ok := g.Link(down.From, down.To); !ok {
		t.Fatal("healed link missing from the graph")
	}
	if _, ok := g.Link(down.To, down.From); !ok {
		t.Fatal("healed link missing its reverse direction")
	}
}

// TestWearBudgetDistribution pins the Weibull wear model: budgets are a pure
// function of (seed, link index) with the configured mean.
func TestWearBudgetDistribution(t *testing.T) {
	spec := Spec{WearMeanTraversals: 500, Seed: 11}
	g := topology.MustMesh(16, 16, 1).Graph.Clone()
	r := New(spec, g, 1)
	var sum float64
	for _, l := range r.links {
		if l.wearBudget <= 0 || math.IsInf(l.wearBudget, 1) {
			t.Fatalf("link %d-%d budget %g, want positive finite", l.from, l.to, l.wearBudget)
		}
		sum += l.wearBudget
	}
	mean := sum / float64(len(r.links))
	// 480 undirected links: the sample mean should land within 10% of the
	// configured mean for a correct scale = mean / Γ(1 + 1/k).
	if mean < 450 || mean > 550 {
		t.Errorf("sample mean budget %.1f over %d links, want ≈ 500", mean, len(r.links))
	}
	// Same seed redraws the same budgets; a different seed does not.
	r2 := New(spec, topology.MustMesh(16, 16, 1).Graph.Clone(), 1)
	for i := range r.links {
		if r.links[i].wearBudget != r2.links[i].wearBudget {
			t.Fatal("wear budgets differ across runtimes with the same seed")
		}
	}
	other := spec
	other.Seed = 12
	r3 := New(other, topology.MustMesh(16, 16, 1).Graph.Clone(), 1)
	same := true
	for i := range r.links {
		if r.links[i].wearBudget != r3.links[i].wearBudget {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical wear budgets (suspicious)")
	}
}

// TestWearBreaksPreserveConnectivity drives a tiny cycle to exhaustion: on a
// 2x2 mesh only one of the four links can break without partitioning, so the
// runtime must break exactly one and defer the rest forever.
func TestWearBreaksPreserveConnectivity(t *testing.T) {
	spec := Spec{WearMeanTraversals: 2, Seed: 5} // budgets of a few traversals
	g := topology.MustMesh(2, 2, 1).Graph.Clone()
	r := New(spec, g, 1)
	broken := 0
	for f := int64(1); f <= 100; f++ {
		for _, ev := range r.FrameStart(f) {
			if ev.Kind == LinkBreak {
				broken++
			}
		}
		for _, l := range g.Links() {
			if l.From < l.To {
				r.RecordHop(l.From, l.To)
			}
		}
		if !g.Connected() {
			t.Fatalf("frame %d: wear break disconnected the graph", f)
		}
	}
	if broken != 1 {
		t.Fatalf("2x2 cycle broke %d links, want exactly 1 (more would partition)", broken)
	}
	if got := len(r.BrokenLinks()); got != 1 {
		t.Fatalf("BrokenLinks reports %d, want 1", got)
	}
	if g.LinkCount() != 8-2 {
		t.Fatalf("LinkCount = %d after one bidirectional break, want 6", g.LinkCount())
	}
}

// TestRegionKillWindow pins the deterministic region schedule: down at
// KillFrame, up at RestoreFrame, RecoveryPending across the window.
func TestRegionKillWindow(t *testing.T) {
	spec := Spec{Regions: []RegionEvent{{Shard: 1, KillFrame: 5, RestoreFrame: 9}}}
	g := topology.MustMesh(4, 4, 1).Graph.Clone()
	r := New(spec, g, 4)
	for f := int64(1); f <= 12; f++ {
		events := r.FrameStart(f)
		switch f {
		case 5:
			if len(events) != 1 || events[0].Kind != RegionDown || events[0].Shard != 1 || events[0].RecoverAt != 9 {
				t.Fatalf("frame 5 events = %+v, want one RegionDown shard 1 recovering at 9", events)
			}
			if !r.RecoveryPending() {
				t.Fatal("RecoveryPending false inside the kill window")
			}
		case 9:
			if len(events) != 1 || events[0].Kind != RegionUp || events[0].Shard != 1 {
				t.Fatalf("frame 9 events = %+v, want one RegionUp shard 1", events)
			}
		default:
			if len(events) != 0 {
				t.Fatalf("frame %d events = %+v, want none", f, events)
			}
		}
	}
	if r.RecoveryPending() {
		t.Fatal("RecoveryPending true after the window closed")
	}
}

// TestPermanentKillNeverRecovers: RestoreFrame 0 opens a window that never
// closes, and RecoveryPending must NOT count it (nothing is coming back, so
// the engine must not block jobs forever on its account).
func TestPermanentKillNeverRecovers(t *testing.T) {
	spec := Spec{Regions: []RegionEvent{{Shard: 0, KillFrame: 3}}}
	g := topology.MustMesh(4, 4, 1).Graph.Clone()
	r := New(spec, g, 1)
	for f := int64(1); f <= 40; f++ {
		for _, ev := range r.FrameStart(f) {
			if ev.Kind == RegionUp {
				t.Fatalf("frame %d: permanent kill produced a RegionUp", f)
			}
			if ev.Kind == RegionDown && ev.RecoverAt != 0 {
				t.Fatalf("permanent kill carries RecoverAt %d, want 0", ev.RecoverAt)
			}
		}
	}
	if r.RecoveryPending() {
		t.Fatal("RecoveryPending true for a permanent kill window")
	}
}

// TestEnabledZeroValue pins the gate the engine relies on for byte-identical
// fault-free behaviour.
func TestEnabledZeroValue(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Fatal("zero-value schedule reports Enabled")
	}
	if (Spec{Seed: 99}).Enabled() {
		t.Fatal("seed-only schedule reports Enabled (a seed alone produces no events)")
	}
	for _, sp := range []Spec{
		{LinkRate: 0.01, LinkRecoveryFrames: 1},
		{NodeRate: 0.01, NodeRecoveryFrames: 1},
		{WearMeanTraversals: 10},
		{Regions: []RegionEvent{{Shard: 0, KillFrame: 1}}},
	} {
		if !sp.Enabled() {
			t.Fatalf("schedule %+v reports disabled", sp)
		}
	}
}
