// Package faults is the deterministic runtime fault-schedule subsystem: it
// turns a compact declarative Spec into a replayable sequence of mid-run
// failure events — transient link faults that heal, permanent link breaks
// from a traversal-count wear model, node crash/restore cycles and
// controller-region kill windows — that the simulation engine applies at TDMA
// frame boundaries.
//
// Everything here is a pure function of (Spec, Seed, frame index, traversal
// history): the schedule uses an index-addressed SplitMix64 draw per frame
// (the same generator family as campaign.Stream, duplicated privately to
// avoid an import cycle through scenario), no clocks, no shared state, no
// dependence on goroutine scheduling. Two runs of the same scenario therefore
// see byte-identical fault sequences at any worker count, which is what lets
// chaos scenarios and degradation sweeps live inside the repo's determinism
// contract. See DESIGN.md, "Fault-injection contract".
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// golden is the SplitMix64 state increment (2^64 / φ, odd) and mix64 its
// output finalizer; both match campaign.Stream so a Seed drawn from the
// campaign's Transient channel behaves like any other stream consumer.
const golden = 0x9E3779B97F4A7C15

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// word returns draw i of the seed's private stream.
func word(seed, i uint64) uint64 { return mix64(seed + (i+1)*golden) }

// u01 maps a 64-bit draw to the open unit interval (never exactly 0 or 1, so
// it is safe inside a logarithm).
func u01(w uint64) float64 { return (float64(w>>11) + 0.5) / (1 << 53) }

// RegionEvent kills one controller region for a window of frames: the
// region's pool stops serving frames at KillFrame and resumes at RestoreFrame
// (0 = never restores). Under the sharded control plane the orphaned region's
// nodes are adopted by the nearest in-service region; under the centralized
// plane (shard 0) the whole mesh routes on last-known-good tables until the
// window closes.
type RegionEvent struct {
	// Shard is the region index (0 for the centralized plane).
	Shard int
	// KillFrame is the TDMA frame at which the region goes down (>= 1).
	KillFrame int64
	// RestoreFrame is the frame at which it comes back, 0 for never; must
	// exceed KillFrame otherwise.
	RestoreFrame int64
}

// Spec declares a fault schedule. The zero value is the empty schedule:
// Enabled() is false and the engine behaves byte-for-byte as if the faults
// subsystem did not exist.
type Spec struct {
	// Seed selects the deterministic draw sequence for the stochastic
	// channels (transient link faults, crashes, wear thresholds). Replicated
	// campaigns override it from campaign.Seeds.Transient.
	Seed uint64

	// LinkRate is the per-frame probability (in [0, 1)) that one currently
	// healthy interconnect suffers a transient fault; the faulted link
	// vanishes from the topology for LinkRecoveryFrames frames and then
	// heals. Transient faults may partition the fabric — they heal, and the
	// engine blocks affected jobs instead of declaring death while a
	// recovery is outstanding.
	LinkRate           float64
	LinkRecoveryFrames int64

	// NodeRate is the per-frame probability (in [0, 1)) that one running
	// node crashes: it stops computing, relaying and reporting for
	// NodeRecoveryFrames frames (its battery rests through the outage), then
	// restores. Jobs resident at the node when it crashes are lost, exactly
	// as for a battery death — but the module is not considered extinct
	// while every duplicate is merely crashed.
	NodeRate           float64
	NodeRecoveryFrames int64

	// WearMeanTraversals enables the permanent wear model: every initial
	// interconnect draws a Weibull(shape = WearShape, mean ≈
	// WearMeanTraversals) traversal budget from the seed, and breaks for
	// good at the frame boundary after its packet-traversal count crosses
	// the budget. A break that would disconnect the current topology is
	// deferred (retried while the condition persists), mirroring
	// topology.FailLinks: a fully partitioned garment is dead, not a routing
	// scenario. 0 disables wear.
	WearMeanTraversals float64
	// WearShape is the Weibull shape parameter k (0 = default 2, wear-out
	// behaviour: hazard grows with traversal count).
	WearShape float64

	// Regions lists the controller-region kill windows.
	Regions []RegionEvent
}

// DefaultWearShape is the Weibull shape used when Spec.WearShape is 0: hazard
// growing linearly with traversal count, the classic wear-out regime.
const DefaultWearShape = 2.0

// Enabled reports whether the schedule can ever produce an event. The engine
// skips the whole subsystem — and stays byte-identical to a build without it —
// when this is false.
func (sp Spec) Enabled() bool {
	return sp.LinkRate > 0 || sp.NodeRate > 0 || sp.WearMeanTraversals > 0 || len(sp.Regions) > 0
}

// Validate checks the schedule against a control plane with the given shard
// count (1 for centralized). It is called eagerly by scenario.Spec.Strategy,
// so a bad schedule fails at spec time, not inside a sweep worker.
func (sp Spec) Validate(shards int) error {
	if sp.LinkRate < 0 || sp.LinkRate >= 1 {
		return fmt.Errorf("faults: link fault rate must be in [0,1), got %g", sp.LinkRate)
	}
	if sp.NodeRate < 0 || sp.NodeRate >= 1 {
		return fmt.Errorf("faults: node crash rate must be in [0,1), got %g", sp.NodeRate)
	}
	if sp.LinkRate > 0 && sp.LinkRecoveryFrames < 1 {
		return fmt.Errorf("faults: transient link faults need a recovery time of at least one frame, got %d", sp.LinkRecoveryFrames)
	}
	if sp.NodeRate > 0 && sp.NodeRecoveryFrames < 1 {
		return fmt.Errorf("faults: node crashes need a recovery time of at least one frame, got %d", sp.NodeRecoveryFrames)
	}
	if sp.WearMeanTraversals < 0 {
		return fmt.Errorf("faults: wear mean traversals must be non-negative, got %g", sp.WearMeanTraversals)
	}
	if sp.WearShape < 0 {
		return fmt.Errorf("faults: wear shape must be non-negative, got %g", sp.WearShape)
	}
	if sp.WearShape > 0 && sp.WearMeanTraversals == 0 {
		return fmt.Errorf("faults: wear shape %g is set but the wear model is disabled (mean traversals 0)", sp.WearShape)
	}
	for i, ev := range sp.Regions {
		if ev.Shard < 0 || ev.Shard >= shards {
			return fmt.Errorf("faults: region event %d kills shard %d, outside the %d-shard control plane", i, ev.Shard, shards)
		}
		if ev.KillFrame < 1 {
			return fmt.Errorf("faults: region event %d must kill at frame >= 1, got %d", i, ev.KillFrame)
		}
		if ev.RestoreFrame != 0 && ev.RestoreFrame <= ev.KillFrame {
			return fmt.Errorf("faults: region event %d restores at frame %d, not after its kill frame %d", i, ev.RestoreFrame, ev.KillFrame)
		}
	}
	return nil
}

// String renders the schedule in the compact form ParseSpec accepts
// (round-trips exactly). The empty schedule renders as "".
func (sp Spec) String() string {
	var parts []string
	if sp.LinkRate > 0 {
		parts = append(parts, fmt.Sprintf("link=%g:%d", sp.LinkRate, sp.LinkRecoveryFrames))
	}
	if sp.NodeRate > 0 {
		parts = append(parts, fmt.Sprintf("crash=%g:%d", sp.NodeRate, sp.NodeRecoveryFrames))
	}
	if sp.WearMeanTraversals > 0 {
		if sp.WearShape > 0 {
			parts = append(parts, fmt.Sprintf("wear=%g:%g", sp.WearMeanTraversals, sp.WearShape))
		} else {
			parts = append(parts, fmt.Sprintf("wear=%g", sp.WearMeanTraversals))
		}
	}
	for _, ev := range sp.Regions {
		if ev.RestoreFrame > 0 {
			parts = append(parts, fmt.Sprintf("kill=%d@%d:%d", ev.Shard, ev.KillFrame, ev.RestoreFrame))
		} else {
			parts = append(parts, fmt.Sprintf("kill=%d@%d", ev.Shard, ev.KillFrame))
		}
	}
	if sp.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", sp.Seed))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the compact schedule form used by `etsim -faults`:
//
//	link=RATE:RECOVERY   transient link faults (per-frame rate, frames to heal)
//	crash=RATE:RECOVERY  node crashes (per-frame rate, frames to restore)
//	wear=MEAN[:SHAPE]    permanent wear breaks (mean traversals, Weibull shape)
//	kill=SHARD@FRAME[:RESTORE]  controller-region kill window (repeatable)
//	seed=N               schedule seed
//
// clauses separated by commas, e.g. "link=0.05:8,kill=1@40:80,seed=7". The
// empty string is the empty schedule.
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	if strings.TrimSpace(s) == "" {
		return sp, nil
	}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		switch key {
		case "link":
			rate, rec, err := parseRateRecovery(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: link clause %q: %w", clause, err)
			}
			sp.LinkRate, sp.LinkRecoveryFrames = rate, rec
		case "crash":
			rate, rec, err := parseRateRecovery(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: crash clause %q: %w", clause, err)
			}
			sp.NodeRate, sp.NodeRecoveryFrames = rate, rec
		case "wear":
			mean, shape := val, ""
			if m, sh, ok := strings.Cut(val, ":"); ok {
				mean, shape = m, sh
			}
			f, err := strconv.ParseFloat(mean, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: wear clause %q: bad mean: %w", clause, err)
			}
			sp.WearMeanTraversals = f
			if shape != "" {
				k, err := strconv.ParseFloat(shape, 64)
				if err != nil {
					return Spec{}, fmt.Errorf("faults: wear clause %q: bad shape: %w", clause, err)
				}
				sp.WearShape = k
			}
		case "kill":
			shardStr, frames, ok := strings.Cut(val, "@")
			if !ok {
				return Spec{}, fmt.Errorf("faults: kill clause %q wants SHARD@FRAME[:RESTORE]", clause)
			}
			shard, err := strconv.Atoi(shardStr)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: kill clause %q: bad shard: %w", clause, err)
			}
			killStr, restoreStr := frames, ""
			if k, r, ok := strings.Cut(frames, ":"); ok {
				killStr, restoreStr = k, r
			}
			kill, err := strconv.ParseInt(killStr, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: kill clause %q: bad frame: %w", clause, err)
			}
			ev := RegionEvent{Shard: shard, KillFrame: kill}
			if restoreStr != "" {
				restore, err := strconv.ParseInt(restoreStr, 10, 64)
				if err != nil {
					return Spec{}, fmt.Errorf("faults: kill clause %q: bad restore frame: %w", clause, err)
				}
				ev.RestoreFrame = restore
			}
			sp.Regions = append(sp.Regions, ev)
		case "seed":
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: seed clause %q: %w", clause, err)
			}
			sp.Seed = seed
		default:
			return Spec{}, fmt.Errorf("faults: unknown clause key %q (want link, crash, wear, kill or seed)", key)
		}
	}
	return sp, nil
}

func parseRateRecovery(val string) (float64, int64, error) {
	rateStr, recStr, ok := strings.Cut(val, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want RATE:RECOVERY_FRAMES")
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad rate: %w", err)
	}
	rec, err := strconv.ParseInt(recStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad recovery: %w", err)
	}
	return rate, rec, nil
}

// Kind labels one fault event.
type Kind int

// The fault event kinds, in the order they are applied within a frame:
// recoveries strictly before new injections, so a link that heals at frame f
// is a candidate for a fresh fault in the same frame's draw.
const (
	// LinkUp heals a transient link fault.
	LinkUp Kind = iota
	// NodeRestore brings a crashed node back.
	NodeRestore
	// RegionUp closes a controller-region kill window.
	RegionUp
	// LinkDown is a transient link fault (recovers at Event.RecoverAt).
	LinkDown
	// LinkBreak is a permanent wear break (never recovers).
	LinkBreak
	// NodeCrash takes a node down (recovers at Event.RecoverAt).
	NodeCrash
	// RegionDown opens a controller-region kill window.
	RegionDown
)

// String names the kind for summaries and traces.
func (k Kind) String() string {
	switch k {
	case LinkUp:
		return "link-up"
	case NodeRestore:
		return "node-restore"
	case RegionUp:
		return "region-up"
	case LinkDown:
		return "link-down"
	case LinkBreak:
		return "link-break"
	case NodeCrash:
		return "node-crash"
	case RegionDown:
		return "region-down"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Recovery reports whether the kind heals a previously injected fault.
func (k Kind) Recovery() bool { return k == LinkUp || k == NodeRestore || k == RegionUp }

// Event is one applied fault transition. Link events carry From/To (the
// undirected pair, From < To), node events carry Node, region events carry
// Shard. RecoverAt is the frame the matching recovery is scheduled for
// (injections only; 0 = permanent).
type Event struct {
	Kind      Kind
	From, To  topology.NodeID
	Node      topology.NodeID
	Shard     int
	RecoverAt int64
}

// link is one initial undirected interconnect tracked by the wear and
// transient-fault channels.
type link struct {
	from, to topology.NodeID
	lengthCM float64

	downUntil  int64 // transient fault outstanding until this frame (0 = up)
	broken     bool  // permanent wear break applied
	traversals int64
	wearBudget float64 // traversal budget drawn from the Weibull wear model; +Inf when wear is off
}

// Runtime executes a Spec against an engine-owned topology. The engine calls
// FrameStart at every frame boundary (after the frame counter advances,
// before the upload phase) and applies the returned events; RecordHop feeds
// the wear model from the packet stream. The Runtime mutates the graph it was
// given — the engine hands it a private clone — removing faulted links and
// restoring healed ones, so the control planes see topology changes through
// the snapshot they already consume.
//
// All decisions are index-addressed draws: frame f consumes words
// [4f, 4f+4) of the seed's stream regardless of history, so the schedule for
// any frame can be recomputed in isolation and never depends on how many
// faults happened before it.
type Runtime struct {
	spec  Spec
	graph *topology.Graph

	links []link
	index map[[2]topology.NodeID]int

	nodeDownUntil []int64 // per node: crashed until this frame (0 = running)
	regionDown    []bool  // per shard: kill window currently open

	pendingRecoveries int // scheduled link/node/region restores outstanding

	// scratch for per-frame candidate selection, reused across frames.
	candidates []int
	events     []Event
}

// New builds a runtime for the given schedule over an engine-owned graph
// clone with the given controller shard count. The wear budgets are drawn
// here, once, from the seed's dedicated channel — they are a pure function of
// (Seed, link index).
func New(spec Spec, g *topology.Graph, shards int) *Runtime {
	r := &Runtime{
		spec:          spec,
		graph:         g,
		index:         make(map[[2]topology.NodeID]int),
		nodeDownUntil: make([]int64, g.NodeCount()),
		regionDown:    make([]bool, shards),
	}
	for _, l := range g.Links() {
		if l.From < l.To {
			r.index[[2]topology.NodeID{l.From, l.To}] = len(r.links)
			r.links = append(r.links, link{from: l.From, to: l.To, lengthCM: l.LengthCM, wearBudget: math.Inf(1)})
		}
	}
	if spec.WearMeanTraversals > 0 {
		shape := spec.WearShape
		if shape == 0 {
			shape = DefaultWearShape
		}
		// Scale the Weibull so its mean is WearMeanTraversals:
		// mean = scale * Γ(1 + 1/shape).
		scale := spec.WearMeanTraversals / math.Gamma(1+1/shape)
		// The wear budgets live on their own sub-stream (seed XOR a fixed
		// tag) so they never alias the per-frame draws.
		wearSeed := mix64(spec.Seed ^ 0xC2B2AE3D27D4EB4F)
		for i := range r.links {
			u := u01(word(wearSeed, uint64(i)))
			r.links[i].wearBudget = scale * math.Pow(-math.Log(u), 1/shape)
		}
	}
	return r
}

// RecoveryPending reports whether any injected fault still has a scheduled
// recovery outstanding. The engine consults it before declaring a routing
// dead end terminal: while a recovery is pending the job blocks instead,
// because the topology (or a crashed module duplicate) may come back.
func (r *Runtime) RecoveryPending() bool { return r.pendingRecoveries > 0 }

// RecordHop feeds one packet traversal of the undirected link {from, to} into
// the wear model. Unknown pairs are ignored (a link the runtime is not
// tracking cannot wear out).
func (r *Runtime) RecordHop(from, to topology.NodeID) {
	if r.spec.WearMeanTraversals <= 0 {
		return
	}
	if from > to {
		from, to = to, from
	}
	if i, ok := r.index[[2]topology.NodeID{from, to}]; ok {
		r.links[i].traversals++
	}
}

// FrameStart computes and applies the fault transitions of one frame
// boundary, in deterministic order: scheduled recoveries first (links, then
// nodes, then regions, each in index order), then wear breaks, then at most
// one fresh transient link fault and one node crash drawn from the frame's
// words, then region kill windows opening this frame. The returned slice is
// valid until the next call.
//
// The engine applies node and region transitions itself (the runtime has no
// access to batteries or control planes); link transitions are already
// applied to the graph when FrameStart returns.
func (r *Runtime) FrameStart(frame int64) []Event {
	r.events = r.events[:0]

	// --- recoveries -------------------------------------------------------
	for i := range r.links {
		l := &r.links[i]
		if l.downUntil != 0 && l.downUntil <= frame {
			l.downUntil = 0
			r.pendingRecoveries--
			// A link can wear out while transiently down (its budget was
			// crossed earlier); the break lands below instead of a heal.
			if !l.broken {
				if err := r.graph.AddBiLink(l.from, l.to, l.lengthCM); err == nil {
					r.events = append(r.events, Event{Kind: LinkUp, From: l.from, To: l.to})
				}
			}
		}
	}
	for n := range r.nodeDownUntil {
		if r.nodeDownUntil[n] != 0 && r.nodeDownUntil[n] <= frame {
			r.nodeDownUntil[n] = 0
			r.pendingRecoveries--
			r.events = append(r.events, Event{Kind: NodeRestore, Node: topology.NodeID(n)})
		}
	}
	for _, ev := range r.spec.Regions {
		if ev.RestoreFrame == frame && r.regionDown[ev.Shard] {
			r.regionDown[ev.Shard] = false
			r.pendingRecoveries--
			r.events = append(r.events, Event{Kind: RegionUp, Shard: ev.Shard})
		}
	}

	// --- permanent wear breaks -------------------------------------------
	if r.spec.WearMeanTraversals > 0 {
		for i := range r.links {
			l := &r.links[i]
			if l.broken || float64(l.traversals) < l.wearBudget {
				continue
			}
			if l.downUntil != 0 {
				// Already transiently down: the break replaces the pending
				// heal — the link simply never comes back.
				l.broken = true
				r.events = append(r.events, Event{Kind: LinkBreak, From: l.from, To: l.to})
				continue
			}
			if err := r.graph.RemoveBiLink(l.from, l.to); err != nil {
				continue
			}
			if !r.graph.Connected() {
				// Deferred, FailLinks-style: re-add and retry while the
				// condition persists (the break lands once the topology can
				// absorb it).
				_ = r.graph.AddBiLink(l.from, l.to, l.lengthCM)
				continue
			}
			l.broken = true
			r.events = append(r.events, Event{Kind: LinkBreak, From: l.from, To: l.to})
		}
	}

	// --- fresh transient link fault --------------------------------------
	base := uint64(frame) * 4
	if r.spec.LinkRate > 0 && u01(word(r.spec.Seed, base)) < r.spec.LinkRate {
		r.candidates = r.candidates[:0]
		for i := range r.links {
			if r.links[i].downUntil == 0 && !r.links[i].broken {
				r.candidates = append(r.candidates, i)
			}
		}
		if len(r.candidates) > 0 {
			i := r.candidates[word(r.spec.Seed, base+1)%uint64(len(r.candidates))]
			l := &r.links[i]
			if err := r.graph.RemoveBiLink(l.from, l.to); err == nil {
				l.downUntil = frame + r.spec.LinkRecoveryFrames
				r.pendingRecoveries++
				r.events = append(r.events, Event{Kind: LinkDown, From: l.from, To: l.to, RecoverAt: l.downUntil})
			}
		}
	}

	// --- fresh node crash -------------------------------------------------
	if r.spec.NodeRate > 0 && u01(word(r.spec.Seed, base+2)) < r.spec.NodeRate {
		r.candidates = r.candidates[:0]
		for n := range r.nodeDownUntil {
			if r.nodeDownUntil[n] == 0 {
				r.candidates = append(r.candidates, n)
			}
		}
		if len(r.candidates) > 0 {
			n := r.candidates[word(r.spec.Seed, base+3)%uint64(len(r.candidates))]
			r.nodeDownUntil[n] = frame + r.spec.NodeRecoveryFrames
			r.pendingRecoveries++
			r.events = append(r.events, Event{Kind: NodeCrash, Node: topology.NodeID(n), RecoverAt: r.nodeDownUntil[n]})
		}
	}

	// --- region kill windows ---------------------------------------------
	for _, ev := range r.spec.Regions {
		if ev.KillFrame == frame && !r.regionDown[ev.Shard] {
			r.regionDown[ev.Shard] = true
			if ev.RestoreFrame > 0 {
				r.pendingRecoveries++
			}
			r.events = append(r.events, Event{Kind: RegionDown, Shard: ev.Shard, RecoverAt: ev.RestoreFrame})
		}
	}
	return r.events
}

// BrokenLinks returns the undirected links permanently broken by the wear
// model so far, in a stable order (for summaries and tests).
func (r *Runtime) BrokenLinks() []topology.Link {
	var out []topology.Link
	for i := range r.links {
		if r.links[i].broken {
			out = append(out, topology.Link{From: r.links[i].from, To: r.links[i].to, LengthCM: r.links[i].lengthCM})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	return out
}
