package aes

import "fmt"

// CTR implements counter-mode encryption on top of the block cipher. The
// paper motivates AES on e-textiles with the 802.11i WLAN standard, whose
// CCMP protocol runs AES in counter mode; providing CTR here lets the
// examples and cmd/aescli process arbitrary-length sensor payloads without
// the structural leakage of ECB. CTR encryption and decryption are the same
// operation.
type CTR struct {
	cipher  *Cipher
	nonce   [BlockSize]byte
	counter uint64
}

// NewCTR returns a counter-mode stream for the given key and nonce. The
// nonce occupies the first 8 bytes of the counter block; the remaining 8
// bytes hold the big-endian block counter starting at 0. Reusing a (key,
// nonce) pair destroys confidentiality, exactly as with any stream cipher.
func NewCTR(key, nonce []byte) (*CTR, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	if len(nonce) != 8 {
		return nil, fmt.Errorf("aes: CTR nonce must be 8 bytes, got %d", len(nonce))
	}
	ctr := &CTR{cipher: c}
	copy(ctr.nonce[:8], nonce)
	return ctr, nil
}

// counterBlock returns the counter block for the given block index.
func (c *CTR) counterBlock(index uint64) [BlockSize]byte {
	var block [BlockSize]byte
	copy(block[:8], c.nonce[:8])
	for i := 0; i < 8; i++ {
		block[15-i] = byte(index >> (8 * i))
	}
	return block
}

// Process encrypts (or equivalently decrypts) data of any length, continuing
// the key stream from the previous call. It returns a new slice and never
// modifies its input.
func (c *CTR) Process(data []byte) ([]byte, error) {
	out := make([]byte, len(data))
	var keystream [BlockSize]byte
	for offset := 0; offset < len(data); offset += BlockSize {
		block := c.counterBlock(c.counter)
		if err := c.cipher.Encrypt(keystream[:], block[:]); err != nil {
			return nil, err
		}
		c.counter++
		end := offset + BlockSize
		if end > len(data) {
			end = len(data)
		}
		for i := offset; i < end; i++ {
			out[i] = data[i] ^ keystream[i-offset]
		}
	}
	return out, nil
}

// Reset rewinds the key stream to the beginning (block counter 0), so the
// same CTR value can decrypt what it previously encrypted.
func (c *CTR) Reset() { c.counter = 0 }

// EncryptCTR is a convenience helper that encrypts (or decrypts) msg in one
// shot with a fresh counter starting at zero.
func EncryptCTR(key, nonce, msg []byte) ([]byte, error) {
	ctr, err := NewCTR(key, nonce)
	if err != nil {
		return nil, err
	}
	return ctr.Process(msg)
}
