package aes

// This file implements the primitive transformations of FIPS-197 Sec 5.1/5.3.
// They map one-to-one onto the hardware modules of the paper's partitioning:
// SubBytes and ShiftRows belong to Module 1, MixColumns to Module 2, and
// AddRoundKey (together with KeyExpansion in key.go) to Module 3.

// SubBytes applies the S-box to every byte of the state (Module 1).
func SubBytes(s State) State {
	var out State
	for r := 0; r < 4; r++ {
		for c := 0; c < Nb; c++ {
			out[r][c] = sbox[s[r][c]]
		}
	}
	return out
}

// InvSubBytes applies the inverse S-box to every byte of the state.
func InvSubBytes(s State) State {
	var out State
	for r := 0; r < 4; r++ {
		for c := 0; c < Nb; c++ {
			out[r][c] = invSbox[s[r][c]]
		}
	}
	return out
}

// ShiftRows cyclically shifts row r of the state left by r positions
// (Module 1).
func ShiftRows(s State) State {
	var out State
	for r := 0; r < 4; r++ {
		for c := 0; c < Nb; c++ {
			out[r][c] = s[r][(c+r)%Nb]
		}
	}
	return out
}

// InvShiftRows cyclically shifts row r of the state right by r positions.
func InvShiftRows(s State) State {
	var out State
	for r := 0; r < 4; r++ {
		for c := 0; c < Nb; c++ {
			out[r][(c+r)%Nb] = s[r][c]
		}
	}
	return out
}

// SubBytesShiftRows performs the combined operation of the paper's Module 1:
// one "act of computation" of that module applies SubBytes followed by
// ShiftRows to the state it receives.
func SubBytesShiftRows(s State) State { return ShiftRows(SubBytes(s)) }

// InvSubBytesShiftRows reverses SubBytesShiftRows.
func InvSubBytesShiftRows(s State) State { return InvSubBytes(InvShiftRows(s)) }

// MixColumns multiplies each column of the state by the fixed FIPS-197
// polynomial {03}x^3 + {01}x^2 + {01}x + {02} (Module 2).
func MixColumns(s State) State {
	var out State
	for c := 0; c < Nb; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		out[0][c] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		out[1][c] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		out[2][c] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		out[3][c] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
	return out
}

// InvMixColumns multiplies each column by the inverse polynomial
// {0b}x^3 + {0d}x^2 + {09}x + {0e}.
func InvMixColumns(s State) State {
	var out State
	for c := 0; c < Nb; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		out[0][c] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09)
		out[1][c] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d)
		out[2][c] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b)
		out[3][c] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e)
	}
	return out
}

// AddRoundKey XORs one round key (Nb words of the expanded key schedule) into
// the state (Module 3).
func AddRoundKey(s State, roundKey []Word) State {
	var out State
	for c := 0; c < Nb; c++ {
		for r := 0; r < 4; r++ {
			out[r][c] = s[r][c] ^ roundKey[c][r]
		}
	}
	return out
}
