package aes

// This file implements the primitive transformations of FIPS-197 Sec 5.1/5.3.
// They map one-to-one onto the hardware modules of the paper's partitioning:
// SubBytes and ShiftRows belong to Module 1, MixColumns to Module 2, and
// AddRoundKey (together with KeyExpansion in key.go) to Module 3.
//
// Each transformation operates in place on the flat 16-byte state — the
// engine applies millions of them while jobs flow through the mesh, so the
// hot path must not allocate. The exported value-in/value-out forms are thin
// wrappers kept for callers and tests that want pure-function semantics.

// subBytes applies the S-box to every byte of the state in place.
func subBytes(s *State) {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

// invSubBytes applies the inverse S-box to every byte of the state in place.
func invSubBytes(s *State) {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
}

// shiftRows cyclically shifts row r of the state left by r positions in
// place. Row r element c lives at flat index 4*c+r.
func shiftRows(s *State) {
	for r := 1; r < 4; r++ {
		var row [Nb]byte
		for c := 0; c < Nb; c++ {
			row[c] = s[Nb*((c+r)%Nb)+r]
		}
		for c := 0; c < Nb; c++ {
			s[Nb*c+r] = row[c]
		}
	}
}

// invShiftRows cyclically shifts row r of the state right by r positions in
// place.
func invShiftRows(s *State) {
	for r := 1; r < 4; r++ {
		var row [Nb]byte
		for c := 0; c < Nb; c++ {
			row[c] = s[Nb*((c+Nb-r)%Nb)+r]
		}
		for c := 0; c < Nb; c++ {
			s[Nb*c+r] = row[c]
		}
	}
}

// mixColumns multiplies each column of the state by the fixed FIPS-197
// polynomial {03}x^3 + {01}x^2 + {01}x + {02} in place. Columns are
// contiguous in the flat layout.
func mixColumns(s *State) {
	for c := 0; c < Nb; c++ {
		col := s[Nb*c : Nb*c+4]
		a0, a1, a2, a3 := col[0], col[1], col[2], col[3]
		col[0] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		col[1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		col[2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		col[3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
}

// invMixColumns multiplies each column by the inverse polynomial
// {0b}x^3 + {0d}x^2 + {09}x + {0e} in place.
func invMixColumns(s *State) {
	for c := 0; c < Nb; c++ {
		col := s[Nb*c : Nb*c+4]
		a0, a1, a2, a3 := col[0], col[1], col[2], col[3]
		col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09)
		col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d)
		col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b)
		col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e)
	}
}

// addRoundKey XORs one round key (Nb words of the expanded key schedule)
// into the state in place.
func addRoundKey(s *State, roundKey []Word) {
	for c := 0; c < Nb; c++ {
		for r := 0; r < 4; r++ {
			s[Nb*c+r] ^= roundKey[c][r]
		}
	}
}

// subBytesShiftRows performs the combined operation of the paper's Module 1
// in place: one "act of computation" of that module applies SubBytes
// followed by ShiftRows to the state it receives.
func subBytesShiftRows(s *State) {
	subBytes(s)
	shiftRows(s)
}

// invSubBytesShiftRows reverses subBytesShiftRows in place.
func invSubBytesShiftRows(s *State) {
	invShiftRows(s)
	invSubBytes(s)
}

// SubBytes applies the S-box to every byte of the state (Module 1).
func SubBytes(s State) State { subBytes(&s); return s }

// InvSubBytes applies the inverse S-box to every byte of the state.
func InvSubBytes(s State) State { invSubBytes(&s); return s }

// ShiftRows cyclically shifts row r of the state left by r positions
// (Module 1).
func ShiftRows(s State) State { shiftRows(&s); return s }

// InvShiftRows cyclically shifts row r of the state right by r positions.
func InvShiftRows(s State) State { invShiftRows(&s); return s }

// SubBytesShiftRows performs the combined operation of the paper's Module 1.
func SubBytesShiftRows(s State) State { subBytesShiftRows(&s); return s }

// InvSubBytesShiftRows reverses SubBytesShiftRows.
func InvSubBytesShiftRows(s State) State { invSubBytesShiftRows(&s); return s }

// MixColumns multiplies each column of the state by the fixed FIPS-197
// polynomial (Module 2).
func MixColumns(s State) State { mixColumns(&s); return s }

// InvMixColumns multiplies each column by the inverse polynomial.
func InvMixColumns(s State) State { invMixColumns(&s); return s }

// AddRoundKey XORs one round key into the state (Module 3).
func AddRoundKey(s State, roundKey []Word) State { addRoundKey(&s, roundKey); return s }
