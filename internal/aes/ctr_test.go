package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func TestCTRKnownAnswer(t *testing.T) {
	// NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt), restricted to the blocks
	// whose counter value our nonce||counter layout can represent: with nonce
	// f0f1f2f3f4f5f6f7 and counter starting at f8f9fafbfcfdfeff the first
	// block of the standard vector is reproduced by XORing the keystream for
	// that exact counter block. Here we instead check the construction
	// directly: encrypting the counter block with the reference cipher and
	// XORing must equal Process's output.
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	nonce := mustHex(t, "f0f1f2f3f4f5f6f7")
	plaintext := mustHex(t, "6bc1bee22e409f96e93d7e117393172a")

	ctr, err := NewCTR(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctr.Process(plaintext)
	if err != nil {
		t.Fatal(err)
	}

	cipher, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	var counterBlock [16]byte
	copy(counterBlock[:8], nonce)
	keystream, err := cipher.EncryptBlock(counterBlock[:])
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 16)
	for i := range want {
		want[i] = plaintext[i] ^ keystream[i]
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CTR output %x, want %x", got, want)
	}
}

func TestCTRRoundTripArbitraryLengths(t *testing.T) {
	prop := func(key [16]byte, nonce [8]byte, msg []byte) bool {
		ct, err := EncryptCTR(key[:], nonce[:], msg)
		if err != nil {
			return false
		}
		if len(ct) != len(msg) {
			return false
		}
		pt, err := EncryptCTR(key[:], nonce[:], ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCTRStreamContinuationAndReset(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 8)
	msg := []byte("the quick brown fox jumps over the lazy dog, twice around the garment")

	whole, err := EncryptCTR(key, nonce, msg)
	if err != nil {
		t.Fatal(err)
	}

	ctr, err := NewCTR(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ctr.Process(msg[:32])
	if err != nil {
		t.Fatal(err)
	}
	second, err := ctr.Process(msg[32:])
	if err != nil {
		t.Fatal(err)
	}
	pieced := append(append([]byte(nil), first...), second...)
	if !bytes.Equal(pieced, whole) {
		t.Fatalf("piecewise CTR %x differs from one-shot %x", pieced, whole)
	}

	ctr.Reset()
	pt, err := ctr.Process(whole)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatalf("Reset + Process did not decrypt: %q", pt)
	}
}

func TestCTRDistinctCountersProduceDistinctKeystream(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 8)
	zeros := make([]byte, 48)
	ks, err := EncryptCTR(key, nonce, zeros)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ks[:16], ks[16:32]) || bytes.Equal(ks[16:32], ks[32:48]) {
		t.Fatal("consecutive keystream blocks are identical; the counter is not advancing")
	}
}

func TestCTRValidation(t *testing.T) {
	if _, err := NewCTR(make([]byte, 15), make([]byte, 8)); err == nil {
		t.Error("invalid key length accepted")
	}
	if _, err := NewCTR(make([]byte, 16), make([]byte, 7)); err == nil {
		t.Error("short nonce accepted")
	}
	if _, err := NewCTR(make([]byte, 16), make([]byte, 16)); err == nil {
		t.Error("long nonce accepted")
	}
	ctr, err := NewCTR(make([]byte, 32), make([]byte, 8))
	if err != nil {
		t.Fatalf("AES-256 CTR rejected: %v", err)
	}
	if out, err := ctr.Process(nil); err != nil || len(out) != 0 {
		t.Errorf("Process(nil) = %x, %v", out, err)
	}
}

func TestCTRCounterBlockLayout(t *testing.T) {
	ctr, err := NewCTR(make([]byte, 16), mustHex(t, "0102030405060708"))
	if err != nil {
		t.Fatal(err)
	}
	block := ctr.counterBlock(0x0a0b)
	if hex.EncodeToString(block[:]) != "01020304050607080000000000000a0b" {
		t.Fatalf("counter block layout = %x", block)
	}
}
