package aes

import "fmt"

// KeySize identifies one of the three FIPS-197 key lengths.
type KeySize int

// Supported key sizes in bits.
const (
	Key128 KeySize = 128
	Key192 KeySize = 192
	Key256 KeySize = 256
)

// Nk returns the key length in 32-bit words.
func (k KeySize) Nk() int { return int(k) / 32 }

// Nr returns the number of cipher rounds for this key size (10, 12 or 14).
func (k KeySize) Nr() int { return k.Nk() + 6 }

// Bytes returns the key length in bytes.
func (k KeySize) Bytes() int { return int(k) / 8 }

// Valid reports whether k is one of the three supported key sizes.
func (k KeySize) Valid() bool { return k == Key128 || k == Key192 || k == Key256 }

// String implements fmt.Stringer, e.g. "AES-128".
func (k KeySize) String() string { return fmt.Sprintf("AES-%d", int(k)) }

// KeySizeForBytes maps a raw key length in bytes to its KeySize.
func KeySizeForBytes(n int) (KeySize, error) {
	switch n {
	case 16:
		return Key128, nil
	case 24:
		return Key192, nil
	case 32:
		return Key256, nil
	default:
		return 0, fmt.Errorf("aes: invalid key length %d bytes (want 16, 24 or 32)", n)
	}
}

// rcon holds the round constants Rcon[i] = x^(i-1) in GF(2^8); index 0 is
// unused as in FIPS-197.
var rcon = func() [15]byte {
	var r [15]byte
	v := byte(1)
	for i := 1; i < len(r); i++ {
		r[i] = v
		v = gmul(v, 2)
	}
	return r
}()

// KeySchedule is the expanded key: Nb*(Nr+1) words, consumed Nb words per
// round by AddRoundKey. It is produced by Module 3 (KeyExpansion).
type KeySchedule struct {
	size  KeySize
	words []Word
}

// ExpandKey runs the FIPS-197 KeyExpansion routine on a raw key of 16, 24 or
// 32 bytes.
func ExpandKey(key []byte) (*KeySchedule, error) {
	size, err := KeySizeForBytes(len(key))
	if err != nil {
		return nil, err
	}
	nk := size.Nk()
	nr := size.Nr()
	words := make([]Word, Nb*(nr+1))
	for i := 0; i < nk; i++ {
		copy(words[i][:], key[4*i:4*i+4])
	}
	for i := nk; i < len(words); i++ {
		temp := words[i-1]
		switch {
		case i%nk == 0:
			temp = subWord(rotWord(temp))
			temp[0] ^= rcon[i/nk]
		case nk > 6 && i%nk == 4:
			temp = subWord(temp)
		}
		words[i] = xorWords(words[i-nk], temp)
	}
	return &KeySchedule{size: size, words: words}, nil
}

// Size returns the key size the schedule was expanded from.
func (ks *KeySchedule) Size() KeySize { return ks.size }

// Rounds returns the number of cipher rounds Nr.
func (ks *KeySchedule) Rounds() int { return ks.size.Nr() }

// Words returns the total number of expanded words, Nb*(Nr+1).
func (ks *KeySchedule) Words() int { return len(ks.words) }

// RoundKey returns the Nb words used by AddRoundKey in the given round,
// 0 <= round <= Nr.
func (ks *KeySchedule) RoundKey(round int) ([]Word, error) {
	if round < 0 || round > ks.Rounds() {
		return nil, fmt.Errorf("aes: round %d out of range 0..%d", round, ks.Rounds())
	}
	out := make([]Word, Nb)
	copy(out, ks.words[round*Nb:(round+1)*Nb])
	return out, nil
}

// mustRoundKey is RoundKey for internal callers that already validated the
// round index. Unlike RoundKey it returns a slice aliasing the schedule
// without copying, so the per-round hot path does not allocate; callers must
// treat it as read-only.
func (ks *KeySchedule) mustRoundKey(round int) []Word {
	if round < 0 || round > ks.Rounds() {
		panic(fmt.Sprintf("aes: round %d out of range 0..%d", round, ks.Rounds()))
	}
	return ks.words[round*Nb : (round+1)*Nb]
}
