// Package aes is a from-scratch implementation of the FIPS-197 Advanced
// Encryption Standard, structured around the three hardware modules the
// paper partitions the cipher into (Sec 5.1.1):
//
//	Module 1: SubBytes / ShiftRows
//	Module 2: MixColumns
//	Module 3: KeyExpansion / AddRoundKey
//
// Besides a conventional single-call block cipher (Encrypt/Decrypt for key
// sizes 128, 192 and 256 bits), the package exposes the individual module
// operations and a step-wise Pipeline so that et_sim can execute a real
// encryption distributed across mesh nodes exactly as the e-textile platform
// would, and verify the ciphertext against the reference implementation.
package aes

// The S-box is generated programmatically from its mathematical definition
// (multiplicative inverse in GF(2^8) followed by an affine transform) rather
// than transcribed, eliminating the risk of typos in a 256-entry table. The
// generated tables are verified against FIPS-197 spot values in the tests.

var (
	sbox    [256]byte
	invSbox [256]byte
)

func init() {
	initSboxes()
}

// gmul multiplies two elements of GF(2^8) modulo the AES polynomial x^8 + x^4
// + x^3 + x + 1 (0x11b).
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// ginv returns the multiplicative inverse of a in GF(2^8), with ginv(0) = 0
// as required by the S-box construction.
func ginv(a byte) byte {
	if a == 0 {
		return 0
	}
	// a^254 = a^-1 in GF(2^8): square-and-multiply over the fixed exponent.
	result := byte(1)
	base := a
	exp := 254
	for exp > 0 {
		if exp&1 == 1 {
			result = gmul(result, base)
		}
		base = gmul(base, base)
		exp >>= 1
	}
	return result
}

// affine applies the FIPS-197 affine transformation to b.
func affine(b byte) byte {
	return b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

func initSboxes() {
	for i := 0; i < 256; i++ {
		s := affine(ginv(byte(i)))
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

// SBox returns the value of the AES S-box at index b.
func SBox(b byte) byte { return sbox[b] }

// InvSBox returns the value of the inverse AES S-box at index b.
func InvSBox(b byte) byte { return invSbox[b] }
