package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func TestSBoxKnownValues(t *testing.T) {
	// Spot values from FIPS-197 Figure 7.
	cases := map[byte]byte{
		0x00: 0x63, 0x01: 0x7c, 0x10: 0xca, 0x53: 0xed,
		0x9a: 0xb8, 0xc9: 0xdd, 0xff: 0x16, 0xf0: 0x8c,
	}
	for in, want := range cases {
		if got := SBox(in); got != want {
			t.Errorf("SBox(%#02x) = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestSBoxIsABijectionAndInverts(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 256; i++ {
		s := SBox(byte(i))
		if seen[s] {
			t.Fatalf("S-box value %#02x repeated", s)
		}
		seen[s] = true
		if InvSBox(s) != byte(i) {
			t.Fatalf("InvSBox(SBox(%#02x)) = %#02x", i, InvSBox(s))
		}
	}
}

func TestGFMultiplication(t *testing.T) {
	cases := []struct{ a, b, want byte }{
		{0x57, 0x83, 0xc1}, // FIPS-197 Sec 4.2 example
		{0x57, 0x13, 0xfe}, // FIPS-197 Sec 4.2.1 example
		{0x01, 0xab, 0xab},
		{0x00, 0xff, 0x00},
	}
	for _, tc := range cases {
		if got := gmul(tc.a, tc.b); got != tc.want {
			t.Errorf("gmul(%#02x, %#02x) = %#02x, want %#02x", tc.a, tc.b, got, tc.want)
		}
		if got := gmul(tc.b, tc.a); got != tc.want {
			t.Errorf("gmul not commutative for (%#02x, %#02x)", tc.a, tc.b)
		}
	}
}

func TestGFInverseProperty(t *testing.T) {
	for i := 1; i < 256; i++ {
		if got := gmul(byte(i), ginv(byte(i))); got != 1 {
			t.Fatalf("x * ginv(x) = %#02x for x = %#02x, want 1", got, i)
		}
	}
	if ginv(0) != 0 {
		t.Fatal("ginv(0) must be 0 by convention")
	}
}

func TestStateRoundTrip(t *testing.T) {
	block := mustHex(t, "00112233445566778899aabbccddeeff")
	s, err := LoadState(block)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Bytes()
	if !bytes.Equal(got[:], block) {
		t.Fatalf("state round trip: got %x, want %x", got, block)
	}
	// Column-major layout check: byte 1 of the block is row 1, column 0.
	if s.At(1, 0) != 0x11 || s.At(0, 1) != 0x44 {
		t.Fatalf("state layout wrong: At(1,0)=%#02x At(0,1)=%#02x", s.At(1, 0), s.At(0, 1))
	}
	if _, err := LoadState(block[:5]); err == nil {
		t.Fatal("short block accepted")
	}
	if s.String() != "00112233445566778899aabbccddeeff" {
		t.Fatalf("State.String() = %q", s.String())
	}
}

func TestShiftRowsExample(t *testing.T) {
	var s State
	for r := 0; r < 4; r++ {
		for c := 0; c < Nb; c++ {
			s.SetAt(r, c, byte(4*r+c))
		}
	}
	out := ShiftRows(s)
	// Row 0 unchanged, row 1 rotated left by 1, etc.
	wantRows := [4][4]byte{
		{0, 1, 2, 3},
		{5, 6, 7, 4},
		{10, 11, 8, 9},
		{15, 12, 13, 14},
	}
	var want State
	for r := 0; r < 4; r++ {
		for c := 0; c < Nb; c++ {
			want.SetAt(r, c, wantRows[r][c])
		}
	}
	if out != want {
		t.Fatalf("ShiftRows = %v, want %v", out, want)
	}
	if InvShiftRows(out) != s {
		t.Fatal("InvShiftRows does not invert ShiftRows")
	}
}

func TestOperationInverseProperties(t *testing.T) {
	roundTrip := func(block [16]byte) bool {
		s, err := LoadState(block[:])
		if err != nil {
			return false
		}
		if InvSubBytes(SubBytes(s)) != s {
			return false
		}
		if InvShiftRows(ShiftRows(s)) != s {
			return false
		}
		if InvMixColumns(MixColumns(s)) != s {
			return false
		}
		if InvSubBytesShiftRows(SubBytesShiftRows(s)) != s {
			return false
		}
		return true
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRoundKeyIsItsOwnInverse(t *testing.T) {
	prop := func(block, key [16]byte) bool {
		s, _ := LoadState(block[:])
		ks, err := ExpandKey(key[:])
		if err != nil {
			return false
		}
		rk := ks.mustRoundKey(3)
		return AddRoundKey(AddRoundKey(s, rk), rk) == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeySizeProperties(t *testing.T) {
	cases := []struct {
		size  KeySize
		nk    int
		nr    int
		bytes int
		str   string
	}{
		{Key128, 4, 10, 16, "AES-128"},
		{Key192, 6, 12, 24, "AES-192"},
		{Key256, 8, 14, 32, "AES-256"},
	}
	for _, tc := range cases {
		if tc.size.Nk() != tc.nk || tc.size.Nr() != tc.nr || tc.size.Bytes() != tc.bytes {
			t.Errorf("%v: Nk/Nr/Bytes = %d/%d/%d, want %d/%d/%d",
				tc.size, tc.size.Nk(), tc.size.Nr(), tc.size.Bytes(), tc.nk, tc.nr, tc.bytes)
		}
		if !tc.size.Valid() {
			t.Errorf("%v reported invalid", tc.size)
		}
		if tc.size.String() != tc.str {
			t.Errorf("String() = %q, want %q", tc.size.String(), tc.str)
		}
	}
	if KeySize(512).Valid() {
		t.Error("KeySize(512) reported valid")
	}
	if _, err := KeySizeForBytes(20); err == nil {
		t.Error("KeySizeForBytes(20) should fail")
	}
}

func TestKeyExpansionFIPSAppendixA1(t *testing.T) {
	// FIPS-197 Appendix A.1: AES-128 key expansion.
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	ks, err := ExpandKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Words() != 44 {
		t.Fatalf("expanded words = %d, want 44", ks.Words())
	}
	wantWords := map[int]string{
		4:  "a0fafe17",
		10: "5935807a",
		23: "11f915bc",
		43: "b6630ca6",
	}
	for i, want := range wantWords {
		got := ks.words[i]
		if hex.EncodeToString(got[:]) != want {
			t.Errorf("w[%d] = %x, want %s", i, got, want)
		}
	}
	if _, err := ks.RoundKey(-1); err == nil {
		t.Error("RoundKey(-1) should fail")
	}
	if _, err := ks.RoundKey(11); err == nil {
		t.Error("RoundKey(11) should fail for AES-128")
	}
}

func TestKeyExpansionRejectsBadKeyLengths(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 23, 31, 33} {
		if _, err := ExpandKey(make([]byte, n)); err == nil {
			t.Errorf("ExpandKey accepted %d-byte key", n)
		}
	}
}

// FIPS-197 Appendix C known-answer vectors.
func TestCipherFIPSVectors(t *testing.T) {
	cases := []struct {
		name       string
		key        string
		plaintext  string
		ciphertext string
	}{
		{
			name:       "AES-128 Appendix C.1",
			key:        "000102030405060708090a0b0c0d0e0f",
			plaintext:  "00112233445566778899aabbccddeeff",
			ciphertext: "69c4e0d86a7b0430d8cdb78070b4c55a",
		},
		{
			name:       "AES-192 Appendix C.2",
			key:        "000102030405060708090a0b0c0d0e0f1011121314151617",
			plaintext:  "00112233445566778899aabbccddeeff",
			ciphertext: "dda97ca4864cdfe06eaf70a0ec0d7191",
		},
		{
			name:       "AES-256 Appendix C.3",
			key:        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
			plaintext:  "00112233445566778899aabbccddeeff",
			ciphertext: "8ea2b7ca516745bfeafc49904b496089",
		},
		{
			name:       "AES-128 Appendix B example",
			key:        "2b7e151628aed2a6abf7158809cf4f3c",
			plaintext:  "3243f6a8885a308d313198a2e0370734",
			ciphertext: "3925841d02dc09fbdc118597196a0b32",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewCipher(mustHex(t, tc.key))
			if err != nil {
				t.Fatal(err)
			}
			ct, err := c.EncryptBlock(mustHex(t, tc.plaintext))
			if err != nil {
				t.Fatal(err)
			}
			if hex.EncodeToString(ct) != tc.ciphertext {
				t.Fatalf("ciphertext = %x, want %s", ct, tc.ciphertext)
			}
			pt, err := c.DecryptBlock(ct)
			if err != nil {
				t.Fatal(err)
			}
			if hex.EncodeToString(pt) != tc.plaintext {
				t.Fatalf("decrypted = %x, want %s", pt, tc.plaintext)
			}
		})
	}
}

func TestCipherRejectsBadBlockSizes(t *testing.T) {
	c, err := NewCipher(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EncryptBlock(make([]byte, 15)); err == nil {
		t.Error("short plaintext accepted")
	}
	if _, err := c.DecryptBlock(make([]byte, 17)); err == nil {
		t.Error("long ciphertext accepted")
	}
}

func TestEncryptDecryptRoundTripProperty(t *testing.T) {
	prop := func(key [16]byte, block [16]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		ct, err := c.EncryptBlock(block[:])
		if err != nil {
			return false
		}
		pt, err := c.DecryptBlock(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, block[:]) && !bytes.Equal(ct, block[:])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptDecryptRoundTrip256Property(t *testing.T) {
	prop := func(key [32]byte, block [16]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		ct, err := c.EncryptBlock(block[:])
		if err != nil {
			return false
		}
		pt, err := c.DecryptBlock(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestECBHelpers(t *testing.T) {
	c, err := NewCipher(mustHex(t, "000102030405060708090a0b0c0d0e0f"))
	if err != nil {
		t.Fatal(err)
	}
	plaintext := bytes.Repeat(mustHex(t, "00112233445566778899aabbccddeeff"), 3)
	ct, err := c.EncryptECB(plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != len(plaintext) {
		t.Fatalf("ciphertext length %d, want %d", len(ct), len(plaintext))
	}
	// ECB encrypts identical blocks identically.
	if !bytes.Equal(ct[:16], ct[16:32]) {
		t.Fatal("identical plaintext blocks produced different ECB ciphertext blocks")
	}
	pt, err := c.DecryptECB(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, plaintext) {
		t.Fatal("ECB round trip failed")
	}
	if _, err := c.EncryptECB(make([]byte, 10)); err == nil {
		t.Error("non-multiple-of-block-size input accepted")
	}
}

func TestEncryptionStepsMatchPaperOperationCounts(t *testing.T) {
	steps, err := EncryptionSteps(Key128)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 30 {
		t.Fatalf("AES-128 job has %d operations, want 30", len(steps))
	}
	m1, m2, m3, err := OperationCounts(Key128)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != 10 || m2 != 9 || m3 != 11 {
		t.Fatalf("operation counts = (%d,%d,%d), want (10,9,11) as in Table 1", m1, m2, m3)
	}
	// First and last operations must be AddRoundKey per the Fig 1 pseudo code.
	if steps[0].Kind != OpAddRoundKey || steps[0].Round != 0 {
		t.Errorf("first step = %+v, want AddRoundKey round 0", steps[0])
	}
	if steps[len(steps)-1].Kind != OpAddRoundKey || steps[len(steps)-1].Round != 10 {
		t.Errorf("last step = %+v, want AddRoundKey round 10", steps[len(steps)-1])
	}
	if _, err := EncryptionSteps(KeySize(100)); err == nil {
		t.Error("invalid key size accepted")
	}
	if _, _, _, err := OperationCounts(KeySize(100)); err == nil {
		t.Error("invalid key size accepted by OperationCounts")
	}
}

func TestOperationCountsOtherKeySizes(t *testing.T) {
	for _, tc := range []struct {
		size       KeySize
		m1, m2, m3 int
	}{
		{Key192, 12, 11, 13},
		{Key256, 14, 13, 15},
	} {
		m1, m2, m3, err := OperationCounts(tc.size)
		if err != nil {
			t.Fatal(err)
		}
		if m1 != tc.m1 || m2 != tc.m2 || m3 != tc.m3 {
			t.Errorf("%v counts = (%d,%d,%d), want (%d,%d,%d)",
				tc.size, m1, m2, m3, tc.m1, tc.m2, tc.m3)
		}
	}
}

func TestPipelineMatchesReferenceCipher(t *testing.T) {
	prop := func(key [16]byte, block [16]byte) bool {
		p, err := NewPipeline(key[:])
		if err != nil {
			return false
		}
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		got, err := p.Run(block[:])
		if err != nil {
			return false
		}
		want, err := c.EncryptBlock(block[:])
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineStepwiseExecution(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	p, err := NewPipeline(key)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSteps() != 30 {
		t.Fatalf("NumSteps = %d, want 30", p.NumSteps())
	}
	s, err := LoadState(mustHex(t, "3243f6a8885a308d313198a2e0370734"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumSteps(); i++ {
		if s, err = p.Apply(s, i); err != nil {
			t.Fatalf("Apply(%d): %v", i, err)
		}
	}
	if s.String() != "3925841d02dc09fbdc118597196a0b32" {
		t.Fatalf("stepwise ciphertext = %s, want FIPS example value", s)
	}
	if _, err := p.Apply(s, -1); err == nil {
		t.Error("Apply(-1) should fail")
	}
	if _, err := p.Apply(s, p.NumSteps()); err == nil {
		t.Error("Apply past end should fail")
	}
	steps := p.Steps()
	steps[0].Kind = OpMixColumns
	if p.steps[0].Kind == OpMixColumns {
		t.Error("Steps() must return a copy")
	}
}

func TestOpKindString(t *testing.T) {
	if OpAddRoundKey.String() != "AddRoundKey" ||
		OpSubBytesShiftRows.String() != "SubBytes/ShiftRows" ||
		OpMixColumns.String() != "MixColumns" {
		t.Error("OpKind String() values wrong")
	}
	if OpKind(42).String() != "OpKind(42)" {
		t.Errorf("unknown OpKind string = %q", OpKind(42).String())
	}
}

func BenchmarkEncryptBlock128(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	block := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncryptBlock(block); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineRun128(b *testing.B) {
	p, _ := NewPipeline(make([]byte, 16))
	block := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(block); err != nil {
			b.Fatal(err)
		}
	}
}
