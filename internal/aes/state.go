package aes

import "fmt"

// BlockSize is the AES block size in bytes (Nb = 4 words).
const BlockSize = 16

// Nb is the number of 32-bit columns in the state, fixed at 4 by FIPS-197.
const Nb = 4

// State is the 4x4 byte state array of FIPS-197. state[r][c] holds the byte
// in row r, column c; input bytes fill the state column by column.
type State [4][4]byte

// LoadState fills a state from a 16-byte block in the column-major order
// mandated by FIPS-197 Sec 3.4.
func LoadState(block []byte) (State, error) {
	var s State
	if len(block) != BlockSize {
		return s, fmt.Errorf("aes: block must be %d bytes, got %d", BlockSize, len(block))
	}
	for c := 0; c < Nb; c++ {
		for r := 0; r < 4; r++ {
			s[r][c] = block[4*c+r]
		}
	}
	return s, nil
}

// Bytes serialises the state back into a 16-byte block.
func (s State) Bytes() []byte {
	out := make([]byte, BlockSize)
	for c := 0; c < Nb; c++ {
		for r := 0; r < 4; r++ {
			out[4*c+r] = s[r][c]
		}
	}
	return out
}

// String renders the state as 16 hexadecimal bytes in block order, which is
// convenient when comparing against the FIPS-197 worked example.
func (s State) String() string { return fmt.Sprintf("%x", s.Bytes()) }

// Word is a 32-bit word of the key schedule, stored as 4 bytes.
type Word [4]byte

// xorWords returns the byte-wise XOR of two words.
func xorWords(a, b Word) Word {
	return Word{a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]}
}

// subWord applies the S-box to each byte of a word (used by KeyExpansion).
func subWord(w Word) Word {
	return Word{sbox[w[0]], sbox[w[1]], sbox[w[2]], sbox[w[3]]}
}

// rotWord rotates a word left by one byte (used by KeyExpansion).
func rotWord(w Word) Word { return Word{w[1], w[2], w[3], w[0]} }
