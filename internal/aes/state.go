package aes

import "fmt"

// BlockSize is the AES block size in bytes (Nb = 4 words).
const BlockSize = 16

// Nb is the number of 32-bit columns in the state, fixed at 4 by FIPS-197.
const Nb = 4

// State is the 4x4 byte state array of FIPS-197, stored flat in block order:
// input bytes fill the state column by column (Sec 3.4), so the byte in row
// r, column c lives at index 4*c+r and a State converts to and from a
// 16-byte block with no reordering or allocation. The round operations in
// ops.go mutate a State in place.
type State [BlockSize]byte

// LoadState fills a state from a 16-byte block.
func LoadState(block []byte) (State, error) {
	var s State
	if len(block) != BlockSize {
		return s, fmt.Errorf("aes: block must be %d bytes, got %d", BlockSize, len(block))
	}
	copy(s[:], block)
	return s, nil
}

// At returns the byte in row r, column c of the FIPS-197 state array.
func (s *State) At(r, c int) byte { return s[Nb*c+r] }

// SetAt assigns the byte in row r, column c of the FIPS-197 state array.
func (s *State) SetAt(r, c int, v byte) { s[Nb*c+r] = v }

// Bytes serialises the state back into a 16-byte block. The state is already
// stored in block order, so this is a plain array copy with no allocation.
func (s State) Bytes() [BlockSize]byte { return [BlockSize]byte(s) }

// String renders the state as 16 hexadecimal bytes in block order, which is
// convenient when comparing against the FIPS-197 worked example.
func (s State) String() string { return fmt.Sprintf("%x", s[:]) }

// Word is a 32-bit word of the key schedule, stored as 4 bytes.
type Word [4]byte

// xorWords returns the byte-wise XOR of two words.
func xorWords(a, b Word) Word {
	return Word{a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]}
}

// subWord applies the S-box to each byte of a word (used by KeyExpansion).
func subWord(w Word) Word {
	return Word{sbox[w[0]], sbox[w[1]], sbox[w[2]], sbox[w[3]]}
}

// rotWord rotates a word left by one byte (used by KeyExpansion).
func rotWord(w Word) Word { return Word{w[1], w[2], w[3], w[0]} }
