package aes

import "fmt"

// Cipher is a reference AES block cipher for one expanded key. It is used
// both directly (cmd/aescli, tests) and as the golden model the distributed
// Pipeline execution in et_sim is verified against.
type Cipher struct {
	schedule *KeySchedule
}

// NewCipher expands the given raw key (16, 24 or 32 bytes) and returns a
// ready-to-use cipher.
func NewCipher(key []byte) (*Cipher, error) {
	ks, err := ExpandKey(key)
	if err != nil {
		return nil, err
	}
	return &Cipher{schedule: ks}, nil
}

// KeySize returns the cipher's key size.
func (c *Cipher) KeySize() KeySize { return c.schedule.Size() }

// Schedule returns the expanded key schedule.
func (c *Cipher) Schedule() *KeySchedule { return c.schedule }

// Encrypt encrypts the 16-byte block src into dst without allocating. dst
// and src must each be exactly BlockSize bytes and may overlap.
func (c *Cipher) Encrypt(dst, src []byte) error {
	s, err := LoadState(src)
	if err != nil {
		return err
	}
	if len(dst) != BlockSize {
		return fmt.Errorf("aes: destination must be %d bytes, got %d", BlockSize, len(dst))
	}
	c.encrypt(&s)
	copy(dst, s[:])
	return nil
}

// encrypt runs the cipher rounds in place.
func (c *Cipher) encrypt(s *State) {
	nr := c.schedule.Rounds()
	addRoundKey(s, c.schedule.mustRoundKey(0))
	for round := 1; round < nr; round++ {
		subBytesShiftRows(s)
		mixColumns(s)
		addRoundKey(s, c.schedule.mustRoundKey(round))
	}
	subBytesShiftRows(s)
	addRoundKey(s, c.schedule.mustRoundKey(nr))
}

// Decrypt decrypts the 16-byte block src into dst without allocating. dst
// and src must each be exactly BlockSize bytes and may overlap.
func (c *Cipher) Decrypt(dst, src []byte) error {
	s, err := LoadState(src)
	if err != nil {
		return err
	}
	if len(dst) != BlockSize {
		return fmt.Errorf("aes: destination must be %d bytes, got %d", BlockSize, len(dst))
	}
	c.decrypt(&s)
	copy(dst, s[:])
	return nil
}

// decrypt runs the inverse cipher rounds in place.
func (c *Cipher) decrypt(s *State) {
	nr := c.schedule.Rounds()
	addRoundKey(s, c.schedule.mustRoundKey(nr))
	for round := nr - 1; round >= 1; round-- {
		invSubBytesShiftRows(s)
		addRoundKey(s, c.schedule.mustRoundKey(round))
		invMixColumns(s)
	}
	invSubBytesShiftRows(s)
	addRoundKey(s, c.schedule.mustRoundKey(0))
}

// EncryptBlock encrypts a single 16-byte block into a fresh slice. Hot paths
// should use Encrypt with a reused destination buffer instead.
func (c *Cipher) EncryptBlock(plaintext []byte) ([]byte, error) {
	out := make([]byte, BlockSize)
	if err := c.Encrypt(out, plaintext); err != nil {
		return nil, err
	}
	return out, nil
}

// DecryptBlock decrypts a single 16-byte block into a fresh slice. Hot paths
// should use Decrypt with a reused destination buffer instead.
func (c *Cipher) DecryptBlock(ciphertext []byte) ([]byte, error) {
	out := make([]byte, BlockSize)
	if err := c.Decrypt(out, ciphertext); err != nil {
		return nil, err
	}
	return out, nil
}

// EncryptECB encrypts a multiple-of-16-bytes buffer block by block. It exists
// for the aescli tool and for generating deterministic multi-block workloads;
// ECB offers no semantic security and must not be used to protect real data.
func (c *Cipher) EncryptECB(plaintext []byte) ([]byte, error) {
	return c.ecb(plaintext, c.Encrypt)
}

// DecryptECB reverses EncryptECB.
func (c *Cipher) DecryptECB(ciphertext []byte) ([]byte, error) {
	return c.ecb(ciphertext, c.Decrypt)
}

func (c *Cipher) ecb(in []byte, f func(dst, src []byte) error) ([]byte, error) {
	if len(in)%BlockSize != 0 {
		return nil, fmt.Errorf("aes: input length %d is not a multiple of the block size", len(in))
	}
	out := make([]byte, len(in))
	for off := 0; off < len(in); off += BlockSize {
		if err := f(out[off:off+BlockSize], in[off:off+BlockSize]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// OpKind identifies one kind of cipher operation, matching the paper's
// module partitioning: each OpKind is an "act of computation" performed by
// exactly one module.
type OpKind int

// Operation kinds and the module that executes them.
const (
	// OpAddRoundKey is executed by Module 3 (KeyExpansion/AddRoundKey).
	OpAddRoundKey OpKind = iota
	// OpSubBytesShiftRows is executed by Module 1 (SubBytes/ShiftRows).
	OpSubBytesShiftRows
	// OpMixColumns is executed by Module 2 (MixColumns).
	OpMixColumns
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpAddRoundKey:
		return "AddRoundKey"
	case OpSubBytesShiftRows:
		return "SubBytes/ShiftRows"
	case OpMixColumns:
		return "MixColumns"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Step is one operation of the encryption data flow: an OpKind plus the round
// whose key material it needs (meaningful only for OpAddRoundKey).
type Step struct {
	Kind  OpKind
	Round int
}

// EncryptionSteps returns the complete operation sequence of one encryption
// job for the given key size, in data-flow order. For AES-128 this yields 30
// steps: 10 of Module 1, 9 of Module 2 and 11 of Module 3, matching the
// f_i = (10, 9, 11) operation counts of Table 1.
func EncryptionSteps(size KeySize) ([]Step, error) {
	if !size.Valid() {
		return nil, fmt.Errorf("aes: invalid key size %d", int(size))
	}
	nr := size.Nr()
	steps := make([]Step, 0, 3*nr+1)
	steps = append(steps, Step{Kind: OpAddRoundKey, Round: 0})
	for round := 1; round < nr; round++ {
		steps = append(steps,
			Step{Kind: OpSubBytesShiftRows, Round: round},
			Step{Kind: OpMixColumns, Round: round},
			Step{Kind: OpAddRoundKey, Round: round},
		)
	}
	steps = append(steps,
		Step{Kind: OpSubBytesShiftRows, Round: nr},
		Step{Kind: OpAddRoundKey, Round: nr},
	)
	return steps, nil
}

// OperationCounts returns, for the given key size, how many operations each
// module performs per encryption job: the paper's (f1, f2, f3).
func OperationCounts(size KeySize) (module1, module2, module3 int, err error) {
	steps, err := EncryptionSteps(size)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, s := range steps {
		switch s.Kind {
		case OpSubBytesShiftRows:
			module1++
		case OpMixColumns:
			module2++
		case OpAddRoundKey:
			module3++
		}
	}
	return module1, module2, module3, nil
}

// Pipeline executes an encryption step by step. It is the computational
// payload carried through the mesh by et_sim: each node applies exactly the
// steps belonging to its module, so a completed simulated job produces a real
// AES ciphertext that can be checked against the Cipher reference.
type Pipeline struct {
	schedule *KeySchedule
	steps    []Step
}

// NewPipeline builds a pipeline for the given raw key.
func NewPipeline(key []byte) (*Pipeline, error) {
	ks, err := ExpandKey(key)
	if err != nil {
		return nil, err
	}
	steps, err := EncryptionSteps(ks.Size())
	if err != nil {
		return nil, err
	}
	return &Pipeline{schedule: ks, steps: steps}, nil
}

// Steps returns the pipeline's operation sequence.
func (p *Pipeline) Steps() []Step {
	out := make([]Step, len(p.steps))
	copy(out, p.steps)
	return out
}

// NumSteps returns the number of operations in one job.
func (p *Pipeline) NumSteps() int { return len(p.steps) }

// ApplyInPlace executes step index i on the state in place without
// allocating — it is the form the simulation engine calls once per completed
// operation. On error the state is left untouched.
func (p *Pipeline) ApplyInPlace(s *State, i int) error {
	if i < 0 || i >= len(p.steps) {
		return fmt.Errorf("aes: step index %d out of range 0..%d", i, len(p.steps)-1)
	}
	step := p.steps[i]
	switch step.Kind {
	case OpAddRoundKey:
		addRoundKey(s, p.schedule.mustRoundKey(step.Round))
	case OpSubBytesShiftRows:
		subBytesShiftRows(s)
	case OpMixColumns:
		mixColumns(s)
	default:
		return fmt.Errorf("aes: unknown operation kind %d", step.Kind)
	}
	return nil
}

// Apply executes step index i on the given state and returns the new state.
func (p *Pipeline) Apply(s State, i int) (State, error) {
	err := p.ApplyInPlace(&s, i)
	return s, err
}

// Run executes the whole pipeline on a 16-byte plaintext block and returns
// the ciphertext. It must agree with Cipher.EncryptBlock for the same key.
func (p *Pipeline) Run(plaintext []byte) ([]byte, error) {
	s, err := LoadState(plaintext)
	if err != nil {
		return nil, err
	}
	for i := range p.steps {
		if err := p.ApplyInPlace(&s, i); err != nil {
			return nil, err
		}
	}
	out := s.Bytes()
	return out[:], nil
}
