package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/battery"
	"repro/internal/energy"
)

func TestCommunicationEnergyPerOpMatchesCalibration(t *testing.T) {
	a := app.AES128()
	line := energy.PaperTransmissionLine()
	c := CommunicationEnergyPerOp(a, line, 1.0)
	want := 261 * 0.4472
	if math.Abs(c-want) > 1e-9 {
		t.Fatalf("c = %g, want %g", c, want)
	}
}

func TestNormalizedEnergiesAES(t *testing.T) {
	a := app.AES128()
	c := 261 * 0.4472
	h, err := NormalizedEnergies(a, UniformCommEnergies(a, c))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		10 * (120.1 + c),
		9 * (73.34 + c),
		11 * (176.55 + c),
	}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-6 {
			t.Errorf("H[%d] = %g, want %g", i+1, h[i], want[i])
		}
	}
}

func TestNormalizedEnergiesValidation(t *testing.T) {
	a := app.AES128()
	if _, err := NormalizedEnergies(a, []float64{1, 2}); err == nil {
		t.Error("wrong-length comm energy slice accepted")
	}
	if _, err := NormalizedEnergies(a, []float64{1, -2, 3}); err == nil {
		t.Error("negative comm energy accepted")
	}
	if _, err := NormalizedEnergies(a, []float64{1, math.NaN(), 3}); err == nil {
		t.Error("NaN comm energy accepted")
	}
}

// TestUpperBoundReproducesTable2 checks the J* column of Table 2 of the
// paper for all five mesh sizes.
func TestUpperBoundReproducesTable2(t *testing.T) {
	a := app.AES128()
	line := energy.PaperTransmissionLine()
	cases := []struct {
		mesh   int
		wantJ  float64
		tolPct float64
	}{
		{4, 131.42, 0.1},
		{5, 205.25, 0.1},
		{6, 295.70, 0.1},
		{7, 402.48, 0.1},
		{8, 525.69, 0.1},
	}
	for _, tc := range cases {
		k := tc.mesh * tc.mesh
		b, err := MeshUpperBound(a, line, 1.0, battery.DefaultNominalPJ, k)
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.mesh, tc.mesh, err)
		}
		diffPct := math.Abs(b.Jobs-tc.wantJ) / tc.wantJ * 100
		if diffPct > tc.tolPct {
			t.Errorf("%dx%d: J* = %.2f, paper reports %.2f (%.2f%% off)",
				tc.mesh, tc.mesh, b.Jobs, tc.wantJ, diffPct)
		}
	}
}

func TestUpperBoundOptimalDuplicates(t *testing.T) {
	a := app.AES128()
	line := energy.PaperTransmissionLine()
	b, err := MeshUpperBound(a, line, 1.0, battery.DefaultNominalPJ, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicates must sum to K and be ordered like the normalized energies:
	// module 3 (highest H) gets the most nodes, module 2 the fewest.
	var sum float64
	for _, d := range b.OptimalDuplicates {
		sum += d
	}
	if math.Abs(sum-16) > 1e-9 {
		t.Errorf("optimal duplicates sum to %g, want 16", sum)
	}
	if !(b.OptimalDuplicates[2] > b.OptimalDuplicates[0] && b.OptimalDuplicates[0] > b.OptimalDuplicates[1]) {
		t.Errorf("duplicates %v do not follow H ordering (module 3 > 1 > 2)", b.OptimalDuplicates)
	}
	// The paper's design rule: n_i* proportional to H_i.
	for i := range b.OptimalDuplicates {
		wantRatio := b.NormalizedEnergies[i] / b.TotalNormalizedEnergy()
		gotRatio := b.OptimalDuplicates[i] / 16
		if math.Abs(wantRatio-gotRatio) > 1e-12 {
			t.Errorf("module %d duplicate share %g, want %g", i+1, gotRatio, wantRatio)
		}
	}
}

func TestUpperBoundValidation(t *testing.T) {
	a := app.AES128()
	c := UniformCommEnergies(a, 100)
	if _, err := UpperBound(a, 0, 16, c); err == nil {
		t.Error("zero battery budget accepted")
	}
	if _, err := UpperBound(a, 1000, 0, c); err == nil {
		t.Error("zero node budget accepted")
	}
	if _, err := UpperBound(a, 1000, 16, []float64{1}); err == nil {
		t.Error("wrong-length comm energies accepted")
	}
}

func TestBoundHelpers(t *testing.T) {
	a := app.AES128()
	b, err := MeshUpperBound(a, energy.PaperTransmissionLine(), 1.0, battery.DefaultNominalPJ, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b.CompletedJobsLimit() != 131 {
		t.Errorf("CompletedJobsLimit = %d, want 131", b.CompletedJobsLimit())
	}
	if got := b.Achieved(62.8); math.Abs(got-0.478) > 0.002 {
		t.Errorf("Achieved(62.8) = %.3f, want ~0.478 as in Table 2", got)
	}
	var zero Bound
	if zero.Achieved(10) != 0 {
		t.Error("Achieved on zero bound should be 0")
	}
	if b.BatteryBudgetPJ != battery.DefaultNominalPJ || b.NodeBudget != 16 {
		t.Error("bound did not echo its inputs")
	}
}

// TestUpperBoundScalingProperties verifies the structural properties of Eq 2:
// J* is linear in both B and K and decreases when any module gets more
// expensive.
func TestUpperBoundScalingProperties(t *testing.T) {
	a := app.AES128()
	line := energy.PaperTransmissionLine()
	prop := func(bRaw, kRaw uint16) bool {
		B := float64(bRaw%50000) + 1000
		K := int(kRaw%96) + 4
		b1, err := MeshUpperBound(a, line, 1.0, B, K)
		if err != nil {
			return false
		}
		b2, err := MeshUpperBound(a, line, 1.0, 2*B, K)
		if err != nil {
			return false
		}
		b3, err := MeshUpperBound(a, line, 1.0, B, 2*K)
		if err != nil {
			return false
		}
		// Longer hops -> more communication energy -> fewer jobs.
		b4, err := MeshUpperBound(a, line, 10.0, B, K)
		if err != nil {
			return false
		}
		return math.Abs(b2.Jobs-2*b1.Jobs) < 1e-6 &&
			math.Abs(b3.Jobs-2*b1.Jobs) < 1e-6 &&
			b4.Jobs < b1.Jobs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBoundDominatesAnyIntegerMappingSplit(t *testing.T) {
	// For any integer mapping (n_1, n_2, n_3) summing to K, the jobs
	// achievable even with perfect balance within each module class,
	// min_i(n_i * B / H_i), must not exceed J*. This is the inequality chain
	// of Eq 1.
	a := app.AES128()
	line := energy.PaperTransmissionLine()
	c := CommunicationEnergyPerOp(a, line, 1.0)
	h, err := NormalizedEnergies(a, UniformCommEnergies(a, c))
	if err != nil {
		t.Fatal(err)
	}
	const B = battery.DefaultNominalPJ
	const K = 16
	bound, err := UpperBound(a, B, K, UniformCommEnergies(a, c))
	if err != nil {
		t.Fatal(err)
	}
	for n1 := 1; n1 <= K-2; n1++ {
		for n2 := 1; n2 <= K-n1-1; n2++ {
			n3 := K - n1 - n2
			achievable := math.Min(
				float64(n1)*B/h[0],
				math.Min(float64(n2)*B/h[1], float64(n3)*B/h[2]),
			)
			if achievable > bound.Jobs+1e-9 {
				t.Fatalf("integer mapping (%d,%d,%d) achieves %.2f > J* = %.2f",
					n1, n2, n3, achievable, bound.Jobs)
			}
		}
	}
}
