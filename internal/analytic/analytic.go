// Package analytic implements the theoretical results of Sec 4 of the paper:
// the normalized energy consumption H_i of each module, Theorem 1's upper
// bound J* on the achievable number of completed jobs over all routing
// strategies, and the optimal number of module duplicates n_i*.
//
// The bound assumes the ideal routing strategy RS*: a topology matched to the
// application data flow (every communication act travels the shortest
// possible physical distance), an optimal real-valued mapping, free
// continuation of interrupted operations and zero control overhead. Any
// simulated routing strategy must therefore complete at most J* jobs, a
// property the integration tests verify.
package analytic

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/app"
	"repro/internal/energy"
)

// Errors returned by bound computations.
var (
	ErrBadBudget     = errors.New("analytic: battery and node budgets must be positive")
	ErrBadCommEnergy = errors.New("analytic: communication energies must be non-negative, one per module")
)

// CommunicationEnergyPerOp returns c_i, the energy per act of communication
// originated by a module, under the ideal assumption that every packet
// travels a single hop of the given physical length. On the homogeneous
// meshes of the paper the value is the same for every module: packet size
// times the per-bit energy of one inter-node link.
func CommunicationEnergyPerOp(a *app.Application, line *energy.TransmissionLine, hopLengthCM float64) float64 {
	return line.PacketEnergyPJ(hopLengthCM, a.PacketBits)
}

// UniformCommEnergies returns a per-module slice filled with the same
// communication energy, for the common case of a homogeneous mesh.
func UniformCommEnergies(a *app.Application, perOpPJ float64) []float64 {
	out := make([]float64, a.NumModules())
	for i := range out {
		out[i] = perOpPJ
	}
	return out
}

// NormalizedEnergies returns H_i = f_i * (E_i + c_i) for every module
// (Table 1 and Sec 4). commPerOpPJ must hold one non-negative entry per
// module.
func NormalizedEnergies(a *app.Application, commPerOpPJ []float64) ([]float64, error) {
	if len(commPerOpPJ) != a.NumModules() {
		return nil, fmt.Errorf("%w: got %d entries for %d modules", ErrBadCommEnergy, len(commPerOpPJ), a.NumModules())
	}
	out := make([]float64, a.NumModules())
	for i, m := range a.Modules {
		c := commPerOpPJ[i]
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("%w: module %d has c = %g", ErrBadCommEnergy, m.ID, c)
		}
		out[i] = float64(m.OpsPerJob) * (m.EnergyPerOpPJ + c)
	}
	return out, nil
}

// Bound is the result of evaluating Theorem 1.
type Bound struct {
	// Jobs is J*, the maximum achievable number of completed jobs (Eq 2).
	// It is a real number; the integer number of completable jobs is
	// floor(Jobs).
	Jobs float64
	// OptimalDuplicates holds n_i* for each module (Eq 3). The entries are
	// real numbers summing to the node budget K.
	OptimalDuplicates []float64
	// NormalizedEnergies holds H_i for each module.
	NormalizedEnergies []float64
	// BatteryBudgetPJ and NodeBudget echo the inputs B and K.
	BatteryBudgetPJ float64
	NodeBudget      int
}

// UpperBound evaluates Theorem 1 for the given application, battery budget B
// (initial capacity of each battery, in pJ), node budget K and per-module
// communication energies c_i.
func UpperBound(a *app.Application, batteryBudgetPJ float64, nodeBudget int, commPerOpPJ []float64) (Bound, error) {
	if batteryBudgetPJ <= 0 || nodeBudget <= 0 {
		return Bound{}, fmt.Errorf("%w: B = %g, K = %d", ErrBadBudget, batteryBudgetPJ, nodeBudget)
	}
	h, err := NormalizedEnergies(a, commPerOpPJ)
	if err != nil {
		return Bound{}, err
	}
	var sum float64
	for _, hi := range h {
		sum += hi
	}
	if sum <= 0 {
		return Bound{}, fmt.Errorf("analytic: total normalized energy is not positive (%g)", sum)
	}
	dups := make([]float64, len(h))
	for i, hi := range h {
		dups[i] = hi / sum * float64(nodeBudget)
	}
	return Bound{
		Jobs:               batteryBudgetPJ * float64(nodeBudget) / sum,
		OptimalDuplicates:  dups,
		NormalizedEnergies: h,
		BatteryBudgetPJ:    batteryBudgetPJ,
		NodeBudget:         nodeBudget,
	}, nil
}

// MeshUpperBound is a convenience wrapper that evaluates Theorem 1 for a
// homogeneous mesh: every communication act is assumed to cross one link of
// hopLengthCM centimetres (the ideal strategy's minimum), which is how the
// paper's Table 2 column J* is obtained.
func MeshUpperBound(a *app.Application, line *energy.TransmissionLine, hopLengthCM float64, batteryBudgetPJ float64, nodeBudget int) (Bound, error) {
	c := CommunicationEnergyPerOp(a, line, hopLengthCM)
	return UpperBound(a, batteryBudgetPJ, nodeBudget, UniformCommEnergies(a, c))
}

// CompletedJobsLimit returns the integer number of whole jobs permitted by
// the bound.
func (b Bound) CompletedJobsLimit() int { return int(math.Floor(b.Jobs)) }

// TotalNormalizedEnergy returns sum_i H_i, the denominator of Eq 2, i.e. the
// minimum total energy required to complete one job under any routing
// strategy.
func (b Bound) TotalNormalizedEnergy() float64 {
	var sum float64
	for _, h := range b.NormalizedEnergies {
		sum += h
	}
	return sum
}

// Achieved expresses a simulated job count as a fraction of the bound, the
// metric reported in the last column of Table 2.
func (b Bound) Achieved(simulatedJobs float64) float64 {
	if b.Jobs == 0 {
		return 0
	}
	return simulatedJobs / b.Jobs
}
