// Package routing implements the two online routing algorithms compared in
// the paper — the energy-aware routing algorithm (EAR) and its
// shortest-distance counterpart (SDR) — together with the three phases both
// share (Sec 6):
//
//	Phase 1: build the directed edge-weight matrix. SDR weighs an edge by its
//	         physical length only; EAR additionally multiplies the length by
//	         an exponential function of the destination node's reported
//	         battery level, steering traffic away from depleted nodes.
//	Phase 2: run an all-pairs shortest-path computation (a Floyd–Warshall
//	         variant that also produces the successor matrix, Fig 5).
//	Phase 3: choose, for every node and every module, the destination
//	         duplicate with the smallest distance while avoiding next hops
//	         that are currently reported deadlocked (Fig 6), producing the
//	         routing tables downloaded to the nodes.
//
// The package is purely computational: it consumes a snapshot of the system
// state (alive flags, quantised battery levels, deadlock flags) as collected
// by the TDMA control mechanism and produces routing tables. Energy
// accounting and time live in the sim package.
//
// Because the controller re-runs all three phases whenever the reported
// state changes — nearly every TDMA frame under EAR — the package is built
// around dense, index-addressed storage (flat row-major matrices, slices
// indexed by NodeID/ModuleID) and a reusable Workspace so that steady-state
// recomputation performs no heap allocations. See DESIGN.md, "Performance
// architecture".
package routing

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// Inf is the weight of a non-existent edge.
var Inf = math.Inf(1)

// NodeStatus is the per-node information reported to the central controller
// during the node's TDMA upload slot.
type NodeStatus struct {
	// Alive is false once the node's battery is depleted; dead nodes can
	// neither compute nor relay and are excluded from routing.
	Alive bool
	// BatteryLevel is the quantised remaining-capacity level NB(j), in
	// 0..Levels-1 (higher means more charge).
	BatteryLevel int
	// Deadlocked reports that a job has been stuck at this node longer than
	// the deadlock threshold; phase 3 will steer the node away from its
	// current next hop.
	Deadlocked bool
}

// SystemState is the snapshot the controller runs the routing algorithm on.
type SystemState struct {
	// Graph is the physical topology.
	Graph *topology.Graph
	// Status holds every node's last reported status, indexed by NodeID
	// (node IDs are dense and start at 0). Nodes beyond the end of the slice
	// are treated as dead.
	Status []NodeStatus
	// Levels is the number of quantisation levels used for BatteryLevel.
	Levels int
	// TopologyEpoch counts runtime mutations of Graph (links removed by
	// fault injection, links healed after a transient fault). The controller
	// treats an epoch change like any other reported-state change and
	// recomputes; the zero value — a topology that never changes mid-run —
	// reproduces the pre-fault-injection behaviour exactly.
	TopologyEpoch uint64
}

// StatusOf returns node id's reported status; out-of-range ids report the
// zero status (dead).
func (s *SystemState) StatusOf(id topology.NodeID) NodeStatus {
	if int(id) < 0 || int(id) >= len(s.Status) {
		return NodeStatus{}
	}
	return s.Status[id]
}

// Alive reports whether node id is alive in this snapshot.
func (s *SystemState) Alive(id topology.NodeID) bool { return s.StatusOf(id).Alive }

// Equal reports whether two snapshots would lead the controller to the same
// routing decision; the controller only re-runs the routing algorithm when
// the reported information changed (Sec 6).
func (s *SystemState) Equal(o *SystemState) bool {
	if o == nil || s.Levels != o.Levels || s.TopologyEpoch != o.TopologyEpoch || len(s.Status) != len(o.Status) {
		return false
	}
	for i, st := range s.Status {
		if o.Status[i] != st {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the snapshot.
func (s *SystemState) Clone() *SystemState {
	c := &SystemState{Graph: s.Graph, Levels: s.Levels, TopologyEpoch: s.TopologyEpoch, Status: make([]NodeStatus, len(s.Status))}
	copy(c.Status, s.Status)
	return c
}

// Matrix is a dense KxK weight or distance matrix stored as a flat row-major
// backing array for cache locality; element (i, j) lives at cells[i*n+j].
type Matrix struct {
	n     int
	cells []float64
}

// NewMatrix allocates a KxK matrix filled with Inf off-diagonal and 0 on the
// diagonal.
func NewMatrix(k int) Matrix {
	var m Matrix
	m.Reset(k)
	return m
}

// Reset re-initialises the matrix to KxK with Inf off-diagonal and 0 on the
// diagonal, reusing the backing array when its capacity allows.
func (m *Matrix) Reset(k int) {
	m.n = k
	need := k * k
	if cap(m.cells) < need {
		m.cells = make([]float64, need)
	}
	m.cells = m.cells[:need]
	for i := range m.cells {
		m.cells[i] = Inf
	}
	for i := 0; i < k; i++ {
		m.cells[i*k+i] = 0
	}
}

// Dim returns the matrix dimension.
func (m *Matrix) Dim() int { return m.n }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.cells[i*m.n+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.cells[i*m.n+j] = v }

// Row returns row i as a slice aliasing the backing array.
func (m *Matrix) Row(i int) []float64 { return m.cells[i*m.n : (i+1)*m.n] }

// Algorithm builds phase-1 edge weights from a system snapshot. SDR and EAR
// differ only in this phase; phases 2 and 3 are shared.
type Algorithm interface {
	// Name identifies the algorithm in experiment output ("SDR" or "EAR").
	Name() string
	// WeightsInto fills w with the directed edge-weight matrix W for the
	// snapshot, reusing w's backing storage.
	WeightsInto(w *Matrix, state *SystemState)
	// NeedsBatteryInfo reports whether the algorithm's weights depend on the
	// reported battery levels. The controller re-runs the routing algorithm
	// only when information it actually uses has changed.
	NeedsBatteryInfo() bool
}

// Weights returns a freshly allocated phase-1 weight matrix for the snapshot.
// Hot paths should use Algorithm.WeightsInto with a reused matrix instead.
func Weights(alg Algorithm, state *SystemState) Matrix {
	var w Matrix
	alg.WeightsInto(&w, state)
	return w
}

// SDR is the shortest-distance routing algorithm: the weight of an existing
// edge is the physical length of the interconnect.
type SDR struct{}

// Name implements Algorithm.
func (SDR) Name() string { return "SDR" }

// NeedsBatteryInfo implements Algorithm: SDR ignores battery levels.
func (SDR) NeedsBatteryInfo() bool { return false }

// WeightsInto implements Algorithm.
func (SDR) WeightsInto(w *Matrix, state *SystemState) {
	w.Reset(state.Graph.NodeCount())
	for _, l := range state.Graph.Links() {
		if !state.Alive(l.From) || !state.Alive(l.To) {
			continue
		}
		w.Set(int(l.From), int(l.To), l.LengthCM)
	}
}

// EARParams tunes the energy-aware weighting function
// f(n) = Q^(Levels - 1 - n), which multiplies the physical length of an edge
// by an exponentially growing penalty as the destination node's battery
// level n decreases.
type EARParams struct {
	// Q is the base of the exponential penalty (Q > 0; the paper uses a
	// constant Q to "strengthen the impact of the battery information").
	Q float64
	// Levels is the number of battery quantisation levels N_B.
	Levels int
}

// DefaultEARParams returns the calibration used for the paper reproduction:
// eight battery levels and Q = 2.
func DefaultEARParams() EARParams { return EARParams{Q: 2, Levels: 8} }

// Validate checks the parameters.
func (p EARParams) Validate() error {
	if p.Q <= 0 {
		return fmt.Errorf("routing: EAR Q must be positive, got %g", p.Q)
	}
	if p.Levels < 2 {
		return fmt.Errorf("routing: EAR needs at least 2 battery levels, got %d", p.Levels)
	}
	return nil
}

// Penalty returns f(level) for a battery level in 0..Levels-1.
func (p EARParams) Penalty(level int) float64 {
	if level < 0 {
		level = 0
	}
	if level > p.Levels-1 {
		level = p.Levels - 1
	}
	return math.Pow(p.Q, float64(p.Levels-1-level))
}

// EAR is the energy-aware routing algorithm.
type EAR struct {
	Params EARParams
}

// NewEAR returns an EAR instance with the default parameters.
func NewEAR() EAR { return EAR{Params: DefaultEARParams()} }

// Name implements Algorithm.
func (EAR) Name() string { return "EAR" }

// NeedsBatteryInfo implements Algorithm: EAR weights edges by the reported
// battery level of the receiving node.
func (EAR) NeedsBatteryInfo() bool { return true }

// WeightsInto implements Algorithm.
func (e EAR) WeightsInto(w *Matrix, state *SystemState) {
	params := e.Params
	if params.Levels == 0 {
		params = DefaultEARParams()
	}
	w.Reset(state.Graph.NodeCount())
	for _, l := range state.Graph.Links() {
		if !state.Alive(l.From) || !state.Alive(l.To) {
			continue
		}
		level := state.StatusOf(l.To).BatteryLevel
		w.Set(int(l.From), int(l.To), params.Penalty(level)*l.LengthCM)
	}
}
