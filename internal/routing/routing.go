// Package routing implements the two online routing algorithms compared in
// the paper — the energy-aware routing algorithm (EAR) and its
// shortest-distance counterpart (SDR) — together with the three phases both
// share (Sec 6):
//
//	Phase 1: build the directed edge-weight matrix. SDR weighs an edge by its
//	         physical length only; EAR additionally multiplies the length by
//	         an exponential function of the destination node's reported
//	         battery level, steering traffic away from depleted nodes.
//	Phase 2: run an all-pairs shortest-path computation (a Floyd–Warshall
//	         variant that also produces the successor matrix, Fig 5).
//	Phase 3: choose, for every node and every module, the destination
//	         duplicate with the smallest distance while avoiding next hops
//	         that are currently reported deadlocked (Fig 6), producing the
//	         routing tables downloaded to the nodes.
//
// The package is purely computational: it consumes a snapshot of the system
// state (alive flags, quantised battery levels, deadlock flags) as collected
// by the TDMA control mechanism and produces routing tables. Energy
// accounting and time live in the sim package.
package routing

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// Inf is the weight of a non-existent edge.
var Inf = math.Inf(1)

// NodeStatus is the per-node information reported to the central controller
// during the node's TDMA upload slot.
type NodeStatus struct {
	// Alive is false once the node's battery is depleted; dead nodes can
	// neither compute nor relay and are excluded from routing.
	Alive bool
	// BatteryLevel is the quantised remaining-capacity level NB(j), in
	// 0..Levels-1 (higher means more charge).
	BatteryLevel int
	// Deadlocked reports that a job has been stuck at this node longer than
	// the deadlock threshold; phase 3 will steer the node away from its
	// current next hop.
	Deadlocked bool
}

// SystemState is the snapshot the controller runs the routing algorithm on.
type SystemState struct {
	// Graph is the physical topology.
	Graph *topology.Graph
	// Status maps every node to its last reported status. Nodes missing from
	// the map are treated as dead.
	Status map[topology.NodeID]NodeStatus
	// Levels is the number of quantisation levels used for BatteryLevel.
	Levels int
}

// Alive reports whether node id is alive in this snapshot.
func (s *SystemState) Alive(id topology.NodeID) bool { return s.Status[id].Alive }

// Equal reports whether two snapshots would lead the controller to the same
// routing decision; the controller only re-runs the routing algorithm when
// the reported information changed (Sec 6).
func (s *SystemState) Equal(o *SystemState) bool {
	if o == nil || s.Levels != o.Levels || len(s.Status) != len(o.Status) {
		return false
	}
	for id, st := range s.Status {
		if o.Status[id] != st {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the snapshot.
func (s *SystemState) Clone() *SystemState {
	c := &SystemState{Graph: s.Graph, Levels: s.Levels, Status: make(map[topology.NodeID]NodeStatus, len(s.Status))}
	for id, st := range s.Status {
		c.Status[id] = st
	}
	return c
}

// Matrix is a dense KxK weight or distance matrix indexed by NodeID.
type Matrix [][]float64

// NewMatrix allocates a KxK matrix filled with Inf off-diagonal and 0 on the
// diagonal.
func NewMatrix(k int) Matrix {
	m := make(Matrix, k)
	for i := range m {
		m[i] = make([]float64, k)
		for j := range m[i] {
			if i != j {
				m[i][j] = Inf
			}
		}
	}
	return m
}

// Dim returns the matrix dimension.
func (m Matrix) Dim() int { return len(m) }

// Algorithm builds phase-1 edge weights from a system snapshot. SDR and EAR
// differ only in this phase; phases 2 and 3 are shared.
type Algorithm interface {
	// Name identifies the algorithm in experiment output ("SDR" or "EAR").
	Name() string
	// Weights returns the directed edge-weight matrix W for the snapshot.
	Weights(state *SystemState) Matrix
	// NeedsBatteryInfo reports whether the algorithm's weights depend on the
	// reported battery levels. The controller re-runs the routing algorithm
	// only when information it actually uses has changed.
	NeedsBatteryInfo() bool
}

// SDR is the shortest-distance routing algorithm: the weight of an existing
// edge is the physical length of the interconnect.
type SDR struct{}

// Name implements Algorithm.
func (SDR) Name() string { return "SDR" }

// NeedsBatteryInfo implements Algorithm: SDR ignores battery levels.
func (SDR) NeedsBatteryInfo() bool { return false }

// Weights implements Algorithm.
func (SDR) Weights(state *SystemState) Matrix {
	k := state.Graph.NodeCount()
	w := NewMatrix(k)
	for _, l := range state.Graph.Links() {
		if !state.Alive(l.From) || !state.Alive(l.To) {
			continue
		}
		w[l.From][l.To] = l.LengthCM
	}
	return w
}

// EARParams tunes the energy-aware weighting function
// f(n) = Q^(Levels - 1 - n), which multiplies the physical length of an edge
// by an exponentially growing penalty as the destination node's battery
// level n decreases.
type EARParams struct {
	// Q is the base of the exponential penalty (Q > 0; the paper uses a
	// constant Q to "strengthen the impact of the battery information").
	Q float64
	// Levels is the number of battery quantisation levels N_B.
	Levels int
}

// DefaultEARParams returns the calibration used for the paper reproduction:
// eight battery levels and Q = 2.
func DefaultEARParams() EARParams { return EARParams{Q: 2, Levels: 8} }

// Validate checks the parameters.
func (p EARParams) Validate() error {
	if p.Q <= 0 {
		return fmt.Errorf("routing: EAR Q must be positive, got %g", p.Q)
	}
	if p.Levels < 2 {
		return fmt.Errorf("routing: EAR needs at least 2 battery levels, got %d", p.Levels)
	}
	return nil
}

// Penalty returns f(level) for a battery level in 0..Levels-1.
func (p EARParams) Penalty(level int) float64 {
	if level < 0 {
		level = 0
	}
	if level > p.Levels-1 {
		level = p.Levels - 1
	}
	return math.Pow(p.Q, float64(p.Levels-1-level))
}

// EAR is the energy-aware routing algorithm.
type EAR struct {
	Params EARParams
}

// NewEAR returns an EAR instance with the default parameters.
func NewEAR() EAR { return EAR{Params: DefaultEARParams()} }

// Name implements Algorithm.
func (EAR) Name() string { return "EAR" }

// NeedsBatteryInfo implements Algorithm: EAR weights edges by the reported
// battery level of the receiving node.
func (EAR) NeedsBatteryInfo() bool { return true }

// Weights implements Algorithm.
func (e EAR) Weights(state *SystemState) Matrix {
	params := e.Params
	if params.Levels == 0 {
		params = DefaultEARParams()
	}
	k := state.Graph.NodeCount()
	w := NewMatrix(k)
	for _, l := range state.Graph.Links() {
		if !state.Alive(l.From) || !state.Alive(l.To) {
			continue
		}
		level := state.Status[l.To].BatteryLevel
		w[l.From][l.To] = params.Penalty(level) * l.LengthCM
	}
	return w
}
