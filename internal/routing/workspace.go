package routing

import (
	"math"

	"repro/internal/app"
	"repro/internal/topology"
)

// Plan is the complete output of one controller routing computation: the
// phase-2 shortest paths and the phase-3 routing tables, tagged with the
// algorithm that produced them.
type Plan struct {
	Algorithm string
	Paths     *ShortestPaths
	Tables    *Tables
}

// Fingerprint returns a deterministic FNV-1a hash over the plan's complete
// routing state: every distance, every successor, and every phase-3 table
// entry. Two plans fingerprint equal iff their matrices and tables are
// byte-identical, so the incremental-vs-full equivalence checks (tests, the
// scaling experiment, the CI smoke) can compare whole plans in O(K²)
// without allocating.
func (p *Plan) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	sp := p.Paths
	mix(uint64(sp.n))
	for _, d := range sp.dist.cells {
		mix(math.Float64bits(d))
	}
	for _, s := range sp.succ {
		mix(uint64(int64(s)))
	}
	ts := p.Tables
	mix(uint64(ts.nodes))
	mix(uint64(ts.modules))
	for _, b := range ts.has {
		mix(boolBit(b))
	}
	for _, b := range ts.known {
		mix(boolBit(b))
	}
	for _, r := range ts.routes {
		mix(uint64(int64(r.Dest)))
		mix(uint64(int64(r.NextHop)))
		mix(math.Float64bits(r.Distance))
	}
	for _, n := range ts.nextHop {
		mix(uint64(int64(n)))
	}
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Workspace owns every buffer the three routing phases need — the phase-1
// weight matrix, the phase-2 distance/successor storage, the dense duplicate
// lists and two phase-3 table buffers — so that repeated ComputeInto calls
// reuse them and steady-state recomputation performs no heap allocations.
//
// The two table buffers are ping-ponged: each ComputeInto writes into the
// buffer that is not the caller's prev, so the controller can keep the
// previous frame's tables (needed for deadlock avoidance, and by nodes still
// forwarding on them) while the next generation is being built. Lifetimes: a
// returned Plan and its Paths are recomputed in place by the NEXT ComputeInto
// on the same workspace; only the Plan's Tables live on — for exactly one
// more call, provided they are passed back as prev (a Tables not handed back
// as prev may be overwritten immediately).
//
// A Workspace is not safe for concurrent use; give each goroutine its own.
type Workspace struct {
	w     Matrix
	sp    ShortestPaths
	dests destSet
	tbl   [2]Tables
	plan  Plan
}

// NewWorkspace returns an empty workspace. Buffers are sized lazily on the
// first ComputeInto and reused afterwards.
func NewWorkspace() *Workspace { return &Workspace{} }

// ComputeInto runs all three phases of the given algorithm on a system
// snapshot, reusing the workspace's buffers. destinations lists the
// duplicates of every module (S_i); prev is the previously downloaded tables
// (nil on the first computation) consulted for deadlock avoidance. When prev
// came from an earlier ComputeInto on the same workspace the new tables are
// written into the other internal buffer, so prev stays intact.
func ComputeInto(ws *Workspace, alg Algorithm, state *SystemState, destinations map[app.ModuleID][]topology.NodeID, prev *Tables) *Plan {
	alg.WeightsInto(&ws.w, state)
	ws.sp.ComputeFrom(&ws.w)
	ws.dests.fill(destinations)
	out := &ws.tbl[0]
	if prev == out {
		out = &ws.tbl[1]
	}
	buildTablesInto(out, state, &ws.sp, &ws.dests, prev)
	ws.plan = Plan{Algorithm: alg.Name(), Paths: &ws.sp, Tables: out}
	return &ws.plan
}

// Compute runs all three phases of the given algorithm on a system snapshot
// using a fresh workspace, which the returned plan takes sole ownership of.
// Controllers that recompute repeatedly should hold a Workspace and call
// ComputeInto instead.
func Compute(alg Algorithm, state *SystemState, destinations map[app.ModuleID][]topology.NodeID, prev *Tables) *Plan {
	return ComputeInto(NewWorkspace(), alg, state, destinations, prev)
}
