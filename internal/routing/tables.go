package routing

import (
	"repro/internal/app"
	"repro/internal/topology"
)

// Route is the phase-3 decision for one (source node, module) pair: which
// duplicate of the module the next operation should be sent to, the first
// hop towards it, and the (weighted) distance of the chosen path.
type Route struct {
	Dest     topology.NodeID
	NextHop  topology.NodeID
	Distance float64
}

// Valid reports whether the route points at a reachable destination.
func (r Route) Valid() bool { return r.Dest != topology.Invalid && r.NextHop != topology.Invalid }

// Table is the routing information downloaded to one node: the chosen
// destination per module plus the successor towards every reachable node,
// which the node uses to relay packets that are merely passing through.
type Table struct {
	ByModule  map[app.ModuleID]Route
	NextHopTo map[topology.NodeID]topology.NodeID
}

// RouteTo returns the route for the given module, if any.
func (t Table) RouteTo(id app.ModuleID) (Route, bool) {
	r, ok := t.ByModule[id]
	return r, ok
}

// Tables holds the routing tables of every alive node.
type Tables map[topology.NodeID]Table

// NextHop returns the next hop from node `from` towards destination `dest`,
// or topology.Invalid if unknown.
func (ts Tables) NextHop(from, dest topology.NodeID) topology.NodeID {
	t, ok := ts[from]
	if !ok {
		return topology.Invalid
	}
	if from == dest {
		return dest
	}
	next, ok := t.NextHopTo[dest]
	if !ok {
		return topology.Invalid
	}
	return next
}

// BuildTables runs phase 3 (Fig 6): for every alive node and every module it
// selects the duplicate with the smallest phase-2 distance, skipping — when
// the node currently reports a deadlock — the next hop recorded in its
// previous routing table so the stuck job is redirected along an unlocked
// path. destinations lists the duplicates S_i of every module; dead
// duplicates are ignored. prev may be nil on the first invocation.
func BuildTables(state *SystemState, sp *ShortestPaths, destinations map[app.ModuleID][]topology.NodeID, prev Tables) Tables {
	k := state.Graph.NodeCount()
	tables := make(Tables, k)
	for n := 0; n < k; n++ {
		node := topology.NodeID(n)
		if !state.Alive(node) {
			continue
		}
		table := Table{
			ByModule:  make(map[app.ModuleID]Route, len(destinations)),
			NextHopTo: make(map[topology.NodeID]topology.NodeID, k),
		}
		for d := 0; d < k; d++ {
			dest := topology.NodeID(d)
			if dest == node || !state.Alive(dest) {
				continue
			}
			if sp.Reachable(node, dest) {
				table.NextHopTo[dest] = sp.Succ[node][dest]
			}
		}
		deadlocked := state.Status[node].Deadlocked
		for moduleID, dups := range destinations {
			var blockedHop = topology.Invalid
			if deadlocked && prev != nil {
				if prevRoute, ok := prev[node].ByModule[moduleID]; ok {
					blockedHop = prevRoute.NextHop
				}
			}
			best := Route{Dest: topology.Invalid, NextHop: topology.Invalid, Distance: Inf}
			fallback := best
			for _, dup := range dups {
				if !state.Alive(dup) || !sp.Reachable(node, dup) {
					continue
				}
				hop := sp.Succ[node][dup]
				candidate := Route{Dest: dup, NextHop: hop, Distance: sp.Dist[node][dup]}
				if better(candidate, fallback) {
					fallback = candidate
				}
				if blockedHop != topology.Invalid && hop == blockedHop && dup != node {
					continue
				}
				if better(candidate, best) {
					best = candidate
				}
			}
			// If every alternative went through the blocked port, fall back to
			// the unconstrained optimum rather than leaving the module
			// unreachable (the deadlock will be reported again next frame).
			if !best.Valid() {
				best = fallback
			}
			table.ByModule[moduleID] = best
		}
		tables[node] = table
	}
	return tables
}

// better reports whether candidate is preferable to current: strictly smaller
// distance, with ties broken towards the smaller destination ID for
// determinism.
func better(candidate, current Route) bool {
	if !candidate.Valid() {
		return false
	}
	if !current.Valid() {
		return true
	}
	if candidate.Distance != current.Distance {
		return candidate.Distance < current.Distance
	}
	return candidate.Dest < current.Dest
}

// Plan is the complete output of one controller routing computation: the
// phase-2 shortest paths and the phase-3 routing tables, tagged with the
// algorithm that produced them.
type Plan struct {
	Algorithm string
	Paths     *ShortestPaths
	Tables    Tables
}

// Compute runs all three phases of the given algorithm on a system snapshot.
// destinations lists the duplicates of every module (S_i).
func Compute(alg Algorithm, state *SystemState, destinations map[app.ModuleID][]topology.NodeID, prev Tables) *Plan {
	w := alg.Weights(state)
	sp := AllPairs(w)
	tables := BuildTables(state, sp, destinations, prev)
	return &Plan{Algorithm: alg.Name(), Paths: sp, Tables: tables}
}
