package routing

import (
	"repro/internal/app"
	"repro/internal/topology"
)

// Route is the phase-3 decision for one (source node, module) pair: which
// duplicate of the module the next operation should be sent to, the first
// hop towards it, and the (weighted) distance of the chosen path.
type Route struct {
	Dest     topology.NodeID
	NextHop  topology.NodeID
	Distance float64
}

// Valid reports whether the route points at a reachable destination.
func (r Route) Valid() bool { return r.Dest != topology.Invalid && r.NextHop != topology.Invalid }

// invalidRoute is the sentinel stored for (node, module) pairs phase 3 could
// not route.
var invalidRoute = Route{Dest: topology.Invalid, NextHop: topology.Invalid, Distance: Inf}

// Tables holds the routing tables of every alive node as dense slice-backed
// storage: per-(node, module) routes and a per-(node, destination) successor
// matrix, both flat and index-addressed, so the controller can rebuild them
// every frame without allocating.
type Tables struct {
	nodes   int
	modules int // exclusive upper bound on ModuleID (IDs are 1-based)

	has     []bool            // per node: the node was alive and got a table
	known   []bool            // per module: the module had a duplicate list
	routes  []Route           // nodes*modules, row-major by node
	nextHop []topology.NodeID // nodes*nodes, row-major by source node
}

// reset re-dimensions the tables and clears them, reusing backing storage.
func (ts *Tables) reset(nodes, modules int) {
	ts.nodes, ts.modules = nodes, modules
	ts.has = resizeBools(ts.has, nodes)
	ts.known = resizeBools(ts.known, modules)
	if cap(ts.routes) < nodes*modules {
		ts.routes = make([]Route, nodes*modules)
	}
	ts.routes = ts.routes[:nodes*modules]
	for i := range ts.routes {
		ts.routes[i] = invalidRoute
	}
	if cap(ts.nextHop) < nodes*nodes {
		ts.nextHop = make([]topology.NodeID, nodes*nodes)
	}
	ts.nextHop = ts.nextHop[:nodes*nodes]
	for i := range ts.nextHop {
		ts.nextHop[i] = topology.Invalid
	}
}

// resizeBools returns a cleared bool slice of length n, reusing s's capacity.
func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// Has reports whether node received a routing table (i.e. was alive when the
// tables were built).
func (ts *Tables) Has(node topology.NodeID) bool {
	return ts != nil && int(node) >= 0 && int(node) < ts.nodes && ts.has[node]
}

// Len returns the number of nodes that received a routing table.
func (ts *Tables) Len() int {
	if ts == nil {
		return 0
	}
	n := 0
	for _, h := range ts.has {
		if h {
			n++
		}
	}
	return n
}

// RouteTo returns the route downloaded to node for the given module, if any.
func (ts *Tables) RouteTo(node topology.NodeID, id app.ModuleID) (Route, bool) {
	if !ts.Has(node) || int(id) < 0 || int(id) >= ts.modules || !ts.known[id] {
		return Route{}, false
	}
	return ts.routes[int(node)*ts.modules+int(id)], true
}

// NextHop returns the next hop from node `from` towards destination `dest`,
// or topology.Invalid if unknown.
func (ts *Tables) NextHop(from, dest topology.NodeID) topology.NodeID {
	if !ts.Has(from) {
		return topology.Invalid
	}
	if from == dest {
		return dest
	}
	if int(dest) < 0 || int(dest) >= ts.nodes {
		return topology.Invalid
	}
	return ts.nextHop[int(from)*ts.nodes+int(dest)]
}

// Table is a view of one node's routing information within Tables: the chosen
// destination per module plus the successor towards every reachable node,
// which the node uses to relay packets that are merely passing through.
type Table struct {
	ts   *Tables
	node topology.NodeID
}

// Table returns the view of node's routing table; ok is false when the node
// has none (it was dead when the tables were built).
func (ts *Tables) Table(node topology.NodeID) (Table, bool) {
	if !ts.Has(node) {
		return Table{}, false
	}
	return Table{ts: ts, node: node}, true
}

// RouteTo returns the route for the given module, if any.
func (t Table) RouteTo(id app.ModuleID) (Route, bool) {
	if t.ts == nil {
		return Route{}, false
	}
	return t.ts.RouteTo(t.node, id)
}

// NextHopTo returns the successor from this node towards dest, or
// topology.Invalid if dest is unknown or unreachable.
func (t Table) NextHopTo(dest topology.NodeID) topology.NodeID {
	if t.ts == nil {
		return topology.Invalid
	}
	return t.ts.NextHop(t.node, dest)
}

// destSet is the dense, index-addressed form of the module duplicate lists
// (S_i). It aliases the caller's duplicate slices and is reused across
// recomputes.
type destSet struct {
	modules int
	known   []bool
	dups    [][]topology.NodeID
}

// fill re-populates the set from the map form, reusing backing storage.
func (d *destSet) fill(destinations map[app.ModuleID][]topology.NodeID) {
	maxID := -1
	for id := range destinations {
		if int(id) > maxID {
			maxID = int(id)
		}
	}
	d.modules = maxID + 1
	d.known = resizeBools(d.known, d.modules)
	if cap(d.dups) < d.modules {
		d.dups = make([][]topology.NodeID, d.modules)
	}
	d.dups = d.dups[:d.modules]
	for i := range d.dups {
		d.dups[i] = nil
	}
	for id, dups := range destinations {
		if int(id) < 0 {
			continue
		}
		d.known[id] = true
		d.dups[id] = dups
	}
}

// BuildTables runs phase 3 (Fig 6): for every alive node and every module it
// selects the duplicate with the smallest phase-2 distance, skipping — when
// the node currently reports a deadlock — the next hop recorded in its
// previous routing table so the stuck job is redirected along an unlocked
// path. destinations lists the duplicates S_i of every module; dead
// duplicates are ignored. prev may be nil on the first invocation. Hot paths
// should use ComputeInto with a reused Workspace instead.
func BuildTables(state *SystemState, sp *ShortestPaths, destinations map[app.ModuleID][]topology.NodeID, prev *Tables) *Tables {
	var ds destSet
	ds.fill(destinations)
	ts := &Tables{}
	buildTablesInto(ts, state, sp, &ds, prev)
	return ts
}

// buildTablesInto is the allocation-free phase-3 core shared by BuildTables
// and ComputeInto. out must not alias prev.
func buildTablesInto(out *Tables, state *SystemState, sp *ShortestPaths, dests *destSet, prev *Tables) {
	k := state.Graph.NodeCount()
	out.reset(k, dests.modules)
	copy(out.known, dests.known)
	for n := 0; n < k; n++ {
		node := topology.NodeID(n)
		if !state.Alive(node) {
			continue
		}
		out.has[n] = true
		hopRow := out.nextHop[n*k : (n+1)*k]
		for d := 0; d < k; d++ {
			dest := topology.NodeID(d)
			if dest == node || !state.Alive(dest) {
				continue
			}
			if sp.Reachable(node, dest) {
				hopRow[d] = sp.Succ(node, dest)
			}
		}
		deadlocked := state.StatusOf(node).Deadlocked
		routeRow := out.routes[n*out.modules : (n+1)*out.modules]
		for m := 0; m < dests.modules; m++ {
			if !dests.known[m] {
				continue
			}
			moduleID := app.ModuleID(m)
			blockedHop := topology.Invalid
			if deadlocked && prev != nil {
				if prevRoute, ok := prev.RouteTo(node, moduleID); ok {
					blockedHop = prevRoute.NextHop
				}
			}
			best := invalidRoute
			fallback := best
			for _, dup := range dests.dups[m] {
				if !state.Alive(dup) || !sp.Reachable(node, dup) {
					continue
				}
				hop := sp.Succ(node, dup)
				candidate := Route{Dest: dup, NextHop: hop, Distance: sp.Dist(node, dup)}
				if better(candidate, fallback) {
					fallback = candidate
				}
				if blockedHop != topology.Invalid && hop == blockedHop && dup != node {
					continue
				}
				if better(candidate, best) {
					best = candidate
				}
			}
			// If every alternative went through the blocked port, fall back to
			// the unconstrained optimum rather than leaving the module
			// unreachable (the deadlock will be reported again next frame).
			if !best.Valid() {
				best = fallback
			}
			routeRow[m] = best
		}
	}
}

// better reports whether candidate is preferable to current: strictly smaller
// distance, with ties broken towards the smaller destination ID for
// determinism.
func better(candidate, current Route) bool {
	if !candidate.Valid() {
		return false
	}
	if !current.Valid() {
		return true
	}
	if candidate.Distance != current.Distance {
		return candidate.Distance < current.Distance
	}
	return candidate.Dest < current.Dest
}
