package routing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/topology"
)

// fullState returns a snapshot in which every node of g is alive with a full
// battery.
func fullState(g *topology.Graph, levels int) *SystemState {
	st := &SystemState{Graph: g, Levels: levels, Status: make([]NodeStatus, g.NodeCount())}
	for _, n := range g.Nodes() {
		st.Status[n.ID] = NodeStatus{Alive: true, BatteryLevel: levels - 1}
	}
	return st
}

func TestSDRWeightsMatchLinkLengths(t *testing.T) {
	mesh := topology.MustMesh(3, 3, 2.5)
	state := fullState(mesh.Graph, 8)
	w := Weights(SDR{}, state)
	if w.Dim() != 9 {
		t.Fatalf("weight matrix dimension = %d, want 9", w.Dim())
	}
	a, _ := mesh.IDAt(1, 1)
	b, _ := mesh.IDAt(2, 1)
	c, _ := mesh.IDAt(3, 3)
	if w.At(int(a), int(b)) != 2.5 {
		t.Errorf("adjacent weight = %g, want 2.5", w.At(int(a), int(b)))
	}
	if w.At(int(a), int(a)) != 0 {
		t.Errorf("diagonal weight = %g, want 0", w.At(int(a), int(a)))
	}
	if !math.IsInf(w.At(int(a), int(c)), 1) {
		t.Errorf("non-adjacent weight = %g, want +Inf", w.At(int(a), int(c)))
	}
}

func TestWeightsExcludeDeadNodes(t *testing.T) {
	mesh := topology.MustMesh(2, 2, 1)
	state := fullState(mesh.Graph, 8)
	a, _ := mesh.IDAt(1, 1)
	b, _ := mesh.IDAt(2, 1)
	state.Status[b] = NodeStatus{Alive: false}
	for _, alg := range []Algorithm{SDR{}, NewEAR()} {
		w := Weights(alg, state)
		if !math.IsInf(w.At(int(a), int(b)), 1) {
			t.Errorf("%s: edge into dead node has weight %g, want +Inf", alg.Name(), w.At(int(a), int(b)))
		}
		if !math.IsInf(w.At(int(b), int(a)), 1) {
			t.Errorf("%s: edge out of dead node has weight %g, want +Inf", alg.Name(), w.At(int(b), int(a)))
		}
	}
}

func TestEARPenaltyFunction(t *testing.T) {
	p := EARParams{Q: 2, Levels: 8}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Penalty(7); got != 1 {
		t.Errorf("Penalty(full) = %g, want 1", got)
	}
	if got := p.Penalty(0); got != 128 {
		t.Errorf("Penalty(empty) = %g, want 2^7 = 128", got)
	}
	if got := p.Penalty(4); got != 8 {
		t.Errorf("Penalty(4) = %g, want 8", got)
	}
	// Out-of-range levels are clamped.
	if p.Penalty(-3) != p.Penalty(0) || p.Penalty(99) != p.Penalty(7) {
		t.Error("penalty did not clamp out-of-range levels")
	}
	if (EARParams{Q: 0, Levels: 8}).Validate() == nil {
		t.Error("Q=0 accepted")
	}
	if (EARParams{Q: 2, Levels: 1}).Validate() == nil {
		t.Error("single level accepted")
	}
}

func TestEARWeightsPenalizeLowBattery(t *testing.T) {
	mesh := topology.MustMesh(3, 1, 1)
	state := fullState(mesh.Graph, 8)
	a, _ := mesh.IDAt(1, 1)
	b, _ := mesh.IDAt(2, 1)
	c, _ := mesh.IDAt(3, 1)
	// Node b is nearly depleted.
	state.Status[b] = NodeStatus{Alive: true, BatteryLevel: 1}
	ear := NewEAR()
	w := Weights(ear, state)
	if w.At(int(a), int(b)) <= w.At(int(b), int(c)) {
		t.Errorf("edge into depleted node (%g) should weigh more than edge into full node (%g)",
			w.At(int(a), int(b)), w.At(int(b), int(c)))
	}
	want := ear.Params.Penalty(1) * 1.0
	if w.At(int(a), int(b)) != want {
		t.Errorf("weight into depleted node = %g, want %g", w.At(int(a), int(b)), want)
	}
	// Zero-value EAR falls back to default parameters rather than dividing by zero.
	var zeroEAR EAR
	wz := Weights(zeroEAR, state)
	if math.IsNaN(wz.At(int(a), int(b))) || wz.At(int(a), int(b)) <= 0 {
		t.Errorf("zero-value EAR produced weight %g", wz.At(int(a), int(b)))
	}
}

func TestAlgorithmNames(t *testing.T) {
	if (SDR{}).Name() != "SDR" || (EAR{}).Name() != "EAR" {
		t.Error("algorithm names wrong")
	}
}

func TestMatrixResetReusesStorage(t *testing.T) {
	m := NewMatrix(4)
	m.Set(1, 2, 42)
	m.Reset(3)
	if m.Dim() != 3 {
		t.Fatalf("Dim after Reset = %d, want 3", m.Dim())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := Inf
			if i == j {
				want = 0
			}
			if m.At(i, j) != want {
				t.Fatalf("At(%d,%d) = %g after Reset, want %g", i, j, m.At(i, j), want)
			}
		}
	}
	// Growing past the original capacity must also work.
	m.Reset(6)
	if m.Dim() != 6 || m.At(5, 5) != 0 || !math.IsInf(m.At(0, 5), 1) {
		t.Fatal("Reset to a larger dimension produced a malformed matrix")
	}
}

func TestAllPairsOnLineGraph(t *testing.T) {
	mesh := topology.MustMesh(4, 1, 1)
	state := fullState(mesh.Graph, 8)
	sp := AllPairs(Weights(SDR{}, state))
	a, _ := mesh.IDAt(1, 1)
	d, _ := mesh.IDAt(4, 1)
	if sp.Dist(a, d) != 3 {
		t.Errorf("distance end-to-end = %g, want 3", sp.Dist(a, d))
	}
	path, err := sp.Path(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 || path[0] != a || path[3] != d {
		t.Errorf("path = %v, want the 4-node line", path)
	}
	if sp.HopCount(a, d) != 3 {
		t.Errorf("HopCount = %d, want 3", sp.HopCount(a, d))
	}
	if sp.HopCount(a, a) != 0 {
		t.Errorf("HopCount(a,a) = %d, want 0", sp.HopCount(a, a))
	}
}

func TestHopCountDoesNotAllocate(t *testing.T) {
	mesh := topology.MustMesh(6, 6, 1)
	state := fullState(mesh.Graph, 8)
	sp := AllPairs(Weights(SDR{}, state))
	a, _ := mesh.IDAt(1, 1)
	d, _ := mesh.IDAt(6, 6)
	allocs := testing.AllocsPerRun(100, func() {
		if sp.HopCount(a, d) != 10 {
			t.Fatal("wrong hop count")
		}
	})
	if allocs != 0 {
		t.Errorf("HopCount allocated %.1f times per call, want 0", allocs)
	}
}

func TestAllPairsMatchesManhattanOnMesh(t *testing.T) {
	mesh := topology.MustMesh(5, 4, 2)
	state := fullState(mesh.Graph, 8)
	sp := AllPairs(Weights(SDR{}, state))
	for _, from := range mesh.Nodes() {
		for _, to := range mesh.Nodes() {
			want := float64(from.Pos.Manhattan(to.Pos)) * 2
			if math.Abs(sp.Dist(from.ID, to.ID)-want) > 1e-9 {
				t.Fatalf("dist %v -> %v = %g, want %g", from.Pos, to.Pos, sp.Dist(from.ID, to.ID), want)
			}
		}
	}
}

func TestAllPairsUnreachableAndDeadNodes(t *testing.T) {
	mesh := topology.MustMesh(3, 1, 1)
	state := fullState(mesh.Graph, 8)
	a, _ := mesh.IDAt(1, 1)
	b, _ := mesh.IDAt(2, 1)
	c, _ := mesh.IDAt(3, 1)
	// Killing the middle node of a line disconnects the endpoints.
	state.Status[b] = NodeStatus{Alive: false}
	sp := AllPairs(Weights(SDR{}, state))
	if sp.Reachable(a, c) {
		t.Error("endpoints should be unreachable with the middle node dead")
	}
	if _, err := sp.Path(a, c); err == nil {
		t.Error("Path across a dead node should fail")
	}
	if sp.HopCount(a, c) != -1 {
		t.Errorf("HopCount unreachable = %d, want -1", sp.HopCount(a, c))
	}
	if _, err := sp.Path(a, topology.NodeID(99)); err == nil {
		t.Error("Path with out-of-range destination should fail")
	}
	if sp.HopCount(a, topology.NodeID(99)) != -1 {
		t.Error("HopCount with out-of-range destination should be -1")
	}
}

func TestAllPairsTriangleInequalityProperty(t *testing.T) {
	mesh := topology.MustMesh(4, 4, 1)
	state := fullState(mesh.Graph, 8)
	// Give nodes varied battery levels so EAR weights are heterogeneous.
	for id := range state.Status {
		state.Status[id] = NodeStatus{Alive: true, BatteryLevel: id % 8}
	}
	for _, alg := range []Algorithm{SDR{}, NewEAR()} {
		sp := AllPairs(Weights(alg, state))
		k := mesh.Size()
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				for via := 0; via < k; via++ {
					if sp.Dist(topology.NodeID(i), topology.NodeID(j)) >
						sp.Dist(topology.NodeID(i), topology.NodeID(via))+sp.Dist(topology.NodeID(via), topology.NodeID(j))+1e-9 {
						t.Fatalf("%s: triangle inequality violated for %d,%d via %d", alg.Name(), i, j, via)
					}
				}
			}
		}
	}
}

func TestAllPairsPathDistanceConsistencyProperty(t *testing.T) {
	prop := func(widthRaw, heightRaw uint8) bool {
		w := int(widthRaw%5) + 2
		h := int(heightRaw%5) + 2
		mesh := topology.MustMesh(w, h, 1)
		state := fullState(mesh.Graph, 8)
		sp := AllPairs(Weights(SDR{}, state))
		// The reconstructed path length must equal the reported distance.
		for _, from := range mesh.Nodes() {
			for _, to := range mesh.Nodes() {
				path, err := sp.Path(from.ID, to.ID)
				if err != nil {
					return false
				}
				var total float64
				for i := 1; i < len(path); i++ {
					l, ok := mesh.Link(path[i-1], path[i])
					if !ok {
						return false
					}
					total += l.LengthCM
				}
				if math.Abs(total-sp.Dist(from.ID, to.ID)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTablesPicksNearestDuplicate(t *testing.T) {
	mesh := topology.MustMesh(4, 1, 1)
	state := fullState(mesh.Graph, 8)
	n1, _ := mesh.IDAt(1, 1)
	n2, _ := mesh.IDAt(2, 1)
	n3, _ := mesh.IDAt(3, 1)
	n4, _ := mesh.IDAt(4, 1)
	dests := map[app.ModuleID][]topology.NodeID{1: {n1, n4}}
	sp := AllPairs(Weights(SDR{}, state))
	tables := BuildTables(state, sp, dests, nil)
	r, ok := tables.RouteTo(n2, 1)
	if !ok || r.Dest != n1 {
		t.Fatalf("node 2 routes module 1 to %v, want nearest duplicate %d", r, n1)
	}
	r, ok = tables.RouteTo(n3, 1)
	if !ok || r.Dest != n4 {
		t.Fatalf("node 3 routes module 1 to %v, want nearest duplicate %d", r, n4)
	}
	// A node that itself hosts the module routes to itself at distance 0.
	r, _ = tables.RouteTo(n1, 1)
	if r.Dest != n1 || r.Distance != 0 || r.NextHop != n1 {
		t.Fatalf("self-hosting node route = %+v, want self at distance 0", r)
	}
	// Unknown modules report no route.
	if _, ok := tables.RouteTo(n1, 99); ok {
		t.Error("unknown module reported a route")
	}
}

func TestBuildTablesEARPrefersChargedDuplicate(t *testing.T) {
	// Node in the middle of a 3-node line with duplicates at both ends at
	// equal physical distance: EAR must pick the better-charged end, SDR the
	// smaller node ID.
	mesh := topology.MustMesh(3, 1, 1)
	state := fullState(mesh.Graph, 8)
	left, _ := mesh.IDAt(1, 1)
	mid, _ := mesh.IDAt(2, 1)
	right, _ := mesh.IDAt(3, 1)
	state.Status[left] = NodeStatus{Alive: true, BatteryLevel: 1}
	state.Status[right] = NodeStatus{Alive: true, BatteryLevel: 7}
	dests := map[app.ModuleID][]topology.NodeID{2: {left, right}}

	sdrPlan := Compute(SDR{}, state, dests, nil)
	rSDR, _ := sdrPlan.Tables.RouteTo(mid, 2)
	if rSDR.Dest != left {
		t.Errorf("SDR picked %d, want the smaller-ID duplicate %d on a distance tie", rSDR.Dest, left)
	}

	earPlan := Compute(NewEAR(), state, dests, nil)
	rEAR, _ := earPlan.Tables.RouteTo(mid, 2)
	if rEAR.Dest != right {
		t.Errorf("EAR picked %d, want the well-charged duplicate %d", rEAR.Dest, right)
	}
}

func TestBuildTablesSkipsDeadDuplicates(t *testing.T) {
	mesh := topology.MustMesh(3, 1, 1)
	state := fullState(mesh.Graph, 8)
	left, _ := mesh.IDAt(1, 1)
	mid, _ := mesh.IDAt(2, 1)
	right, _ := mesh.IDAt(3, 1)
	state.Status[left] = NodeStatus{Alive: false}
	dests := map[app.ModuleID][]topology.NodeID{1: {left, right}}
	plan := Compute(SDR{}, state, dests, nil)
	r, _ := plan.Tables.RouteTo(mid, 1)
	if r.Dest != right {
		t.Errorf("route destination = %d, want the surviving duplicate %d", r.Dest, right)
	}
	// With every duplicate dead the route must be invalid.
	state.Status[right] = NodeStatus{Alive: false}
	plan = Compute(SDR{}, state, dests, nil)
	r, _ = plan.Tables.RouteTo(mid, 1)
	if r.Valid() {
		t.Errorf("route to a fully-dead module reported valid: %+v", r)
	}
}

func TestBuildTablesDeadlockAvoidance(t *testing.T) {
	// 3x1 line, node in the middle is deadlocked towards its previous next
	// hop (left); the rebuilt table must redirect to the right duplicate even
	// though it is equally far.
	mesh := topology.MustMesh(3, 1, 1)
	state := fullState(mesh.Graph, 8)
	left, _ := mesh.IDAt(1, 1)
	mid, _ := mesh.IDAt(2, 1)
	right, _ := mesh.IDAt(3, 1)
	dests := map[app.ModuleID][]topology.NodeID{1: {left, right}}

	first := Compute(SDR{}, state, dests, nil)
	r0, _ := first.Tables.RouteTo(mid, 1)
	if r0.Dest != left {
		t.Fatalf("initial route = %+v, want left duplicate", r0)
	}

	state.Status[mid] = NodeStatus{Alive: true, BatteryLevel: 7, Deadlocked: true}
	second := Compute(SDR{}, state, dests, first.Tables)
	r1, _ := second.Tables.RouteTo(mid, 1)
	if r1.Dest != right || r1.NextHop == r0.NextHop {
		t.Fatalf("deadlocked node not redirected: before %+v, after %+v", r0, r1)
	}
}

func TestBuildTablesDeadlockFallbackWhenNoAlternative(t *testing.T) {
	// Only one duplicate exists; even though the node is deadlocked towards
	// it, the route must fall back to that duplicate instead of becoming
	// invalid.
	mesh := topology.MustMesh(2, 1, 1)
	state := fullState(mesh.Graph, 8)
	a, _ := mesh.IDAt(1, 1)
	b, _ := mesh.IDAt(2, 1)
	dests := map[app.ModuleID][]topology.NodeID{1: {b}}
	first := Compute(SDR{}, state, dests, nil)
	state.Status[a] = NodeStatus{Alive: true, BatteryLevel: 7, Deadlocked: true}
	second := Compute(SDR{}, state, dests, first.Tables)
	r, _ := second.Tables.RouteTo(a, 1)
	if !r.Valid() || r.Dest != b {
		t.Fatalf("fallback route = %+v, want destination %d", r, b)
	}
}

func TestTablesNextHopRelay(t *testing.T) {
	mesh := topology.MustMesh(4, 1, 1)
	state := fullState(mesh.Graph, 8)
	plan := Compute(SDR{}, state, map[app.ModuleID][]topology.NodeID{}, nil)
	a, _ := mesh.IDAt(1, 1)
	b, _ := mesh.IDAt(2, 1)
	d, _ := mesh.IDAt(4, 1)
	if got := plan.Tables.NextHop(a, d); got != b {
		t.Errorf("NextHop(a, d) = %d, want %d", got, b)
	}
	if got := plan.Tables.NextHop(a, a); got != a {
		t.Errorf("NextHop(a, a) = %d, want %d", got, a)
	}
	if got := plan.Tables.NextHop(topology.NodeID(77), d); got != topology.Invalid {
		t.Errorf("NextHop from unknown node = %d, want Invalid", got)
	}
	if got := plan.Tables.NextHop(a, topology.NodeID(77)); got != topology.Invalid {
		t.Errorf("NextHop to unknown destination = %d, want Invalid", got)
	}
	table, ok := plan.Tables.Table(a)
	if !ok {
		t.Fatal("alive node has no table view")
	}
	if got := table.NextHopTo(d); got != b {
		t.Errorf("Table.NextHopTo(d) = %d, want %d", got, b)
	}
}

func TestBuildTablesSkipsDeadSources(t *testing.T) {
	mesh := topology.MustMesh(2, 2, 1)
	state := fullState(mesh.Graph, 8)
	dead, _ := mesh.IDAt(1, 1)
	state.Status[dead] = NodeStatus{Alive: false}
	plan := Compute(SDR{}, state, map[app.ModuleID][]topology.NodeID{}, nil)
	if plan.Tables.Has(dead) {
		t.Error("dead node received a routing table")
	}
	if _, ok := plan.Tables.Table(dead); ok {
		t.Error("dead node has a table view")
	}
	if plan.Tables.Len() != 3 {
		t.Errorf("tables built for %d nodes, want 3", plan.Tables.Len())
	}
}

func TestSystemStateEqualAndClone(t *testing.T) {
	mesh := topology.MustMesh(2, 2, 1)
	a := fullState(mesh.Graph, 8)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Status[0] = NodeStatus{Alive: true, BatteryLevel: 3}
	if a.Equal(b) {
		t.Fatal("modified clone still equal")
	}
	if a.Status[0].BatteryLevel == 3 {
		t.Fatal("modifying the clone changed the original")
	}
	if a.Equal(nil) {
		t.Fatal("state equal to nil")
	}
	c := a.Clone()
	c.Levels = 4
	if a.Equal(c) {
		t.Fatal("states with different level counts reported equal")
	}
	// Out-of-range lookups report dead, matching the old missing-key
	// semantics of the map-backed snapshot.
	if a.Alive(topology.NodeID(99)) || a.Alive(topology.Invalid) {
		t.Fatal("out-of-range node reported alive")
	}
}

func TestComputePlanMetadata(t *testing.T) {
	mesh := topology.MustMesh(2, 2, 1)
	state := fullState(mesh.Graph, 8)
	plan := Compute(NewEAR(), state, map[app.ModuleID][]topology.NodeID{}, nil)
	if plan.Algorithm != "EAR" {
		t.Errorf("plan algorithm = %q, want EAR", plan.Algorithm)
	}
	if plan.Paths == nil || plan.Tables == nil {
		t.Error("plan is missing paths or tables")
	}
}

func BenchmarkAllPairs8x8(b *testing.B) {
	mesh := topology.MustMesh(8, 8, 1)
	state := fullState(mesh.Graph, 8)
	w := Weights(SDR{}, state)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllPairs(w)
	}
}

func BenchmarkComputeEAR8x8(b *testing.B) {
	mesh := topology.MustMesh(8, 8, 1)
	state := fullState(mesh.Graph, 8)
	dests := map[app.ModuleID][]topology.NodeID{
		1: {0, 2, 4}, 2: {10, 20, 30}, 3: {40, 50, 60},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(NewEAR(), state, dests, nil)
	}
}

// BenchmarkComputeIntoEAR8x8 is the steady-state controller path: the same
// computation as BenchmarkComputeEAR8x8 but through a reused Workspace. It
// must report 0 allocs/op.
func BenchmarkComputeIntoEAR8x8(b *testing.B) {
	mesh := topology.MustMesh(8, 8, 1)
	state := fullState(mesh.Graph, 8)
	dests := map[app.ModuleID][]topology.NodeID{
		1: {0, 2, 4}, 2: {10, 20, 30}, 3: {40, 50, 60},
	}
	ws := NewWorkspace()
	var alg Algorithm = NewEAR()
	var prev *Tables
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev = ComputeInto(ws, alg, state, dests, prev).Tables
	}
}
