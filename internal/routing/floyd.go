package routing

import (
	"fmt"

	"repro/internal/topology"
)

// ShortestPaths is the result of phase 2: the all-pairs distance matrix D and
// the successor matrix S. Succ[i][j] is the next hop on a shortest path from
// i to j, or topology.Invalid when j is unreachable from i.
type ShortestPaths struct {
	Dist Matrix
	Succ [][]topology.NodeID
}

// AllPairs runs the Floyd–Warshall variant of Fig 5 on the weight matrix W,
// computing shortest distances and successors for every ordered node pair.
// Ties are broken towards the successor with the smaller node ID so the
// result is deterministic regardless of iteration order.
func AllPairs(w Matrix) *ShortestPaths {
	k := w.Dim()
	dist := NewMatrix(k)
	succ := make([][]topology.NodeID, k)
	for i := 0; i < k; i++ {
		succ[i] = make([]topology.NodeID, k)
		for j := 0; j < k; j++ {
			dist[i][j] = w[i][j]
			switch {
			case i == j:
				succ[i][j] = topology.NodeID(i)
			case w[i][j] < Inf:
				succ[i][j] = topology.NodeID(j)
			default:
				succ[i][j] = topology.Invalid
			}
		}
	}
	for n := 0; n < k; n++ {
		for i := 0; i < k; i++ {
			if i == n || dist[i][n] == Inf {
				continue
			}
			for j := 0; j < k; j++ {
				if j == n || j == i || dist[n][j] == Inf {
					continue
				}
				through := dist[i][n] + dist[n][j]
				switch {
				case through < dist[i][j]:
					dist[i][j] = through
					succ[i][j] = succ[i][n]
				case through == dist[i][j] && succ[i][n] != topology.Invalid &&
					(succ[i][j] == topology.Invalid || succ[i][n] < succ[i][j]):
					succ[i][j] = succ[i][n]
				}
			}
		}
	}
	return &ShortestPaths{Dist: dist, Succ: succ}
}

// Reachable reports whether dst is reachable from src.
func (sp *ShortestPaths) Reachable(src, dst topology.NodeID) bool {
	return sp.Dist[src][dst] < Inf
}

// Path reconstructs the node sequence of a shortest path from src to dst
// (inclusive of both endpoints) by following successors. It returns an error
// if dst is unreachable or a successor loop is detected (which would indicate
// a corrupted matrix).
func (sp *ShortestPaths) Path(src, dst topology.NodeID) ([]topology.NodeID, error) {
	k := len(sp.Dist)
	if int(src) < 0 || int(src) >= k || int(dst) < 0 || int(dst) >= k {
		return nil, fmt.Errorf("routing: path endpoints %d -> %d out of range", src, dst)
	}
	if !sp.Reachable(src, dst) {
		return nil, fmt.Errorf("routing: node %d unreachable from %d", dst, src)
	}
	path := []topology.NodeID{src}
	cur := src
	for cur != dst {
		next := sp.Succ[cur][dst]
		if next == topology.Invalid {
			return nil, fmt.Errorf("routing: missing successor from %d towards %d", cur, dst)
		}
		path = append(path, next)
		cur = next
		if len(path) > k {
			return nil, fmt.Errorf("routing: successor loop detected between %d and %d", src, dst)
		}
	}
	return path, nil
}

// HopCount returns the number of hops on the shortest path from src to dst,
// or -1 if unreachable.
func (sp *ShortestPaths) HopCount(src, dst topology.NodeID) int {
	p, err := sp.Path(src, dst)
	if err != nil {
		return -1
	}
	return len(p) - 1
}
