package routing

import (
	"fmt"

	"repro/internal/topology"
)

// ShortestPaths is the result of phase 2: the all-pairs distance matrix D and
// the successor matrix S, both stored flat for cache locality. Succ(i, j) is
// the next hop on a shortest path from i to j, or topology.Invalid when j is
// unreachable from i.
type ShortestPaths struct {
	n    int
	dist Matrix
	succ []topology.NodeID // row-major, n*n
}

// AllPairs runs the Floyd–Warshall variant of Fig 5 on the weight matrix W,
// computing shortest distances and successors for every ordered node pair.
// Ties are broken towards the successor with the smaller node ID so the
// result is deterministic regardless of iteration order. Hot paths should
// reuse a ShortestPaths via ComputeFrom instead.
func AllPairs(w Matrix) *ShortestPaths {
	sp := &ShortestPaths{}
	sp.ComputeFrom(&w)
	return sp
}

// ComputeFrom recomputes the all-pairs shortest paths for the weight matrix
// W, reusing the receiver's backing storage. W is not modified.
func (sp *ShortestPaths) ComputeFrom(w *Matrix) {
	k := w.Dim()
	sp.n = k
	sp.dist.Reset(k)
	if cap(sp.succ) < k*k {
		sp.succ = make([]topology.NodeID, k*k)
	}
	sp.succ = sp.succ[:k*k]
	for i := 0; i < k; i++ {
		distI := sp.dist.Row(i)
		succI := sp.succ[i*k : (i+1)*k]
		wI := w.Row(i)
		for j := 0; j < k; j++ {
			distI[j] = wI[j]
			switch {
			case i == j:
				succI[j] = topology.NodeID(i)
			case wI[j] < Inf:
				succI[j] = topology.NodeID(j)
			default:
				succI[j] = topology.Invalid
			}
		}
	}
	for n := 0; n < k; n++ {
		sp.pivotPass(n)
	}
}

// pivotPass relaxes every ordered pair through the single pivot n, with the
// smaller-successor tie-breaking of Fig 5. It is the Floyd–Warshall inner
// iteration, shared verbatim between the full pass (ComputeFrom) and the
// dirty-vertex repair (DeltaWorkspace) so both produce bit-identical
// matrices: after pivoting on any vertex set that includes every vertex a
// changed edge touches, the canonical fixpoint (true distances, minimum
// first hop among all shortest paths) is restored.
func (sp *ShortestPaths) pivotPass(n int) {
	k := sp.n
	// Row n is never written while pivoting on n (the j == n and i == n
	// cases are skipped), so hoisting the row slices out of the inner
	// loop preserves the exact reference arithmetic.
	distN := sp.dist.Row(n)
	for i := 0; i < k; i++ {
		if i == n {
			continue
		}
		distI := sp.dist.Row(i)
		din := distI[n]
		if din == Inf {
			continue
		}
		succI := sp.succ[i*k : (i+1)*k]
		sin := succI[n]
		for j := 0; j < k; j++ {
			if j == n || j == i || distN[j] == Inf {
				continue
			}
			through := din + distN[j]
			switch {
			case through < distI[j]:
				distI[j] = through
				succI[j] = sin
			case through == distI[j] && sin != topology.Invalid &&
				(succI[j] == topology.Invalid || sin < succI[j]):
				succI[j] = sin
			}
		}
	}
}

// Dim returns the number of nodes the paths were computed over.
func (sp *ShortestPaths) Dim() int { return sp.n }

// Dist returns the shortest weighted distance from src to dst (Inf when
// unreachable).
func (sp *ShortestPaths) Dist(src, dst topology.NodeID) float64 {
	return sp.dist.At(int(src), int(dst))
}

// Succ returns the next hop on a shortest path from src to dst, or
// topology.Invalid when dst is unreachable from src.
func (sp *ShortestPaths) Succ(src, dst topology.NodeID) topology.NodeID {
	return sp.succ[int(src)*sp.n+int(dst)]
}

// Reachable reports whether dst is reachable from src.
func (sp *ShortestPaths) Reachable(src, dst topology.NodeID) bool {
	return sp.Dist(src, dst) < Inf
}

// inRange reports whether both endpoints index valid nodes.
func (sp *ShortestPaths) inRange(src, dst topology.NodeID) bool {
	return int(src) >= 0 && int(src) < sp.n && int(dst) >= 0 && int(dst) < sp.n
}

// Path reconstructs the node sequence of a shortest path from src to dst
// (inclusive of both endpoints) by following successors. It returns an error
// if dst is unreachable or a successor loop is detected (which would indicate
// a corrupted matrix).
func (sp *ShortestPaths) Path(src, dst topology.NodeID) ([]topology.NodeID, error) {
	if !sp.inRange(src, dst) {
		return nil, fmt.Errorf("routing: path endpoints %d -> %d out of range", src, dst)
	}
	if !sp.Reachable(src, dst) {
		return nil, fmt.Errorf("routing: node %d unreachable from %d", dst, src)
	}
	path := []topology.NodeID{src}
	cur := src
	for cur != dst {
		next := sp.Succ(cur, dst)
		if next == topology.Invalid {
			return nil, fmt.Errorf("routing: missing successor from %d towards %d", cur, dst)
		}
		path = append(path, next)
		cur = next
		if len(path) > sp.n {
			return nil, fmt.Errorf("routing: successor loop detected between %d and %d", src, dst)
		}
	}
	return path, nil
}

// HopCount returns the number of hops on the shortest path from src to dst,
// or -1 if unreachable. It walks the successor matrix directly and performs
// no allocation.
func (sp *ShortestPaths) HopCount(src, dst topology.NodeID) int {
	if !sp.inRange(src, dst) || !sp.Reachable(src, dst) {
		return -1
	}
	hops := 0
	for cur := src; cur != dst; hops++ {
		next := sp.Succ(cur, dst)
		if next == topology.Invalid || hops >= sp.n {
			return -1
		}
		cur = next
	}
	return hops
}
