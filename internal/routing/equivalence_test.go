package routing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/app"
	"repro/internal/topology"
)

// This file pins the dense, slice-backed control plane to the semantics of
// the original map-backed implementation: refCompute below is a faithful
// transcription of the pre-refactor phases 1-3 (map snapshot, [][]float64
// matrices, map tables), and the equivalence test asserts both produce
// identical plans on meshes 4-8 with dead nodes, deadlock flags and link
// faults. It also holds the AllocsPerRun regression guard for the
// steady-state ComputeInto path.

// refTable mirrors the old map-backed Table.
type refTable struct {
	byModule  map[app.ModuleID]Route
	nextHopTo map[topology.NodeID]topology.NodeID
}

// refCompute is the pre-refactor routing computation, kept verbatim (modulo
// the map-based snapshot being reconstructed from the dense one).
func refCompute(alg Algorithm, state *SystemState, destinations map[app.ModuleID][]topology.NodeID, prev map[topology.NodeID]refTable) (dist [][]float64, succ [][]topology.NodeID, tables map[topology.NodeID]refTable) {
	k := state.Graph.NodeCount()
	status := make(map[topology.NodeID]NodeStatus, k)
	for i, st := range state.Status {
		status[topology.NodeID(i)] = st
	}
	alive := func(id topology.NodeID) bool { return status[id].Alive }

	// Phase 1: weight matrix.
	w := make([][]float64, k)
	for i := range w {
		w[i] = make([]float64, k)
		for j := range w[i] {
			if i != j {
				w[i][j] = Inf
			}
		}
	}
	params := DefaultEARParams()
	if e, ok := alg.(EAR); ok && e.Params.Levels != 0 {
		params = e.Params
	}
	for _, l := range state.Graph.Links() {
		if !alive(l.From) || !alive(l.To) {
			continue
		}
		if alg.NeedsBatteryInfo() {
			w[l.From][l.To] = params.Penalty(status[l.To].BatteryLevel) * l.LengthCM
		} else {
			w[l.From][l.To] = l.LengthCM
		}
	}

	// Phase 2: Floyd-Warshall with successor matrix.
	dist = make([][]float64, k)
	succ = make([][]topology.NodeID, k)
	for i := 0; i < k; i++ {
		dist[i] = make([]float64, k)
		succ[i] = make([]topology.NodeID, k)
		for j := 0; j < k; j++ {
			dist[i][j] = w[i][j]
			switch {
			case i == j:
				succ[i][j] = topology.NodeID(i)
			case w[i][j] < Inf:
				succ[i][j] = topology.NodeID(j)
			default:
				succ[i][j] = topology.Invalid
			}
		}
	}
	for n := 0; n < k; n++ {
		for i := 0; i < k; i++ {
			if i == n || dist[i][n] == Inf {
				continue
			}
			for j := 0; j < k; j++ {
				if j == n || j == i || dist[n][j] == Inf {
					continue
				}
				through := dist[i][n] + dist[n][j]
				switch {
				case through < dist[i][j]:
					dist[i][j] = through
					succ[i][j] = succ[i][n]
				case through == dist[i][j] && succ[i][n] != topology.Invalid &&
					(succ[i][j] == topology.Invalid || succ[i][n] < succ[i][j]):
					succ[i][j] = succ[i][n]
				}
			}
		}
	}

	// Phase 3: routing tables.
	tables = make(map[topology.NodeID]refTable, k)
	for n := 0; n < k; n++ {
		node := topology.NodeID(n)
		if !alive(node) {
			continue
		}
		table := refTable{
			byModule:  make(map[app.ModuleID]Route, len(destinations)),
			nextHopTo: make(map[topology.NodeID]topology.NodeID, k),
		}
		for d := 0; d < k; d++ {
			dest := topology.NodeID(d)
			if dest == node || !alive(dest) {
				continue
			}
			if dist[node][dest] < Inf {
				table.nextHopTo[dest] = succ[node][dest]
			}
		}
		deadlocked := status[node].Deadlocked
		for moduleID, dups := range destinations {
			blockedHop := topology.Invalid
			if deadlocked && prev != nil {
				if prevRoute, ok := prev[node].byModule[moduleID]; ok {
					blockedHop = prevRoute.NextHop
				}
			}
			best := Route{Dest: topology.Invalid, NextHop: topology.Invalid, Distance: Inf}
			fallback := best
			for _, dup := range dups {
				if !alive(dup) || dist[node][dup] == Inf {
					continue
				}
				hop := succ[node][dup]
				candidate := Route{Dest: dup, NextHop: hop, Distance: dist[node][dup]}
				if better(candidate, fallback) {
					fallback = candidate
				}
				if blockedHop != topology.Invalid && hop == blockedHop && dup != node {
					continue
				}
				if better(candidate, best) {
					best = candidate
				}
			}
			if !best.Valid() {
				best = fallback
			}
			table.byModule[moduleID] = best
		}
		tables[node] = table
	}
	return dist, succ, tables
}

// comparePlan asserts a dense plan matches the reference output exactly.
func comparePlan(t *testing.T, state *SystemState, destinations map[app.ModuleID][]topology.NodeID, plan *Plan, dist [][]float64, succ [][]topology.NodeID, tables map[topology.NodeID]refTable) {
	t.Helper()
	k := state.Graph.NodeCount()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			from, to := topology.NodeID(i), topology.NodeID(j)
			if got, want := plan.Paths.Dist(from, to), dist[i][j]; got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("Dist(%d,%d) = %g, want %g", i, j, got, want)
			}
			if got, want := plan.Paths.Succ(from, to), succ[i][j]; got != want {
				t.Fatalf("Succ(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	if plan.Tables.Len() != len(tables) {
		t.Fatalf("tables for %d nodes, want %d", plan.Tables.Len(), len(tables))
	}
	for n := 0; n < k; n++ {
		node := topology.NodeID(n)
		ref, refHas := tables[node]
		if plan.Tables.Has(node) != refHas {
			t.Fatalf("Has(%d) = %v, want %v", n, plan.Tables.Has(node), refHas)
		}
		for moduleID := range destinations {
			got, gotOK := plan.Tables.RouteTo(node, moduleID)
			want, wantOK := ref.byModule[moduleID]
			if !refHas {
				want, wantOK = Route{}, false
			}
			if gotOK != wantOK || got != want {
				t.Fatalf("RouteTo(%d, %d) = %+v,%v, want %+v,%v", n, moduleID, got, gotOK, want, wantOK)
			}
		}
		for d := 0; d < k; d++ {
			dest := topology.NodeID(d)
			want := topology.Invalid
			if refHas {
				if node == dest {
					want = dest
				} else if hop, ok := ref.nextHopTo[dest]; ok {
					want = hop
				}
			}
			if got := plan.Tables.NextHop(node, dest); got != want {
				t.Fatalf("NextHop(%d,%d) = %d, want %d", n, d, got, want)
			}
		}
	}
}

// TestDenseComputeMatchesMapReference drives both implementations over
// meshes 4-8 with randomized battery levels, dead nodes, deadlock flags and
// link faults, chaining each computation's tables into the next as prev so
// the deadlock-avoidance path is exercised against real previous tables.
func TestDenseComputeMatchesMapReference(t *testing.T) {
	for _, meshSize := range []int{4, 5, 6, 7, 8} {
		for _, alg := range []Algorithm{SDR{}, NewEAR()} {
			t.Run(fmt.Sprintf("%dx%d/%s", meshSize, meshSize, alg.Name()), func(t *testing.T) {
				mesh := topology.MustMesh(meshSize, meshSize, topology.DefaultSpacingCM)
				rng := rand.New(rand.NewSource(int64(meshSize)*31 + int64(len(alg.Name()))))
				// Link faults: remove ~10% of the woven interconnects.
				if _, _, err := topology.FailLinks(mesh.Graph, 0.1, uint64(meshSize)); err != nil {
					t.Fatal(err)
				}
				k := mesh.Graph.NodeCount()
				dests := map[app.ModuleID][]topology.NodeID{}
				for _, n := range mesh.Nodes() {
					m := app.ModuleID(int(n.ID)%3 + 1)
					dests[m] = append(dests[m], n.ID)
				}

				state := fullState(mesh.Graph, 8)
				ws := NewWorkspace()
				var prev *Tables
				var refPrev map[topology.NodeID]refTable
				for round := 0; round < 6; round++ {
					for i := 0; i < k; i++ {
						state.Status[i] = NodeStatus{
							Alive:        rng.Float64() > 0.15,
							BatteryLevel: rng.Intn(8),
							Deadlocked:   rng.Float64() < 0.2,
						}
					}
					plan := ComputeInto(ws, alg, state, dests, prev)
					dist, succ, refTables := refCompute(alg, state, dests, refPrev)
					comparePlan(t, state, dests, plan, dist, succ, refTables)
					prev, refPrev = plan.Tables, refTables
				}
			})
		}
	}
}

// TestComputeIntoSteadyStateZeroAllocs is the perf regression guard for the
// controller hot path: once the workspace buffers are warm, recomputing the
// full three-phase plan — with changing battery levels and ping-ponged prev
// tables, exactly like the simulator's frame loop — must not allocate.
func TestComputeIntoSteadyStateZeroAllocs(t *testing.T) {
	mesh := topology.MustMesh(8, 8, 1)
	state := fullState(mesh.Graph, 8)
	dests := map[app.ModuleID][]topology.NodeID{}
	for _, n := range mesh.Nodes() {
		m := app.ModuleID(int(n.ID)%3 + 1)
		dests[m] = append(dests[m], n.ID)
	}
	ws := NewWorkspace()
	// Hoisted interface value: converting the 16-byte EAR struct to the
	// Algorithm interface allocates, and the simulator holds its algorithm as
	// an interface field for the same reason.
	var alg Algorithm = NewEAR()
	var prev *Tables
	// Two warm-up computes size both ping-pong table buffers.
	prev = ComputeInto(ws, alg, state, dests, prev).Tables
	prev = ComputeInto(ws, alg, state, dests, prev).Tables
	step := 0
	allocs := testing.AllocsPerRun(64, func() {
		st := &state.Status[step%len(state.Status)]
		st.BatteryLevel = (st.BatteryLevel + 1) % 8
		step++
		prev = ComputeInto(ws, alg, state, dests, prev).Tables
	})
	if allocs != 0 {
		t.Errorf("steady-state ComputeInto allocated %.1f times per run, want 0", allocs)
	}
}
