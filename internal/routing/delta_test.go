package routing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/app"
	"repro/internal/topology"
)

// This file pins the incremental phase-2 repair (DeltaWorkspace) to the full
// Floyd–Warshall pass, in the style of equivalence_test.go: byte-identical
// plans over meshes 4-16 × algorithms × battery-drain trajectories × dead
// nodes × link faults, a randomized long-run soak, a property test over
// random single-weight perturbations (including the crossover boundary), the
// zero-alloc steady-state guard, and the benchmarks behind
// BENCH_incremental.json.

// assertPlansIdentical asserts two dense plans are byte-identical: every
// distance bit pattern, every successor, and every phase-3 table entry.
func assertPlansIdentical(t *testing.T, got, want *Plan) {
	t.Helper()
	gp, wp := got.Paths, want.Paths
	if gp.n != wp.n {
		t.Fatalf("dimensions diverged: %d vs %d", gp.n, wp.n)
	}
	k := gp.n
	for i := 0; i < k*k; i++ {
		if math.Float64bits(gp.dist.cells[i]) != math.Float64bits(wp.dist.cells[i]) {
			t.Fatalf("dist[%d][%d] = %g, want %g", i/k, i%k, gp.dist.cells[i], wp.dist.cells[i])
		}
		if gp.succ[i] != wp.succ[i] {
			t.Fatalf("succ[%d][%d] = %d, want %d", i/k, i%k, gp.succ[i], wp.succ[i])
		}
	}
	gt, wt := got.Tables, want.Tables
	if gt.nodes != wt.nodes || gt.modules != wt.modules {
		t.Fatalf("table dimensions diverged: %dx%d vs %dx%d", gt.nodes, gt.modules, wt.nodes, wt.modules)
	}
	for i := range gt.has {
		if gt.has[i] != wt.has[i] {
			t.Fatalf("has[%d] = %v, want %v", i, gt.has[i], wt.has[i])
		}
	}
	for i := range gt.known {
		if gt.known[i] != wt.known[i] {
			t.Fatalf("known[%d] = %v, want %v", i, gt.known[i], wt.known[i])
		}
	}
	for i, r := range gt.routes {
		w := wt.routes[i]
		if r.Dest != w.Dest || r.NextHop != w.NextHop ||
			math.Float64bits(r.Distance) != math.Float64bits(w.Distance) {
			t.Fatalf("routes[%d] = %+v, want %+v", i, r, w)
		}
	}
	for i := range gt.nextHop {
		if gt.nextHop[i] != wt.nextHop[i] {
			t.Fatalf("nextHop[%d][%d] = %d, want %d", i/gt.nodes, i%gt.nodes, gt.nextHop[i], wt.nextHop[i])
		}
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("fingerprints diverged despite identical contents")
	}
}

func checkerboardDests(g *topology.Graph) map[app.ModuleID][]topology.NodeID {
	dests := map[app.ModuleID][]topology.NodeID{}
	for n := 0; n < g.NodeCount(); n++ {
		m := app.ModuleID(n%3 + 1)
		dests[m] = append(dests[m], topology.NodeID(n))
	}
	return dests
}

// TestDeltaMatchesFullRecompute drives a DeltaWorkspace and a plain
// Workspace in lockstep — each chaining its own prev tables, exactly like a
// controller — over meshes 4-16 with battery-drain trajectories, node
// deaths (which must trigger the full fallback), deadlock churn and
// setup-time link faults, asserting byte-identical plans on every round.
func TestDeltaMatchesFullRecompute(t *testing.T) {
	for _, meshSize := range []int{4, 6, 8, 12, 16} {
		for _, alg := range []Algorithm{SDR{}, NewEAR()} {
			t.Run(fmt.Sprintf("%dx%d/%s", meshSize, meshSize, alg.Name()), func(t *testing.T) {
				mesh := topology.MustMesh(meshSize, meshSize, topology.DefaultSpacingCM)
				if _, _, err := topology.FailLinks(mesh.Graph, 0.1, uint64(meshSize)); err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(meshSize)*41 + int64(len(alg.Name()))))
				dests := checkerboardDests(mesh.Graph)
				state := fullState(mesh.Graph, 8)

				dw := NewDeltaWorkspace()
				ws := NewWorkspace()
				var dPrev, fPrev *Tables
				rounds := 24
				if meshSize >= 12 {
					rounds = 8
				}
				for round := 0; round < rounds; round++ {
					// Mostly battery drain; every few rounds a death or a
					// deadlock flip.
					for hit := 0; hit < 1+rng.Intn(3); hit++ {
						st := &state.Status[rng.Intn(len(state.Status))]
						if st.BatteryLevel > 0 {
							st.BatteryLevel--
						} else {
							st.BatteryLevel = 7
						}
					}
					if round%5 == 4 {
						state.Status[rng.Intn(len(state.Status))].Alive = false
					}
					if round%3 == 2 {
						st := &state.Status[rng.Intn(len(state.Status))]
						st.Deadlocked = !st.Deadlocked
					}
					dPlan := dw.ComputeInto(alg, state, dests, dPrev)
					fPlan := ComputeInto(ws, alg, state, dests, fPrev)
					assertPlansIdentical(t, dPlan, fPlan)
					dPrev, fPrev = dPlan.Tables, fPlan.Tables
				}
				stats := dw.Stats()
				if stats.Full+stats.Incremental != rounds {
					t.Fatalf("stats count %d recomputes, want %d", stats.Full+stats.Incremental, rounds)
				}
				// On tiny meshes a few drained nodes are already a large
				// dirty fraction, so only the bigger meshes are guaranteed
				// to exercise the repair under the default crossover.
				if meshSize >= 8 && alg.NeedsBatteryInfo() && stats.Incremental == 0 {
					t.Fatalf("EAR drain trajectory never took the incremental path: %+v", stats)
				}
			})
		}
	}
}

// TestDeltaLongRunSoak is the randomized endurance pass: hundreds of rounds
// of mixed drains, deaths, revivals and deadlock churn on the paper's 8x8
// mesh, incremental vs full, byte-identical throughout.
func TestDeltaLongRunSoak(t *testing.T) {
	mesh := topology.MustMesh(8, 8, topology.DefaultSpacingCM)
	rng := rand.New(rand.NewSource(97))
	dests := checkerboardDests(mesh.Graph)
	state := fullState(mesh.Graph, 8)
	var alg Algorithm = NewEAR()

	dw := NewDeltaWorkspace()
	ws := NewWorkspace()
	var dPrev, fPrev *Tables
	for round := 0; round < 300; round++ {
		st := &state.Status[rng.Intn(len(state.Status))]
		switch r := rng.Float64(); {
		case r < 0.70:
			st.BatteryLevel = rng.Intn(8)
		case r < 0.85:
			st.Deadlocked = !st.Deadlocked
		case r < 0.95:
			st.Alive = false
		default:
			st.Alive = true // revival must also force the full fallback
		}
		dPlan := dw.ComputeInto(alg, state, dests, dPrev)
		fPlan := ComputeInto(ws, alg, state, dests, fPrev)
		assertPlansIdentical(t, dPlan, fPlan)
		dPrev, fPrev = dPlan.Tables, fPlan.Tables
	}
	stats := dw.Stats()
	if stats.Incremental == 0 || stats.Full == 0 {
		t.Fatalf("soak did not exercise both paths: %+v", stats)
	}
}

// matrixAlg exposes phase 1 directly: its weights are an arbitrary matrix
// the test mutates between recomputes, so perturbations are not limited to
// what battery quantisation can express.
type matrixAlg struct{ m *Matrix }

func (matrixAlg) Name() string           { return "matrix" }
func (matrixAlg) NeedsBatteryInfo() bool { return false }
func (a matrixAlg) WeightsInto(w *Matrix, state *SystemState) {
	k := a.m.Dim()
	w.Reset(k)
	for i := 0; i < k; i++ {
		copy(w.Row(i), a.m.Row(i))
		w.Set(i, i, 0)
	}
}

// TestDeltaPropertyRandomPerturbations is the fuzz-style satellite: random
// single-weight (and occasional burst) perturbations on a random directed
// graph — weight changes, link deletions, link insertions — asserting after
// every step that the incremental repair matches a from-scratch computation
// byte-identically, while sweeping the crossover thresholds so both sides
// of the fallback boundary are exercised. Weights are multiples of 1/8 so
// path sums carry no rounding (the byte-identical contract's precondition).
func TestDeltaPropertyRandomPerturbations(t *testing.T) {
	for _, meshSize := range []int{3, 4} {
		t.Run(fmt.Sprintf("%dx%d", meshSize, meshSize), func(t *testing.T) {
			mesh := topology.MustMesh(meshSize, meshSize, topology.DefaultSpacingCM)
			k := mesh.Graph.NodeCount()
			rng := rand.New(rand.NewSource(int64(k)))
			w := NewMatrix(k)
			randWeight := func() float64 { return float64(1+rng.Intn(64)) * 0.125 }
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					if i != j && rng.Float64() < 0.3 {
						w.Set(i, j, randWeight())
					}
				}
			}
			var alg Algorithm = matrixAlg{m: &w}
			state := fullState(mesh.Graph, 8)
			dests := checkerboardDests(mesh.Graph)

			dw := NewDeltaWorkspace()
			ws := NewWorkspace()
			var dPrev, fPrev *Tables
			crossovers := [][2]float64{{0, 0}, {0.05, 0.02}, {0.3, 0.1}, {1, 1}}
			for step := 0; step < 400; step++ {
				if step%25 == 0 {
					c := crossovers[(step/25)%len(crossovers)]
					dw.SetCrossover(c[0], c[1])
				}
				for hit := 0; hit < 1+rng.Intn(3); hit++ {
					i, j := rng.Intn(k), rng.Intn(k)
					if i == j {
						continue
					}
					switch r := rng.Float64(); {
					case r < 0.25:
						w.Set(i, j, Inf) // link fault
					default:
						w.Set(i, j, randWeight())
					}
				}
				dPlan := dw.ComputeInto(alg, state, dests, dPrev)
				fPlan := ComputeInto(ws, alg, state, dests, fPrev)
				assertPlansIdentical(t, dPlan, fPlan)
				dPrev, fPrev = dPlan.Tables, fPlan.Tables
			}
			stats := dw.Stats()
			if stats.Incremental == 0 || stats.Full == 0 {
				t.Fatalf("perturbations did not exercise both sides of the crossover: %+v", stats)
			}
		})
	}
}

// TestDeltaCrossoverPolicy pins the fallback triggers: an unchanged
// snapshot repairs for free, a forced-full mode never repairs, a tiny
// crossover rejects even a single dirty vertex, and a permissive crossover
// accepts a broad change — all byte-identical to the full pass.
func TestDeltaCrossoverPolicy(t *testing.T) {
	mesh := topology.MustMesh(6, 6, topology.DefaultSpacingCM)
	dests := checkerboardDests(mesh.Graph)
	state := fullState(mesh.Graph, 8)
	var alg Algorithm = NewEAR()

	dw := NewDeltaWorkspace()
	ws := NewWorkspace()
	check := func(wantFull, wantIncr int) {
		t.Helper()
		dPlan := dw.ComputeInto(alg, state, dests, nil)
		fPlan := ComputeInto(ws, alg, state, dests, nil)
		assertPlansIdentical(t, dPlan, fPlan)
		if s := dw.Stats(); s.Full != wantFull || s.Incremental != wantIncr {
			t.Fatalf("stats = %+v, want Full %d Incremental %d", s, wantFull, wantIncr)
		}
	}

	check(1, 0) // first computation: full
	check(1, 1) // unchanged snapshot: free repair (empty dirty set)

	dw.SetCrossover(1, 1) // everything repairs
	before := dw.Stats().DirtyVertices
	state.Status[14].BatteryLevel = 3
	check(1, 2) // one drained node: incremental
	if dw.Stats().DirtyVertices <= before {
		t.Fatal("incremental repair did not record dirty vertices")
	}
	for i := range state.Status {
		state.Status[i].BatteryLevel = 1
	}
	check(1, 3) // broad change, permissive crossover: still incremental

	dw.SetCrossover(0, 0) // any dirty vertex is past the boundary
	state.Status[15].BatteryLevel = 3
	check(2, 3)

	dw.SetMode(RecomputeFull)
	dw.SetCrossover(1, 1)
	state.Status[16].BatteryLevel = 0
	check(3, 3)
	if dw.Mode() != RecomputeFull {
		t.Fatalf("mode = %v, want full", dw.Mode())
	}

	dw.SetMode(RecomputeIncremental)
	state.Status[17].BatteryLevel = 0
	check(3, 4)
}

// TestDeltaComputeSteadyStateZeroAllocs extends the PR 3 zero-alloc
// contract to the incremental path: once the workspace (including the
// repair scratch) is warm, battery-drain recomputes must not allocate.
func TestDeltaComputeSteadyStateZeroAllocs(t *testing.T) {
	mesh := topology.MustMesh(8, 8, 1)
	state := fullState(mesh.Graph, 8)
	dests := checkerboardDests(mesh.Graph)
	dw := NewDeltaWorkspace()
	var alg Algorithm = NewEAR()
	var prev *Tables
	// Warm-ups: size both ping-pong table buffers, both weight matrices and
	// the repair scratch (the third call takes the incremental path).
	for i := 0; i < 3; i++ {
		state.Status[i].BatteryLevel = 6
		prev = dw.ComputeInto(alg, state, dests, prev).Tables
	}
	if dw.Stats().Incremental == 0 {
		t.Fatal("warm-up never exercised the incremental path")
	}
	step := 0
	allocs := testing.AllocsPerRun(64, func() {
		st := &state.Status[step%len(state.Status)]
		st.BatteryLevel = (st.BatteryLevel + 1) % 8
		step++
		prev = dw.ComputeInto(alg, state, dests, prev).Tables
	})
	if allocs != 0 {
		t.Errorf("steady-state DeltaWorkspace.ComputeInto allocated %.1f times per run, want 0", allocs)
	}
}

// benchDrain drives one battery-threshold crossing per iteration through a
// DeltaWorkspace in the given mode — the controller hot path the scaling
// claim is about.
func benchDrain(b *testing.B, meshSize int, mode RecomputeMode) {
	mesh := topology.MustMesh(meshSize, meshSize, 1)
	state := fullState(mesh.Graph, 8)
	dests := checkerboardDests(mesh.Graph)
	dw := NewDeltaWorkspace()
	dw.SetMode(mode)
	var alg Algorithm = NewEAR()
	var prev *Tables
	for i := 0; i < 3; i++ {
		state.Status[i].BatteryLevel = 6
		prev = dw.ComputeInto(alg, state, dests, prev).Tables
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := &state.Status[i%len(state.Status)]
		st.BatteryLevel = (st.BatteryLevel + 1) % 8
		prev = dw.ComputeInto(alg, state, dests, prev).Tables
	}
}

// BenchmarkIncrementalRecompute is the BENCH_incremental.json source: the
// per-threshold-crossing recompute cost for the full pass vs the
// incremental repair as the mesh grows. The full pass is capped at 32x32
// (1024 nodes, ~1 s/op); 64x64 (4096 nodes) appears only under the
// incremental column — that sweep was simply infeasible at O(K³).
func BenchmarkIncrementalRecompute(b *testing.B) {
	for _, meshSize := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("full/%dx%d", meshSize, meshSize), func(b *testing.B) {
			benchDrain(b, meshSize, RecomputeFull)
		})
	}
	for _, meshSize := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("incremental/%dx%d", meshSize, meshSize), func(b *testing.B) {
			benchDrain(b, meshSize, RecomputeIncremental)
		})
	}
}

// BenchmarkDeltaCrossover measures where the repair loses to the full pass
// on the 16x16 mesh: each sub-benchmark drains a fixed number of nodes per
// recompute (each drained node dirties itself and its in-neighbours). The
// measured break-even backs the default crossover constants in delta.go.
func BenchmarkDeltaCrossover(b *testing.B) {
	const meshSize = 16
	run := func(b *testing.B, drained int, mode RecomputeMode) {
		mesh := topology.MustMesh(meshSize, meshSize, 1)
		state := fullState(mesh.Graph, 8)
		dests := checkerboardDests(mesh.Graph)
		dw := NewDeltaWorkspace()
		dw.SetMode(mode)
		dw.SetCrossover(1, 1) // measure the repair itself, not the policy
		var alg Algorithm = NewEAR()
		var prev *Tables
		for i := 0; i < 3; i++ {
			state.Status[i].BatteryLevel = 6
			prev = dw.ComputeInto(alg, state, dests, prev).Tables
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for d := 0; d < drained; d++ {
				st := &state.Status[(i*drained+d*5)%len(state.Status)]
				st.BatteryLevel = (st.BatteryLevel + 1) % 8
			}
			prev = dw.ComputeInto(alg, state, dests, prev).Tables
		}
	}
	b.Run("full", func(b *testing.B) { run(b, 1, RecomputeFull) })
	for _, drained := range []int{1, 2, 4, 8, 16, 32, 51} {
		b.Run(fmt.Sprintf("repair/drained-%d", drained), func(b *testing.B) {
			run(b, drained, RecomputeIncremental)
		})
	}
}
