package routing

import (
	"repro/internal/app"
	"repro/internal/topology"
)

// RecomputeMode selects how a DeltaWorkspace reacts to a weight change.
type RecomputeMode int

const (
	// RecomputeIncremental (the zero value, and the default) repairs the
	// previous distance/successor matrices from the set of changed weights
	// when that set is small, falling back to the full Floyd–Warshall pass
	// automatically (see DeltaWorkspace).
	RecomputeIncremental RecomputeMode = iota
	// RecomputeFull always reruns the full O(K³) pass, byte-identical to
	// what a plain Workspace computes. It exists as a baseline for the
	// equivalence tests, the scaling experiment and the CI byte-diff smoke.
	RecomputeFull
)

// String returns the CLI spelling of the mode.
func (m RecomputeMode) String() string {
	if m == RecomputeFull {
		return "full"
	}
	return "incremental"
}

// DeltaStats counts how a DeltaWorkspace executed its recomputations. All
// counters are pure functions of the snapshot sequence, so they are
// deterministic and may appear in experiment tables.
type DeltaStats struct {
	// Full counts recomputations that ran the full Floyd–Warshall pass
	// (first computation, forced mode, liveness change, or dirty set past
	// the crossover).
	Full int
	// Incremental counts recomputations repaired from the dirty set.
	Incremental int
	// DirtyVertices is the cumulative number of dirty vertices across all
	// incremental repairs.
	DirtyVertices int
	// AffectedPairs is the cumulative number of (source, destination)
	// pairs whose labels were recomputed across all incremental repairs.
	AffectedPairs int
}

// Crossover fractions above which the incremental repair loses to the full
// pass. An incremental repair costs roughly (diff + marking + adjacency +
// rebuild) ≈ 4·K² plus one O(K²) pivot pass per dirty vertex plus the
// affected re-labelling, while the full pass costs K pivot passes. Measured
// with BenchmarkDeltaCrossover on the 16x16 mesh (256 nodes, EAR,
// single-CPU container): repair beats the 23.1 ms full pass at 3.5 ms for
// one drained node (dirty 0.02·K, affected 0.11·K²) and breaks even around
// sixteen simultaneously drained nodes — dirty ≈ 0.21·K, affected ≈
// 0.73·K². The defaults sit just under that break-even; they are policy,
// not correctness — any threshold yields byte-identical tables.
const (
	defaultDirtyCrossover    = 0.20
	defaultAffectedCrossover = 0.60
)

// DeltaWorkspace is a Workspace variant whose phase 2 is a dynamic all-pairs
// shortest-path computation: it keeps the previous weight matrix, diffs the
// new weights against it into a dirty vertex set (a vertex is dirty when any
// edge incident to it changed weight, appeared, or disappeared), and when
// the dirty set is small repairs the flat dist/succ arrays in place —
// Ramalingam–Reps-style, specialized to the dense representation — instead
// of rerunning the full O(K³) Floyd–Warshall pass:
//
//  1. Mark, per destination j, every source i whose previous canonical path
//     to j touches a dirty vertex (one memoized walk of the old successor
//     tree per destination, O(K) amortized).
//  2. Re-label the affected pairs of each destination with a Dijkstra pass
//     restricted to clean intermediates, seeded from still-exact clean-pair
//     distances (deterministic smallest-label/smallest-id settling order).
//  3. Run the shared Floyd–Warshall pivot pass once per dirty vertex, in
//     ascending vertex order, over the whole matrix.
//
// Because the repaired matrices reach the same canonical fixpoint as the
// full pass — true shortest distances, and for every pair the minimum first
// hop among all shortest paths — the repair is byte-identical to
// Workspace.ComputeInto whenever edge-weight sums carry no rounding (the
// repo's calibrations use dyadic lengths and penalties, so they are exact;
// see DESIGN.md, "Performance architecture"). The repair costs
// O(K² + |dirty|·K² + Σ|affected|·K) against the full pass's O(K³).
//
// The workspace falls back to the full pass automatically when there is no
// previous computation, the node count changed, any node's liveness flag
// changed (death and revival invalidate reachability wholesale), or the
// dirty/affected volume exceeds the measured crossover thresholds.
//
// The ComputeInto contract — ping-ponged table buffers, Plan lifetimes, and
// zero steady-state heap allocations — is identical to Workspace; a
// DeltaWorkspace is likewise not safe for concurrent use.
type DeltaWorkspace struct {
	mode              RecomputeMode
	dirtyCrossover    float64
	affectedCrossover float64

	// Ping-ponged phase-1 weight matrices: w[cur] holds the weights of the
	// previous computation, the other buffer receives the new ones, and the
	// diff between them is the dirty set.
	w        [2]Matrix
	cur      int
	havePrev bool

	sp        ShortestPaths
	dests     destSet
	tbl       [2]Tables
	plan      Plan
	prevAlive []bool

	// Repair scratch, sized once per dimension and reused (zero-alloc for
	// a fixed topology; the adjacency arrays regrow only when the edge
	// count does).
	dirtyMark []bool            // per vertex: incident edge changed
	dirty     []int             // ascending dirty vertex list
	mark      []uint64          // per vertex: epoch<<1 | affected bit
	epoch     uint64            // current marking epoch
	walk      []int             // successor-tree walk stack
	aff       []int             // ascending affected sources, current dest
	work      []int             // unsettled Dijkstra worklist
	label     []float64         // tentative clean-restricted distances
	hop       []topology.NodeID // tentative canonical first hops
	settled   []bool            // per vertex: popped for the current dest
	adjOut    []int32           // concatenated out-neighbour lists
	adjOutOff []int32           // k+1 offsets into adjOut
	adjIn     []int32           // concatenated in-neighbour lists
	adjInOff  []int32           // k+1 offsets into adjIn

	stats DeltaStats
}

// NewDeltaWorkspace returns an empty delta workspace in incremental mode
// with the measured default crossover thresholds. Buffers are sized lazily
// on the first ComputeInto and reused afterwards.
func NewDeltaWorkspace() *DeltaWorkspace {
	return &DeltaWorkspace{
		dirtyCrossover:    defaultDirtyCrossover,
		affectedCrossover: defaultAffectedCrossover,
	}
}

// SetMode switches between incremental repair and the always-full baseline.
func (dw *DeltaWorkspace) SetMode(m RecomputeMode) { dw.mode = m }

// Mode returns the current recompute mode.
func (dw *DeltaWorkspace) Mode() RecomputeMode { return dw.mode }

// SetCrossover overrides the dirty-vertex and affected-pair fractions above
// which the workspace falls back to the full pass (both in (0, 1]; values
// outside the range are clamped). Intended for tests and experiments; the
// defaults are measured, see the package constants.
func (dw *DeltaWorkspace) SetCrossover(dirtyFrac, affectedFrac float64) {
	dw.dirtyCrossover = clamp01(dirtyFrac)
	dw.affectedCrossover = clamp01(affectedFrac)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Stats returns the cumulative execution counters.
func (dw *DeltaWorkspace) Stats() DeltaStats { return dw.stats }

// ComputeInto runs all three phases of the given algorithm on a system
// snapshot, reusing the workspace's buffers, with phase 2 executed
// incrementally when possible. The contract is identical to the package
// function ComputeInto on a plain Workspace: destinations lists the
// duplicates of every module, prev is the previously downloaded tables (nil
// on the first computation), and when prev came from an earlier ComputeInto
// on the same workspace the new tables are written into the other internal
// buffer so prev stays intact.
func (dw *DeltaWorkspace) ComputeInto(alg Algorithm, state *SystemState, destinations map[app.ModuleID][]topology.NodeID, prev *Tables) *Plan {
	next := dw.cur ^ 1
	alg.WeightsInto(&dw.w[next], state)
	k := dw.w[next].Dim()

	if dw.repair(k, state) {
		dw.stats.Incremental++
	} else {
		dw.sp.ComputeFrom(&dw.w[next])
		dw.stats.Full++
	}
	dw.cur = next
	dw.havePrev = true
	dw.noteAlive(state, k)

	dw.dests.fill(destinations)
	out := &dw.tbl[0]
	if prev == out {
		out = &dw.tbl[1]
	}
	buildTablesInto(out, state, &dw.sp, &dw.dests, prev)
	dw.plan = Plan{Algorithm: alg.Name(), Paths: &dw.sp, Tables: out}
	return &dw.plan
}

// noteAlive records the snapshot's liveness flags for the next diff.
func (dw *DeltaWorkspace) noteAlive(state *SystemState, k int) {
	if cap(dw.prevAlive) < k {
		dw.prevAlive = make([]bool, k)
	}
	dw.prevAlive = dw.prevAlive[:k]
	for i := 0; i < k; i++ {
		dw.prevAlive[i] = state.Alive(topology.NodeID(i))
	}
}

// aliveChanged reports whether any node's liveness differs from the
// previous computation's snapshot.
func (dw *DeltaWorkspace) aliveChanged(state *SystemState, k int) bool {
	if len(dw.prevAlive) != k {
		return true
	}
	for i := 0; i < k; i++ {
		if dw.prevAlive[i] != state.Alive(topology.NodeID(i)) {
			return true
		}
	}
	return false
}

// repair attempts the incremental phase-2 update against the new weights in
// dw.w[dw.cur^1]. It returns false — leaving dist/succ untouched — when the
// workspace must (or is configured to) run the full pass instead.
func (dw *DeltaWorkspace) repair(k int, state *SystemState) bool {
	if dw.mode == RecomputeFull || !dw.havePrev || dw.sp.n != k || dw.w[dw.cur].Dim() != k {
		return false
	}
	// Node death (or revival) invalidates reachability wholesale: every
	// column through the node changes at once, and the old successor trees
	// are the wrong guide. Take the full pass.
	if dw.aliveChanged(state, k) {
		return false
	}
	dw.grow(k)
	newW := &dw.w[dw.cur^1]
	if !dw.diffDirty(newW, &dw.w[dw.cur], k) {
		return false // dirty fraction past the crossover
	}
	if len(dw.dirty) == 0 {
		return true // weights unchanged: dist/succ are already the fixpoint
	}

	// First marking pass: total affected volume, with early bailout. The
	// walk is O(K) amortized per destination, so a bailout costs at most
	// one O(K²) sweep before the full pass runs — noise against its K³.
	budget := int(dw.affectedCrossover * float64(k) * float64(k))
	total := 0
	for j := 0; j < k; j++ {
		total += dw.markAffected(j, k)
		if total > budget {
			return false
		}
	}
	dw.stats.DirtyVertices += len(dw.dirty)
	dw.stats.AffectedPairs += total

	// The re-labelling touches only existing edges, so one O(K²) sweep
	// builds neighbour lists and the Dijkstra passes run over them instead
	// of scanning whole matrix rows.
	dw.buildAdjacency(newW, k)

	// Second pass: re-mark (the memo is epoch-scoped) and re-label each
	// destination column, then restore the fixpoint with one pivot pass
	// per dirty vertex in ascending order.
	for j := 0; j < k; j++ {
		if dw.markAffected(j, k) > 0 {
			dw.repairColumn(j, k, newW)
		}
	}
	for _, v := range dw.dirty {
		dw.sp.pivotPass(v)
	}
	return true
}

// grow sizes the repair scratch for dimension k.
func (dw *DeltaWorkspace) grow(k int) {
	if cap(dw.mark) >= k {
		dw.mark = dw.mark[:k]
		dw.label = dw.label[:k]
		dw.hop = dw.hop[:k]
		dw.settled = dw.settled[:k]
		dw.adjOutOff = dw.adjOutOff[:k+1]
		dw.adjInOff = dw.adjInOff[:k+1]
		return
	}
	dw.mark = make([]uint64, k)
	dw.epoch = 0
	dw.walk = make([]int, 0, k)
	dw.aff = make([]int, 0, k)
	dw.work = make([]int, 0, k)
	dw.dirty = make([]int, 0, k)
	dw.label = make([]float64, k)
	dw.hop = make([]topology.NodeID, k)
	dw.settled = make([]bool, k)
	dw.adjOutOff = make([]int32, k+1)
	dw.adjInOff = make([]int32, k+1)
}

// buildAdjacency collects the finite off-diagonal entries of w into flat
// out- and in-neighbour lists (ascending within each vertex). The edge
// arrays regrow only when the edge count exceeds their capacity, so a fixed
// topology stays allocation-free.
func (dw *DeltaWorkspace) buildAdjacency(w *Matrix, k int) {
	for j := 0; j <= k; j++ {
		dw.adjInOff[j] = 0
	}
	edges := 0
	for i := 0; i < k; i++ {
		row := w.Row(i)
		for j := 0; j < k; j++ {
			if i != j && row[j] < Inf {
				edges++
				dw.adjInOff[j+1]++
			}
		}
	}
	// adjInOff[j+1] now holds in-degree(j); turn it into prefix sums.
	for j := 0; j < k; j++ {
		dw.adjInOff[j+1] += dw.adjInOff[j]
	}
	if cap(dw.adjOut) < edges {
		dw.adjOut = make([]int32, edges)
		dw.adjIn = make([]int32, edges)
	}
	dw.adjOut = dw.adjOut[:edges]
	dw.adjIn = dw.adjIn[:edges]
	// In-cursor per vertex; dw.work is free at this point.
	cur := dw.work[:0]
	for j := 0; j < k; j++ {
		cur = append(cur, int(dw.adjInOff[j]))
	}
	n := 0
	for i := 0; i < k; i++ {
		row := w.Row(i)
		dw.adjOutOff[i] = int32(n)
		for j := 0; j < k; j++ {
			if i != j && row[j] < Inf {
				dw.adjOut[n] = int32(j)
				n++
				dw.adjIn[cur[j]] = int32(i)
				cur[j]++
			}
		}
	}
	dw.adjOutOff[k] = int32(n)
}

// diffDirty compares the new and previous weight matrices and collects the
// dirty vertices — both endpoints of every changed edge — in ascending
// order. It returns false when the dirty fraction exceeds the crossover.
func (dw *DeltaWorkspace) diffDirty(newW, oldW *Matrix, k int) bool {
	dw.dirtyMark = resizeBools(dw.dirtyMark, k)
	for i := 0; i < k; i++ {
		a, b := newW.Row(i), oldW.Row(i)
		for j := 0; j < k; j++ {
			if a[j] != b[j] {
				dw.dirtyMark[i] = true
				dw.dirtyMark[j] = true
			}
		}
	}
	dw.dirty = dw.dirty[:0]
	for i := 0; i < k; i++ {
		if dw.dirtyMark[i] {
			dw.dirty = append(dw.dirty, i)
		}
	}
	return float64(len(dw.dirty)) <= dw.dirtyCrossover*float64(k)
}

// markAffected walks the old successor trees towards destination j and
// labels every source whose previous canonical path to j touches a dirty
// vertex (endpoints included). It returns the number of affected sources.
// The labels live in dw.mark, scoped to a fresh epoch per call; every
// vertex other than j is labelled on return.
func (dw *DeltaWorkspace) markAffected(j, k int) int {
	dw.epoch++
	e := dw.epoch << 1
	mark := dw.mark
	if dw.dirtyMark[j] {
		// Every path into a dirty destination touches it.
		for i := 0; i < k; i++ {
			mark[i] = e | 1
		}
		return k - 1
	}
	succ := dw.sp.succ
	walk := dw.walk[:0]
	for i := 0; i < k; i++ {
		if i == j || mark[i] >= e {
			continue
		}
		v := i
		var verdict uint64
		for {
			if mark[v] >= e {
				verdict = mark[v] & 1
				break
			}
			if dw.dirtyMark[v] {
				mark[v] = e | 1
				verdict = 1
				break
			}
			s := succ[v*k+j]
			// Unreachable pairs stay clean: with strictly positive
			// weights any newly appearing path must cross a dirty
			// vertex, which the pivot passes discover.
			if s == topology.Invalid || int(s) == j {
				mark[v] = e
				verdict = 0
				break
			}
			walk = append(walk, v)
			v = int(s)
		}
		for _, u := range walk {
			mark[u] = e | verdict
		}
		walk = walk[:0]
	}
	affected := 0
	for i := 0; i < k; i++ {
		if i != j && mark[i]&1 == 1 {
			affected++
		}
	}
	return affected
}

// repairColumn re-labels the affected sources of destination j with a
// Dijkstra pass restricted to clean intermediates: a source may leave
// through the destination itself, through a clean pair (whose stored
// distance is still exact), or through another affected-but-not-dirty
// vertex once that vertex settles. Dirty vertices may start or end a path
// but never extend one — the subsequent pivot passes own every route
// through them. Settling order is smallest label, ties to the smallest
// vertex id, so the first hops written are the canonical minima.
// markAffected must have run for j in the current epoch.
func (dw *DeltaWorkspace) repairColumn(j, k int, w *Matrix) {
	mark, label, hop := dw.mark, dw.label, dw.hop
	aff := dw.aff[:0]
	for i := 0; i < k; i++ {
		if i != j && mark[i]&1 == 1 {
			aff = append(aff, i)
		}
	}
	dist, succ := &dw.sp.dist, dw.sp.succ
	for _, i := range aff {
		dw.settled[i] = false
		row := w.Row(i)
		best, bh := Inf, topology.Invalid
		for _, h32 := range dw.adjOut[dw.adjOutOff[i]:dw.adjOutOff[i+1]] {
			h := int(h32)
			var cand float64
			if h == j {
				cand = row[h]
			} else if mark[h]&1 == 0 {
				dhj := dist.At(h, j)
				if dhj == Inf {
					continue
				}
				cand = row[h] + dhj
			} else {
				continue
			}
			if cand < best {
				best, bh = cand, topology.NodeID(h)
			} else if cand == best && topology.NodeID(h) < bh {
				bh = topology.NodeID(h)
			}
		}
		label[i], hop[i] = best, bh
	}
	work := append(dw.work[:0], aff...)
	for len(work) > 0 {
		bi := 0
		for x := 1; x < len(work); x++ {
			u, b := work[x], work[bi]
			if label[u] < label[b] || (label[u] == label[b] && u < b) {
				bi = x
			}
		}
		v := work[bi]
		work[bi] = work[len(work)-1]
		work = work[:len(work)-1]
		dw.settled[v] = true
		lv := label[v]
		if lv == Inf {
			// No clean-restricted route: reset to unreachable and let
			// the pivot passes rediscover any path through the dirty set.
			dist.Set(v, j, Inf)
			succ[v*k+j] = topology.Invalid
			continue
		}
		dist.Set(v, j, lv)
		succ[v*k+j] = hop[v]
		if dw.dirtyMark[v] {
			continue
		}
		for _, u32 := range dw.adjIn[dw.adjInOff[v]:dw.adjInOff[v+1]] {
			u := int(u32)
			// Only unsettled affected sources carry labels; mark[j] and
			// settled[j] can be stale, so the destination is skipped
			// explicitly.
			if u == j || mark[u]&1 == 0 || dw.settled[u] {
				continue
			}
			cand := w.At(u, v) + lv
			if cand < label[u] {
				label[u], hop[u] = cand, topology.NodeID(v)
			} else if cand == label[u] && topology.NodeID(v) < hop[u] {
				hop[u] = topology.NodeID(v)
			}
		}
	}
}
