package topology

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		id, err := g.AddNode(Coord{X: i, Y: 0})
		if err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
		if id != NodeID(i) {
			t.Fatalf("AddNode returned ID %d, want %d", id, i)
		}
	}
	if g.NodeCount() != 5 {
		t.Fatalf("NodeCount = %d, want 5", g.NodeCount())
	}
}

func TestAddNodeRejectsDuplicateCoordinate(t *testing.T) {
	g := New()
	if _, err := g.AddNode(Coord{X: 1, Y: 1}); err != nil {
		t.Fatalf("first AddNode: %v", err)
	}
	if _, err := g.AddNode(Coord{X: 1, Y: 1}); !errors.Is(err, ErrDuplicateCoord) {
		t.Fatalf("duplicate AddNode error = %v, want ErrDuplicateCoord", err)
	}
}

func TestMustAddNodePanicsOnDuplicate(t *testing.T) {
	g := New()
	g.MustAddNode(Coord{X: 0, Y: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddNode did not panic on duplicate coordinate")
		}
	}()
	g.MustAddNode(Coord{X: 0, Y: 0})
}

func TestAddLinkValidation(t *testing.T) {
	g := New()
	a := g.MustAddNode(Coord{X: 0, Y: 0})
	b := g.MustAddNode(Coord{X: 1, Y: 0})

	tests := []struct {
		name    string
		from    NodeID
		to      NodeID
		length  float64
		wantErr error
	}{
		{"unknown source", 99, b, 1, ErrUnknownNode},
		{"unknown destination", a, 99, 1, ErrUnknownNode},
		{"self link", a, a, 1, ErrSelfLink},
		{"zero length", a, b, 0, ErrBadLength},
		{"negative length", a, b, -2, ErrBadLength},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := g.AddLink(tc.from, tc.to, tc.length); !errors.Is(err, tc.wantErr) {
				t.Fatalf("AddLink error = %v, want %v", err, tc.wantErr)
			}
		})
	}

	if err := g.AddLink(a, b, 1); err != nil {
		t.Fatalf("valid AddLink: %v", err)
	}
	if err := g.AddLink(a, b, 1); !errors.Is(err, ErrDuplicateLink) {
		t.Fatalf("duplicate AddLink error = %v, want ErrDuplicateLink", err)
	}
}

func TestAddBiLinkCreatesBothDirections(t *testing.T) {
	g := New()
	a := g.MustAddNode(Coord{X: 0, Y: 0})
	b := g.MustAddNode(Coord{X: 1, Y: 0})
	if err := g.AddBiLink(a, b, 2.5); err != nil {
		t.Fatalf("AddBiLink: %v", err)
	}
	if _, ok := g.Link(a, b); !ok {
		t.Error("link a->b missing")
	}
	if _, ok := g.Link(b, a); !ok {
		t.Error("link b->a missing")
	}
	if g.LinkCount() != 2 {
		t.Errorf("LinkCount = %d, want 2", g.LinkCount())
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := New()
	a := g.MustAddNode(Coord{X: 0, Y: 0})
	b := g.MustAddNode(Coord{X: 1, Y: 0})
	c := g.MustAddNode(Coord{X: 2, Y: 0})
	if err := g.AddLink(a, c, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(a, b, 1); err != nil {
		t.Fatal(err)
	}
	got := g.Neighbors(a)
	if len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("Neighbors(a) = %v, want [%d %d] sorted", got, b, c)
	}
	if g.Degree(a) != 2 || g.Degree(b) != 0 {
		t.Fatalf("Degree(a)=%d Degree(b)=%d, want 2 and 0", g.Degree(a), g.Degree(b))
	}
}

func TestNodeLookupErrors(t *testing.T) {
	g := New()
	if _, err := g.Node(0); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Node(0) on empty graph error = %v, want ErrUnknownNode", err)
	}
	if g.Has(-1) || g.Has(0) {
		t.Fatal("Has reported membership for nodes that do not exist")
	}
}

func TestCoordinatePanicsOnUnknownNode(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Coordinate did not panic for unknown node")
		}
	}()
	g.Coordinate(3)
}

func TestConnectedFromRespectsKeepSet(t *testing.T) {
	// a <-> b <-> c, where removing b disconnects a from c.
	g := New()
	a := g.MustAddNode(Coord{X: 0, Y: 0})
	b := g.MustAddNode(Coord{X: 1, Y: 0})
	c := g.MustAddNode(Coord{X: 2, Y: 0})
	if err := g.AddBiLink(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBiLink(b, c, 1); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("line graph should be connected")
	}
	keep := map[NodeID]bool{a: true, c: true}
	if g.ConnectedFrom(a, keep) {
		t.Fatal("a and c should be disconnected once b is excluded")
	}
	keep[b] = true
	if !g.ConnectedFrom(a, keep) {
		t.Fatal("a, b, c should be connected when all are kept")
	}
	if g.ConnectedFrom(a, map[NodeID]bool{b: true, c: true}) {
		t.Fatal("source excluded from keep set must not be reported connected")
	}
}

func TestMeshConstruction4x4(t *testing.T) {
	m, err := NewMesh(4, 4, 1)
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	if m.Size() != 16 || m.NodeCount() != 16 {
		t.Fatalf("mesh size = %d nodes, want 16", m.NodeCount())
	}
	// 2*w*h - w - h undirected edges, times two for directed links.
	wantLinks := 2 * (2*4*4 - 4 - 4)
	if m.LinkCount() != wantLinks {
		t.Fatalf("LinkCount = %d, want %d", m.LinkCount(), wantLinks)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !m.Connected() {
		t.Fatal("mesh must be connected")
	}
	// Corner nodes have degree 2, edges 3, interior 4.
	corner, _ := m.IDAt(1, 1)
	edge, _ := m.IDAt(2, 1)
	inner, _ := m.IDAt(2, 2)
	if d := m.Degree(corner); d != 2 {
		t.Errorf("corner degree = %d, want 2", d)
	}
	if d := m.Degree(edge); d != 3 {
		t.Errorf("edge degree = %d, want 3", d)
	}
	if d := m.Degree(inner); d != 4 {
		t.Errorf("inner degree = %d, want 4", d)
	}
}

func TestMeshRejectsInvalidArguments(t *testing.T) {
	if _, err := NewMesh(0, 4, 1); err == nil {
		t.Error("NewMesh(0,4) should fail")
	}
	if _, err := NewMesh(4, -1, 1); err == nil {
		t.Error("NewMesh(4,-1) should fail")
	}
	if _, err := NewMesh(4, 4, 0); err == nil {
		t.Error("NewMesh with zero spacing should fail")
	}
}

func TestMeshAccessors(t *testing.T) {
	m := MustMesh(5, 3, 2.0)
	if m.Width() != 5 || m.Height() != 3 {
		t.Fatalf("dimensions = %dx%d, want 5x3", m.Width(), m.Height())
	}
	if m.SpacingCM() != 2.0 {
		t.Fatalf("SpacingCM = %g, want 2", m.SpacingCM())
	}
	if got := m.String(); got != "5x3 mesh (2 cm spacing)" {
		t.Fatalf("String = %q", got)
	}
	center := m.Center()
	if m.Coordinate(center) != (Coord{X: 3, Y: 2}) {
		t.Fatalf("Center at %v, want (3,2)", m.Coordinate(center))
	}
	corner := m.Corner()
	if m.Coordinate(corner) != (Coord{X: 1, Y: 1}) {
		t.Fatalf("Corner at %v, want (1,1)", m.Coordinate(corner))
	}
}

func TestSquareMeshMatchesPaperSizes(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 8} {
		m, err := NewSquareMesh(n)
		if err != nil {
			t.Fatalf("NewSquareMesh(%d): %v", n, err)
		}
		if m.Size() != n*n {
			t.Errorf("NewSquareMesh(%d).Size() = %d, want %d", n, m.Size(), n*n)
		}
		if m.SpacingCM() != DefaultSpacingCM {
			t.Errorf("NewSquareMesh(%d) spacing = %g, want default", n, m.SpacingCM())
		}
	}
}

func TestMeshLinkLengthsEqualSpacing(t *testing.T) {
	m := MustMesh(3, 3, 7.5)
	for _, l := range m.Links() {
		if l.LengthCM != 7.5 {
			t.Fatalf("link %d->%d length %g, want 7.5", l.From, l.To, l.LengthCM)
		}
	}
}

func TestManhattanDistanceProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by int8) bool {
		a := Coord{X: int(ax), Y: int(ay)}
		b := Coord{X: int(bx), Y: int(by)}
		return a.Manhattan(b) == b.Manhattan(a) && a.Manhattan(a) == 0 && a.Manhattan(b) >= 0
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Fatal(err)
	}
	triangle := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Coord{X: int(ax), Y: int(ay)}
		b := Coord{X: int(bx), Y: int(by)}
		c := Coord{X: int(cx), Y: int(cy)}
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshNeighborsAreManhattanAdjacent(t *testing.T) {
	m := MustMesh(6, 4, 1)
	for _, n := range m.Nodes() {
		for _, nb := range m.Neighbors(n.ID) {
			if d := n.Pos.Manhattan(m.Coordinate(nb)); d != 1 {
				t.Fatalf("neighbor %v of %v at Manhattan distance %d, want 1",
					m.Coordinate(nb), n.Pos, d)
			}
		}
	}
}

func TestMeshPropertyRandomSizes(t *testing.T) {
	prop := func(w, h uint8) bool {
		width := int(w%7) + 1
		height := int(h%7) + 1
		m, err := NewMesh(width, height, 1)
		if err != nil {
			return false
		}
		if m.NodeCount() != width*height {
			return false
		}
		wantLinks := 2 * (2*width*height - width - height)
		return m.LinkCount() == wantLinks && m.Connected() && m.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLinksAreSortedAndShared(t *testing.T) {
	m := MustMesh(2, 2, 1)
	links := m.Links()
	for i := 1; i < len(links); i++ {
		prev, cur := links[i-1], links[i]
		if prev.From > cur.From || (prev.From == cur.From && prev.To >= cur.To) {
			t.Fatalf("links not strictly sorted at index %d: %v then %v", i, prev, cur)
		}
	}
	// Links() is a zero-alloc read of the incrementally maintained slice
	// (callers must treat it as read-only), and the ordering invariant must
	// survive mutation: removing and re-adding a link keeps the slice sorted
	// and consistent with the link map.
	if allocs := testing.AllocsPerRun(10, func() { m.Links() }); allocs != 0 {
		t.Errorf("Links() allocated %.1f times per call, want 0", allocs)
	}
	victim := links[0]
	if err := m.RemoveLink(victim.From, victim.To); err != nil {
		t.Fatal(err)
	}
	if err := m.AddLink(victim.From, victim.To, victim.LengthCM); err != nil {
		t.Fatal(err)
	}
	links = m.Links()
	if len(links) != m.LinkCount() {
		t.Fatalf("Links() has %d entries, want %d", len(links), m.LinkCount())
	}
	for i, l := range links {
		if i > 0 && (links[i-1].From > l.From || (links[i-1].From == l.From && links[i-1].To >= l.To)) {
			t.Fatalf("links not strictly sorted after remove/re-add at index %d", i)
		}
		got, ok := m.Link(l.From, l.To)
		if !ok || got != l {
			t.Fatalf("sorted slice entry %v disagrees with link map (%v, %v)", l, got, ok)
		}
	}
}

func TestOutAndInLinksAgree(t *testing.T) {
	m := MustMesh(3, 3, 1)
	for _, n := range m.Nodes() {
		for _, l := range m.OutLinks(n.ID) {
			found := false
			for _, in := range m.InLinks(l.To) {
				if in.From == n.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("out link %d->%d has no matching in link", l.From, l.To)
			}
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := New()
	a := g.MustAddNode(Coord{X: 0, Y: 0})
	b := g.MustAddNode(Coord{X: 1, Y: 0})
	if err := g.AddLink(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph reported error: %v", err)
	}
	// Corrupt the link index deliberately.
	g.links[[2]NodeID{a, b}] = Link{From: a, To: b, LengthCM: -1}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed corrupted link length")
	}
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	m := MustMesh(4, 4, 1)
	c := m.Graph.Clone()
	if c.NodeCount() != m.NodeCount() || c.LinkCount() != m.LinkCount() {
		t.Fatalf("clone shape %d nodes/%d links, want %d/%d",
			c.NodeCount(), c.LinkCount(), m.NodeCount(), m.LinkCount())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone fails validation: %v", err)
	}
	for _, l := range m.Links() {
		got, ok := c.Link(l.From, l.To)
		if !ok || got.LengthCM != l.LengthCM {
			t.Fatalf("clone missing or differing link %d -> %d", l.From, l.To)
		}
	}
	// Mutating the clone must leave the original untouched, and vice versa.
	before := m.LinkCount()
	if _, _, err := FailLinks(c, 0.3, 7); err != nil {
		t.Fatal(err)
	}
	if c.LinkCount() >= before {
		t.Fatal("FailLinks removed nothing from the clone")
	}
	if m.LinkCount() != before {
		t.Fatalf("mutating the clone changed the original: %d links, want %d", m.LinkCount(), before)
	}
	id, _ := m.IDAt(1, 1)
	nb, _ := m.IDAt(2, 1)
	if err := m.RemoveBiLink(id, nb); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Link(id, nb); !ok {
		// The clone kept this link only if FailLinks didn't happen to remove
		// it; either way the original's removal must not propagate, which is
		// what the LinkCount comparison below establishes.
		t.Log("link also absent from clone (removed by FailLinks)")
	}
	if c.LinkCount() == m.LinkCount() {
		t.Fatal("clone and original unexpectedly track each other")
	}
}
