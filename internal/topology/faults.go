package topology

import "fmt"

// This file models the wear-and-tear aspect that motivates the paper's move
// from a bus to a network architecture: textile interconnects break under
// repeated washing and bending, so the platform must keep operating on a
// degraded topology. RemoveLink/RemoveBiLink delete individual interconnects
// and FailLinks injects a deterministic pseudo-random fault pattern while
// preserving connectivity.

// ErrLinkNotFound is returned when removing a link that does not exist.
var ErrLinkNotFound = fmt.Errorf("topology: link not found")

// RemoveLink deletes the directed link from -> to.
func (g *Graph) RemoveLink(from, to NodeID) error {
	key := [2]NodeID{from, to}
	if _, ok := g.links[key]; !ok {
		return fmt.Errorf("%w: %d -> %d", ErrLinkNotFound, from, to)
	}
	delete(g.links, key)
	g.out[from] = dropLink(g.out[from], from, to)
	g.in[to] = dropLink(g.in[to], from, to)
	g.sorted = dropLink(g.sorted, from, to)
	return nil
}

// RemoveBiLink deletes both directed links between a and b.
func (g *Graph) RemoveBiLink(a, b NodeID) error {
	if err := g.RemoveLink(a, b); err != nil {
		return err
	}
	return g.RemoveLink(b, a)
}

func dropLink(links []Link, from, to NodeID) []Link {
	out := links[:0]
	for _, l := range links {
		if l.From == from && l.To == to {
			continue
		}
		out = append(out, l)
	}
	return out
}

// FailLinks removes approximately the given fraction of the graph's
// bidirectional interconnects, chosen by a deterministic pseudo-random
// sequence seeded with seed. A removal that would disconnect the graph is
// skipped, so the surviving platform can always still route around the
// failures (a fully partitioned garment is simply dead and not an
// interesting routing scenario). It returns the undirected links that were
// actually removed, plus the shortfall: how many of the targeted removals
// could not be performed because every remaining candidate would have
// partitioned the fabric. A shortfall is not an error — a garment that
// cannot shed that many links simply sheds fewer — but callers sweeping the
// fraction axis near saturation should check it rather than assume the
// requested damage landed.
func FailLinks(g *Graph, fraction float64, seed uint64) ([]Link, int, error) {
	if fraction < 0 || fraction >= 1 {
		return nil, 0, fmt.Errorf("topology: failure fraction must be in [0,1), got %g", fraction)
	}
	if fraction == 0 {
		return nil, 0, nil
	}
	// Collect the undirected links (From < To) in deterministic order.
	var undirected []Link
	for _, l := range g.Links() {
		if l.From < l.To {
			undirected = append(undirected, l)
		}
	}
	target := int(float64(len(undirected)) * fraction)
	state := seed*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	// Shuffle the candidate list deterministically.
	for i := len(undirected) - 1; i > 0; i-- {
		j := next(i + 1)
		undirected[i], undirected[j] = undirected[j], undirected[i]
	}
	var removed []Link
	for _, l := range undirected {
		if len(removed) >= target {
			break
		}
		if err := g.RemoveBiLink(l.From, l.To); err != nil {
			return removed, target - len(removed), err
		}
		if g.Connected() {
			removed = append(removed, l)
			continue
		}
		// Undo a removal that partitions the fabric.
		if err := g.AddBiLink(l.From, l.To, l.LengthCM); err != nil {
			return removed, target - len(removed), err
		}
	}
	return removed, target - len(removed), nil
}

// Torus is a 2D mesh with wrap-around links in both dimensions, an
// alternative e-textile topology (e.g. a sleeve or a tubular garment) with a
// smaller network diameter than the open mesh.
type Torus struct {
	*Mesh
}

// NewTorus builds a width x height torus with the given inter-node spacing.
// The wrap-around links are physically longer than the regular ones: they
// have to span the whole row or column, so their length is (width-1) or
// (height-1) times the spacing.
func NewTorus(width, height int, spacingCM float64) (*Torus, error) {
	m, err := NewMesh(width, height, spacingCM)
	if err != nil {
		return nil, err
	}
	if width > 2 {
		for y := 1; y <= height; y++ {
			first, _ := m.IDAt(1, y)
			last, _ := m.IDAt(width, y)
			if err := m.AddBiLink(first, last, float64(width-1)*spacingCM); err != nil {
				return nil, err
			}
		}
	}
	if height > 2 {
		for x := 1; x <= width; x++ {
			first, _ := m.IDAt(x, 1)
			last, _ := m.IDAt(x, height)
			if err := m.AddBiLink(first, last, float64(height-1)*spacingCM); err != nil {
				return nil, err
			}
		}
	}
	return &Torus{Mesh: m}, nil
}

// String describes the torus briefly.
func (t *Torus) String() string {
	return fmt.Sprintf("%dx%d torus (%g cm spacing)", t.Width(), t.Height(), t.SpacingCM())
}
