package topology

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRemoveLink(t *testing.T) {
	m := MustMesh(3, 3, 1)
	a, _ := m.IDAt(1, 1)
	b, _ := m.IDAt(2, 1)
	before := m.LinkCount()
	if err := m.RemoveLink(a, b); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Link(a, b); ok {
		t.Fatal("link still present after removal")
	}
	if _, ok := m.Link(b, a); !ok {
		t.Fatal("reverse link should still exist after a one-way removal")
	}
	if m.LinkCount() != before-1 {
		t.Fatalf("LinkCount = %d, want %d", m.LinkCount(), before-1)
	}
	if err := m.RemoveLink(a, b); !errors.Is(err, ErrLinkNotFound) {
		t.Fatalf("second removal error = %v, want ErrLinkNotFound", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("graph invalid after removal: %v", err)
	}
	// Neighbour lists must no longer mention the removed link.
	for _, nb := range m.Neighbors(a) {
		if nb == b {
			t.Fatal("removed link still listed in Neighbors")
		}
	}
}

func TestRemoveBiLink(t *testing.T) {
	m := MustMesh(2, 2, 1)
	a, _ := m.IDAt(1, 1)
	b, _ := m.IDAt(2, 1)
	if err := m.RemoveBiLink(a, b); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Link(a, b); ok {
		t.Error("forward link survived RemoveBiLink")
	}
	if _, ok := m.Link(b, a); ok {
		t.Error("reverse link survived RemoveBiLink")
	}
	if err := m.RemoveBiLink(a, b); err == nil {
		t.Error("removing a missing bidirectional link should fail")
	}
	// The 2x2 mesh without one edge is still connected via the other path.
	if !m.Connected() {
		t.Error("2x2 mesh should survive a single bidirectional link failure")
	}
}

func TestFailLinksPreservesConnectivity(t *testing.T) {
	for _, fraction := range []float64{0.1, 0.25, 0.4} {
		m := MustMesh(6, 6, 1)
		before := m.LinkCount()
		removed, shortfall, err := FailLinks(m.Graph, fraction, 7)
		if err != nil {
			t.Fatalf("fraction %g: %v", fraction, err)
		}
		if len(removed) == 0 {
			t.Errorf("fraction %g removed no links", fraction)
		}
		// Accounting invariant: removals plus reported shortfall equal the
		// requested target.
		if target := int(float64(before/2) * fraction); len(removed)+shortfall != target {
			t.Errorf("fraction %g: removed %d + shortfall %d != target %d",
				fraction, len(removed), shortfall, target)
		}
		if m.LinkCount() != before-2*len(removed) {
			t.Errorf("fraction %g: link count %d, want %d", fraction, m.LinkCount(), before-2*len(removed))
		}
		if !m.Connected() {
			t.Errorf("fraction %g: fault injection disconnected the mesh", fraction)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("fraction %g: %v", fraction, err)
		}
	}
}

func TestFailLinksDeterministicPerSeed(t *testing.T) {
	m1 := MustMesh(5, 5, 1)
	m2 := MustMesh(5, 5, 1)
	r1, _, err := FailLinks(m1.Graph, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := FailLinks(m2.Graph, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("same seed removed %d vs %d links", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("same seed removed different links at index %d: %v vs %v", i, r1[i], r2[i])
		}
	}
	m3 := MustMesh(5, 5, 1)
	r3, _, err := FailLinks(m3.Graph, 0.2, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := len(r1) == len(r3)
	if same {
		for i := range r1 {
			if r1[i] != r3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault patterns (suspicious)")
	}
}

func TestFailLinksValidation(t *testing.T) {
	m := MustMesh(3, 3, 1)
	if _, _, err := FailLinks(m.Graph, -0.1, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, _, err := FailLinks(m.Graph, 1.0, 1); err == nil {
		t.Error("fraction 1.0 accepted")
	}
	removed, shortfall, err := FailLinks(m.Graph, 0, 1)
	if err != nil || removed != nil || shortfall != 0 {
		t.Errorf("zero fraction: removed %v, shortfall %d, err %v", removed, shortfall, err)
	}
}

// TestFailLinksNearSaturationReportsShortfall pins the silent-shortfall fix:
// on a 2xN ladder almost every link is a bridge once a few rungs are gone,
// so a near-1 fraction cannot possibly land — FailLinks must stay connected
// AND report exactly how many targeted removals it had to skip, instead of
// silently delivering a fraction of the requested damage.
func TestFailLinksNearSaturationReportsShortfall(t *testing.T) {
	m := MustMesh(2, 8, 1)
	undirected := m.LinkCount() / 2
	removed, shortfall, err := FailLinks(m.Graph, 0.99, 3)
	if err != nil {
		t.Fatal(err)
	}
	target := int(float64(undirected) * 0.99)
	if len(removed)+shortfall != target {
		t.Fatalf("removed %d + shortfall %d != target %d", len(removed), shortfall, target)
	}
	if shortfall == 0 {
		t.Fatalf("near-saturation fraction reported no shortfall (removed %d of %d undirected links)",
			len(removed), undirected)
	}
	// The graph must keep a spanning tree: 2*8 nodes need 15 undirected links.
	if kept := undirected - len(removed); kept < 15 {
		t.Fatalf("only %d undirected links survive — below spanning-tree minimum", kept)
	}
	if !m.Connected() {
		t.Fatal("near-saturation fault injection disconnected the ladder")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFailLinksConnectivityProperty(t *testing.T) {
	prop := func(seed uint16, fracRaw uint8) bool {
		m := MustMesh(5, 4, 1)
		fraction := float64(fracRaw%50) / 100.0
		if _, _, err := FailLinks(m.Graph, fraction, uint64(seed)); err != nil {
			return false
		}
		return m.Connected() && m.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusConstruction(t *testing.T) {
	torus, err := NewTorus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 4x4 torus is 4-regular: every node has exactly four neighbours.
	for _, n := range torus.Nodes() {
		if d := torus.Degree(n.ID); d != 4 {
			t.Errorf("node %v degree = %d, want 4", n.Pos, d)
		}
	}
	if !torus.Connected() {
		t.Error("torus not connected")
	}
	if err := torus.Validate(); err != nil {
		t.Error(err)
	}
	// Wrap-around links span the whole row: length 3 cm on a 4-wide torus.
	a, _ := torus.IDAt(1, 1)
	b, _ := torus.IDAt(4, 1)
	l, ok := torus.Link(a, b)
	if !ok || l.LengthCM != 3 {
		t.Errorf("wrap-around link = %+v, want length 3", l)
	}
	if torus.String() != "4x4 torus (1 cm spacing)" {
		t.Errorf("String = %q", torus.String())
	}
}

func TestTorusSmallDimensionsSkipWrapAround(t *testing.T) {
	// With width or height <= 2 a wrap-around link would duplicate an
	// existing neighbour link; the constructor must skip it.
	torus, err := NewTorus(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := torus.Validate(); err != nil {
		t.Fatal(err)
	}
	a, _ := torus.IDAt(1, 1)
	if d := torus.Degree(a); d != 3 {
		t.Errorf("corner degree on a 2x3 torus = %d, want 3 (right, down, wrap-down)", d)
	}
	if _, err := NewTorus(0, 3, 1); err == nil {
		t.Error("invalid torus dimensions accepted")
	}
}

func TestTorusShortensWorstCaseDistance(t *testing.T) {
	mesh := MustMesh(6, 6, 1)
	torus, err := NewTorus(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Hop-count diameter of the open mesh is 10; the torus halves it.
	meshCorner1, _ := mesh.IDAt(1, 1)
	meshCorner2, _ := mesh.IDAt(6, 6)
	torusCorner1, _ := torus.IDAt(1, 1)
	torusCorner2, _ := torus.IDAt(6, 6)
	meshHops := bfsHops(mesh.Graph, meshCorner1, meshCorner2)
	torusHops := bfsHops(torus.Graph, torusCorner1, torusCorner2)
	if torusHops >= meshHops {
		t.Errorf("torus corner distance %d not shorter than mesh %d", torusHops, meshHops)
	}
}

// bfsHops returns the hop count of the shortest path between two nodes.
func bfsHops(g *Graph, from, to NodeID) int {
	dist := map[NodeID]int{from: 0}
	queue := []NodeID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			return dist[cur]
		}
		for _, nb := range g.Neighbors(cur) {
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return -1
}
