// Package topology models the wired communication fabric of an e-textile
// platform: nodes woven into the garment, directed interconnects made of
// textile transmission lines, and the 2D mesh structure used throughout the
// paper "Energy-Aware Routing for E-Textile Applications" (DATE 2005).
//
// A Graph is a directed multigraph restricted to at most one link per ordered
// node pair. Links carry a physical length in centimetres; the energy cost of
// driving a packet across a link is derived from that length by the energy
// package. Mesh construction follows the paper's coordinate convention where
// node (1,1) sits in the top-left corner and coordinates are 1-based.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph. IDs are dense and start at 0 so
// they can be used directly as matrix indices by the routing package.
type NodeID int

// Invalid is the zero-value-adjacent sentinel returned when a lookup fails.
const Invalid NodeID = -1

// Coord is a 1-based grid coordinate as used by the paper (Fig 3b).
type Coord struct {
	X int
	Y int
}

// String renders the coordinate in the paper's "(x,y)" notation.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Manhattan returns the Manhattan (L1) distance between two coordinates,
// i.e. the minimum hop count between the corresponding mesh nodes.
func (c Coord) Manhattan(o Coord) int {
	dx := c.X - o.X
	if dx < 0 {
		dx = -dx
	}
	dy := c.Y - o.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Node is a computational site on the fabric. The module mapped to a node and
// its battery live in higher-level packages; topology only knows position.
type Node struct {
	ID  NodeID
	Pos Coord
}

// Link is a directed interconnect between two nodes. LengthCM is the physical
// length of the textile transmission line implementing it.
type Link struct {
	From     NodeID
	To       NodeID
	LengthCM float64
}

// Graph is a directed graph of nodes and links. The zero value is not usable;
// construct graphs with New or NewMesh.
type Graph struct {
	nodes   []Node
	out     map[NodeID][]Link
	in      map[NodeID][]Link
	links   map[[2]NodeID]Link
	byCoord map[Coord]NodeID
	// sorted mirrors links ordered by (From, To). It is maintained
	// incrementally on every mutation so Links() — called by the routing
	// phase-1 weight build on every controller recompute — is a zero-cost,
	// allocation-free read.
	sorted []Link
}

// New returns an empty graph ready for AddNode / AddLink calls.
func New() *Graph {
	return &Graph{
		out:     make(map[NodeID][]Link),
		in:      make(map[NodeID][]Link),
		links:   make(map[[2]NodeID]Link),
		byCoord: make(map[Coord]NodeID),
	}
}

// Errors returned by graph mutation and lookup operations.
var (
	ErrDuplicateCoord = errors.New("topology: a node already occupies that coordinate")
	ErrUnknownNode    = errors.New("topology: unknown node")
	ErrSelfLink       = errors.New("topology: self links are not allowed")
	ErrDuplicateLink  = errors.New("topology: link already exists")
	ErrBadLength      = errors.New("topology: link length must be positive")
)

// AddNode adds a node at the given coordinate and returns its ID.
// Coordinates must be unique within a graph.
func (g *Graph) AddNode(pos Coord) (NodeID, error) {
	if _, ok := g.byCoord[pos]; ok {
		return Invalid, fmt.Errorf("%w: %v", ErrDuplicateCoord, pos)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Pos: pos})
	g.byCoord[pos] = id
	return id, nil
}

// MustAddNode is AddNode for construction code where a duplicate coordinate
// is a programming error.
func (g *Graph) MustAddNode(pos Coord) NodeID {
	id, err := g.AddNode(pos)
	if err != nil {
		panic(err)
	}
	return id
}

// AddLink adds a directed link from one node to another with the given
// physical length in centimetres.
func (g *Graph) AddLink(from, to NodeID, lengthCM float64) error {
	if !g.Has(from) || !g.Has(to) {
		return fmt.Errorf("%w: %d -> %d", ErrUnknownNode, from, to)
	}
	if from == to {
		return fmt.Errorf("%w: node %d", ErrSelfLink, from)
	}
	if lengthCM <= 0 {
		return fmt.Errorf("%w: %g cm", ErrBadLength, lengthCM)
	}
	key := [2]NodeID{from, to}
	if _, ok := g.links[key]; ok {
		return fmt.Errorf("%w: %d -> %d", ErrDuplicateLink, from, to)
	}
	l := Link{From: from, To: to, LengthCM: lengthCM}
	g.links[key] = l
	g.out[from] = append(g.out[from], l)
	g.in[to] = append(g.in[to], l)
	idx := sort.Search(len(g.sorted), func(i int) bool {
		if g.sorted[i].From != from {
			return g.sorted[i].From > from
		}
		return g.sorted[i].To > to
	})
	g.sorted = append(g.sorted, Link{})
	copy(g.sorted[idx+1:], g.sorted[idx:])
	g.sorted[idx] = l
	return nil
}

// AddBiLink adds a pair of directed links (one in each direction) of equal
// length between two nodes.
func (g *Graph) AddBiLink(a, b NodeID, lengthCM float64) error {
	if err := g.AddLink(a, b, lengthCM); err != nil {
		return err
	}
	return g.AddLink(b, a, lengthCM)
}

// Clone returns a deep copy of the graph: mutations of the copy (link
// removal, fault injection) never affect the original. Node IDs and
// coordinates are preserved.
func (g *Graph) Clone() *Graph {
	c := New()
	c.nodes = append(c.nodes, g.nodes...)
	for pos, id := range g.byCoord {
		c.byCoord[pos] = id
	}
	for key, l := range g.links {
		c.links[key] = l
	}
	for id, ls := range g.out {
		c.out[id] = append([]Link(nil), ls...)
	}
	for id, ls := range g.in {
		c.in[id] = append([]Link(nil), ls...)
	}
	c.sorted = append([]Link(nil), g.sorted...)
	return c
}

// Has reports whether the graph contains a node with the given ID.
func (g *Graph) Has(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// NodeCount returns the number of nodes in the graph.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// LinkCount returns the number of directed links in the graph.
func (g *Graph) LinkCount() int { return len(g.links) }

// Nodes returns all nodes ordered by ID. The returned slice is a copy.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (Node, error) {
	if !g.Has(id) {
		return Node{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return g.nodes[id], nil
}

// Coordinate returns the coordinate of a node. It panics on unknown IDs,
// which indicates a programming error.
func (g *Graph) Coordinate(id NodeID) Coord {
	if !g.Has(id) {
		panic(fmt.Sprintf("topology: Coordinate of unknown node %d", id))
	}
	return g.nodes[id].Pos
}

// NodeAt returns the node occupying the given coordinate, if any.
func (g *Graph) NodeAt(pos Coord) (NodeID, bool) {
	id, ok := g.byCoord[pos]
	return id, ok
}

// Links returns every directed link, ordered by (From, To). The returned
// slice is shared with the graph and maintained incrementally — callers must
// not modify it. Reading it performs no allocation, which keeps the routing
// phase-1 weight build allocation-free.
func (g *Graph) Links() []Link {
	return g.sorted
}

// Link returns the directed link between two nodes if it exists.
func (g *Graph) Link(from, to NodeID) (Link, bool) {
	l, ok := g.links[[2]NodeID{from, to}]
	return l, ok
}

// OutLinks returns the outgoing links of a node ordered by destination ID.
func (g *Graph) OutLinks(id NodeID) []Link {
	ls := make([]Link, len(g.out[id]))
	copy(ls, g.out[id])
	sort.Slice(ls, func(i, j int) bool { return ls[i].To < ls[j].To })
	return ls
}

// InLinks returns the incoming links of a node ordered by source ID.
func (g *Graph) InLinks(id NodeID) []Link {
	ls := make([]Link, len(g.in[id]))
	copy(ls, g.in[id])
	sort.Slice(ls, func(i, j int) bool { return ls[i].From < ls[j].From })
	return ls
}

// Neighbors returns the IDs of nodes reachable over one outgoing link,
// ordered by ID.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.out[id]))
	for _, l := range g.out[id] {
		out = append(out, l.To)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the out-degree of a node.
func (g *Graph) Degree(id NodeID) int { return len(g.out[id]) }

// ConnectedFrom reports whether every node in the keep set is reachable from
// the given source using only links whose endpoints are both in keep.
// A nil keep set means "all nodes".
func (g *Graph) ConnectedFrom(src NodeID, keep map[NodeID]bool) bool {
	if !g.Has(src) {
		return false
	}
	allowed := func(id NodeID) bool {
		if keep == nil {
			return true
		}
		return keep[id]
	}
	if !allowed(src) {
		return false
	}
	seen := map[NodeID]bool{src: true}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range g.out[cur] {
			if !allowed(l.To) || seen[l.To] {
				continue
			}
			seen[l.To] = true
			queue = append(queue, l.To)
		}
	}
	if keep == nil {
		return len(seen) == len(g.nodes)
	}
	for id, ok := range keep {
		if ok && !seen[id] {
			return false
		}
	}
	return true
}

// Connected reports whether the whole graph is strongly connected from node 0.
// For the symmetric meshes used in the paper this is equivalent to full
// strong connectivity.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	return g.ConnectedFrom(g.nodes[0].ID, nil)
}

// Validate performs structural sanity checks and returns the first problem
// found, or nil if the graph is well formed.
func (g *Graph) Validate() error {
	for _, n := range g.nodes {
		if got, ok := g.byCoord[n.Pos]; !ok || got != n.ID {
			return fmt.Errorf("topology: coordinate index out of sync at node %d", n.ID)
		}
	}
	for key, l := range g.links {
		if key[0] != l.From || key[1] != l.To {
			return fmt.Errorf("topology: link index out of sync for %v", key)
		}
		if !g.Has(l.From) || !g.Has(l.To) {
			return fmt.Errorf("topology: dangling link %d -> %d", l.From, l.To)
		}
		if l.LengthCM <= 0 {
			return fmt.Errorf("topology: non-positive length on link %d -> %d", l.From, l.To)
		}
	}
	return nil
}
