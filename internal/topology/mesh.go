package topology

import "fmt"

// Mesh is a 2D mesh network, the default architecture supported by et_sim.
// Coordinates follow the paper's Fig 3(b): 1-based, (1,1) in the top-left,
// X increasing to the right and Y increasing downwards. Every pair of
// orthogonally adjacent nodes is connected by a pair of directed links of
// equal physical length.
type Mesh struct {
	*Graph
	width     int
	height    int
	spacingCM float64
}

// DefaultSpacingCM is the default physical distance between adjacent mesh
// nodes. The paper does not state the spacing explicitly; 1 cm is the
// calibration that reproduces the Table 2 upper-bound column together with
// the 261-bit packet (see DESIGN.md, "Substitutions").
const DefaultSpacingCM = 1.0

// NewMesh builds a width x height mesh with the given inter-node spacing in
// centimetres. Width and height must be at least 1 and spacing positive.
func NewMesh(width, height int, spacingCM float64) (*Mesh, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("topology: invalid mesh dimensions %dx%d", width, height)
	}
	if spacingCM <= 0 {
		return nil, fmt.Errorf("%w: %g cm", ErrBadLength, spacingCM)
	}
	m := &Mesh{Graph: New(), width: width, height: height, spacingCM: spacingCM}
	for y := 1; y <= height; y++ {
		for x := 1; x <= width; x++ {
			if _, err := m.AddNode(Coord{X: x, Y: y}); err != nil {
				return nil, err
			}
		}
	}
	for y := 1; y <= height; y++ {
		for x := 1; x <= width; x++ {
			id, _ := m.NodeAt(Coord{X: x, Y: y})
			if x < width {
				right, _ := m.NodeAt(Coord{X: x + 1, Y: y})
				if err := m.AddBiLink(id, right, spacingCM); err != nil {
					return nil, err
				}
			}
			if y < height {
				down, _ := m.NodeAt(Coord{X: x, Y: y + 1})
				if err := m.AddBiLink(id, down, spacingCM); err != nil {
					return nil, err
				}
			}
		}
	}
	return m, nil
}

// MustMesh is NewMesh for construction code with statically valid arguments.
func MustMesh(width, height int, spacingCM float64) *Mesh {
	m, err := NewMesh(width, height, spacingCM)
	if err != nil {
		panic(err)
	}
	return m
}

// NewSquareMesh builds an n x n mesh with the default spacing, matching the
// "4x4 .. 8x8 mesh network" configurations evaluated in the paper.
func NewSquareMesh(n int) (*Mesh, error) { return NewMesh(n, n, DefaultSpacingCM) }

// Width returns the number of columns in the mesh.
func (m *Mesh) Width() int { return m.width }

// Height returns the number of rows in the mesh.
func (m *Mesh) Height() int { return m.height }

// SpacingCM returns the physical distance between adjacent nodes.
func (m *Mesh) SpacingCM() float64 { return m.spacingCM }

// Size returns the total number of nodes (the node budget K for this mesh).
func (m *Mesh) Size() int { return m.width * m.height }

// IDAt returns the node ID at mesh coordinate (x, y), both 1-based.
func (m *Mesh) IDAt(x, y int) (NodeID, bool) { return m.NodeAt(Coord{X: x, Y: y}) }

// Center returns the node closest to the geometric centre of the mesh. It is
// used as the default job source/sink when no explicit attachment point is
// configured.
func (m *Mesh) Center() NodeID {
	id, _ := m.NodeAt(Coord{X: (m.width + 1) / 2, Y: (m.height + 1) / 2})
	return id
}

// Corner returns the node at coordinate (1,1), the conventional attachment
// point of the sensor/actuator block in the smart-shirt sketch (Fig 3a).
func (m *Mesh) Corner() NodeID {
	id, _ := m.NodeAt(Coord{X: 1, Y: 1})
	return id
}

// String describes the mesh briefly, e.g. "4x4 mesh (1 cm spacing)".
func (m *Mesh) String() string {
	return fmt.Sprintf("%dx%d mesh (%g cm spacing)", m.width, m.height, m.spacingCM)
}
