// Package core is the top-level facade of the library: it bundles the four
// ingredients the paper calls a routing strategy RS — network topology,
// module mapping, control mechanism and routing algorithm — into a single
// Strategy value that can be simulated with et_sim and compared against the
// Theorem-1 upper bound.
//
// Typical use:
//
//	strategy, _ := core.EAR(4)                 // 4x4 mesh, paper defaults
//	result, _ := strategy.Simulate()           // run et_sim to system death
//	bound, _ := strategy.UpperBound()          // Theorem 1 for the same setup
//	fmt.Println(result.JobsCompleted, bound.Jobs)
package core

import (
	"context"
	"fmt"

	"repro/internal/analytic"
	"repro/internal/app"
	"repro/internal/battery"
	"repro/internal/controlplane"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/mapping"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/tdma"
	"repro/internal/topology"
)

// Strategy is one fully specified routing strategy plus the platform it runs
// on. Construct it with New, EAR or SDR and refine it with Options.
type Strategy struct {
	// Label names the strategy in experiment output.
	Label string
	// Mesh is the platform topology.
	Mesh *topology.Mesh
	// App is the target application.
	App *app.Application
	// Mapper produces the module-to-node mapping.
	Mapper mapping.Strategy
	// Algorithm is the online routing algorithm.
	Algorithm routing.Algorithm
	// NodeBattery builds each node's battery.
	NodeBattery battery.Factory
	// Line is the transmission-line energy model.
	Line *energy.TransmissionLine
	// TDMA is the control-mechanism configuration.
	TDMA tdma.Params
	// Controllers is the number of redundant controllers (whole central pool,
	// or per regional pool under the sharded control plane).
	Controllers int
	// Control selects the control-plane architecture; the zero value is the
	// paper's centralized controller.
	Control controlplane.Config
	// ControllerBattery builds controller batteries; nil means infinite.
	ControllerBattery battery.Factory
	// ConcurrentJobs is the number of jobs kept in flight.
	ConcurrentJobs int
	// Key optionally enables end-to-end AES payload verification.
	Key []byte
	// CollectNodeStats enables per-node statistics.
	CollectNodeStats bool
	// MaxCycles optionally bounds the simulated time.
	MaxCycles int64
	// Observers are attached to the simulator's event stream (battery
	// time-series, throughput traces, ...; see internal/trace).
	Observers []sim.Observer
	// Cancel, when non-nil, aborts the simulation at the next scheduling
	// boundary once closed (see sim.Config.Cancel). WithContext derives it
	// from a context's Done channel.
	Cancel <-chan struct{}
	// FailedLinkFraction removes that fraction of the mesh interconnects
	// (wear-and-tear) before the simulation starts; FailedLinkSeed selects
	// the deterministic fault pattern.
	FailedLinkFraction float64
	FailedLinkSeed     uint64
	// Faults is the deterministic runtime fault schedule applied during the
	// simulation (transient link faults, wear breaks, node crashes,
	// controller-region kill windows); the zero value injects nothing.
	Faults faults.Spec
}

// Option mutates a Strategy during construction.
type Option func(*Strategy)

// WithAlgorithm overrides the routing algorithm.
func WithAlgorithm(alg routing.Algorithm) Option { return func(s *Strategy) { s.Algorithm = alg } }

// WithMapping overrides the module-mapping strategy.
func WithMapping(m mapping.Strategy) Option { return func(s *Strategy) { s.Mapper = m } }

// WithNodeBattery overrides the node battery model.
func WithNodeBattery(f battery.Factory) Option { return func(s *Strategy) { s.NodeBattery = f } }

// WithIdealBatteries switches every node to the ideal battery model used for
// the Table 2 comparison.
func WithIdealBatteries() Option {
	return func(s *Strategy) { s.NodeBattery = battery.IdealFactory(battery.DefaultNominalPJ) }
}

// WithControllers sets the number of controllers and, when finite is true,
// attaches a thin-film battery to each of them (the Sec 7.3 scenario).
func WithControllers(n int, finite bool) Option {
	return func(s *Strategy) {
		s.Controllers = n
		if finite {
			s.ControllerBattery = battery.DefaultThinFilmFactory()
		} else {
			s.ControllerBattery = nil
		}
	}
}

// WithControlPlane selects the control-plane architecture (see
// controlplane.Config; the default is the paper's centralized controller).
func WithControlPlane(cfg controlplane.Config) Option {
	return func(s *Strategy) { s.Control = cfg }
}

// WithConcurrentJobs sets the number of jobs kept in flight simultaneously.
func WithConcurrentJobs(n int) Option { return func(s *Strategy) { s.ConcurrentJobs = n } }

// WithApplication overrides the target application.
func WithApplication(a *app.Application) Option { return func(s *Strategy) { s.App = a } }

// WithTDMA overrides the control-mechanism parameters.
func WithTDMA(p tdma.Params) Option { return func(s *Strategy) { s.TDMA = p } }

// WithPayloadVerification makes every simulated job carry a real AES state
// encrypted with the given key and verified against the reference cipher.
func WithPayloadVerification(key []byte) Option { return func(s *Strategy) { s.Key = key } }

// WithNodeStats enables per-node statistics collection.
func WithNodeStats() Option { return func(s *Strategy) { s.CollectNodeStats = true } }

// WithMaxCycles bounds the simulated time.
func WithMaxCycles(c int64) Option { return func(s *Strategy) { s.MaxCycles = c } }

// WithObservers attaches observers to the simulator's event stream. Repeated
// uses accumulate.
func WithObservers(obs ...sim.Observer) Option {
	return func(s *Strategy) { s.Observers = append(s.Observers, obs...) }
}

// WithContext ties the simulation's lifetime to a context: once the context
// is cancelled the run aborts at its next scheduling boundary, finishing with
// sim.DeathCancelled. A nil context leaves the strategy uncancellable (the
// default). This is how request-scoped callers — the etserve daemon, whose
// clients may disconnect mid-run — keep abandoned simulations from burning
// CPU.
func WithContext(ctx context.Context) Option {
	return func(s *Strategy) {
		if ctx != nil {
			s.Cancel = ctx.Done()
		}
	}
}

// WithFailedLinks removes the given fraction of the platform's interconnects
// before the simulation starts, modelling wear-and-tear damage to the woven
// wires. The pattern is deterministic for a given seed and never partitions
// the fabric.
func WithFailedLinks(fraction float64, seed uint64) Option {
	return func(s *Strategy) {
		s.FailedLinkFraction = fraction
		s.FailedLinkSeed = seed
	}
}

// WithFaults attaches a deterministic runtime fault schedule: the simulation
// injects (and recovers) link, node and controller-region faults mid-run, at
// TDMA frame boundaries, as a pure function of the schedule and its seed.
func WithFaults(spec faults.Spec) Option {
	return func(s *Strategy) { s.Faults = spec }
}

// New builds a strategy for an n x n mesh with the paper's defaults: AES-128,
// checkerboard mapping, EAR routing, thin-film node batteries and a single
// infinite-energy controller, then applies the options.
func New(meshSize int, opts ...Option) (*Strategy, error) {
	mesh, err := topology.NewSquareMesh(meshSize)
	if err != nil {
		return nil, err
	}
	s := &Strategy{
		Label:          fmt.Sprintf("EAR-%dx%d", meshSize, meshSize),
		Mesh:           mesh,
		App:            app.AES128(),
		Mapper:         mapping.Checkerboard{},
		Algorithm:      routing.NewEAR(),
		NodeBattery:    battery.DefaultThinFilmFactory(),
		Line:           energy.PaperTransmissionLine(),
		TDMA:           tdma.DefaultParams(),
		Controllers:    1,
		ConcurrentJobs: 1,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// EAR returns the paper's energy-aware routing strategy on an n x n mesh.
func EAR(meshSize int, opts ...Option) (*Strategy, error) {
	return New(meshSize, opts...)
}

// SDR returns the non-energy-aware shortest-distance counterpart on an n x n
// mesh (everything identical to EAR except the routing algorithm, as required
// for the paper's fair comparison).
func SDR(meshSize int, opts ...Option) (*Strategy, error) {
	s, err := New(meshSize, append([]Option{WithAlgorithm(routing.SDR{})}, opts...)...)
	if err != nil {
		return nil, err
	}
	s.Label = fmt.Sprintf("SDR-%dx%d", meshSize, meshSize)
	return s, nil
}

// Config materialises the strategy into a simulator configuration. It never
// mutates the strategy: fault injection runs on a clone of the platform
// graph, so materialising the same strategy twice yields identical
// (independently damaged) topologies.
func (s *Strategy) Config() (sim.Config, error) {
	graph := s.Mesh.Graph
	if s.FailedLinkFraction > 0 {
		graph = graph.Clone()
		// A shortfall (the fabric could not shed the full target without
		// partitioning) is deliberately tolerated here: near-saturation
		// fractions damage the garment as much as connectivity allows.
		if _, _, err := topology.FailLinks(graph, s.FailedLinkFraction, s.FailedLinkSeed); err != nil {
			return sim.Config{}, err
		}
	}
	m, err := s.Mapper.Map(graph, s.App)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Graph:              graph,
		App:                s.App,
		Mapping:            m,
		Algorithm:          s.Algorithm,
		NodeBattery:        s.NodeBattery,
		Line:               s.Line,
		TDMA:               s.TDMA,
		Controllers:        s.Controllers,
		Control:            s.Control,
		ControllerBattery:  s.ControllerBattery,
		ControllerPower:    energy.PaperController4x4(),
		BatteryLevels:      routing.DefaultEARParams().Levels,
		ComputeCyclesPerOp: 4,
		LinkWidthBits:      8,
		ConcurrentJobs:     s.ConcurrentJobs,
		NodeBufferJobs:     1,
		Source:             s.Mesh.Corner(),
		Key:                s.Key,
		CollectNodeStats:   s.CollectNodeStats,
		MaxCycles:          s.MaxCycles,
		Cancel:             s.Cancel,
		Observers:          s.Observers,
		Faults:             s.Faults,
	}
	if ear, ok := s.Algorithm.(routing.EAR); ok && ear.Params.Levels > 0 {
		cfg.BatteryLevels = ear.Params.Levels
	}
	return cfg, nil
}

// Simulate runs et_sim for this strategy and returns the result.
func (s *Strategy) Simulate() (sim.Result, error) {
	cfg, err := s.Config()
	if err != nil {
		return sim.Result{}, err
	}
	simulator, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return simulator.Run(), nil
}

// UpperBound evaluates Theorem 1 for this strategy's application, mesh and
// battery budget (the nominal capacity of one node battery).
func (s *Strategy) UpperBound() (analytic.Bound, error) {
	budget := s.NodeBattery().NominalPJ()
	return analytic.MeshUpperBound(s.App, s.Line, s.Mesh.SpacingCM(), budget, s.Mesh.Size())
}
