package core

import (
	"testing"

	"repro/internal/aes"
	"repro/internal/app"
	"repro/internal/battery"
	"repro/internal/mapping"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/tdma"
)

func TestEARStrategyDefaults(t *testing.T) {
	s, err := EAR(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "EAR-4x4" {
		t.Errorf("Label = %q", s.Label)
	}
	if s.Algorithm.Name() != "EAR" {
		t.Errorf("algorithm = %s", s.Algorithm.Name())
	}
	if s.Mesh.Size() != 16 || s.App.Name != "AES-128" || s.Controllers != 1 {
		t.Errorf("unexpected defaults: %+v", s)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("materialised config invalid: %v", err)
	}
}

func TestSDRStrategyDiffersOnlyInAlgorithm(t *testing.T) {
	ear, err := EAR(5)
	if err != nil {
		t.Fatal(err)
	}
	sdr, err := SDR(5)
	if err != nil {
		t.Fatal(err)
	}
	if sdr.Algorithm.Name() != "SDR" || sdr.Label != "SDR-5x5" {
		t.Errorf("SDR strategy = %+v", sdr)
	}
	if ear.Mesh.Size() != sdr.Mesh.Size() || ear.App.Name != sdr.App.Name ||
		ear.Controllers != sdr.Controllers || ear.ConcurrentJobs != sdr.ConcurrentJobs {
		t.Error("EAR and SDR strategies differ in more than the routing algorithm")
	}
}

func TestStrategyConstructionErrors(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := SDR(-3); err == nil {
		t.Error("SDR(-3) should fail")
	}
}

func TestOptionsAreApplied(t *testing.T) {
	customTDMA := tdma.DefaultParams()
	customTDMA.FramePeriodCycles = 2048
	key := make([]byte, 16)
	customApp, err := app.AES(aes.Key192)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(6,
		WithAlgorithm(routing.SDR{}),
		WithMapping(mapping.RowMajor{}),
		WithIdealBatteries(),
		WithControllers(7, true),
		WithConcurrentJobs(2),
		WithApplication(customApp),
		WithTDMA(customTDMA),
		WithPayloadVerification(key),
		WithNodeStats(),
		WithMaxCycles(12345),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Algorithm.Name() != "SDR" {
		t.Error("WithAlgorithm not applied")
	}
	if s.Mapper.Name() != "row-major-blocks" {
		t.Error("WithMapping not applied")
	}
	if s.NodeBattery().NominalPJ() != battery.DefaultNominalPJ {
		t.Error("WithIdealBatteries produced unexpected capacity")
	}
	if _, ok := s.NodeBattery().(*battery.Ideal); !ok {
		t.Error("WithIdealBatteries did not produce ideal batteries")
	}
	if s.Controllers != 7 || s.ControllerBattery == nil {
		t.Error("WithControllers not applied")
	}
	if s.ConcurrentJobs != 2 {
		t.Error("WithConcurrentJobs not applied")
	}
	if s.App.Name != "AES-192" {
		t.Error("WithApplication not applied")
	}
	if s.TDMA.FramePeriodCycles != 2048 {
		t.Error("WithTDMA not applied")
	}
	if len(s.Key) != 16 || !s.CollectNodeStats || s.MaxCycles != 12345 {
		t.Error("payload/stats/max-cycles options not applied")
	}
	if _, err := s.Config(); err != nil {
		t.Fatalf("Config() with options: %v", err)
	}
}

func TestWithControllersInfinite(t *testing.T) {
	s, err := EAR(4, WithControllers(3, false))
	if err != nil {
		t.Fatal(err)
	}
	if s.Controllers != 3 || s.ControllerBattery != nil {
		t.Errorf("WithControllers(3, false) = %d controllers, battery %v", s.Controllers, s.ControllerBattery)
	}
}

func TestSimulateAndUpperBound(t *testing.T) {
	s, err := EAR(4, WithMaxCycles(200000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted == 0 {
		t.Fatal("no jobs completed")
	}
	bound, err := s.UpperBound()
	if err != nil {
		t.Fatal(err)
	}
	if bound.Jobs < 131 || bound.Jobs > 132 {
		t.Errorf("4x4 upper bound = %.2f, want ~131.4 (Table 2)", bound.Jobs)
	}
	if float64(res.JobsCompleted) > bound.Jobs {
		t.Errorf("simulated jobs (%d) exceed the upper bound (%.2f)", res.JobsCompleted, bound.Jobs)
	}
}

func TestEARLevelsPropagateToConfig(t *testing.T) {
	params := routing.EARParams{Q: 3, Levels: 16}
	s, err := EAR(4, WithAlgorithm(routing.EAR{Params: params}))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BatteryLevels != 16 {
		t.Errorf("BatteryLevels = %d, want 16 from the EAR parameters", cfg.BatteryLevels)
	}
}

func TestConfigErrorsOnImpossibleMapping(t *testing.T) {
	// A two-module application cannot be mapped with the checkerboard rule;
	// Config must surface the mapping error.
	b := app.NewBuilder("two")
	m1 := b.AddModule("a", 10)
	m2 := b.AddModule("b", 10)
	twoMod, err := b.Step(m1).Step(m2).Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := EAR(4, WithApplication(twoMod))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Config(); err == nil {
		t.Fatal("Config should fail when the mapping strategy rejects the application")
	}
	if _, err := s.Simulate(); err == nil {
		t.Fatal("Simulate should fail when the mapping strategy rejects the application")
	}
}

func TestWithFailedLinksIsIdempotent(t *testing.T) {
	s, err := EAR(5, WithFailedLinks(0.2, 3))
	if err != nil {
		t.Fatal(err)
	}
	intact := 2 * (2*5*5 - 5 - 5)
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	damaged := cfg.Graph.LinkCount()
	if damaged >= intact {
		t.Fatalf("no links were removed: %d links", damaged)
	}
	if !cfg.Graph.Connected() {
		t.Fatal("fault injection disconnected the mesh")
	}
	// Materialising must not mutate the strategy: the platform graph stays
	// intact and the fault parameters stay set.
	if got := s.Mesh.Graph.LinkCount(); got != intact {
		t.Fatalf("Config mutated the strategy's own topology: %d links, want %d", got, intact)
	}
	if s.FailedLinkFraction != 0.2 || s.FailedLinkSeed != 3 {
		t.Fatalf("Config cleared the fault parameters: fraction %g, seed %d", s.FailedLinkFraction, s.FailedLinkSeed)
	}
	// A second materialisation yields the identical damaged topology.
	cfg2, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Graph.LinkCount() != damaged {
		t.Fatalf("second Config call changed the topology: %d -> %d links", damaged, cfg2.Graph.LinkCount())
	}
	for _, l := range cfg.Graph.Links() {
		if _, ok := cfg2.Graph.Link(l.From, l.To); !ok {
			t.Fatalf("second materialisation removed different links: %d -> %d missing", l.From, l.To)
		}
	}
	// And two simulations of the same damaged strategy agree exactly.
	res, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted == 0 {
		t.Fatal("no jobs completed on the damaged mesh")
	}
	res2, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != res2.JobsCompleted || res.LifetimeCycles != res2.LifetimeCycles {
		t.Fatalf("repeated simulation of a damaged strategy diverged: %d/%d jobs",
			res.JobsCompleted, res2.JobsCompleted)
	}
	// An invalid fraction must surface as an error.
	bad, err := EAR(4, WithFailedLinks(1.2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Config(); err == nil {
		t.Fatal("invalid failure fraction accepted")
	}
}

func TestStrategySimulateMatchesDirectSimUse(t *testing.T) {
	s, err := EAR(4)
	if err != nil {
		t.Fatal(err)
	}
	viaStrategy, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	simulator, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := simulator.Run()
	if viaStrategy.JobsCompleted != direct.JobsCompleted || viaStrategy.LifetimeCycles != direct.LifetimeCycles {
		t.Errorf("facade result (%d jobs) differs from direct sim result (%d jobs)",
			viaStrategy.JobsCompleted, direct.JobsCompleted)
	}
}
