package controlplane

import (
	"reflect"
	"testing"

	"repro/internal/battery"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestShardedPartitionCoversMesh(t *testing.T) {
	for _, tc := range []struct{ mesh, shards int }{{4, 2}, {4, 3}, {8, 4}, {8, 7}, {5, 25}} {
		deps := testDeps(tc.mesh, routing.NewEAR())
		s, err := NewSharded(deps, tc.shards, 1)
		if err != nil {
			t.Fatal(err)
		}
		k := tc.mesh * tc.mesh
		next := 0
		for b := 0; b < s.Shards(); b++ {
			lo, hi := s.OwnedRange(b)
			if lo != next || hi <= lo {
				t.Fatalf("%dx%d/%d shards: shard %d owns [%d,%d), want contiguous from %d", tc.mesh, tc.mesh, tc.shards, b, lo, hi, next)
			}
			// Near-equal split: no shard more than one node larger than another.
			if size := hi - lo; size < k/tc.shards || size > k/tc.shards+1 {
				t.Fatalf("shard %d size %d, want %d or %d", b, size, k/tc.shards, k/tc.shards+1)
			}
			next = hi
		}
		if next != k {
			t.Fatalf("partition covers [0,%d), want [0,%d)", next, k)
		}
	}
	if _, err := NewSharded(testDeps(4, routing.NewEAR()), 17, 1); err == nil {
		t.Fatal("accepted more shards than nodes")
	}
	if _, err := NewSharded(testDeps(4, routing.NewEAR()), 0, 1); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := NewSharded(testDeps(4, routing.NewEAR()), 2, 0); err == nil {
		t.Fatal("accepted zero staleness")
	}
}

// TestShardedSingleShardMatchesCentralized: with one shard and summary
// exchange every frame, the sharded plane sees exactly what the centralized
// one sees, so its frame reports and recompute schedule must coincide (only
// RetainedSnapshot differs: the sharded plane copies instead of retaining the
// engine buffer).
func TestShardedSingleShardMatchesCentralized(t *testing.T) {
	deps := testDeps(4, routing.NewEAR())
	central, err := NewCentralized(deps)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(deps, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	const levels = 8
	snaps := [2]*routing.SystemState{fullState(deps.Graph, levels), fullState(deps.Graph, levels)}
	master := fullState(deps.Graph, levels)
	flip := 0
	for frame := int64(1); frame <= 60; frame++ {
		cur := snaps[flip]
		copy(cur.Status, master.Status)
		alive := aliveCount(cur)
		cRep := central.Frame(frame, alive, cur)
		sRep := sharded.Frame(frame, alive, cur)
		if cRep.RetainedSnapshot {
			flip ^= 1
		}
		cRep.RetainedSnapshot, sRep.RetainedSnapshot = false, false
		if !reflect.DeepEqual(cRep, sRep) {
			t.Fatalf("frame %d: sharded(1) report %+v, centralized %+v", frame, sRep, cRep)
		}
		k := deps.Graph.NodeCount()
		for n := 0; n < k; n++ {
			for d := 0; d < k; d++ {
				from, dest := topology.NodeID(n), topology.NodeID(d)
				if got, want := sharded.NextHop(from, dest), central.NextHop(from, dest); got != want {
					t.Fatalf("frame %d: NextHop(%d,%d) = %d, want %d", frame, n, d, got, want)
				}
			}
		}
		// Drift one battery every third frame, kill a node every tenth.
		if frame%3 == 0 {
			st := &master.Status[int(frame)%len(master.Status)]
			if st.BatteryLevel > 0 {
				st.BatteryLevel--
			}
		}
		if frame%10 == 0 {
			master.Status[int(frame/2)%len(master.Status)].Alive = false
		}
	}
	if central.RecomputeCount(0) != sharded.RecomputeCount(0) {
		t.Fatalf("recompute counts diverged: centralized %d, sharded(1) %d",
			central.RecomputeCount(0), sharded.RecomputeCount(0))
	}
}

// TestShardedStalenessDefersRemoteVisibility: a change inside one shard is
// acted on by its own region immediately, but by the other regions only at
// the next summary-exchange frame.
func TestShardedStalenessDefersRemoteVisibility(t *testing.T) {
	deps := testDeps(4, routing.NewEAR())
	const staleness = 4
	s, err := NewSharded(deps, 2, staleness)
	if err != nil {
		t.Fatal(err)
	}
	snap := fullState(deps.Graph, 8)

	// Frame 1 is always an exchange frame: both regions bootstrap.
	s.Frame(1, aliveCount(snap), snap)
	if s.RecomputeCount(0) != 1 || s.RecomputeCount(1) != 1 {
		t.Fatalf("bootstrap recomputes = %d,%d, want 1,1", s.RecomputeCount(0), s.RecomputeCount(1))
	}

	// Frame 2: change a node owned by shard 1 (range [8,16) on the 4x4 mesh).
	lo1, _ := s.OwnedRange(1)
	snap.Status[lo1+2].BatteryLevel = 3
	s.Frame(2, aliveCount(snap), snap)
	if s.RecomputeCount(1) != 2 {
		t.Fatalf("owning region did not react to its own node: recomputes = %d, want 2", s.RecomputeCount(1))
	}
	if s.RecomputeCount(0) != 1 {
		t.Fatalf("remote region saw the change before the exchange frame: recomputes = %d, want 1", s.RecomputeCount(0))
	}

	// Frames 3-4: nothing new anywhere; nobody recomputes.
	s.Frame(3, aliveCount(snap), snap)
	s.Frame(4, aliveCount(snap), snap)
	if s.RecomputeCount(0) != 1 || s.RecomputeCount(1) != 2 {
		t.Fatalf("quiet frames recomputed: %d,%d, want 1,2", s.RecomputeCount(0), s.RecomputeCount(1))
	}

	// Frame 5 = 1 + staleness: the exchange delivers shard 1's change to
	// shard 0, which now recomputes; shard 1 already adopted it.
	s.Frame(5, aliveCount(snap), snap)
	if s.RecomputeCount(0) != 2 || s.RecomputeCount(1) != 2 {
		t.Fatalf("exchange-frame recomputes = %d,%d, want 2,2", s.RecomputeCount(0), s.RecomputeCount(1))
	}
}

// TestShardedRegionDeathFreezesTables: a region whose controller pool dies
// stops recomputing (its nodes keep the last downloaded tables) while the
// surviving regions continue to adapt; once every pool is dead the plane
// reports ControllersDead.
func TestShardedRegionDeathFreezesTables(t *testing.T) {
	deps := testDeps(4, routing.NewEAR())
	deps.Controllers = 1
	// Finite but effectively inexhaustible: death is injected per region below.
	deps.ControllerBattery = battery.IdealFactory(1e12)
	s, err := NewSharded(deps, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := fullState(deps.Graph, 8)
	s.Frame(1, aliveCount(snap), snap)
	lo0, _ := s.OwnedRange(0)
	preDeath := s.NextHop(topology.NodeID(lo0), topology.NodeID(lo0+1))

	// Exhaust region 0's only controller.
	_ = s.Regions().Pool(0).Controllers()[0].Drain(2e12)
	snap.Status[5].BatteryLevel = 2 // visible change for every region
	rep := s.Frame(2, aliveCount(snap), snap)
	if rep.ControllersDead {
		t.Fatal("plane reported all-dead with one surviving region")
	}
	if s.AliveShards() != 1 {
		t.Fatalf("AliveShards = %d, want 1", s.AliveShards())
	}
	if s.RecomputeCount(0) != 1 {
		t.Fatalf("dead region recomputed: %d, want frozen at 1", s.RecomputeCount(0))
	}
	if s.RecomputeCount(1) != 2 {
		t.Fatalf("surviving region did not adapt: %d, want 2", s.RecomputeCount(1))
	}
	// The dead region's nodes still route on the frozen generation.
	if got := s.NextHop(topology.NodeID(lo0), topology.NodeID(lo0+1)); got != preDeath {
		t.Fatalf("frozen NextHop = %d, want %d", got, preDeath)
	}

	// Exhaust region 1 as well: the next frame is the Sec 7.3 system death.
	_ = s.Regions().Pool(1).Controllers()[0].Drain(2e12)
	rep = s.Frame(3, aliveCount(snap), snap)
	if !rep.ControllersDead {
		t.Fatal("plane did not report ControllersDead with every region exhausted")
	}
	if s.AliveShards() != 0 {
		t.Fatalf("AliveShards = %d, want 0", s.AliveShards())
	}
}

// TestShardedDeterminism: two planes driven by the same snapshot sequence
// must make identical decisions — the recompute schedule is a pure function
// of (frame index, reported state).
func TestShardedDeterminism(t *testing.T) {
	build := func() *Sharded {
		s, err := NewSharded(testDeps(6, routing.NewEAR()), 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	snap := fullState(a.deps.Graph, 8)
	for frame := int64(1); frame <= 50; frame++ {
		st := &snap.Status[int(frame*7)%len(snap.Status)]
		st.BatteryLevel = int(frame) % 8
		if frame%13 == 0 {
			st.Alive = false
		}
		alive := aliveCount(snap)
		repA := a.Frame(frame, alive, snap)
		repB := b.Frame(frame, alive, snap)
		if !reflect.DeepEqual(repA, repB) {
			t.Fatalf("frame %d: reports diverged: %+v vs %+v", frame, repA, repB)
		}
	}
	for shard := 0; shard < a.Shards(); shard++ {
		if a.RecomputeCount(shard) != b.RecomputeCount(shard) {
			t.Fatalf("shard %d recompute counts diverged: %d vs %d", shard, a.RecomputeCount(shard), b.RecomputeCount(shard))
		}
		if a.ShardConsumedPJ(shard) != b.ShardConsumedPJ(shard) {
			t.Fatalf("shard %d consumed energy diverged", shard)
		}
	}
}

// BenchmarkShardedRecompute measures one worst-case sharded control frame on
// the 8x8 mesh: a battery change visible to every region, so all four regions
// re-run the routing phases. This is the sharded counterpart of the
// centralized controller hot path guarded in internal/routing.
func BenchmarkShardedRecompute(b *testing.B) {
	deps := testDeps(8, routing.NewEAR())
	s, err := NewSharded(deps, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	snap := fullState(deps.Graph, 8)
	alive := aliveCount(snap)
	// Warm the steady state before the timer starts: the first frame builds
	// every per-region workspace, and the first *changed* frames grow the
	// delta scratch (adjacency lists, table ping-pong buffers) on demand.
	// Without the changed warm-up frames those one-time allocations land
	// inside the timed loop and show up as a nonzero B/op next to the
	// 0 allocs/op they amortise to.
	for w := 0; w < 3; w++ {
		st := &snap.Status[w%len(snap.Status)]
		st.BatteryLevel = (st.BatteryLevel + 1) % 8
		s.Frame(int64(w)+1, alive, snap)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := &snap.Status[i%len(snap.Status)]
		st.BatteryLevel = (st.BatteryLevel + 1) % 8
		s.Frame(int64(i)+4, alive, snap)
	}
}
