package controlplane

import (
	"errors"
	"fmt"

	"repro/internal/app"
	"repro/internal/routing"
	"repro/internal/tdma"
	"repro/internal/topology"
)

// regionState is one regional controller's private world: the contiguous node
// range it owns, its (possibly stale) full-mesh view of the reported status,
// the view it adopted at its last recompute, and its own routing workspace and
// table generation.
type regionState struct {
	lo, hi int // home node range [lo, hi)

	view    routing.SystemState // current belief about the whole mesh
	last    routing.SystemState // view adopted at the last recompute
	hasLast bool

	ws         *routing.DeltaWorkspace
	tables     *routing.Tables
	dead       bool // battery death: permanent, tables frozen, no failover
	faultDown  bool // runtime fault window (FaultRegion): nodes failed over
	recomputes int
}

// Sharded is the regional control plane: the mesh is partitioned into
// contiguous shards of near-equal size (node IDs are row-major, so on a mesh
// the shards are contiguous row bands), each owned by a regional controller
// pool with its own workspace and finite batteries.
//
// Every frame a region hears its own shard's upload slots, so its view of its
// own nodes is always fresh; the other regions' battery/deadlock summaries are
// exchanged only every StalenessFrames frames, so between exchanges the region
// routes on a stale view of the rest of the fabric. A region re-runs the
// routing algorithm only when the state it can see changed, which both skips
// frames where only invisible remote changes happened and batches many remote
// changes into the single recompute after an exchange. A region whose pool
// dies freezes its tables: its nodes keep routing on the last downloaded
// generation while the surviving regions continue to adapt.
//
// The whole schedule is a pure function of (frame index, reported state), so
// sharded sweeps remain byte-identical at every worker count.
type Sharded struct {
	deps      Deps
	staleness int
	finite    bool

	regions *tdma.Regions
	shards  []regionState
	home    []int // NodeID -> home shard index (static partition)
	owner   []int // NodeID -> serving shard index (== home unless failed over)

	// Failover bookkeeping: adopt[h] is the region currently serving home
	// block h; prevAdopt is last frame's assignment (the diff is the
	// FrameReport.Failovers list); ownedChanged[b] marks regions whose
	// served node set changed this frame, forcing a recompute so adopted
	// nodes get fresh tables immediately. A region is handed over only while
	// fault-down: battery death keeps the pre-failover frozen-table
	// behaviour, byte-identical to before runtime faults existed.
	adopt        []int
	prevAdopt    []int
	ownedChanged []bool

	// deadlockCounted is the plane-level edge detector for deadlock reports:
	// a stuck node is counted once by whichever region serves it when the
	// report first becomes visible, and the mark survives failover hand-overs
	// (a per-region detector would re-count the node when its home region
	// returns with a view predating the report). Cleared when the node
	// unblocks, so a later, distinct deadlock counts again — exactly the
	// semantics the per-region comparison had without failover.
	deadlockCounted []bool
}

// NewSharded builds a sharded control plane with the given region count and
// summary-exchange period (in frames; 1 = exchange every frame).
func NewSharded(deps Deps, shards, staleness int) (*Sharded, error) {
	k := deps.Graph.NodeCount()
	if shards < 1 {
		return nil, fmt.Errorf("controlplane: sharded plane needs at least one shard, got %d", shards)
	}
	if shards > k {
		return nil, fmt.Errorf("controlplane: %d shards exceed the %d-node platform", shards, k)
	}
	if staleness < 1 {
		return nil, fmt.Errorf("controlplane: staleness bound must be at least one frame, got %d", staleness)
	}
	regions, err := tdma.NewRegions(shards, deps.Controllers, deps.ControllerPower, deps.ControllerBattery)
	if err != nil {
		return nil, err
	}
	s := &Sharded{
		deps:            deps,
		staleness:       staleness,
		finite:          deps.ControllerBattery != nil,
		regions:         regions,
		shards:          make([]regionState, shards),
		home:            make([]int, k),
		owner:           make([]int, k),
		adopt:           make([]int, shards),
		prevAdopt:       make([]int, shards),
		ownedChanged:    make([]bool, shards),
		deadlockCounted: make([]bool, k),
	}
	for b := range s.shards {
		lo, hi := b*k/shards, (b+1)*k/shards
		// Per-region delta workspaces: each region diffs against its own
		// previous weight matrix, so between exchange frames a region's
		// recompute dirties only the vertices its fresh local reports
		// actually moved, and an exchange frame dirties only the remote
		// vertices whose summaries changed.
		ws := routing.NewDeltaWorkspace()
		ws.SetMode(deps.Recompute)
		s.shards[b] = regionState{lo: lo, hi: hi, ws: ws}
		s.adopt[b], s.prevAdopt[b] = b, b
		for n := lo; n < hi; n++ {
			s.home[n] = b
			s.owner[n] = b
		}
	}
	return s, nil
}

// Name implements ControlPlane.
func (s *Sharded) Name() string { return string(KindSharded) }

// Frame implements ControlPlane: one controller frame for every living
// region, in shard order for determinism.
func (s *Sharded) Frame(frame int64, aliveNodes int, snapshot *routing.SystemState) FrameReport {
	var rep FrameReport
	s.reassignOwners(&rep)
	// Summary-exchange frames: the first frame always synchronises (every
	// region must learn the initial state), then every staleness-th frame
	// after it.
	exchange := (frame-1)%int64(s.staleness) == 0
	k := s.deps.Graph.NodeCount()
	needLevels := s.deps.Algorithm.NeedsBatteryInfo()

	for b := range s.shards {
		sh := &s.shards[b]
		if sh.dead {
			continue
		}
		if sh.faultDown {
			// Kill window: the region serves nothing; its batteries recover
			// while the pool is off. Its nodes were handed to an in-service
			// region by reassignOwners above.
			s.regions.Pool(b).RestAll(s.deps.TDMA.FramePeriodCycles)
			continue
		}
		// Refresh the region's view: the shards it currently serves (its own,
		// plus any adopted home blocks) every frame — a serving region hears
		// the upload slots of every node it owns — and the rest of the mesh
		// only on exchange frames.
		if sh.view.Status == nil {
			sh.view = routing.SystemState{Graph: snapshot.Graph, Levels: snapshot.Levels}
			sh.view.Status = make([]routing.NodeStatus, len(snapshot.Status))
		}
		// Topology changes (fault-injected link removals and heals) are
		// physical, not reported state: every region sees them immediately.
		sh.view.TopologyEpoch = snapshot.TopologyEpoch
		if exchange {
			copy(sh.view.Status, snapshot.Status)
		} else {
			for h := range s.shards {
				if s.adopt[h] == b {
					lo, hi := s.shards[h].lo, s.shards[h].hi
					copy(sh.view.Status[lo:hi], snapshot.Status[lo:hi])
				}
			}
		}

		// Deadlock notifications are uploaded by the stuck node, so each is
		// observed (exactly once) by the region currently serving the node —
		// the adopter, for an orphaned node mid-failover. The plane-level
		// edge detector keeps "exactly once" across hand-overs.
		for h := range s.shards {
			if s.adopt[h] != b {
				continue
			}
			for n := s.shards[h].lo; n < s.shards[h].hi; n++ {
				if sh.view.Status[n].Deadlocked {
					if !s.deadlockCounted[n] {
						s.deadlockCounted[n] = true
						rep.NewDeadlockReports++
					}
				} else {
					s.deadlockCounted[n] = false
				}
			}
		}

		// A change in the served node set (a block adopted or returned)
		// forces a recompute even if no status moved: the new nodes must get
		// this region's tables immediately.
		changed := s.regionChanged(sh, needLevels) || s.ownedChanged[b]

		// The regional controller still runs the routing phases over the full
		// mesh (routes cross shard boundaries), so a recompute costs the same
		// k-node computation as the centralized controller's; the saving is in
		// how rarely the visible state changes and in downloading tables only
		// to the region's own alive nodes.
		framePJ := s.deps.TDMA.ControllerFrameEnergyPJ(s.deps.ControllerPower, k, changed)
		downloadPJ := 0.0
		if changed {
			aliveInShard := 0
			for h := range s.shards {
				if s.adopt[h] != b {
					continue
				}
				for n := s.shards[h].lo; n < s.shards[h].hi; n++ {
					if sh.view.Status[n].Alive {
						aliveInShard++
					}
				}
			}
			downloadPJ = s.deps.TDMA.DownloadEnergyPerNodePJ() * float64(aliveInShard)
		}
		rep.ControllerPJ += framePJ
		rep.DownloadPJ += downloadPJ

		pool := s.regions.Pool(b)
		if err := pool.ServeFrame(framePJ+downloadPJ, 0); err != nil {
			if errors.Is(err, tdma.ErrAllControllersDead) && s.finite {
				// The region dies with its tables frozen: its nodes route on
				// the last downloaded generation from here on.
				sh.dead = true
				continue
			}
		}
		pool.RestAll(s.deps.TDMA.FramePeriodCycles)

		if changed || sh.tables == nil {
			plan := sh.ws.ComputeInto(s.deps.Algorithm, &sh.view, s.deps.Destinations, sh.tables)
			sh.tables = plan.Tables
			s.adoptView(sh)
			sh.recomputes++
			rep.Recomputed = true
			rep.ShardRecomputes++
		}
	}

	if s.finite && s.regions.AllDead() {
		rep.ControllersDead = true
	}
	return rep
}

// reassignOwners recomputes the shard-failover assignment as a pure function
// of the current fault/death flags: every home block is served by its own
// region while that region is in service, and by the nearest in-service
// region (smallest index distance, ties to the lower index) while it is
// fault-down. Battery-dead regions neither hand over their nodes (frozen
// tables, the pre-failover contract) nor adopt anyone else's. The diff
// against the previous assignment becomes the report's Failovers list.
func (s *Sharded) reassignOwners(rep *FrameReport) {
	inService := func(b int) bool { return !s.shards[b].dead && !s.shards[b].faultDown }
	for b := range s.shards {
		s.ownedChanged[b] = false
		switch {
		case !s.shards[b].faultDown:
			s.adopt[b] = b
		default:
			best := b
			bestDist := len(s.shards) + 1
			for r := range s.shards {
				if !inService(r) {
					continue
				}
				d := r - b
				if d < 0 {
					d = -d
				}
				if d < bestDist {
					best, bestDist = r, d
				}
			}
			s.adopt[b] = best
		}
	}
	for h := range s.shards {
		if s.adopt[h] != s.prevAdopt[h] {
			sh := &s.shards[h]
			rep.Failovers = append(rep.Failovers, Failover{
				From: s.prevAdopt[h], To: s.adopt[h], Home: h, Nodes: sh.hi - sh.lo,
			})
			s.ownedChanged[s.adopt[h]] = true
			s.ownedChanged[s.prevAdopt[h]] = true
			for n := sh.lo; n < sh.hi; n++ {
				s.owner[n] = s.adopt[h]
			}
			s.prevAdopt[h] = s.adopt[h]
		}
		if s.adopt[h] != h {
			rep.Adopted += s.shards[h].hi - s.shards[h].lo
		}
	}
}

// regionChanged reports whether the region's current view differs from the
// view adopted at its last recompute in any way the algorithm cares about.
func (s *Sharded) regionChanged(sh *regionState, needLevels bool) bool {
	if !sh.hasLast || len(sh.last.Status) != len(sh.view.Status) {
		return true
	}
	if sh.last.TopologyEpoch != sh.view.TopologyEpoch {
		// A link vanished or healed since this region's last recompute.
		return true
	}
	for n, st := range sh.view.Status {
		prev := sh.last.Status[n]
		if st.Alive != prev.Alive || st.Deadlocked != prev.Deadlocked {
			return true
		}
		if needLevels && st.BatteryLevel != prev.BatteryLevel {
			return true
		}
	}
	return false
}

// adoptView records the region's current view as its last-recomputed
// reference, reusing the region-owned buffer. The sharded plane never retains
// the engine's snapshot buffer, so it never sets
// FrameReport.RetainedSnapshot.
func (s *Sharded) adoptView(sh *regionState) {
	if sh.last.Status == nil {
		sh.last = routing.SystemState{Graph: sh.view.Graph, Levels: sh.view.Levels}
		sh.last.Status = make([]routing.NodeStatus, len(sh.view.Status))
	}
	sh.last.TopologyEpoch = sh.view.TopologyEpoch
	copy(sh.last.Status, sh.view.Status)
	sh.hasLast = true
}

// ownerOf returns the region currently serving node — its home region, or
// its adopter while the home region is fault-down — or nil for out-of-range
// IDs.
func (s *Sharded) ownerOf(node topology.NodeID) *regionState {
	if int(node) < 0 || int(node) >= len(s.owner) {
		return nil
	}
	return &s.shards[s.owner[node]]
}

// Table implements ControlPlane: each node uses the tables its own region last
// downloaded (nil-safe before a region's first recompute).
func (s *Sharded) Table(node topology.NodeID) (routing.Table, bool) {
	sh := s.ownerOf(node)
	if sh == nil {
		return routing.Table{}, false
	}
	return sh.tables.Table(node)
}

// NextHop implements ControlPlane. The relay decision at `from` is made by
// from's own region's tables.
func (s *Sharded) NextHop(from, dest topology.NodeID) topology.NodeID {
	sh := s.ownerOf(from)
	if sh == nil {
		return topology.Invalid
	}
	return sh.tables.NextHop(from, dest)
}

// RouteTo implements ControlPlane.
func (s *Sharded) RouteTo(node topology.NodeID, id app.ModuleID) (routing.Route, bool) {
	sh := s.ownerOf(node)
	if sh == nil {
		return routing.Route{}, false
	}
	return sh.tables.RouteTo(node, id)
}

// Shards implements ControlPlane.
func (s *Sharded) Shards() int { return len(s.shards) }

// AliveShards implements ControlPlane.
func (s *Sharded) AliveShards() int { return s.regions.AliveShards() }

// RecomputeCount implements ControlPlane.
func (s *Sharded) RecomputeCount(shard int) int { return s.shards[shard].recomputes }

// ShardConsumedPJ implements ControlPlane.
func (s *Sharded) ShardConsumedPJ(shard int) float64 { return s.regions.ConsumedPJ(shard) }

// RecomputeSplit implements ControlPlane, summed across regions.
func (s *Sharded) RecomputeSplit() (full, incremental int) {
	for b := range s.shards {
		stats := s.shards[b].ws.Stats()
		full += stats.Full
		incremental += stats.Incremental
	}
	return full, incremental
}

// FaultRegion implements ControlPlane: it opens or closes a runtime kill
// window on one region. The next Frame call reassigns the region's nodes to
// the nearest in-service region (down) or back home (up).
func (s *Sharded) FaultRegion(shard int, down bool) {
	if shard >= 0 && shard < len(s.shards) {
		s.shards[shard].faultDown = down
	}
}

// ServingRegion returns the index of the region currently serving node
// (exposed for tests and the degradation metrics).
func (s *Sharded) ServingRegion(node topology.NodeID) int {
	if int(node) < 0 || int(node) >= len(s.owner) {
		return -1
	}
	return s.owner[node]
}

// Regions exposes the per-shard controller pools for tests and statistics.
func (s *Sharded) Regions() *tdma.Regions { return s.regions }

// OwnedRange returns the contiguous home node range [lo, hi) of shard (the
// static partition; runtime failover may temporarily serve it from another
// region).
func (s *Sharded) OwnedRange(shard int) (lo, hi int) {
	return s.shards[shard].lo, s.shards[shard].hi
}

// StalenessFrames returns the summary-exchange period.
func (s *Sharded) StalenessFrames() int { return s.staleness }
