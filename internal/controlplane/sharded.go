package controlplane

import (
	"errors"
	"fmt"

	"repro/internal/app"
	"repro/internal/routing"
	"repro/internal/tdma"
	"repro/internal/topology"
)

// regionState is one regional controller's private world: the contiguous node
// range it owns, its (possibly stale) full-mesh view of the reported status,
// the view it adopted at its last recompute, and its own routing workspace and
// table generation.
type regionState struct {
	lo, hi int // owned node range [lo, hi)

	view    routing.SystemState // current belief about the whole mesh
	last    routing.SystemState // view adopted at the last recompute
	hasLast bool

	ws         *routing.DeltaWorkspace
	tables     *routing.Tables
	dead       bool
	recomputes int
}

// Sharded is the regional control plane: the mesh is partitioned into
// contiguous shards of near-equal size (node IDs are row-major, so on a mesh
// the shards are contiguous row bands), each owned by a regional controller
// pool with its own workspace and finite batteries.
//
// Every frame a region hears its own shard's upload slots, so its view of its
// own nodes is always fresh; the other regions' battery/deadlock summaries are
// exchanged only every StalenessFrames frames, so between exchanges the region
// routes on a stale view of the rest of the fabric. A region re-runs the
// routing algorithm only when the state it can see changed, which both skips
// frames where only invisible remote changes happened and batches many remote
// changes into the single recompute after an exchange. A region whose pool
// dies freezes its tables: its nodes keep routing on the last downloaded
// generation while the surviving regions continue to adapt.
//
// The whole schedule is a pure function of (frame index, reported state), so
// sharded sweeps remain byte-identical at every worker count.
type Sharded struct {
	deps      Deps
	staleness int
	finite    bool

	regions *tdma.Regions
	shards  []regionState
	owner   []int // NodeID -> shard index
}

// NewSharded builds a sharded control plane with the given region count and
// summary-exchange period (in frames; 1 = exchange every frame).
func NewSharded(deps Deps, shards, staleness int) (*Sharded, error) {
	k := deps.Graph.NodeCount()
	if shards < 1 {
		return nil, fmt.Errorf("controlplane: sharded plane needs at least one shard, got %d", shards)
	}
	if shards > k {
		return nil, fmt.Errorf("controlplane: %d shards exceed the %d-node platform", shards, k)
	}
	if staleness < 1 {
		return nil, fmt.Errorf("controlplane: staleness bound must be at least one frame, got %d", staleness)
	}
	regions, err := tdma.NewRegions(shards, deps.Controllers, deps.ControllerPower, deps.ControllerBattery)
	if err != nil {
		return nil, err
	}
	s := &Sharded{
		deps:      deps,
		staleness: staleness,
		finite:    deps.ControllerBattery != nil,
		regions:   regions,
		shards:    make([]regionState, shards),
		owner:     make([]int, k),
	}
	for b := range s.shards {
		lo, hi := b*k/shards, (b+1)*k/shards
		// Per-region delta workspaces: each region diffs against its own
		// previous weight matrix, so between exchange frames a region's
		// recompute dirties only the vertices its fresh local reports
		// actually moved, and an exchange frame dirties only the remote
		// vertices whose summaries changed.
		ws := routing.NewDeltaWorkspace()
		ws.SetMode(deps.Recompute)
		s.shards[b] = regionState{lo: lo, hi: hi, ws: ws}
		for n := lo; n < hi; n++ {
			s.owner[n] = b
		}
	}
	return s, nil
}

// Name implements ControlPlane.
func (s *Sharded) Name() string { return string(KindSharded) }

// Frame implements ControlPlane: one controller frame for every living
// region, in shard order for determinism.
func (s *Sharded) Frame(frame int64, aliveNodes int, snapshot *routing.SystemState) FrameReport {
	var rep FrameReport
	// Summary-exchange frames: the first frame always synchronises (every
	// region must learn the initial state), then every staleness-th frame
	// after it.
	exchange := (frame-1)%int64(s.staleness) == 0
	k := s.deps.Graph.NodeCount()
	needLevels := s.deps.Algorithm.NeedsBatteryInfo()

	for b := range s.shards {
		sh := &s.shards[b]
		if sh.dead {
			continue
		}
		// Refresh the region's view: its own shard every frame, the rest of
		// the mesh only on exchange frames.
		if sh.view.Status == nil {
			sh.view = routing.SystemState{Graph: snapshot.Graph, Levels: snapshot.Levels}
			sh.view.Status = make([]routing.NodeStatus, len(snapshot.Status))
		}
		if exchange {
			copy(sh.view.Status, snapshot.Status)
		} else {
			copy(sh.view.Status[sh.lo:sh.hi], snapshot.Status[sh.lo:sh.hi])
		}

		// Deadlock notifications are uploaded by the stuck node, so each is
		// observed (exactly once) by the region that owns the node.
		for n := sh.lo; n < sh.hi; n++ {
			if sh.view.Status[n].Deadlocked && (!sh.hasLast || !sh.last.Status[n].Deadlocked) {
				rep.NewDeadlockReports++
			}
		}

		changed := s.regionChanged(sh, needLevels)

		// The regional controller still runs the routing phases over the full
		// mesh (routes cross shard boundaries), so a recompute costs the same
		// k-node computation as the centralized controller's; the saving is in
		// how rarely the visible state changes and in downloading tables only
		// to the region's own alive nodes.
		framePJ := s.deps.TDMA.ControllerFrameEnergyPJ(s.deps.ControllerPower, k, changed)
		downloadPJ := 0.0
		if changed {
			aliveInShard := 0
			for n := sh.lo; n < sh.hi; n++ {
				if sh.view.Status[n].Alive {
					aliveInShard++
				}
			}
			downloadPJ = s.deps.TDMA.DownloadEnergyPerNodePJ() * float64(aliveInShard)
		}
		rep.ControllerPJ += framePJ
		rep.DownloadPJ += downloadPJ

		pool := s.regions.Pool(b)
		if err := pool.ServeFrame(framePJ+downloadPJ, 0); err != nil {
			if errors.Is(err, tdma.ErrAllControllersDead) && s.finite {
				// The region dies with its tables frozen: its nodes route on
				// the last downloaded generation from here on.
				sh.dead = true
				continue
			}
		}
		pool.RestAll(s.deps.TDMA.FramePeriodCycles)

		if changed || sh.tables == nil {
			plan := sh.ws.ComputeInto(s.deps.Algorithm, &sh.view, s.deps.Destinations, sh.tables)
			sh.tables = plan.Tables
			s.adoptView(sh)
			sh.recomputes++
			rep.Recomputed = true
			rep.ShardRecomputes++
		}
	}

	if s.finite && s.regions.AllDead() {
		rep.ControllersDead = true
	}
	return rep
}

// regionChanged reports whether the region's current view differs from the
// view adopted at its last recompute in any way the algorithm cares about.
func (s *Sharded) regionChanged(sh *regionState, needLevels bool) bool {
	if !sh.hasLast || len(sh.last.Status) != len(sh.view.Status) {
		return true
	}
	for n, st := range sh.view.Status {
		prev := sh.last.Status[n]
		if st.Alive != prev.Alive || st.Deadlocked != prev.Deadlocked {
			return true
		}
		if needLevels && st.BatteryLevel != prev.BatteryLevel {
			return true
		}
	}
	return false
}

// adoptView records the region's current view as its last-recomputed
// reference, reusing the region-owned buffer. The sharded plane never retains
// the engine's snapshot buffer, so it never sets FrameReport.Adopted.
func (s *Sharded) adoptView(sh *regionState) {
	if sh.last.Status == nil {
		sh.last = routing.SystemState{Graph: sh.view.Graph, Levels: sh.view.Levels}
		sh.last.Status = make([]routing.NodeStatus, len(sh.view.Status))
	}
	copy(sh.last.Status, sh.view.Status)
	sh.hasLast = true
}

// ownerOf returns the region owning node, or nil for out-of-range IDs.
func (s *Sharded) ownerOf(node topology.NodeID) *regionState {
	if int(node) < 0 || int(node) >= len(s.owner) {
		return nil
	}
	return &s.shards[s.owner[node]]
}

// Table implements ControlPlane: each node uses the tables its own region last
// downloaded (nil-safe before a region's first recompute).
func (s *Sharded) Table(node topology.NodeID) (routing.Table, bool) {
	sh := s.ownerOf(node)
	if sh == nil {
		return routing.Table{}, false
	}
	return sh.tables.Table(node)
}

// NextHop implements ControlPlane. The relay decision at `from` is made by
// from's own region's tables.
func (s *Sharded) NextHop(from, dest topology.NodeID) topology.NodeID {
	sh := s.ownerOf(from)
	if sh == nil {
		return topology.Invalid
	}
	return sh.tables.NextHop(from, dest)
}

// RouteTo implements ControlPlane.
func (s *Sharded) RouteTo(node topology.NodeID, id app.ModuleID) (routing.Route, bool) {
	sh := s.ownerOf(node)
	if sh == nil {
		return routing.Route{}, false
	}
	return sh.tables.RouteTo(node, id)
}

// Shards implements ControlPlane.
func (s *Sharded) Shards() int { return len(s.shards) }

// AliveShards implements ControlPlane.
func (s *Sharded) AliveShards() int { return s.regions.AliveShards() }

// RecomputeCount implements ControlPlane.
func (s *Sharded) RecomputeCount(shard int) int { return s.shards[shard].recomputes }

// ShardConsumedPJ implements ControlPlane.
func (s *Sharded) ShardConsumedPJ(shard int) float64 { return s.regions.ConsumedPJ(shard) }

// RecomputeSplit implements ControlPlane, summed across regions.
func (s *Sharded) RecomputeSplit() (full, incremental int) {
	for b := range s.shards {
		stats := s.shards[b].ws.Stats()
		full += stats.Full
		incremental += stats.Incremental
	}
	return full, incremental
}

// Regions exposes the per-shard controller pools for tests and statistics.
func (s *Sharded) Regions() *tdma.Regions { return s.regions }

// OwnedRange returns the contiguous node range [lo, hi) owned by shard.
func (s *Sharded) OwnedRange(shard int) (lo, hi int) {
	return s.shards[shard].lo, s.shards[shard].hi
}

// StalenessFrames returns the summary-exchange period.
func (s *Sharded) StalenessFrames() int { return s.staleness }
