// Package controlplane is the controller side of the TDMA control mechanism,
// extracted from the simulation engine so that alternative controller
// architectures are components instead of engine rewrites. A ControlPlane
// owns everything the paper's Sec 5.3/6 controller does between the upload
// and download phases of a frame: it adopts the reported system snapshot,
// decides whether the routing algorithm must re-run, produces the routing
// tables each node downloads, and accounts the controller-side energy and
// liveness (finite controller batteries, Sec 7.3).
//
// Two implementations ship:
//
//   - Centralized is the paper's single (optionally redundant) central
//     controller: one global snapshot, one recompute decision, one table set.
//     It is a behaviour-preserving extraction of the pre-refactor engine
//     logic and is pinned to it by an equivalence suite.
//
//   - Sharded partitions the mesh into contiguous regions, each owned by a
//     regional controller with its own workspace, redundant-controller pool
//     and finite batteries. A region recomputes only when the state it can
//     see changed: its own shard's reports are fresh every frame, while the
//     other regions' battery summaries arrive only every StalenessFrames
//     frames. Individual regions can exhaust their batteries and die while
//     the rest of the fabric keeps routing on the survivors' tables.
//
// Determinism contract: a ControlPlane must be a pure function of the frame
// index and the reported state — no clocks, no randomness, no dependence on
// goroutine scheduling — so that every sweep built on top remains
// byte-identical at any worker count.
package controlplane

import (
	"fmt"
	"strings"

	"repro/internal/app"
	"repro/internal/battery"
	"repro/internal/energy"
	"repro/internal/routing"
	"repro/internal/tdma"
	"repro/internal/topology"
)

// Kind names a control-plane implementation.
type Kind string

// The registered control-plane kinds.
const (
	// KindCentralized is the paper's single central controller (the default).
	KindCentralized Kind = "centralized"
	// KindSharded is the regional-controller control plane: contiguous mesh
	// shards, per-shard recompute, bounded-staleness summary exchange.
	KindSharded Kind = "sharded"
)

// KindNames lists the accepted control-plane names, for CLI error messages.
func KindNames() []string {
	return []string{string(KindCentralized), string(KindSharded)}
}

// ParseKind resolves a control-plane name; "" selects the centralized
// default. A typo lists the valid names.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "", string(KindCentralized):
		return KindCentralized, nil
	case string(KindSharded):
		return KindSharded, nil
	default:
		return "", fmt.Errorf("controlplane: unknown control plane %q (want one of: %s)",
			name, strings.Join(KindNames(), ", "))
	}
}

// DefaultShards is the shard count used when a sharded configuration does not
// specify one.
const DefaultShards = 4

// RecomputeNames lists the accepted recompute-strategy names, for CLI error
// messages.
func RecomputeNames() []string {
	return []string{routing.RecomputeIncremental.String(), routing.RecomputeFull.String()}
}

// ParseRecompute resolves a recompute-strategy name; "" selects the
// incremental default. A typo lists the valid names.
func ParseRecompute(name string) (routing.RecomputeMode, error) {
	switch name {
	case "", routing.RecomputeIncremental.String():
		return routing.RecomputeIncremental, nil
	case routing.RecomputeFull.String():
		return routing.RecomputeFull, nil
	default:
		return 0, fmt.Errorf("controlplane: unknown recompute strategy %q (want one of: %s)",
			name, strings.Join(RecomputeNames(), ", "))
	}
}

// Config selects and parameterises a control-plane implementation. The zero
// value selects the centralized controller of the paper.
type Config struct {
	// Kind is the implementation ("" = KindCentralized).
	Kind Kind
	// Shards is the number of regional controllers (KindSharded only;
	// 0 = DefaultShards).
	Shards int
	// StalenessFrames is the period, in TDMA frames, at which regional
	// controllers exchange battery summaries about each other's shards
	// (KindSharded only; 0 = 1 = exchange every frame). Between exchanges a
	// region routes on a stale view of the rest of the fabric.
	StalenessFrames int
	// Recompute selects the phase-2 strategy: "" or "incremental" repairs
	// the shortest-path matrices from the dirty set with automatic full
	// fallback, "full" always reruns the complete Floyd–Warshall pass.
	// Both produce byte-identical tables; the knob exists as a baseline
	// for equivalence checks and scaling measurements.
	Recompute string
}

// ShardCount returns the number of regional controllers the configuration
// will build: 1 for the centralized plane, the (defaulted) shard count for the
// sharded one. Fault schedules are validated against it before any plane is
// constructed.
func (c Config) ShardCount() int {
	if c.Kind == KindSharded {
		if c.Shards == 0 {
			return DefaultShards
		}
		return c.Shards
	}
	return 1
}

// Validate checks the configuration against a k-node platform.
func (c Config) Validate(k int) error {
	if _, err := ParseKind(string(c.Kind)); err != nil {
		return err
	}
	if c.Shards < 0 {
		return fmt.Errorf("controlplane: shard count must be non-negative, got %d", c.Shards)
	}
	if c.StalenessFrames < 0 {
		return fmt.Errorf("controlplane: staleness bound must be non-negative, got %d frames", c.StalenessFrames)
	}
	if _, err := ParseRecompute(c.Recompute); err != nil {
		return err
	}
	switch c.Kind {
	case "", KindCentralized:
		if c.Shards > 1 {
			return fmt.Errorf("controlplane: %d shards require the sharded control plane", c.Shards)
		}
		if c.StalenessFrames > 1 {
			return fmt.Errorf("controlplane: a staleness bound of %d frames requires the sharded control plane", c.StalenessFrames)
		}
	case KindSharded:
		shards := c.Shards
		if shards == 0 {
			shards = DefaultShards
		}
		if k > 0 && shards > k {
			return fmt.Errorf("controlplane: %d shards exceed the %d-node platform", shards, k)
		}
	}
	return nil
}

// Deps carries everything a control plane needs from the platform: the
// topology and routing algorithm, the module duplicate lists, the TDMA
// calibration and the controller power/battery models.
type Deps struct {
	Graph        *topology.Graph
	Algorithm    routing.Algorithm
	Destinations map[app.ModuleID][]topology.NodeID
	TDMA         tdma.Params
	// Controllers is the number of redundant controllers per pool: the whole
	// pool for Centralized, per regional pool for Sharded.
	Controllers int
	// ControllerPower characterises each controller's dynamic/leakage power.
	ControllerPower energy.Controller
	// ControllerBattery builds controller batteries; nil models the
	// infinite-energy controller of Sec 7.1/7.2.
	ControllerBattery battery.Factory
	// Recompute is the phase-2 strategy every workspace runs with; the zero
	// value is the incremental repair (see routing.RecomputeMode).
	Recompute routing.RecomputeMode
}

// FrameReport is what a control plane hands back to the engine for one frame.
type FrameReport struct {
	// ControllerPJ is the energy the controller(s) consumed this frame
	// (bookkeeping plus any routing computation).
	ControllerPJ float64
	// DownloadPJ is the shared-medium energy spent downloading new tables.
	DownloadPJ float64
	// NewDeadlockReports counts deadlock notifications first uploaded this
	// frame, relative to the controllers' previously adopted state.
	NewDeadlockReports int
	// Recomputed is true when any controller re-ran the routing algorithm.
	Recomputed bool
	// ShardRecomputes is the number of regional recomputations this frame
	// (1 for a centralized recompute).
	ShardRecomputes int
	// RetainedSnapshot is true when the control plane retained the snapshot
	// pointer as its new reference state; the engine must hand a different
	// buffer to the next Frame call and keep this one intact until the next
	// retaining frame.
	RetainedSnapshot bool
	// Adopted is the number of nodes currently served by a region other than
	// their home region — orphans adopted after a fault killed their
	// controller (sharded plane only; always 0 while no region is
	// fault-down).
	Adopted int
	// Failovers lists the shard hand-offs that happened this frame: every
	// contiguous node block whose serving region changed, either because its
	// home region went down (adoption) or because it came back (return).
	// Nil on quiet frames.
	Failovers []Failover
	// ControllersDead is true when every controller battery is exhausted and
	// the control plane can never produce tables again — the Sec 7.3 system
	// death. Planes with infinite-energy controllers never set it.
	ControllersDead bool
}

// Failover describes one shard hand-off: the Nodes nodes homed in region From
// are served by region To from this frame on. From == home region, To == the
// adopter (or the home region itself when the block returns after a restore).
type Failover struct {
	// From is the region that previously served the block.
	From int
	// To is the region serving it from this frame on.
	To int
	// Home is the block's home region (the shard the nodes belong to).
	Home int
	// Nodes is the number of nodes handed over.
	Nodes int
}

// ControlPlane is the engine's interface to the controller architecture. The
// engine calls Frame once per TDMA control frame (after the upload phase) and
// routes every packet through the table accessors, which reflect the tables
// most recently downloaded to each node.
//
// Implementations must be deterministic: Frame must be a pure function of
// (frame index, reported state) and the plane's own prior decisions.
type ControlPlane interface {
	// Name identifies the implementation ("centralized", "sharded").
	Name() string

	// Frame runs the controller side of one TDMA frame: adopt the snapshot,
	// decide recompute, rebuild tables, account energy and liveness.
	// aliveNodes is the number of nodes that survived the upload phase;
	// snapshot is the engine-owned status report (see
	// FrameReport.RetainedSnapshot for the buffer-retention contract).
	Frame(frame int64, aliveNodes int, snapshot *routing.SystemState) FrameReport

	// FaultRegion opens (down = true) or closes (down = false) a runtime
	// fault window on region `shard`, injected by the engine's fault
	// schedule. A fault-down region stops serving frames: the centralized
	// plane (shard 0) freezes its last-known-good tables for the whole mesh,
	// while the sharded plane hands the region's nodes to the nearest
	// in-service region until the window closes. Distinct from battery
	// death, which is permanent and never fails over.
	FaultRegion(shard int, down bool)

	// Table returns the view of node's current routing table; ok is false
	// when the node has none (dead when its tables were built, or its region
	// never produced tables).
	Table(node topology.NodeID) (routing.Table, bool)
	// NextHop returns the next hop from `from` towards `dest`, or
	// topology.Invalid if unknown.
	NextHop(from, dest topology.NodeID) topology.NodeID
	// RouteTo returns the route downloaded to node for the given module.
	RouteTo(node topology.NodeID, id app.ModuleID) (routing.Route, bool)

	// Shards returns the number of regional controllers (1 for centralized).
	Shards() int
	// AliveShards returns how many regions can still serve frames.
	AliveShards() int
	// RecomputeCount returns how many times region `shard` re-ran the routing
	// algorithm so far.
	RecomputeCount(shard int) int
	// ShardConsumedPJ returns the controller energy drained by region
	// `shard`'s pool so far.
	ShardConsumedPJ(shard int) float64
	// RecomputeSplit reports how the plane's recomputations executed so
	// far: full Floyd–Warshall passes vs incremental dirty-set repairs
	// (summed across regions for the sharded plane).
	RecomputeSplit() (full, incremental int)
}

// New builds the control plane selected by cfg.
func New(cfg Config, deps Deps) (ControlPlane, error) {
	if err := cfg.Validate(deps.Graph.NodeCount()); err != nil {
		return nil, err
	}
	mode, err := ParseRecompute(cfg.Recompute)
	if err != nil {
		return nil, err
	}
	deps.Recompute = mode
	switch cfg.Kind {
	case "", KindCentralized:
		return NewCentralized(deps)
	case KindSharded:
		shards := cfg.ShardCount()
		staleness := cfg.StalenessFrames
		if staleness == 0 {
			staleness = 1
		}
		return NewSharded(deps, shards, staleness)
	default:
		_, err := ParseKind(string(cfg.Kind))
		return nil, err
	}
}
