package controlplane

import (
	"errors"

	"repro/internal/app"
	"repro/internal/routing"
	"repro/internal/tdma"
	"repro/internal/topology"
)

// Centralized is the paper's control plane: one central controller (backed by
// an optionally redundant, optionally battery-powered pool) that adopts the
// full system snapshot every frame, re-runs the routing algorithm whenever
// the information it uses changed, and downloads one table set to the whole
// mesh. It is a behaviour-preserving extraction of the pre-refactor engine
// logic; the equivalence suite pins it to a transcribed reference of that
// logic frame by frame.
type Centralized struct {
	deps   Deps
	pool   *tdma.Pool
	finite bool

	// Routing state: one reusable delta workspace owns every phase buffer
	// (including the previous weight matrix its incremental phase 2 diffs
	// against), tables points at the workspace-internal buffer of the
	// latest plan (handed back as prev on the next recompute, which writes
	// into the other ping-pong buffer), and last is the snapshot adopted at
	// the latest recompute (an engine-owned buffer retained under the
	// FrameReport.RetainedSnapshot contract).
	ws         *routing.DeltaWorkspace
	tables     *routing.Tables
	last       *routing.SystemState
	recomputes int

	// down is true while the engine's fault schedule holds the controller
	// pool in a kill window (FaultRegion): the plane skips its frame work —
	// no energy, no recompute, no snapshot adoption — and the mesh routes on
	// the last-known-good tables until the window closes.
	down bool
}

// NewCentralized builds the centralized control plane.
func NewCentralized(deps Deps) (*Centralized, error) {
	pool, err := tdma.NewPool(deps.Controllers, deps.ControllerPower, deps.ControllerBattery)
	if err != nil {
		return nil, err
	}
	ws := routing.NewDeltaWorkspace()
	ws.SetMode(deps.Recompute)
	return &Centralized{
		deps:   deps,
		pool:   pool,
		finite: deps.ControllerBattery != nil,
		ws:     ws,
	}, nil
}

// Name implements ControlPlane.
func (c *Centralized) Name() string { return string(KindCentralized) }

// Frame implements ControlPlane. The sequence — deadlock-report counting,
// change detection, energy accounting, pool serving, recompute — reproduces
// the pre-refactor engine's processFrame exactly.
func (c *Centralized) Frame(frame int64, aliveNodes int, snapshot *routing.SystemState) FrameReport {
	var rep FrameReport
	if c.down {
		// Kill window: the controller hears nothing and does nothing. Its
		// reference state (c.last) is deliberately left untouched, so the
		// first frame after the window closes re-runs the change detection
		// against the pre-fault state and catches up in one recompute.
		return rep
	}
	for id, st := range snapshot.Status {
		if st.Deadlocked && (c.last == nil || !c.last.Status[id].Deadlocked) {
			rep.NewDeadlockReports++
		}
	}

	changed := c.stateChanged(snapshot)

	// Controller energy: bookkeeping every frame, plus the routing
	// computation and the table download when the state changed.
	k := c.deps.Graph.NodeCount()
	rep.ControllerPJ = c.deps.TDMA.ControllerFrameEnergyPJ(c.deps.ControllerPower, k, changed)
	if changed {
		rep.DownloadPJ = c.deps.TDMA.DownloadEnergyPerNodePJ() * float64(aliveNodes)
	}
	if err := c.pool.ServeFrame(rep.ControllerPJ+rep.DownloadPJ, 0); err != nil {
		if errors.Is(err, tdma.ErrAllControllersDead) && c.finite {
			rep.ControllersDead = true
			return rep
		}
	}
	c.pool.RestAll(c.deps.TDMA.FramePeriodCycles)

	if changed || c.tables == nil {
		plan := c.ws.ComputeInto(c.deps.Algorithm, snapshot, c.deps.Destinations, c.tables)
		c.tables = plan.Tables
		c.last = snapshot
		c.recomputes++
		rep.RetainedSnapshot = true
		rep.Recomputed = true
		rep.ShardRecomputes = 1
	}
	return rep
}

// stateChanged reports whether the newly reported snapshot differs from the
// previously adopted one in any way the routing algorithm cares about. Both
// snapshots are dense slices over the same node set, so this is a linear
// compare.
func (c *Centralized) stateChanged(snapshot *routing.SystemState) bool {
	if c.last == nil || len(c.last.Status) != len(snapshot.Status) {
		return true
	}
	if c.last.TopologyEpoch != snapshot.TopologyEpoch {
		// The fault schedule removed or healed a link since the last
		// recompute: the weight matrix changed even though no node status
		// did.
		return true
	}
	needLevels := c.deps.Algorithm.NeedsBatteryInfo()
	for id, st := range snapshot.Status {
		prev := c.last.Status[id]
		if st.Alive != prev.Alive || st.Deadlocked != prev.Deadlocked {
			return true
		}
		if needLevels && st.BatteryLevel != prev.BatteryLevel {
			return true
		}
	}
	return false
}

// Table implements ControlPlane.
func (c *Centralized) Table(node topology.NodeID) (routing.Table, bool) {
	return c.tables.Table(node)
}

// NextHop implements ControlPlane.
func (c *Centralized) NextHop(from, dest topology.NodeID) topology.NodeID {
	return c.tables.NextHop(from, dest)
}

// RouteTo implements ControlPlane.
func (c *Centralized) RouteTo(node topology.NodeID, id app.ModuleID) (routing.Route, bool) {
	return c.tables.RouteTo(node, id)
}

// Shards implements ControlPlane: the centralized plane is one region.
func (c *Centralized) Shards() int { return 1 }

// AliveShards implements ControlPlane.
func (c *Centralized) AliveShards() int {
	if c.pool.AllDead() {
		return 0
	}
	return 1
}

// RecomputeCount implements ControlPlane.
func (c *Centralized) RecomputeCount(shard int) int {
	if shard != 0 {
		return 0
	}
	return c.recomputes
}

// ShardConsumedPJ implements ControlPlane.
func (c *Centralized) ShardConsumedPJ(shard int) float64 {
	if shard != 0 {
		return 0
	}
	return c.pool.ConsumedPJ()
}

// RecomputeSplit implements ControlPlane.
func (c *Centralized) RecomputeSplit() (full, incremental int) {
	stats := c.ws.Stats()
	return stats.Full, stats.Incremental
}

// FaultRegion implements ControlPlane: the centralized plane is one region,
// so any shard index toggles the whole pool's kill window.
func (c *Centralized) FaultRegion(shard int, down bool) { c.down = down }

// Pool exposes the underlying controller pool for tests and statistics.
func (c *Centralized) Pool() *tdma.Pool { return c.pool }
