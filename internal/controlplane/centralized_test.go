package controlplane

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/battery"
	"repro/internal/routing"
	"repro/internal/tdma"
	"repro/internal/topology"
)

// This file pins the extracted Centralized control plane to the pre-refactor
// engine behaviour: refEngineControl below is a faithful transcription of the
// controller section of the old sim.processFrame (deadlock counting, change
// detection, energy accounting, pool serving, recompute, snapshot adoption),
// and the equivalence test asserts both produce identical frame reports and
// identical routing tables over randomized snapshot sequences — including the
// finite-battery death path of Sec 7.3.

// refEngineControl is the pre-refactor engine's controller logic, kept
// verbatim (the engine held pool/ws/tables/lastSnapshot as its own fields and
// ran this sequence inline in processFrame).
type refEngineControl struct {
	deps   Deps
	pool   *tdma.Pool
	finite bool

	ws     *routing.Workspace
	tables *routing.Tables
	last   *routing.SystemState
}

func newRefEngineControl(t *testing.T, deps Deps) *refEngineControl {
	t.Helper()
	pool, err := tdma.NewPool(deps.Controllers, deps.ControllerPower, deps.ControllerBattery)
	if err != nil {
		t.Fatal(err)
	}
	return &refEngineControl{deps: deps, pool: pool, finite: deps.ControllerBattery != nil, ws: routing.NewWorkspace()}
}

func (r *refEngineControl) frame(aliveNodes int, snapshot *routing.SystemState) FrameReport {
	var rep FrameReport
	for id, st := range snapshot.Status {
		if st.Deadlocked && (r.last == nil || !r.last.Status[id].Deadlocked) {
			rep.NewDeadlockReports++
		}
	}
	changed := r.stateChanged(snapshot)
	k := r.deps.Graph.NodeCount()
	rep.ControllerPJ = r.deps.TDMA.ControllerFrameEnergyPJ(r.deps.ControllerPower, k, changed)
	if changed {
		rep.DownloadPJ = r.deps.TDMA.DownloadEnergyPerNodePJ() * float64(aliveNodes)
	}
	if err := r.pool.ServeFrame(rep.ControllerPJ+rep.DownloadPJ, 0); err != nil {
		if errors.Is(err, tdma.ErrAllControllersDead) && r.finite {
			rep.ControllersDead = true
			return rep
		}
	}
	r.pool.RestAll(r.deps.TDMA.FramePeriodCycles)
	if changed || r.tables == nil {
		plan := routing.ComputeInto(r.ws, r.deps.Algorithm, snapshot, r.deps.Destinations, r.tables)
		r.tables = plan.Tables
		r.last = snapshot
		rep.RetainedSnapshot = true
		rep.Recomputed = true
		rep.ShardRecomputes = 1
	}
	return rep
}

func (r *refEngineControl) stateChanged(snapshot *routing.SystemState) bool {
	if r.last == nil || len(r.last.Status) != len(snapshot.Status) {
		return true
	}
	needLevels := r.deps.Algorithm.NeedsBatteryInfo()
	for id, st := range snapshot.Status {
		prev := r.last.Status[id]
		if st.Alive != prev.Alive || st.Deadlocked != prev.Deadlocked {
			return true
		}
		if needLevels && st.BatteryLevel != prev.BatteryLevel {
			return true
		}
	}
	return false
}

// compareReports asserts two frame reports are identical (energies computed
// through the same call sequence must match bitwise).
func compareReports(t *testing.T, frame int64, got, want FrameReport) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("frame %d: report = %+v, want %+v", frame, got, want)
	}
}

// compareTables asserts the control plane serves exactly the reference's
// tables: same per-node presence, next hops and module routes.
func compareTables(t *testing.T, frame int64, deps Deps, cp ControlPlane, tables *routing.Tables) {
	t.Helper()
	k := deps.Graph.NodeCount()
	for n := 0; n < k; n++ {
		node := topology.NodeID(n)
		_, gotOK := cp.Table(node)
		_, wantOK := tables.Table(node)
		if gotOK != wantOK {
			t.Fatalf("frame %d: Table(%d) present = %v, want %v", frame, n, gotOK, wantOK)
		}
		for d := 0; d < k; d++ {
			dest := topology.NodeID(d)
			if got, want := cp.NextHop(node, dest), tables.NextHop(node, dest); got != want {
				t.Fatalf("frame %d: NextHop(%d,%d) = %d, want %d", frame, n, d, got, want)
			}
		}
		for m := range deps.Destinations {
			got, gotOK := cp.RouteTo(node, m)
			want, wantOK := tables.RouteTo(node, m)
			if gotOK != wantOK || got != want {
				t.Fatalf("frame %d: RouteTo(%d,%d) = %+v,%v, want %+v,%v", frame, n, m, got, gotOK, want, wantOK)
			}
		}
	}
}

// driveSequence evolves a master status vector like the engine's upload phase
// would: battery drift, occasional deaths and deadlock flags, reported into
// double-buffered snapshots exactly as sim.processFrame hands them to the
// plane (the buffer flips only on adopted frames).
func driveSequence(t *testing.T, deps Deps, cp *Centralized, ref *refEngineControl, frames int, seed int64) {
	t.Helper()
	const levels = 8
	k := deps.Graph.NodeCount()
	rng := rand.New(rand.NewSource(seed))
	master := make([]routing.NodeStatus, k)
	for i := range master {
		master[i] = routing.NodeStatus{Alive: true, BatteryLevel: levels - 1}
	}
	snaps := [2]*routing.SystemState{fullState(deps.Graph, levels), fullState(deps.Graph, levels)}
	flip := 0
	for frame := int64(1); frame <= int64(frames); frame++ {
		cur := snaps[flip]
		copy(cur.Status, master)
		alive := aliveCount(cur)

		rep := cp.Frame(frame, alive, cur)
		refRep := ref.frame(alive, cur)
		compareReports(t, frame, rep, refRep)
		if rep.ControllersDead {
			if cp.AliveShards() != 0 {
				t.Fatalf("frame %d: dead plane reports %d alive shards", frame, cp.AliveShards())
			}
			return
		}
		compareTables(t, frame, deps, cp, ref.tables)
		if cp.RecomputeCount(0) != 0 && cp.ShardConsumedPJ(0) <= 0 {
			t.Fatalf("frame %d: recomputed but ShardConsumedPJ = %g", frame, cp.ShardConsumedPJ(0))
		}
		if rep.RetainedSnapshot {
			flip ^= 1
		}

		// Evolve the master state: drift some batteries, occasionally kill a
		// node or raise/clear a deadlock flag; some frames change nothing, so
		// the no-recompute path is exercised too.
		if rng.Float64() < 0.7 {
			for i := range master {
				if !master[i].Alive {
					continue
				}
				if rng.Float64() < 0.3 && master[i].BatteryLevel > 0 {
					master[i].BatteryLevel--
				}
				if rng.Float64() < 0.03 {
					master[i].Alive = false
				}
				master[i].Deadlocked = rng.Float64() < 0.1
			}
		}
	}
}

// TestCentralizedMatchesEngineReference is the extraction pin: over meshes
// 4-8, both algorithms and both controller-battery regimes, the Centralized
// plane must reproduce the pre-refactor engine logic frame by frame.
func TestCentralizedMatchesEngineReference(t *testing.T) {
	for _, meshSize := range []int{4, 6, 8} {
		for _, alg := range []routing.Algorithm{routing.SDR{}, routing.NewEAR()} {
			for _, finite := range []bool{false, true} {
				name := fmt.Sprintf("%dx%d/%s/finite=%v", meshSize, meshSize, alg.Name(), finite)
				t.Run(name, func(t *testing.T) {
					deps := testDeps(meshSize, alg)
					deps.Controllers = 2
					if finite {
						// Small enough that the pool dies within the sequence,
						// so the ControllersDead path is compared too.
						deps.ControllerBattery = battery.IdealFactory(40 * float64(meshSize*meshSize))
					}
					cp, err := NewCentralized(deps)
					if err != nil {
						t.Fatal(err)
					}
					driveSequence(t, deps, cp, newRefEngineControl(t, deps), 40, int64(meshSize)*17+int64(len(alg.Name())))
				})
			}
		}
	}
}

// TestCentralizedInfinitePoolNeverDies guards the Sec 7.1/7.2 regime: with no
// controller batteries the plane must never report ControllersDead, whatever
// the pool error path does.
func TestCentralizedInfinitePoolNeverDies(t *testing.T) {
	deps := testDeps(4, routing.NewEAR())
	cp, err := NewCentralized(deps)
	if err != nil {
		t.Fatal(err)
	}
	// Double-buffered snapshots, per the FrameReport.RetainedSnapshot contract.
	master := fullState(deps.Graph, 8)
	snaps := [2]*routing.SystemState{fullState(deps.Graph, 8), fullState(deps.Graph, 8)}
	flip := 0
	for frame := int64(1); frame <= 200; frame++ {
		// Force a recompute (and its higher energy draw) every frame.
		master.Status[int(frame)%len(master.Status)].BatteryLevel ^= 1
		cur := snaps[flip]
		copy(cur.Status, master.Status)
		rep := cp.Frame(frame, aliveCount(cur), cur)
		if rep.RetainedSnapshot {
			flip ^= 1
		}
		if rep.ControllersDead {
			t.Fatalf("frame %d: infinite-energy pool reported dead", frame)
		}
		if !rep.Recomputed || rep.ShardRecomputes != 1 {
			t.Fatalf("frame %d: forced change did not recompute (%+v)", frame, rep)
		}
	}
	if got := cp.RecomputeCount(0); got != 200 {
		t.Fatalf("RecomputeCount = %d, want 200", got)
	}
}
