package controlplane

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/energy"
	"repro/internal/routing"
	"repro/internal/tdma"
	"repro/internal/topology"
)

// testDeps builds a complete dependency set for an n x n mesh with the
// checkerboard-style destination lists used throughout the routing tests.
func testDeps(meshSize int, alg routing.Algorithm) Deps {
	mesh := topology.MustMesh(meshSize, meshSize, topology.DefaultSpacingCM)
	dests := map[app.ModuleID][]topology.NodeID{}
	for _, n := range mesh.Nodes() {
		m := app.ModuleID(int(n.ID)%3 + 1)
		dests[m] = append(dests[m], n.ID)
	}
	return Deps{
		Graph:           mesh.Graph,
		Algorithm:       alg,
		Destinations:    dests,
		TDMA:            tdma.DefaultParams(),
		Controllers:     1,
		ControllerPower: energy.PaperController4x4(),
	}
}

// fullState returns a snapshot in which every node is alive with a full
// battery.
func fullState(g *topology.Graph, levels int) *routing.SystemState {
	st := &routing.SystemState{Graph: g, Levels: levels, Status: make([]routing.NodeStatus, g.NodeCount())}
	for i := range st.Status {
		st.Status[i] = routing.NodeStatus{Alive: true, BatteryLevel: levels - 1}
	}
	return st
}

func aliveCount(s *routing.SystemState) int {
	alive := 0
	for _, st := range s.Status {
		if st.Alive {
			alive++
		}
	}
	return alive
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Kind
	}{
		{"", KindCentralized},
		{"centralized", KindCentralized},
		{"sharded", KindSharded},
	} {
		kind, err := ParseKind(tc.name)
		if err != nil || kind != tc.want {
			t.Errorf("ParseKind(%q) = %q, %v, want %q", tc.name, kind, err, tc.want)
		}
	}
	_, err := ParseKind("shraded")
	if err == nil {
		t.Fatal("typo accepted")
	}
	// The error must list every valid name so the CLI message is actionable.
	for _, name := range KindNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("typo error %q does not list %q", err, name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	const k = 16
	valid := []Config{
		{},
		{Kind: KindCentralized},
		{Kind: KindCentralized, Shards: 1, StalenessFrames: 1},
		{Kind: KindSharded},
		{Kind: KindSharded, Shards: 16, StalenessFrames: 128},
	}
	for _, cfg := range valid {
		if err := cfg.Validate(k); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	invalid := []Config{
		{Kind: "shraded"},
		{Shards: -1},
		{StalenessFrames: -4},
		{Kind: KindCentralized, Shards: 2},
		{Kind: KindCentralized, StalenessFrames: 8},
		{Kind: KindSharded, Shards: 17},
	}
	for _, cfg := range invalid {
		if err := cfg.Validate(k); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid configuration", cfg)
		}
	}
}

func TestNewDispatchesAndDefaults(t *testing.T) {
	deps := testDeps(4, routing.NewEAR())
	cp, err := New(Config{}, deps)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cp.(*Centralized); !ok || cp.Name() != string(KindCentralized) || cp.Shards() != 1 {
		t.Fatalf("zero config built %T (%s, %d shards), want Centralized", cp, cp.Name(), cp.Shards())
	}
	cp, err = New(Config{Kind: KindSharded}, deps)
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := cp.(*Sharded)
	if !ok || cp.Shards() != DefaultShards {
		t.Fatalf("sharded zero config built %T with %d shards, want Sharded with %d", cp, cp.Shards(), DefaultShards)
	}
	if sh.StalenessFrames() != 1 {
		t.Fatalf("default staleness = %d frames, want 1", sh.StalenessFrames())
	}
	if _, err := New(Config{Kind: KindSharded, Shards: 64}, deps); err == nil {
		t.Fatal("New accepted more shards than nodes")
	}
}
