package controlplane

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// frameOn runs one sharded frame over a fresh copy of the master state
// (Frame may be called with the same snapshot every frame because the
// sharded plane copies, never retains).
func frameOn(s *Sharded, frame int64, snap *routing.SystemState) FrameReport {
	return s.Frame(frame, aliveCount(snap), snap)
}

// TestShardedFailoverAdoptionAndHandback follows one region through a full
// kill window: its home block is adopted by the nearest in-service region
// (tie to the lower index), served from that region's tables, and handed
// back when the window closes — with the adoption visible in the frame
// report both times.
func TestShardedFailoverAdoptionAndHandback(t *testing.T) {
	deps := testDeps(8, routing.NewEAR())
	s, err := NewSharded(deps, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := fullState(deps.Graph, 8)
	if rep := frameOn(s, 1, snap); len(rep.Failovers) != 0 || rep.Adopted != 0 {
		t.Fatalf("bootstrap frame reported failovers: %+v", rep)
	}
	lo, hi := s.OwnedRange(1)
	orphan := topology.NodeID(lo)

	s.FaultRegion(1, true)
	rep := frameOn(s, 2, snap)
	// Region 1's neighbours 0 and 2 are both distance 1; the tie goes to 0.
	want := Failover{From: 1, To: 0, Home: 1, Nodes: hi - lo}
	if len(rep.Failovers) != 1 || rep.Failovers[0] != want {
		t.Fatalf("failovers = %+v, want [%+v]", rep.Failovers, want)
	}
	if rep.Adopted != hi-lo {
		t.Fatalf("adopted gauge = %d, want %d", rep.Adopted, hi-lo)
	}
	if got := s.ServingRegion(orphan); got != 0 {
		t.Fatalf("orphan served by region %d, want 0", got)
	}
	if _, ok := s.Table(orphan); !ok {
		t.Fatal("orphan node has no routing table during the kill window")
	}
	// The assignment is stable while the window stays open.
	rep = frameOn(s, 3, snap)
	if len(rep.Failovers) != 0 || rep.Adopted != hi-lo {
		t.Fatalf("steady-state window frame: %+v", rep)
	}

	s.FaultRegion(1, false)
	rep = frameOn(s, 4, snap)
	back := Failover{From: 0, To: 1, Home: 1, Nodes: hi - lo}
	if len(rep.Failovers) != 1 || rep.Failovers[0] != back {
		t.Fatalf("hand-back failovers = %+v, want [%+v]", rep.Failovers, back)
	}
	if rep.Adopted != 0 {
		t.Fatalf("adopted gauge = %d after hand-back, want 0", rep.Adopted)
	}
	if got := s.ServingRegion(orphan); got != 1 {
		t.Fatalf("node served by region %d after hand-back, want its home 1", got)
	}
}

// TestShardedLastRegionDownOrdering kills the regions one by one until none
// is in service, then restores them: each kill cascades the orphaned blocks
// to the nearest survivor, the final kill leaves every block on its own
// (frozen) tables rather than deadlocking the assignment, and recovery
// re-adopts in the same deterministic way.
func TestShardedLastRegionDownOrdering(t *testing.T) {
	deps := testDeps(8, routing.NewEAR())
	s, err := NewSharded(deps, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := fullState(deps.Graph, 8)
	frameOn(s, 1, snap)
	blockSize := 16 // 64 nodes / 4 shards

	serving := func() [4]int {
		var out [4]int
		for b := 0; b < 4; b++ {
			lo, _ := s.OwnedRange(b)
			out[b] = s.ServingRegion(topology.NodeID(lo))
		}
		return out
	}

	steps := []struct {
		kill    int
		adopted int
		owners  [4]int
	}{
		{0, blockSize, [4]int{1, 1, 2, 3}},     // 0 -> nearest survivor 1
		{1, 2 * blockSize, [4]int{2, 2, 2, 3}}, // 0 and 1 cascade to 2
		{2, 3 * blockSize, [4]int{3, 3, 3, 3}}, // everyone on the last survivor
		{3, 0, [4]int{0, 1, 2, 3}},             // nobody left: every block on its own frozen tables
	}
	frame := int64(2)
	for _, step := range steps {
		s.FaultRegion(step.kill, true)
		rep := frameOn(s, frame, snap)
		frame++
		if rep.Adopted != step.adopted {
			t.Fatalf("after killing %d: adopted = %d, want %d", step.kill, rep.Adopted, step.adopted)
		}
		if got := serving(); got != step.owners {
			t.Fatalf("after killing %d: owners = %v, want %v", step.kill, got, step.owners)
		}
	}
	// With every region down nothing is served live, but the frozen tables
	// must still answer (the mesh routes on last-known-good).
	rep := frameOn(s, frame, snap)
	frame++
	if rep.ShardRecomputes != 0 || rep.ControllerPJ != 0 {
		t.Fatalf("all-down frame still did controller work: %+v", rep)
	}
	for n := 0; n < 64; n++ {
		if _, ok := s.Table(topology.NodeID(n)); !ok {
			t.Fatalf("node %d lost its frozen table with all regions down", n)
		}
	}

	// One region returns: it serves the whole mesh.
	s.FaultRegion(2, false)
	rep = frameOn(s, frame, snap)
	frame++
	if rep.Adopted != 3*blockSize {
		t.Fatalf("single survivor adopted %d nodes, want %d", rep.Adopted, 3*blockSize)
	}
	if got := serving(); got != [4]int{2, 2, 2, 2} {
		t.Fatalf("owners after restoring region 2: %v, want all 2", got)
	}
	// Full recovery: the assignment returns to the identity.
	for _, b := range []int{0, 1, 3} {
		s.FaultRegion(b, false)
	}
	rep = frameOn(s, frame, snap)
	if rep.Adopted != 0 {
		t.Fatalf("adopted = %d after full recovery, want 0", rep.Adopted)
	}
	if got := serving(); got != [4]int{0, 1, 2, 3} {
		t.Fatalf("owners after full recovery: %v, want identity", got)
	}
}

// TestShardedOrphanDeadlockMidAdoption pins the deadlock-visibility contract
// across a failover: a node that deadlocks while its home region is
// fault-down is observed (exactly once) by its adopter, not lost until the
// home region returns.
func TestShardedOrphanDeadlockMidAdoption(t *testing.T) {
	deps := testDeps(4, routing.NewEAR())
	// Staleness 8: outside exchange frames a region only sees the blocks it
	// serves, so the orphan's report is visible to region 0 only because of
	// the adoption.
	s, err := NewSharded(deps, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	snap := fullState(deps.Graph, 8)
	frameOn(s, 1, snap)

	s.FaultRegion(1, true)
	lo, _ := s.OwnedRange(1)
	snap.Status[lo].Deadlocked = true
	rep := frameOn(s, 2, snap) // not an exchange frame (staleness 8)
	if rep.NewDeadlockReports != 1 {
		t.Fatalf("adopter observed %d deadlock reports, want 1", rep.NewDeadlockReports)
	}
	// The report is edge-triggered: the same stuck node is not re-counted.
	if rep := frameOn(s, 3, snap); rep.NewDeadlockReports != 0 {
		t.Fatalf("deadlock re-counted mid-adoption: %d", rep.NewDeadlockReports)
	}
	// Nor is it re-counted by the home region when the window closes and the
	// node is handed back.
	s.FaultRegion(1, false)
	if rep := frameOn(s, 4, snap); rep.NewDeadlockReports != 0 {
		t.Fatalf("deadlock re-counted after hand-back: %d", rep.NewDeadlockReports)
	}
}
