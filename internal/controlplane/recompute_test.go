package controlplane

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestParseRecompute(t *testing.T) {
	for _, tc := range []struct {
		name string
		want routing.RecomputeMode
	}{
		{"", routing.RecomputeIncremental},
		{"incremental", routing.RecomputeIncremental},
		{"full", routing.RecomputeFull},
	} {
		mode, err := ParseRecompute(tc.name)
		if err != nil || mode != tc.want {
			t.Errorf("ParseRecompute(%q) = %v, %v, want %v", tc.name, mode, err, tc.want)
		}
	}
	_, err := ParseRecompute("incrmental")
	if err == nil {
		t.Fatal("typo accepted")
	}
	for _, name := range RecomputeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("typo error %q does not list %q", err, name)
		}
	}
}

func TestConfigValidateRecompute(t *testing.T) {
	for _, name := range []string{"", "incremental", "full"} {
		cfg := Config{Recompute: name}
		if err := cfg.Validate(16); err != nil {
			t.Errorf("Validate(Recompute=%q) = %v, want nil", name, err)
		}
	}
	cfg := Config{Recompute: "eager"}
	if err := cfg.Validate(16); err == nil {
		t.Fatal("Validate accepted an unknown recompute strategy")
	}
	if _, err := New(cfg, testDeps(4, routing.NewEAR())); err == nil {
		t.Fatal("New accepted an unknown recompute strategy")
	}
}

// driveTrajectory runs the same deterministic battery-drain / death /
// deadlock trajectory against a control plane and records every per-frame
// report plus the full next-hop matrix after each frame.
func driveTrajectory(t *testing.T, cp ControlPlane, meshSize, frames int) ([]FrameReport, []topology.NodeID) {
	t.Helper()
	deps := testDeps(meshSize, routing.NewEAR())
	k := deps.Graph.NodeCount()
	// Two snapshot buffers so adopted frames can retain one per the
	// FrameReport.RetainedSnapshot contract.
	snaps := [2]*routing.SystemState{fullState(deps.Graph, 8), fullState(deps.Graph, 8)}
	cur := 0
	reports := make([]FrameReport, 0, frames)
	var hops []topology.NodeID
	for f := 1; f <= frames; f++ {
		snap := snaps[cur]
		// Deterministic churn: drain a walking node every frame, kill one
		// node a third of the way in, flip a deadlock bit periodically.
		n := (f * 7) % k
		if snap.Status[n].Alive && snap.Status[n].BatteryLevel > 0 {
			snap.Status[n].BatteryLevel--
		}
		if f == frames/3 {
			snap.Status[k/2].Alive = false
		}
		if f%5 == 0 {
			snap.Status[(f*3)%k].Deadlocked = !snap.Status[(f*3)%k].Deadlocked
		}
		rep := cp.Frame(int64(f), aliveCount(snap), snap)
		reports = append(reports, rep)
		if rep.RetainedSnapshot {
			next := cur ^ 1
			copy(snaps[next].Status, snap.Status)
			cur = next
		}
		for from := 0; from < k; from++ {
			for dest := 0; dest < k; dest++ {
				hops = append(hops, cp.NextHop(topology.NodeID(from), topology.NodeID(dest)))
			}
		}
	}
	return reports, hops
}

// TestRecomputeModesAreEquivalent pins the incremental dirty-set repair to
// the always-full baseline through both control planes: over a trajectory of
// drains, a death and deadlock flips, every frame report and every next-hop
// decision must be identical, and the incremental run must actually have
// taken the repair path.
func TestRecomputeModesAreEquivalent(t *testing.T) {
	const meshSize, frames = 8, 40
	for _, cfg := range []Config{
		{Kind: KindCentralized},
		{Kind: KindSharded, Shards: 4, StalenessFrames: 3},
	} {
		t.Run(string(cfg.Kind), func(t *testing.T) {
			full := cfg
			full.Recompute = "full"
			incr := cfg
			incr.Recompute = "incremental"

			cpFull, err := New(full, testDeps(meshSize, routing.NewEAR()))
			if err != nil {
				t.Fatal(err)
			}
			cpIncr, err := New(incr, testDeps(meshSize, routing.NewEAR()))
			if err != nil {
				t.Fatal(err)
			}

			repFull, hopsFull := driveTrajectory(t, cpFull, meshSize, frames)
			repIncr, hopsIncr := driveTrajectory(t, cpIncr, meshSize, frames)

			for i := range repFull {
				if !reflect.DeepEqual(repFull[i], repIncr[i]) {
					t.Fatalf("frame %d report diverged: full=%+v incremental=%+v", i+1, repFull[i], repIncr[i])
				}
			}
			for i := range hopsFull {
				if hopsFull[i] != hopsIncr[i] {
					t.Fatalf("next-hop %d diverged: full=%d incremental=%d", i, hopsFull[i], hopsIncr[i])
				}
			}

			fullF, fullI := cpFull.RecomputeSplit()
			if fullI != 0 || fullF == 0 {
				t.Fatalf("full-mode plane split = (%d full, %d incremental), want all full", fullF, fullI)
			}
			incrF, incrI := cpIncr.RecomputeSplit()
			if incrI == 0 {
				t.Fatalf("incremental-mode plane split = (%d full, %d incremental): repair path never taken", incrF, incrI)
			}
			if fullF+fullI != incrF+incrI {
				t.Fatalf("total recompute counts differ: full-mode %d vs incremental-mode %d", fullF+fullI, incrF+incrI)
			}
		})
	}
}
