package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCanonicalDefaultsCollapse checks the core normalization property: a
// spec that spells the paper defaults out encodes identically to one that
// leaves them zero.
func TestCanonicalDefaultsCollapse(t *testing.T) {
	bare := Spec{Mesh: 4}
	explicit := Spec{
		Name:             "some-name", // identity fields never enter the encoding
		Description:      "words",
		Group:            "group",
		Mesh:             4,
		Algorithm:        AlgorithmEAR,
		EARQ:             2,
		BatteryLevels:    8,
		Battery:          BatteryThinFilm,
		Mapping:          MappingCheckerboard,
		MappingSeed:      99, // inert: checkerboard ignores the seed
		Controllers:      1,
		ControlPlane:     "centralized",
		Recompute:        "incremental",
		ConcurrentJobs:   1,
		FailedLinkSeed:   7, // inert: no failed-link fraction
		CollectNodeStats: false,
	}
	a, err := bare.CanonicalJSON()
	if err != nil {
		t.Fatalf("bare: %v", err)
	}
	b, err := explicit.CanonicalJSON()
	if err != nil {
		t.Fatalf("explicit: %v", err)
	}
	if string(a) != string(b) {
		t.Fatalf("default-elided and default-explicit specs encode differently:\n%s\n%s", a, b)
	}

	fa, _ := bare.Fingerprint()
	fb, _ := explicit.Fingerprint()
	if fa != fb {
		t.Fatalf("fingerprints differ: %s vs %s", fa, fb)
	}
}

// TestCanonicalDistinguishesConfigurations checks the other direction: every
// simulation-relevant field change must move the fingerprint.
func TestCanonicalDistinguishesConfigurations(t *testing.T) {
	base := Spec{Mesh: 4}
	variants := []Spec{
		{Mesh: 5},
		{Mesh: 4, Algorithm: AlgorithmSDR},
		{Mesh: 4, EARQ: 3},
		{Mesh: 4, Battery: BatteryIdeal},
		{Mesh: 4, Mapping: MappingRandom, MappingSeed: 1},
		{Mesh: 4, Mapping: MappingRandom, MappingSeed: 2},
		{Mesh: 4, Controllers: 2},
		{Mesh: 4, ControlPlane: "sharded"},
		{Mesh: 4, Recompute: "full"},
		{Mesh: 4, FiniteControllers: true},
		{Mesh: 4, ConcurrentJobs: 2},
		{Mesh: 4, FailedLinkFraction: 0.1, FailedLinkSeed: 1},
		{Mesh: 4, Faults: "link=0.05:8,seed=1"},
		{Mesh: 4, VerifyPayload: true},
		{Mesh: 4, CollectNodeStats: true},
		{Mesh: 4, MaxCycles: 1000},
	}
	bf, err := base.Fingerprint()
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	seen := map[Fingerprint]int{bf: -1}
	for i, v := range variants {
		f, err := v.Fingerprint()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[f]; dup {
			t.Errorf("variant %d collides with variant %d: %s", i, prev, f)
		}
		seen[f] = i
	}
}

// TestCanonicalGoldenFingerprints pins the cache keys of representative
// registered scenarios. These values are the on-disk identity of every cached
// result: if this test fails, the canonical encoding changed, existing disk
// caches went stale, and fingerprintDomain must be bumped — do not just
// update the constants without doing that.
func TestCanonicalGoldenFingerprints(t *testing.T) {
	golden := map[string]string{
		"paper-default":       "d4c065d1d2e7f9393add0ab3337bac8ffb42f8a8e989c017e945f0262ab87cae",
		"paper-sdr":           "294db9cf2730ef5f543d6c92ec83e865f2138d138d51d8a2c2140281a29156ea",
		"smartshirt-verified": "6f7bb3ac66aa58213a389b419d850aed7e35b00fecb6de31a6f46c3b85229be0",
		"sharded-8x8":         "4cbc7bc472ba0e3a22110829d7e3b5b9de18b88fcfd9e7677ae9510f4d008fc8",
		"chaos-storm":         "6c2fcb4c15bbcf41f3a6fcbe81eb82c08442acc35835cac885dffbf082da0102",
		"big-mesh-16":         "2aa663ac8b3437d9407ae4b6020e53c1fea11313bcc28c6a9c026ac9e0214af0",
	}
	for name, want := range golden {
		sp, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		f, err := sp.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f.String() != want {
			t.Errorf("%s fingerprint drifted:\n got  %s\n want %s", name, f, want)
		}
	}
}

// TestParseSpecJSONRoundTrip checks encode→decode→encode is the identity on
// every registered scenario.
func TestParseSpecJSONRoundTrip(t *testing.T) {
	for _, sp := range All() {
		// Round-trip through the full (non-canonical) JSON of the spec, the
		// form clients are expected to submit.
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("%s: marshal: %v", sp.Name, err)
		}
		back, err := ParseSpecJSON(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", sp.Name, err)
		}
		want, err := sp.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical: %v", sp.Name, err)
		}
		got, err := back.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: canonical after round trip: %v", sp.Name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: canonical form changed across a JSON round trip:\n%s\n%s", sp.Name, want, got)
		}
	}
}

// TestParseSpecJSONFieldOrderIndependent decodes the same spec with its
// fields in two different orders.
func TestParseSpecJSONFieldOrderIndependent(t *testing.T) {
	a := []byte(`{"Mesh":5,"Algorithm":"SDR","ConcurrentJobs":3}`)
	b := []byte(`{"ConcurrentJobs":3,"Algorithm":"SDR","Mesh":5}`)
	spA, err := ParseSpecJSON(a)
	if err != nil {
		t.Fatalf("a: %v", err)
	}
	spB, err := ParseSpecJSON(b)
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	fa, _ := spA.Fingerprint()
	fb, _ := spB.Fingerprint()
	if fa != fb {
		t.Fatalf("field order changed the fingerprint: %s vs %s", fa, fb)
	}
}

// TestParseSpecJSONRejectsUnknownFields: a typoed field must be an error, not
// a silently different scenario.
func TestParseSpecJSONRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpecJSON([]byte(`{"Mesh":4,"Allgorithm":"SDR"}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), "Allgorithm") {
		t.Fatalf("error does not name the offending field: %v", err)
	}
	if _, err := ParseSpecJSON([]byte(`{"Mesh":4} {"Mesh":5}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// TestNormalizedClearsInertFields checks the fields a configuration ignores
// cannot split the cache.
func TestNormalizedClearsInertFields(t *testing.T) {
	// SDR ignores the EAR knobs.
	sdr1 := Spec{Mesh: 4, Algorithm: AlgorithmSDR, EARQ: 3, BatteryLevels: 16}
	sdr2 := Spec{Mesh: 4, Algorithm: AlgorithmSDR}
	f1, _ := sdr1.Fingerprint()
	f2, _ := sdr2.Fingerprint()
	if f1 != f2 {
		t.Error("SDR spec split by inert EAR knobs")
	}
	// A non-random mapping ignores the mapping seed.
	m1 := Spec{Mesh: 4, MappingSeed: 123}
	m2 := Spec{Mesh: 4}
	f1, _ = m1.Fingerprint()
	f2, _ = m2.Fingerprint()
	if f1 != f2 {
		t.Error("checkerboard spec split by inert mapping seed")
	}
	// The fault-schedule clause form is canonicalised.
	c1 := Spec{Mesh: 4, Faults: "seed=1,link=0.05:8"}
	c2 := Spec{Mesh: 4, Faults: "link=0.05:8,seed=1"}
	f1, e1 := c1.Fingerprint()
	f2, e2 := c2.Fingerprint()
	if e1 != nil || e2 != nil {
		t.Fatalf("fault canonicalisation errored: %v %v", e1, e2)
	}
	if f1 != f2 {
		t.Error("equivalent fault clause spellings split the cache")
	}
}
