package scenario

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sameResult compares everything except the per-node slice (which is not
// comparable with ==; its aggregate is covered by DeadNodes and Energy).
func sameResult(a, b sim.Result) bool {
	return a.Algorithm == b.Algorithm && a.MeshNodes == b.MeshNodes &&
		a.JobsCompleted == b.JobsCompleted && a.JobsLost == b.JobsLost &&
		a.LifetimeCycles == b.LifetimeCycles && a.Frames == b.Frames &&
		a.RoutingRecomputes == b.RoutingRecomputes && a.DeadlockReports == b.DeadlockReports &&
		a.DeadNodes == b.DeadNodes && a.Reason == b.Reason && a.Energy == b.Energy &&
		a.PayloadJobsVerified == b.PayloadJobsVerified && a.PayloadMismatches == b.PayloadMismatches
}

func TestRegistryHasThePaperAndStressScenarios(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("registry holds %d scenarios, want at least 10: %v", len(names), names)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, want := range []string{
		"paper-default", "paper-sdr", "table2-ideal", "smartshirt-verified",
		"stress-burst", "degraded-fabric", "dual-controller-finite",
		"random-mapping-sweep", "random-mapping-sweep-sdr",
		"degraded-fabric-mc", "degraded-random-mc",
	} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("scenario %q missing from the registry", want)
		}
	}
	// The replication-oriented scenarios exist to be re-drawn by campaign
	// seed streams: each must carry at least one seed-derived stochastic
	// knob (a random mapping or an injected fault pattern).
	for _, name := range []string{
		"random-mapping-sweep", "random-mapping-sweep-sdr",
		"degraded-fabric-mc", "degraded-random-mc",
	} {
		sp, _ := Lookup(name)
		if sp.Mapping != MappingRandom && sp.FailedLinkFraction == 0 {
			t.Errorf("scenario %q has no seed-derived field to replicate over", name)
		}
	}
	if len(All()) != len(names) {
		t.Error("All() and Names() disagree")
	}
	if Table().NumRows() != len(names) {
		t.Error("Table() row count mismatch")
	}
}

func TestEveryRegisteredScenarioMaterialises(t *testing.T) {
	for _, sp := range All() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			s, err := sp.Strategy()
			if err != nil {
				t.Fatalf("Strategy: %v", err)
			}
			if s.Label != sp.Name {
				t.Errorf("label %q, want %q", s.Label, sp.Name)
			}
			cfg, err := s.Config()
			if err != nil {
				t.Fatalf("Config: %v", err)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("materialised config invalid: %v", err)
			}
			if cfg.Graph.NodeCount() != sp.Mesh*sp.Mesh {
				t.Errorf("graph has %d nodes, want %d", cfg.Graph.NodeCount(), sp.Mesh*sp.Mesh)
			}
		})
	}
}

// TestSpecMatchesCoreConstructors pins the contract the experiments layer
// depends on: a Spec materialises into exactly the strategy the former
// hand-rolled core constructors produced, so moving the sweeps onto specs
// cannot change any figure or table.
func TestSpecMatchesCoreConstructors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		core func() (*core.Strategy, error)
	}{
		{"ear-default", Spec{Mesh: 4}, func() (*core.Strategy, error) { return core.EAR(4) }},
		{"sdr", Spec{Mesh: 4, Algorithm: AlgorithmSDR}, func() (*core.Strategy, error) { return core.SDR(4) }},
		{"ideal-battery", Spec{Mesh: 4, Battery: BatteryIdeal},
			func() (*core.Strategy, error) { return core.EAR(4, core.WithIdealBatteries()) }},
		{"finite-controllers", Spec{Mesh: 4, Controllers: 2, FiniteControllers: true},
			func() (*core.Strategy, error) { return core.EAR(4, core.WithControllers(2, true)) }},
		{"ear-q", Spec{Mesh: 4, EARQ: 3},
			func() (*core.Strategy, error) {
				params := routing.DefaultEARParams()
				params.Q = 3
				return core.EAR(4, core.WithAlgorithm(routing.EAR{Params: params}))
			}},
		{"concurrency", Spec{Mesh: 4, ConcurrentJobs: 3},
			func() (*core.Strategy, error) { return core.EAR(4, core.WithConcurrentJobs(3)) }},
		{"degraded", Spec{Mesh: 5, FailedLinkFraction: 0.2, FailedLinkSeed: 1},
			func() (*core.Strategy, error) { return core.EAR(5, core.WithFailedLinks(0.2, 1)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fromSpec, err := tc.spec.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			s, err := tc.core()
			if err != nil {
				t.Fatal(err)
			}
			direct, err := s.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			if !sameResult(fromSpec, direct) {
				t.Errorf("spec result differs from core constructor result:\nspec: %+v\ncore: %+v", fromSpec, direct)
			}
		})
	}
}

func TestSpecIsReusable(t *testing.T) {
	sp, ok := Lookup("degraded-fabric")
	if !ok {
		t.Fatal("degraded-fabric not registered")
	}
	a, err := sp.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(a, b) {
		t.Errorf("two materialisations of the same spec diverged:\n%+v\n%+v", a, b)
	}
}

func TestSpecRejectsBadValues(t *testing.T) {
	cases := []Spec{
		{},                                                      // missing mesh
		{Mesh: 4, Algorithm: "OSPF"},                            // unknown algorithm
		{Mesh: 4, Battery: "fusion"},                            // unknown battery
		{Mesh: 4, Mapping: "genetic"},                           // unknown mapping
		{Mesh: 4, Controllers: -1},                              // negative controller count
		{Mesh: 4, ControlPlane: "shraded"},                      // unknown control plane
		{Mesh: 4, Shards: -2},                                   // negative shard count
		{Mesh: 4, StalenessFrames: -8},                          // negative staleness
		{Mesh: 4, Shards: 4},                                    // sharding knob on the centralized plane
		{Mesh: 4, StalenessFrames: 8},                           // staleness knob on the centralized plane
		{Mesh: 4, ControlPlane: "sharded", Shards: 17},          // more shards than nodes
		{Mesh: 4, ControlPlane: "sharded", StalenessFrames: -1}, // negative staleness, sharded
		{Mesh: 4, Recompute: "eager"},                           // unknown recompute strategy
	}
	for _, sp := range cases {
		if _, err := sp.Strategy(); err == nil {
			t.Errorf("Strategy accepted invalid spec %+v", sp)
		}
		if _, err := sp.Simulate(); err == nil {
			t.Errorf("Simulate accepted invalid spec %+v", sp)
		}
	}
	// The control-plane typo error must list the valid names, like every
	// other name-valued spec field.
	_, err := Spec{Mesh: 4, ControlPlane: "shraded"}.Strategy()
	if err == nil || !strings.Contains(err.Error(), "centralized") || !strings.Contains(err.Error(), "sharded") {
		t.Errorf("control-plane typo error %v does not list the valid names", err)
	}
	// The negative-controllers error must point at the 0-defaults-to-1
	// convention so the fix is obvious.
	_, err = Spec{Mesh: 4, Controllers: -1}.Strategy()
	if err == nil || !strings.Contains(err.Error(), "0 defaults to 1") {
		t.Errorf("negative-controllers error %v does not explain the 0 default", err)
	}
}

// TestShardedScenariosRegistered: the sharded control-plane scenarios must be
// in the registry and materialise into sharded configurations.
func TestShardedScenariosRegistered(t *testing.T) {
	for _, name := range []string{"sharded-8x8", "sharded-8x8-stale", "sharded-finite-controllers"} {
		sp, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %q missing from the registry", name)
		}
		strategy, err := sp.Strategy()
		if err != nil {
			t.Fatalf("scenario %q: %v", name, err)
		}
		if strategy.Control.Kind != controlplane.KindSharded || strategy.Control.Shards < 2 {
			t.Errorf("scenario %q materialised control %+v, want sharded with >=2 shards", name, strategy.Control)
		}
	}
}

// TestBigMeshScenariosRegistered: the big-mesh scaling scenarios must be in
// the registry, grouped, time-bounded (a 4096-node run to system death is not
// a scenario anyone wants by accident) and they must materialise eagerly.
func TestBigMeshScenariosRegistered(t *testing.T) {
	for _, tc := range []struct {
		name string
		mesh int
	}{
		{"big-mesh-16", 16},
		{"big-mesh-64", 64},
	} {
		sp, ok := Lookup(tc.name)
		if !ok {
			t.Fatalf("scenario %q missing from the registry", tc.name)
		}
		if sp.Mesh != tc.mesh {
			t.Errorf("scenario %q mesh = %d, want %d", tc.name, sp.Mesh, tc.mesh)
		}
		if sp.MaxCycles <= 0 {
			t.Errorf("scenario %q is unbounded; big-mesh scenarios must cap MaxCycles", tc.name)
		}
		if sp.Group != GroupBigMesh {
			t.Errorf("scenario %q group = %q, want %q", tc.name, sp.Group, GroupBigMesh)
		}
		if _, err := sp.Strategy(); err != nil {
			t.Errorf("scenario %q does not materialise: %v", tc.name, err)
		}
	}
}

// TestGroupedTablesCoverTheRegistry: the grouped listing must contain every
// registered scenario exactly once, with the built-in groups in canonical
// order and no empty tables.
func TestGroupedTablesCoverTheRegistry(t *testing.T) {
	tables := GroupedTables()
	total := 0
	for _, tb := range tables {
		if tb.NumRows() == 0 {
			t.Error("GroupedTables rendered an empty group")
		}
		total += tb.NumRows()
	}
	if want := len(All()); total != want {
		t.Errorf("grouped tables hold %d scenarios, registry has %d", total, want)
	}
	if len(tables) < 2 {
		t.Fatalf("grouped listing collapsed to %d table(s)", len(tables))
	}
}

func TestSpecSimulateAttachesObservers(t *testing.T) {
	tp := &trace.Throughput{}
	res, err := Spec{Mesh: 4}.Simulate(tp)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Completed() != res.JobsCompleted {
		t.Errorf("observer saw %d completions, result says %d", tp.Completed(), res.JobsCompleted)
	}
	if len(tp.Frames()) == 0 {
		t.Error("observer recorded no frames")
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Spec{Mesh: 4}); err == nil {
		t.Error("registered a nameless spec")
	}
	if err := Register(Spec{Name: "paper-default", Mesh: 4}); err == nil {
		t.Error("registered a duplicate name")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Errorf("unexpected duplicate error: %v", err)
	}
	name := "test-custom-scenario"
	if err := Register(Spec{Name: name, Description: "test only", Mesh: 4}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, ok := Lookup(name); !ok {
		t.Error("registered scenario not found")
	}
}

func TestLabels(t *testing.T) {
	if got := (Spec{Mesh: 5}).Label(); got != "EAR-5x5" {
		t.Errorf("anonymous EAR label = %q", got)
	}
	if got := (Spec{Mesh: 6, Algorithm: AlgorithmSDR}).Label(); got != "SDR-6x6" {
		t.Errorf("anonymous SDR label = %q", got)
	}
	if got := (Spec{Name: "x", Mesh: 4}).Label(); got != "x" {
		t.Errorf("named label = %q", got)
	}
}

func TestSpecExplicitMapping(t *testing.T) {
	// An explicit assignment replaying the 4x4 checkerboard must simulate
	// identically to the checkerboard default.
	checker := "1,3,1,3,3,2,3,2,1,3,1,3,3,2,3,2"
	base, err := Spec{Mesh: 4}.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Spec{Mesh: 4, Mapping: MappingExplicit, Assignment: checker}.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(base, explicit) {
		t.Errorf("explicit checkerboard result differs from the built-in checkerboard:\n%+v\n%+v", base, explicit)
	}
	// Bad assignments fail to materialise with a descriptive error.
	for _, bad := range []Spec{
		{Mesh: 4, Mapping: MappingExplicit},                             // empty assignment
		{Mesh: 4, Mapping: MappingExplicit, Assignment: "1,2,3"},        // wrong length
		{Mesh: 4, Mapping: MappingExplicit, Assignment: checker + ",1"}, // wrong length
	} {
		if _, err := bad.Strategy(); err == nil {
			t.Errorf("Strategy accepted invalid explicit spec %+v", bad)
		}
	}
}

func TestOptimizedScenariosRegistered(t *testing.T) {
	for _, name := range []string{"optimized-4x4", "optimized-4x4-sdr"} {
		sp, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		if sp.Mapping != MappingExplicit || sp.Assignment == "" {
			t.Fatalf("%s is not an explicit placement: %+v", name, sp)
		}
		if _, err := sp.Strategy(); err != nil {
			t.Errorf("%s does not materialise: %v", name, err)
		}
	}
	// The optimized EAR placement must not fall behind the checkerboard
	// baseline it was searched from.
	opt, _ := Lookup("optimized-4x4")
	optRes, err := opt.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	base, err := Spec{Mesh: 4}.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if optRes.JobsCompleted < base.JobsCompleted {
		t.Errorf("optimized-4x4 completes %d jobs, checkerboard %d", optRes.JobsCompleted, base.JobsCompleted)
	}
}
