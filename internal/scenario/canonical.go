package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/faults"
	"repro/internal/routing"
)

// This file defines the spec's canonical byte encoding and content
// fingerprint — the identity under which results are memoized. The contract,
// relied on by internal/serve's content-addressed store:
//
//   - Two specs that describe the same simulation (after filling defaults and
//     clearing fields their configuration ignores) encode to the same bytes
//     and therefore the same fingerprint, even if one spelled the defaults
//     out and the other left them zero.
//   - The identity fields (Name, Description, Group) are display metadata and
//     never enter the encoding: registering the same configuration under two
//     names yields one cache entry.
//   - The encoding is versioned through the fingerprint's domain string; any
//     future change to the canonical form must bump it so stale disk caches
//     can never alias new results.
//
// The golden-fingerprint tests in canonical_test.go pin the encoding: a
// refactor that silently changes cache keys fails there, not in production.

// fingerprintDomain versions the canonical encoding. Bump on any change to
// canonicalSpec or the normalization rules.
const fingerprintDomain = "repro/scenario/v1\n"

// Fingerprint is the content address of a spec: a SHA-256 over the canonical
// byte encoding, domain-separated per spec kind.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 16 hex digits, for logs and labels.
func (f Fingerprint) Short() string { return f.String()[:16] }

// ParseFingerprint parses the hex form produced by String.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(f) {
		return f, fmt.Errorf("scenario: malformed fingerprint %q", s)
	}
	copy(f[:], b)
	return f, nil
}

// canonicalSpec is the fixed-shape encoding target: every simulation-relevant
// field of Spec, always present, in declaration order. encoding/json marshals
// struct fields in exactly this order with deterministic number formatting,
// which is what makes the bytes canonical.
type canonicalSpec struct {
	Mesh               int
	Algorithm          string
	EARQ               float64
	BatteryLevels      int
	Battery            string
	Mapping            string
	MappingSeed        uint64
	Assignment         string
	Controllers        int
	ControlPlane       string
	Shards             int
	StalenessFrames    int
	Recompute          string
	FiniteControllers  bool
	ConcurrentJobs     int
	FailedLinkFraction float64
	FailedLinkSeed     uint64
	Faults             string
	VerifyPayload      bool
	CollectNodeStats   bool
	MaxCycles          int64
}

// Normalized returns the spec with every defaultable field filled in and
// every field its configuration ignores cleared, so that semantically
// identical specs become structurally identical. The identity fields are
// preserved untouched. Normalizing does not validate: a spec whose values are
// out of range normalizes fine and still fails in Strategy.
func (sp Spec) Normalized() (Spec, error) {
	n := sp
	if n.Algorithm == "" {
		n.Algorithm = AlgorithmEAR
	}
	switch n.Algorithm {
	case AlgorithmEAR:
		// The zero values mean "paper default"; write the defaults out so an
		// explicit default and an elided one share an identity.
		params := routing.DefaultEARParams()
		if n.EARQ == 0 {
			n.EARQ = params.Q
		}
		if n.BatteryLevels == 0 {
			n.BatteryLevels = params.Levels
		}
	case AlgorithmSDR:
		// SDR reads neither knob; clear them so they cannot split the cache.
		n.EARQ = 0
		n.BatteryLevels = 0
	}
	if n.Battery == "" {
		n.Battery = BatteryThinFilm
	}
	if n.Mapping == "" {
		n.Mapping = MappingCheckerboard
	}
	if n.Mapping != MappingRandom {
		n.MappingSeed = 0
	}
	if n.Mapping != MappingExplicit {
		n.Assignment = ""
	}
	if n.Controllers == 0 {
		n.Controllers = 1
	}
	kind, err := controlplane.ParseKind(n.ControlPlane)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario %s: %w", sp.Label(), err)
	}
	n.ControlPlane = string(kind)
	if kind == controlplane.KindSharded {
		if n.Shards == 0 {
			n.Shards = controlplane.DefaultShards
		}
		if n.StalenessFrames == 0 {
			n.StalenessFrames = 1
		}
	}
	mode, err := controlplane.ParseRecompute(n.Recompute)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario %s: %w", sp.Label(), err)
	}
	n.Recompute = mode.String()
	if n.ConcurrentJobs == 0 {
		n.ConcurrentJobs = 1
	}
	if n.FailedLinkFraction == 0 {
		n.FailedLinkSeed = 0
	}
	if n.Faults != "" {
		fsp, err := faults.ParseSpec(n.Faults)
		if err != nil {
			return Spec{}, fmt.Errorf("scenario %s: %w", sp.Label(), err)
		}
		// String() is the clause form's canonical spelling (fixed clause
		// order, no redundant fields), so two spellings of one schedule agree.
		n.Faults = fsp.String()
	}
	return n, nil
}

// CanonicalJSON returns the spec's canonical byte encoding: the normalized
// simulation-relevant fields as JSON in fixed field order. Byte equality of
// two encodings is semantic equality of the specs.
func (sp Spec) CanonicalJSON() ([]byte, error) {
	n, err := sp.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(canonicalSpec{
		Mesh:               n.Mesh,
		Algorithm:          n.Algorithm,
		EARQ:               n.EARQ,
		BatteryLevels:      n.BatteryLevels,
		Battery:            n.Battery,
		Mapping:            n.Mapping,
		MappingSeed:        n.MappingSeed,
		Assignment:         n.Assignment,
		Controllers:        n.Controllers,
		ControlPlane:       n.ControlPlane,
		Shards:             n.Shards,
		StalenessFrames:    n.StalenessFrames,
		Recompute:          n.Recompute,
		FiniteControllers:  n.FiniteControllers,
		ConcurrentJobs:     n.ConcurrentJobs,
		FailedLinkFraction: n.FailedLinkFraction,
		FailedLinkSeed:     n.FailedLinkSeed,
		Faults:             n.Faults,
		VerifyPayload:      n.VerifyPayload,
		CollectNodeStats:   n.CollectNodeStats,
		MaxCycles:          n.MaxCycles,
	})
}

// Fingerprint returns the spec's content address: SHA-256 over the domain
// string and the canonical encoding. It is the cache key under which
// internal/serve memoizes this spec's sim.Result.
func (sp Spec) Fingerprint() (Fingerprint, error) {
	enc, err := sp.CanonicalJSON()
	if err != nil {
		return Fingerprint{}, err
	}
	h := sha256.New()
	h.Write([]byte(fingerprintDomain))
	h.Write(enc)
	var f Fingerprint
	h.Sum(f[:0])
	return f, nil
}

// ParseSpecJSON decodes a spec from client-supplied JSON, strictly: unknown
// fields are rejected (a typoed field name must not silently run a different
// scenario than the client asked for), field order is irrelevant, and
// trailing data is an error. Keys match the exported field names of Spec
// (case-insensitively, as encoding/json does).
func ParseSpecJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec JSON")
	}
	return sp, nil
}
