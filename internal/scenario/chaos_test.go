package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestNoFaultTrajectoryPins pins the fault-free trajectories of both control
// planes to exact values. The fault subsystem threads through the engine's
// frame loop, routing dead-end handling and both planes, so this is the
// regression guard for the PR's core promise: an empty schedule reproduces
// the pre-fault-subsystem outputs byte for byte. If a change shifts any of
// these numbers, it changed the fault-free simulation — not just the fault
// path — and needs a fresh justification.
func TestNoFaultTrajectoryPins(t *testing.T) {
	pins := []struct {
		name       string
		jobs, lost int
		lifetime   int64
		frames     int64
		recomputes int
		deadlocks  int
		reason     sim.DeathReason
	}{
		{"paper-default", 71, 4, 102201, 100, 99, 0, sim.DeathModuleExtinct},
		{"sharded-8x8", 331, 21, 495345, 484, 473, 3, sim.DeathUnreachable},
		{"sharded-finite-controllers", 18, 1, 40960, 41, 20, 0, sim.DeathControllersDead},
	}
	for _, pin := range pins {
		spec, ok := Lookup(pin.name)
		if !ok {
			t.Fatalf("%s not registered", pin.name)
		}
		res, err := spec.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if res.JobsCompleted != pin.jobs || res.JobsLost != pin.lost ||
			res.LifetimeCycles != pin.lifetime || res.Frames != pin.frames ||
			res.RoutingRecomputes != pin.recomputes || res.DeadlockReports != pin.deadlocks ||
			res.Reason != pin.reason {
			t.Errorf("%s trajectory moved: jobs=%d lost=%d life=%d frames=%d recomputes=%d deadlocks=%d reason=%s, want jobs=%d lost=%d life=%d frames=%d recomputes=%d deadlocks=%d reason=%s",
				pin.name, res.JobsCompleted, res.JobsLost, res.LifetimeCycles, res.Frames, res.RoutingRecomputes, res.DeadlockReports, res.Reason,
				pin.jobs, pin.lost, pin.lifetime, pin.frames, pin.recomputes, pin.deadlocks, pin.reason)
		}
		if res.FaultsInjected != 0 || res.FaultsRecovered != 0 || res.RegionFailovers != 0 {
			t.Errorf("%s: fault counters nonzero without a schedule: %+v", pin.name, res)
		}
	}
}

// TestSeedOnlyScheduleIsByteIdentical: a schedule carrying only a seed can
// never fire, so the engine must not even enable the subsystem — the result
// is identical in every field, not merely statistically close.
func TestSeedOnlyScheduleIsByteIdentical(t *testing.T) {
	base := Spec{Mesh: 5}
	ref, err := base.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	seeded := base
	seeded.Faults = "seed=12345"
	got, err := seeded.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("seed-only schedule changed the run:\n%+v\nvs\n%+v", got, ref)
	}
}

// TestChaosScenariosExerciseTheFaultChannels runs the cheap chaos scenarios
// and checks each actually drives the channel it advertises.
func TestChaosScenariosExerciseTheFaultChannels(t *testing.T) {
	cases := []struct {
		name  string
		check func(t *testing.T, res sim.Result)
	}{
		{"chaos-links", func(t *testing.T, res sim.Result) {
			if res.FaultsInjected == 0 || res.FaultsRecovered == 0 {
				t.Errorf("no transient link faults: %d injected, %d recovered", res.FaultsInjected, res.FaultsRecovered)
			}
		}},
		{"chaos-crashes", func(t *testing.T, res sim.Result) {
			if res.FaultsInjected == 0 || res.FaultsRecovered == 0 {
				t.Errorf("no node crashes: %d injected, %d recovered", res.FaultsInjected, res.FaultsRecovered)
			}
		}},
		{"chaos-wear", func(t *testing.T, res sim.Result) {
			if res.LinksBroken == 0 {
				t.Error("wear scenario broke no links")
			}
		}},
		{"chaos-blackout", func(t *testing.T, res sim.Result) {
			if res.FaultsInjected == 0 || res.FaultsRecovered == 0 {
				t.Errorf("blackout window never opened/closed: %d injected, %d recovered", res.FaultsInjected, res.FaultsRecovered)
			}
		}},
		{"chaos-region-failover", func(t *testing.T, res sim.Result) {
			// One adoption when the region dies, one hand-back when it
			// returns; the adopter serves the whole 16-node home block.
			if res.RegionFailovers != 2 {
				t.Errorf("region failovers = %d, want 2 (adoption + hand-back)", res.RegionFailovers)
			}
			if res.PeakAdoptedNodes != 16 {
				t.Errorf("peak adopted nodes = %d, want 16 (one 8x8/4 home block)", res.PeakAdoptedNodes)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, ok := Lookup(c.name)
			if !ok {
				t.Fatalf("%s not registered", c.name)
			}
			res, err := spec.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			c.check(t, res)
		})
	}
}

// TestFaultScheduleValidatedEagerly: a bad schedule fails at Strategy time
// with a parse or validation error, never from inside a worker.
func TestFaultScheduleValidatedEagerly(t *testing.T) {
	cases := []struct {
		name   string
		spec   Spec
		substr string
	}{
		{"malformed clause", Spec{Mesh: 4, Faults: "link=oops"}, "link clause"},
		{"unknown key", Spec{Mesh: 4, Faults: "flux=1"}, "unknown clause"},
		{"kill outside centralized plane", Spec{Mesh: 4, Faults: "kill=1@10"}, "outside"},
		{"kill outside sharded plane", Spec{Mesh: 4, ControlPlane: "sharded", Shards: 4, Faults: "kill=5@10"}, "outside"},
		{"missing recovery", Spec{Mesh: 4, Faults: "link=0.05:0"}, "recovery time"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.spec.Strategy()
			if err == nil || !strings.Contains(err.Error(), c.substr) {
				t.Fatalf("Strategy error = %v, want substring %q", err, c.substr)
			}
		})
	}
	// The kill clause that fails on the centralized plane is fine on a
	// 4-shard plane (and shard 0 is fine on centralized).
	ok := Spec{Mesh: 4, ControlPlane: "sharded", Shards: 4, Faults: "kill=1@10"}
	if _, err := ok.Strategy(); err != nil {
		t.Fatalf("valid sharded kill window rejected: %v", err)
	}
	okCentral := Spec{Mesh: 4, Faults: "kill=0@10:20"}
	if _, err := okCentral.Strategy(); err != nil {
		t.Fatalf("valid centralized kill window rejected: %v", err)
	}
}
