package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stats"
)

// The registry of named scenarios. Built-ins are registered at package
// initialisation; applications may Register more at any time.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Spec)
)

// Register adds a named scenario to the registry. The spec must carry a
// non-empty, unused Name.
func Register(sp Spec) error {
	if sp.Name == "" {
		return fmt.Errorf("scenario: cannot register a spec without a name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, exists := registry[sp.Name]; exists {
		return fmt.Errorf("scenario: %q is already registered", sp.Name)
	}
	registry[sp.Name] = sp
	return nil
}

// MustRegister is Register for static scenario definitions.
func MustRegister(sp Spec) {
	if err := Register(sp); err != nil {
		panic(err)
	}
}

// Lookup returns the named scenario.
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sp, ok := registry[name]
	return sp, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every registered scenario, sorted by name.
func All() []Spec {
	names := Names()
	regMu.RLock()
	defer regMu.RUnlock()
	specs := make([]Spec, 0, len(names))
	for _, name := range names {
		specs = append(specs, registry[name])
	}
	return specs
}

// Table renders the registry as a stats table (the body of
// `etsim -list-scenarios`).
func Table() *stats.Table {
	t := stats.NewTable("Registered scenarios", "name", "mesh", "algorithm", "description")
	for _, sp := range All() {
		alg := sp.Algorithm
		if alg == "" {
			alg = AlgorithmEAR
		}
		t.AddRow(sp.Name, fmt.Sprintf("%dx%d", sp.Mesh, sp.Mesh), alg, sp.Description)
	}
	return t
}

// The built-in scenarios: the configurations behind the paper's figures and
// tables, plus stress and degradation workloads that exercise the parts of
// the stack the paper only sketches.
func init() {
	builtins := []Spec{
		{
			Name:        "paper-default",
			Description: "Fig 7 baseline: EAR on the 4x4 mesh, thin-film batteries, one infinite-energy controller",
			Mesh:        4,
		},
		{
			Name:        "paper-sdr",
			Description: "Fig 7 counterpart: shortest-distance routing on the otherwise identical 4x4 platform",
			Mesh:        4,
			Algorithm:   AlgorithmSDR,
		},
		{
			Name:        "paper-large",
			Description: "Fig 7 largest point: EAR on the 8x8 mesh (64 nodes)",
			Mesh:        8,
		},
		{
			Name:        "table2-ideal",
			Description: "Table 2 configuration: EAR with ideal batteries on the 4x4 mesh, compared against Theorem 1",
			Mesh:        4,
			Battery:     BatteryIdeal,
		},
		{
			Name:              "fig8-controllers",
			Description:       "Fig 8 midpoint: EAR on the 5x5 mesh with 4 battery-powered controllers",
			Mesh:              5,
			Controllers:       4,
			FiniteControllers: true,
		},
		{
			Name:              "dual-controller-finite",
			Description:       "controller redundancy study: 4x4 mesh with 2 battery-powered controllers (Sec 7.3)",
			Mesh:              4,
			Controllers:       2,
			FiniteControllers: true,
		},
		{
			Name:             "smartshirt-verified",
			Description:      "the Fig 3a smart shirt: 6x6 mesh carrying real AES blocks, every ciphertext verified",
			Mesh:             6,
			VerifyPayload:    true,
			CollectNodeStats: true,
		},
		{
			Name:           "stress-burst",
			Description:    "heavy traffic: 6x6 mesh with 4 concurrent jobs contending for single-job buffers",
			Mesh:           6,
			ConcurrentJobs: 4,
		},
		{
			Name:           "stress-burst-sdr",
			Description:    "heavy traffic under SDR: 6x6 mesh, 4 concurrent jobs, no battery awareness",
			Mesh:           6,
			Algorithm:      AlgorithmSDR,
			ConcurrentJobs: 4,
		},
		{
			Name:               "degraded-fabric",
			Description:        "wear-and-tear: 5x5 mesh with 20% of the woven interconnects broken (seed 1)",
			Mesh:               5,
			FailedLinkFraction: 0.2,
			FailedLinkSeed:     1,
		},
		{
			Name:               "degraded-fabric-sdr",
			Description:        "wear-and-tear under SDR: the same damaged 5x5 fabric routed without battery awareness",
			Mesh:               5,
			Algorithm:          AlgorithmSDR,
			FailedLinkFraction: 0.2,
			FailedLinkSeed:     1,
		},
		{
			Name:        "ear-blind",
			Description: "ablation A1 endpoint: EAR with Q=1, which ignores battery levels entirely",
			Mesh:        4,
			EARQ:        1,
		},
		{
			Name:        "proportional-mapping",
			Description: "ablation A2: 6x6 mesh mapped with the Theorem-1 proportional duplicate counts",
			Mesh:        6,
			Mapping:     MappingProportional,
		},
		{
			Name:        "random-mapping",
			Description: "ablation A2 baseline: 5x5 mesh with a seeded random module placement",
			Mesh:        5,
			Mapping:     MappingRandom,
			MappingSeed: 1,
		},
		// Replication-oriented scenarios: their specs differ only by the
		// seed-derived fields (MappingSeed, FailedLinkSeed), which a
		// Monte-Carlo campaign re-draws per replicate from its seed stream.
		// Run singly they are one draw; under `etcampaign` they are a
		// distribution with error bars.
		{
			Name:        "random-mapping-sweep",
			Description: "Monte-Carlo cell: EAR on a 6x6 mesh with random module placement, re-drawn per replicate",
			Mesh:        6,
			Mapping:     MappingRandom,
			MappingSeed: 1,
		},
		{
			Name:        "random-mapping-sweep-sdr",
			Description: "Monte-Carlo cell: the same random-placement 6x6 mesh under SDR, for replicated EAR/SDR gaps",
			Mesh:        6,
			Algorithm:   AlgorithmSDR,
			Mapping:     MappingRandom,
			MappingSeed: 1,
		},
		{
			Name:               "degraded-fabric-mc",
			Description:        "Monte-Carlo cell: 5x5 mesh with 15% failed links, the fault pattern re-drawn per replicate",
			Mesh:               5,
			FailedLinkFraction: 0.15,
			FailedLinkSeed:     1,
		},
		// Optimized placements discovered by the internal/optimize search
		// (produced by `etopt -emit-spec`, multi-restart annealing over the
		// sim objective: -strategy anneal -objective sim -budget 300
		// -restarts 6 -seed 1). The explicit assignments replay the exact
		// winners, so campaigns and traces run on searched placements out of
		// the box; compare against paper-default / paper-sdr for the searched
		// vs fixed-mapping gap.
		{
			Name:        "optimized-4x4",
			Description: "searched placement: EAR on the 4x4 mesh with the etopt-optimized explicit mapping (87 vs 71 jobs checkerboard)",
			Mesh:        4,
			Mapping:     MappingExplicit,
			Assignment:  "1,2,3,1,3,1,3,2,3,1,3,3,2,3,2,1",
		},
		{
			Name:        "optimized-4x4-sdr",
			Description: "searched placement: SDR on the 4x4 mesh with the etopt-optimized explicit mapping (71 vs 10 jobs checkerboard)",
			Mesh:        4,
			Algorithm:   AlgorithmSDR,
			Mapping:     MappingExplicit,
			Assignment:  "3,2,1,3,1,3,3,2,2,3,3,1,3,1,2,3",
		},
		// Sharded control-plane scenarios: regional controllers on contiguous
		// row bands of the mesh, exchanging battery summaries only every
		// StalenessFrames frames (see internal/controlplane).
		{
			Name:            "sharded-8x8",
			Description:     "sharded control: EAR on the 8x8 mesh with 4 regional controllers exchanging summaries every 8 frames",
			Mesh:            8,
			ControlPlane:    "sharded",
			Shards:          4,
			StalenessFrames: 8,
		},
		{
			Name:            "sharded-8x8-stale",
			Description:     "staleness stress: the sharded 8x8 mesh with a 32-frame summary-exchange period",
			Mesh:            8,
			ControlPlane:    "sharded",
			Shards:          4,
			StalenessFrames: 32,
		},
		{
			Name:              "sharded-finite-controllers",
			Description:       "Fig 8 extension: sharded 6x6 mesh where each of 4 regions runs 2 battery-powered controllers",
			Mesh:              6,
			ControlPlane:      "sharded",
			Shards:            4,
			StalenessFrames:   8,
			Controllers:       2,
			FiniteControllers: true,
		},
		{
			Name:               "degraded-random-mc",
			Description:        "Monte-Carlo cell: random placement on a damaged 5x5 fabric, both draws re-seeded per replicate",
			Mesh:               5,
			Mapping:            MappingRandom,
			MappingSeed:        1,
			FailedLinkFraction: 0.1,
			FailedLinkSeed:     1,
		},
	}
	for _, sp := range builtins {
		MustRegister(sp)
	}
}
