package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stats"
)

// The registry of named scenarios. Built-ins are registered at package
// initialisation; applications may Register more at any time.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Spec)
)

// Register adds a named scenario to the registry. The spec must carry a
// non-empty, unused Name.
func Register(sp Spec) error {
	if sp.Name == "" {
		return fmt.Errorf("scenario: cannot register a spec without a name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, exists := registry[sp.Name]; exists {
		return fmt.Errorf("scenario: %q is already registered", sp.Name)
	}
	registry[sp.Name] = sp
	return nil
}

// MustRegister is Register for static scenario definitions.
func MustRegister(sp Spec) {
	if err := Register(sp); err != nil {
		panic(err)
	}
}

// Lookup returns the named scenario.
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sp, ok := registry[name]
	return sp, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every registered scenario, sorted by name.
func All() []Spec {
	names := Names()
	regMu.RLock()
	defer regMu.RUnlock()
	specs := make([]Spec, 0, len(names))
	for _, name := range names {
		specs = append(specs, registry[name])
	}
	return specs
}

// Info is the machine-readable registry entry behind `etsim -list-scenarios
// -json` and etserve's GET /scenarios: everything a client needs to discover
// and submit a workload without scraping table output.
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Group       string `json:"group"`
	Mesh        int    `json:"mesh"`
	Algorithm   string `json:"algorithm"`
	// Fingerprint is the spec's content address (see Spec.Fingerprint) — the
	// key its cached results live under, so clients can correlate listings
	// with store entries.
	Fingerprint string `json:"fingerprint"`
}

// Infos returns every registered scenario as a machine-readable entry, sorted
// by name. Scenarios whose spec cannot be fingerprinted (none of the
// built-ins) report an empty fingerprint rather than failing the listing.
func Infos() []Info {
	specs := All()
	infos := make([]Info, 0, len(specs))
	for _, sp := range specs {
		info := Info{
			Name:        sp.Name,
			Description: sp.Description,
			Group:       sp.Group,
			Mesh:        sp.Mesh,
			Algorithm:   displayAlgorithm(sp),
		}
		if f, err := sp.Fingerprint(); err == nil {
			info.Fingerprint = f.String()
		}
		infos = append(infos, info)
	}
	return infos
}

// Table renders the whole registry as one flat stats table.
func Table() *stats.Table {
	t := stats.NewTable("Registered scenarios", "name", "mesh", "algorithm", "description")
	for _, sp := range All() {
		t.AddRow(sp.Name, fmt.Sprintf("%dx%d", sp.Mesh, sp.Mesh), displayAlgorithm(sp), sp.Description)
	}
	return t
}

// The built-in group names, in listing order. GroupedTables appends any
// group registered by applications after these, and the unnamed group last.
const (
	GroupPaper     = "paper figures"
	GroupAblation  = "ablations"
	GroupStress    = "stress & degradation"
	GroupMC        = "monte-carlo cells"
	GroupOptimized = "optimized placements"
	GroupSharded   = "sharded control plane"
	GroupChaos     = "chaos & runtime faults"
	GroupBigMesh   = "big mesh"
)

// GroupedTables renders the registry as one stats table per scenario group
// (the body of `etsim -list-scenarios`): built-in groups first in their
// canonical order, then application-registered groups in first-seen order,
// then scenarios without a group under "other".
func GroupedTables() []*stats.Table {
	order := []string{GroupPaper, GroupAblation, GroupStress, GroupMC, GroupOptimized, GroupSharded, GroupChaos, GroupBigMesh}
	known := make(map[string]bool, len(order))
	for _, g := range order {
		known[g] = true
	}
	byGroup := make(map[string][]Spec)
	for _, sp := range All() {
		byGroup[sp.Group] = append(byGroup[sp.Group], sp)
		if sp.Group != "" && !known[sp.Group] {
			known[sp.Group] = true
			order = append(order, sp.Group)
		}
	}
	order = append(order, "")
	var tables []*stats.Table
	for _, group := range order {
		specs := byGroup[group]
		if len(specs) == 0 {
			continue
		}
		title := group
		if title == "" {
			title = "other"
		}
		t := stats.NewTable(title, "name", "mesh", "algorithm", "description")
		for _, sp := range specs {
			t.AddRow(sp.Name, fmt.Sprintf("%dx%d", sp.Mesh, sp.Mesh), displayAlgorithm(sp), sp.Description)
		}
		tables = append(tables, t)
	}
	return tables
}

func displayAlgorithm(sp Spec) string {
	if sp.Algorithm == "" {
		return AlgorithmEAR
	}
	return sp.Algorithm
}

// The built-in scenarios: the configurations behind the paper's figures and
// tables, plus stress and degradation workloads that exercise the parts of
// the stack the paper only sketches.
func init() {
	builtins := []Spec{
		{
			Name:        "paper-default",
			Group:       GroupPaper,
			Description: "Fig 7 baseline: EAR on the 4x4 mesh, thin-film batteries, one infinite-energy controller",
			Mesh:        4,
		},
		{
			Name:        "paper-sdr",
			Group:       GroupPaper,
			Description: "Fig 7 counterpart: shortest-distance routing on the otherwise identical 4x4 platform",
			Mesh:        4,
			Algorithm:   AlgorithmSDR,
		},
		{
			Name:        "paper-large",
			Group:       GroupPaper,
			Description: "Fig 7 largest point: EAR on the 8x8 mesh (64 nodes)",
			Mesh:        8,
		},
		{
			Name:        "table2-ideal",
			Group:       GroupPaper,
			Description: "Table 2 configuration: EAR with ideal batteries on the 4x4 mesh, compared against Theorem 1",
			Mesh:        4,
			Battery:     BatteryIdeal,
		},
		{
			Name:              "fig8-controllers",
			Group:             GroupPaper,
			Description:       "Fig 8 midpoint: EAR on the 5x5 mesh with 4 battery-powered controllers",
			Mesh:              5,
			Controllers:       4,
			FiniteControllers: true,
		},
		{
			Name:              "dual-controller-finite",
			Group:             GroupPaper,
			Description:       "controller redundancy study: 4x4 mesh with 2 battery-powered controllers (Sec 7.3)",
			Mesh:              4,
			Controllers:       2,
			FiniteControllers: true,
		},
		{
			Name:             "smartshirt-verified",
			Group:            GroupPaper,
			Description:      "the Fig 3a smart shirt: 6x6 mesh carrying real AES blocks, every ciphertext verified",
			Mesh:             6,
			VerifyPayload:    true,
			CollectNodeStats: true,
		},
		{
			Name:           "stress-burst",
			Group:          GroupStress,
			Description:    "heavy traffic: 6x6 mesh with 4 concurrent jobs contending for single-job buffers",
			Mesh:           6,
			ConcurrentJobs: 4,
		},
		{
			Name:           "stress-burst-sdr",
			Group:          GroupStress,
			Description:    "heavy traffic under SDR: 6x6 mesh, 4 concurrent jobs, no battery awareness",
			Mesh:           6,
			Algorithm:      AlgorithmSDR,
			ConcurrentJobs: 4,
		},
		{
			Name:               "degraded-fabric",
			Group:              GroupStress,
			Description:        "wear-and-tear: 5x5 mesh with 20% of the woven interconnects broken (seed 1)",
			Mesh:               5,
			FailedLinkFraction: 0.2,
			FailedLinkSeed:     1,
		},
		{
			Name:               "degraded-fabric-sdr",
			Group:              GroupStress,
			Description:        "wear-and-tear under SDR: the same damaged 5x5 fabric routed without battery awareness",
			Mesh:               5,
			Algorithm:          AlgorithmSDR,
			FailedLinkFraction: 0.2,
			FailedLinkSeed:     1,
		},
		{
			Name:        "ear-blind",
			Group:       GroupAblation,
			Description: "ablation A1 endpoint: EAR with Q=1, which ignores battery levels entirely",
			Mesh:        4,
			EARQ:        1,
		},
		{
			Name:        "proportional-mapping",
			Group:       GroupAblation,
			Description: "ablation A2: 6x6 mesh mapped with the Theorem-1 proportional duplicate counts",
			Mesh:        6,
			Mapping:     MappingProportional,
		},
		{
			Name:        "random-mapping",
			Group:       GroupAblation,
			Description: "ablation A2 baseline: 5x5 mesh with a seeded random module placement",
			Mesh:        5,
			Mapping:     MappingRandom,
			MappingSeed: 1,
		},
		// Replication-oriented scenarios: their specs differ only by the
		// seed-derived fields (MappingSeed, FailedLinkSeed), which a
		// Monte-Carlo campaign re-draws per replicate from its seed stream.
		// Run singly they are one draw; under `etcampaign` they are a
		// distribution with error bars.
		{
			Name:        "random-mapping-sweep",
			Group:       GroupMC,
			Description: "Monte-Carlo cell: EAR on a 6x6 mesh with random module placement, re-drawn per replicate",
			Mesh:        6,
			Mapping:     MappingRandom,
			MappingSeed: 1,
		},
		{
			Name:        "random-mapping-sweep-sdr",
			Group:       GroupMC,
			Description: "Monte-Carlo cell: the same random-placement 6x6 mesh under SDR, for replicated EAR/SDR gaps",
			Mesh:        6,
			Algorithm:   AlgorithmSDR,
			Mapping:     MappingRandom,
			MappingSeed: 1,
		},
		{
			Name:               "degraded-fabric-mc",
			Group:              GroupMC,
			Description:        "Monte-Carlo cell: 5x5 mesh with 15% failed links, the fault pattern re-drawn per replicate",
			Mesh:               5,
			FailedLinkFraction: 0.15,
			FailedLinkSeed:     1,
		},
		// Optimized placements discovered by the internal/optimize search
		// (produced by `etopt -emit-spec`, multi-restart annealing over the
		// sim objective: -strategy anneal -objective sim -budget 300
		// -restarts 6 -seed 1). The explicit assignments replay the exact
		// winners, so campaigns and traces run on searched placements out of
		// the box; compare against paper-default / paper-sdr for the searched
		// vs fixed-mapping gap.
		{
			Name:        "optimized-4x4",
			Group:       GroupOptimized,
			Description: "searched placement: EAR on the 4x4 mesh with the etopt-optimized explicit mapping (87 vs 71 jobs checkerboard)",
			Mesh:        4,
			Mapping:     MappingExplicit,
			Assignment:  "1,2,3,1,3,1,3,2,3,1,3,3,2,3,2,1",
		},
		{
			Name:        "optimized-4x4-sdr",
			Group:       GroupOptimized,
			Description: "searched placement: SDR on the 4x4 mesh with the etopt-optimized explicit mapping (71 vs 10 jobs checkerboard)",
			Mesh:        4,
			Algorithm:   AlgorithmSDR,
			Mapping:     MappingExplicit,
			Assignment:  "3,2,1,3,1,3,3,2,2,3,3,1,3,1,2,3",
		},
		// Sharded control-plane scenarios: regional controllers on contiguous
		// row bands of the mesh, exchanging battery summaries only every
		// StalenessFrames frames (see internal/controlplane).
		{
			Name:            "sharded-8x8",
			Group:           GroupSharded,
			Description:     "sharded control: EAR on the 8x8 mesh with 4 regional controllers exchanging summaries every 8 frames",
			Mesh:            8,
			ControlPlane:    "sharded",
			Shards:          4,
			StalenessFrames: 8,
		},
		{
			Name:            "sharded-8x8-stale",
			Group:           GroupSharded,
			Description:     "staleness stress: the sharded 8x8 mesh with a 32-frame summary-exchange period",
			Mesh:            8,
			ControlPlane:    "sharded",
			Shards:          4,
			StalenessFrames: 32,
		},
		{
			Name:              "sharded-finite-controllers",
			Group:             GroupSharded,
			Description:       "Fig 8 extension: sharded 6x6 mesh where each of 4 regions runs 2 battery-powered controllers",
			Mesh:              6,
			ControlPlane:      "sharded",
			Shards:            4,
			StalenessFrames:   8,
			Controllers:       2,
			FiniteControllers: true,
		},
		{
			Name:               "degraded-random-mc",
			Group:              GroupMC,
			Description:        "Monte-Carlo cell: random placement on a damaged 5x5 fabric, both draws re-seeded per replicate",
			Mesh:               5,
			Mapping:            MappingRandom,
			MappingSeed:        1,
			FailedLinkFraction: 0.1,
			FailedLinkSeed:     1,
		},
		// Chaos scenarios: runtime fault schedules applied mid-run (see
		// internal/faults). Every schedule is a pure function of its seed, so
		// these runs are exactly as reproducible as the fault-free ones; under
		// `etcampaign` the schedule seed is re-drawn per replicate from the
		// Transient channel.
		{
			Name:        "chaos-links",
			Group:       GroupChaos,
			Description: "transient link faults: 6x6 mesh where a random interconnect vanishes ~5% of frames and heals after 8",
			Mesh:        6,
			Faults:      "link=0.05:8,seed=1",
		},
		{
			Name:        "chaos-crashes",
			Group:       GroupChaos,
			Description: "node crash/restore cycles: 6x6 mesh where a node crashes ~3% of frames and restores after 12",
			Mesh:        6,
			Faults:      "crash=0.03:12,seed=1",
		},
		{
			Name:        "chaos-wear",
			Group:       GroupChaos,
			Description: "traversal wear: 6x6 mesh whose links break for good after ~150 packet traversals (Weibull k=2)",
			Mesh:        6,
			Faults:      "wear=150,seed=1",
		},
		{
			Name:        "chaos-blackout",
			Group:       GroupChaos,
			Description: "controller blackout: 4x4 mesh whose central controller goes dark for frames 30-60 (last-known-good tables)",
			Mesh:        4,
			Faults:      "kill=0@30:60",
		},
		{
			Name:            "chaos-region-failover",
			Group:           GroupChaos,
			Description:     "shard failover: sharded 8x8 mesh where region 1 dies at frame 40 and returns at 120; neighbours adopt its nodes",
			Mesh:            8,
			ControlPlane:    "sharded",
			Shards:          4,
			StalenessFrames: 8,
			Faults:          "kill=1@40:120",
		},
		{
			Name:            "chaos-storm",
			Group:           GroupChaos,
			Description:     "everything at once: sharded 8x8 mesh under link faults, crashes, wear and a region kill window",
			Mesh:            8,
			ControlPlane:    "sharded",
			Shards:          4,
			StalenessFrames: 8,
			Faults:          "link=0.05:8,crash=0.02:12,wear=4000,kill=2@60:140,seed=1",
		},
		// Big-mesh scenarios: platforms far beyond the paper's 8x8 ceiling,
		// tractable because the controller's phase 2 runs as an incremental
		// dirty-set repair instead of a full Floyd–Warshall pass per change
		// (see internal/routing.DeltaWorkspace). MaxCycles bounds both so a
		// run finishes in bounded time; they are sweeps over the early-life
		// battery-drain regime, not runs to system death.
		{
			Name:        "big-mesh-16",
			Group:       GroupBigMesh,
			Description: "scaling: EAR on the 16x16 mesh (256 nodes), incremental recompute, bounded to 200 frames",
			Mesh:        16,
			MaxCycles:   200 * 1024,
		},
		{
			Name:        "big-mesh-64",
			Group:       GroupBigMesh,
			Description: "scaling: EAR on the 64x64 mesh (4096 nodes); one full pass at start-up, incremental repairs after",
			Mesh:        64,
			MaxCycles:   50 * 1024,
		},
	}
	for _, sp := range builtins {
		MustRegister(sp)
	}
}
