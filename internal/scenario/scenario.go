// Package scenario turns the paper's notion of an evaluation scenario into
// declarative, nameable data. A Spec captures everything that distinguishes
// one simulation run from another — mesh size, routing algorithm, module
// mapping, battery model, controller configuration, offered load, link
// faults, payload verification — as plain values, and materialises into a
// runnable core.Strategy with Spec.Strategy().
//
// The package also keeps a registry of named scenarios: every figure/table
// scenario of the paper plus additional stress and degradation workloads.
// Registered scenarios are what `etsim -scenario <name>` runs and what
// `etsim -list-scenarios` enumerates; adding a new workload to the whole
// stack is one Register call, not an engine change.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mapping"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Values for Spec.Algorithm.
const (
	// AlgorithmEAR selects the paper's energy-aware routing (the default).
	AlgorithmEAR = "EAR"
	// AlgorithmSDR selects shortest-distance routing.
	AlgorithmSDR = "SDR"
)

// Values for Spec.Battery.
const (
	// BatteryThinFilm selects the thin-film model with the rate-capacity
	// effect (the default).
	BatteryThinFilm = "thinfilm"
	// BatteryIdeal selects the ideal linear cell of the Table 2 comparison.
	BatteryIdeal = "ideal"
)

// Values for Spec.Mapping.
const (
	// MappingCheckerboard is the paper's interleaved mapping (the default).
	MappingCheckerboard = "checkerboard"
	// MappingProportional derives duplicate counts from the Theorem-1
	// normalized energies.
	MappingProportional = "proportional"
	// MappingRowMajor clusters each module's duplicates in contiguous
	// blocks.
	MappingRowMajor = "row-major"
	// MappingRandom assigns modules pseudo-randomly, seeded by
	// Spec.MappingSeed.
	MappingRandom = "random"
	// MappingExplicit replays the exact placement carried in
	// Spec.Assignment (the canonical comma-separated form of
	// mapping.Explicit) — typically a placement discovered by the
	// internal/optimize search and emitted by `etopt -emit-spec`.
	MappingExplicit = "explicit"
)

// MappingNames lists the accepted Spec.Mapping values, for CLI error
// messages.
func MappingNames() []string {
	return []string{MappingCheckerboard, MappingProportional, MappingRowMajor, MappingRandom, MappingExplicit}
}

// PaperKey is the AES-128 key used whenever a scenario requests payload
// verification (the FIPS-197 Appendix B key, also used by the smartshirt
// example).
func PaperKey() []byte {
	return []byte{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}
}

// Spec is one declarative simulation scenario. The zero value of every field
// selects the paper's default (EAR, checkerboard mapping, thin-film node
// batteries, one infinite-energy controller, one job in flight, pristine
// fabric, no payload); only Mesh is required. Specs are plain data: copy
// them, mutate copies, register them under a name — materialising one never
// mutates it.
type Spec struct {
	// Name identifies the scenario in the registry and in output labels.
	Name string
	// Description is the one-line summary shown by `etsim -list-scenarios`.
	Description string
	// Group clusters related scenarios in the `etsim -list-scenarios`
	// listing (e.g. "paper figures", "big mesh"); scenarios with an empty
	// Group are listed last under "other".
	Group string

	// Mesh is the square mesh size (the platform has Mesh x Mesh nodes).
	Mesh int
	// Algorithm is the routing algorithm: AlgorithmEAR (default) or
	// AlgorithmSDR.
	Algorithm string
	// EARQ overrides the EAR battery-weighting base Q (0 = paper default).
	EARQ float64
	// BatteryLevels overrides the battery quantisation level count
	// (0 = algorithm default).
	BatteryLevels int
	// Battery is the node battery model: BatteryThinFilm (default) or
	// BatteryIdeal.
	Battery string
	// Mapping is the module-to-node mapping strategy: MappingCheckerboard
	// (default), MappingProportional, MappingRowMajor or MappingRandom.
	Mapping string
	// MappingSeed seeds MappingRandom.
	MappingSeed uint64
	// Assignment is the explicit module placement replayed by
	// MappingExplicit: the module of every node in NodeID order,
	// comma-separated (mapping.Explicit's canonical text form). Ignored by
	// the other mapping strategies.
	Assignment string
	// Controllers is the number of redundant controllers. 0 defaults to 1 (a
	// single controller, the paper's setup); negative values are rejected
	// eagerly by Strategy. Under ControlPlane "sharded" this is the
	// controller count per regional pool.
	Controllers int
	// ControlPlane selects the controller architecture: "" or "centralized"
	// (the paper's single central controller, the default) or "sharded"
	// (regional controllers owning contiguous mesh shards).
	ControlPlane string
	// Shards is the number of regional controllers under ControlPlane
	// "sharded" (0 = controlplane.DefaultShards). Invalid with the
	// centralized plane.
	Shards int
	// StalenessFrames is the period, in TDMA frames, at which regional
	// controllers exchange battery summaries about each other's shards
	// (0 = 1 = every frame). Invalid with the centralized plane.
	StalenessFrames int
	// Recompute selects the controller's phase-2 strategy: "" or
	// "incremental" (dirty-set repair with automatic full fallback) or
	// "full" (always the complete Floyd–Warshall pass). The strategies are
	// byte-identical in every output, so the knob only changes controller
	// compute time.
	Recompute string
	// FiniteControllers attaches thin-film batteries to the controllers
	// (the Sec 7.3 scenario); false models the infinite-energy controller.
	FiniteControllers bool
	// ConcurrentJobs is the number of jobs kept in flight (0 = 1).
	ConcurrentJobs int
	// FailedLinkFraction removes that fraction of the interconnects before
	// the run (wear-and-tear); FailedLinkSeed selects the deterministic
	// fault pattern.
	FailedLinkFraction float64
	FailedLinkSeed     uint64
	// Faults is a runtime fault schedule in the compact clause form of
	// faults.ParseSpec (e.g. "link=0.05:8,kill=1@40:80,seed=7"): transient
	// link faults, wear breaks, node crashes and controller-region kill
	// windows injected mid-run at frame boundaries. Empty injects nothing.
	// Monte-Carlo campaigns re-seed the schedule per replicate from the
	// Transient seed channel.
	Faults string
	// VerifyPayload makes every job carry a real AES block encrypted with
	// PaperKey and verified against the reference cipher.
	VerifyPayload bool
	// CollectNodeStats enables per-node statistics in the result.
	CollectNodeStats bool
	// MaxCycles bounds the simulated time (0 = run to system death).
	MaxCycles int64
}

// Label returns the scenario's display name: Name if set, otherwise an
// algorithm-mesh synthetic label.
func (sp Spec) Label() string {
	if sp.Name != "" {
		return sp.Name
	}
	alg := sp.Algorithm
	if alg == "" {
		alg = AlgorithmEAR
	}
	return fmt.Sprintf("%s-%dx%d", alg, sp.Mesh, sp.Mesh)
}

// algorithm materialises the routing algorithm described by the spec.
func (sp Spec) algorithm() (routing.Algorithm, error) {
	switch sp.Algorithm {
	case "", AlgorithmEAR:
		params := routing.DefaultEARParams()
		if sp.EARQ > 0 {
			params.Q = sp.EARQ
		}
		if sp.BatteryLevels > 0 {
			params.Levels = sp.BatteryLevels
		}
		return routing.EAR{Params: params}, nil
	case AlgorithmSDR:
		return routing.SDR{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown algorithm %q (want %s or %s)",
			sp.Algorithm, AlgorithmEAR, AlgorithmSDR)
	}
}

// Strategy materialises the spec into a runnable core.Strategy; extra
// options are applied last, so callers can refine a registered scenario
// (attach observers, cap cycles) without redefining it.
func (sp Spec) Strategy(extra ...core.Option) (*core.Strategy, error) {
	if sp.Mesh < 1 {
		return nil, fmt.Errorf("scenario %s: mesh size must be at least 1, got %d", sp.Label(), sp.Mesh)
	}
	alg, err := sp.algorithm()
	if err != nil {
		return nil, err
	}
	opts := []core.Option{core.WithAlgorithm(alg)}

	switch sp.Battery {
	case "", BatteryThinFilm:
		// core's default.
	case BatteryIdeal:
		opts = append(opts, core.WithIdealBatteries())
	default:
		return nil, fmt.Errorf("scenario %s: unknown battery model %q (want %s or %s)",
			sp.Label(), sp.Battery, BatteryThinFilm, BatteryIdeal)
	}

	if sp.Controllers < 0 {
		return nil, fmt.Errorf("scenario %s: controller count must be non-negative (0 defaults to 1), got %d",
			sp.Label(), sp.Controllers)
	}
	controllers := sp.Controllers
	if controllers == 0 {
		controllers = 1
	}
	opts = append(opts, core.WithControllers(controllers, sp.FiniteControllers))

	kind, err := controlplane.ParseKind(sp.ControlPlane)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sp.Label(), err)
	}
	control := controlplane.Config{Kind: kind, Shards: sp.Shards, StalenessFrames: sp.StalenessFrames, Recompute: sp.Recompute}
	// Validate the control-plane configuration eagerly, like every other spec
	// error, instead of at materialisation time inside a worker.
	if err := control.Validate(sp.Mesh * sp.Mesh); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sp.Label(), err)
	}
	opts = append(opts, core.WithControlPlane(control))
	if sp.Faults != "" {
		fsp, err := faults.ParseSpec(sp.Faults)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sp.Label(), err)
		}
		// Validate the schedule against the control plane's shard count
		// eagerly, like every other spec error, instead of at materialisation
		// time inside a worker.
		if err := fsp.Validate(control.ShardCount()); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sp.Label(), err)
		}
		opts = append(opts, core.WithFaults(fsp))
	}
	if sp.ConcurrentJobs > 1 {
		opts = append(opts, core.WithConcurrentJobs(sp.ConcurrentJobs))
	}
	if sp.FailedLinkFraction > 0 {
		opts = append(opts, core.WithFailedLinks(sp.FailedLinkFraction, sp.FailedLinkSeed))
	}
	if sp.VerifyPayload {
		opts = append(opts, core.WithPayloadVerification(PaperKey()))
	}
	if sp.CollectNodeStats {
		opts = append(opts, core.WithNodeStats())
	}
	if sp.MaxCycles > 0 {
		opts = append(opts, core.WithMaxCycles(sp.MaxCycles))
	}
	opts = append(opts, extra...)

	s, err := core.New(sp.Mesh, opts...)
	if err != nil {
		return nil, err
	}
	s.Label = sp.Label()

	switch sp.Mapping {
	case "", MappingCheckerboard:
		// core's default.
	case MappingProportional:
		bound, err := s.UpperBound()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: deriving proportional weights: %w", sp.Label(), err)
		}
		s.Mapper = mapping.Proportional{Weights: bound.NormalizedEnergies}
	case MappingRowMajor:
		s.Mapper = mapping.RowMajor{}
	case MappingRandom:
		s.Mapper = mapping.Random{Seed: sp.MappingSeed}
	case MappingExplicit:
		ex, err := mapping.ParseExplicit(sp.Assignment)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sp.Label(), err)
		}
		// Validate the assignment against the platform eagerly so a bad
		// placement fails here, like every other spec error, instead of at
		// materialisation time inside a worker.
		if _, err := ex.Map(s.Mesh.Graph, s.App); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sp.Label(), err)
		}
		s.Mapper = ex
	default:
		return nil, fmt.Errorf("scenario %s: unknown mapping %q (want one of: %s)",
			sp.Label(), sp.Mapping, strings.Join(MappingNames(), ", "))
	}
	return s, nil
}

// Simulate materialises the spec and runs it to completion, attaching the
// given observers to the simulator's event stream.
func (sp Spec) Simulate(obs ...sim.Observer) (sim.Result, error) {
	s, err := sp.Strategy(core.WithObservers(obs...))
	if err != nil {
		return sim.Result{}, err
	}
	return s.Simulate()
}
