package mapping

import (
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/topology"
)

func TestCheckerboardOn4x4MatchesFig3b(t *testing.T) {
	mesh := topology.MustMesh(4, 4, 1)
	appl := app.AES128()
	m, err := Checkerboard{}.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 3(b): 4 nodes of module 1, 4 of module 2, 8 of module 3.
	if m.Count(1) != 4 || m.Count(2) != 4 || m.Count(3) != 8 {
		t.Fatalf("counts = %v, want module1=4 module2=4 module3=8", m.Counts())
	}
	// Spot-check specific coordinates against the paper's figure:
	// (1,1) both odd -> module 1; (2,2) both even -> module 2; (2,1) -> module 3.
	checks := []struct {
		x, y int
		want app.ModuleID
	}{
		{1, 1, 1}, {3, 3, 1}, {2, 2, 2}, {4, 4, 2}, {2, 1, 3}, {1, 2, 3}, {4, 3, 3},
	}
	for _, c := range checks {
		id, ok := mesh.IDAt(c.x, c.y)
		if !ok {
			t.Fatalf("no node at (%d,%d)", c.x, c.y)
		}
		if got := m.ModuleAt(id); got != c.want {
			t.Errorf("node (%d,%d) mapped to module %d, want %d", c.x, c.y, got, c.want)
		}
	}
	if m.AssignedNodes() != 16 {
		t.Errorf("AssignedNodes = %d, want 16", m.AssignedNodes())
	}
	if err := m.Validate(appl, 16); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCheckerboardModule3GetsHalfTheNodes(t *testing.T) {
	// For any even-sized mesh the checkerboard rule gives module 3 exactly
	// half the nodes, the paper's approximation of the Theorem-1 rule.
	for _, n := range []int{4, 6, 8} {
		mesh := topology.MustMesh(n, n, 1)
		m, err := Checkerboard{}.Map(mesh.Graph, app.AES128())
		if err != nil {
			t.Fatal(err)
		}
		if m.Count(3) != n*n/2 {
			t.Errorf("%dx%d: module 3 count = %d, want %d", n, n, m.Count(3), n*n/2)
		}
	}
}

func TestCheckerboardRequiresThreeModules(t *testing.T) {
	b := app.NewBuilder("two-module")
	m1 := b.AddModule("a", 10)
	m2 := b.AddModule("b", 20)
	appl, err := b.Step(m1).Step(m2).Build()
	if err != nil {
		t.Fatal(err)
	}
	mesh := topology.MustMesh(4, 4, 1)
	if _, err := (Checkerboard{}).Map(mesh.Graph, appl); err == nil {
		t.Fatal("checkerboard accepted a non-3-module application")
	}
}

func TestCheckerboardOddMeshStillCoversAllModules(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		mesh := topology.MustMesh(n, n, 1)
		m, err := Checkerboard{}.Map(mesh.Graph, app.AES128())
		if err != nil {
			t.Fatalf("%dx%d: %v", n, n, err)
		}
		for id := app.ModuleID(1); id <= 3; id++ {
			if m.Count(id) == 0 {
				t.Errorf("%dx%d: module %d has no duplicates", n, n, id)
			}
		}
		total := m.Count(1) + m.Count(2) + m.Count(3)
		if total != n*n {
			t.Errorf("%dx%d: assigned %d nodes, want %d", n, n, total, n*n)
		}
	}
}

func TestProportionalFollowsWeights(t *testing.T) {
	mesh := topology.MustMesh(4, 4, 1)
	appl := app.AES128()
	// Use the AES normalized-energy-like weights: module 3 heaviest.
	weights := []float64{2368.0, 1710.4, 3225.8}
	m, err := Proportional{Weights: weights}.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	if m.AssignedNodes() != 16 {
		t.Fatalf("AssignedNodes = %d, want 16", m.AssignedNodes())
	}
	// Theorem 1 exact shares: 5.19, 3.75, 7.07 -> expect counts close to 5/4/7.
	if m.Count(3) < m.Count(1) || m.Count(1) < m.Count(2) {
		t.Errorf("counts %v do not follow weight ordering", m.Counts())
	}
	if m.Count(1)+m.Count(2)+m.Count(3) != 16 {
		t.Errorf("counts %v do not sum to 16", m.Counts())
	}
	for id := app.ModuleID(1); id <= 3; id++ {
		if m.Count(id) == 0 {
			t.Errorf("module %d has zero duplicates", id)
		}
	}
}

func TestProportionalValidation(t *testing.T) {
	mesh := topology.MustMesh(4, 4, 1)
	appl := app.AES128()
	if _, err := (Proportional{Weights: []float64{1, 2}}).Map(mesh.Graph, appl); err == nil {
		t.Error("wrong number of weights accepted")
	}
	if _, err := (Proportional{Weights: []float64{1, -1, 2}}).Map(mesh.Graph, appl); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := (Proportional{Weights: []float64{1, 0, 2}}).Map(mesh.Graph, appl); err == nil {
		t.Error("zero weight accepted")
	}
	tiny := topology.MustMesh(1, 2, 1)
	if _, err := (Proportional{Weights: []float64{1, 1, 1}}).Map(tiny.Graph, appl); err == nil {
		t.Error("graph smaller than module count accepted")
	}
}

func TestProportionalInterleavesDuplicates(t *testing.T) {
	// Error diffusion should avoid putting all duplicates of a module in one
	// contiguous block: in a 4x4 mesh with equal weights, no single row may
	// contain four nodes of the same module.
	mesh := topology.MustMesh(4, 4, 1)
	appl := app.AES128()
	m, err := Proportional{Weights: []float64{1, 1, 1}}.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	for y := 1; y <= 4; y++ {
		rowCounts := map[app.ModuleID]int{}
		for x := 1; x <= 4; x++ {
			id, _ := mesh.IDAt(x, y)
			rowCounts[m.ModuleAt(id)]++
		}
		for mod, c := range rowCounts {
			if c == 4 {
				t.Errorf("row %d is entirely module %d; duplicates are not interleaved", y, mod)
			}
		}
	}
}

func TestRowMajorBlocksProportionalToOps(t *testing.T) {
	mesh := topology.MustMesh(4, 4, 1)
	appl := app.AES128()
	m, err := RowMajor{}.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	// f = (10, 9, 11) over 16 nodes -> roughly 5/5/6.
	if m.Count(1)+m.Count(2)+m.Count(3) != 16 {
		t.Fatalf("counts %v do not sum to 16", m.Counts())
	}
	for id := app.ModuleID(1); id <= 3; id++ {
		if m.Count(id) < 4 || m.Count(id) > 7 {
			t.Errorf("module %d count = %d, want between 4 and 7", id, m.Count(id))
		}
	}
	// Row-major clustering: the first row must be homogeneous.
	first, _ := mesh.IDAt(1, 1)
	mod := m.ModuleAt(first)
	for x := 2; x <= 4; x++ {
		id, _ := mesh.IDAt(x, 1)
		if m.ModuleAt(id) != mod {
			t.Errorf("row-major mapping is not clustered in the first row")
		}
	}
}

func TestRandomMappingIsDeterministicPerSeed(t *testing.T) {
	mesh := topology.MustMesh(5, 5, 1)
	appl := app.AES128()
	m1, err := Random{Seed: 42}.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Random{Seed: 42}.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := Random{Seed: 7}.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	differs := false
	for _, n := range mesh.Nodes() {
		if m1.ModuleAt(n.ID) != m2.ModuleAt(n.ID) {
			same = false
		}
		if m1.ModuleAt(n.ID) != m3.ModuleAt(n.ID) {
			differs = true
		}
	}
	if !same {
		t.Error("same seed produced different mappings")
	}
	if !differs {
		t.Error("different seeds produced identical mappings (suspicious)")
	}
	for id := app.ModuleID(1); id <= 3; id++ {
		if m1.Count(id) == 0 {
			t.Errorf("module %d has no duplicates under random mapping", id)
		}
	}
}

func TestStrategyNames(t *testing.T) {
	if (Checkerboard{}).Name() != "checkerboard" {
		t.Error("Checkerboard name wrong")
	}
	if (Proportional{}).Name() != "theorem1-proportional" {
		t.Error("Proportional name wrong")
	}
	if (RowMajor{}).Name() != "row-major-blocks" {
		t.Error("RowMajor name wrong")
	}
	if (Random{Seed: 3}).Name() != "random(seed=3)" {
		t.Error("Random name wrong")
	}
}

func TestMappingValidate(t *testing.T) {
	mesh := topology.MustMesh(4, 4, 1)
	appl := app.AES128()
	m, err := Checkerboard{}.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(appl, 15); err == nil {
		t.Error("mapping exceeding the node budget accepted")
	}
	// A mapping missing one module must fail validation.
	partial := New(map[topology.NodeID]app.ModuleID{0: 1, 1: 2})
	if err := partial.Validate(appl, 16); err == nil {
		t.Error("mapping without module 3 accepted")
	}
	// Unknown module IDs must fail validation.
	bogus := New(map[topology.NodeID]app.ModuleID{0: 1, 1: 2, 2: 3, 3: 9})
	if err := bogus.Validate(appl, 16); err == nil {
		t.Error("mapping with unknown module accepted")
	}
}

func TestUnassignedNodesAreIgnored(t *testing.T) {
	m := New(map[topology.NodeID]app.ModuleID{
		0: 1, 1: 2, 2: 3, 3: Unassigned,
	})
	if m.AssignedNodes() != 3 {
		t.Fatalf("AssignedNodes = %d, want 3", m.AssignedNodes())
	}
	if m.ModuleAt(3) != Unassigned {
		t.Errorf("node 3 module = %d, want Unassigned", m.ModuleAt(3))
	}
	if m.ModuleAt(99) != Unassigned {
		t.Errorf("unknown node module = %d, want Unassigned", m.ModuleAt(99))
	}
}

func TestNodesForReturnsSortedCopy(t *testing.T) {
	m := New(map[topology.NodeID]app.ModuleID{5: 1, 2: 1, 9: 1, 3: 2})
	nodes := m.NodesFor(1)
	want := []topology.NodeID{2, 5, 9}
	if len(nodes) != 3 {
		t.Fatalf("NodesFor(1) = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("NodesFor(1) = %v, want %v", nodes, want)
		}
	}
	nodes[0] = 77
	if m.NodesFor(1)[0] == 77 {
		t.Fatal("mutating NodesFor result changed mapping state")
	}
	if len(m.NodesFor(9)) != 0 {
		t.Fatal("NodesFor of unknown module should be empty")
	}
}

func TestAllStrategiesSatisfyBudgetProperty(t *testing.T) {
	appl := app.AES128()
	strategies := []Strategy{
		Checkerboard{},
		Proportional{Weights: []float64{2368, 1710, 3226}},
		RowMajor{},
		Random{Seed: 99},
	}
	prop := func(sizeRaw uint8, stratIdx uint8) bool {
		n := int(sizeRaw%6) + 3 // 3..8
		mesh := topology.MustMesh(n, n, 1)
		s := strategies[int(stratIdx)%len(strategies)]
		m, err := s.Map(mesh.Graph, appl)
		if err != nil {
			return false
		}
		total := 0
		for id := app.ModuleID(1); id <= 3; id++ {
			if m.Count(id) == 0 {
				return false
			}
			total += m.Count(id)
		}
		return total <= mesh.Size() && m.Validate(appl, mesh.Size()) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitRoundTrip(t *testing.T) {
	mesh := topology.MustMesh(4, 4, 1)
	appl := app.AES128()
	// Derive a reference assignment from the checkerboard mapping, express it
	// as an Explicit strategy, and check the text form round-trips exactly.
	ref, err := Checkerboard{}.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	e := Explicit{Assign: make([]app.ModuleID, mesh.NodeCount())}
	for _, n := range mesh.Nodes() {
		e.Assign[n.ID] = ref.ModuleAt(n.ID)
	}
	parsed, err := ParseExplicit(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Assign) != len(e.Assign) {
		t.Fatalf("round trip length = %d, want %d", len(parsed.Assign), len(e.Assign))
	}
	for i := range e.Assign {
		if parsed.Assign[i] != e.Assign[i] {
			t.Fatalf("round trip changed node %d: %d != %d", i, parsed.Assign[i], e.Assign[i])
		}
	}
	// The materialised mapping is identical to the reference.
	m, err := parsed.Map(mesh.Graph, appl)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range mesh.Nodes() {
		if m.ModuleAt(n.ID) != ref.ModuleAt(n.ID) {
			t.Fatalf("node %d: explicit mapping %d != checkerboard %d", n.ID, m.ModuleAt(n.ID), ref.ModuleAt(n.ID))
		}
	}
	if (Explicit{}).Name() != "explicit" {
		t.Error("Explicit name wrong")
	}
}

func TestExplicitValidation(t *testing.T) {
	mesh := topology.MustMesh(2, 2, 1)
	appl := app.AES128() // 3 modules
	cases := []struct {
		name   string
		assign []app.ModuleID
	}{
		{"too short", []app.ModuleID{1, 2, 3}},
		{"too long", []app.ModuleID{1, 2, 3, 1, 2}},
		{"unknown module", []app.ModuleID{1, 2, 3, 9}},
		{"missing module", []app.ModuleID{1, 1, 2, 2}},
	}
	for _, c := range cases {
		if _, err := (Explicit{Assign: c.assign}).Map(mesh.Graph, appl); err == nil {
			t.Errorf("%s: Map accepted invalid assignment %v", c.name, c.assign)
		}
	}
	// Unassigned (0) nodes are allowed as long as every module is placed.
	ok := []app.ModuleID{0, 1, 2, 3}
	m, err := (Explicit{Assign: ok}).Map(mesh.Graph, appl)
	if err != nil {
		t.Fatalf("Map rejected valid assignment with a relay-only node: %v", err)
	}
	if m.AssignedNodes() != 3 {
		t.Errorf("AssignedNodes = %d, want 3", m.AssignedNodes())
	}
}

func TestParseExplicitErrors(t *testing.T) {
	for _, s := range []string{"", "1,,2", "1,x,2", "1,-2,3", "1, 2,"} {
		if _, err := ParseExplicit(s); err == nil {
			t.Errorf("ParseExplicit(%q) accepted a malformed assignment", s)
		}
	}
	// Whitespace around entries is tolerated.
	e, err := ParseExplicit(" 1, 2 ,3 ")
	if err != nil {
		t.Fatalf("ParseExplicit with spaces: %v", err)
	}
	if len(e.Assign) != 3 || e.Assign[0] != 1 || e.Assign[1] != 2 || e.Assign[2] != 3 {
		t.Errorf("ParseExplicit with spaces = %v", e.Assign)
	}
}
