// Package mapping assigns application modules to network nodes. The mapping
// is one of the four ingredients of a routing strategy in the paper's
// formulation (topology, mapping, control mechanism, routing algorithm).
//
// The paper's own mapping for AES on a mesh is the checkerboard rule of
// Sec 5.2: node (x,y) runs module 1 if (x mod 2)+(y mod 2) = 2, module 2 if
// the sum is 0 and module 3 if the sum is 1, which maps the most
// energy-hungry module (module 3) onto half the nodes as suggested by
// Theorem 1. Additional strategies (Theorem-1-proportional, row-major
// blocks, seeded random) are provided for the ablation studies.
package mapping

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/app"
	"repro/internal/topology"
)

// Unassigned marks a node that runs no application module; such nodes are
// idle computationally but still relay packets.
const Unassigned app.ModuleID = 0

// Mapping is an immutable assignment of modules to nodes.
type Mapping struct {
	assign   map[topology.NodeID]app.ModuleID
	byModule map[app.ModuleID][]topology.NodeID
}

// New builds a Mapping from a node→module assignment. Nodes missing from the
// map are treated as unassigned.
func New(assign map[topology.NodeID]app.ModuleID) *Mapping {
	m := &Mapping{
		assign:   make(map[topology.NodeID]app.ModuleID, len(assign)),
		byModule: make(map[app.ModuleID][]topology.NodeID),
	}
	for node, mod := range assign {
		if mod == Unassigned {
			continue
		}
		m.assign[node] = mod
		m.byModule[mod] = append(m.byModule[mod], node)
	}
	for mod := range m.byModule {
		nodes := m.byModule[mod]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	}
	return m
}

// ModuleAt returns the module assigned to a node, or Unassigned.
func (m *Mapping) ModuleAt(node topology.NodeID) app.ModuleID { return m.assign[node] }

// NodesFor returns S_i, the set of nodes running module id, sorted by ID.
func (m *Mapping) NodesFor(id app.ModuleID) []topology.NodeID {
	nodes := m.byModule[id]
	out := make([]topology.NodeID, len(nodes))
	copy(out, nodes)
	return out
}

// Count returns n_i, the number of duplicates of module id.
func (m *Mapping) Count(id app.ModuleID) int { return len(m.byModule[id]) }

// Counts returns the duplicate count of every module present in the mapping.
func (m *Mapping) Counts() map[app.ModuleID]int {
	out := make(map[app.ModuleID]int, len(m.byModule))
	for id, nodes := range m.byModule {
		out[id] = len(nodes)
	}
	return out
}

// AssignedNodes returns the total number of nodes running some module.
func (m *Mapping) AssignedNodes() int { return len(m.assign) }

// Validate checks the mapping against an application and a node budget: every
// module must have at least one duplicate, no node may run an unknown module,
// and the number of assigned nodes must not exceed the budget (the paper's
// first constraint, sum n_i <= K).
func (m *Mapping) Validate(a *app.Application, nodeBudget int) error {
	if len(m.assign) > nodeBudget {
		return fmt.Errorf("mapping: %d assigned nodes exceed the node budget %d", len(m.assign), nodeBudget)
	}
	for node, mod := range m.assign {
		if int(mod) < 1 || int(mod) > a.NumModules() {
			return fmt.Errorf("mapping: node %d assigned to unknown module %d", node, mod)
		}
	}
	for _, mod := range a.Modules {
		if m.Count(mod.ID) == 0 {
			return fmt.Errorf("mapping: module %d (%s) has no duplicates", mod.ID, mod.Name)
		}
	}
	return nil
}

// Strategy produces a Mapping for an application on a graph.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Map assigns modules to the nodes of g for application a.
	Map(g *topology.Graph, a *app.Application) (*Mapping, error)
}

// Errors returned by the built-in strategies.
var (
	ErrNeedThreeModules = errors.New("mapping: checkerboard mapping requires exactly 3 modules")
	ErrTooFewNodes      = errors.New("mapping: graph has fewer nodes than application modules")
	ErrBadWeights       = errors.New("mapping: proportional weights must be positive, one per module")
)

// Checkerboard is the paper's Sec 5.2 mapping rule for three-module
// applications on coordinate grids.
type Checkerboard struct{}

// Name implements Strategy.
func (Checkerboard) Name() string { return "checkerboard" }

// Map implements Strategy.
func (Checkerboard) Map(g *topology.Graph, a *app.Application) (*Mapping, error) {
	if a.NumModules() != 3 {
		return nil, fmt.Errorf("%w, application has %d", ErrNeedThreeModules, a.NumModules())
	}
	if g.NodeCount() < a.NumModules() {
		return nil, fmt.Errorf("%w: %d nodes for %d modules", ErrTooFewNodes, g.NodeCount(), a.NumModules())
	}
	assign := make(map[topology.NodeID]app.ModuleID, g.NodeCount())
	for _, n := range g.Nodes() {
		sum := mod2(n.Pos.X) + mod2(n.Pos.Y)
		switch sum {
		case 2:
			assign[n.ID] = 1
		case 0:
			assign[n.ID] = 2
		default:
			assign[n.ID] = 3
		}
	}
	m := New(assign)
	if err := m.Validate(a, g.NodeCount()); err != nil {
		return nil, err
	}
	return m, nil
}

func mod2(x int) int {
	if x%2 == 0 {
		return 0
	}
	return 1
}

// Proportional maps modules so that the duplicate counts follow Theorem 1:
// n_i is proportional to the supplied per-module weight (normally the
// normalized energy H_i), rounded with the largest-remainder method and
// spread over the grid by error diffusion so duplicates of the same module
// are spatially interleaved rather than clustered.
type Proportional struct {
	// Weights holds one positive weight per module, Weights[i] for module
	// i+1. Typically these are the normalized energies H_i from the analytic
	// package.
	Weights []float64
}

// Name implements Strategy.
func (p Proportional) Name() string { return "theorem1-proportional" }

// Map implements Strategy.
func (p Proportional) Map(g *topology.Graph, a *app.Application) (*Mapping, error) {
	pMods := a.NumModules()
	if len(p.Weights) != pMods {
		return nil, fmt.Errorf("%w: got %d weights for %d modules", ErrBadWeights, len(p.Weights), pMods)
	}
	var total float64
	for i, w := range p.Weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weight %d = %g", ErrBadWeights, i+1, w)
		}
		total += w
	}
	k := g.NodeCount()
	if k < pMods {
		return nil, fmt.Errorf("%w: %d nodes for %d modules", ErrTooFewNodes, k, pMods)
	}
	quotas := largestRemainderQuotas(p.Weights, total, k, pMods)

	// Error diffusion: walk the nodes in row-major order and at each node pick
	// the module with the largest remaining deficit relative to its quota.
	nodes := g.Nodes()
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Pos.Y != nodes[j].Pos.Y {
			return nodes[i].Pos.Y < nodes[j].Pos.Y
		}
		return nodes[i].Pos.X < nodes[j].Pos.X
	})
	assigned := make([]int, pMods)
	assign := make(map[topology.NodeID]app.ModuleID, k)
	for _, n := range nodes {
		best := -1
		bestDeficit := math.Inf(-1)
		for i := 0; i < pMods; i++ {
			if assigned[i] >= quotas[i] {
				continue
			}
			deficit := float64(quotas[i]-assigned[i]) / float64(quotas[i])
			if deficit > bestDeficit {
				bestDeficit = deficit
				best = i
			}
		}
		if best < 0 {
			break
		}
		assign[n.ID] = app.ModuleID(best + 1)
		assigned[best]++
	}
	m := New(assign)
	if err := m.Validate(a, k); err != nil {
		return nil, err
	}
	return m, nil
}

// largestRemainderQuotas apportions k nodes to p modules proportionally to
// the weights, guaranteeing at least one node per module.
func largestRemainderQuotas(weights []float64, total float64, k, p int) []int {
	quotas := make([]int, p)
	remainders := make([]float64, p)
	used := 0
	for i, w := range weights {
		exact := w / total * float64(k)
		quotas[i] = int(math.Floor(exact))
		remainders[i] = exact - float64(quotas[i])
		used += quotas[i]
	}
	// Distribute the leftover nodes by descending remainder.
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return remainders[order[a]] > remainders[order[b]] })
	for leftover := k - used; leftover > 0; leftover-- {
		quotas[order[(k-used-leftover)%p]]++
	}
	// Guarantee one duplicate per module by stealing from the largest quota.
	for i := range quotas {
		for quotas[i] == 0 {
			maxIdx := 0
			for j := range quotas {
				if quotas[j] > quotas[maxIdx] {
					maxIdx = j
				}
			}
			if quotas[maxIdx] <= 1 {
				break
			}
			quotas[maxIdx]--
			quotas[i]++
		}
	}
	return quotas
}

// RowMajor assigns contiguous row-major blocks of nodes to modules with block
// sizes proportional to the operation counts f_i. It deliberately clusters
// duplicates and serves as a weak mapping baseline in the ablation studies.
type RowMajor struct{}

// Name implements Strategy.
func (RowMajor) Name() string { return "row-major-blocks" }

// Map implements Strategy.
func (RowMajor) Map(g *topology.Graph, a *app.Application) (*Mapping, error) {
	pMods := a.NumModules()
	k := g.NodeCount()
	if k < pMods {
		return nil, fmt.Errorf("%w: %d nodes for %d modules", ErrTooFewNodes, k, pMods)
	}
	weights := make([]float64, pMods)
	var total float64
	for i, m := range a.Modules {
		weights[i] = float64(m.OpsPerJob)
		total += weights[i]
	}
	quotas := largestRemainderQuotas(weights, total, k, pMods)
	nodes := g.Nodes()
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Pos.Y != nodes[j].Pos.Y {
			return nodes[i].Pos.Y < nodes[j].Pos.Y
		}
		return nodes[i].Pos.X < nodes[j].Pos.X
	})
	assign := make(map[topology.NodeID]app.ModuleID, k)
	idx := 0
	for modIdx, q := range quotas {
		for c := 0; c < q && idx < len(nodes); c++ {
			assign[nodes[idx].ID] = app.ModuleID(modIdx + 1)
			idx++
		}
	}
	m := New(assign)
	if err := m.Validate(a, k); err != nil {
		return nil, err
	}
	return m, nil
}

// Explicit is a dense, assignment-backed strategy: Assign[n] names the module
// of node n (Unassigned for relay-only nodes). It is how a concrete placement
// — typically one discovered by the internal/optimize search — is expressed
// as data, saved in a scenario.Spec and replayed exactly. The String/
// ParseExplicit pair round-trips the assignment through the comma-separated
// text form used by `scenario.Spec.Assignment` and `etsim
// -mapping explicit:<assignment>`.
type Explicit struct {
	// Assign holds one module per node, indexed by NodeID.
	Assign []app.ModuleID
}

// Name implements Strategy.
func (Explicit) Name() string { return "explicit" }

// String renders the assignment in the canonical text form: the module of
// every node in NodeID order, comma-separated ("3,1,2,..."). ParseExplicit
// inverts it exactly.
func (e Explicit) String() string {
	var b []byte
	for i, m := range e.Assign {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(m), 10)
	}
	return string(b)
}

// ParseExplicit parses the canonical comma-separated assignment form produced
// by Explicit.String (and by `etopt -emit-spec`).
func ParseExplicit(s string) (Explicit, error) {
	if s == "" {
		return Explicit{}, fmt.Errorf("mapping: empty explicit assignment")
	}
	fields := strings.Split(s, ",")
	e := Explicit{Assign: make([]app.ModuleID, len(fields))}
	for i, field := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || v < 0 {
			return Explicit{}, fmt.Errorf("mapping: explicit assignment entry %q at node %d is not a module number", field, i)
		}
		e.Assign[i] = app.ModuleID(v)
	}
	return e, nil
}

// Map implements Strategy: the assignment must cover exactly the graph's
// nodes, reference only the application's modules, and place every module at
// least once (enforced by Mapping.Validate).
func (e Explicit) Map(g *topology.Graph, a *app.Application) (*Mapping, error) {
	if len(e.Assign) != g.NodeCount() {
		return nil, fmt.Errorf("mapping: explicit assignment covers %d nodes, graph has %d",
			len(e.Assign), g.NodeCount())
	}
	assign := make(map[topology.NodeID]app.ModuleID, len(e.Assign))
	for n, mod := range e.Assign {
		if mod == Unassigned {
			continue
		}
		if int(mod) < 1 || int(mod) > a.NumModules() {
			return nil, fmt.Errorf("mapping: node %d assigned to unknown module %d (application has %d)",
				n, mod, a.NumModules())
		}
		assign[topology.NodeID(n)] = mod
	}
	m := New(assign)
	if err := m.Validate(a, g.NodeCount()); err != nil {
		return nil, err
	}
	return m, nil
}

// Random assigns modules uniformly at random (with every module guaranteed at
// least one duplicate) using a deterministic linear-congruential sequence
// seeded by Seed, so experiments are reproducible without pulling in
// math/rand.
type Random struct {
	Seed uint64
}

// Name implements Strategy.
func (r Random) Name() string { return fmt.Sprintf("random(seed=%d)", r.Seed) }

// Map implements Strategy.
func (r Random) Map(g *topology.Graph, a *app.Application) (*Mapping, error) {
	pMods := a.NumModules()
	k := g.NodeCount()
	if k < pMods {
		return nil, fmt.Errorf("%w: %d nodes for %d modules", ErrTooFewNodes, k, pMods)
	}
	state := r.Seed*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	nodes := g.Nodes()
	assign := make(map[topology.NodeID]app.ModuleID, k)
	// Guarantee one duplicate of each module on distinct random nodes first.
	perm := make([]int, len(nodes))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := next(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for modIdx := 0; modIdx < pMods; modIdx++ {
		assign[nodes[perm[modIdx]].ID] = app.ModuleID(modIdx + 1)
	}
	for _, idx := range perm[pMods:] {
		assign[nodes[idx].ID] = app.ModuleID(next(pMods) + 1)
	}
	m := New(assign)
	if err := m.Validate(a, k); err != nil {
		return nil, err
	}
	return m, nil
}
