package optimize

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// BenchmarkOptimize pins the cost of the search building blocks. The
// analytic-eval numbers are the committed baseline (BENCH_opt.json): the
// surrogate must stay allocation-free, because the hill-climb inner loop
// runs it once per cache-missing proposal.
func BenchmarkOptimize(b *testing.B) {
	sp := scenario.Spec{Mesh: 8}
	obj, err := NewAnalytic(sp)
	if err != nil {
		b.Fatal(err)
	}
	p := Problem{Spec: sp, Objective: obj, Budget: 400, Seed: 1}
	start, err := p.start()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("analytic-eval-8x8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := obj.Evaluate(start); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("propose-move", func(b *testing.B) {
		b.ReportAllocs()
		next := start.Clone()
		moves := campaign.Stream{Base: 1}
		for i := 0; i < b.N; i++ {
			w := uint64(i) * moveWords
			next.CopyFrom(start)
			next.applyMove(moves.Word(w), moves.Word(w+1), moves.Word(w+2), moves.Word(w+3))
		}
	})

	b.Run("climb-analytic-8x8", func(b *testing.B) {
		b.ReportAllocs()
		evals := 0
		for i := 0; i < b.N; i++ {
			rpt, err := HillClimb{}.Optimize(p)
			if err != nil {
				b.Fatal(err)
			}
			evals += rpt.Evals
		}
		b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
	})
}
