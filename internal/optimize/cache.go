package optimize

// evalCache memoizes objective evaluations keyed by the canonical candidate
// encoding, so a placement the search revisits costs zero evaluations (and
// therefore zero simulations under the sim/campaign objectives). One cache
// serves one restart: values are pure functions of the candidate either way,
// but per-restart caches keep the hit/miss counters — which the reports
// print — independent of how restarts are scheduled across workers. Lookups
// are allocation-free (the key scratch is reused and the map is indexed with
// an unallocated string conversion); only first-time insertions allocate.
type evalCache struct {
	obj    Objective
	m      map[string]float64
	key    []byte
	hits   int
	misses int
}

func newEvalCache(obj Objective) *evalCache {
	return &evalCache{obj: obj, m: make(map[string]float64)}
}

// evaluate returns the candidate's score, memoizing it, and reports whether
// the value came from the cache.
func (c *evalCache) evaluate(cand *Candidate) (float64, bool, error) {
	c.key = cand.AppendKey(c.key[:0])
	if v, ok := c.m[string(c.key)]; ok {
		c.hits++
		return v, true, nil
	}
	v, err := c.obj.Evaluate(cand)
	if err != nil {
		return 0, false, err
	}
	c.misses++
	c.m[string(c.key)] = v
	return v, false, nil
}
