package optimize

import (
	"fmt"
	"hash/fnv"

	"repro/internal/stats"
)

// TracePoint is one improvement event of a restart's search trace: after
// Evals objective evaluations (and Proposals proposed moves), the restart's
// best score reached Score. The first point of every trace is the start
// evaluation.
type TracePoint struct {
	Evals     int
	Proposals int
	Score     float64
}

// RestartReport summarises one restart of the search.
type RestartReport struct {
	// Restart is the restart index (0 starts from the base mapping unless
	// the search uses random starts).
	Restart int
	// Start and StartScore describe the restart's initial placement.
	Start      string
	StartScore float64
	// Best and BestScore describe the best placement the restart found.
	// BestScore >= StartScore always.
	Best      string
	BestScore float64
	// Evals counts objective evaluations (cache misses), CacheHits the
	// memoized re-scores, Proposals all proposed moves and Improvements the
	// accepted best-score improvements.
	Evals, CacheHits, Proposals, Improvements int
	// Trace holds the best-score improvement events in order.
	Trace []TracePoint
}

// finish seals the report with the restart's outcome and cache counters.
func (r *RestartReport) finish(cache *evalCache, best string, bestScore float64) {
	r.Best = best
	r.BestScore = bestScore
	r.Evals = cache.misses
	r.CacheHits = cache.hits
}

// Report is the outcome of one Optimizer.Optimize run.
type Report struct {
	// Strategy and Objective name what ran.
	Strategy, Objective string
	// Budget is the per-restart evaluation budget; Seed the base seed.
	Budget int
	Seed   uint64
	// Best is the winning placement, BestScore its score and BestRestart the
	// restart that found it (ties resolve to the lowest index).
	Best        *Candidate
	BestScore   float64
	BestRestart int
	// StartScore is restart 0's starting score — the base scenario's own
	// placement when the run does not use random starts.
	StartScore float64
	// PerRestart holds every restart's report in restart order; the totals
	// below sum over them.
	PerRestart                  []RestartReport
	Evals, CacheHits, Proposals int
}

// BestAssignment returns the winning placement in the canonical
// comma-separated form accepted by scenario.Spec.Assignment and
// `etsim -mapping explicit:...`.
func (r *Report) BestAssignment() string { return r.Best.String() }

// WinnerHash returns the FNV-1a hash of the winning assignment — a compact
// fingerprint for smoke tests asserting the search is stable.
func (r *Report) WinnerHash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.Best.String()))
	return h.Sum64()
}

// Gain returns the winning score as a multiple of the starting score
// (0 when the start scored 0).
func (r *Report) Gain() float64 {
	if r.StartScore == 0 {
		return 0
	}
	return r.BestScore / r.StartScore
}

// SummaryTable renders one row per restart — the body of etopt's search
// summary.
func (r *Report) SummaryTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Search summary: %s over %s, budget %d evals/restart, seed %d",
			r.Strategy, r.Objective, r.Budget, r.Seed),
		"restart", "start score", "best score", "evals", "cache hits", "proposals", "improvements")
	for _, rep := range r.PerRestart {
		t.AddRow(rep.Restart, rep.StartScore, rep.BestScore,
			rep.Evals, rep.CacheHits, rep.Proposals, rep.Improvements)
	}
	return t
}

// TraceTable renders the winning restart's improvement trace.
func (r *Report) TraceTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Search trace (winning restart %d)", r.BestRestart),
		"evals", "proposals", "best score")
	for _, p := range r.PerRestart[r.BestRestart].Trace {
		t.AddRow(p.Evals, p.Proposals, p.Score)
	}
	return t
}

// BestSoFar returns the winning restart's best score after every evaluation
// it spent — the step curve behind etopt's sparkline.
func (r *Report) BestSoFar() []float64 {
	rep := r.PerRestart[r.BestRestart]
	out := make([]float64, 0, rep.Evals)
	trace := rep.Trace
	cur := rep.StartScore
	for e := 1; e <= rep.Evals; e++ {
		for len(trace) > 0 && trace[0].Evals <= e {
			cur = trace[0].Score
			trace = trace[1:]
		}
		out = append(out, cur)
	}
	return out
}
