package optimize

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/app"
	"repro/internal/campaign"
	"repro/internal/mapping"
	"repro/internal/scenario"
)

// countingObjective wraps an objective and counts real evaluations, to verify
// the memoizing cache actually prevents re-evaluation.
type countingObjective struct {
	inner Objective
	calls int
}

func (c *countingObjective) Name() string { return c.inner.Name() }
func (c *countingObjective) Evaluate(cand *Candidate) (float64, error) {
	c.calls++
	return c.inner.Evaluate(cand)
}

// parseCandidate rebuilds a candidate from the canonical assignment form —
// a test helper exercising the String round trip (production replay goes
// through mapping.ParseExplicit + Explicit.Map instead).
func parseCandidate(t *testing.T, assignment string, p int) *Candidate {
	t.Helper()
	ex, err := mapping.ParseExplicit(assignment)
	if err != nil {
		t.Fatal(err)
	}
	c := newCandidate(len(ex.Assign), p)
	for n, mod := range ex.Assign {
		if int(mod) > p {
			t.Fatalf("node %d assigned to unknown module %d (application has %d)", n, mod, p)
		}
		c.set(n, mod)
	}
	return c
}

func analyticProblem(t *testing.T, mesh, budget int, seed uint64) Problem {
	t.Helper()
	sp := scenario.Spec{Mesh: mesh}
	obj, err := NewAnalytic(sp)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Spec: sp, Objective: obj, Budget: budget, Seed: seed}
}

func TestCandidateEncodingRoundTrip(t *testing.T) {
	p := analyticProblem(t, 4, 1, 1)
	start, err := p.start()
	if err != nil {
		t.Fatal(err)
	}
	if start.Nodes() != 16 || start.Modules() != 3 {
		t.Fatalf("start candidate is %d nodes x %d modules, want 16x3", start.Nodes(), start.Modules())
	}
	// String round-trips through the canonical form, preserving counts.
	back := parseCandidate(t, start.String(), start.Modules())
	if back.String() != start.String() {
		t.Fatalf("assignment round trip changed: %s -> %s", start.String(), back.String())
	}
	for m := 1; m <= 3; m++ {
		if back.Count(app.ModuleID(m)) != start.Count(app.ModuleID(m)) {
			t.Errorf("module %d count changed in round trip", m)
		}
	}
	// The explicit strategy copy is detached from later moves.
	ex := start.Explicit()
	before := ex.String()
	start.applyMove(0, 1, 2, 3) // a swap
	if ex.String() != before {
		t.Error("Explicit() aliases the candidate's live assignment")
	}
}

func TestMovesKeepCandidatesFeasible(t *testing.T) {
	p := analyticProblem(t, 4, 1, 1)
	c, err := p.start()
	if err != nil {
		t.Fatal(err)
	}
	stream := campaign.Stream{Base: 99}
	for k := uint64(0); k < 5000; k++ {
		w := k * moveWords
		c.applyMove(stream.Word(w), stream.Word(w+1), stream.Word(w+2), stream.Word(w+3))
		if !c.Feasible() {
			t.Fatalf("move %d produced an infeasible candidate %s", k, c)
		}
		// The incrementally maintained counts must agree with the assignment.
		for m := 1; m <= c.Modules(); m++ {
			n := 0
			for node := 0; node < c.Nodes(); node++ {
				if int(c.ModuleAt(node)) == m {
					n++
				}
			}
			if n != c.Count(app.ModuleID(m)) {
				t.Fatalf("after move %d: module %d count = %d, assignment has %d", k, m, c.Count(app.ModuleID(m)), n)
			}
		}
	}
}

func TestRandomizeIsFeasibleAndIndexAddressed(t *testing.T) {
	p := analyticProblem(t, 5, 1, 1)
	base, err := p.start()
	if err != nil {
		t.Fatal(err)
	}
	a, b := base.Clone(), base.Clone()
	a.randomize(campaign.Stream{Base: 7})
	b.randomize(campaign.Stream{Base: 7})
	if a.String() != b.String() {
		t.Error("randomize is not a pure function of the stream")
	}
	if !a.Feasible() {
		t.Errorf("randomized candidate infeasible: %s", a)
	}
	c := base.Clone()
	c.randomize(campaign.Stream{Base: 8})
	if c.String() == a.String() {
		t.Error("different stream bases drew the same placement")
	}
}

func TestRestartsNeverReturnWorseThanTheirStart(t *testing.T) {
	for _, opt := range []Optimizer{
		MultiRestart{Inner: HillClimb{}, Restarts: 6, Workers: 2},
		MultiRestart{Inner: Anneal{}, Restarts: 6, Workers: 2},
		MultiRestart{Inner: Anneal{}, Restarts: 6, Workers: 2, RandomStarts: true},
	} {
		rpt, err := opt.Optimize(analyticProblem(t, 4, 150, 3))
		if err != nil {
			t.Fatalf("%s: %v", opt.Name(), err)
		}
		for _, rep := range rpt.PerRestart {
			if rep.BestScore < rep.StartScore {
				t.Errorf("%s restart %d: best %g worse than start %g",
					opt.Name(), rep.Restart, rep.BestScore, rep.StartScore)
			}
		}
		if rpt.BestScore < rpt.PerRestart[0].StartScore && !hasRandomStarts(opt) {
			t.Errorf("%s: overall best %g worse than the base mapping's %g", opt.Name(), rpt.BestScore, rpt.StartScore)
		}
	}
}

func hasRandomStarts(o Optimizer) bool {
	m, ok := o.(MultiRestart)
	return ok && m.RandomStarts
}

func TestOptimizerDeterministicAcrossWorkers(t *testing.T) {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, inner := range []Optimizer{HillClimb{}, Anneal{}} {
		var ref *Report
		for _, w := range counts {
			opt := MultiRestart{Inner: inner, Restarts: 5, Workers: w}
			rpt, err := opt.Optimize(analyticProblem(t, 4, 200, 1))
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = rpt
				continue
			}
			if rpt.BestAssignment() != ref.BestAssignment() || rpt.BestScore != ref.BestScore ||
				rpt.BestRestart != ref.BestRestart {
				t.Errorf("%s: winner differs at %d workers", inner.Name(), w)
			}
			if !reflect.DeepEqual(rpt.PerRestart, ref.PerRestart) {
				t.Errorf("%s: per-restart reports differ at %d workers", inner.Name(), w)
			}
		}
	}
}

func TestSimObjectiveDeterministicAcrossWorkers(t *testing.T) {
	sp := scenario.Spec{Mesh: 4}
	var refTable string
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rpt, err := MultiRestart{Inner: Anneal{}, Restarts: 2, Workers: w}.Optimize(Problem{
			Spec:      sp,
			Objective: Sim{Base: sp},
			Budget:    8,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rendered := rpt.SummaryTable().Render() + rpt.TraceTable().Render() + rpt.BestAssignment()
		if refTable == "" {
			refTable = rendered
			continue
		}
		if rendered != refTable {
			t.Errorf("sim-objective report not byte-identical at %d workers", w)
		}
	}
}

func TestSimSearchNeverFallsBehindCheckerboard(t *testing.T) {
	sp := scenario.Spec{Mesh: 4}
	base, err := sp.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	rpt, err := MultiRestart{Inner: HillClimb{}, Restarts: 2, Workers: 2}.Optimize(Problem{
		Spec:      sp,
		Objective: Sim{Base: sp},
		Budget:    12,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rpt.StartScore != float64(base.JobsCompleted) {
		t.Errorf("restart 0 start score %g, checkerboard simulates %d jobs", rpt.StartScore, base.JobsCompleted)
	}
	if rpt.BestScore < float64(base.JobsCompleted) {
		t.Errorf("optimized placement scores %g, worse than the checkerboard baseline %d", rpt.BestScore, base.JobsCompleted)
	}
	// The winner replays through the scenario layer as an explicit mapping
	// and reproduces its score exactly.
	replay := sp
	replay.Mapping = scenario.MappingExplicit
	replay.Assignment = rpt.BestAssignment()
	res, err := replay.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.JobsCompleted) != rpt.BestScore {
		t.Errorf("replayed winner completes %d jobs, search scored it %g", res.JobsCompleted, rpt.BestScore)
	}
}

func TestCacheMakesRevisitsFree(t *testing.T) {
	// A 2x2 mesh has only 36 feasible placements, so a 100-eval hill-climb
	// must revisit and the cache must absorb every revisit.
	sp := scenario.Spec{Mesh: 2}
	inner, err := NewAnalytic(sp)
	if err != nil {
		t.Fatal(err)
	}
	obj := &countingObjective{inner: inner}
	rpt, err := HillClimb{}.Optimize(Problem{Spec: sp, Objective: obj, Budget: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep := rpt.PerRestart[0]
	if obj.calls != rep.Evals {
		t.Errorf("objective ran %d times, report counts %d evals", obj.calls, rep.Evals)
	}
	if rep.Evals > 36 {
		t.Errorf("%d evaluations exceed the 36 feasible placements of a 2x2 mesh", rep.Evals)
	}
	if rep.CacheHits == 0 {
		t.Error("search never hit the cache despite exhausting the placement space")
	}
	if rep.Proposals <= rep.Evals {
		t.Errorf("proposals (%d) should exceed evaluations (%d) once the space is exhausted", rep.Proposals, rep.Evals)
	}
}

func TestAnalyticSurrogateRespectsTheorem1(t *testing.T) {
	// The surrogate never exceeds J*: min_i B·n_i/H_i(d) <= B·K/ΣH_i because
	// the minimum is below the H-weighted mean and d >= 1 only shrinks it.
	sp := scenario.Spec{Mesh: 4}
	obj, err := NewAnalytic(sp)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sp.Strategy()
	if err != nil {
		t.Fatal(err)
	}
	bound, err := s.UpperBound()
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Spec: sp, Objective: obj, Budget: 1, Seed: 1}
	c, err := p.start()
	if err != nil {
		t.Fatal(err)
	}
	for draw := uint64(0); draw < 50; draw++ {
		if draw > 0 {
			c.randomize(campaign.Stream{Base: draw})
		}
		score, err := obj.Evaluate(c)
		if err != nil {
			t.Fatal(err)
		}
		if score > bound.Jobs*(1+1e-9) {
			t.Fatalf("surrogate score %g exceeds the Theorem-1 bound %g for %s", score, bound.Jobs, c)
		}
		if score <= 0 || math.IsInf(score, 0) || math.IsNaN(score) {
			t.Fatalf("surrogate score %g is not a positive finite number", score)
		}
	}
}

func TestHillClimbInnerLoopAllocFree(t *testing.T) {
	// Steady state: the placement space of a 2x2 mesh is exhausted quickly,
	// after which every proposal is a cache hit. The inner loop — copy,
	// move, memoized analytic evaluation — must then allocate nothing.
	sp := scenario.Spec{Mesh: 2}
	obj, err := NewAnalytic(sp)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Spec: sp, Objective: obj, Budget: 1, Seed: 1}
	cur, err := p.start()
	if err != nil {
		t.Fatal(err)
	}
	next := cur.Clone()
	cache := newEvalCache(obj)
	moves := campaign.Stream{Base: 42}
	k := uint64(0)
	step := func() {
		w := k * moveWords
		k++
		next.CopyFrom(cur)
		if !next.applyMove(moves.Word(w), moves.Word(w+1), moves.Word(w+2), moves.Word(w+3)) {
			return
		}
		if _, _, err := cache.evaluate(next); err != nil {
			t.Fatal(err)
		}
	}
	// Populate the cache with the whole reachable neighborhood.
	for i := 0; i < 5000; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Errorf("hill-climb inner loop allocates %.1f times per iteration in steady state", allocs)
	}
}
