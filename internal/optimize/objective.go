package optimize

import (
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/app"
	"repro/internal/campaign"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Objective scores a feasible candidate placement; higher is better. An
// Objective must be a pure function of the candidate — the determinism of the
// whole search (and the validity of memoized evaluations) rests on that.
// Evaluate errors abort the search: they signal a broken configuration, not a
// bad placement (infeasible placements are filtered before evaluation).
type Objective interface {
	// Name identifies the objective in reports and CLI flags.
	Name() string
	// Evaluate scores the candidate.
	Evaluate(c *Candidate) (float64, error)
}

// ---------------------------------------------------------------------------
// Analytic: the Theorem-1 surrogate
// ---------------------------------------------------------------------------

// Analytic is the fast placement surrogate derived from the paper's Sec 4
// analysis. For a placement with n_i duplicates of module i, the nodes
// hosting module i can jointly deliver at most B·n_i / H_i(d) jobs, where
// H_i(d) = f_i·E_i + Σ_j t_ij·d_ij·c generalises the Theorem-1 normalized
// energy with the placement's actual communication distances: t_ij counts the
// module i→j hand-offs per job (from the application flow), d_ij is the mean
// Manhattan distance from module-i nodes to their nearest module-j duplicate,
// and c is the one-hop packet energy. The score is the bottleneck
// min_i B·n_i/H_i(d).
//
// At d_ij = 1 and the real-valued optimal duplicate counts this is exactly
// Theorem 1's J*, so the surrogate never exceeds the bound; it charges
// neither relay energy (hops burn intermediate nodes' batteries, which the
// surrogate attributes to the sender) nor control overhead, which is why the
// simulation objective scores lower than the surrogate on the same placement.
//
// Evaluate is allocation-free: the evaluation is O(p²·K²) arithmetic over
// the candidate's dense assignment with no scratch state at all, cheap enough
// that memoizing it is unnecessary (though the search memoizes uniformly).
type Analytic struct {
	pos       []topology.Coord
	p         int
	compPJ    []float64 // compPJ[m] = f_m · E_m, indexed by module (entry 0 unused)
	trans     []float64 // trans[a*(p+1)+b] = hand-offs a→b per job
	commPJ    float64   // one-hop packet energy c
	batteryPJ float64   // per-node battery budget B
}

// NewAnalytic builds the surrogate for a scenario's platform and application.
// Only the spec's topology/application fields matter; its mapping is ignored.
func NewAnalytic(sp scenario.Spec) (*Analytic, error) {
	s, err := sp.Strategy()
	if err != nil {
		return nil, err
	}
	a := s.App
	p := a.NumModules()
	nodes := s.Mesh.Graph.Nodes()
	o := &Analytic{
		pos:       make([]topology.Coord, len(nodes)),
		p:         p,
		compPJ:    make([]float64, p+1),
		trans:     make([]float64, (p+1)*(p+1)),
		commPJ:    analytic.CommunicationEnergyPerOp(a, s.Line, s.Mesh.SpacingCM()),
		batteryPJ: s.NodeBattery().NominalPJ(),
	}
	for _, n := range nodes {
		o.pos[n.ID] = n.Pos
	}
	for _, m := range a.Modules {
		o.compPJ[m.ID] = float64(m.OpsPerJob) * m.EnergyPerOpPJ
	}
	for i := 0; i+1 < len(a.Flow); i++ {
		from, to := a.Flow[i], a.Flow[i+1]
		if from != to {
			o.trans[int(from)*(p+1)+int(to)]++
		}
	}
	return o, nil
}

// Name implements Objective.
func (o *Analytic) Name() string { return "analytic" }

// Evaluate implements Objective. Infeasible candidates score -Inf.
func (o *Analytic) Evaluate(c *Candidate) (float64, error) {
	if len(c.assign) != len(o.pos) || c.p != o.p {
		return 0, fmt.Errorf("optimize: candidate shape (%d nodes, %d modules) does not match the objective (%d nodes, %d modules)",
			len(c.assign), c.p, len(o.pos), o.p)
	}
	for m := 1; m <= o.p; m++ {
		if c.counts[m] == 0 {
			return math.Inf(-1), nil
		}
	}
	score := math.Inf(1)
	for from := 1; from <= o.p; from++ {
		commPJ := 0.0
		for to := 1; to <= o.p; to++ {
			t := o.trans[from*(o.p+1)+to]
			if t == 0 {
				continue
			}
			// Mean distance from a module-`from` node to its nearest
			// module-`to` duplicate.
			sum, n := 0, 0
			for u, mu := range c.assign {
				if mu != app.ModuleID(from) {
					continue
				}
				best := math.MaxInt
				for v, mv := range c.assign {
					if mv != app.ModuleID(to) {
						continue
					}
					if d := o.pos[u].Manhattan(o.pos[v]); d < best {
						best = d
					}
				}
				sum += best
				n++
			}
			commPJ += t * (float64(sum) / float64(n)) * o.commPJ
		}
		h := o.compPJ[from] + commPJ
		if jobs := o.batteryPJ * float64(c.counts[from]) / h; jobs < score {
			score = jobs
		}
	}
	return score, nil
}

// ---------------------------------------------------------------------------
// Sim: one deterministic simulation per evaluation
// ---------------------------------------------------------------------------

// Sim scores a placement by materialising the base scenario with the
// candidate as an explicit mapping and running one full et_sim simulation;
// the score is the number of completed jobs. The base scenario's stochastic
// seeds are fixed, so the objective is a pure function of the candidate.
type Sim struct {
	// Base is the scenario whose placement is being optimized; its Mapping
	// and Assignment fields are overridden per candidate.
	Base scenario.Spec
}

// Name implements Objective.
func (Sim) Name() string { return "sim" }

// Evaluate implements Objective.
func (o Sim) Evaluate(c *Candidate) (float64, error) {
	sp := o.Base
	sp.Mapping = scenario.MappingExplicit
	sp.Assignment = c.String()
	res, err := sp.Simulate()
	if err != nil {
		return 0, err
	}
	return float64(res.JobsCompleted), nil
}

// ---------------------------------------------------------------------------
// Campaign: replicated mean for stochastic scenarios
// ---------------------------------------------------------------------------

// Campaign scores a placement by the campaign mean of completed jobs over
// Replications seed-stream replicates — the right objective when the base
// scenario is stochastic beyond its mapping (re-drawn link-fault patterns),
// where a single draw would reward lucky fabric instead of good placement.
// The campaign seed is part of the objective, so evaluations stay pure
// functions of the candidate (common random numbers across candidates: every
// placement faces the same fault draws). Replicates run serially inside the
// evaluation — the search parallelises across restarts, and nesting pools
// would oversubscribe.
type Campaign struct {
	// Base is the scenario whose placement is being optimized.
	Base scenario.Spec
	// Replications is the number of replicates per evaluation (0 = 10).
	Replications int
	// Seed is the campaign base seed shared by every evaluation.
	Seed uint64
}

// Name implements Objective.
func (o Campaign) Name() string {
	return fmt.Sprintf("campaign(r=%d)", o.replications())
}

func (o Campaign) replications() int {
	if o.Replications < 1 {
		return 10
	}
	return o.Replications
}

// Evaluate implements Objective: the mean completed-job count.
func (o Campaign) Evaluate(c *Candidate) (float64, error) {
	s, err := o.Summary(c)
	if err != nil {
		return 0, err
	}
	return s.Mean(), nil
}

// Summary runs the same replicated evaluation as Evaluate but returns the
// full streaming aggregate, so callers (etopt's winner report) can quote the
// mean with its 95% confidence interval.
func (o Campaign) Summary(c *Candidate) (stats.Summary, error) {
	sp := o.Base
	sp.Mapping = scenario.MappingExplicit
	sp.Assignment = c.String()
	res, err := campaign.Run(campaign.Spec{
		Scenario:     sp,
		Replications: o.replications(),
		Seed:         o.Seed,
	}, campaign.WithWorkers(1))
	if err != nil {
		return stats.Summary{}, err
	}
	return res.Jobs, nil
}
