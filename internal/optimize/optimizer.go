package optimize

import (
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// DefaultRestarts is the restart count used when MultiRestart.Restarts is 0.
const DefaultRestarts = 4

// proposalFactor bounds the number of proposed moves per restart at
// Budget*proposalFactor, so a restart whose proposals keep hitting the cache
// (or keep being infeasible) still terminates deterministically.
const proposalFactor = 16

// Problem describes one placement-optimization run.
type Problem struct {
	// Spec is the base scenario: it supplies the platform, the application
	// and — through its mapping fields — the starting placement of restart 0.
	Spec scenario.Spec
	// Objective scores candidates. Required.
	Objective Objective
	// Budget is the number of objective evaluations each restart may spend
	// (cache hits are free). Values below 1 mean 1: evaluate the start only.
	Budget int
	// Seed is the base seed of the search's move streams: every restart, move
	// and random start is an index-addressed function of it.
	Seed uint64
}

// start materialises the base scenario's mapping as the search's starting
// candidate.
func (p *Problem) start() (*Candidate, error) {
	if p.Objective == nil {
		return nil, fmt.Errorf("optimize: problem has no objective")
	}
	s, err := p.Spec.Strategy()
	if err != nil {
		return nil, err
	}
	pMods := s.App.NumModules()
	if pMods > 255 {
		return nil, fmt.Errorf("optimize: %d modules exceed the 255 the candidate encoding supports", pMods)
	}
	m, err := s.Mapper.Map(s.Mesh.Graph, s.App)
	if err != nil {
		return nil, err
	}
	return FromMapping(m, s.Mesh.Graph.NodeCount(), pMods), nil
}

// budget returns the per-restart evaluation budget, at least 1.
func (p *Problem) budget() int {
	if p.Budget < 1 {
		return 1
	}
	return p.Budget
}

// Optimizer is a placement-search strategy. All three implementations —
// HillClimb, Anneal and MultiRestart — are deterministic: the report is a
// pure function of (Problem, strategy parameters), independent of worker
// count and scheduling.
type Optimizer interface {
	// Name identifies the strategy in reports.
	Name() string
	// Optimize runs the search and reports the best placement found.
	Optimize(p Problem) (*Report, error)
}

// searcher is the single-restart search loop shared by MultiRestart:
// HillClimb and Anneal implement it, MultiRestart fans it out.
type searcher interface {
	Optimizer
	// search walks from start, drawing all randomness from the restart's
	// stream, and returns the restart report plus the best candidate.
	search(p *Problem, start *Candidate, stream campaign.Stream, restart int) (RestartReport, *Candidate, error)
}

// Sub-stream channels of one restart's stream. Keeping the channels disjoint
// makes every random decision an index-addressed pure function of
// (Problem.Seed, restart, index).
const (
	chanMoves  = 0 // move k reads words [k*moveWords, (k+1)*moveWords)
	chanAccept = 1 // annealing acceptance draw k reads word k
	chanStart  = 2 // random-start permutation draws
)

// ---------------------------------------------------------------------------
// Greedy hill-climb
// ---------------------------------------------------------------------------

// HillClimb is the greedy strategy: it proposes seed-stream moves and accepts
// every strict improvement, keeping the incumbent otherwise. Simple, fast,
// and the baseline the other strategies are measured against.
type HillClimb struct{}

// Name implements Optimizer.
func (HillClimb) Name() string { return "climb" }

// Optimize implements Optimizer: a single restart from the base scenario's
// own mapping.
func (h HillClimb) Optimize(p Problem) (*Report, error) {
	return runRestarts(h.Name(), h, 1, 1, false, p)
}

// search implements searcher.
func (h HillClimb) search(p *Problem, start *Candidate, stream campaign.Stream, restart int) (RestartReport, *Candidate, error) {
	moves := stream.Sub(chanMoves)
	cache := newEvalCache(p.Objective)
	cur, next := start.Clone(), start.Clone()

	rep := RestartReport{Restart: restart, Start: start.String()}
	curScore, _, err := cache.evaluate(cur)
	if err != nil {
		return rep, nil, err
	}
	rep.StartScore = curScore
	rep.Trace = append(rep.Trace, TracePoint{Evals: cache.misses, Score: curScore})

	budget := p.budget()
	for k := uint64(0); rep.Proposals < budget*proposalFactor && cache.misses < budget; k++ {
		rep.Proposals++
		next.CopyFrom(cur)
		w := k * moveWords
		if !next.applyMove(moves.Word(w), moves.Word(w+1), moves.Word(w+2), moves.Word(w+3)) {
			continue
		}
		score, _, err := cache.evaluate(next)
		if err != nil {
			return rep, nil, err
		}
		if score > curScore {
			cur, next = next, cur
			curScore = score
			rep.Improvements++
			rep.Trace = append(rep.Trace, TracePoint{Evals: cache.misses, Proposals: rep.Proposals, Score: curScore})
		}
	}
	rep.finish(cache, cur.String(), curScore)
	return rep, cur, nil
}

// ---------------------------------------------------------------------------
// Simulated annealing
// ---------------------------------------------------------------------------

// Anneal is simulated annealing with a deterministic geometric cooling
// schedule: proposal k is accepted when it improves the incumbent or with
// probability exp(Δ/T_k), where T_k = T0·α^k and both the temperature ladder
// and the acceptance draws are pure functions of the restart's seed stream.
// The best candidate is tracked separately from the random walk, so the
// reported best is never worse than the start.
type Anneal struct {
	// T0 is the initial temperature in score units. 0 selects a default
	// proportional to the starting score (a tenth of it, at least 1), which
	// keeps the schedule meaningful across objectives of different scales.
	T0 float64
	// Alpha is the per-proposal geometric cooling factor in (0, 1). 0 selects
	// the factor that cools T0 by three decades over the proposal budget.
	Alpha float64
}

// Name implements Optimizer.
func (Anneal) Name() string { return "anneal" }

// Optimize implements Optimizer: a single restart from the base scenario's
// own mapping.
func (a Anneal) Optimize(p Problem) (*Report, error) {
	return runRestarts(a.Name(), a, 1, 1, false, p)
}

// search implements searcher.
func (a Anneal) search(p *Problem, start *Candidate, stream campaign.Stream, restart int) (RestartReport, *Candidate, error) {
	moves, accept := stream.Sub(chanMoves), stream.Sub(chanAccept)
	cache := newEvalCache(p.Objective)
	cur, next, best := start.Clone(), start.Clone(), start.Clone()

	rep := RestartReport{Restart: restart, Start: start.String()}
	curScore, _, err := cache.evaluate(cur)
	if err != nil {
		return rep, nil, err
	}
	bestScore := curScore
	rep.StartScore = curScore
	rep.Trace = append(rep.Trace, TracePoint{Evals: cache.misses, Score: curScore})

	budget := p.budget()
	maxProposals := budget * proposalFactor
	t0 := a.T0
	if t0 <= 0 {
		t0 = math.Max(1, 0.1*math.Abs(curScore))
	}
	alpha := a.Alpha
	if alpha <= 0 || alpha >= 1 {
		// Three decades of cooling across the proposal budget.
		alpha = math.Exp(math.Log(1e-3) / float64(maxProposals))
	}

	temp := t0
	for k := uint64(0); rep.Proposals < maxProposals && cache.misses < budget; k++ {
		rep.Proposals++
		temp *= alpha
		next.CopyFrom(cur)
		w := k * moveWords
		if !next.applyMove(moves.Word(w), moves.Word(w+1), moves.Word(w+2), moves.Word(w+3)) {
			continue
		}
		score, _, err := cache.evaluate(next)
		if err != nil {
			return rep, nil, err
		}
		accepted := score >= curScore
		if !accepted {
			// Uniform draw in [0,1) from the acceptance channel, addressed by
			// the proposal index.
			u := float64(accept.Word(k)>>11) / (1 << 53)
			accepted = u < math.Exp((score-curScore)/temp)
		}
		if accepted {
			cur, next = next, cur
			curScore = score
		}
		if curScore > bestScore {
			best.CopyFrom(cur)
			bestScore = curScore
			rep.Improvements++
			rep.Trace = append(rep.Trace, TracePoint{Evals: cache.misses, Proposals: rep.Proposals, Score: bestScore})
		}
	}
	rep.finish(cache, best.String(), bestScore)
	return rep, best, nil
}

// ---------------------------------------------------------------------------
// Multi-restart
// ---------------------------------------------------------------------------

// MultiRestart fans Restarts independent runs of an inner strategy out over a
// runner.Pool. Restart 0 starts from the base scenario's own mapping (so the
// search can never return a placement worse than the scenario's baseline);
// every later restart starts from a random feasible placement drawn from its
// own seed-stream channel. Results fold in restart order — ties prefer the
// lower restart index — so the chosen placement is byte-identical at every
// worker count.
type MultiRestart struct {
	// Inner is the per-restart strategy: HillClimb or Anneal (nil =
	// HillClimb).
	Inner Optimizer
	// Restarts is the number of independent restarts (0 = DefaultRestarts).
	Restarts int
	// Workers is the number of restarts searched concurrently (0 = one per
	// CPU, 1 = serial). Never changes the result.
	Workers int
	// RandomStarts makes restart 0 start from a random placement too,
	// instead of the base scenario's mapping — the "best of N random
	// placements" baseline of the opt-gap experiment.
	RandomStarts bool
}

// Name implements Optimizer.
func (m MultiRestart) Name() string {
	return fmt.Sprintf("restart(%s)", m.inner().Name())
}

func (m MultiRestart) inner() Optimizer {
	if m.Inner == nil {
		return HillClimb{}
	}
	return m.Inner
}

// Optimize implements Optimizer.
func (m MultiRestart) Optimize(p Problem) (*Report, error) {
	inner, ok := m.inner().(searcher)
	if !ok {
		return nil, fmt.Errorf("optimize: %s cannot be multi-restarted", m.inner().Name())
	}
	restarts := m.Restarts
	if restarts < 1 {
		restarts = DefaultRestarts
	}
	return runRestarts(m.Name(), inner, restarts, m.Workers, m.RandomStarts, p)
}

// runRestarts is the shared execution core: it derives one child stream per
// restart, fans the restarts out over a pool, and folds the reports in
// restart order.
func runRestarts(name string, s searcher, restarts, workers int, randomStarts bool, p Problem) (*Report, error) {
	base, err := p.start()
	if err != nil {
		return nil, err
	}
	root := campaign.Stream{Base: p.Seed}

	type restartOut struct {
		rep  RestartReport
		best *Candidate
	}
	pool := runner.New(runner.WithWorkers(workers))
	outs, err := runner.Map(pool, make([]struct{}, restarts), func(r int, _ struct{}) (restartOut, error) {
		stream := root.Sub(uint64(r))
		start := base
		if r > 0 || randomStarts {
			start = base.Clone()
			start.randomize(stream.Sub(chanStart))
		}
		rep, best, err := s.search(&p, start, stream, r)
		if err != nil {
			return restartOut{}, fmt.Errorf("restart %d: %w", r, err)
		}
		return restartOut{rep, best}, nil
	})
	if err != nil {
		return nil, err
	}

	rpt := &Report{
		Strategy:  name,
		Objective: p.Objective.Name(),
		Budget:    p.budget(),
		Seed:      p.Seed,
		BestScore: math.Inf(-1),
	}
	for _, o := range outs {
		rpt.PerRestart = append(rpt.PerRestart, o.rep)
		rpt.Evals += o.rep.Evals
		rpt.CacheHits += o.rep.CacheHits
		rpt.Proposals += o.rep.Proposals
		// Strictly-greater fold: ties keep the lowest restart index.
		if o.rep.BestScore > rpt.BestScore {
			rpt.BestScore = o.rep.BestScore
			rpt.BestRestart = o.rep.Restart
			rpt.Best = o.best
		}
	}
	rpt.StartScore = rpt.PerRestart[0].StartScore
	return rpt, nil
}
