// Package optimize searches the space of module→node placements for a
// scenario. The paper fixes the mapping up front (the Sec 5.2 checkerboard)
// and uses Theorem 1 only as an analytical yardstick; this package closes the
// loop by treating the placement as a decision variable: a metaheuristic
// search — greedy hill-climb, simulated annealing or multi-restart search —
// walks the discrete space of dense module→node assignments, scoring each
// candidate with a pluggable Objective (the fast Theorem-1 surrogate, a
// single et_sim run, or a replicated campaign mean for stochastic scenarios),
// and the winning placement is exported as a mapping.Explicit assignment that
// any scenario.Spec can replay.
//
// The design invariants mirror the rest of the stack:
//
//   - Determinism. Move k of restart r is a pure function of the problem's
//     base seed: restarts derive index-addressed child streams from
//     campaign.Stream and every move draws its words by index, never from
//     shared generator state. Restarts fan out over runner.Pool with
//     input-order folding, so the chosen placement is byte-identical at
//     every worker count.
//   - Monotonicity. Every restart's best candidate scores at least as well
//     as its start (hill-climb only accepts improvements; annealing tracks
//     the incumbent best separately from the random walk), so searching can
//     never return something worse than the placement it started from.
//   - Zero waste on revisits. Each restart memoizes evaluations in a cache
//     keyed by the canonical candidate encoding, so a placement the walk
//     revisits costs zero simulations. Caches are per-restart, which keeps
//     hit/miss counts schedule-independent (a cache shared across
//     concurrently running restarts would report different counts depending
//     on which restart got to a key first).
package optimize

import (
	"repro/internal/app"
	"repro/internal/campaign"
	"repro/internal/mapping"
	"repro/internal/topology"
)

// moveWords is the number of index-addressed seed-stream words one proposed
// move consumes: move k of a restart reads words [k*moveWords, (k+1)*moveWords)
// of the restart's move stream, so any move can be recomputed in isolation.
const moveWords = 4

// maxBlock is the largest block-shuffle span. It bounds the fixed scratch
// buffer that keeps block moves allocation-free.
const maxBlock = 6

// Candidate is one dense module→node placement: Assign[n] is the module of
// node n (mapping.Unassigned for relay-only nodes). Candidates additionally
// maintain per-module duplicate counts incrementally so feasibility (every
// module placed at least once) is an O(1) check after every move.
type Candidate struct {
	assign []app.ModuleID
	counts []int // counts[m] = duplicates of module m; index 0 counts unassigned nodes
	p      int   // number of application modules
}

// newCandidate returns an all-unassigned candidate for k nodes and p modules.
func newCandidate(k, p int) *Candidate {
	c := &Candidate{
		assign: make([]app.ModuleID, k),
		counts: make([]int, p+1),
		p:      p,
	}
	c.counts[0] = k
	return c
}

// FromMapping encodes a materialised Mapping over k nodes as a candidate.
func FromMapping(m *mapping.Mapping, k, p int) *Candidate {
	c := newCandidate(k, p)
	for n := 0; n < k; n++ {
		c.set(n, m.ModuleAt(topology.NodeID(n)))
	}
	return c
}

// set assigns node n to module mod, keeping the counts consistent.
func (c *Candidate) set(n int, mod app.ModuleID) {
	c.counts[c.assign[n]]--
	c.assign[n] = mod
	c.counts[mod]++
}

// Clone returns an independent deep copy.
func (c *Candidate) Clone() *Candidate {
	o := &Candidate{
		assign: make([]app.ModuleID, len(c.assign)),
		counts: make([]int, len(c.counts)),
		p:      c.p,
	}
	copy(o.assign, c.assign)
	copy(o.counts, c.counts)
	return o
}

// CopyFrom overwrites c with o. The candidates must describe the same
// problem size; CopyFrom never allocates.
func (c *Candidate) CopyFrom(o *Candidate) {
	copy(c.assign, o.assign)
	copy(c.counts, o.counts)
	c.p = o.p
}

// Nodes returns the number of nodes the placement covers.
func (c *Candidate) Nodes() int { return len(c.assign) }

// Modules returns p, the number of application modules.
func (c *Candidate) Modules() int { return c.p }

// ModuleAt returns the module placed on node n.
func (c *Candidate) ModuleAt(n int) app.ModuleID { return c.assign[n] }

// Count returns the number of duplicates of module m.
func (c *Candidate) Count(m app.ModuleID) int { return c.counts[m] }

// Feasible reports whether every module has at least one duplicate.
func (c *Candidate) Feasible() bool {
	for m := 1; m <= c.p; m++ {
		if c.counts[m] == 0 {
			return false
		}
	}
	return true
}

// String renders the placement in the canonical comma-separated form shared
// with mapping.Explicit and scenario.Spec.Assignment.
func (c *Candidate) String() string {
	return mapping.Explicit{Assign: c.assign}.String()
}

// Explicit returns the placement as a replayable mapping strategy. The
// returned strategy copies the assignment, so later moves on c do not mutate
// it.
func (c *Candidate) Explicit() mapping.Explicit {
	assign := make([]app.ModuleID, len(c.assign))
	copy(assign, c.assign)
	return mapping.Explicit{Assign: assign}
}

// AppendKey appends the canonical byte encoding of the placement to dst and
// returns the extended slice — the evaluation-cache key. One byte per node
// (NewProblem rejects applications with more than 255 modules).
func (c *Candidate) AppendKey(dst []byte) []byte {
	for _, m := range c.assign {
		dst = append(dst, byte(m))
	}
	return dst
}

// applyMove mutates the candidate with the move encoded by four seed-stream
// words and reports whether the move kept the candidate feasible. The move
// kinds and their weights:
//
//   - swap (5/10): two nodes exchange modules. Duplicate counts are
//     unchanged, so a swap is always feasible.
//   - relocate (3/10): one node is reassigned to a drawn module. Rejected
//     (returning false, candidate unchanged) when it would extinguish the
//     node's current module.
//   - block-shuffle (2/10): a block of 2..maxBlock consecutive node IDs
//     (wrapping around the end) is rotated by a drawn offset. A rotation
//     permutes the block, so counts are unchanged and the move is always
//     feasible.
//
// applyMove never allocates.
func (c *Candidate) applyMove(w0, w1, w2, w3 uint64) bool {
	k := uint64(len(c.assign))
	switch kind := w0 % 10; {
	case kind < 5: // swap
		i, j := w1%k, w2%k
		c.assign[i], c.assign[j] = c.assign[j], c.assign[i]
		return true
	case kind < 8: // relocate
		i := w1 % k
		mod := app.ModuleID(1 + w2%uint64(c.p))
		old := c.assign[i]
		if old == mod {
			return true
		}
		if old != mapping.Unassigned && c.counts[old] <= 1 {
			return false
		}
		c.set(int(i), mod)
		return true
	default: // block-shuffle (rotation)
		maxL := uint64(maxBlock)
		if maxL > k {
			maxL = k
		}
		if maxL < 2 {
			return true
		}
		start := w1 % k
		length := 2 + w2%(maxL-1)
		rot := 1 + w3%(length-1)
		var buf [maxBlock]app.ModuleID
		for o := uint64(0); o < length; o++ {
			buf[o] = c.assign[(start+o)%k]
		}
		for o := uint64(0); o < length; o++ {
			c.assign[(start+(o+rot)%length)%k] = buf[o]
		}
		return true
	}
}

// randomize overwrites the candidate with a random feasible placement drawn
// from the stream: a Fisher–Yates permutation guarantees one duplicate of
// every module on distinct nodes, and the remaining nodes draw uniform
// modules — the same construction as mapping.Random, but index-addressed.
func (c *Candidate) randomize(stream campaign.Stream) {
	k := len(c.assign)
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	for i := k - 1; i > 0; i-- {
		j := int(stream.Word(uint64(i)) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for n := 0; n < k; n++ {
		c.set(n, mapping.Unassigned)
	}
	for m := 0; m < c.p && m < k; m++ {
		c.set(perm[m], app.ModuleID(m+1))
	}
	for idx := c.p; idx < k; idx++ {
		mod := app.ModuleID(1 + stream.Word(uint64(k+idx))%uint64(c.p))
		c.set(perm[idx], mod)
	}
}
